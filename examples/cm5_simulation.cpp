// End-to-end "ANU CM-5" experiment: the paper's target machine was a 32-node
// CM-5. This example runs the real SVD to get per-ordering sweep counts,
// prices each sweep on the three interconnect models, and reports projected
// total times — the experiment the paper announced as "currently being
// implemented".
//
//   ./cm5_simulation [--n=64] [--rows=128] [--cond=100]
#include <cstdio>

#include "treesvd.hpp"

int main(int argc, char** argv) {
  using namespace treesvd;
  const Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("n", 64));  // 32 leaves = 32 nodes
  const auto rows = static_cast<std::size_t>(cli.get_int("rows", 2 * n));
  const double cond = cli.get_double("cond", 100.0);

  std::printf("simulated %d-node machine (n = %d columns of length %zu, cond = %.0f)\n\n",
              n / 2, n, rows, cond);

  Rng rng(1993);
  const Matrix a = with_spectrum(rows, static_cast<std::size_t>(n),
                                 geometric_spectrum(static_cast<std::size_t>(n), cond), rng);

  CostParams params;
  params.words_per_column = static_cast<double>(rows);

  Table table({"ordering", "sweeps", "sigma ok", "perfect fat-tree", "binary tree",
               "cm5 skinny", "cm5 contention"});
  const auto oracle = singular_values_oracle(a);
  for (const auto& name : ordering_names({4, 8, 16})) {
    const auto ord = make_ordering(name);
    if (!ord->supports(n)) continue;
    const SvdResult r = one_sided_jacobi(a, *ord);
    double err = 0.0;
    for (std::size_t k = 0; k < oracle.size(); ++k)
      err = std::max(err, std::abs(r.sigma[k] - oracle[k]));

    table.row().cell(name).cell(static_cast<long long>(r.sweeps)).cell(
        err < 1e-8 ? "yes" : "NO");
    double cm5_contention = 0.0;
    for (auto prof :
         {CapacityProfile::kPerfect, CapacityProfile::kConstant, CapacityProfile::kCm5}) {
      const FatTreeTopology topo(n / 2, prof);
      const auto run = model_run(*ord, topo, n, params, r.sweeps);
      table.cell(run.per_sweep_total.total_time, 0);
      if (prof == CapacityProfile::kCm5) cm5_contention = run.per_sweep_total.max_contention;
    }
    table.cell(cm5_contention, 2);
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nprojected total time = sweeps x (compute + contended communication); the\n"
      "hybrid ordering wins on the CM-5 model (no contention, few global steps),\n"
      "the fat-tree ordering catches up as channel capacity grows — the paper's\n"
      "Conclusions, reproduced in simulation.\n");
  return 0;
}
