// Spectral clustering on a planted-partition graph, using the ordering-driven
// two-sided Jacobi eigensolver: build the graph Laplacian, take the
// eigenvectors of its smallest nontrivial eigenvalues (they arrive sorted, so
// they are simply the tail columns), embed the vertices and cluster with a
// few Lloyd iterations.
//
//   ./spectral_clustering [--vertices=60] [--clusters=3] [--ordering=fat-tree]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "treesvd.hpp"

namespace {

using namespace treesvd;

struct Planted {
  Matrix laplacian;
  std::vector<int> truth;
};

Planted planted_partition(int vertices, int clusters, double p_in, double p_out, Rng& rng) {
  Matrix adj(static_cast<std::size_t>(vertices), static_cast<std::size_t>(vertices));
  std::vector<int> truth(static_cast<std::size_t>(vertices));
  for (int v = 0; v < vertices; ++v) truth[static_cast<std::size_t>(v)] = v % clusters;
  for (int i = 0; i < vertices; ++i) {
    for (int j = i + 1; j < vertices; ++j) {
      const double p = truth[static_cast<std::size_t>(i)] == truth[static_cast<std::size_t>(j)]
                           ? p_in
                           : p_out;
      if (rng.uniform() < p) {
        adj(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) = 1.0;
        adj(static_cast<std::size_t>(j), static_cast<std::size_t>(i)) = 1.0;
      }
    }
  }
  Matrix lap(static_cast<std::size_t>(vertices), static_cast<std::size_t>(vertices));
  for (int i = 0; i < vertices; ++i) {
    double deg = 0.0;
    for (int j = 0; j < vertices; ++j) deg += adj(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
    lap(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) = deg;
    for (int j = 0; j < vertices; ++j)
      lap(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) -=
          adj(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
  }
  return {std::move(lap), std::move(truth)};
}

/// Few-iteration Lloyd k-means on k-dimensional points.
std::vector<int> kmeans(const std::vector<std::vector<double>>& pts, int k, Rng& rng) {
  const std::size_t n = pts.size();
  const std::size_t dim = pts.front().size();
  std::vector<std::vector<double>> centers;
  for (int c = 0; c < k; ++c) centers.push_back(pts[rng.below(n)]);
  std::vector<int> assign(n, 0);
  for (int iter = 0; iter < 25; ++iter) {
    for (std::size_t i = 0; i < n; ++i) {
      double best = 1e300;
      for (int c = 0; c < k; ++c) {
        double d = 0.0;
        for (std::size_t a = 0; a < dim; ++a) {
          const double t = pts[i][a] - centers[static_cast<std::size_t>(c)][a];
          d += t * t;
        }
        if (d < best) {
          best = d;
          assign[i] = c;
        }
      }
    }
    std::vector<std::vector<double>> sums(static_cast<std::size_t>(k),
                                          std::vector<double>(dim, 0.0));
    std::vector<int> counts(static_cast<std::size_t>(k), 0);
    for (std::size_t i = 0; i < n; ++i) {
      ++counts[static_cast<std::size_t>(assign[i])];
      for (std::size_t a = 0; a < dim; ++a) sums[static_cast<std::size_t>(assign[i])][a] += pts[i][a];
    }
    for (int c = 0; c < k; ++c) {
      if (counts[static_cast<std::size_t>(c)] == 0) continue;
      for (std::size_t a = 0; a < dim; ++a)
        centers[static_cast<std::size_t>(c)][a] =
            sums[static_cast<std::size_t>(c)][a] / counts[static_cast<std::size_t>(c)];
    }
  }
  return assign;
}

/// Clustering accuracy under the best label permutation (k <= 3: brute force).
double purity(const std::vector<int>& got, const std::vector<int>& truth, int k) {
  std::vector<int> perm(static_cast<std::size_t>(k));
  for (int c = 0; c < k; ++c) perm[static_cast<std::size_t>(c)] = c;
  double best = 0.0;
  do {
    int hits = 0;
    for (std::size_t i = 0; i < got.size(); ++i)
      if (perm[static_cast<std::size_t>(got[i])] == truth[i]) ++hits;
    best = std::max(best, static_cast<double>(hits) / static_cast<double>(got.size()));
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int vertices = static_cast<int>(cli.get_int("vertices", 60));
  const int clusters = static_cast<int>(cli.get_int("clusters", 3));
  const std::string ordering_name = cli.get("ordering", "fat-tree");

  Rng rng(2718);
  const Planted g = planted_partition(vertices, clusters, 0.65, 0.05, rng);

  const EigenResult r = jacobi_symmetric_eigen(g.laplacian, *make_ordering(ordering_name));
  std::printf("spectral clustering: %d vertices, %d planted clusters, %s ordering\n", vertices,
              clusters, ordering_name.c_str());
  std::printf("  Laplacian eigendecomposition: %d sweeps, converged=%s\n", r.sweeps,
              r.converged ? "yes" : "no");

  // Eigenvalues are sorted descending, so the smallest live at the tail; the
  // very last is ~0 (the constant vector). Embed with the next `clusters-1`.
  const std::size_t nn = static_cast<std::size_t>(vertices);
  std::printf("  smallest eigenvalues: ");
  for (int k = 0; k < clusters + 1; ++k)
    std::printf("%.4f ", r.eigenvalues[nn - 1 - static_cast<std::size_t>(k)]);
  std::printf("(the ~0 one is the constant vector; the next %d are the cluster gap)\n",
              clusters - 1);

  std::vector<std::vector<double>> pts(nn, std::vector<double>(static_cast<std::size_t>(clusters - 1)));
  for (std::size_t i = 0; i < nn; ++i)
    for (int a = 0; a < clusters - 1; ++a)
      pts[i][static_cast<std::size_t>(a)] =
          r.eigenvectors(i, nn - 2 - static_cast<std::size_t>(a));

  const std::vector<int> assign = kmeans(pts, clusters, rng);
  const double acc = purity(assign, g.truth, clusters);
  std::printf("  clustering accuracy vs planted partition: %.1f%%\n", 100.0 * acc);
  return acc > 0.9 ? 0 : 1;
}
