// Interactive ordering explorer: print any ordering's sweep, its validation,
// movement statistics and per-level communication profile.
//
//   ./ordering_explorer [--ordering=fat-tree] [--n=16] [--sweeps=2]
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "treesvd.hpp"

int main(int argc, char** argv) {
  using namespace treesvd;
  const Cli cli(argc, argv);
  const std::string name = cli.get("ordering", "fat-tree");
  const int n = static_cast<int>(cli.get_int("n", 16));
  const int sweeps = static_cast<int>(cli.get_int("sweeps", 2));

  const auto ordering = make_ordering(name);
  if (!ordering->supports(n)) {
    std::printf("%s does not support n = %d\n", name.c_str(), n);
    return 1;
  }

  std::printf("ordering %s, n = %d (%d leaf processors), %d steps per sweep\n\n", name.c_str(), n,
              n / 2, ordering->steps(n));

  std::vector<int> layout(static_cast<std::size_t>(n));
  std::iota(layout.begin(), layout.end(), 0);
  for (int k = 0; k < sweeps; ++k) {
    const Sweep s = ordering->sweep_from(layout, k);
    std::printf("sweep %d:\n", k + 1);
    for (int t = 0; t < s.steps(); ++t) {
      std::printf("  step %2d:", t + 1);
      for (const IndexPair& p : s.pairs(t)) std::printf(" (%d,%d)", p.even + 1, p.odd + 1);
      int deepest = 0;
      for (const ColumnMove& mv : s.moves(t))
        deepest = std::max(deepest, comm_level(mv.from_slot, mv.to_slot));
      std::printf("   -> move level %d\n", deepest);
    }
    const SweepValidation v = validate_sweep(s);
    const auto hist = level_histogram(s);
    std::printf("  valid sweep: %s;  transfers per level:", v.valid ? "yes" : v.error.c_str());
    for (std::size_t l = 1; l < hist.size(); ++l) std::printf(" L%zu:%zu", l, hist[l]);
    std::printf(";  unidirectional ring: %s\n", unidirectional_ring_moves(s) ? "yes" : "no");
    const auto fin = s.final_layout();
    std::printf("  layout after sweep:");
    for (int idx : fin) std::printf(" %d", idx + 1);
    std::printf("\n\n");
    layout.assign(fin.begin(), fin.end());
  }

  const bool restored = std::is_sorted(layout.begin(), layout.end());
  std::printf("original order restored after %d sweep(s): %s\n", sweeps,
              restored ? "yes" : "no");
  return 0;
}
