// Quickstart: compute the SVD of a random matrix with the fat-tree ordering
// and verify the factorisation.
//
//   ./quickstart [--m=200] [--n=64] [--ordering=fat-tree]
#include <cstdio>

#include "treesvd.hpp"

int main(int argc, char** argv) {
  using namespace treesvd;
  const Cli cli(argc, argv);
  const auto m = static_cast<std::size_t>(cli.get_int("m", 200));
  const auto n = static_cast<std::size_t>(cli.get_int("n", 64));
  const std::string ordering_name = cli.get("ordering", "fat-tree");

  Rng rng(42);
  const Matrix a = random_gaussian(m, n, rng);

  const auto ordering = make_ordering(ordering_name);
  const SvdResult r = one_sided_jacobi(a, *ordering);

  std::printf("treesvd quickstart: %zu x %zu Gaussian matrix, %s ordering\n", m, n,
              ordering_name.c_str());
  std::printf("  converged: %s after %d sweeps (%zu rotations, %zu fused swaps)\n",
              r.converged ? "yes" : "no", r.sweeps, r.rotations, r.swaps);
  std::printf("  largest singular values: ");
  for (std::size_t k = 0; k < 5 && k < r.sigma.size(); ++k) std::printf("%.4f ", r.sigma[k]);
  std::printf("\n  smallest singular value: %.4f\n", r.sigma.back());

  const double rec = reconstruction_error(a, r.u, r.sigma, r.v) / a.frobenius_norm();
  std::printf("  ||A - U S V^T|| / ||A||   = %.2e\n", rec);
  std::printf("  ||V^T V - I||             = %.2e\n", orthonormality_defect(r.v));
  std::printf("  ||U^T U - I|| (first r)   = %.2e\n", orthonormality_defect(r.u));
  return rec < 1e-10 ? 0 : 1;
}
