// Schedule/traffic trace export: dumps an ordering's full sweep as CSV —
// one row per (step, pair) and one per (transition, message with its route
// level) — for offline analysis or plotting, plus a per-transition channel
// utilisation summary on a chosen topology.
//
//   ./trace_export --ordering=fat-tree --n=16 [--topology=cm5] [--out=trace.csv]
#include <cstdio>
#include <fstream>

#include "treesvd.hpp"

int main(int argc, char** argv) {
  using namespace treesvd;
  const Cli cli(argc, argv);
  const std::string name = cli.get("ordering", "fat-tree");
  const int n = static_cast<int>(cli.get_int("n", 16));
  const std::string topo_name = cli.get("topology", "cm5");
  const std::string out_path = cli.get("out", "trace.csv");

  const auto ord = make_ordering(name);
  if (!ord->supports(n)) {
    std::printf("%s does not support n=%d\n", name.c_str(), n);
    return 1;
  }
  CapacityProfile profile = CapacityProfile::kCm5;
  if (topo_name == "perfect") profile = CapacityProfile::kPerfect;
  if (topo_name == "binary") profile = CapacityProfile::kConstant;
  const FatTreeTopology topo(n / 2, profile);

  const Sweep s = ord->sweep(n);
  std::ofstream out(out_path);
  if (!out) {
    std::printf("cannot open %s\n", out_path.c_str());
    return 1;
  }

  out << "record,step,kind,a,b,level\n";
  std::size_t pair_rows = 0;
  std::size_t move_rows = 0;
  for (int t = 0; t < s.steps(); ++t) {
    for (const IndexPair& p : s.pairs(t)) {
      out << "pair," << t + 1 << ",rotate," << p.even + 1 << "," << p.odd + 1 << ",0\n";
      ++pair_rows;
    }
    for (const ColumnMove& mv : s.moves(t)) {
      const int lvl = comm_level(mv.from_slot, mv.to_slot);
      out << "move," << t + 1 << ",transfer," << mv.index + 1 << "," << mv.to_slot / 2 << ","
          << lvl << "\n";
      ++move_rows;
    }
  }
  out.close();

  std::printf("trace of %s (n=%d) written to %s: %zu rotations, %zu column moves\n",
              name.c_str(), n, out_path.c_str(), pair_rows, move_rows);

  // Per-transition channel summary on the chosen topology.
  std::printf("\nper-transition peak channel load on %s (words, column = %d words):\n",
              to_string(profile).c_str(), n);
  for (int t = 0; t < s.steps(); ++t) {
    TrafficStep step(topo);
    for (const ColumnMove& mv : s.moves(t)) {
      if (mv.from_slot / 2 == mv.to_slot / 2) continue;
      step.add({mv.from_slot / 2, mv.to_slot / 2, static_cast<double>(n)});
    }
    const StepTraffic st = step.finish(0.0);
    std::printf("  t%02d: msgs=%3zu deepest=L%d peak=%5.0f contention=%.2f\n", t + 1,
                st.messages, st.max_level, st.max_channel_load, st.max_contention);
  }
  return 0;
}
