// Principal component analysis of a tall synthetic dataset via the
// QR-preconditioned parallel Jacobi SVD: samples >> features is exactly the
// aspect ratio where the QR preprocessing pays off.
//
//   ./pca [--samples=2000] [--features=16] [--ordering=fat-tree]
#include <cmath>
#include <cstdio>

#include "treesvd.hpp"

int main(int argc, char** argv) {
  using namespace treesvd;
  const Cli cli(argc, argv);
  const auto samples = static_cast<std::size_t>(cli.get_int("samples", 2000));
  const auto features = static_cast<std::size_t>(cli.get_int("features", 16));
  const std::string name = cli.get("ordering", "fat-tree");

  // Synthetic data: 3 latent factors + noise, so the spectrum has a visible
  // elbow after 3 components.
  Rng rng(77);
  const std::size_t latent = 3;
  Matrix factors(features, latent);
  for (auto& v : factors.data()) v = rng.normal();
  Matrix x(samples, features);
  for (std::size_t i = 0; i < samples; ++i) {
    double z[3] = {2.0 * rng.normal(), 1.2 * rng.normal(), 0.7 * rng.normal()};
    for (std::size_t f = 0; f < features; ++f) {
      double v = 0.15 * rng.normal();
      for (std::size_t k = 0; k < latent; ++k) v += z[k] * factors(f, k);
      x(i, f) = v;
    }
  }
  // Centre the columns.
  for (std::size_t f = 0; f < features; ++f) {
    double mean = 0.0;
    for (double v : x.col(f)) mean += v;
    mean /= static_cast<double>(samples);
    for (double& v : x.col(f)) v -= mean;
  }

  Timer timer;
  const SvdResult r = qr_preconditioned_jacobi(x, *make_ordering(name));
  std::printf("PCA: %zu samples x %zu features, %s ordering, %.1f ms (%d Jacobi sweeps on R)\n\n",
              samples, features, name.c_str(), timer.millis(), r.sweeps);

  double total_var = 0.0;
  for (double s : r.sigma) total_var += s * s;
  Table t({"component", "sigma", "variance %", "cumulative %"});
  double cum = 0.0;
  for (std::size_t k = 0; k < std::min<std::size_t>(8, features); ++k) {
    const double var = r.sigma[k] * r.sigma[k] / total_var;
    cum += var;
    t.row()
        .cell(static_cast<long long>(k + 1))
        .cell(r.sigma[k], 3)
        .cell(100.0 * var, 1)
        .cell(100.0 * cum, 1);
  }
  std::printf("%s", t.str().c_str());
  std::printf("\n(three latent factors planted; the explained-variance elbow after\n"
              " component 3 recovers them — the sorted sigma makes the scree plot free)\n");
  return cum > 0.9 ? 0 : 1;
}
