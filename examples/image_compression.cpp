// Low-rank image compression via the parallel SVD — the classical "keep the
// top-k singular triplets" application the sorted output of the tree
// orderings makes trivial (the triplets arrive ordered).
//
// A synthetic grayscale test image (smooth gradients + shapes + texture) is
// generated in-process, so the example needs no input files.
//
//   ./image_compression [--size=128] [--ordering=hybrid-g4]
#include <cmath>
#include <cstdio>
#include <iostream>

#include "treesvd.hpp"

namespace {

using treesvd::Matrix;

/// Synthetic test image: radial gradient + rectangles + diagonal stripes.
Matrix make_image(std::size_t size) {
  Matrix img(size, size);
  const double c = static_cast<double>(size) / 2.0;
  for (std::size_t i = 0; i < size; ++i) {
    for (std::size_t j = 0; j < size; ++j) {
      const double x = (static_cast<double>(i) - c) / c;
      const double y = (static_cast<double>(j) - c) / c;
      double v = 0.55 - 0.35 * std::sqrt(x * x + y * y);                  // radial vignette
      v += 0.20 * std::sin(12.0 * (x + y));                               // diagonal stripes
      if (std::fabs(x) < 0.45 && std::fabs(y) < 0.2) v += 0.25;           // bar
      if (std::fabs(x - 0.3) < 0.12 && std::fabs(y + 0.4) < 0.12) v -= 0.3;  // square
      img(i, j) = std::min(1.0, std::max(0.0, v));
    }
  }
  return img;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace treesvd;
  const Cli cli(argc, argv);
  const auto size = static_cast<std::size_t>(cli.get_int("size", 128));
  const std::string ordering_name = cli.get("ordering", "hybrid-g4");

  const Matrix img = make_image(size);
  const auto ordering = make_ordering(ordering_name);
  Timer timer;
  const SvdResult r = one_sided_jacobi(img, *ordering);
  const double svd_ms = timer.millis();

  std::printf("image compression: %zux%zu synthetic image, %s ordering, SVD in %.1f ms"
              " (%d sweeps)\n\n",
              size, size, ordering_name.c_str(), svd_ms, r.sweeps);

  Table table({"rank k", "storage (vs raw)", "rel. error", "PSNR (dB)"});
  for (std::size_t k : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    if (k > size) break;
    // Rank-k reconstruction: A_k = sum_{j<k} sigma_j u_j v_j^T.
    Matrix ak(size, size);
    for (std::size_t j = 0; j < k; ++j) {
      const auto u = r.u.col(j);
      const auto v = r.v.col(j);
      for (std::size_t col = 0; col < size; ++col) {
        const double s = r.sigma[j] * v[col];
        const auto dst = ak.col(col);
        for (std::size_t row = 0; row < size; ++row) dst[row] += s * u[row];
      }
    }
    double mse = 0.0;
    for (std::size_t idx = 0; idx < img.data().size(); ++idx) {
      const double d = img.data()[idx] - ak.data()[idx];
      mse += d * d;
    }
    mse /= static_cast<double>(img.data().size());
    const double psnr = 10.0 * std::log10(1.0 / mse);
    const double storage =
        static_cast<double>(k) * (2.0 * static_cast<double>(size) + 1.0) /
        (static_cast<double>(size) * static_cast<double>(size));
    const double rel = (img - ak).frobenius_norm() / img.frobenius_norm();
    table.row()
        .cell(k)
        .cell(storage * 100.0, 1)
        .cell(rel, 4)
        .cell(psnr, 1);
  }
  table.print(std::cout);
  std::printf("\n(The sorted singular values mean the best rank-k approximation is always\n"
              " the first k columns — no post-hoc sorting required.)\n");
  return 0;
}
