// Rank-aware least squares through the SVD pseudoinverse: fit a polynomial
// to noisy data with a (deliberately ill-conditioned) Vandermonde basis. The
// sorted singular values make the truncation decision a simple prefix scan.
//
//   ./least_squares [--points=200] [--degree=12] [--ordering=new-ring]
#include <cmath>
#include <cstdio>

#include "treesvd.hpp"

int main(int argc, char** argv) {
  using namespace treesvd;
  const Cli cli(argc, argv);
  const auto points = static_cast<std::size_t>(cli.get_int("points", 200));
  const auto degree = static_cast<std::size_t>(cli.get_int("degree", 12));
  const std::string ordering_name = cli.get("ordering", "new-ring");

  // Ground truth: f(x) = sin(3x) on [-1, 1], sampled with noise.
  Rng rng(7);
  std::vector<double> xs(points);
  std::vector<double> b(points);
  for (std::size_t i = 0; i < points; ++i) {
    xs[i] = -1.0 + 2.0 * static_cast<double>(i) / static_cast<double>(points - 1);
    b[i] = std::sin(3.0 * xs[i]) + 0.01 * rng.normal();
  }

  // Vandermonde design matrix (monomials: condition number grows fast).
  const std::size_t n = degree + 1;
  Matrix a(points, n);
  for (std::size_t i = 0; i < points; ++i) {
    double p = 1.0;
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = p;
      p *= xs[i];
    }
  }

  const SvdResult r = one_sided_jacobi(a, *make_ordering(ordering_name));
  std::printf("least squares: %zu points, degree %zu, %s ordering, %d sweeps\n", points, degree,
              ordering_name.c_str(), r.sweeps);
  std::printf("  condition number sigma_1/sigma_n = %.2e\n", r.sigma.front() / r.sigma.back());

  // Truncated pseudoinverse solve: x = V diag(1/sigma) U^T b, dropping
  // singular values below tau * sigma_1.
  auto solve = [&](double tau) {
    std::vector<double> x(n, 0.0);
    std::size_t used = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (r.sigma[j] < tau * r.sigma[0]) break;  // sorted: a prefix suffices
      const double coef = dot(r.u.col(j), b) / r.sigma[j];
      axpy(coef, r.v.col(j), x);
      ++used;
    }
    return std::pair{x, used};
  };

  Table table({"truncation tau", "modes used", "residual ||Ax-b||", "max |coef|"});
  for (double tau : {0.0, 1e-12, 1e-8, 1e-4}) {
    const auto [x, used] = solve(tau);
    std::vector<double> res(b);
    for (std::size_t j = 0; j < n; ++j) axpy(-x[j], a.col(j), res);
    double maxc = 0.0;
    for (double c : x) maxc = std::max(maxc, std::fabs(c));
    char taubuf[32];
    std::snprintf(taubuf, sizeof taubuf, "%.0e", tau);
    table.row().cell(taubuf).cell(used).cell(nrm2(res), 4).cell(maxc, 2);
  }
  std::printf("%s", table.str().c_str());
  std::printf("\nModest truncation trades a tiny residual increase for far smaller (more\n"
              "stable) coefficients — the standard rank-revealing use of a sorted SVD.\n");
  return 0;
}
