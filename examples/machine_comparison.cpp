// Three execution models, one schedule: runs the same SVD through
//   1. the shared-memory engine (one_sided_jacobi),
//   2. the step-synchronous distributed machine (columns owned by leaves,
//      transfers as routed messages with modeled contention),
//   3. the SPMD program over the message-passing runtime (one thread per
//      leaf, dataflow synchronisation only),
// and verifies they agree bit for bit — the ordering's schedule, not the
// runtime, determines the numerics.
//
//   ./machine_comparison [--n=32] [--rows=64] [--ordering=hybrid-g4]
#include <cstdio>

#include "treesvd.hpp"

int main(int argc, char** argv) {
  using namespace treesvd;
  const Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("n", 32));
  const auto rows = static_cast<std::size_t>(cli.get_int("rows", 2 * n));
  const std::string name = cli.get("ordering", "hybrid-g4");

  Rng rng(1993);
  const Matrix a = random_gaussian(rows, static_cast<std::size_t>(n), rng);
  const auto ord = make_ordering(name);
  if (!ord->supports(n)) {
    std::printf("%s does not support n=%d\n", name.c_str(), n);
    return 1;
  }

  std::printf("execution-model comparison: %zux%d, %s ordering, %d leaf processors\n\n", rows, n,
              name.c_str(), n / 2);

  Timer t1;
  const SvdResult shared = one_sided_jacobi(a, *ord);
  const double ms1 = t1.millis();

  const FatTreeTopology topo(n / 2, CapacityProfile::kCm5);
  Timer t2;
  const DistributedResult dist = distributed_jacobi(a, *ord, topo);
  const double ms2 = t2.millis();

  Timer t3;
  SpmdStats stats;
  const SvdResult spmd = spmd_jacobi(a, *ord, {}, &stats);
  const double ms3 = t3.millis();

  auto bitwise = [&](const SvdResult& x) {
    if (x.sigma.size() != shared.sigma.size()) return false;
    for (std::size_t k = 0; k < x.sigma.size(); ++k)
      if (x.sigma[k] != shared.sigma[k]) return false;
    return x.u == shared.u && x.v == shared.v;
  };

  Table t({"model", "sweeps", "wall ms", "bitwise == shared", "notes"});
  t.row()
      .cell("shared-memory")
      .cell(static_cast<long long>(shared.sweeps))
      .cell(ms1, 1)
      .cell("-")
      .cell("columns rotated in place");
  t.row()
      .cell("distributed")
      .cell(static_cast<long long>(dist.svd.sweeps))
      .cell(ms2, 1)
      .cell(bitwise(dist.svd) ? "yes" : "NO")
      .cell(std::to_string(dist.delivered_messages) + " routed messages, contention " +
            std::to_string(dist.cost.max_contention).substr(0, 4));
  t.row()
      .cell("spmd (threads)")
      .cell(static_cast<long long>(spmd.sweeps))
      .cell(ms3, 1)
      .cell(bitwise(spmd) ? "yes" : "NO")
      .cell(std::to_string(stats.messages) + " tagged messages, " + std::to_string(n / 2) +
            " ranks");
  std::printf("%s", t.str().c_str());

  std::printf("\nmodeled cost of the distributed run on the CM-5-like tree: total %.0f\n"
              "(compute %.0f + communication %.0f), worst channel contention %.2f\n",
              dist.cost.total_time, dist.cost.compute_time, dist.cost.comm_time,
              dist.cost.max_contention);
  return (bitwise(dist.svd) && bitwise(spmd)) ? 0 : 1;
}
