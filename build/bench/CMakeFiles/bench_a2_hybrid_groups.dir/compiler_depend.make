# Empty compiler generated dependencies file for bench_a2_hybrid_groups.
# This may be replaced when dependencies are built.
