file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_hybrid_groups.dir/bench_a2_hybrid_groups.cpp.o"
  "CMakeFiles/bench_a2_hybrid_groups.dir/bench_a2_hybrid_groups.cpp.o.d"
  "bench_a2_hybrid_groups"
  "bench_a2_hybrid_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_hybrid_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
