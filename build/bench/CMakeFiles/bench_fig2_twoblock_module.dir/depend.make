# Empty dependencies file for bench_fig2_twoblock_module.
# This may be replaced when dependencies are built.
