file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_twoblock_module.dir/bench_fig2_twoblock_module.cpp.o"
  "CMakeFiles/bench_fig2_twoblock_module.dir/bench_fig2_twoblock_module.cpp.o.d"
  "bench_fig2_twoblock_module"
  "bench_fig2_twoblock_module.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_twoblock_module.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
