# Empty compiler generated dependencies file for bench_a3_threshold.
# This may be replaced when dependencies are built.
