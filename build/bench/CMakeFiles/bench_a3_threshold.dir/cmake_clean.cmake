file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_threshold.dir/bench_a3_threshold.cpp.o"
  "CMakeFiles/bench_a3_threshold.dir/bench_a3_threshold.cpp.o.d"
  "bench_a3_threshold"
  "bench_a3_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
