file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_merge_stages.dir/bench_fig5_merge_stages.cpp.o"
  "CMakeFiles/bench_fig5_merge_stages.dir/bench_fig5_merge_stages.cpp.o.d"
  "bench_fig5_merge_stages"
  "bench_fig5_merge_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_merge_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
