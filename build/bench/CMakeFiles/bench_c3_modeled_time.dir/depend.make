# Empty dependencies file for bench_c3_modeled_time.
# This may be replaced when dependencies are built.
