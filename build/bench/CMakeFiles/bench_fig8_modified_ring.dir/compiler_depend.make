# Empty compiler generated dependencies file for bench_fig8_modified_ring.
# This may be replaced when dependencies are built.
