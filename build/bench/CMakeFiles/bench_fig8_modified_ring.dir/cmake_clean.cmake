file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_modified_ring.dir/bench_fig8_modified_ring.cpp.o"
  "CMakeFiles/bench_fig8_modified_ring.dir/bench_fig8_modified_ring.cpp.o.d"
  "bench_fig8_modified_ring"
  "bench_fig8_modified_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_modified_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
