# Empty compiler generated dependencies file for bench_a7_intragroup.
# This may be replaced when dependencies are built.
