file(REMOVE_RECURSE
  "CMakeFiles/bench_a7_intragroup.dir/bench_a7_intragroup.cpp.o"
  "CMakeFiles/bench_a7_intragroup.dir/bench_a7_intragroup.cpp.o.d"
  "bench_a7_intragroup"
  "bench_a7_intragroup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a7_intragroup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
