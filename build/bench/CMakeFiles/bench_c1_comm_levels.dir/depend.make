# Empty dependencies file for bench_c1_comm_levels.
# This may be replaced when dependencies are built.
