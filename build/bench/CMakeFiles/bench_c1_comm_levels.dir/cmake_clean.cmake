file(REMOVE_RECURSE
  "CMakeFiles/bench_c1_comm_levels.dir/bench_c1_comm_levels.cpp.o"
  "CMakeFiles/bench_c1_comm_levels.dir/bench_c1_comm_levels.cpp.o.d"
  "bench_c1_comm_levels"
  "bench_c1_comm_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c1_comm_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
