file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_sorting.dir/bench_a1_sorting.cpp.o"
  "CMakeFiles/bench_a1_sorting.dir/bench_a1_sorting.cpp.o.d"
  "bench_a1_sorting"
  "bench_a1_sorting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_sorting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
