# Empty dependencies file for bench_a1_sorting.
# This may be replaced when dependencies are built.
