# Empty compiler generated dependencies file for bench_fig3_twoblock_size4.
# This may be replaced when dependencies are built.
