# Empty dependencies file for bench_c2_contention.
# This may be replaced when dependencies are built.
