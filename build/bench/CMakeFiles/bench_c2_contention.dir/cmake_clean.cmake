file(REMOVE_RECURSE
  "CMakeFiles/bench_c2_contention.dir/bench_c2_contention.cpp.o"
  "CMakeFiles/bench_c2_contention.dir/bench_c2_contention.cpp.o.d"
  "bench_c2_contention"
  "bench_c2_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c2_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
