# Empty dependencies file for bench_fig6_fattree8.
# This may be replaced when dependencies are built.
