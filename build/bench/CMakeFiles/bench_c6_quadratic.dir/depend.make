# Empty dependencies file for bench_c6_quadratic.
# This may be replaced when dependencies are built.
