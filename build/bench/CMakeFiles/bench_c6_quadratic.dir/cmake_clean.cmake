file(REMOVE_RECURSE
  "CMakeFiles/bench_c6_quadratic.dir/bench_c6_quadratic.cpp.o"
  "CMakeFiles/bench_c6_quadratic.dir/bench_c6_quadratic.cpp.o.d"
  "bench_c6_quadratic"
  "bench_c6_quadratic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c6_quadratic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
