file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_baseline_orderings.dir/bench_fig1_baseline_orderings.cpp.o"
  "CMakeFiles/bench_fig1_baseline_orderings.dir/bench_fig1_baseline_orderings.cpp.o.d"
  "bench_fig1_baseline_orderings"
  "bench_fig1_baseline_orderings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_baseline_orderings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
