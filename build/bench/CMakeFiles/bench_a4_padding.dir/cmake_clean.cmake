file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_padding.dir/bench_a4_padding.cpp.o"
  "CMakeFiles/bench_a4_padding.dir/bench_a4_padding.cpp.o.d"
  "bench_a4_padding"
  "bench_a4_padding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_padding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
