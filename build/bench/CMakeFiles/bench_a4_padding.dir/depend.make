# Empty dependencies file for bench_a4_padding.
# This may be replaced when dependencies are built.
