
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_a4_padding.cpp" "bench/CMakeFiles/bench_a4_padding.dir/bench_a4_padding.cpp.o" "gcc" "bench/CMakeFiles/bench_a4_padding.dir/bench_a4_padding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eigen/CMakeFiles/treesvd_eigen.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/treesvd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/treesvd_network.dir/DependInfo.cmake"
  "/root/repo/build/src/svd/CMakeFiles/treesvd_svd.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/treesvd_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/treesvd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/treesvd_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/treesvd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
