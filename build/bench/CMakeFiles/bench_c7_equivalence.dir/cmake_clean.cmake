file(REMOVE_RECURSE
  "CMakeFiles/bench_c7_equivalence.dir/bench_c7_equivalence.cpp.o"
  "CMakeFiles/bench_c7_equivalence.dir/bench_c7_equivalence.cpp.o.d"
  "bench_c7_equivalence"
  "bench_c7_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c7_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
