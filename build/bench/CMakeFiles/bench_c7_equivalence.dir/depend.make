# Empty dependencies file for bench_c7_equivalence.
# This may be replaced when dependencies are built.
