file(REMOVE_RECURSE
  "CMakeFiles/bench_a8_onesided_vs_twosided.dir/bench_a8_onesided_vs_twosided.cpp.o"
  "CMakeFiles/bench_a8_onesided_vs_twosided.dir/bench_a8_onesided_vs_twosided.cpp.o.d"
  "bench_a8_onesided_vs_twosided"
  "bench_a8_onesided_vs_twosided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a8_onesided_vs_twosided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
