# Empty dependencies file for bench_a8_onesided_vs_twosided.
# This may be replaced when dependencies are built.
