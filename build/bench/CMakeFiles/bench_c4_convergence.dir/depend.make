# Empty dependencies file for bench_c4_convergence.
# This may be replaced when dependencies are built.
