file(REMOVE_RECURSE
  "CMakeFiles/bench_a6_qr_preprocessing.dir/bench_a6_qr_preprocessing.cpp.o"
  "CMakeFiles/bench_a6_qr_preprocessing.dir/bench_a6_qr_preprocessing.cpp.o.d"
  "bench_a6_qr_preprocessing"
  "bench_a6_qr_preprocessing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a6_qr_preprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
