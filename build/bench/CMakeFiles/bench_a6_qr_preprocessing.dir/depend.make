# Empty dependencies file for bench_a6_qr_preprocessing.
# This may be replaced when dependencies are built.
