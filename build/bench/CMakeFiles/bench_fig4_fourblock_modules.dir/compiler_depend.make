# Empty compiler generated dependencies file for bench_fig4_fourblock_modules.
# This may be replaced when dependencies are built.
