file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_fourblock_modules.dir/bench_fig4_fourblock_modules.cpp.o"
  "CMakeFiles/bench_fig4_fourblock_modules.dir/bench_fig4_fourblock_modules.cpp.o.d"
  "bench_fig4_fourblock_modules"
  "bench_fig4_fourblock_modules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_fourblock_modules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
