# Empty compiler generated dependencies file for bench_a5_block_width.
# This may be replaced when dependencies are built.
