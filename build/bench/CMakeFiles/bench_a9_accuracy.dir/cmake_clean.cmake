file(REMOVE_RECURSE
  "CMakeFiles/bench_a9_accuracy.dir/bench_a9_accuracy.cpp.o"
  "CMakeFiles/bench_a9_accuracy.dir/bench_a9_accuracy.cpp.o.d"
  "bench_a9_accuracy"
  "bench_a9_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a9_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
