# Empty dependencies file for bench_a9_accuracy.
# This may be replaced when dependencies are built.
