# Empty compiler generated dependencies file for bench_c8_kernels.
# This may be replaced when dependencies are built.
