# Empty dependencies file for bench_fig9_hybrid16.
# This may be replaced when dependencies are built.
