file(REMOVE_RECURSE
  "CMakeFiles/bench_c5_sorted_svd.dir/bench_c5_sorted_svd.cpp.o"
  "CMakeFiles/bench_c5_sorted_svd.dir/bench_c5_sorted_svd.cpp.o.d"
  "bench_c5_sorted_svd"
  "bench_c5_sorted_svd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c5_sorted_svd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
