# Empty dependencies file for bench_c5_sorted_svd.
# This may be replaced when dependencies are built.
