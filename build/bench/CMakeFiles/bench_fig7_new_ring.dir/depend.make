# Empty dependencies file for bench_fig7_new_ring.
# This may be replaced when dependencies are built.
