file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_new_ring.dir/bench_fig7_new_ring.cpp.o"
  "CMakeFiles/bench_fig7_new_ring.dir/bench_fig7_new_ring.cpp.o.d"
  "bench_fig7_new_ring"
  "bench_fig7_new_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_new_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
