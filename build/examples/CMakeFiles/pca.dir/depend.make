# Empty dependencies file for pca.
# This may be replaced when dependencies are built.
