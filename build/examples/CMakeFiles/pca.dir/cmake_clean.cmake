file(REMOVE_RECURSE
  "CMakeFiles/pca.dir/pca.cpp.o"
  "CMakeFiles/pca.dir/pca.cpp.o.d"
  "pca"
  "pca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
