file(REMOVE_RECURSE
  "CMakeFiles/image_compression.dir/image_compression.cpp.o"
  "CMakeFiles/image_compression.dir/image_compression.cpp.o.d"
  "image_compression"
  "image_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
