file(REMOVE_RECURSE
  "CMakeFiles/cm5_simulation.dir/cm5_simulation.cpp.o"
  "CMakeFiles/cm5_simulation.dir/cm5_simulation.cpp.o.d"
  "cm5_simulation"
  "cm5_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm5_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
