# Empty compiler generated dependencies file for cm5_simulation.
# This may be replaced when dependencies are built.
