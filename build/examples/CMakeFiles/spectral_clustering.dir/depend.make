# Empty dependencies file for spectral_clustering.
# This may be replaced when dependencies are built.
