file(REMOVE_RECURSE
  "CMakeFiles/spectral_clustering.dir/spectral_clustering.cpp.o"
  "CMakeFiles/spectral_clustering.dir/spectral_clustering.cpp.o.d"
  "spectral_clustering"
  "spectral_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
