file(REMOVE_RECURSE
  "CMakeFiles/ordering_blockring_test.dir/ordering_blockring_test.cpp.o"
  "CMakeFiles/ordering_blockring_test.dir/ordering_blockring_test.cpp.o.d"
  "ordering_blockring_test"
  "ordering_blockring_test.pdb"
  "ordering_blockring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordering_blockring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
