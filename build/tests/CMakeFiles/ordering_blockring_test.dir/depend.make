# Empty dependencies file for ordering_blockring_test.
# This may be replaced when dependencies are built.
