# Empty dependencies file for ordering_fattree_test.
# This may be replaced when dependencies are built.
