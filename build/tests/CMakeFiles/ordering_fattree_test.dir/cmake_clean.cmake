file(REMOVE_RECURSE
  "CMakeFiles/ordering_fattree_test.dir/ordering_fattree_test.cpp.o"
  "CMakeFiles/ordering_fattree_test.dir/ordering_fattree_test.cpp.o.d"
  "ordering_fattree_test"
  "ordering_fattree_test.pdb"
  "ordering_fattree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordering_fattree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
