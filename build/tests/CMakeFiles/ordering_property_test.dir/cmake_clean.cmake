file(REMOVE_RECURSE
  "CMakeFiles/ordering_property_test.dir/ordering_property_test.cpp.o"
  "CMakeFiles/ordering_property_test.dir/ordering_property_test.cpp.o.d"
  "ordering_property_test"
  "ordering_property_test.pdb"
  "ordering_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordering_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
