# Empty compiler generated dependencies file for ordering_property_test.
# This may be replaced when dependencies are built.
