# Empty dependencies file for contention_law_test.
# This may be replaced when dependencies are built.
