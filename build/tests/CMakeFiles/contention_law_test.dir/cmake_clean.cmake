file(REMOVE_RECURSE
  "CMakeFiles/contention_law_test.dir/contention_law_test.cpp.o"
  "CMakeFiles/contention_law_test.dir/contention_law_test.cpp.o.d"
  "contention_law_test"
  "contention_law_test.pdb"
  "contention_law_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contention_law_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
