# Empty dependencies file for svd_variants_test.
# This may be replaced when dependencies are built.
