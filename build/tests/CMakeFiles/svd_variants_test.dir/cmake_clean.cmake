file(REMOVE_RECURSE
  "CMakeFiles/svd_variants_test.dir/svd_variants_test.cpp.o"
  "CMakeFiles/svd_variants_test.dir/svd_variants_test.cpp.o.d"
  "svd_variants_test"
  "svd_variants_test.pdb"
  "svd_variants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svd_variants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
