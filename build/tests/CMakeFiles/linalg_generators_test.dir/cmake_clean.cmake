file(REMOVE_RECURSE
  "CMakeFiles/linalg_generators_test.dir/linalg_generators_test.cpp.o"
  "CMakeFiles/linalg_generators_test.dir/linalg_generators_test.cpp.o.d"
  "linalg_generators_test"
  "linalg_generators_test.pdb"
  "linalg_generators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_generators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
