# Empty dependencies file for linalg_generators_test.
# This may be replaced when dependencies are built.
