file(REMOVE_RECURSE
  "CMakeFiles/ordering_oddeven_test.dir/ordering_oddeven_test.cpp.o"
  "CMakeFiles/ordering_oddeven_test.dir/ordering_oddeven_test.cpp.o.d"
  "ordering_oddeven_test"
  "ordering_oddeven_test.pdb"
  "ordering_oddeven_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordering_oddeven_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
