file(REMOVE_RECURSE
  "CMakeFiles/linalg_golub_kahan_test.dir/linalg_golub_kahan_test.cpp.o"
  "CMakeFiles/linalg_golub_kahan_test.dir/linalg_golub_kahan_test.cpp.o.d"
  "linalg_golub_kahan_test"
  "linalg_golub_kahan_test.pdb"
  "linalg_golub_kahan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_golub_kahan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
