# Empty compiler generated dependencies file for linalg_golub_kahan_test.
# This may be replaced when dependencies are built.
