# Empty dependencies file for ordering_hybrid_test.
# This may be replaced when dependencies are built.
