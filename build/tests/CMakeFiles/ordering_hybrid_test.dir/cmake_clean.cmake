file(REMOVE_RECURSE
  "CMakeFiles/ordering_hybrid_test.dir/ordering_hybrid_test.cpp.o"
  "CMakeFiles/ordering_hybrid_test.dir/ordering_hybrid_test.cpp.o.d"
  "ordering_hybrid_test"
  "ordering_hybrid_test.pdb"
  "ordering_hybrid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordering_hybrid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
