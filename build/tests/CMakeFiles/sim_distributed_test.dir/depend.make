# Empty dependencies file for sim_distributed_test.
# This may be replaced when dependencies are built.
