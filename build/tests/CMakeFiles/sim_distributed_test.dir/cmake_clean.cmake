file(REMOVE_RECURSE
  "CMakeFiles/sim_distributed_test.dir/sim_distributed_test.cpp.o"
  "CMakeFiles/sim_distributed_test.dir/sim_distributed_test.cpp.o.d"
  "sim_distributed_test"
  "sim_distributed_test.pdb"
  "sim_distributed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_distributed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
