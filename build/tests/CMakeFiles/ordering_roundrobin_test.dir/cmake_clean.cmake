file(REMOVE_RECURSE
  "CMakeFiles/ordering_roundrobin_test.dir/ordering_roundrobin_test.cpp.o"
  "CMakeFiles/ordering_roundrobin_test.dir/ordering_roundrobin_test.cpp.o.d"
  "ordering_roundrobin_test"
  "ordering_roundrobin_test.pdb"
  "ordering_roundrobin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordering_roundrobin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
