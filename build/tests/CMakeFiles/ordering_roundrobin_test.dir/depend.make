# Empty dependencies file for ordering_roundrobin_test.
# This may be replaced when dependencies are built.
