# Empty dependencies file for svd_kogbetliantz_test.
# This may be replaced when dependencies are built.
