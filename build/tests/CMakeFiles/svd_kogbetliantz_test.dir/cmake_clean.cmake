file(REMOVE_RECURSE
  "CMakeFiles/svd_kogbetliantz_test.dir/svd_kogbetliantz_test.cpp.o"
  "CMakeFiles/svd_kogbetliantz_test.dir/svd_kogbetliantz_test.cpp.o.d"
  "svd_kogbetliantz_test"
  "svd_kogbetliantz_test.pdb"
  "svd_kogbetliantz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svd_kogbetliantz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
