# Empty compiler generated dependencies file for svd_robustness_test.
# This may be replaced when dependencies are built.
