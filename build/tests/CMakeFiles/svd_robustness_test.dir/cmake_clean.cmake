file(REMOVE_RECURSE
  "CMakeFiles/svd_robustness_test.dir/svd_robustness_test.cpp.o"
  "CMakeFiles/svd_robustness_test.dir/svd_robustness_test.cpp.o.d"
  "svd_robustness_test"
  "svd_robustness_test.pdb"
  "svd_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svd_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
