file(REMOVE_RECURSE
  "CMakeFiles/ordering_llb_test.dir/ordering_llb_test.cpp.o"
  "CMakeFiles/ordering_llb_test.dir/ordering_llb_test.cpp.o.d"
  "ordering_llb_test"
  "ordering_llb_test.pdb"
  "ordering_llb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordering_llb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
