# Empty dependencies file for ordering_llb_test.
# This may be replaced when dependencies are built.
