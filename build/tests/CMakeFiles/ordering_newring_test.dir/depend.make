# Empty dependencies file for ordering_newring_test.
# This may be replaced when dependencies are built.
