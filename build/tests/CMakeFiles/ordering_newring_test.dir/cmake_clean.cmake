file(REMOVE_RECURSE
  "CMakeFiles/ordering_newring_test.dir/ordering_newring_test.cpp.o"
  "CMakeFiles/ordering_newring_test.dir/ordering_newring_test.cpp.o.d"
  "ordering_newring_test"
  "ordering_newring_test.pdb"
  "ordering_newring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordering_newring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
