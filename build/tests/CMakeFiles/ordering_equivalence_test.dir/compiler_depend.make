# Empty compiler generated dependencies file for ordering_equivalence_test.
# This may be replaced when dependencies are built.
