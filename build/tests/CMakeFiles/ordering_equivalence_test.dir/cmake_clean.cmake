file(REMOVE_RECURSE
  "CMakeFiles/ordering_equivalence_test.dir/ordering_equivalence_test.cpp.o"
  "CMakeFiles/ordering_equivalence_test.dir/ordering_equivalence_test.cpp.o.d"
  "ordering_equivalence_test"
  "ordering_equivalence_test.pdb"
  "ordering_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordering_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
