file(REMOVE_RECURSE
  "CMakeFiles/linalg_eigen_test.dir/linalg_eigen_test.cpp.o"
  "CMakeFiles/linalg_eigen_test.dir/linalg_eigen_test.cpp.o.d"
  "linalg_eigen_test"
  "linalg_eigen_test.pdb"
  "linalg_eigen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_eigen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
