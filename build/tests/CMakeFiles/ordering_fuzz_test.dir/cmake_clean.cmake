file(REMOVE_RECURSE
  "CMakeFiles/ordering_fuzz_test.dir/ordering_fuzz_test.cpp.o"
  "CMakeFiles/ordering_fuzz_test.dir/ordering_fuzz_test.cpp.o.d"
  "ordering_fuzz_test"
  "ordering_fuzz_test.pdb"
  "ordering_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordering_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
