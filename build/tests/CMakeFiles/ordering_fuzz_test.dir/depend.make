# Empty dependencies file for ordering_fuzz_test.
# This may be replaced when dependencies are built.
