file(REMOVE_RECURSE
  "CMakeFiles/svd_applications_test.dir/svd_applications_test.cpp.o"
  "CMakeFiles/svd_applications_test.dir/svd_applications_test.cpp.o.d"
  "svd_applications_test"
  "svd_applications_test.pdb"
  "svd_applications_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svd_applications_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
