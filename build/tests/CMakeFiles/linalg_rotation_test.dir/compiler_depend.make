# Empty compiler generated dependencies file for linalg_rotation_test.
# This may be replaced when dependencies are built.
