file(REMOVE_RECURSE
  "CMakeFiles/linalg_rotation_test.dir/linalg_rotation_test.cpp.o"
  "CMakeFiles/linalg_rotation_test.dir/linalg_rotation_test.cpp.o.d"
  "linalg_rotation_test"
  "linalg_rotation_test.pdb"
  "linalg_rotation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_rotation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
