#----------------------------------------------------------------
# Generated CMake target import file for configuration "Release".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "treesvd::treesvd_util" for configuration "Release"
set_property(TARGET treesvd::treesvd_util APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(treesvd::treesvd_util PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libtreesvd_util.a"
  )

list(APPEND _cmake_import_check_targets treesvd::treesvd_util )
list(APPEND _cmake_import_check_files_for_treesvd::treesvd_util "${_IMPORT_PREFIX}/lib/libtreesvd_util.a" )

# Import target "treesvd::treesvd_linalg" for configuration "Release"
set_property(TARGET treesvd::treesvd_linalg APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(treesvd::treesvd_linalg PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libtreesvd_linalg.a"
  )

list(APPEND _cmake_import_check_targets treesvd::treesvd_linalg )
list(APPEND _cmake_import_check_files_for_treesvd::treesvd_linalg "${_IMPORT_PREFIX}/lib/libtreesvd_linalg.a" )

# Import target "treesvd::treesvd_network" for configuration "Release"
set_property(TARGET treesvd::treesvd_network APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(treesvd::treesvd_network PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libtreesvd_network.a"
  )

list(APPEND _cmake_import_check_targets treesvd::treesvd_network )
list(APPEND _cmake_import_check_files_for_treesvd::treesvd_network "${_IMPORT_PREFIX}/lib/libtreesvd_network.a" )

# Import target "treesvd::treesvd_core" for configuration "Release"
set_property(TARGET treesvd::treesvd_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(treesvd::treesvd_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libtreesvd_core.a"
  )

list(APPEND _cmake_import_check_targets treesvd::treesvd_core )
list(APPEND _cmake_import_check_files_for_treesvd::treesvd_core "${_IMPORT_PREFIX}/lib/libtreesvd_core.a" )

# Import target "treesvd::treesvd_mp" for configuration "Release"
set_property(TARGET treesvd::treesvd_mp APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(treesvd::treesvd_mp PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libtreesvd_mp.a"
  )

list(APPEND _cmake_import_check_targets treesvd::treesvd_mp )
list(APPEND _cmake_import_check_files_for_treesvd::treesvd_mp "${_IMPORT_PREFIX}/lib/libtreesvd_mp.a" )

# Import target "treesvd::treesvd_svd" for configuration "Release"
set_property(TARGET treesvd::treesvd_svd APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(treesvd::treesvd_svd PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libtreesvd_svd.a"
  )

list(APPEND _cmake_import_check_targets treesvd::treesvd_svd )
list(APPEND _cmake_import_check_files_for_treesvd::treesvd_svd "${_IMPORT_PREFIX}/lib/libtreesvd_svd.a" )

# Import target "treesvd::treesvd_eigen" for configuration "Release"
set_property(TARGET treesvd::treesvd_eigen APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(treesvd::treesvd_eigen PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libtreesvd_eigen.a"
  )

list(APPEND _cmake_import_check_targets treesvd::treesvd_eigen )
list(APPEND _cmake_import_check_files_for_treesvd::treesvd_eigen "${_IMPORT_PREFIX}/lib/libtreesvd_eigen.a" )

# Import target "treesvd::treesvd_sim" for configuration "Release"
set_property(TARGET treesvd::treesvd_sim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(treesvd::treesvd_sim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libtreesvd_sim.a"
  )

list(APPEND _cmake_import_check_targets treesvd::treesvd_sim )
list(APPEND _cmake_import_check_files_for_treesvd::treesvd_sim "${_IMPORT_PREFIX}/lib/libtreesvd_sim.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
