# Empty dependencies file for treesvd_mp.
# This may be replaced when dependencies are built.
