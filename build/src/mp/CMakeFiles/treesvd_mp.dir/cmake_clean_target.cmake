file(REMOVE_RECURSE
  "libtreesvd_mp.a"
)
