file(REMOVE_RECURSE
  "CMakeFiles/treesvd_mp.dir/message_passing.cpp.o"
  "CMakeFiles/treesvd_mp.dir/message_passing.cpp.o.d"
  "libtreesvd_mp.a"
  "libtreesvd_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treesvd_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
