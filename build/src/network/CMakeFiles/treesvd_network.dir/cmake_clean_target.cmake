file(REMOVE_RECURSE
  "libtreesvd_network.a"
)
