# Empty dependencies file for treesvd_network.
# This may be replaced when dependencies are built.
