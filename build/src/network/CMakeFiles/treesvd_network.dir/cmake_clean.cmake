file(REMOVE_RECURSE
  "CMakeFiles/treesvd_network.dir/topology.cpp.o"
  "CMakeFiles/treesvd_network.dir/topology.cpp.o.d"
  "CMakeFiles/treesvd_network.dir/traffic.cpp.o"
  "CMakeFiles/treesvd_network.dir/traffic.cpp.o.d"
  "libtreesvd_network.a"
  "libtreesvd_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treesvd_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
