file(REMOVE_RECURSE
  "libtreesvd_sim.a"
)
