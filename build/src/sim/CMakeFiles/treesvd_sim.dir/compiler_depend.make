# Empty compiler generated dependencies file for treesvd_sim.
# This may be replaced when dependencies are built.
