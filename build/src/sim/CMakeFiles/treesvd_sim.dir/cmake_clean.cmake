file(REMOVE_RECURSE
  "CMakeFiles/treesvd_sim.dir/distributed.cpp.o"
  "CMakeFiles/treesvd_sim.dir/distributed.cpp.o.d"
  "CMakeFiles/treesvd_sim.dir/machine.cpp.o"
  "CMakeFiles/treesvd_sim.dir/machine.cpp.o.d"
  "libtreesvd_sim.a"
  "libtreesvd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treesvd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
