file(REMOVE_RECURSE
  "CMakeFiles/treesvd_linalg.dir/blas1.cpp.o"
  "CMakeFiles/treesvd_linalg.dir/blas1.cpp.o.d"
  "CMakeFiles/treesvd_linalg.dir/generators.cpp.o"
  "CMakeFiles/treesvd_linalg.dir/generators.cpp.o.d"
  "CMakeFiles/treesvd_linalg.dir/golub_kahan.cpp.o"
  "CMakeFiles/treesvd_linalg.dir/golub_kahan.cpp.o.d"
  "CMakeFiles/treesvd_linalg.dir/matrix.cpp.o"
  "CMakeFiles/treesvd_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/treesvd_linalg.dir/qr.cpp.o"
  "CMakeFiles/treesvd_linalg.dir/qr.cpp.o.d"
  "CMakeFiles/treesvd_linalg.dir/rotation.cpp.o"
  "CMakeFiles/treesvd_linalg.dir/rotation.cpp.o.d"
  "CMakeFiles/treesvd_linalg.dir/symmetric_eigen.cpp.o"
  "CMakeFiles/treesvd_linalg.dir/symmetric_eigen.cpp.o.d"
  "libtreesvd_linalg.a"
  "libtreesvd_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treesvd_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
