file(REMOVE_RECURSE
  "libtreesvd_linalg.a"
)
