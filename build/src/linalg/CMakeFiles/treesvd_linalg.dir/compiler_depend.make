# Empty compiler generated dependencies file for treesvd_linalg.
# This may be replaced when dependencies are built.
