
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/blas1.cpp" "src/linalg/CMakeFiles/treesvd_linalg.dir/blas1.cpp.o" "gcc" "src/linalg/CMakeFiles/treesvd_linalg.dir/blas1.cpp.o.d"
  "/root/repo/src/linalg/generators.cpp" "src/linalg/CMakeFiles/treesvd_linalg.dir/generators.cpp.o" "gcc" "src/linalg/CMakeFiles/treesvd_linalg.dir/generators.cpp.o.d"
  "/root/repo/src/linalg/golub_kahan.cpp" "src/linalg/CMakeFiles/treesvd_linalg.dir/golub_kahan.cpp.o" "gcc" "src/linalg/CMakeFiles/treesvd_linalg.dir/golub_kahan.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "src/linalg/CMakeFiles/treesvd_linalg.dir/matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/treesvd_linalg.dir/matrix.cpp.o.d"
  "/root/repo/src/linalg/qr.cpp" "src/linalg/CMakeFiles/treesvd_linalg.dir/qr.cpp.o" "gcc" "src/linalg/CMakeFiles/treesvd_linalg.dir/qr.cpp.o.d"
  "/root/repo/src/linalg/rotation.cpp" "src/linalg/CMakeFiles/treesvd_linalg.dir/rotation.cpp.o" "gcc" "src/linalg/CMakeFiles/treesvd_linalg.dir/rotation.cpp.o.d"
  "/root/repo/src/linalg/symmetric_eigen.cpp" "src/linalg/CMakeFiles/treesvd_linalg.dir/symmetric_eigen.cpp.o" "gcc" "src/linalg/CMakeFiles/treesvd_linalg.dir/symmetric_eigen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/treesvd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
