file(REMOVE_RECURSE
  "libtreesvd_util.a"
)
