file(REMOVE_RECURSE
  "CMakeFiles/treesvd_util.dir/cli.cpp.o"
  "CMakeFiles/treesvd_util.dir/cli.cpp.o.d"
  "CMakeFiles/treesvd_util.dir/rng.cpp.o"
  "CMakeFiles/treesvd_util.dir/rng.cpp.o.d"
  "CMakeFiles/treesvd_util.dir/table.cpp.o"
  "CMakeFiles/treesvd_util.dir/table.cpp.o.d"
  "CMakeFiles/treesvd_util.dir/thread_pool.cpp.o"
  "CMakeFiles/treesvd_util.dir/thread_pool.cpp.o.d"
  "libtreesvd_util.a"
  "libtreesvd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treesvd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
