# Empty compiler generated dependencies file for treesvd_util.
# This may be replaced when dependencies are built.
