
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/svd/applications.cpp" "src/svd/CMakeFiles/treesvd_svd.dir/applications.cpp.o" "gcc" "src/svd/CMakeFiles/treesvd_svd.dir/applications.cpp.o.d"
  "/root/repo/src/svd/block_jacobi.cpp" "src/svd/CMakeFiles/treesvd_svd.dir/block_jacobi.cpp.o" "gcc" "src/svd/CMakeFiles/treesvd_svd.dir/block_jacobi.cpp.o.d"
  "/root/repo/src/svd/jacobi.cpp" "src/svd/CMakeFiles/treesvd_svd.dir/jacobi.cpp.o" "gcc" "src/svd/CMakeFiles/treesvd_svd.dir/jacobi.cpp.o.d"
  "/root/repo/src/svd/kogbetliantz.cpp" "src/svd/CMakeFiles/treesvd_svd.dir/kogbetliantz.cpp.o" "gcc" "src/svd/CMakeFiles/treesvd_svd.dir/kogbetliantz.cpp.o.d"
  "/root/repo/src/svd/preconditioned.cpp" "src/svd/CMakeFiles/treesvd_svd.dir/preconditioned.cpp.o" "gcc" "src/svd/CMakeFiles/treesvd_svd.dir/preconditioned.cpp.o.d"
  "/root/repo/src/svd/spmd.cpp" "src/svd/CMakeFiles/treesvd_svd.dir/spmd.cpp.o" "gcc" "src/svd/CMakeFiles/treesvd_svd.dir/spmd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/treesvd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/treesvd_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/treesvd_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/treesvd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
