file(REMOVE_RECURSE
  "libtreesvd_svd.a"
)
