file(REMOVE_RECURSE
  "CMakeFiles/treesvd_svd.dir/applications.cpp.o"
  "CMakeFiles/treesvd_svd.dir/applications.cpp.o.d"
  "CMakeFiles/treesvd_svd.dir/block_jacobi.cpp.o"
  "CMakeFiles/treesvd_svd.dir/block_jacobi.cpp.o.d"
  "CMakeFiles/treesvd_svd.dir/jacobi.cpp.o"
  "CMakeFiles/treesvd_svd.dir/jacobi.cpp.o.d"
  "CMakeFiles/treesvd_svd.dir/kogbetliantz.cpp.o"
  "CMakeFiles/treesvd_svd.dir/kogbetliantz.cpp.o.d"
  "CMakeFiles/treesvd_svd.dir/preconditioned.cpp.o"
  "CMakeFiles/treesvd_svd.dir/preconditioned.cpp.o.d"
  "CMakeFiles/treesvd_svd.dir/spmd.cpp.o"
  "CMakeFiles/treesvd_svd.dir/spmd.cpp.o.d"
  "libtreesvd_svd.a"
  "libtreesvd_svd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treesvd_svd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
