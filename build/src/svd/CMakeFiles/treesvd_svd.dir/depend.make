# Empty dependencies file for treesvd_svd.
# This may be replaced when dependencies are built.
