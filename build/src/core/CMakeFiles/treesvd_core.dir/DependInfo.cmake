
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/block_ring.cpp" "src/core/CMakeFiles/treesvd_core.dir/block_ring.cpp.o" "gcc" "src/core/CMakeFiles/treesvd_core.dir/block_ring.cpp.o.d"
  "/root/repo/src/core/fat_tree.cpp" "src/core/CMakeFiles/treesvd_core.dir/fat_tree.cpp.o" "gcc" "src/core/CMakeFiles/treesvd_core.dir/fat_tree.cpp.o.d"
  "/root/repo/src/core/hybrid.cpp" "src/core/CMakeFiles/treesvd_core.dir/hybrid.cpp.o" "gcc" "src/core/CMakeFiles/treesvd_core.dir/hybrid.cpp.o.d"
  "/root/repo/src/core/new_ring.cpp" "src/core/CMakeFiles/treesvd_core.dir/new_ring.cpp.o" "gcc" "src/core/CMakeFiles/treesvd_core.dir/new_ring.cpp.o.d"
  "/root/repo/src/core/odd_even.cpp" "src/core/CMakeFiles/treesvd_core.dir/odd_even.cpp.o" "gcc" "src/core/CMakeFiles/treesvd_core.dir/odd_even.cpp.o.d"
  "/root/repo/src/core/ordering.cpp" "src/core/CMakeFiles/treesvd_core.dir/ordering.cpp.o" "gcc" "src/core/CMakeFiles/treesvd_core.dir/ordering.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/core/CMakeFiles/treesvd_core.dir/registry.cpp.o" "gcc" "src/core/CMakeFiles/treesvd_core.dir/registry.cpp.o.d"
  "/root/repo/src/core/round_robin.cpp" "src/core/CMakeFiles/treesvd_core.dir/round_robin.cpp.o" "gcc" "src/core/CMakeFiles/treesvd_core.dir/round_robin.cpp.o.d"
  "/root/repo/src/core/validate.cpp" "src/core/CMakeFiles/treesvd_core.dir/validate.cpp.o" "gcc" "src/core/CMakeFiles/treesvd_core.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/treesvd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
