# Empty compiler generated dependencies file for treesvd_core.
# This may be replaced when dependencies are built.
