file(REMOVE_RECURSE
  "CMakeFiles/treesvd_core.dir/block_ring.cpp.o"
  "CMakeFiles/treesvd_core.dir/block_ring.cpp.o.d"
  "CMakeFiles/treesvd_core.dir/fat_tree.cpp.o"
  "CMakeFiles/treesvd_core.dir/fat_tree.cpp.o.d"
  "CMakeFiles/treesvd_core.dir/hybrid.cpp.o"
  "CMakeFiles/treesvd_core.dir/hybrid.cpp.o.d"
  "CMakeFiles/treesvd_core.dir/new_ring.cpp.o"
  "CMakeFiles/treesvd_core.dir/new_ring.cpp.o.d"
  "CMakeFiles/treesvd_core.dir/odd_even.cpp.o"
  "CMakeFiles/treesvd_core.dir/odd_even.cpp.o.d"
  "CMakeFiles/treesvd_core.dir/ordering.cpp.o"
  "CMakeFiles/treesvd_core.dir/ordering.cpp.o.d"
  "CMakeFiles/treesvd_core.dir/registry.cpp.o"
  "CMakeFiles/treesvd_core.dir/registry.cpp.o.d"
  "CMakeFiles/treesvd_core.dir/round_robin.cpp.o"
  "CMakeFiles/treesvd_core.dir/round_robin.cpp.o.d"
  "CMakeFiles/treesvd_core.dir/validate.cpp.o"
  "CMakeFiles/treesvd_core.dir/validate.cpp.o.d"
  "libtreesvd_core.a"
  "libtreesvd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treesvd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
