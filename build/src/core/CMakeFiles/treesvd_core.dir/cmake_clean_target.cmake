file(REMOVE_RECURSE
  "libtreesvd_core.a"
)
