# Empty dependencies file for treesvd_eigen.
# This may be replaced when dependencies are built.
