file(REMOVE_RECURSE
  "CMakeFiles/treesvd_eigen.dir/jacobi_eigen.cpp.o"
  "CMakeFiles/treesvd_eigen.dir/jacobi_eigen.cpp.o.d"
  "libtreesvd_eigen.a"
  "libtreesvd_eigen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treesvd_eigen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
