file(REMOVE_RECURSE
  "libtreesvd_eigen.a"
)
