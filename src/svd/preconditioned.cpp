#include "svd/preconditioned.hpp"

#include <algorithm>

#include "linalg/qr.hpp"
#include "svd/equilibrate.hpp"
#include "svd/recovery.hpp"
#include "util/require.hpp"

namespace treesvd {

SvdResult qr_preconditioned_jacobi(const Matrix& a, const Ordering& ordering,
                                   const JacobiOptions& options) {
  TREESVD_REQUIRE(a.rows() >= a.cols() && a.cols() >= 2,
                  "qr_preconditioned_jacobi expects m >= n >= 2");
  require_finite_columns(a, "qr_preconditioned_jacobi");
  // Equilibrate before the QR: the Householder reflector applications form
  // dot products of the raw entries, so extreme scales must be tamed here,
  // not just inside the inner Jacobi. The R factor inherits the scaled range,
  // so the inner engine's own kAuto pass is then a no-op.
  Matrix a_scaled = a;
  const Equilibration eq = equilibrate(a_scaled, options.equilibrate);
  const HouseholderQr qr(a_scaled);
  const Matrix r_factor = qr.r();

  SvdResult r = one_sided_jacobi(r_factor, ordering, options);

  // U = Q * [U_R; 0]: embed U_R into an m x n block and apply Q.
  Matrix u_full(a.rows(), a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j) {
    const auto src = r.u.col(j);
    const auto dst = u_full.col(j);
    std::copy(src.begin(), src.end(), dst.begin());  // top n rows
  }
  qr.apply_q(u_full);
  r.u = std::move(u_full);

  // Undo the outer scaling (exact) and report the original input's dynamic
  // range; the inner run's sigma already had its own (no-op) scaling undone.
  unscale_sigma(r.sigma, eq);
  r.diagnostics.input_scale = eq.stats;
  r.diagnostics.equilibrated = eq.applied || r.diagnostics.equilibrated;
  r.diagnostics.equilibration_exponent += eq.exponent;
  return r;
}

}  // namespace treesvd
