#pragma once
// Shared internals of the one-sided Jacobi drivers.
//
// The serial/threaded/cyclic drivers (jacobi.cpp) and the batched many-SVD
// engine (batch.cpp) must agree bit-for-bit on everything outside the sweep
// loop: column padding, the per-run robustness guards, the scheduled cache
// refresh cadence, and the finalisation that turns the rotated working
// matrix into (U, sigma, V) plus the status contract. Keeping one definition
// here is what makes "batched lane b == sequential run b" a structural
// property instead of a maintenance promise.

#include <algorithm>
#include <string>
#include <vector>

#include "core/ordering.hpp"
#include "linalg/blas1.hpp"
#include "linalg/matrix.hpp"
#include "svd/equilibrate.hpp"
#include "svd/jacobi.hpp"
#include "svd/norm_cache.hpp"
#include "svd/recovery.hpp"
#include "util/require.hpp"

namespace treesvd::detail {

/// Smallest width w >= n the ordering supports (searched up to 2n+4, the
/// same window pad_columns always used). Throws when nothing in the window
/// is supported.
inline int padded_width(const Ordering& ordering, int n) {
  for (int w = n; w <= 2 * n + 4; ++w) {
    if (ordering.supports(w)) return w;
  }
  TREESVD_REQUIRE(false, ordering.name() + " supports no width in [n, 2n+4] for n=" +
                             std::to_string(n));
  return 0;
}

/// Pads A with zero columns to the nearest width the ordering supports.
inline Matrix pad_columns(const Matrix& a, const Ordering& ordering, int* padded_n) {
  const int n = static_cast<int>(a.cols());
  const int w = padded_width(ordering, n);
  *padded_n = w;
  if (w == n) return a;
  Matrix p(a.rows(), static_cast<std::size_t>(w));
  for (std::size_t j = 0; j < a.cols(); ++j) {
    const auto src = a.col(j);
    const auto dst = p.col(j);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return p;
}

/// Per-driver robustness state: the equilibration record plus the (always
/// observational) stall classifier and (opt-in) watchdog, threaded through
/// finalize so every result carries the status contract.
struct SweepGuards {
  Equilibration eq;
  StallDetector stall;
  ConvergenceWatchdog watchdog{0};
  std::size_t watchdog_trips = 0;

  explicit SweepGuards(const JacobiOptions& opt)
      : stall(opt.stall_window), watchdog(opt.watchdog_sweeps) {}

  /// Feeds one sweep's activity; returns true when the watchdog demands a
  /// norm re-reduction (the caller refreshes its cache).
  bool observe(double activity) {
    stall.observe(activity);
    if (!watchdog.observe(activity)) return false;
    ++watchdog_trips;
    watchdog.reset();
    return true;
  }
};

inline SvdResult finalize(Matrix h, Matrix v, const Matrix& a, const JacobiOptions& opt,
                          const SweepGuards& guards, SvdResult partial) {
  const std::size_t n = a.cols();
  SvdResult r = std::move(partial);
  // Sigma, smax and the U division all happen at the equilibrated scale (h
  // still carries the 2^e factor, and so do the norms); the common factor
  // cancels bitwise in every ratio, and sigma is unscaled exactly at the end.
  r.sigma.resize(n);
  for (std::size_t j = 0; j < n; ++j) r.sigma[j] = nrm2(h.col(j));
  const double smax = *std::max_element(r.sigma.begin(), r.sigma.end());

  r.u = Matrix(h.rows(), n);
  for (std::size_t j = 0; j < n; ++j) {
    if (r.sigma[j] > opt.rank_tol * smax && r.sigma[j] > 0.0)
      copy_div(h.col(j), r.sigma[j], r.u.col(j));
  }
  if (opt.compute_v) {
    r.v = Matrix(n, n);
    for (std::size_t j = 0; j < n; ++j) {
      const auto src = v.col(j);
      const auto dst = r.v.col(j);
      std::copy(src.begin(), src.begin() + static_cast<std::ptrdiff_t>(n), dst.begin());
    }
  }
  unscale_sigma(r.sigma, guards.eq);

  r.status = r.converged ? SvdStatus::kConverged
                         : (guards.stall.stalled() ? SvdStatus::kStalled
                                                   : SvdStatus::kMaxSweeps);
  r.diagnostics.input_scale = guards.eq.stats;
  r.diagnostics.equilibrated = guards.eq.applied;
  r.diagnostics.equilibration_exponent = guards.eq.exponent;
  r.diagnostics.watchdog_trips = guards.watchdog_trips;
  r.diagnostics.stalled_sweeps = guards.stall.streak();
  if (!r.converged || opt.full_diagnostics)
    assess_quality(a, r, guards.eq.exponent, opt.rank_tol);
  return r;
}

/// True exactly when the drivers' scheduled drift control re-reduces the
/// whole norm cache before processing sweep `sweep` (the near-threshold
/// guard in the pair kernel handles the decision-critical cases in between).
inline bool scheduled_refresh_due(int sweep, const JacobiOptions& opt) noexcept {
  return sweep > 0 && opt.norm_recompute_sweeps > 0 && sweep % opt.norm_recompute_sweeps == 0;
}

/// Scheduled drift control: full cache re-reduction every
/// norm_recompute_sweeps sweeps.
inline void maybe_refresh(NormCache* cache, const Matrix& h, int sweep,
                          const JacobiOptions& opt) {
  if (cache == nullptr || cache->empty()) return;
  if (scheduled_refresh_due(sweep, opt)) cache->refresh(h);
}

}  // namespace treesvd::detail
