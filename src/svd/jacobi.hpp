#pragma once
// Hestenes one-sided Jacobi SVD driven by a parallel ordering.
//
// The method generates an orthogonal V as a product of plane rotations with
// A V = H, H's nonzero columns orthogonal; normalising H gives U and the
// singular values. Rotations are organised in sweeps drawn from an Ordering
// (treesvd::core); the serial cyclic method is available as a baseline.

#include <cstddef>
#include <optional>
#include <vector>

#include "core/ordering.hpp"
#include "linalg/dispatch.hpp"
#include "linalg/matrix.hpp"
#include "svd/norm_cache.hpp"
#include "svd/status.hpp"

namespace treesvd {

class ThreadPool;

/// Sorting behaviour during the iteration.
enum class SortMode {
  kNone,        ///< leave the singular values wherever they converge
  kDescending,  ///< keep the larger-norm column at the smaller index: the
                ///< singular values emerge in nonincreasing order (using the
                ///< fused rotate-and-swap of eq. (3), never an explicit
                ///< column interchange)
};

struct JacobiOptions {
  /// Relative orthogonality threshold: a pair with
  /// |a_i.a_j| <= tol*||a_i||*||a_j|| is skipped (threshold strategy).
  double tol = 1e-13;
  int max_sweeps = 60;
  SortMode sort = SortMode::kDescending;
  bool compute_v = true;
  /// Record off(A^T A) = sqrt(sum_{i<j} (a_i.a_j)^2) after every sweep
  /// (costs an extra O(n^2 m) pass per sweep).
  bool track_off = false;
  /// Singular values below rank_tol * sigma_max are treated as zero when
  /// forming U (their U columns are left zero).
  double rank_tol = 1e-12;
  /// Cached-norm fast path: keep per-column squared norms in a NormCache so
  /// each pair costs one dot-product accumulation instead of a full
  /// three-element gram_pair (see norm_cache.hpp for the invariants).
  bool cache_norms = true;
  /// Drift control: fully re-reduce the NormCache every this many sweeps
  /// (<= 0 disables the scheduled refresh; the near-threshold guard in the
  /// pair kernel still applies).
  int norm_recompute_sweeps = 8;
  /// Threaded driver: pairs per ThreadPool scheduling chunk; 0 = automatic
  /// (tiny steps run inline on the calling thread).
  std::size_t grain = 0;
  /// Exact power-of-two input equilibration (svd/equilibrate.hpp). kAuto
  /// rescales only when the entry magnitudes endanger the squared-norm
  /// pipeline (a no-op on well-scaled inputs); the scaling is bitwise
  /// transparent — sigma, U, V and sweep counts match the unequilibrated run
  /// exactly whenever that run stays in range.
  EquilibrateMode equilibrate = EquilibrateMode::kAuto;
  /// Engine-level convergence watchdog (svd/recovery.hpp): when > 0, a
  /// sweep-activity plateau of this many sweeps forces a full norm
  /// re-reduction (the only repairable source of stagnation). 0 disables the
  /// active repair; the *observational* stall classifier below still runs.
  int watchdog_sweeps = 0;
  /// Trailing window of the always-on stall classifier: a non-converged run
  /// whose activity failed to decrease for this many final sweeps reports
  /// SvdStatus::kStalled instead of kMaxSweeps. Purely diagnostic — it never
  /// changes the iteration.
  int stall_window = 4;
  /// Compute the heavy quality diagnostics (scaled residual, orthonormality
  /// defects; an extra O(mn^2)) even when the run converged. They are always
  /// computed for non-converged runs.
  bool full_diagnostics = false;
  /// CPU-dispatch tier for this solve (linalg/dispatch.hpp): kIsaAuto keeps
  /// the process-wide resolution (TREESVD_ISA env, else cpuid); an IsaTier
  /// value cast to int forces that tier, clamped down to what the host
  /// supports. Results are bitwise identical on every tier — this knob is
  /// for benchmarking and for pinning a tier in tests. The override is
  /// process-wide for the duration of the solve (see dispatch.hpp on the
  /// benign-race caveat for concurrent solves forcing different tiers).
  int force_isa = kIsaAuto;
};

struct SvdResult {
  Matrix u;                  ///< m x n; columns with sigma ~ 0 are zero
  std::vector<double> sigma; ///< n singular values (descending when sorted)
  Matrix v;                  ///< n x n (empty when compute_v is false)
  int sweeps = 0;            ///< sweeps actually performed
  bool converged = false;    ///< a full sweep passed with no rotation/swap
  std::size_t rotations = 0; ///< rotations above the threshold
  std::size_t swaps = 0;     ///< sorting interchanges (fused into rotations)
  std::vector<double> off_history;  ///< off(A^T A) per sweep when tracked
  KernelStats kernel_stats;  ///< debug pass counters from the pair kernels
  /// Machine-readable classification of how the iteration ended; kConverged
  /// iff `converged`. Non-converged results are still best-effort
  /// factorizations — consult `diagnostics` for how much to trust them.
  SvdStatus status = SvdStatus::kMaxSweeps;
  /// Quality/provenance diagnostics (see svd/status.hpp for which fields are
  /// filled in when).
  SvdDiagnostics diagnostics;

  /// Number of singular values above rank_tol * sigma_max.
  std::size_t rank(double rank_tol = 1e-12) const;
};

/// One-sided Jacobi SVD of an m x n matrix (m >= n) using the given parallel
/// ordering. If the ordering does not support n directly (e.g. fat-tree needs
/// a power of two), the matrix is padded with zero columns up to the nearest
/// supported width; padding is removed from the result.
SvdResult one_sided_jacobi(const Matrix& a, const Ordering& ordering,
                           const JacobiOptions& options = {});

/// Serial cyclic baseline (row-cyclic pair order), same semantics.
SvdResult cyclic_jacobi(const Matrix& a, const JacobiOptions& options = {});

/// Thread-parallel variant: the disjoint pairs of each step run concurrently
/// on a thread pool (threads == 0 selects hardware concurrency). Identical
/// results to one_sided_jacobi — rotations within a step commute because the
/// pairs are disjoint.
SvdResult one_sided_jacobi_threaded(const Matrix& a, const Ordering& ordering,
                                    const JacobiOptions& options = {}, unsigned threads = 0);

/// off(A^T A) relative to ||A||_F^2: the convergence measure of the paper's
/// quadratic-convergence claim.
double off_diagonal_measure(const Matrix& a);

/// Same measure, with the O(n^2 m) pair products spread over `pool` (nullptr
/// runs serially) and the diagonal terms taken from `cache` when non-null
/// (saving one dot per column). The drivers use this form when track_off is
/// set.
double off_diagonal_measure(const Matrix& a, ThreadPool* pool, const NormCache* cache);

}  // namespace treesvd
