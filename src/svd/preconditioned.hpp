#pragma once
// QR-preconditioned Jacobi SVD: for tall matrices (m >> n) factor A = Q R
// first and run the parallel Jacobi engine on the small square R — the
// standard way to make column-rotation cost independent of m.

#include "core/ordering.hpp"
#include "linalg/matrix.hpp"
#include "svd/jacobi.hpp"

namespace treesvd {

/// SVD of an m x n matrix (m >= n) via Householder QR + one-sided Jacobi on
/// R. Result semantics match one_sided_jacobi (U is m x n, rebuilt as Q*U_R).
/// `sweeps` counts Jacobi sweeps on R.
SvdResult qr_preconditioned_jacobi(const Matrix& a, const Ordering& ordering,
                                   const JacobiOptions& options = {});

}  // namespace treesvd
