#pragma once
// Determinism-oracle digests of SvdResult (tools/treesvd_race, tests).
//
// The repo's strongest concurrency contract is that the threaded and SPMD
// engines reproduce the serial engine *bitwise* — values, factors, and the
// kernel pass counters. These helpers reduce a result to FNV-1a 64 digests
// so the oracle can compare K perturbed schedules against the serial
// reference with a single integer equality.

#include <cstdint>

#include "svd/jacobi.hpp"

namespace treesvd {

/// Digest of the numerical contract: sigma, U, V (bit patterns), sweep and
/// rotation/swap counts, convergence flag and status. Equal digests mean a
/// bit-identical factorization.
std::uint64_t result_core_digest(const SvdResult& r);

/// Core digest extended with every KernelStats counter — the full
/// schedule-invariance contract (identical work accounting, not just
/// identical numbers).
std::uint64_t result_digest(const SvdResult& r);

}  // namespace treesvd
