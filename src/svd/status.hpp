#pragma once
// Graceful-degradation contract for every SVD engine.
//
// A non-converged run used to come back as a bare `converged=false` with no
// diagnosis. Engines now classify how the iteration ended (SvdStatus), record
// the dynamic range they were handed (ScaleStats) and, on any non-converged
// exit, attach quality diagnostics (scaled residual, orthonormality defect)
// so callers always receive a best-effort factorization plus a
// machine-readable explanation of how much to trust it.

#include <string>

#include "linalg/matrix.hpp"

namespace treesvd {

struct SvdResult;

/// How an SVD iteration ended. The first three are engine outcomes; the last
/// two are *serving* outcomes (svd/serve.hpp): a request can be retired
/// without its solve ever running (deadline) or after its solve threw
/// (poison input, injected fault). Serving-terminal results carry no factor
/// payload — sigma/U/V are empty — and diagnostics.error says why.
enum class SvdStatus {
  kConverged,        ///< a full sweep passed with no rotation or swap
  kMaxSweeps,        ///< sweep budget exhausted while activity was still decreasing
  kStalled,          ///< sweep budget exhausted with activity non-decreasing over
                     ///< the trailing stall window — more sweeps would not help
  kDeadlineExpired,  ///< request shed: its deadline passed before a solve ran
  kFailed,           ///< request's solve threw; diagnostics.error holds the cause
};

/// Human-readable status name ("converged", "max-sweeps", "stalled",
/// "deadline-expired", "failed").
const char* to_string(SvdStatus status) noexcept;

/// Input equilibration policy (see svd/equilibrate.hpp). The scaling is a
/// uniform exact power of two, so it commutes bitwise with every rotation
/// decision: equilibrated and unequilibrated runs produce identical sigma
/// (after the exact unscale), U, V and sweep counts whenever neither run
/// hits overflow/underflow.
enum class EquilibrateMode {
  kAuto,    ///< scale only when the entry magnitudes endanger squared-norm
            ///< accumulation (the default; a no-op on well-scaled inputs)
  kAlways,  ///< scale whenever max|a_ij| is not already in [1, 2)
  kOff,     ///< never scale
};

/// Dynamic-range statistics of a matrix, gathered in one pass.
struct ScaleStats {
  double max_abs = 0.0;          ///< largest |a_ij| (0 for the zero matrix)
  double min_abs_nonzero = 0.0;  ///< smallest nonzero |a_ij| (0 if all zero)
  int max_exponent = 0;          ///< ilogb(max_abs); 0 when max_abs == 0
  int min_exponent = 0;          ///< ilogb(min_abs_nonzero); 0 when all zero
  std::size_t zero_entries = 0;  ///< exact zeros (padding and rank structure)

  /// Binary orders of magnitude spanned by the nonzero entries.
  int exponent_span() const noexcept { return max_exponent - min_exponent; }
};

/// One-pass scan of the entry magnitudes.
ScaleStats scan_scale(const Matrix& a) noexcept;

/// Quality diagnostics attached to an SvdResult. The cheap fields (scale
/// stats, equilibration, stall/watchdog counters) are always filled in; the
/// heavy ones (residual and defects, an extra O(mn^2) of work) are computed
/// whenever the run did not converge, or on request via
/// JacobiOptions::full_diagnostics — a value of -1 means "not computed".
struct SvdDiagnostics {
  ScaleStats input_scale;        ///< dynamic range of the engine input
  bool equilibrated = false;     ///< whether the pre-pass rescaled the input
  int equilibration_exponent = 0;  ///< a was scaled by 2^exponent internally
  std::size_t watchdog_trips = 0;  ///< forced norm re-reductions (engine-level)
  int stalled_sweeps = 0;        ///< trailing sweeps with non-decreasing activity
  double scaled_residual = -1.0; ///< ||A - U diag(sigma) V^T||_F / ||A||_F
  double u_defect = -1.0;        ///< max |u_i.u_j - delta_ij| over kept columns
  double v_defect = -1.0;        ///< max |v_i.v_j - delta_ij|
  std::string error;             ///< failure context for kFailed /
                                 ///< kDeadlineExpired results (empty otherwise)
};

/// Fills the heavy diagnostics fields of `result.diagnostics` from the
/// original (unscaled) input. `exponent` is the equilibration exponent the
/// engine used; the residual is evaluated at the equilibrated scale so the
/// metric stays finite even when ||A||_F^2 would overflow. Safe to call on
/// converged results too (e.g. from tools that always want the metrics).
void assess_quality(const Matrix& a, SvdResult& result, int exponent, double rank_tol);

}  // namespace treesvd
