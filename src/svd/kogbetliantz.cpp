#include "svd/kogbetliantz.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "svd/equilibrate.hpp"
#include "svd/recovery.hpp"
#include "util/require.hpp"

namespace treesvd {
namespace {

struct Staged {
  int i;
  int j;
  TwoSidedRotation rot;
};

double off_fraction(const Matrix& a) {
  double off = 0.0;
  double total = 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    for (std::size_t i = 0; i < a.rows(); ++i) {
      const double x = a(i, j);
      total += x * x;
      if (i != j) off += x * x;
    }
  }
  return total == 0.0 ? 0.0 : std::sqrt(off / total);
}

}  // namespace

TwoSidedRotation two_sided_rotation(double w, double x, double y, double z) noexcept {
  // Angles from the two decoupled conditions (see header):
  //   tan(alpha + beta) = (x + y) / (w - z)
  //   tan(alpha - beta) = (y - x) / (w + z)
  double sum = std::atan2(x + y, w - z);
  double dif = std::atan2(y - x, w + z);
  // Fold into (-pi/2, pi/2]: shifts by pi only flip a sign of the resulting
  // diagonal, and the smaller angles aid convergence.
  if (sum > M_PI_2) sum -= M_PI;
  if (sum <= -M_PI_2) sum += M_PI;
  if (dif > M_PI_2) dif -= M_PI;
  if (dif <= -M_PI_2) dif += M_PI;
  const double alpha = 0.5 * (sum + dif);
  const double beta = 0.5 * (sum - dif);
  return {std::cos(alpha), std::sin(alpha), std::cos(beta), std::sin(beta)};
}

KogbetliantzResult kogbetliantz_svd(const Matrix& a, const Ordering& ordering,
                                    const KogbetliantzOptions& options) {
  TREESVD_REQUIRE(a.rows() == a.cols() && a.rows() >= 2,
                  "kogbetliantz_svd needs a square matrix (QR-reduce tall inputs first)");
  require_finite_columns(a, "kogbetliantz_svd");
  const std::size_t n0 = a.rows();
  int padded = 0;
  for (int w = static_cast<int>(n0); w <= 2 * static_cast<int>(n0) + 4; ++w) {
    if (ordering.supports(w)) {
      padded = w;
      break;
    }
  }
  TREESVD_REQUIRE(padded > 0, ordering.name() + " supports no width near n");
  const auto np = static_cast<std::size_t>(padded);

  Matrix work(np, np);
  for (std::size_t j = 0; j < n0; ++j)
    for (std::size_t i = 0; i < n0; ++i) work(i, j) = a(i, j);
  // Pad diagonal with zeros: exact singular values 0, inert under the
  // threshold (their rows/columns stay zero).
  const Equilibration eq = equilibrate(work, options.equilibrate);
  StallDetector stall(options.stall_window);

  Matrix u = options.compute_uv ? Matrix::identity(np) : Matrix();
  Matrix v = options.compute_uv ? Matrix::identity(np) : Matrix();

  const double scale = std::max(work.max_abs(), 1e-300);

  std::vector<int> layout(np);
  std::iota(layout.begin(), layout.end(), 0);

  KogbetliantzResult r;
  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    const Sweep s = ordering.sweep_from(layout, sweep);
    std::size_t sweep_rot = 0;
    for (int t = 0; t < s.steps(); ++t) {
      std::vector<Staged> staged;
      for (const IndexPair& p : s.pairs(t)) {
        const auto i = static_cast<std::size_t>(std::min(p.even, p.odd));
        const auto j = static_cast<std::size_t>(std::max(p.even, p.odd));
        const double aij = work(i, j);
        const double aji = work(j, i);
        if (std::fabs(aij) <= options.tol * scale && std::fabs(aji) <= options.tol * scale)
          continue;
        staged.push_back({static_cast<int>(i), static_cast<int>(j),
                          two_sided_rotation(work(i, i), aij, aji, work(j, j))});
        ++sweep_rot;
      }
      // Left phase: rows i, j combine (J_l^T from the left).
      for (const Staged& st : staged) {
        const auto i = static_cast<std::size_t>(st.i);
        const auto j = static_cast<std::size_t>(st.j);
        for (std::size_t k = 0; k < np; ++k) {
          const double rik = work(i, k);
          const double rjk = work(j, k);
          work(i, k) = st.rot.cl * rik + st.rot.sl * rjk;
          work(j, k) = -st.rot.sl * rik + st.rot.cl * rjk;
        }
        if (options.compute_uv) {
          const auto ui = u.col(i);
          const auto uj = u.col(j);
          for (std::size_t k = 0; k < np; ++k) {
            const double a1 = ui[k];
            const double a2 = uj[k];
            ui[k] = st.rot.cl * a1 + st.rot.sl * a2;
            uj[k] = -st.rot.sl * a1 + st.rot.cl * a2;
          }
        }
      }
      // Right phase: columns i, j combine (J_r from the right).
      for (const Staged& st : staged) {
        const auto i = static_cast<std::size_t>(st.i);
        const auto j = static_cast<std::size_t>(st.j);
        const auto ci = work.col(i);
        const auto cj = work.col(j);
        for (std::size_t k = 0; k < np; ++k) {
          const double a1 = ci[k];
          const double a2 = cj[k];
          ci[k] = st.rot.cr * a1 + st.rot.sr * a2;
          cj[k] = -st.rot.sr * a1 + st.rot.cr * a2;
        }
        if (options.compute_uv) {
          const auto vi = v.col(i);
          const auto vj = v.col(j);
          for (std::size_t k = 0; k < np; ++k) {
            const double a1 = vi[k];
            const double a2 = vj[k];
            vi[k] = st.rot.cr * a1 + st.rot.sr * a2;
            vj[k] = -st.rot.sr * a1 + st.rot.cr * a2;
          }
        }
        // Exact annihilation of the targeted off-diagonal pair.
        work(i, j) = 0.0;
        work(j, i) = 0.0;
      }
    }
    const auto fin = s.final_layout();
    layout.assign(fin.begin(), fin.end());
    r.rotations += sweep_rot;
    r.sweeps = sweep + 1;
    if (options.track_off) r.off_history.push_back(off_fraction(work));
    if (sweep_rot == 0) {
      r.converged = true;
      break;
    }
    stall.observe(static_cast<double>(sweep_rot));
  }

  // Extraction: sigma = |diag|, signs folded into U; drop the padding; sort.
  std::vector<std::size_t> order(n0);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> mags(n0);
  for (std::size_t i = 0; i < n0; ++i) mags[i] = std::fabs(work(i, i));
  if (options.sort_descending) {
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t p, std::size_t q) { return mags[p] > mags[q]; });
  }
  r.sigma.resize(n0);
  if (options.compute_uv) {
    r.u = Matrix(n0, n0);
    r.v = Matrix(n0, n0);
  }
  for (std::size_t out = 0; out < n0; ++out) {
    const std::size_t src = order[out];
    r.sigma[out] = mags[src];
    if (!options.compute_uv) continue;
    const double sign = work(src, src) < 0.0 ? -1.0 : 1.0;
    for (std::size_t k = 0; k < n0; ++k) {
      r.u(k, out) = sign * u(k, src);
      r.v(k, out) = v(k, src);
    }
  }
  unscale_sigma(r.sigma, eq);

  r.status = r.converged ? SvdStatus::kConverged
                         : (stall.stalled() ? SvdStatus::kStalled : SvdStatus::kMaxSweeps);
  r.diagnostics.input_scale = eq.stats;
  r.diagnostics.equilibrated = eq.applied;
  r.diagnostics.equilibration_exponent = eq.exponent;
  r.diagnostics.stalled_sweeps = stall.streak();
  return r;
}

}  // namespace treesvd
