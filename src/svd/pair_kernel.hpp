#pragma once
// Internal shared kernel: rotate (and optionally sort-swap) one column pair.
// Used by the serial, thread-parallel, block, and distributed Jacobi drivers.
//
// Two flavours:
//  * process_pair_columns — classical: one gram_pair pass (three
//    accumulations) decides the rotation, one rotation pass applies it.
//  * process_pair_columns_cached — the fast path: the caller supplies the
//    cached squared norms app/aqq, so deciding the rotation costs a single
//    x.y accumulation, and the fused rotate_and_norms pass returns the new
//    norms for the cache. See norm_cache.hpp for the invariants.

#include <cmath>
#include <span>

#include "linalg/blas1.hpp"
#include "linalg/matrix.hpp"
#include "linalg/rotation.hpp"
#include "svd/jacobi.hpp"
#include "svd/norm_cache.hpp"
#include "svd/recovery.hpp"

namespace treesvd::detail {

/// Drift guard: when |apq| lands within this factor of the rotation
/// threshold tol*sqrt(app*aqq) — the only regime where cached-norm error
/// could flip the skip/rotate decision — both norms are re-reduced from the
/// data before deciding.
inline constexpr double kNormDriftGuard = 8.0;

struct PairOutcome {
  bool rotated = false;
  bool swapped = false;
};

/// Core kernel on raw column views. `x` must be the column of the smaller
/// index, `y` of the larger (the sort rule keeps the larger norm at the
/// smaller index). vx/vy are the matching V columns, or empty spans.
inline PairOutcome process_pair_columns(std::span<double> x, std::span<double> y,
                                        std::span<double> vx, std::span<double> vy,
                                        const JacobiOptions& opt,
                                        KernelCounters* counters = nullptr) {
  const GramPair g = gram_pair(x, y);
  if (counters != nullptr) {
    counters->add_pair();
    counters->add_gram();
  }
  const JacobiRotation rot = compute_rotation(g, opt.tol);
  const bool want_swap = opt.sort == SortMode::kDescending && g.app < g.aqq;

  PairOutcome out;
  if (rot.identity && !want_swap) return out;

  const double c = rot.identity ? 1.0 : rot.c;
  const double s = rot.identity ? 0.0 : rot.s;
  if (counters != nullptr) counters->add_rotate();
  if (want_swap) {
    // Paper eq. (3): fused rotate-and-swap — the interchange costs nothing.
    apply_rotation_swapped(x, y, c, s);
    if (!vx.empty()) apply_rotation_swapped(vx, vy, c, s);
    out.swapped = true;
    out.rotated = !rot.identity;
  } else {
    apply_rotation(x, y, c, s);
    if (!vx.empty()) apply_rotation(vx, vy, c, s);
    out.rotated = true;
  }
  return out;
}

/// process_pair_columns plus the squared norms now stored at x's / y's
/// position, for the caller's cache.
struct CachedPairOutcome {
  PairOutcome outcome;
  double app = 0.0;
  double aqq = 0.0;
};

/// Cached-norm fast path: app/aqq are the caller's cached squared norms of
/// x/y. Exactly one accumulation pass (the x.y dot) is made per call; a
/// rotation adds one fused rotate+norms pass whose sums refresh the cache.
inline CachedPairOutcome process_pair_columns_cached(std::span<double> x, std::span<double> y,
                                                     std::span<double> vx, std::span<double> vy,
                                                     double app, double aqq,
                                                     const JacobiOptions& opt,
                                                     KernelCounters& counters) {
  counters.add_pair();
  double apq = dot(x, y);
  counters.add_dot();
  // Overflowed dot accumulation (entries beyond ~1e154): retry with the
  // exact power-of-two prescaled form before deciding anything from it.
  if (!std::isfinite(apq)) apq = dot_scaled(x, y);

  // An implausible cached norm (non-finite or negative — an overflowed
  // accumulation or a corrupted payload) cannot support any decision:
  // re-reduce from the data before using it.
  if (!cached_norm_plausible(app) || !cached_norm_plausible(aqq)) {
    app = sumsq_robust(x);
    aqq = sumsq_robust(y);
    counters.add_norm_refresh(2);
  }

  double thresh = opt.tol * std::sqrt(app) * std::sqrt(aqq);
  const double mag = std::fabs(apq);
  // Drift guard, relative to the cached scale: re-examine the decision
  // exactly when mag/thresh lies in [1/kNormDriftGuard, kNormDriftGuard].
  // The ratio form keeps the window meaningful at extreme column scales,
  // where the absolute products kNormDriftGuard*thresh / mag*kNormDriftGuard
  // can overflow — and when thresh underflows to zero outright (tiny
  // columns), a nonzero coupling now always re-reduces instead of silently
  // skipping the guard.
  bool near_threshold = false;
  if (mag > 0.0) {
    if (thresh > 0.0 && std::isfinite(thresh)) {
      const double ratio = mag / thresh;
      near_threshold = ratio <= kNormDriftGuard && ratio * kNormDriftGuard >= 1.0;
    } else {
      near_threshold = true;  // degenerate threshold: decide from fresh data
    }
  }
  if (near_threshold) {
    // Near the threshold the decision is sensitive to norm error: re-reduce.
    app = sumsq_robust(x);
    aqq = sumsq_robust(y);
    counters.add_norm_refresh(2);
    thresh = opt.tol * std::sqrt(app) * std::sqrt(aqq);
  }

  const GramPair g{app, aqq, apq};
  const JacobiRotation rot = compute_rotation(g, opt.tol);
  const bool want_swap = opt.sort == SortMode::kDescending && app < aqq;

  CachedPairOutcome out;
  out.app = app;
  out.aqq = aqq;
  if (rot.identity && !want_swap) return out;

  const double c = rot.identity ? 1.0 : rot.c;
  const double s = rot.identity ? 0.0 : rot.s;
  counters.add_rotate();
  RotatedNorms rn{};
  if (want_swap) {
    rn = rotate_and_norms_swapped(x, y, c, s);
    if (!vx.empty()) apply_rotation_swapped(vx, vy, c, s);
    out.outcome.swapped = true;
    out.outcome.rotated = !rot.identity;
  } else {
    rn = rotate_and_norms(x, y, c, s);
    if (!vx.empty()) apply_rotation(vx, vy, c, s);
    out.outcome.rotated = true;
  }
  out.app = rn.app;
  out.aqq = rn.aqq;
  return out;
}

/// Matrix-column convenience wrapper: rotates columns (i, j), i < j, of A
/// (and V when non-null). Thread-safe across disjoint pairs.
inline PairOutcome process_pair(Matrix& a, Matrix* v, int i, int j,
                                const JacobiOptions& opt,
                                KernelCounters* counters = nullptr) {
  const std::span<double> none;
  return process_pair_columns(
      a.col(static_cast<std::size_t>(i)), a.col(static_cast<std::size_t>(j)),
      v != nullptr ? v->col(static_cast<std::size_t>(i)) : none,
      v != nullptr ? v->col(static_cast<std::size_t>(j)) : none, opt, counters);
}

/// Cached-norm wrapper over a NormCache keyed by column index. Thread-safe
/// across disjoint pairs (distinct cache slots, atomic counters).
inline PairOutcome process_pair_cached(Matrix& a, Matrix* v, int i, int j,
                                       const JacobiOptions& opt, NormCache& cache) {
  const std::span<double> none;
  const auto ui = static_cast<std::size_t>(i);
  const auto uj = static_cast<std::size_t>(j);
  const CachedPairOutcome r = process_pair_columns_cached(
      a.col(ui), a.col(uj), v != nullptr ? v->col(ui) : none,
      v != nullptr ? v->col(uj) : none, cache.sq(ui), cache.sq(uj), opt, cache.counters());
  cache.set(ui, r.app);
  cache.set(uj, r.aqq);
  return r.outcome;
}

}  // namespace treesvd::detail
