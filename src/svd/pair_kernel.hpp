#pragma once
// Internal shared kernel: rotate (and optionally sort-swap) one column pair.
// Used by the serial, thread-parallel, and distributed Jacobi drivers.

#include <span>

#include "linalg/blas1.hpp"
#include "linalg/matrix.hpp"
#include "linalg/rotation.hpp"
#include "svd/jacobi.hpp"

namespace treesvd::detail {

struct PairOutcome {
  bool rotated = false;
  bool swapped = false;
};

/// Core kernel on raw column views. `x` must be the column of the smaller
/// index, `y` of the larger (the sort rule keeps the larger norm at the
/// smaller index). vx/vy are the matching V columns, or empty spans.
inline PairOutcome process_pair_columns(std::span<double> x, std::span<double> y,
                                        std::span<double> vx, std::span<double> vy,
                                        const JacobiOptions& opt) {
  const GramPair g = gram_pair(x, y);
  const JacobiRotation rot = compute_rotation(g, opt.tol);
  const bool want_swap = opt.sort == SortMode::kDescending && g.app < g.aqq;

  PairOutcome out;
  if (rot.identity && !want_swap) return out;

  const double c = rot.identity ? 1.0 : rot.c;
  const double s = rot.identity ? 0.0 : rot.s;
  if (want_swap) {
    // Paper eq. (3): fused rotate-and-swap — the interchange costs nothing.
    apply_rotation_swapped(x, y, c, s);
    if (!vx.empty()) apply_rotation_swapped(vx, vy, c, s);
    out.swapped = true;
    out.rotated = !rot.identity;
  } else {
    apply_rotation(x, y, c, s);
    if (!vx.empty()) apply_rotation(vx, vy, c, s);
    out.rotated = true;
  }
  return out;
}

/// Matrix-column convenience wrapper: rotates columns (i, j), i < j, of A
/// (and V when non-null). Thread-safe across disjoint pairs.
inline PairOutcome process_pair(Matrix& a, Matrix* v, int i, int j,
                                const JacobiOptions& opt) {
  const std::span<double> none;
  return process_pair_columns(
      a.col(static_cast<std::size_t>(i)), a.col(static_cast<std::size_t>(j)),
      v != nullptr ? v->col(static_cast<std::size_t>(i)) : none,
      v != nullptr ? v->col(static_cast<std::size_t>(j)) : none, opt);
}

}  // namespace treesvd::detail
