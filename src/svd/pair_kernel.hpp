#pragma once
// Level 0 of the three-level engine hierarchy (DESIGN.md §14): rotate (and
// optionally sort-swap) one column pair. Used by the serial, thread-parallel,
// block, and distributed Jacobi drivers; the batched engine mirrors the same
// decisions across lanes.
//
// The PairKernel class binds the options to a resolved CPU-dispatch kernel
// table (linalg/dispatch.hpp) once per driver run, so the per-pair cost pays
// no dispatch resolution at all. Two flavours:
//  * process — classical: one gram_pair pass (three accumulations) decides
//    the rotation, one rotation pass applies it.
//  * process_cached — the fast path: the caller supplies the cached squared
//    norms app/aqq, so deciding the rotation costs a single x.y accumulation,
//    and the fused rotate_and_norms pass returns the new norms for the cache.
//    See norm_cache.hpp for the invariants.
//
// The free process_pair* functions below are thin wrappers constructing a
// PairKernel from the process-wide resolved table — the convenient form for
// call sites that touch a few pairs, while the sweep drivers hold a
// PairKernel across the whole run.

#include <cmath>
#include <span>

#include "linalg/blas1.hpp"
#include "linalg/dispatch.hpp"
#include "linalg/matrix.hpp"
#include "linalg/rotation.hpp"
#include "svd/jacobi.hpp"
#include "svd/norm_cache.hpp"
#include "svd/recovery.hpp"

namespace treesvd::detail {

/// Drift guard: when |apq| lands within this factor of the rotation
/// threshold tol*sqrt(app*aqq) — the only regime where cached-norm error
/// could flip the skip/rotate decision — both norms are re-reduced from the
/// data before deciding.
inline constexpr double kNormDriftGuard = 8.0;

struct PairOutcome {
  bool rotated = false;
  bool swapped = false;
};

/// process (classical flavour) plus the squared norms now stored at x's /
/// y's position, for the caller's cache.
struct CachedPairOutcome {
  PairOutcome outcome;
  double app = 0.0;
  double aqq = 0.0;
};

/// One column-pair rotation engine: options plus a resolved kernel table.
/// Copyable and cheap (two pointers); thread-safe across disjoint pairs —
/// concurrent drivers share one instance. The bound table fixes the ISA tier
/// for the whole run; results are bitwise identical on every tier.
class PairKernel {
 public:
  PairKernel(const KernelTable& table, const JacobiOptions& opt) noexcept
      : table_(&table), opt_(&opt) {}

  /// Binds the process-wide resolved table (after any TREESVD_ISA /
  /// set_isa_override adjustment).
  explicit PairKernel(const JacobiOptions& opt) noexcept : PairKernel(kernels(), opt) {}

  const KernelTable& table() const noexcept { return *table_; }
  IsaTier tier() const noexcept { return table_->tier; }
  const JacobiOptions& options() const noexcept { return *opt_; }

  /// Classical kernel on raw column views. `x` must be the column of the
  /// smaller index, `y` of the larger (the sort rule keeps the larger norm
  /// at the smaller index). vx/vy are the matching V columns, or empty spans.
  PairOutcome process(std::span<double> x, std::span<double> y, std::span<double> vx,
                      std::span<double> vy, KernelCounters* counters = nullptr) const {
    GramPair g;
    table_->gram_pair(x.data(), y.data(), x.size(), &g.app, &g.aqq, &g.apq);
    if (counters != nullptr) {
      counters->add_pair();
      counters->add_gram();
    }
    const JacobiRotation rot = compute_rotation(g, opt_->tol);
    const bool want_swap = opt_->sort == SortMode::kDescending && g.app < g.aqq;

    PairOutcome out;
    if (rot.identity && !want_swap) return out;

    const double c = rot.identity ? 1.0 : rot.c;
    const double s = rot.identity ? 0.0 : rot.s;
    if (counters != nullptr) counters->add_rotate();
    if (want_swap) {
      // Paper eq. (3): fused rotate-and-swap — the interchange costs nothing.
      apply_rotation_swapped(x, y, c, s);
      if (!vx.empty()) apply_rotation_swapped(vx, vy, c, s);
      out.swapped = true;
      out.rotated = !rot.identity;
    } else {
      apply_rotation(x, y, c, s);
      if (!vx.empty()) apply_rotation(vx, vy, c, s);
      out.rotated = true;
    }
    return out;
  }

  /// Cached-norm fast path: app/aqq are the caller's cached squared norms of
  /// x/y. Exactly one accumulation pass (the x.y dot) is made per call; a
  /// rotation adds one fused rotate+norms pass whose sums refresh the cache.
  CachedPairOutcome process_cached(std::span<double> x, std::span<double> y,
                                   std::span<double> vx, std::span<double> vy, double app,
                                   double aqq, KernelCounters& counters) const {
    counters.add_pair();
    double apq = table_->dot(x.data(), y.data(), x.size());
    counters.add_dot();
    // Overflowed dot accumulation (entries beyond ~1e154): retry with the
    // exact power-of-two prescaled form before deciding anything from it.
    if (!std::isfinite(apq)) apq = dot_scaled(x, y);

    // An implausible cached norm (non-finite or negative — an overflowed
    // accumulation or a corrupted payload) cannot support any decision:
    // re-reduce from the data before using it.
    if (!cached_norm_plausible(app) || !cached_norm_plausible(aqq)) {
      app = robust_sumsq(x);
      aqq = robust_sumsq(y);
      counters.add_norm_refresh(2);
    }

    double thresh = opt_->tol * std::sqrt(app) * std::sqrt(aqq);
    const double mag = std::fabs(apq);
    // Drift guard, relative to the cached scale: re-examine the decision
    // exactly when mag/thresh lies in [1/kNormDriftGuard, kNormDriftGuard].
    // The ratio form keeps the window meaningful at extreme column scales,
    // where the absolute products kNormDriftGuard*thresh / mag*kNormDriftGuard
    // can overflow — and when thresh underflows to zero outright (tiny
    // columns), a nonzero coupling now always re-reduces instead of silently
    // skipping the guard.
    bool near_threshold = false;
    if (mag > 0.0) {
      if (thresh > 0.0 && std::isfinite(thresh)) {
        const double ratio = mag / thresh;
        near_threshold = ratio <= kNormDriftGuard && ratio * kNormDriftGuard >= 1.0;
      } else {
        near_threshold = true;  // degenerate threshold: decide from fresh data
      }
    }
    if (near_threshold) {
      // Near the threshold the decision is sensitive to norm error: re-reduce.
      app = robust_sumsq(x);
      aqq = robust_sumsq(y);
      counters.add_norm_refresh(2);
      thresh = opt_->tol * std::sqrt(app) * std::sqrt(aqq);
    }

    const GramPair g{app, aqq, apq};
    const JacobiRotation rot = compute_rotation(g, opt_->tol);
    const bool want_swap = opt_->sort == SortMode::kDescending && app < aqq;

    CachedPairOutcome out;
    out.app = app;
    out.aqq = aqq;
    if (rot.identity && !want_swap) return out;

    const double c = rot.identity ? 1.0 : rot.c;
    const double s = rot.identity ? 0.0 : rot.s;
    counters.add_rotate();
    RotatedNorms rn{};
    if (want_swap) {
      table_->rotate_and_norms_swapped(x.data(), y.data(), x.size(), c, s, &rn.app, &rn.aqq);
      if (!vx.empty()) apply_rotation_swapped(vx, vy, c, s);
      out.outcome.swapped = true;
      out.outcome.rotated = !rot.identity;
    } else {
      table_->rotate_and_norms(x.data(), y.data(), x.size(), c, s, &rn.app, &rn.aqq);
      if (!vx.empty()) apply_rotation(vx, vy, c, s);
      out.outcome.rotated = true;
    }
    out.app = rn.app;
    out.aqq = rn.aqq;
    return out;
  }

  /// Matrix-column convenience wrapper: rotates columns (i, j), i < j, of A
  /// (and V when non-null). Thread-safe across disjoint pairs.
  PairOutcome process(Matrix& a, Matrix* v, int i, int j,
                      KernelCounters* counters = nullptr) const {
    const std::span<double> none;
    return process(a.col(static_cast<std::size_t>(i)), a.col(static_cast<std::size_t>(j)),
                   v != nullptr ? v->col(static_cast<std::size_t>(i)) : none,
                   v != nullptr ? v->col(static_cast<std::size_t>(j)) : none, counters);
  }

  /// Cached-norm wrapper over a NormCache keyed by column index. Thread-safe
  /// across disjoint pairs (distinct cache slots, atomic counters).
  PairOutcome process_cached(Matrix& a, Matrix* v, int i, int j, NormCache& cache) const {
    const std::span<double> none;
    const auto ui = static_cast<std::size_t>(i);
    const auto uj = static_cast<std::size_t>(j);
    const CachedPairOutcome r = process_cached(
        a.col(ui), a.col(uj), v != nullptr ? v->col(ui) : none,
        v != nullptr ? v->col(uj) : none, cache.sq(ui), cache.sq(uj), cache.counters());
    cache.set(ui, r.app);
    cache.set(uj, r.aqq);
    return r.outcome;
  }

 private:
  /// sumsq_robust through the bound table: the fast unscaled reduction uses
  /// the table's kernel (bitwise equal to the free sumsq on every tier); the
  /// non-finite retry takes the scalar scaled form, as before.
  double robust_sumsq(std::span<const double> x) const noexcept {
    const double fast = table_->sumsq(x.data(), x.size());
    if (std::isfinite(fast)) return fast;
    return sumsq_scaled(x).value();
  }

  const KernelTable* table_;
  const JacobiOptions* opt_;
};

/// Free-function forms, kept for call sites that touch a few pairs: each call
/// constructs a PairKernel from the process-wide resolved table.

inline PairOutcome process_pair_columns(std::span<double> x, std::span<double> y,
                                        std::span<double> vx, std::span<double> vy,
                                        const JacobiOptions& opt,
                                        KernelCounters* counters = nullptr) {
  return PairKernel(opt).process(x, y, vx, vy, counters);
}

inline CachedPairOutcome process_pair_columns_cached(std::span<double> x, std::span<double> y,
                                                     std::span<double> vx, std::span<double> vy,
                                                     double app, double aqq,
                                                     const JacobiOptions& opt,
                                                     KernelCounters& counters) {
  return PairKernel(opt).process_cached(x, y, vx, vy, app, aqq, counters);
}

inline PairOutcome process_pair(Matrix& a, Matrix* v, int i, int j, const JacobiOptions& opt,
                                KernelCounters* counters = nullptr) {
  return PairKernel(opt).process(a, v, i, j, counters);
}

inline PairOutcome process_pair_cached(Matrix& a, Matrix* v, int i, int j,
                                       const JacobiOptions& opt, NormCache& cache) {
  return PairKernel(opt).process_cached(a, v, i, j, cache);
}

}  // namespace treesvd::detail
