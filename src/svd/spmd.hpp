#pragma once
// SPMD one-sided Jacobi over the message-passing runtime — the shape of the
// paper's actual CM-5 implementation: one process per leaf, two columns per
// process, columns exchanged by tagged messages, convergence decided by an
// allreduce per sweep. Unlike the step-synchronous distributed machine
// (sim/distributed.hpp) there is no global clock: ranks synchronise only
// through the column messages themselves (dataflow), plus one collective per
// sweep.

#include "core/ordering.hpp"
#include "linalg/matrix.hpp"
#include "svd/jacobi.hpp"

namespace treesvd {

struct SpmdStats {
  std::size_t messages = 0;  ///< column messages delivered
};

/// Runs the rank-per-leaf SPMD Jacobi program on n/2 concurrent threads
/// (after padding n to a width the ordering supports). Results are
/// bit-identical to one_sided_jacobi with the same options.
SvdResult spmd_jacobi(const Matrix& a, const Ordering& ordering,
                      const JacobiOptions& options = {}, SpmdStats* stats = nullptr);

}  // namespace treesvd
