#pragma once
// SPMD one-sided Jacobi over the message-passing runtime — the shape of the
// paper's actual CM-5 implementation: one process per leaf, two columns per
// process, columns exchanged by tagged messages, convergence decided by an
// allreduce per sweep. Unlike the step-synchronous distributed machine
// (sim/distributed.hpp) there is no global clock: ranks synchronise only
// through the column messages themselves (dataflow), plus one collective per
// sweep.
//
// Fault tolerance (opt-in via SpmdTransport): the reliable transport makes
// the run bit-identical to the fault-free one under any drop / duplicate /
// corrupt / delay schedule that stays below the retry budget; sweep-boundary
// checkpoints let a killed rank be respawned with the world rolled back to
// the last state every rank had committed, and the deterministic replay
// again reproduces the fault-free result bit-for-bit. All recovery activity
// is surfaced as SpmdStats::recovery.

#include "core/ordering.hpp"
#include "linalg/matrix.hpp"
#include "mp/message_passing.hpp"
#include "svd/jacobi.hpp"
#include "svd/recovery.hpp"

namespace treesvd {

struct SpmdStats {
  std::size_t messages = 0;      ///< logical column sends (replays included)
  mp::RecoveryStats recovery;    ///< transport + checkpoint/watchdog counters
};

/// Chaos/robustness configuration for spmd_jacobi. Default-constructed it
/// enables sweep checkpointing but injects nothing; install a FaultPlan (and
/// the reliable transport for message faults) to run under chaos.
struct SpmdTransport {
  mp::ReliableConfig reliable;  ///< opt-in reliable send/recv layer
  mp::FaultPlan faults;         ///< deterministic fault schedule
  RecoveryOptions recovery;     ///< checkpoint cadence, rollback budget, watchdog
  /// Transport backend: kInproc runs ranks as threads (default); kSocket
  /// runs every rank as its own OS process over UNIX-domain sockets, with
  /// `socket` supplying the wall-clock deadlines and heartbeat knobs. The
  /// engine publishes checkpoints and results to the world's durable blob
  /// board either way, so σ/U/V and every digest are bit-identical across
  /// backends (mp_socket_test and tools/treesvd_launch gate this).
  mp::Backend backend = mp::Backend::kInproc;
  mp::SocketConfig socket;
};

/// Runs the rank-per-leaf SPMD Jacobi program on n/2 concurrent ranks —
/// threads by default, one OS process each under SpmdTransport::backend ==
/// kSocket (after padding n to a width the ordering supports). Results are
/// bit-identical to one_sided_jacobi with the same options — also under a
/// surviving fault plan when `transport` enables the reliable layer.
SvdResult spmd_jacobi(const Matrix& a, const Ordering& ordering,
                      const JacobiOptions& options = {}, SpmdStats* stats = nullptr,
                      const SpmdTransport* transport = nullptr);

}  // namespace treesvd
