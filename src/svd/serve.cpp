#include "svd/serve.hpp"

#include <bit>
#include <chrono>
#include <string>

#include "analysis/hooks.hpp"
#include "linalg/gemm.hpp"
#include "util/require.hpp"
#include "util/thread_pool.hpp"

namespace treesvd {
namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void LatencyHistogram::record(std::uint64_t ns) noexcept {
  const auto bucket = static_cast<std::size_t>(std::bit_width(ns));
  ++buckets_[bucket < kBuckets ? bucket : kBuckets - 1];
  ++total_;
  if (ns > max_ns_) max_ns_ = ns;
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (std::size_t k = 0; k < kBuckets; ++k) buckets_[k] += other.buckets_[k];
  total_ += other.total_;
  if (other.max_ns_ > max_ns_) max_ns_ = other.max_ns_;
}

std::uint64_t LatencyHistogram::quantile_ns(double q) const noexcept {
  if (total_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the quantile sample, 1-based ceiling — the smallest rank whose
  // cumulative count covers fraction q.
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total_));
  std::uint64_t seen = 0;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    seen += buckets_[k];
    if (seen > rank || (seen == rank && rank == total_)) {
      if (k == 0) return 0;
      if (k >= 63) return ~std::uint64_t{0};
      return (std::uint64_t{1} << k) - 1;  // inclusive upper bound of bucket k
    }
  }
  return max_ns_;
}

/// One worker's world: its queue, its engine, its pointer scratch and its
/// telemetry. No state here is touched by any other shard.
struct SvdServer::Shard {
  BoundedMpscQueue<Request> queue;
  BatchedSvd engine;
  std::vector<Request> pending;
  std::vector<const Matrix*> in;
  std::vector<SvdResult*> out;
  LatencyHistogram latency;
  std::uint64_t batches = 0;
  std::uint64_t lanes = 0;

  Shard(const Ordering& ordering, const ServeOptions& o)
      : queue(o.queue_capacity),
        engine(o.rows, o.cols, ordering, o.batch) {
    const std::size_t w = o.batch.lane_width;
    engine.reserve(w);
    pending.reserve(w);
    in.reserve(w);
    out.reserve(w);
  }
};

SvdServer::SvdServer(const Ordering& ordering, const ServeOptions& options)
    : options_(options) {
  TREESVD_REQUIRE(options_.shards >= 1, "SvdServer needs at least one shard");
  shards_.reserve(options_.shards);
  for (std::size_t s = 0; s < options_.shards; ++s)
    shards_.push_back(std::make_unique<Shard>(ordering, options_));
}

SvdServer::~SvdServer() { stop(); }

void SvdServer::start() {
  TREESVD_REQUIRE(!started_, "SvdServer::start called twice");
  started_ = true;
  threads_.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s)
    threads_.emplace_back([this, s] { shard_loop(s); });
}

void SvdServer::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& sh : shards_) sh->queue.close();
  for (auto& t : threads_) t.join();
  threads_.clear();
}

bool SvdServer::submit(const Matrix& a, SvdResult* out) {
  TREESVD_REQUIRE(out != nullptr, "SvdServer::submit needs a result slot");
  if (stopped_ || !started_) return false;
  Request req{&a, out, now_ns()};
  // Round-robin shard assignment: with same-shape problems every shard costs
  // the same, so rotation is both balanced and contention-free.
  const std::size_t s =
      static_cast<std::size_t>(next_shard_.fetch_add(1, std::memory_order_relaxed)) %
      shards_.size();
  if (!shards_[s]->queue.push(std::move(req))) return false;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void SvdServer::wait_idle() {
  std::unique_lock<std::mutex> lock(idle_mu_);
  idle_cv_.wait(lock, [&] {
    return completed_total_ >= submitted_.load(std::memory_order_relaxed);
  });
}

ServeStats SvdServer::stats() const {
  ServeStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    s.completed = completed_total_;
  }
  // Shard telemetry is written only by the owning shard thread; a consistent
  // snapshot wants the shards parked (post-stop) or merely approximate
  // (live monitoring) — both are fine for histograms and counters.
  for (const auto& sh : shards_) {
    s.batches += sh->batches;
    s.batched_lanes += sh->lanes;
    s.latency.merge(sh->latency);
  }
  return s;
}

void SvdServer::shard_loop(std::size_t idx) {
  TREESVD_HB_SCOPED_FRAME(serve_frame, [&] { return "serve shard " + std::to_string(idx); });
  Shard& sh = *shards_[idx];
  const std::size_t max_batch = options_.batch.lane_width;
  // Shard-owned BLAS-3 fallback: diagnostics GEMMs in finalize that lose the
  // shared gemm_pool() gate to a sibling shard run on this pool instead of
  // silently single-threading (see ScopedGemmFallbackPool).
  std::unique_ptr<ThreadPool> gemm_fb;
  std::unique_ptr<ScopedGemmFallbackPool> gemm_reg;
  if (options_.gemm_fallback_threads > 0) {
    gemm_fb = std::make_unique<ThreadPool>(
        static_cast<unsigned>(options_.gemm_fallback_threads));
    gemm_reg = std::make_unique<ScopedGemmFallbackPool>(*gemm_fb);
  }
  for (;;) {
    sh.pending.clear();
    // Block for the first request, then opportunistically fill the rest of
    // the SIMD shard from whatever else is already queued.
    if (sh.queue.pop_batch(sh.pending, max_batch) == 0) break;
    sh.in.clear();
    sh.out.clear();
    for (const Request& r : sh.pending) {
      sh.in.push_back(r.a);
      sh.out.push_back(r.out);
    }
    // In-shard solve runs serially (pool = nullptr): parallelism is across
    // shard threads, and one engine instance must stay single-caller.
    sh.engine.solve_into({sh.in.data(), sh.in.size()}, {sh.out.data(), sh.out.size()}, nullptr);
    const std::uint64_t done_ns = now_ns();
    for (const Request& r : sh.pending)
      sh.latency.record(done_ns > r.enqueue_ns ? done_ns - r.enqueue_ns : 0);
    ++sh.batches;
    sh.lanes += sh.pending.size();
    {
      std::lock_guard<std::mutex> lock(idle_mu_);
      completed_total_ += sh.pending.size();
    }
    idle_cv_.notify_all();
  }
}

}  // namespace treesvd
