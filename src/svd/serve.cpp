#include "svd/serve.hpp"

#include <bit>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <string>

#include "analysis/hooks.hpp"
#include "core/registry.hpp"
#include "linalg/gemm.hpp"
#include "svd/recovery.hpp"
#include "util/require.hpp"
#include "util/thread_pool.hpp"

namespace treesvd {
namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// splitmix64 finalizer — the mp/fault decision mixer, reused so serve-chaos
/// decisions need no generator state.
std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Uniform double in [0, 1) from a hash (53 mantissa bits).
double unit64(std::uint64_t h) noexcept { return static_cast<double>(h >> 11) * 0x1.0p-53; }

/// Salt separating the request-fault stream from every other splitmix64 use.
constexpr std::uint64_t kRequestSalt = 0x5E12FEull;

std::string injected_fault_message(std::uint64_t id) {
  return "serve chaos: injected solver fault (request " + std::to_string(id) + ")";
}

}  // namespace

ServeFaultPlan::RequestFault ServeFaultPlan::request_fault(std::uint64_t id) const noexcept {
  if (!enabled || (poison_prob <= 0.0 && throw_prob <= 0.0 && expire_prob <= 0.0))
    return RequestFault::kNone;
  // First match wins over a partition of [0, 1) — at most one fault per
  // request, bit-reproducible for a given (seed, id).
  const double u = unit64(mix64(mix64(seed ^ kRequestSalt) ^ id));
  double edge = poison_prob;
  if (u < edge) return RequestFault::kPoison;
  edge += throw_prob;
  if (u < edge) return RequestFault::kThrow;
  edge += expire_prob;
  if (u < edge) return RequestFault::kExpire;
  return RequestFault::kNone;
}

void LatencyHistogram::record(std::uint64_t ns) noexcept {
  const auto bucket = static_cast<std::size_t>(std::bit_width(ns));
  ++buckets_[bucket < kBuckets ? bucket : kBuckets - 1];
  ++total_;
  if (ns > max_ns_) max_ns_ = ns;
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (std::size_t k = 0; k < kBuckets; ++k) buckets_[k] += other.buckets_[k];
  total_ += other.total_;
  if (other.max_ns_ > max_ns_) max_ns_ = other.max_ns_;
}

std::uint64_t LatencyHistogram::quantile_ns(double q) const noexcept {
  if (total_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the quantile sample, 1-based ceiling — the smallest rank whose
  // cumulative count covers fraction q.
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total_));
  std::uint64_t seen = 0;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    seen += buckets_[k];
    if (seen > rank || (seen == rank && rank == total_)) {
      if (k == 0) return 0;
      if (k >= 63) return ~std::uint64_t{0};
      return (std::uint64_t{1} << k) - 1;  // inclusive upper bound of bucket k
    }
  }
  return max_ns_;
}

/// One worker's world: its queue, its engine, its pointer scratch and its
/// telemetry. Iteration scratch (pending/keep/in/out) is touched only by the
/// owning thread (and by the supervisor/stop strictly after joining it);
/// telemetry sits behind stats_mu, the in-flight record behind inflight_mu,
/// and the health flags are atomics — stats() and the supervisor read all of
/// it while the shard runs.
struct SvdServer::Shard {
  BoundedMpscQueue<Request> queue;
  std::unique_ptr<BatchedSvd> engine;
  std::vector<Request> pending;
  std::vector<Request> keep;
  std::vector<const Matrix*> in;
  std::vector<SvdResult*> out;

  /// Telemetry snapshot lock: the shard thread records under it, stats()
  /// merges under it — a live snapshot is consistent, not merely approximate.
  mutable std::mutex stats_mu;
  LatencyHistogram latency;
  std::uint64_t batches = 0;
  std::uint64_t lanes = 0;

  /// Loop-progress counter: ticked at the top of every shard iteration and
  /// after every solve. Flat heartbeat + pending work = stuck.
  std::atomic<std::uint64_t> heartbeat{0};
  std::atomic<std::size_t> inflight_count{0};
  std::atomic<bool> dead{false};
  std::atomic<bool> quarantined{false};
  std::atomic<std::uint64_t> deaths{0};
  std::atomic<bool> stall_fired{false};

  /// The requests popped but not yet terminal, recorded before each solve so
  /// the supervisor can requeue them if the thread dies mid-batch.
  std::mutex inflight_mu;
  std::vector<Request> inflight;

  // Supervisor-private stuck-detection state (read/written only by the
  // supervisor thread, initialised before it starts).
  std::uint64_t last_heartbeat = 0;
  std::uint64_t flat_since_ns = 0;
  bool stuck_latched = false;

  Shard(const Ordering& ordering, const ServeOptions& o)
      : queue(o.queue_capacity),
        engine(std::make_unique<BatchedSvd>(o.rows, o.cols, ordering, o.batch)) {
    const std::size_t w = o.batch.lane_width;
    engine->reserve(w);
    pending.reserve(w);
    keep.reserve(w);
    inflight.reserve(w);
    in.reserve(w);
    out.reserve(w);
  }
};

SvdServer::SvdServer(const Ordering& ordering, const ServeOptions& options)
    : options_(options), ordering_name_(ordering.name()) {
  TREESVD_REQUIRE(options_.shards >= 1, "SvdServer needs at least one shard");
  high_watermark_ = options_.high_watermark != 0
                        ? options_.high_watermark
                        : options_.shards * options_.queue_capacity;
  low_watermark_ =
      options_.low_watermark != 0 ? options_.low_watermark : high_watermark_ / 2;
  TREESVD_REQUIRE(low_watermark_ <= high_watermark_,
                  "SvdServer watermarks inverted (low > high)");
  shards_.reserve(options_.shards);
  for (std::size_t s = 0; s < options_.shards; ++s)
    shards_.push_back(std::make_unique<Shard>(ordering, options_));
}

SvdServer::~SvdServer() { stop(); }

void SvdServer::start() {
  TREESVD_REQUIRE(!started_, "SvdServer::start called twice");
  started_ = true;
  const std::uint64_t t0 = now_ns();
  for (auto& sh : shards_) sh->flat_since_ns = t0;
  threads_.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s)
    threads_.emplace_back([this, s] { shard_loop(s); });
  if (options_.supervisor.enabled)
    supervisor_ = std::thread([this] { supervisor_loop(); });
}

void SvdServer::stop() {
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_relaxed);
  if (supervisor_.joinable()) {
    { std::lock_guard<std::mutex> lk(sup_mu_); }
    sup_cv_.notify_all();
    supervisor_.join();
  }
  // Adopt shards that died after the supervisor's last pass (or with the
  // supervisor disabled): collect their in-flight requests for the drain.
  std::vector<std::pair<std::size_t, Request>> orphans;
  for (std::size_t s = 0; s < shards_.size() && s < threads_.size(); ++s) {
    Shard& sh = *shards_[s];
    if (!sh.dead.load(std::memory_order_acquire)) continue;
    if (threads_[s].joinable()) threads_[s].join();
    std::lock_guard<std::mutex> lock(sh.inflight_mu);
    for (Request& r : sh.inflight) orphans.emplace_back(s, r);
    sh.inflight.clear();
    sh.inflight_count.store(0, std::memory_order_relaxed);
  }
  for (auto& sh : shards_) sh->queue.close();
  for (auto& t : threads_)
    if (t.joinable()) t.join();
  threads_.clear();
  // Drain: every request still queued anywhere reaches a terminal state —
  // an accepted submission is never lost, even across shutdown.
  std::vector<Request> leftovers;
  for (auto& shp : shards_) {
    Shard& sh = *shp;
    leftovers.clear();
    while (sh.queue.pop_batch(leftovers, sh.queue.capacity() + 1) > 0) {
    }
    for (const Request& r : leftovers) finish_solo(sh, r);
  }
  for (auto& [s, r] : orphans) finish_solo(*shards_[s], r);
}

int SvdServer::pick_shard() const noexcept {
  // Least-loaded admission: shortest (queued + in-flight) healthy shard,
  // ties to the lowest index. A stalled or dying shard's load never drains,
  // so routing starves it without any explicit health signal; quarantined
  // shards are skipped outright.
  int best = -1;
  std::size_t best_load = std::numeric_limits<std::size_t>::max();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& sh = *shards_[s];
    if (sh.quarantined.load(std::memory_order_relaxed)) continue;
    const std::size_t load =
        sh.queue.size() + sh.inflight_count.load(std::memory_order_relaxed);
    if (load < best_load) {
      best_load = load;
      best = static_cast<int>(s);
    }
  }
  return best;
}

SubmitOutcome SvdServer::submit(const Matrix& a, SvdResult* out, const SubmitOptions& opt) {
  TREESVD_REQUIRE(out != nullptr, "SvdServer::submit needs a result slot");
  if (!started_ || stopping_.load(std::memory_order_relaxed)) return SubmitOutcome::kStopped;
  const std::uint64_t now = now_ns();
  Request req;
  req.a = &a;
  req.out = out;
  req.enqueue_ns = now;
  if (opt.deadline_ns != 0) {
    const std::uint64_t cap = std::numeric_limits<std::uint64_t>::max() - now;
    req.deadline_ns = now + (opt.deadline_ns < cap ? opt.deadline_ns : cap);
  }
  req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  const int s = pick_shard();
  if (s < 0) return SubmitOutcome::kStopped;  // every shard quarantined
  Shard& sh = *shards_[static_cast<std::size_t>(s)];
  bool accepted = false;
  switch (opt.policy) {
    case SubmitPolicy::kBlock:
      if (!sh.queue.push(req)) return SubmitOutcome::kStopped;  // closed mid-wait
      accepted = true;
      break;
    case SubmitPolicy::kReject:
      accepted = sh.queue.try_push(req);
      break;
    case SubmitPolicy::kShedExpired:
      accepted = sh.queue.try_push(req);
      if (!accepted) {
        shed_expired(sh, now);
        accepted = sh.queue.try_push(req);
      }
      break;
  }
  if (!accepted) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return SubmitOutcome::kQueueFull;
  }
  const std::uint64_t subs = submitted_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (subs - completed_.load(std::memory_order_relaxed) >= high_watermark_) {
    // Set-and-clear of overloaded_ is serialized under idle_mu_: an unlocked
    // store here could land after the drain's clear check in bump_completed
    // and stick the server not-ready forever. Re-check under the lock so a
    // set always reflects the backlog at a serialized instant, which every
    // later completion observes. Only the overload onset pays for the lock.
    std::lock_guard<std::mutex> lock(idle_mu_);
    if (submitted_.load(std::memory_order_relaxed) -
            completed_.load(std::memory_order_relaxed) >=
        high_watermark_)
      overloaded_.store(true, std::memory_order_relaxed);
  }
  return SubmitOutcome::kAccepted;
}

void SvdServer::shed_expired(Shard& sh, std::uint64_t now) {
  // Off the steady path by construction: runs only when a kShedExpired
  // submission meets a full queue.
  std::vector<Request> evicted;
  sh.queue.remove_if(
      [now](const Request& r) { return r.deadline_ns != 0 && now > r.deadline_ns; }, evicted);
  for (const Request& r : evicted) complete_expired(sh, r, true);
}

bool SvdServer::ready() const noexcept {
  return started_ && !stopping_.load(std::memory_order_relaxed) &&
         !overloaded_.load(std::memory_order_relaxed);
}

void SvdServer::wait_idle() {
  std::unique_lock<std::mutex> lock(idle_mu_);
  idle_cv_.wait(lock, [&] {
    return completed_.load(std::memory_order_relaxed) >=
           submitted_.load(std::memory_order_relaxed);
  });
}

void SvdServer::bump_completed(std::size_t k) {
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    completed_.fetch_add(k, std::memory_order_relaxed);
    // Hysteresis clear, under the same lock as the set in submit(): every
    // completion after a serialized set runs this check and sees the flag.
    if (overloaded_.load(std::memory_order_relaxed)) {
      const std::uint64_t backlog = submitted_.load(std::memory_order_relaxed) -
                                    completed_.load(std::memory_order_relaxed);
      if (backlog <= low_watermark_) overloaded_.store(false, std::memory_order_relaxed);
    }
  }
  idle_cv_.notify_all();
}

void SvdServer::complete_solved(Shard& sh, const Request& r, std::uint64_t done_ns,
                                std::size_t batch_lanes) {
  {
    std::lock_guard<std::mutex> lock(sh.stats_mu);
    sh.latency.record(done_ns > r.enqueue_ns ? done_ns - r.enqueue_ns : 0);
    ++sh.batches;
    sh.lanes += batch_lanes;
  }
  solved_.fetch_add(1, std::memory_order_relaxed);
  bump_completed(1);
}

void SvdServer::complete_expired(Shard& sh, const Request& r, bool via_shed) {
  SvdResult res;
  res.converged = false;
  res.status = SvdStatus::kDeadlineExpired;
  res.diagnostics.error = via_shed ? "deadline expired in queue (shed at admission)"
                                   : "deadline expired before batch formation";
  *r.out = std::move(res);
  const std::uint64_t done_ns = now_ns();
  {
    std::lock_guard<std::mutex> lock(sh.stats_mu);
    sh.latency.record(done_ns > r.enqueue_ns ? done_ns - r.enqueue_ns : 0);
  }
  expired_.fetch_add(1, std::memory_order_relaxed);
  if (via_shed) shed_.fetch_add(1, std::memory_order_relaxed);
  bump_completed(1);
}

void SvdServer::complete_failed(Shard& sh, const Request& r, const std::string& why) {
  SvdResult res;
  res.converged = false;
  res.status = SvdStatus::kFailed;
  res.diagnostics.error = why;
  *r.out = std::move(res);
  const std::uint64_t done_ns = now_ns();
  {
    std::lock_guard<std::mutex> lock(sh.stats_mu);
    sh.latency.record(done_ns > r.enqueue_ns ? done_ns - r.enqueue_ns : 0);
  }
  failed_.fetch_add(1, std::memory_order_relaxed);
  bump_completed(1);
}

ServeStats SvdServer::stats() const {
  ServeStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.solved = solved_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.requeued = requeued_.load(std::memory_order_relaxed);
  s.kills = kills_.load(std::memory_order_relaxed);
  s.restarts = restarts_.load(std::memory_order_relaxed);
  s.quarantines = quarantines_.load(std::memory_order_relaxed);
  s.stalls_injected = stalls_injected_.load(std::memory_order_relaxed);
  s.stuck_detected = stuck_detected_.load(std::memory_order_relaxed);
  s.ready = ready();
  s.shards.reserve(shards_.size());
  for (const auto& shp : shards_) {
    const Shard& sh = *shp;
    ShardSnapshot snap;
    {
      // Snapshot under the shard's stats lock: no torn histograms even while
      // the shard is mid-record.
      std::lock_guard<std::mutex> lock(sh.stats_mu);
      snap.batches = sh.batches;
      snap.lanes = sh.lanes;
      s.latency.merge(sh.latency);
    }
    snap.queued = sh.queue.size();
    snap.inflight = sh.inflight_count.load(std::memory_order_relaxed);
    snap.heartbeat = sh.heartbeat.load(std::memory_order_relaxed);
    snap.deaths = sh.deaths.load(std::memory_order_relaxed);
    snap.dead = sh.dead.load(std::memory_order_relaxed);
    snap.quarantined = sh.quarantined.load(std::memory_order_relaxed);
    s.batches += snap.batches;
    s.batched_lanes += snap.lanes;
    s.shards.push_back(snap);
  }
  return s;
}

void SvdServer::maybe_stall(Shard& sh, std::size_t idx) {
  const ServeFaultPlan& fp = options_.faults;
  if (!fp.enabled || fp.stall_shard < 0 || static_cast<std::size_t>(fp.stall_shard) != idx)
    return;
  if (sh.stall_fired.exchange(true, std::memory_order_relaxed)) return;
  stalls_injected_.fetch_add(1, std::memory_order_relaxed);
  // The release condition is the server-wide submission count — an event in
  // the request trace, not a wall-clock instant — so a stalled run's counters
  // replay deterministically. The micros bound is a safety net only.
  const std::uint64_t bound_us = fp.stall_micros != 0 ? fp.stall_micros : 10000000;
  const std::uint64_t t0 = now_ns();
  for (;;) {
    if (stopping_.load(std::memory_order_relaxed)) return;
    if (fp.stall_until_submitted != 0 &&
        submitted_.load(std::memory_order_relaxed) >= fp.stall_until_submitted)
      return;
    if (now_ns() - t0 >= bound_us * 1000) return;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

bool SvdServer::kill_applies(const Shard& sh) {
  const ServeFaultPlan& fp = options_.faults;
  if (!fp.enabled || fp.kill_request < 0) return false;
  const auto target = static_cast<std::uint64_t>(fp.kill_request);
  bool present = false;
  for (const Request& r : sh.keep) present = present || r.id == target;
  if (!present) return false;
  // Bounded budget dispenser: the first kill_repeat encounters of the target
  // request fire, every later one solves normally — so a requeued kill
  // request eventually completes and the death count is exact.
  return kill_attempts_.fetch_add(1, std::memory_order_relaxed) < fp.kill_repeat;
}

void SvdServer::finish_solo(Shard& sh, const Request& r) {
  const std::uint64_t now = now_ns();
  if (r.deadline_ns != 0 && now > r.deadline_ns) {
    complete_expired(sh, r, false);
    return;
  }
  const ServeFaultPlan& fp = options_.faults;
  if (fp.enabled && fp.should_throw(r.id)) {
    complete_failed(sh, r, injected_fault_message(r.id));
    return;
  }
  // Classify poison without paying the engine's validation throw: the lane
  // is doomed anyway, and the probe names the offending column.
  const int bad = first_nonfinite_column(*r.a);
  if (bad >= 0) {
    complete_failed(sh, r, "poison input: column " + std::to_string(bad) + " is non-finite");
    return;
  }
  try {
    sh.engine->solve_single_into(*r.a, r.out);
  } catch (const std::exception& e) {
    complete_failed(sh, r, e.what());
    return;
  } catch (...) {
    complete_failed(sh, r, "unknown solver exception");
    return;
  }
  complete_solved(sh, r, now_ns(), 1);
}

void SvdServer::isolate_batch(Shard& sh) {
  // A lane re-run solo is a batch of one, which the engine contract makes
  // bitwise equal to the sequential driver — exactly what the lane would
  // have produced in the clean batch. Only the poison lanes end kFailed.
  for (const Request& r : sh.keep) finish_solo(sh, r);
}

void SvdServer::solve_batch(Shard& sh) {
  sh.in.clear();
  sh.out.clear();
  for (const Request& r : sh.keep) {
    sh.in.push_back(r.a);
    sh.out.push_back(r.out);
  }
  const ServeFaultPlan& fp = options_.faults;
  bool clean = true;
  try {
    if (fp.enabled && fp.throw_prob > 0.0) {
      for (const Request& r : sh.keep)
        if (fp.should_throw(r.id)) throw std::runtime_error(injected_fault_message(r.id));
    }
    sh.engine->solve_into({sh.in.data(), sh.in.size()}, {sh.out.data(), sh.out.size()},
                          nullptr);
  } catch (...) {
    // One poison request must not take its batchmates down: fall through to
    // lane-by-lane isolation. (solve_into validates every input before
    // writing any output, so no partial results leak.)
    clean = false;
  }
  if (clean) {
    const std::uint64_t done_ns = now_ns();
    {
      std::lock_guard<std::mutex> lock(sh.stats_mu);
      for (const Request& r : sh.keep)
        sh.latency.record(done_ns > r.enqueue_ns ? done_ns - r.enqueue_ns : 0);
      ++sh.batches;
      sh.lanes += sh.keep.size();
    }
    solved_.fetch_add(sh.keep.size(), std::memory_order_relaxed);
    bump_completed(sh.keep.size());
    return;
  }
  isolate_batch(sh);
}

void SvdServer::shard_loop(std::size_t idx) {
  TREESVD_HB_SCOPED_FRAME(serve_frame, [&] { return "serve shard " + std::to_string(idx); });
  Shard& sh = *shards_[idx];
  const std::size_t max_batch = options_.batch.lane_width;
  // Shard-owned BLAS-3 fallback: diagnostics GEMMs in finalize that lose the
  // shared gemm_pool() gate to a sibling shard run on this pool instead of
  // silently single-threading (see ScopedGemmFallbackPool).
  std::unique_ptr<ThreadPool> gemm_fb;
  std::unique_ptr<ScopedGemmFallbackPool> gemm_reg;
  if (options_.gemm_fallback_threads > 0) {
    gemm_fb = std::make_unique<ThreadPool>(
        static_cast<unsigned>(options_.gemm_fallback_threads));
    gemm_reg = std::make_unique<ScopedGemmFallbackPool>(*gemm_fb);
  }
  maybe_stall(sh, idx);
  for (;;) {
    sh.heartbeat.fetch_add(1, std::memory_order_relaxed);
    sh.pending.clear();
    // Block for the first request, then opportunistically fill the rest of
    // the SIMD shard from whatever else is already queued.
    if (sh.queue.pop_batch(sh.pending, max_batch) == 0) break;
    // Formation-time deadline check: an expired request completes without
    // burning a lane, and the batch re-forms from the survivors.
    const std::uint64_t formed_ns = now_ns();
    sh.keep.clear();
    for (const Request& r : sh.pending) {
      if (r.deadline_ns != 0 && formed_ns > r.deadline_ns)
        complete_expired(sh, r, false);
      else
        sh.keep.push_back(r);
    }
    if (sh.keep.empty()) continue;
    {
      std::lock_guard<std::mutex> lock(sh.inflight_mu);
      sh.inflight.assign(sh.keep.begin(), sh.keep.end());
    }
    sh.inflight_count.store(sh.keep.size(), std::memory_order_relaxed);
    if (kill_applies(sh)) {
      // Planned death: leave the in-flight record for the supervisor (which
      // requeues it) and exit the thread.
      kills_.fetch_add(1, std::memory_order_relaxed);
      sh.dead.store(true, std::memory_order_release);
      {
        std::lock_guard<std::mutex> lk(sup_mu_);
      }
      sup_cv_.notify_all();
      return;
    }
    solve_batch(sh);
    {
      std::lock_guard<std::mutex> lock(sh.inflight_mu);
      sh.inflight.clear();
    }
    sh.inflight_count.store(0, std::memory_order_relaxed);
    sh.heartbeat.fetch_add(1, std::memory_order_relaxed);
  }
}

void SvdServer::supervisor_loop() {
  TREESVD_HB_SCOPED_FRAME(sup_frame, [&] { return std::string("serve supervisor"); });
  const SupervisorOptions& so = options_.supervisor;
  std::unique_lock<std::mutex> lk(sup_mu_);
  while (!stopping_.load(std::memory_order_relaxed)) {
    sup_cv_.wait_for(lk, std::chrono::microseconds(so.poll_micros),
                     [&] { return stopping_.load(std::memory_order_relaxed); });
    if (stopping_.load(std::memory_order_relaxed)) break;
    lk.unlock();
    for (std::size_t s = 0; s < shards_.size(); ++s) supervise_shard(s);
    lk.lock();
  }
}

void SvdServer::supervise_shard(std::size_t idx) {
  Shard& sh = *shards_[idx];
  if (sh.dead.load(std::memory_order_acquire)) {
    restart_or_quarantine(idx);
    return;
  }
  // Stuck detection: heartbeat flat while work is pending. Detection only —
  // a wedged std::thread cannot be safely killed, but least-loaded routing
  // already starves it, and the counter surfaces the condition.
  const std::uint64_t hb = sh.heartbeat.load(std::memory_order_relaxed);
  const bool busy = sh.inflight_count.load(std::memory_order_relaxed) > 0 ||
                    sh.queue.size() > 0;
  const std::uint64_t now = now_ns();
  if (hb != sh.last_heartbeat || !busy) {
    sh.last_heartbeat = hb;
    sh.flat_since_ns = now;
    sh.stuck_latched = false;
    return;
  }
  if (!sh.stuck_latched &&
      now - sh.flat_since_ns > options_.supervisor.stuck_after_micros * 1000) {
    sh.stuck_latched = true;
    stuck_detected_.fetch_add(1, std::memory_order_relaxed);
  }
}

void SvdServer::restart_or_quarantine(std::size_t idx) {
  Shard& sh = *shards_[idx];
  // The dying thread set `dead` as its last store and returned; the join
  // gives every pre-death write (including the in-flight record) a
  // happens-before edge into this thread.
  if (threads_[idx].joinable()) threads_[idx].join();
  sh.dead.store(false, std::memory_order_relaxed);
  const std::uint64_t deaths = sh.deaths.fetch_add(1, std::memory_order_relaxed) + 1;
  std::vector<Request> orphans;
  {
    std::lock_guard<std::mutex> lock(sh.inflight_mu);
    orphans.swap(sh.inflight);
    sh.inflight.reserve(options_.batch.lane_width);
  }
  sh.inflight_count.store(0, std::memory_order_relaxed);
  bool restarted = false;
  if (deaths <= options_.supervisor.quarantine_after) {
    try {
      // Fresh engine: whatever state the death left behind is discarded.
      sh.engine = std::make_unique<BatchedSvd>(options_.rows, options_.cols,
                                               *make_ordering(ordering_name_), options_.batch);
      sh.engine->reserve(options_.batch.lane_width);
      threads_[idx] = std::thread([this, idx] { shard_loop(idx); });
      restarts_.fetch_add(1, std::memory_order_relaxed);
      restarted = true;
    } catch (...) {
      restarted = false;
    }
  }
  if (!restarted) {
    // Repeat offender (or unrebuildable): retire the shard and move every
    // request it still holds — queued and in-flight — to the survivors.
    sh.quarantined.store(true, std::memory_order_relaxed);
    quarantines_.fetch_add(1, std::memory_order_relaxed);
    sh.queue.close();
    std::vector<Request> queued;
    while (sh.queue.pop_batch(queued, sh.queue.capacity() + 1) > 0) {
    }
    orphans.insert(orphans.end(), queued.begin(), queued.end());
  }
  requeue_or_fail(sh, orphans, restarted);
}

void SvdServer::requeue_or_fail(Shard& home, std::vector<Request>& reqs, bool home_alive) {
  for (Request& r : reqs) {
    Shard* target = nullptr;
    if (home_alive) {
      // A restarted shard readopts its own in-flight work: deterministic
      // (the kill/restart sequence does not depend on sibling load), and the
      // happens-before through the queue keeps the payloads clean.
      target = &home;
    } else {
      const int s = pick_shard();
      if (s >= 0) target = shards_[static_cast<std::size_t>(s)].get();
    }
    if (target != nullptr && target->queue.push(r)) {
      requeued_.fetch_add(1, std::memory_order_relaxed);
    } else {
      complete_failed(home, r, "shard died and no healthy shard could adopt the request");
    }
  }
}

}  // namespace treesvd
