#include "svd/spmd.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/blas1.hpp"
#include "mp/message_passing.hpp"
#include "svd/equilibrate.hpp"
#include "svd/pair_kernel.hpp"
#include "util/require.hpp"

namespace treesvd {
namespace {

/// Unique message tag per (sweep, step, destination slot): ranks never need
/// a step barrier — matching tags order the dataflow.
std::uint64_t make_tag(int sweep, int step, int to_slot) {
  return (static_cast<std::uint64_t>(sweep) << 40) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(step)) << 20) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(to_slot));
}

struct SlotState {
  int label = -1;               ///< which logical column occupies the slot
  double hsq = 0.0;             ///< cached squared norm of h (travels with it)
  std::vector<double> h;        ///< column of A/H
  std::vector<double> v;        ///< column of V (empty when not tracked)
};

/// One rank's sweep-boundary snapshot: everything needed to replay the run
/// bit-identically from the sweep it names.
struct RankCheckpoint {
  int sweep = -1;               ///< the sweep this state is about to execute
  SlotState slot[2];
  std::vector<int> layout;      ///< the sweep's opening layout (global)
  std::size_t rot = 0;          ///< rotations accumulated so far
  std::size_t swap = 0;         ///< swaps accumulated so far
  KernelStats kernels;          ///< this rank's kernel counters at the boundary
  ConvergenceWatchdog watchdog{0};
  StallDetector stall;          ///< observational status classifier state
};

// ---------------------------------------------------------------------------
// Durable blob board layout. Checkpoints and results travel through
// Context::publish so they survive rank *processes* dying (socket backend);
// the in-process backend stores the identical bytes on the same board, which
// is what keeps the two backends bit-identical: one serialisation, one code
// path. Doubles round-trip exactly; integer counters stay below 2^53.

/// Checkpoints: a ring of two board slots per rank, cycled by boundary index
/// (ranks drift by at most one boundary, so the newest boundary *all* ranks
/// committed is always on the board). Results: one slot per rank.
std::uint64_t checkpoint_key(int rank, int slot) {
  return (std::uint64_t{1} << 56) | (static_cast<std::uint64_t>(rank) << 8) |
         static_cast<std::uint64_t>(slot);
}
std::uint64_t result_key(int rank) {
  return (std::uint64_t{2} << 56) | static_cast<std::uint64_t>(rank);
}

void pack_slot(const SlotState& s, std::vector<double>& out) {
  out.push_back(static_cast<double>(s.label));
  out.push_back(s.hsq);
  out.push_back(static_cast<double>(s.h.size()));
  out.push_back(static_cast<double>(s.v.size()));
  out.insert(out.end(), s.h.begin(), s.h.end());
  out.insert(out.end(), s.v.begin(), s.v.end());
}

/// Returns the number of doubles consumed.
std::size_t unpack_slot(const double* p, SlotState* s) {
  s->label = static_cast<int>(p[0]);
  s->hsq = p[1];
  const auto hn = static_cast<std::size_t>(p[2]);
  const auto vn = static_cast<std::size_t>(p[3]);
  s->h.assign(p + 4, p + 4 + hn);
  s->v.assign(p + 4 + hn, p + 4 + hn + vn);
  return 4 + hn + vn;
}

constexpr std::size_t kKernelsPacked = 8;

void pack_kernels(const KernelStats& k, std::vector<double>& out) {
  out.push_back(static_cast<double>(k.pairs));
  out.push_back(static_cast<double>(k.dot_passes));
  out.push_back(static_cast<double>(k.gram_passes));
  out.push_back(static_cast<double>(k.rotate_passes));
  out.push_back(static_cast<double>(k.norm_refreshes));
  out.push_back(static_cast<double>(k.gram_builds));
  out.push_back(static_cast<double>(k.accum_rotations));
  out.push_back(static_cast<double>(k.blocked_applies));
}

KernelStats unpack_kernels(const double* p) {
  KernelStats k;
  k.pairs = static_cast<std::size_t>(p[0]);
  k.dot_passes = static_cast<std::size_t>(p[1]);
  k.gram_passes = static_cast<std::size_t>(p[2]);
  k.rotate_passes = static_cast<std::size_t>(p[3]);
  k.norm_refreshes = static_cast<std::size_t>(p[4]);
  k.gram_builds = static_cast<std::size_t>(p[5]);
  k.accum_rotations = static_cast<std::size_t>(p[6]);
  k.blocked_applies = static_cast<std::size_t>(p[7]);
  return k;
}

/// Checkpoint blob: [sweep, rot, swap, layout(n), kernels, watchdog, stall,
/// slot0, slot1].
std::vector<double> pack_checkpoint(const RankCheckpoint& cp) {
  std::vector<double> out;
  out.reserve(3 + cp.layout.size() + kKernelsPacked + ConvergenceWatchdog::kPacked +
              StallDetector::kPacked + 2 * (4 + cp.slot[0].h.size() + cp.slot[0].v.size()));
  out.push_back(static_cast<double>(cp.sweep));
  out.push_back(static_cast<double>(cp.rot));
  out.push_back(static_cast<double>(cp.swap));
  for (const int l : cp.layout) out.push_back(static_cast<double>(l));
  pack_kernels(cp.kernels, out);
  cp.watchdog.pack(out);
  cp.stall.pack(out);
  pack_slot(cp.slot[0], out);
  pack_slot(cp.slot[1], out);
  return out;
}

RankCheckpoint unpack_checkpoint(const std::vector<double>& blob, int n) {
  RankCheckpoint cp;
  const double* p = blob.data();
  cp.sweep = static_cast<int>(p[0]);
  cp.rot = static_cast<std::size_t>(p[1]);
  cp.swap = static_cast<std::size_t>(p[2]);
  p += 3;
  cp.layout.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) cp.layout[static_cast<std::size_t>(i)] = static_cast<int>(p[i]);
  p += n;
  cp.kernels = unpack_kernels(p);
  p += kKernelsPacked;
  cp.watchdog = ConvergenceWatchdog::unpack(p);
  p += ConvergenceWatchdog::kPacked;
  cp.stall = StallDetector::unpack(p);
  p += StallDetector::kPacked;
  p += unpack_slot(p, &cp.slot[0]);
  unpack_slot(p, &cp.slot[1]);
  return cp;
}

/// One rank's contribution to the final result, published after its last
/// sweep: [sweep, converged, rot, swap, kernels, stall, slot0, slot1].
struct RankResult {
  int sweep = 0;
  bool converged = false;
  std::size_t rot = 0;
  std::size_t swap = 0;
  KernelStats kernels;
  StallDetector stall;
  SlotState slot[2];
};

std::vector<double> pack_result(const RankResult& r) {
  std::vector<double> out;
  out.push_back(static_cast<double>(r.sweep));
  out.push_back(r.converged ? 1.0 : 0.0);
  out.push_back(static_cast<double>(r.rot));
  out.push_back(static_cast<double>(r.swap));
  pack_kernels(r.kernels, out);
  r.stall.pack(out);
  pack_slot(r.slot[0], out);
  pack_slot(r.slot[1], out);
  return out;
}

RankResult unpack_result(const std::vector<double>& blob) {
  RankResult r;
  const double* p = blob.data();
  r.sweep = static_cast<int>(p[0]);
  r.converged = p[1] != 0.0;
  r.rot = static_cast<std::size_t>(p[2]);
  r.swap = static_cast<std::size_t>(p[3]);
  p += 4;
  r.kernels = unpack_kernels(p);
  p += kKernelsPacked;
  r.stall = StallDetector::unpack(p);
  p += StallDetector::kPacked;
  p += unpack_slot(p, &r.slot[0]);
  unpack_slot(p, &r.slot[1]);
  return r;
}

}  // namespace

SvdResult spmd_jacobi(const Matrix& a, const Ordering& ordering, const JacobiOptions& options,
                      SpmdStats* stats, const SpmdTransport* transport) {
  TREESVD_REQUIRE(a.rows() >= a.cols() && a.cols() >= 2, "spmd_jacobi expects m >= n >= 2");
  require_finite_columns(a, "spmd_jacobi");
  const int n0 = static_cast<int>(a.cols());
  int n = 0;
  for (int w = n0; w <= 2 * n0 + 4; ++w) {
    if (ordering.supports(w)) {
      n = w;
      break;
    }
  }
  TREESVD_REQUIRE(n > 0, ordering.name() + " supports no width near n");
  const std::size_t rows = a.rows();
  const int ranks = n / 2;

  RecoveryOptions recovery = transport != nullptr ? transport->recovery : RecoveryOptions{};
  // Without a transport, the engine-level watchdog knob applies (a transport
  // brings its own RecoveryOptions, which chaos replay depends on).
  if (transport == nullptr) recovery.watchdog_sweeps = options.watchdog_sweeps;
  const bool chaos = transport != nullptr;

  // Equilibration happens once, before the scatter, so every rank works at
  // the same exact power-of-two scale and the hsq payloads stay finite.
  Matrix a_eq = a;
  const Equilibration eq = equilibrate(a_eq, options.equilibrate);
  const bool checkpointing = chaos && recovery.checkpoint_sweeps > 0;

  mp::World world(ranks);
  if (chaos) {
    if (transport->backend == mp::Backend::kSocket)
      world.set_backend(mp::Backend::kSocket, transport->socket);
    if (transport->reliable.enabled) world.set_reliable(transport->reliable);
    if (transport->faults.enabled) world.set_fault_plan(transport->faults);
  }
  mp::RecoveryCounters& rc = world.recovery_counters();

  // All cross-run state — checkpoints, per-rank results, per-rank kernel
  // counters — lives on the world's durable blob board (see the key helpers
  // above): it is the only rank-written state that survives a rank process
  // dying, and the in-process backend uses the identical serialisation, so
  // both backends run one code path.
  int restore_sweep = -1;  // < 0: fresh start from the input matrix

  const auto program = [&](mp::Context& ctx) {
    const int me = ctx.rank();
    // Rank-local kernel counters: zero on a fresh start, restored from the
    // checkpoint on a replay, folded into the result blob at the end — so a
    // respawned rank process starts from the same counter state a rolled-back
    // thread would.
    KernelCounters counters;
    // Local state: this rank's two slots.
    SlotState slot[2];
    std::vector<int> layout(static_cast<std::size_t>(n));
    ConvergenceWatchdog watchdog(recovery.watchdog_sweeps);
    // Replicated control: every rank feeds the same collective activity, so
    // the classifier state is identical everywhere; rank 0 publishes it.
    StallDetector stall(options.stall_window);
    int sweep = 0;
    std::size_t my_rot = 0;
    std::size_t my_swap = 0;
    if (restore_sweep < 0) {
      for (int k = 0; k < 2; ++k) {
        const int s = 2 * me + k;
        slot[k].label = s;
        slot[k].h.assign(rows, 0.0);
        if (s < n0) {
          const auto src = a_eq.col(static_cast<std::size_t>(s));
          std::copy(src.begin(), src.end(), slot[k].h.begin());
        }
        if (options.compute_v) {
          slot[k].v.assign(static_cast<std::size_t>(n), 0.0);
          slot[k].v[static_cast<std::size_t>(s)] = 1.0;
        }
        slot[k].hsq = sumsq_robust(slot[k].h);
      }
      counters.add_norm_refresh(2);
      // Every rank derives the identical schedule (SPMD-style replicated
      // control); the layout evolves deterministically between sweeps.
      for (int i = 0; i < n; ++i) layout[static_cast<std::size_t>(i)] = i;
    } else {
      // Respawn: resume from the newest boundary every rank committed. The
      // board is readable here on both backends — shared memory in-process,
      // the forked copy of the launcher's board in a rank process.
      RankCheckpoint cp;
      bool found = false;
      for (int sl = 0; sl < 2 && !found; ++sl) {
        const std::uint64_t key = checkpoint_key(me, sl);
        if (!world.has_published(key)) continue;
        RankCheckpoint cand = unpack_checkpoint(world.published(key), n);
        if (cand.sweep == restore_sweep) {
          cp = std::move(cand);
          found = true;
        }
      }
      TREESVD_ASSERT(found);
      slot[0] = std::move(cp.slot[0]);
      slot[1] = std::move(cp.slot[1]);
      layout = cp.layout;
      sweep = cp.sweep;
      my_rot = cp.rot;
      my_swap = cp.swap;
      counters.store(cp.kernels);
      watchdog = cp.watchdog;
      stall = cp.stall;
    }
    // Newest boundary already on this rank's board ring: a rank that rolled
    // back past boundaries it had committed skips re-publishing them — the
    // deterministic replay would recreate the same bytes.
    int ring_newest = -1;
    for (int sl = 0; sl < 2; ++sl) {
      const std::uint64_t key = checkpoint_key(me, sl);
      if (world.has_published(key))
        ring_newest = std::max(ring_newest, static_cast<int>(world.published(key)[0]));
    }

    bool done = false;
    for (; sweep < options.max_sweeps && !done; ++sweep) {
      // Sweep-boundary checkpoint, before any of this sweep's work, so a
      // replay re-executes the boundary's norm refresh identically. A rank
      // that already holds this boundary (rolled back past it) skips the
      // push — the deterministic replay would recreate the same bytes.
      if (checkpointing && sweep % recovery.checkpoint_sweeps == 0) {
        if (ring_newest < sweep) {
          RankCheckpoint cp;
          cp.sweep = sweep;
          cp.slot[0] = slot[0];
          cp.slot[1] = slot[1];
          cp.layout = layout;
          cp.rot = my_rot;
          cp.swap = my_swap;
          cp.kernels = counters.snapshot();
          cp.watchdog = watchdog;
          cp.stall = stall;
          // The two board slots per rank form the ring: the boundary index
          // alternates between them, overwriting the snapshot that is two
          // boundaries old.
          const int slot_idx = (sweep / recovery.checkpoint_sweeps) % 2;
          ctx.publish(checkpoint_key(me, slot_idx), pack_checkpoint(cp));
          ring_newest = sweep;
          if (me == 0) rc.add_checkpoint();
        }
      }
      // Scheduled drift control, mirroring the shared-memory drivers: each
      // rank re-reduces its resident columns.
      if (options.cache_norms && sweep > 0 && options.norm_recompute_sweeps > 0 &&
          sweep % options.norm_recompute_sweeps == 0) {
        for (auto& sl : slot) sl.hsq = sumsq_robust(sl.h);
        counters.add_norm_refresh(2);
      }
      const Sweep s = ordering.sweep_from(layout, sweep);
      // Intra-leaf reconciliation: the sweep's opening layout may orient this
      // leaf's pair the other way round; swapping locally is free.
      {
        const auto lay0 = s.layout(0);
        if (lay0[static_cast<std::size_t>(2 * me)] != slot[0].label) {
          TREESVD_ASSERT(lay0[static_cast<std::size_t>(2 * me)] == slot[1].label);
          std::swap(slot[0], slot[1]);
        }
      }
      std::size_t sweep_rot = 0;
      std::size_t sweep_swap = 0;
      for (int t = 0; t < s.steps(); ++t) {
        // Compute: rotate the resident pair (if this leaf is active).
        if (s.leaf_active(t, me)) {
          const int lo = slot[0].label < slot[1].label ? 0 : 1;
          const int hi = 1 - lo;
          const std::span<double> none;
          const std::span<double> vlo = options.compute_v ? std::span<double>(slot[lo].v) : none;
          const std::span<double> vhi = options.compute_v ? std::span<double>(slot[hi].v) : none;
          detail::PairOutcome o;
          if (options.cache_norms) {
            const auto co = detail::process_pair_columns_cached(
                slot[lo].h, slot[hi].h, vlo, vhi, slot[lo].hsq, slot[hi].hsq, options, counters);
            slot[lo].hsq = co.app;
            slot[hi].hsq = co.aqq;
            o = co.outcome;
          } else {
            o = detail::process_pair_columns(slot[lo].h, slot[hi].h, vlo, vhi, options,
                                             &counters);
          }
          sweep_rot += o.rotated ? 1 : 0;
          sweep_swap += o.swapped ? 1 : 0;
        }
        // Communicate: emit this leaf's departures, then absorb arrivals.
        const auto moves = s.moves(t);
        for (const ColumnMove& mv : moves) {
          const int from_leaf = mv.from_slot / 2;
          if (from_leaf != me) continue;
          const int k = mv.from_slot - 2 * me;
          TREESVD_ASSERT(slot[k].label == mv.index);
          const int to_leaf = mv.to_slot / 2;
          if (to_leaf == me) continue;  // intra-leaf handled below
          // The cached squared norm travels with the column, so the
          // receiving rank never re-reduces an arriving column.
          std::vector<double> payload;
          payload.reserve(2 + rows + slot[k].v.size());
          payload.push_back(static_cast<double>(mv.index));
          payload.push_back(slot[k].hsq);
          payload.insert(payload.end(), slot[k].h.begin(), slot[k].h.end());
          payload.insert(payload.end(), slot[k].v.begin(), slot[k].v.end());
          ctx.send(to_leaf, make_tag(sweep, t, mv.to_slot), std::move(payload));
        }
        // Intra-leaf rearrangement and arrivals build the next layout state.
        SlotState next[2];
        const auto to = s.layout(t + 1);
        for (int k = 0; k < 2; ++k) {
          const int dst_slot = 2 * me + k;
          const int want = to[static_cast<std::size_t>(dst_slot)];
          if (slot[0].label == want) {
            next[k] = std::move(slot[0]);
            slot[0].label = -1;
          } else if (slot[1].label == want) {
            next[k] = std::move(slot[1]);
            slot[1].label = -1;
          } else {
            // Arrives by message; sender is known from the schedule.
            int src_leaf = -1;
            for (const ColumnMove& mv : moves) {
              if (mv.to_slot == dst_slot) {
                src_leaf = mv.from_slot / 2;
                break;
              }
            }
            TREESVD_ASSERT(src_leaf >= 0 && src_leaf != me);
            std::vector<double> payload = ctx.recv(src_leaf, make_tag(sweep, t, dst_slot));
            TREESVD_ASSERT(payload.size() ==
                           2 + rows + (options.compute_v ? static_cast<std::size_t>(n) : 0u));
            next[k].label = static_cast<int>(payload[0]);
            TREESVD_ASSERT(next[k].label == want);
            next[k].hsq = payload[1];
            next[k].h.assign(payload.begin() + 2,
                             payload.begin() + 2 + static_cast<std::ptrdiff_t>(rows));
            if (options.compute_v)
              next[k].v.assign(payload.begin() + 2 + static_cast<std::ptrdiff_t>(rows),
                               payload.end());
            if (chaos) {
              // Payload guards. A corrupted cached norm is repairable by
              // re-reducing the column it arrived with; non-finite column
              // data is not, and fails fast naming the column.
              require_finite_payload(next[k].h, next[k].label, "spmd_jacobi");
              if (options.cache_norms && !cached_norm_plausible(next[k].hsq)) {
                next[k].hsq = sumsq_robust(next[k].h);
                counters.add_norm_refresh();
                rc.add_norm_rereduction();
              }
            }
          }
        }
        slot[0] = std::move(next[0]);
        slot[1] = std::move(next[1]);
      }
      const auto fin = s.final_layout();
      layout.assign(fin.begin(), fin.end());
      // Convergence is a collective decision.
      const double active = ctx.allreduce_sum(static_cast<double>(sweep_rot + sweep_swap));
      my_rot += sweep_rot;
      my_swap += sweep_swap;
      if (active == 0.0) done = true;
      if (!done) stall.observe(active);
      // Stagnation watchdog: the collectively agreed activity measure has
      // stopped decreasing — re-reduce the cached norms (the only repairable
      // stagnation source) instead of letting drift propagate. Every rank
      // observes the same activity, so the trip is replicated control, not
      // a new collective.
      if (!done && watchdog.observe(active)) {
        if (options.cache_norms) {
          for (auto& sl : slot) sl.hsq = sumsq_robust(sl.h);
          counters.add_norm_refresh(2);
          rc.add_norm_rereduction(2);
        }
        if (me == 0) rc.add_watchdog_trip();
        watchdog.reset();
      }
    }

    // Publish: each rank posts its two slots of the final state (and its
    // share of the totals) to the durable board — the only channel that
    // survives the rank when it is a process.
    RankResult res;
    res.sweep = sweep;
    res.converged = done;
    res.rot = my_rot;
    res.swap = my_swap;
    res.kernels = counters.snapshot();
    res.stall = stall;
    res.slot[0] = std::move(slot[0]);
    res.slot[1] = std::move(slot[1]);
    ctx.publish(result_key(me), pack_result(res));
  };

  // Recovery loop: a killed rank is respawned by rolling the whole world
  // back to the newest checkpoint every rank committed and replaying — the
  // engine is deterministic, so the replay is bit-identical to the run the
  // kill interrupted. Transport-budget exhaustion and program errors are
  // not recoverable and propagate.
  for (;;) {
    try {
      world.run(program);
      break;
    } catch (const mp::RankKilledError&) {
      if (!checkpointing) throw;
      int newest_common = -1;
      for (int rr = 0; rr < ranks; ++rr) {
        // Every rank publishes its sweep-0 boundary before its first
        // transport op, and a process's pre-kill publishes reach the board
        // in stream order, so the board always has a boundary per rank.
        int newest = -1;
        for (int sl = 0; sl < 2; ++sl) {
          const std::uint64_t key = checkpoint_key(rr, sl);
          if (world.has_published(key))
            newest = std::max(newest, static_cast<int>(world.published(key)[0]));
        }
        TREESVD_ASSERT(newest >= 0);
        newest_common = newest_common < 0 ? newest : std::min(newest_common, newest);
      }
      if (rc.snapshot().rollbacks >= static_cast<std::size_t>(recovery.max_rollbacks)) throw;
      rc.add_rollback();
      restore_sweep = newest_common;
      world.reset_for_replay();
    }
  }
  if (chaos && transport->reliable.enabled) world.purge_leftovers();

  if (stats != nullptr) {
    stats->messages = world.delivered();
    stats->recovery = world.recovery_stats();
  }

  // Assemble the result by label from the published rank blobs, exactly like
  // the other engines. Replicated control (sweeps/converged/stall) is read
  // from rank 0; the additive totals are summed in rank order.
  std::vector<RankResult> results;
  results.reserve(static_cast<std::size_t>(ranks));
  for (int rr = 0; rr < ranks; ++rr) results.push_back(unpack_result(world.published(result_key(rr))));

  SvdResult r;
  r.sweeps = results[0].sweep;
  r.converged = results[0].converged;
  const StallDetector final_stall = results[0].stall;
  KernelStats kernels;
  for (const RankResult& res : results) {
    r.rotations += res.rot;
    r.swaps += res.swap;
    kernels += res.kernels;
  }
  kernels.isa_tier = static_cast<int>(resolved_isa());
  r.kernel_stats = kernels;

  std::vector<const SlotState*> by_label(static_cast<std::size_t>(n), nullptr);
  for (const RankResult& res : results)
    for (const SlotState& s : res.slot) by_label[static_cast<std::size_t>(s.label)] = &s;

  r.sigma.resize(static_cast<std::size_t>(n0));
  for (int i = 0; i < n0; ++i) r.sigma[static_cast<std::size_t>(i)] = nrm2(by_label[static_cast<std::size_t>(i)]->h);
  const double smax = *std::max_element(r.sigma.begin(), r.sigma.end());
  r.u = Matrix(rows, static_cast<std::size_t>(n0));
  for (int i = 0; i < n0; ++i) {
    const double sig = r.sigma[static_cast<std::size_t>(i)];
    if (sig <= options.rank_tol * smax || sig == 0.0) continue;
    const auto& src = by_label[static_cast<std::size_t>(i)]->h;
    const auto dst = r.u.col(static_cast<std::size_t>(i));
    for (std::size_t row = 0; row < rows; ++row) dst[row] = src[row] / sig;
  }
  if (options.compute_v) {
    r.v = Matrix(static_cast<std::size_t>(n0), static_cast<std::size_t>(n0));
    for (int i = 0; i < n0; ++i) {
      const auto& src = by_label[static_cast<std::size_t>(i)]->v;
      const auto dst = r.v.col(static_cast<std::size_t>(i));
      std::copy(src.begin(), src.begin() + static_cast<std::ptrdiff_t>(n0), dst.begin());
    }
  }
  // U was divided out at the equilibrated scale (the 2^e factor cancels
  // bitwise); only sigma carries the scale and is undone exactly here.
  unscale_sigma(r.sigma, eq);
  r.status = r.converged ? SvdStatus::kConverged
                         : (final_stall.stalled() ? SvdStatus::kStalled : SvdStatus::kMaxSweeps);
  r.diagnostics.input_scale = eq.stats;
  r.diagnostics.equilibrated = eq.applied;
  r.diagnostics.equilibration_exponent = eq.exponent;
  r.diagnostics.stalled_sweeps = final_stall.streak();
  r.diagnostics.watchdog_trips = world.recovery_stats().watchdog_trips;
  if (!r.converged || options.full_diagnostics)
    assess_quality(a, r, eq.exponent, options.rank_tol);
  return r;
}

}  // namespace treesvd
