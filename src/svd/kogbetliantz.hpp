#pragma once
// Kogbetliantz two-sided Jacobi SVD.
//
// The paper opens by preferring the Hestenes one-sided method "as advocated
// in [2]" — reference [2] (Brent & Luk) had used the two-sided Kogbetliantz
// iteration on systolic arrays. This module implements Kogbetliantz driven by
// the same parallel orderings, so the preference becomes measurable: the
// two-sided method must rotate rows *and* columns, doubling what has to move
// between processors on a distributed machine (ablation A8), while the
// one-sided method touches whole columns only.
//
// One rotation: for the 2x2 block M = [[a_ii, a_ij], [a_ji, a_jj]], left and
// right rotations J_l, J_r with J_l^T M J_r diagonal; A <- J_l^T A J_r
// accumulates U <- U J_l and V <- V J_r, and diag(A) converges to the
// singular values (signs folded into U at extraction).

#include "core/ordering.hpp"
#include "linalg/matrix.hpp"
#include "svd/jacobi.hpp"

namespace treesvd {

struct KogbetliantzOptions {
  double tol = 1e-13;  ///< |a_ij|, |a_ji| negligible below tol * scale
  int max_sweeps = 60;
  bool compute_uv = true;
  bool sort_descending = true;
  bool track_off = false;  ///< record off(A)/||A|| per sweep
  /// Robustness knobs, as in JacobiOptions: exact power-of-two input
  /// equilibration (keeps the off_fraction sums and the threshold scale
  /// finite at extreme entry magnitudes) and the observational stall window
  /// for the status classification.
  EquilibrateMode equilibrate = EquilibrateMode::kAuto;
  int stall_window = 4;
};

struct KogbetliantzResult {
  Matrix u;  ///< n x n (empty when compute_uv is false)
  std::vector<double> sigma;
  Matrix v;  ///< n x n
  int sweeps = 0;
  bool converged = false;
  std::size_t rotations = 0;
  std::vector<double> off_history;
  /// Graceful-degradation classification, as on SvdResult.
  SvdStatus status = SvdStatus::kMaxSweeps;
  SvdDiagnostics diagnostics;
};

/// Two-sided Jacobi SVD of a *square* matrix using the given parallel
/// ordering (pads with identity rows/columns to a supported width). For
/// m > n, factor with HouseholderQr first and pass R.
KogbetliantzResult kogbetliantz_svd(const Matrix& a, const Ordering& ordering,
                                    const KogbetliantzOptions& options = {});

/// The 2x2 kernel, exposed for tests: rotations (cl, sl), (cr, sr) such that
/// G(cl,sl)^T [[w,x],[y,z]] G(cr,sr) is diagonal, where G(c,s) = [[c,-s],[s,c]].
struct TwoSidedRotation {
  double cl = 1.0;
  double sl = 0.0;
  double cr = 1.0;
  double sr = 0.0;
};
TwoSidedRotation two_sided_rotation(double w, double x, double y, double z) noexcept;

}  // namespace treesvd
