#include "svd/equilibrate.hpp"

#include <cmath>

namespace treesvd {

Equilibration equilibrate(Matrix& a, EquilibrateMode mode) noexcept {
  Equilibration eq;
  eq.stats = scan_scale(a);
  if (mode == EquilibrateMode::kOff || eq.stats.max_abs == 0.0) return eq;

  const int e = eq.stats.max_exponent;
  const bool act = mode == EquilibrateMode::kAlways
                       ? e != 0
                       : e > kAutoEquilibrateExponent || e < -kAutoEquilibrateExponent;
  if (!act) return eq;

  eq.applied = true;
  eq.exponent = -e;  // lands max|a| in [1, 2)
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (double& v : a.col(j)) v = std::ldexp(v, eq.exponent);
  return eq;
}

void unscale_sigma(std::vector<double>& sigma, const Equilibration& eq) noexcept {
  if (!eq.applied) return;
  for (double& s : sigma) s = std::ldexp(s, -eq.exponent);
}

}  // namespace treesvd
