#pragma once
// Exact power-of-two input equilibration for the Jacobi engines.
//
// Every engine in this repo carries *squared* column norms — `sumsq`,
// `gram_pair`, the NormCache, the `hsq` payload fields — so entries beyond
// ~1e±154 silently overflow or underflow the Gram quantities. The pre-pass
// here rescales the working matrix by a single exact power of two chosen
// from the entry magnitudes, which fixes that entire failure class without
// perturbing a single rotation decision:
//
//   * The scale is uniform, so every Gram element (app, aqq, apq) scales by
//     the same factor 2^{2e}. The rotation parameters depend only on ratios
//     of Gram elements (zeta = (aqq-app)/(2 apq)), so c and s — and hence
//     every rotation, swap and sweep count — are bitwise unchanged.
//   * The scale is an exact power of two, so the scaling (ldexp) and the
//     final unscale of sigma are exact in IEEE arithmetic: an equilibrated
//     run reproduces the unequilibrated singular values bit-for-bit whenever
//     the unequilibrated run itself stays inside the representable range.
//   * U = H/sigma divides two quantities carrying the same 2^e factor, and V
//     is a product of the (unchanged) rotations, so neither needs unscaling.
//
// A true per-column diagonal scaling A·D would NOT have these properties —
// it changes the singular values and right singular vectors (V^T D^{-1} is
// not orthogonal) — which is why the equilibration is uniform; the residual
// *intra*-matrix dynamic range is handled by the dlassq-style scaled
// fallbacks in linalg/blas1 and the graceful-degradation status contract
// (svd/status.hpp). The only inexactness: entries more than ~2^1070 below
// the matrix maximum land in the denormal range after a scale-down and lose
// trailing bits — such entries are far below sigma_max * DBL_EPSILON and
// cannot affect any singular value to working precision.

#include "linalg/matrix.hpp"
#include "svd/status.hpp"

namespace treesvd {

/// Record of an equilibration pre-pass. The working matrix was multiplied by
/// 2^exponent; singular values computed from it carry the same factor and
/// are unscaled with unscale_sigma().
struct Equilibration {
  bool applied = false;  ///< false => exponent is 0 and the matrix is untouched
  int exponent = 0;      ///< scaled matrix = 2^exponent * original
  ScaleStats stats;      ///< pre-scaling dynamic range (always filled in)
};

/// In kAuto mode, entries whose binary exponent exceeds this magnitude
/// trigger equilibration: max|a| <= 2^320 keeps every squared column norm
/// (and the Frobenius sum of all of them) comfortably below DBL_MAX, and
/// max|a| >= 2^-320 keeps squared norms out of the denormal range where the
/// relative-threshold tests lose their meaning.
inline constexpr int kAutoEquilibrateExponent = 320;

/// Scales `a` in place by an exact power of two according to `mode`, and
/// returns the record needed to undo it. kAuto only acts when the largest
/// entry magnitude lies outside [2^-320, 2^320]; kAlways recenters whenever
/// max|a| is not already in [1, 2); kOff (and the zero matrix) never scale.
Equilibration equilibrate(Matrix& a, EquilibrateMode mode) noexcept;

/// Exact unscale of singular values computed from the equilibrated matrix:
/// sigma[k] = 2^-exponent * sigma[k] via ldexp.
void unscale_sigma(std::vector<double>& sigma, const Equilibration& eq) noexcept;

}  // namespace treesvd
