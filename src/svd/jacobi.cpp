#include "svd/jacobi.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <string>

#include "analysis/hooks.hpp"
#include "util/thread_pool.hpp"

#include "linalg/blas1.hpp"
#include "linalg/rotation.hpp"
#include "svd/driver_detail.hpp"
#include "svd/equilibrate.hpp"
#include "svd/pair_kernel.hpp"
#include "svd/recovery.hpp"
#include "util/require.hpp"

namespace treesvd {
namespace {

using detail::PairKernel;
using detail::PairOutcome;

// Padding, the per-run robustness guards (SweepGuards), finalisation and the
// scheduled cache-refresh cadence live in svd/driver_detail.hpp, shared
// bit-for-bit with the batched engine (svd/batch.cpp).
using detail::finalize;
using detail::maybe_refresh;
using detail::pad_columns;
using detail::SweepGuards;

}  // namespace

std::size_t SvdResult::rank(double rank_tol) const {
  if (sigma.empty()) return 0;
  const double smax = *std::max_element(sigma.begin(), sigma.end());
  std::size_t r = 0;
  for (double s : sigma)
    if (s > rank_tol * smax && s > 0.0) ++r;
  return r;
}

double off_diagonal_measure(const Matrix& a) { return off_diagonal_measure(a, nullptr, nullptr); }

double off_diagonal_measure(const Matrix& a, ThreadPool* pool, const NormCache* cache) {
  const std::size_t n = a.cols();
  // Column j's task owns all pairs (i, j), i < j — disjoint writes into the
  // partial-sum slots, so the parallel path needs no synchronisation.
  std::vector<double> off_partial(n, 0.0);
  std::vector<double> diag_partial(n, 0.0);
  const auto column_task = [&](std::size_t j) {
    const auto cj = a.col(j);
    double off = 0.0;
    for (std::size_t i = 0; i < j; ++i) {
      const double d = dot(a.col(i), cj);
      off += 2.0 * d * d;
    }
    off_partial[j] = off;
    const double djj = cache != nullptr && !cache->empty() ? cache->sq(j) : dot(cj, cj);
    diag_partial[j] = djj * djj;
  };
  if (pool != nullptr) {
    // Grain 1: task cost grows linearly with j, so fine-grained dynamic
    // scheduling is what balances the triangle.
    pool->parallel_for(n, column_task, 1);
  } else {
    for (std::size_t j = 0; j < n; ++j) column_task(j);
  }
  double off = 0.0;
  double diag = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    off += off_partial[j];
    diag += diag_partial[j];
  }
  // Relative measure: off(G) / ||G||_F with G = A^T A.
  const double norm_g = std::sqrt(diag + off);
  return norm_g == 0.0 ? 0.0 : std::sqrt(off) / norm_g;
}

SvdResult one_sided_jacobi(const Matrix& a, const Ordering& ordering,
                           const JacobiOptions& options) {
  TREESVD_REQUIRE(a.rows() >= a.cols() && a.cols() >= 2,
                  "one_sided_jacobi expects m >= n >= 2");
  require_finite_columns(a, "one_sided_jacobi");
  // Level 0 of the engine hierarchy: one PairKernel, bound once to the
  // resolved dispatch table (after the per-solve tier override), drives every
  // pair of the run.
  const ScopedIsaOverride isa_guard(options.force_isa);
  const PairKernel kernel(options);
  int padded_n = 0;
  Matrix h = pad_columns(a, ordering, &padded_n);
  SweepGuards guards(options);
  guards.eq = equilibrate(h, options.equilibrate);
  Matrix v = options.compute_v ? Matrix::identity(static_cast<std::size_t>(padded_n)) : Matrix();
  Matrix* vp = options.compute_v ? &v : nullptr;

  std::vector<int> layout(static_cast<std::size_t>(padded_n));
  for (int i = 0; i < padded_n; ++i) layout[static_cast<std::size_t>(i)] = i;

  NormCache cache;
  if (options.cache_norms) cache.refresh(h);
  KernelCounters plain_counters;

  SvdResult r;
  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    maybe_refresh(&cache, h, sweep, options);
    const Sweep s = ordering.sweep_from(layout, sweep);
    std::size_t sweep_rot = 0;
    std::size_t sweep_swap = 0;
    for (int t = 0; t < s.steps(); ++t) {
      const StepPairs pairs = s.step_pairs(t);
      for (int k = 0; k < pairs.leaves(); ++k) {
        if (!pairs.active_at(k)) continue;
        const IndexPair p = pairs.at(k);
        const int i = std::min(p.even, p.odd);
        const int j = std::max(p.even, p.odd);
        const PairOutcome o = options.cache_norms
                                  ? kernel.process_cached(h, vp, i, j, cache)
                                  : kernel.process(h, vp, i, j, &plain_counters);
        sweep_rot += o.rotated ? 1 : 0;
        sweep_swap += o.swapped ? 1 : 0;
      }
    }
    const auto fin = s.final_layout();
    layout.assign(fin.begin(), fin.end());
    r.rotations += sweep_rot;
    r.swaps += sweep_swap;
    r.sweeps = sweep + 1;
    if (options.track_off)
      r.off_history.push_back(
          off_diagonal_measure(h, nullptr, options.cache_norms ? &cache : nullptr));
    if (sweep_rot == 0 && sweep_swap == 0) {
      r.converged = true;
      break;
    }
    if (guards.observe(static_cast<double>(sweep_rot + sweep_swap)) && options.cache_norms)
      cache.refresh(h);
  }
  r.kernel_stats =
      options.cache_norms ? cache.counters().snapshot() : plain_counters.snapshot();
  r.kernel_stats.isa_tier = static_cast<int>(kernel.tier());
  return finalize(std::move(h), std::move(v), a, options, guards, std::move(r));
}

SvdResult one_sided_jacobi_threaded(const Matrix& a, const Ordering& ordering,
                                    const JacobiOptions& options, unsigned threads) {
  TREESVD_REQUIRE(a.rows() >= a.cols() && a.cols() >= 2,
                  "one_sided_jacobi_threaded expects m >= n >= 2");
  require_finite_columns(a, "one_sided_jacobi_threaded");
  const ScopedIsaOverride isa_guard(options.force_isa);
  const PairKernel kernel(options);
  int padded_n = 0;
  Matrix h = pad_columns(a, ordering, &padded_n);
  SweepGuards guards(options);
  guards.eq = equilibrate(h, options.equilibrate);
  Matrix v = options.compute_v ? Matrix::identity(static_cast<std::size_t>(padded_n)) : Matrix();
  Matrix* vp = options.compute_v ? &v : nullptr;

  std::vector<int> layout(static_cast<std::size_t>(padded_n));
  for (int i = 0; i < padded_n; ++i) layout[static_cast<std::size_t>(i)] = i;

  ThreadPool pool(threads);
  NormCache cache;
  if (options.cache_norms) cache.refresh(h);
  KernelCounters plain_counters;

  SvdResult r;
  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    maybe_refresh(&cache, h, sweep, options);
    const Sweep s = ordering.sweep_from(layout, sweep);
    std::atomic<std::size_t> sweep_rot{0};
    std::atomic<std::size_t> sweep_swap{0};
    TREESVD_HB_SCOPED_FRAME(sweep_frame, [&] { return "sweep " + std::to_string(sweep); });
    for (int t = 0; t < s.steps(); ++t) {
      // The non-allocating view is shared read-only across the pool; tasks
      // are indexed by leaf, so the step's pair list is never copied.
      const StepPairs pairs = s.step_pairs(t);
      TREESVD_HB_SCOPED_FRAME(step_frame, [&] { return "step " + std::to_string(t); });
      pool.parallel_for(
          static_cast<std::size_t>(pairs.leaves()),
          [&](std::size_t k) {
            if (!pairs.active_at(static_cast<int>(k))) return;
            const IndexPair p = pairs.at(static_cast<int>(k));
            const int i = std::min(p.even, p.odd);
            const int j = std::max(p.even, p.odd);
            const PairOutcome o = options.cache_norms
                                      ? kernel.process_cached(h, vp, i, j, cache)
                                      : kernel.process(h, vp, i, j, &plain_counters);
            if (o.rotated) sweep_rot.fetch_add(1, std::memory_order_relaxed);
            if (o.swapped) sweep_swap.fetch_add(1, std::memory_order_relaxed);
          },
          options.grain);
    }
    const auto fin = s.final_layout();
    layout.assign(fin.begin(), fin.end());
    r.rotations += sweep_rot.load();
    r.swaps += sweep_swap.load();
    r.sweeps = sweep + 1;
    if (options.track_off)
      r.off_history.push_back(
          off_diagonal_measure(h, &pool, options.cache_norms ? &cache : nullptr));
    if (sweep_rot.load() == 0 && sweep_swap.load() == 0) {
      r.converged = true;
      break;
    }
    if (guards.observe(static_cast<double>(sweep_rot.load() + sweep_swap.load())) &&
        options.cache_norms)
      cache.refresh(h);
  }
  r.kernel_stats =
      options.cache_norms ? cache.counters().snapshot() : plain_counters.snapshot();
  r.kernel_stats.isa_tier = static_cast<int>(kernel.tier());
  return finalize(std::move(h), std::move(v), a, options, guards, std::move(r));
}

SvdResult cyclic_jacobi(const Matrix& a, const JacobiOptions& options) {
  TREESVD_REQUIRE(a.rows() >= a.cols() && a.cols() >= 2,
                  "cyclic_jacobi expects m >= n >= 2");
  require_finite_columns(a, "cyclic_jacobi");
  const ScopedIsaOverride isa_guard(options.force_isa);
  const PairKernel kernel(options);
  const int n = static_cast<int>(a.cols());
  Matrix h = a;
  SweepGuards guards(options);
  guards.eq = equilibrate(h, options.equilibrate);
  Matrix v = options.compute_v ? Matrix::identity(static_cast<std::size_t>(n)) : Matrix();
  Matrix* vp = options.compute_v ? &v : nullptr;

  NormCache cache;
  if (options.cache_norms) cache.refresh(h);
  KernelCounters plain_counters;

  SvdResult r;
  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    maybe_refresh(&cache, h, sweep, options);
    std::size_t sweep_rot = 0;
    std::size_t sweep_swap = 0;
    for (int i = 0; i < n - 1; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const PairOutcome o = options.cache_norms
                                  ? kernel.process_cached(h, vp, i, j, cache)
                                  : kernel.process(h, vp, i, j, &plain_counters);
        sweep_rot += o.rotated ? 1 : 0;
        sweep_swap += o.swapped ? 1 : 0;
      }
    }
    r.rotations += sweep_rot;
    r.swaps += sweep_swap;
    r.sweeps = sweep + 1;
    if (options.track_off)
      r.off_history.push_back(
          off_diagonal_measure(h, nullptr, options.cache_norms ? &cache : nullptr));
    if (sweep_rot == 0 && sweep_swap == 0) {
      r.converged = true;
      break;
    }
    if (guards.observe(static_cast<double>(sweep_rot + sweep_swap)) && options.cache_norms)
      cache.refresh(h);
  }
  r.kernel_stats =
      options.cache_norms ? cache.counters().snapshot() : plain_counters.snapshot();
  r.kernel_stats.isa_tier = static_cast<int>(kernel.tier());
  return finalize(std::move(h), std::move(v), a, options, guards, std::move(r));
}

}  // namespace treesvd
