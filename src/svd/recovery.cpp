#include "svd/recovery.hpp"

#include <stdexcept>

namespace treesvd {

void require_finite_columns(const Matrix& a, const std::string& engine) {
  for (std::size_t j = 0; j < a.cols(); ++j) {
    const auto col = a.col(j);
    for (std::size_t i = 0; i < a.rows(); ++i) {
      if (!std::isfinite(col[i])) {
        throw std::invalid_argument(engine + ": input column " + std::to_string(j) +
                                    " contains a non-finite value (" +
                                    (std::isnan(col[i]) ? "NaN" : "Inf") + " at row " +
                                    std::to_string(i) + ")");
      }
    }
  }
}

void require_finite_payload(std::span<const double> column, int column_label,
                            const std::string& engine) {
  for (std::size_t i = 0; i < column.size(); ++i) {
    if (!std::isfinite(column[i])) {
      throw std::invalid_argument(engine + ": column " + std::to_string(column_label) +
                                  " carries a non-finite value (" +
                                  (std::isnan(column[i]) ? "NaN" : "Inf") + " at row " +
                                  std::to_string(i) + ")");
    }
  }
}

}  // namespace treesvd
