#include "svd/recovery.hpp"

#include <stdexcept>

namespace treesvd {

int first_nonfinite_column(const Matrix& a) noexcept {
  for (std::size_t j = 0; j < a.cols(); ++j) {
    for (const double v : a.col(j)) {
      if (!std::isfinite(v)) return static_cast<int>(j);
    }
  }
  return -1;
}

void require_finite_columns(const Matrix& a, const std::string& engine) {
  const int bad = first_nonfinite_column(a);
  if (bad < 0) return;
  const auto j = static_cast<std::size_t>(bad);
  const auto col = a.col(j);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    if (!std::isfinite(col[i])) {
      throw std::invalid_argument(engine + ": input column " + std::to_string(j) +
                                  " contains a non-finite value (" +
                                  (std::isnan(col[i]) ? "NaN" : "Inf") + " at row " +
                                  std::to_string(i) + ")");
    }
  }
}

void require_finite_payload(std::span<const double> column, int column_label,
                            const std::string& engine) {
  for (std::size_t i = 0; i < column.size(); ++i) {
    if (!std::isfinite(column[i])) {
      throw std::invalid_argument(engine + ": column " + std::to_string(column_label) +
                                  " carries a non-finite value (" +
                                  (std::isnan(column[i]) ? "NaN" : "Inf") + " at row " +
                                  std::to_string(i) + ")");
    }
  }
}

}  // namespace treesvd
