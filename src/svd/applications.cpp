#include "svd/applications.hpp"

#include <algorithm>
#include <limits>

#include "linalg/blas1.hpp"
#include "util/require.hpp"

namespace treesvd {
namespace {

SvdResult decompose(const Matrix& a, const Ordering& ordering) {
  SvdResult r = one_sided_jacobi(a, ordering);
  TREESVD_REQUIRE(r.converged, "SVD did not converge within the sweep limit");
  return r;
}

std::size_t rank_at(const SvdResult& r, double rcond) {
  // sigma is sorted nonincreasing, so the rank is a prefix length.
  if (r.sigma.empty() || r.sigma.front() == 0.0) return 0;
  const double cut = rcond * r.sigma.front();
  std::size_t k = 0;
  while (k < r.sigma.size() && r.sigma[k] > cut) ++k;
  return k;
}

}  // namespace

std::vector<double> least_squares_solve(const Matrix& a, std::span<const double> b,
                                        const Ordering& ordering, double rcond) {
  TREESVD_REQUIRE(b.size() == a.rows(), "rhs length must equal the row count");
  const SvdResult r = decompose(a, ordering);
  const std::size_t rank = rank_at(r, rcond);
  std::vector<double> x(a.cols(), 0.0);
  for (std::size_t j = 0; j < rank; ++j) {
    const double coef = dot(r.u.col(j), b) / r.sigma[j];
    axpy(coef, r.v.col(j), x);
  }
  return x;
}

Matrix pseudo_inverse(const Matrix& a, const Ordering& ordering, double rcond) {
  const SvdResult r = decompose(a, ordering);
  const std::size_t rank = rank_at(r, rcond);
  // A+ = V diag(1/sigma) U^T, truncated.
  Matrix pinv(a.cols(), a.rows());
  for (std::size_t j = 0; j < rank; ++j) {
    const auto vj = r.v.col(j);
    const auto uj = r.u.col(j);
    const double inv = 1.0 / r.sigma[j];
    for (std::size_t col = 0; col < a.rows(); ++col) {
      const double w = inv * uj[col];
      const auto dst = pinv.col(col);
      for (std::size_t row = 0; row < a.cols(); ++row) dst[row] += vj[row] * w;
    }
  }
  return pinv;
}

Matrix low_rank_approximation(const Matrix& a, std::size_t k, const Ordering& ordering) {
  const SvdResult r = decompose(a, ordering);
  k = std::min(k, rank_at(r, 1e-15));
  Matrix ak(a.rows(), a.cols());
  for (std::size_t j = 0; j < k; ++j) {
    const auto uj = r.u.col(j);
    const auto vj = r.v.col(j);
    for (std::size_t col = 0; col < a.cols(); ++col) {
      const double w = r.sigma[j] * vj[col];
      const auto dst = ak.col(col);
      for (std::size_t row = 0; row < a.rows(); ++row) dst[row] += uj[row] * w;
    }
  }
  return ak;
}

double condition_number(const Matrix& a, const Ordering& ordering, double rcond) {
  const SvdResult r = decompose(a, ordering);
  const std::size_t rank = rank_at(r, rcond);
  if (rank < r.sigma.size()) return std::numeric_limits<double>::infinity();
  return r.sigma.front() / r.sigma.back();
}

std::size_t numerical_rank(const Matrix& a, const Ordering& ordering, double rcond) {
  return rank_at(decompose(a, ordering), rcond);
}

Matrix nullspace_basis(const Matrix& a, const Ordering& ordering, double rcond) {
  const SvdResult r = decompose(a, ordering);
  const std::size_t rank = rank_at(r, rcond);
  const std::size_t dim = a.cols() - rank;
  Matrix basis(a.cols(), dim);
  for (std::size_t j = 0; j < dim; ++j) {
    const auto src = r.v.col(rank + j);
    const auto dst = basis.col(j);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return basis;
}

}  // namespace treesvd
