#pragma once
// Many-SVD serving front-end over the batched engine (svd/batch.hpp).
//
// Shape: clients submit independent same-shape problems; `shards` worker
// threads each own one BatchedSvd instance (satisfying its single-caller
// rule) and one bounded MPSC submission queue. A shard blocks for the first
// pending request, then drains its queue up to the engine's lane width so a
// busy server fills whole SIMD shards and an idle one still serves single
// requests at one-solve latency. Because the batched engine reproduces the
// sequential driver bit-for-bit per lane, a problem's result does not depend
// on which requests happened to share its batch — racy arrival order never
// changes payloads, only latency.
//
// Backpressure: queues are bounded rings; submit() blocks while the target
// shard's queue is full, so a slow server pushes back on producers instead
// of growing without bound. Arena slabs (the engine shards) are preallocated
// at start(); the steady state allocates nothing on the serving path.
//
// Telemetry: per-shard log2-bucket latency histograms (submit -> completion,
// steady clock) merged on demand, plus submission/completion/batch-fill
// counters — everything the serve tool dumps as JSON.

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/ordering.hpp"
#include "linalg/matrix.hpp"
#include "svd/batch.hpp"
#include "svd/jacobi.hpp"

namespace treesvd {

/// Fixed-capacity multi-producer single-consumer ring with blocking
/// backpressure. Close semantics: push fails once closed; pop_batch drains
/// what remains and then reports exhaustion.
template <typename T>
class BoundedMpscQueue {
 public:
  explicit BoundedMpscQueue(std::size_t capacity)
      : buf_(capacity == 0 ? 1 : capacity), cap_(capacity == 0 ? 1 : capacity) {}

  /// Blocks while full. Returns false (item dropped) when the queue is
  /// closed before space appears.
  bool push(T v) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_space_.wait(lock, [&] { return count_ < cap_ || closed_; });
    if (closed_) return false;
    buf_[(head_ + count_) % cap_] = std::move(v);
    ++count_;
    cv_items_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T v) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || count_ >= cap_) return false;
    buf_[(head_ + count_) % cap_] = std::move(v);
    ++count_;
    cv_items_.notify_one();
    return true;
  }

  /// Appends up to max_items pending entries to `out`, blocking for at least
  /// one unless the queue is closed and empty. Returns the number taken
  /// (0 only on closed-and-drained).
  std::size_t pop_batch(std::vector<T>& out, std::size_t max_items) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_items_.wait(lock, [&] { return count_ > 0 || closed_; });
    std::size_t taken = 0;
    while (taken < max_items && count_ > 0) {
      out.push_back(std::move(buf_[head_]));
      head_ = (head_ + 1) % cap_;
      --count_;
      ++taken;
    }
    if (taken > 0) cv_space_.notify_all();
    return taken;
  }

  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    cv_items_.notify_all();
    cv_space_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

  std::size_t capacity() const noexcept { return cap_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_items_;
  std::condition_variable cv_space_;
  std::vector<T> buf_;
  std::size_t cap_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  bool closed_ = false;
};

/// Log2-bucketed latency histogram: bucket k counts samples with
/// 2^(k-1) <= ns < 2^k (bucket 0 holds ns == 0). Not thread-safe — each
/// shard owns one; merge() combines them for reporting.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t ns) noexcept;
  void merge(const LatencyHistogram& other) noexcept;

  std::uint64_t count() const noexcept { return total_; }
  std::uint64_t max_ns() const noexcept { return max_ns_; }

  /// Upper bound (ns) of the bucket containing the q-quantile sample
  /// (q in [0, 1]); 0 when empty. Bucket resolution: a factor of 2.
  std::uint64_t quantile_ns(double q) const noexcept;
  std::uint64_t p50_ns() const noexcept { return quantile_ns(0.50); }
  std::uint64_t p99_ns() const noexcept { return quantile_ns(0.99); }

  const std::array<std::uint64_t, kBuckets>& buckets() const noexcept { return buckets_; }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t total_ = 0;
  std::uint64_t max_ns_ = 0;
};

struct ServeOptions {
  std::size_t rows = 0;
  std::size_t cols = 0;
  /// Engine configuration per shard; lane_width doubles as the largest batch
  /// one solve call packs.
  BatchedSvdOptions batch;
  /// Worker shards (one thread, one queue, one BatchedSvd each).
  std::size_t shards = 1;
  /// Per-shard submission queue bound (backpressure threshold).
  std::size_t queue_capacity = 256;
  /// Threads of the per-shard BLAS-3 fallback pool, registered via
  /// ScopedGemmFallbackPool for the shard's lifetime: finalisation-path GEMMs
  /// (quality diagnostics on non-converged lanes) that lose the shared
  /// gemm_pool() gate under concurrent shards run here instead of degrading
  /// to serial. 0 disables the registration.
  std::size_t gemm_fallback_threads = 1;
};

/// Aggregated server counters (a consistent snapshot under the stats lock).
struct ServeStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t batches = 0;       ///< engine solve calls issued
  std::uint64_t batched_lanes = 0; ///< sum of batch fills (completed == this)
  LatencyHistogram latency;        ///< submit -> result-written, per problem
};

/// The serving front-end. Lifecycle: construct -> start() -> submit()s ->
/// stop() (drains queues, joins shards). Results are written through the
/// caller's pointers; wait_idle() blocks until every accepted submission has
/// completed, which is the cheap way for a client to synchronise without
/// per-request signalling.
class SvdServer {
 public:
  /// The ordering shapes each shard's engine schedule; it is not retained.
  SvdServer(const Ordering& ordering, const ServeOptions& options);
  ~SvdServer();

  SvdServer(const SvdServer&) = delete;
  SvdServer& operator=(const SvdServer&) = delete;

  const ServeOptions& options() const noexcept { return options_; }

  void start();

  /// Closes the queues, drains every pending request, joins the shards.
  /// Idempotent.
  void stop();

  /// Enqueues one problem (must be rows x cols; checked by the engine at
  /// solve time). *out is written by the owning shard before the request
  /// counts as completed. Blocks while the target shard's queue is full;
  /// returns false when the server is stopped.
  bool submit(const Matrix& a, SvdResult* out);

  /// Blocks until completed == submitted (all accepted work finished).
  void wait_idle();

  ServeStats stats() const;

 private:
  struct Request {
    const Matrix* a = nullptr;
    SvdResult* out = nullptr;
    std::uint64_t enqueue_ns = 0;
  };
  struct Shard;

  void shard_loop(std::size_t idx);

  ServeOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> next_shard_{0};
  std::atomic<std::uint64_t> submitted_{0};
  bool started_ = false;
  bool stopped_ = false;

  mutable std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::uint64_t completed_total_ = 0;
};

}  // namespace treesvd
