#pragma once
// Many-SVD serving front-end over the batched engine (svd/batch.hpp), with a
// fault story: deadlines, load shedding, failure isolation, and shard
// supervision.
//
// Shape: clients submit independent same-shape problems; `shards` worker
// threads each own one BatchedSvd instance (satisfying its single-caller
// rule) and one bounded MPSC submission queue. A shard blocks for the first
// pending request, then drains its queue up to the engine's lane width so a
// busy server fills whole SIMD shards and an idle one still serves single
// requests at one-solve latency. Because the batched engine reproduces the
// sequential driver bit-for-bit per lane, a problem's result does not depend
// on which requests happened to share its batch — racy arrival order never
// changes payloads, only latency.
//
// Admission: submit() picks the least-loaded healthy shard (shortest
// queue + in-flight at admission; quarantined shards are skipped). Under
// SubmitPolicy::kBlock a full queue blocks the producer (backpressure);
// kReject bounces immediately; kShedExpired first evicts queued requests
// whose deadline already passed (completing them as kDeadlineExpired) and
// retries once. Deadlines are re-checked at batch formation, so an expired
// request never burns a SIMD lane. Total backlog crossing the high watermark
// drops ready() until it falls back under the low one.
//
// Failure isolation: a batch whose solve throws (poison input, injected
// fault) is re-run lane by lane through solve_single_into — bitwise equal to
// the batch path — so only the poison request completes as kFailed (with the
// captured error in diagnostics.error) and every batchmate keeps its exact
// payload. A shard thread that dies is detected by the supervisor, which
// joins it, rebuilds a fresh BatchedSvd, requeues the in-flight requests and
// restarts the loop; a shard that keeps dying is quarantined (its work moves
// to surviving shards). Stuck shards (heartbeat flat while work is pending)
// are detected and counted; routing starves them naturally.
//
// Every accepted request reaches exactly one terminal state — a solved
// payload, kFailed, or kDeadlineExpired — including across stop(), which
// drains whatever is still queued. The seeded ServeFaultPlan (splitmix64
// over request id, the mp/fault idiom) makes all of the above testable
// bit-reproducibly; treesvd_serve --chaos is the gate.
//
// Telemetry: per-shard log2-bucket latency histograms (submit -> completion,
// steady clock) and batch counters, snapshotted under each shard's stats
// mutex; global relaxed-atomic counters for shed/expired/failed/restart
// accounting — everything the serve tool dumps as JSON. The steady-state
// serving path still allocates nothing.

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/ordering.hpp"
#include "linalg/matrix.hpp"
#include "svd/batch.hpp"
#include "svd/jacobi.hpp"

namespace treesvd {

/// Fixed-capacity multi-producer single-consumer ring with blocking
/// backpressure. Close semantics: push fails once closed; pop_batch drains
/// what remains and then reports exhaustion.
template <typename T>
class BoundedMpscQueue {
 public:
  explicit BoundedMpscQueue(std::size_t capacity)
      : buf_(capacity == 0 ? 1 : capacity), cap_(capacity == 0 ? 1 : capacity) {}

  /// Blocks while full. Returns false (item dropped) when the queue is
  /// closed before space appears.
  bool push(T v) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_space_.wait(lock, [&] { return count_ < cap_ || closed_; });
    if (closed_) return false;
    buf_[(head_ + count_) % cap_] = std::move(v);
    ++count_;
    cv_items_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T v) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || count_ >= cap_) return false;
    buf_[(head_ + count_) % cap_] = std::move(v);
    ++count_;
    cv_items_.notify_one();
    return true;
  }

  /// Appends up to max_items pending entries to `out`, blocking for at least
  /// one unless the queue is closed and empty. Returns the number taken
  /// (0 only on closed-and-drained).
  std::size_t pop_batch(std::vector<T>& out, std::size_t max_items) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_items_.wait(lock, [&] { return count_ > 0 || closed_; });
    std::size_t taken = 0;
    while (taken < max_items && count_ > 0) {
      out.push_back(std::move(buf_[head_]));
      head_ = (head_ + 1) % cap_;
      --count_;
      ++taken;
    }
    if (taken > 0) cv_space_.notify_all();
    return taken;
  }

  /// Extracts every queued entry matching `pred` into `removed`, preserving
  /// FIFO order among the survivors. The shed path: a producer evicts
  /// deadline-expired entries to make room instead of blocking behind them.
  /// Returns the number removed (space waiters are woken when > 0).
  template <typename Pred>
  std::size_t remove_if(Pred pred, std::vector<T>& removed) {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t kept = 0;
    const std::size_t n = count_;
    for (std::size_t k = 0; k < n; ++k) {
      T& slot = buf_[(head_ + k) % cap_];
      if (pred(static_cast<const T&>(slot))) {
        removed.push_back(std::move(slot));
      } else {
        if (kept != k) buf_[(head_ + kept) % cap_] = std::move(slot);
        ++kept;
      }
    }
    count_ = kept;
    const std::size_t gone = n - kept;
    if (gone > 0) cv_space_.notify_all();
    return gone;
  }

  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    cv_items_.notify_all();
    cv_space_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

  std::size_t capacity() const noexcept { return cap_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_items_;
  std::condition_variable cv_space_;
  std::vector<T> buf_;
  std::size_t cap_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  bool closed_ = false;
};

/// Log2-bucketed latency histogram: bucket k counts samples with
/// 2^(k-1) <= ns < 2^k (bucket 0 holds ns == 0). Not thread-safe — each
/// shard owns one behind its stats mutex; merge() combines them for
/// reporting.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t ns) noexcept;
  void merge(const LatencyHistogram& other) noexcept;

  std::uint64_t count() const noexcept { return total_; }
  std::uint64_t max_ns() const noexcept { return max_ns_; }

  /// Upper bound (ns) of the bucket containing the q-quantile sample
  /// (q in [0, 1]); 0 when empty. Bucket resolution: a factor of 2.
  std::uint64_t quantile_ns(double q) const noexcept;
  std::uint64_t p50_ns() const noexcept { return quantile_ns(0.50); }
  std::uint64_t p99_ns() const noexcept { return quantile_ns(0.99); }

  const std::array<std::uint64_t, kBuckets>& buckets() const noexcept { return buckets_; }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t total_ = 0;
  std::uint64_t max_ns_ = 0;
};

/// What submit() does when the chosen shard's queue is full.
enum class SubmitPolicy {
  kBlock,        ///< wait for space (producer backpressure; the default)
  kReject,       ///< fail the submission immediately (caller retries/sheds)
  kShedExpired,  ///< evict deadline-expired queued requests to make room,
                 ///< then retry once; reject if still full
};

/// Per-request admission options.
struct SubmitOptions {
  /// Relative deadline in nanoseconds from admission (0 = none). Checked at
  /// admission (under kShedExpired eviction) and again at batch formation:
  /// an expired request completes as SvdStatus::kDeadlineExpired without
  /// burning a SIMD lane.
  std::uint64_t deadline_ns = 0;
  SubmitPolicy policy = SubmitPolicy::kBlock;
};

/// Why a submission did not enter a queue.
enum class SubmitOutcome {
  kAccepted,   ///< queued; the request will reach exactly one terminal state
  kQueueFull,  ///< rejected under kReject/kShedExpired with no space
  kStopped,    ///< server not started, stopping, or every shard quarantined
};

/// Seeded, fully deterministic fault schedule for a serving run — the
/// mp::FaultPlan idiom lifted to requests: every per-request decision is a
/// pure function of the request id mixed with the plan seed (splitmix64), so
/// two runs of the same trace inject exactly the same faults regardless of
/// thread interleaving and every counter replays bit-for-bit.
///
/// The request-fault bands partition [0, 1): at most one fault per request.
/// kPoison and kExpire are *client-side* decisions (the chaos driver builds
/// a NaN input / submits an unmeetable deadline — the server just reacts);
/// kThrow and the kill/stall faults are server-side injections.
struct ServeFaultPlan {
  bool enabled = false;     ///< master switch; a default plan injects nothing
  std::uint64_t seed = 1;   ///< mixes into every per-request decision

  double poison_prob = 0.0;  ///< request input carries a NaN (driver-built)
  double throw_prob = 0.0;   ///< request's solve throws inside the shard
  double expire_prob = 0.0;  ///< request admitted with an already-expired
                             ///< deadline (driver-built)

  /// Request whose batch kills its shard thread just before the solve
  /// (-1 = never). The kill re-fires each time the request is requeued and
  /// re-popped, up to kill_repeat shard deaths, then the request solves
  /// normally — so one knob exercises death, restart, requeue and (when
  /// kill_repeat exceeds the supervisor's quarantine budget) quarantine.
  long long kill_request = -1;
  std::size_t kill_repeat = 1;

  /// Shard stalled once at loop entry (-1 = never): it stops heartbeating
  /// and consuming until the server-wide submission count reaches
  /// stall_until_submitted (deterministic, load-independent release), with
  /// stall_micros as a wall-clock safety bound (0 = default bound).
  int stall_shard = -1;
  std::uint64_t stall_until_submitted = 0;
  std::uint64_t stall_micros = 0;

  /// Fault class for one request id (the partition decision).
  enum class RequestFault { kNone, kPoison, kThrow, kExpire };
  RequestFault request_fault(std::uint64_t id) const noexcept;
  bool should_throw(std::uint64_t id) const noexcept {
    return request_fault(id) == RequestFault::kThrow;
  }
};

/// Supervisor knobs: detection cadence and the restart/quarantine budget.
struct SupervisorOptions {
  /// Run the supervisor thread. Off, a dead shard's in-flight and queued
  /// requests are still completed — but only at stop()-time drain.
  bool enabled = true;
  /// Health-check cadence.
  std::uint64_t poll_micros = 500;
  /// A shard whose heartbeat stays flat this long while it has pending or
  /// in-flight work is counted stuck (detection only; routing already
  /// starves it because its load never drains).
  std::uint64_t stuck_after_micros = 50000;
  /// Shard deaths tolerated before quarantine: death N <= this budget gets a
  /// fresh-engine restart; the next death retires the shard for good.
  std::size_t quarantine_after = 2;
};

struct ServeOptions {
  std::size_t rows = 0;
  std::size_t cols = 0;
  /// Engine configuration per shard; lane_width doubles as the largest batch
  /// one solve call packs.
  BatchedSvdOptions batch;
  /// Worker shards (one thread, one queue, one BatchedSvd each).
  std::size_t shards = 1;
  /// Per-shard submission queue bound (backpressure threshold).
  std::size_t queue_capacity = 256;
  /// Threads of the per-shard BLAS-3 fallback pool, registered via
  /// ScopedGemmFallbackPool for the shard's lifetime: finalisation-path GEMMs
  /// (quality diagnostics on non-converged lanes) that lose the shared
  /// gemm_pool() gate under concurrent shards run here instead of degrading
  /// to serial. 0 disables the registration.
  std::size_t gemm_fallback_threads = 1;
  /// Readiness watermarks on total backlog (accepted - completed): crossing
  /// high drops ready(); falling to low restores it. 0 = auto (high:
  /// shards * queue_capacity, low: high / 2).
  std::size_t high_watermark = 0;
  std::size_t low_watermark = 0;
  SupervisorOptions supervisor;
  /// Deterministic chaos schedule (off by default; treesvd_serve --chaos).
  ServeFaultPlan faults;
};

/// Per-shard health/telemetry snapshot (ServeStats::shards).
struct ShardSnapshot {
  std::size_t queued = 0;        ///< submission queue depth
  std::size_t inflight = 0;      ///< requests popped but not yet terminal
  std::uint64_t heartbeat = 0;   ///< loop-progress counter
  std::uint64_t batches = 0;     ///< engine solve calls issued by this shard
  std::uint64_t lanes = 0;       ///< lanes solved by this shard
  std::uint64_t deaths = 0;      ///< times this shard's thread died
  bool dead = false;             ///< thread exited, restart pending
  bool quarantined = false;      ///< retired; receives no new work
};

/// Aggregated server counters (a consistent snapshot under the per-shard
/// stats locks). Terminal accounting: completed == solved + expired + failed,
/// and latency.count() == completed.
struct ServeStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t batches = 0;       ///< engine solve calls issued
  std::uint64_t batched_lanes = 0; ///< sum of batch fills (== solved)
  LatencyHistogram latency;        ///< submit -> terminal, per problem

  std::uint64_t solved = 0;    ///< completed with a real factorization
  std::uint64_t expired = 0;   ///< completed kDeadlineExpired
  std::uint64_t failed = 0;    ///< completed kFailed (poison/injected)
  std::uint64_t shed = 0;      ///< expired requests evicted at admission
                               ///< (subset of `expired`)
  std::uint64_t rejected = 0;  ///< submissions bounced kQueueFull
  std::uint64_t requeued = 0;  ///< in-flight requests moved after a death
  std::uint64_t kills = 0;         ///< fault-plan shard kills fired
  std::uint64_t restarts = 0;      ///< dead shards restarted (fresh engine)
  std::uint64_t quarantines = 0;   ///< shards retired as repeat offenders
  std::uint64_t stalls_injected = 0;  ///< fault-plan shard stalls fired
  std::uint64_t stuck_detected = 0;   ///< supervisor stuck-shard detections

  bool ready = false;          ///< backlog below the watermarks and serving
  std::vector<ShardSnapshot> shards;
};

/// The serving front-end. Lifecycle: construct -> start() -> submit()s ->
/// stop() (drains queues, joins shards). Results are written through the
/// caller's pointers; wait_idle() blocks until every accepted submission has
/// completed, which is the cheap way for a client to synchronise without
/// per-request signalling.
class SvdServer {
 public:
  /// The ordering shapes each shard's engine schedule; its name is retained
  /// (core/registry.hpp) so the supervisor can rebuild a dead shard's engine.
  SvdServer(const Ordering& ordering, const ServeOptions& options);
  ~SvdServer();

  SvdServer(const SvdServer&) = delete;
  SvdServer& operator=(const SvdServer&) = delete;

  const ServeOptions& options() const noexcept { return options_; }

  void start();

  /// Closes the queues, drains every pending request (each reaches a
  /// terminal state — nothing is lost), joins the shards. Idempotent.
  void stop();

  /// Enqueues one problem (must be rows x cols; checked by the engine at
  /// solve time). *out is written by the owning shard before the request
  /// counts as completed. The shard is the least-loaded healthy one at
  /// admission; `opt.policy` decides what a full queue does.
  SubmitOutcome submit(const Matrix& a, SvdResult* out, const SubmitOptions& opt);

  /// Backward-compatible blocking submit (no deadline): true iff accepted.
  bool submit(const Matrix& a, SvdResult* out) {
    return submit(a, out, SubmitOptions{}) == SubmitOutcome::kAccepted;
  }

  /// Non-blocking fast path: kReject admission with an optional deadline.
  bool try_submit(const Matrix& a, SvdResult* out, std::uint64_t deadline_ns = 0) {
    return submit(a, out, SubmitOptions{deadline_ns, SubmitPolicy::kReject}) ==
           SubmitOutcome::kAccepted;
  }

  /// Load-shedding readiness: false while the backlog sits above the
  /// watermarks (or the server is stopping). Advisory — submissions are
  /// still admitted by policy.
  bool ready() const noexcept;

  /// Blocks until completed == submitted (all accepted work terminal).
  void wait_idle();

  ServeStats stats() const;

 private:
  struct Request {
    const Matrix* a = nullptr;
    SvdResult* out = nullptr;
    std::uint64_t enqueue_ns = 0;
    std::uint64_t deadline_ns = 0;  ///< absolute steady-clock ns; 0 = none
    std::uint64_t id = 0;
  };
  struct Shard;

  void shard_loop(std::size_t idx);
  void supervisor_loop();
  void supervise_shard(std::size_t idx);
  void restart_or_quarantine(std::size_t idx);
  void solve_batch(Shard& sh);
  void isolate_batch(Shard& sh);
  void maybe_stall(Shard& sh, std::size_t idx);
  bool kill_applies(const Shard& sh);
  int pick_shard() const noexcept;
  void shed_expired(Shard& sh, std::uint64_t now);
  void finish_solo(Shard& sh, const Request& r);
  void requeue_or_fail(Shard& home, std::vector<Request>& reqs, bool home_alive);

  void complete_solved(Shard& sh, const Request& r, std::uint64_t done_ns,
                       std::size_t batch_lanes);
  void complete_expired(Shard& sh, const Request& r, bool via_shed);
  void complete_failed(Shard& sh, const Request& r, const std::string& why);
  void bump_completed(std::size_t k);

  ServeOptions options_;
  std::string ordering_name_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> threads_;
  std::thread supervisor_;
  bool started_ = false;
  bool stopped_ = false;

  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> solved_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> requeued_{0};
  std::atomic<std::uint64_t> kills_{0};
  std::atomic<std::uint64_t> kill_attempts_{0};  ///< kill-budget dispenser
  std::atomic<std::uint64_t> restarts_{0};
  std::atomic<std::uint64_t> quarantines_{0};
  std::atomic<std::uint64_t> stalls_injected_{0};
  std::atomic<std::uint64_t> stuck_detected_{0};
  std::atomic<bool> overloaded_{false};
  std::atomic<bool> stopping_{false};
  std::size_t high_watermark_ = 0;
  std::size_t low_watermark_ = 0;

  mutable std::mutex idle_mu_;
  std::condition_variable idle_cv_;

  std::mutex sup_mu_;
  std::condition_variable sup_cv_;
};

}  // namespace treesvd
