#include "svd/norm_cache.hpp"

#include "linalg/blas1.hpp"

namespace treesvd {

void NormCache::refresh(const Matrix& a) {
  sq_.resize(a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j) sq_[j] = sumsq_robust(a.col(j));
  counters_.add_norm_refresh(a.cols());
}

void NormCache::refresh_column(const Matrix& a, std::size_t j) {
  sq_[j] = sumsq_robust(a.col(j));
  counters_.add_norm_refresh();
}

}  // namespace treesvd
