#pragma once
// Batched many-SVD engine: B same-shape problems, one SoA arena, shared
// sweep schedule, per-lane retirement.
//
// The tree orderings of the paper schedule one decomposition at a time; the
// production shape this layer targets is the opposite — huge numbers of
// small/medium *independent* SVDs. Following the batched/vectorized Jacobi
// literature (Novaković's AVX-512 batched order-2 SVD; the vectorized
// thread-parallel Jacobi method), the win is to vectorize *across* problems:
// lane b of every SIMD vector belongs to problem b, so the branch-heavy
// per-pair control flow (thresholds, drift guards, rotation decisions) is
// paid once per lane group instead of once per problem, and the data passes
// run at full SIMD width regardless of how short the columns are.
//
// Layout. Problems are grouped into shards of `lane_width` lanes. A shard's
// working matrix is a structure-of-arrays arena: column j is a lane block of
// m rows × lane_width lanes, element (i, j) of problem b at
// h[(j*m + i)*lane_width + b]. V is stored the same way. The batched BLAS-1
// kernels (linalg/blas1.hpp) reduce and rotate whole lane blocks.
//
// Contracts.
//  * Bitwise sequential equivalence: result b equals
//    one_sided_jacobi(inputs[b], ordering, options.jacobi) bit-for-bit —
//    sigma, U, V, sweep/rotation/swap counts, KernelStats, status and
//    diagnostics. The batched kernels replicate the scalar kernels'
//    accumulation orders per lane, rare paths (overflow retries, drift-guard
//    re-reductions) gather the lane and run the exact scalar routine, and
//    padding/equilibration/finalisation share one definition with the
//    sequential driver (svd/driver_detail.hpp).
//  * Shared schedule: the sweep schedule is data-independent (orderings are
//    position procedures), so it is precomputed once at construction and
//    shared read-only by every lane, shard and solve — zero schedule work
//    and zero allocation in the iteration.
//  * Independent retirement: each lane carries its own active flag, guards
//    and counters; a converged lane stops rotating, stops counting and stops
//    observing its guards while the rest of the shard keeps iterating. One
//    slow problem never stalls its batchmates' *results* (they are fixed at
//    retirement), only the wall-clock of its own shard.
//  * Zero steady-state allocation: after reserve() (or the first solve at a
//    given batch size), the pack → iterate → retire cycle allocates nothing;
//    only materialising SvdResult payloads (U, sigma, V are caller-owned
//    value types) allocates.
//
// Threading: shards are independent; solve() runs them over the supplied
// ThreadPool (one task per shard), or serially when pool is null. A
// BatchedSvd instance is single-caller — concurrent solve() calls on one
// instance race; create one instance per serving shard instead
// (svd/serve.hpp does exactly that).

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/ordering.hpp"
#include "linalg/matrix.hpp"
#include "svd/jacobi.hpp"

namespace treesvd {

class ThreadPool;

struct BatchedSvdOptions {
  /// Per-problem iteration options; identical semantics to the sequential
  /// driver. track_off is not supported (it is a per-sweep O(n^2 m)
  /// diagnostic pass that defeats the point of batching).
  JacobiOptions jacobi;
  /// Problems per SIMD shard: 4, 8 or 16 (multiples of blas1's kBatchLanes
  /// with a vectorized kernel instantiation).
  std::size_t lane_width = 8;
  /// When false, every lane-block kernel takes the scalar reference path
  /// (gather + exact scalar kernel). Results are bitwise identical either
  /// way; the switch exists for cross-checks and triage.
  bool use_simd = true;
};

class BatchedSvd {
 public:
  /// Configures the engine for rows x cols problems under `ordering`. The
  /// shared sweep schedule is precomputed here; the ordering is not retained.
  BatchedSvd(std::size_t rows, std::size_t cols, const Ordering& ordering,
             BatchedSvdOptions options = {});
  ~BatchedSvd();

  BatchedSvd(const BatchedSvd&) = delete;
  BatchedSvd& operator=(const BatchedSvd&) = delete;

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t lane_width() const noexcept { return options_.lane_width; }
  const BatchedSvdOptions& options() const noexcept { return options_; }
  const std::string& ordering_name() const noexcept { return ordering_name_; }

  /// Number of problems the preallocated shard arenas can hold.
  std::size_t capacity() const noexcept;

  /// Grows the shard arenas to hold `batch` problems, so subsequent solves
  /// up to that size allocate nothing beyond the result payloads.
  void reserve(std::size_t batch);

  /// Solves every input (each rows x cols). results[b] is bitwise equal to
  /// one_sided_jacobi(inputs[b], ordering, options.jacobi). Shards run on
  /// `pool` when non-null (one task per shard), serially otherwise.
  std::vector<SvdResult> solve(std::span<const Matrix> inputs, ThreadPool* pool = nullptr);

  /// Pointer form for callers that own the result slots (the serving layer):
  /// *results[b] is overwritten. inputs and results must have equal size.
  void solve_into(std::span<const Matrix* const> inputs, std::span<SvdResult* const> results,
                  ThreadPool* pool = nullptr);

  /// One-lane convenience over solve_into: a batch of exactly one problem.
  /// By the bitwise-sequential contract this equals
  /// one_sided_jacobi(a, ordering, options.jacobi) bit-for-bit — the serving
  /// layer's failure-isolation path re-runs a suspect batch lane by lane
  /// through this entry so healthy batchmates keep their exact payloads.
  void solve_single_into(const Matrix& a, SvdResult* result);

 private:
  struct Shard;

  std::unique_ptr<Shard> make_shard() const;
  void pack_shard(Shard& shard, std::span<const Matrix* const> inputs);
  void iterate_shard(Shard& shard);
  void finalize_shard(Shard& shard, std::span<const Matrix* const> inputs,
                      std::span<SvdResult* const> results);
  void process_pair_cached(Shard& shard, int i, int j);
  void process_pair_plain(Shard& shard, int i, int j);
  void scheduled_cache_refresh(Shard& shard);
  void lane_cache_refresh(Shard& shard, std::size_t lane);

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  int padded_n_ = 0;
  BatchedSvdOptions options_;
  std::string ordering_name_;
  /// Precomputed shared schedule: schedule_[k] is sweep k's pair sequence
  /// (with the layout evolution already folded in).
  std::vector<Sweep> schedule_;
  /// The same schedule flattened to (min, max) column pairs, one vector per
  /// sweep. Iterating this instead of the Sweep/StepPairs accessors lets the
  /// hot loop look one pair ahead and prefetch its columns.
  std::vector<std::vector<std::pair<int, int>>> flat_pairs_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace treesvd
