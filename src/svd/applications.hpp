#pragma once
// SVD applications: the standard consumers of a (sorted) singular value
// decomposition, packaged as library calls. Everything here takes an
// Ordering so downstream code exercises the same parallel engines.

#include <cstddef>
#include <span>
#include <vector>

#include "core/ordering.hpp"
#include "linalg/matrix.hpp"
#include "svd/jacobi.hpp"

namespace treesvd {

/// Minimum-norm least-squares solution of min ||A x - b||_2 via the truncated
/// pseudoinverse: singular values below rcond * sigma_max are treated as zero
/// (the paper's Section-1 motivation for sorted singular values). b.size()
/// must equal a.rows().
std::vector<double> least_squares_solve(const Matrix& a, std::span<const double> b,
                                        const Ordering& ordering, double rcond = 1e-12);

/// Moore-Penrose pseudoinverse A+ (n x m) with the same truncation rule.
Matrix pseudo_inverse(const Matrix& a, const Ordering& ordering, double rcond = 1e-12);

/// Best rank-k approximation in the Frobenius norm (Eckart-Young):
/// A_k = sum_{i<k} sigma_i u_i v_i^T. k is clamped to the numerical rank.
Matrix low_rank_approximation(const Matrix& a, std::size_t k, const Ordering& ordering);

/// sigma_max / sigma_min (infinity when numerically rank-deficient at rcond).
double condition_number(const Matrix& a, const Ordering& ordering, double rcond = 1e-12);

/// Numerical rank at the given relative threshold.
std::size_t numerical_rank(const Matrix& a, const Ordering& ordering, double rcond = 1e-12);

/// Orthonormal basis of the (right) null space: the columns of V whose
/// singular values fall below rcond * sigma_max. n x (n - rank).
Matrix nullspace_basis(const Matrix& a, const Ordering& ordering, double rcond = 1e-12);

}  // namespace treesvd
