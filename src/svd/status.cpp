#include "svd/status.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/blas1.hpp"
#include "svd/jacobi.hpp"

namespace treesvd {

const char* to_string(SvdStatus status) noexcept {
  switch (status) {
    case SvdStatus::kConverged: return "converged";
    case SvdStatus::kMaxSweeps: return "max-sweeps";
    case SvdStatus::kStalled: return "stalled";
    case SvdStatus::kDeadlineExpired: return "deadline-expired";
    case SvdStatus::kFailed: return "failed";
  }
  return "unknown";
}

ScaleStats scan_scale(const Matrix& a) noexcept {
  ScaleStats s;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    for (const double v : a.col(j)) {
      const double mag = std::fabs(v);
      if (mag == 0.0) {
        ++s.zero_entries;
        continue;
      }
      if (mag > s.max_abs) s.max_abs = mag;
      if (s.min_abs_nonzero == 0.0 || mag < s.min_abs_nonzero) s.min_abs_nonzero = mag;
    }
  }
  if (s.max_abs > 0.0) {
    s.max_exponent = std::ilogb(s.max_abs);
    s.min_exponent = std::ilogb(s.min_abs_nonzero);
  }
  return s;
}

void assess_quality(const Matrix& a, SvdResult& result, int exponent, double rank_tol) {
  SvdDiagnostics& d = result.diagnostics;

  // Evaluate the residual at the equilibrated scale: both A and sigma are
  // multiplied by the same exact power of two, which keeps the Frobenius
  // sums finite for inputs whose squared entries would overflow, and leaves
  // the *ratio* unchanged.
  const std::size_t n = result.sigma.size();
  if (!result.v.empty() && result.u.cols() == n && result.v.cols() == n) {
    Matrix a_s = a;
    for (std::size_t j = 0; j < a_s.cols(); ++j)
      for (double& v : a_s.col(j)) v = std::ldexp(v, exponent);
    std::vector<double> sigma_s(n);
    for (std::size_t k = 0; k < n; ++k) sigma_s[k] = std::ldexp(result.sigma[k], exponent);
    const double fro = a_s.frobenius_norm();
    const double err = reconstruction_error(a_s, result.u, sigma_s, result.v);
    d.scaled_residual = fro > 0.0 ? err / fro : (err > 0.0 ? err : 0.0);
  }

  // Orthonormality defects. U is only orthonormal on the columns whose
  // singular value survived the rank threshold (the rest are exactly zero by
  // the engines' U-formation contract), so the defect is restricted to those.
  const double smax =
      n > 0 ? *std::max_element(result.sigma.begin(), result.sigma.end()) : 0.0;
  double u_defect = 0.0;
  for (std::size_t i = 0; i < result.u.cols(); ++i) {
    if (i < n && !(result.sigma[i] > rank_tol * smax && result.sigma[i] > 0.0)) continue;
    for (std::size_t j = i; j < result.u.cols(); ++j) {
      if (j < n && !(result.sigma[j] > rank_tol * smax && result.sigma[j] > 0.0)) continue;
      const double g = dot(result.u.col(i), result.u.col(j));
      u_defect = std::max(u_defect, std::fabs(g - (i == j ? 1.0 : 0.0)));
    }
  }
  d.u_defect = u_defect;

  if (!result.v.empty()) {
    double v_defect = 0.0;
    for (std::size_t i = 0; i < result.v.cols(); ++i)
      for (std::size_t j = i; j < result.v.cols(); ++j) {
        const double g = dot(result.v.col(i), result.v.col(j));
        v_defect = std::max(v_defect, std::fabs(g - (i == j ? 1.0 : 0.0)));
      }
    d.v_defect = v_defect;
  }
}

}  // namespace treesvd
