#pragma once
// Per-column squared-norm cache for the one-sided Jacobi drivers.
//
// The classical pair kernel recomputes all three Gram elements of a column
// pair (app = x.x, aqq = y.y, apq = x.y) on every visit. But the rotation
// itself determines the new norms — and the fused rotate_and_norms kernel
// returns them from the same pass that writes the rotated columns — so a
// driver that caches squared norms per column only needs the *one* mixed
// product apq = x.y per pair: one accumulation pass instead of three.
//
// Invariants and drift control:
//  * A column's cached value is the unscaled sum of squares of its current
//    entries, accurate to the rounding of one reduction pass. Rotated pairs
//    are re-reduced by the fused kernel (not extrapolated algebraically via
//    app' = c^2 app - 2cs apq + s^2 aqq), and untouched columns keep exactly
//    the value a fresh reduction would produce, so drift does not compound
//    across sweeps.
//  * Defensively, drivers still refresh the whole cache every
//    JacobiOptions::norm_recompute_sweeps sweeps, and the pair kernel
//    re-reduces both columns whenever |apq| lands within a small factor of
//    the rotation threshold tol*sqrt(app*aqq) — the only regime where norm
//    error could flip the skip/rotate decision.
//
// The embedded KernelCounters tick with relaxed atomics so concurrent pair
// kernels (disjoint columns, shared counters) stay TSan-clean; drivers
// snapshot them into SvdResult::kernel_stats.

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "analysis/hooks.hpp"
#include "linalg/matrix.hpp"

namespace treesvd {

/// Plain snapshot of the pass counters (copyable, reported in SvdResult).
struct KernelStats {
  std::size_t pairs = 0;           ///< column pairs processed
  std::size_t dot_passes = 0;      ///< single x.y accumulations (cached path)
  std::size_t gram_passes = 0;     ///< full three-element gram_pair passes
  std::size_t rotate_passes = 0;   ///< rotation (or fused rotate+norms) passes
  std::size_t norm_refreshes = 0;  ///< single-column squared-norm re-reductions

  // BLAS-3 Gram path of the block driver (block_jacobi.hpp, inner_mode ==
  // kGram). These make the one-GEMM-per-encounter contract testable: every
  // encounter forms exactly one Gram matrix, its inner rotations touch only
  // the small problem, and at most one blocked apply per panel (H, and V
  // when requested) reaches the m-length columns.
  std::size_t gram_builds = 0;      ///< 2b x 2b panel Gram matrices formed
  std::size_t accum_rotations = 0;  ///< rotations accumulated on the small problem
  std::size_t blocked_applies = 0;  ///< P*W / V*W blocked panel applications

  /// Resolved CPU-dispatch tier the kernels ran on: static_cast<int> of
  /// linalg/dispatch.hpp's IsaTier, or -1 when no driver reported one. The
  /// batched and single-problem engines report the same process-wide
  /// resolution. Informational only — results are bitwise tier-invariant,
  /// so this field is deliberately excluded from result digests
  /// (svd/determinism.cpp).
  int isa_tier = -1;

  KernelStats& operator+=(const KernelStats& o) noexcept {
    pairs += o.pairs;
    dot_passes += o.dot_passes;
    gram_passes += o.gram_passes;
    rotate_passes += o.rotate_passes;
    norm_refreshes += o.norm_refreshes;
    gram_builds += o.gram_builds;
    accum_rotations += o.accum_rotations;
    blocked_applies += o.blocked_applies;
    // All shards of one process resolve the same tier; max() just lets an
    // unreported (-1) side defer to a reported one.
    if (o.isa_tier > isa_tier) isa_tier = o.isa_tier;
    return *this;
  }
};

/// Relaxed-atomic counters shared by concurrent pair kernels.
class KernelCounters {
 public:
  void add_pair() noexcept { note_tick(); pairs_.fetch_add(1, std::memory_order_relaxed); }
  void add_dot() noexcept { note_tick(); dot_.fetch_add(1, std::memory_order_relaxed); }
  void add_gram() noexcept { note_tick(); gram_.fetch_add(1, std::memory_order_relaxed); }
  void add_rotate() noexcept { note_tick(); rotate_.fetch_add(1, std::memory_order_relaxed); }
  void add_norm_refresh(std::size_t k = 1) noexcept {
    note_tick();
    refresh_.fetch_add(k, std::memory_order_relaxed);
  }
  void add_gram_build() noexcept { note_tick(); gram_build_.fetch_add(1, std::memory_order_relaxed); }
  void add_accum_rotations(std::size_t k) noexcept {
    note_tick();
    accum_rot_.fetch_add(k, std::memory_order_relaxed);
  }
  void add_blocked_apply() noexcept {
    note_tick();
    blocked_apply_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Overwrites every counter from a snapshot — checkpoint restore in the
  /// fault-tolerant drivers. Not safe concurrently with ticking kernels;
  /// declared as a plain write so the race detector flags exactly that
  /// misuse (a store overlapping any tick or snapshot).
  void store(const KernelStats& s) noexcept {
    TREESVD_HB_WRITE(this, 0, "KernelCounters");
    pairs_.store(s.pairs, std::memory_order_relaxed);
    dot_.store(s.dot_passes, std::memory_order_relaxed);
    gram_.store(s.gram_passes, std::memory_order_relaxed);
    rotate_.store(s.rotate_passes, std::memory_order_relaxed);
    refresh_.store(s.norm_refreshes, std::memory_order_relaxed);
    gram_build_.store(s.gram_builds, std::memory_order_relaxed);
    accum_rot_.store(s.accum_rotations, std::memory_order_relaxed);
    blocked_apply_.store(s.blocked_applies, std::memory_order_relaxed);
  }

  KernelStats snapshot() const noexcept {
    TREESVD_HB_ATOMIC(this, 0, "KernelCounters");
    KernelStats s;
    s.pairs = pairs_.load(std::memory_order_relaxed);
    s.dot_passes = dot_.load(std::memory_order_relaxed);
    s.gram_passes = gram_.load(std::memory_order_relaxed);
    s.rotate_passes = rotate_.load(std::memory_order_relaxed);
    s.norm_refreshes = refresh_.load(std::memory_order_relaxed);
    s.gram_builds = gram_build_.load(std::memory_order_relaxed);
    s.accum_rotations = accum_rot_.load(std::memory_order_relaxed);
    s.blocked_applies = blocked_apply_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  /// Declares a relaxed-atomic tick to the race detector: safe against other
  /// ticks and snapshots, racy against store().
  void note_tick() const noexcept { TREESVD_HB_ATOMIC(this, 0, "KernelCounters"); }

  std::atomic<std::size_t> pairs_{0};
  std::atomic<std::size_t> dot_{0};
  std::atomic<std::size_t> gram_{0};
  std::atomic<std::size_t> rotate_{0};
  std::atomic<std::size_t> refresh_{0};
  std::atomic<std::size_t> gram_build_{0};
  std::atomic<std::size_t> accum_rot_{0};
  std::atomic<std::size_t> blocked_apply_{0};
};

/// Squared norms of a matrix's columns, kept current across rotations.
/// Distinct columns may be updated concurrently (disjoint pairs of a step);
/// the counters are shared and atomic.
class NormCache {
 public:
  NormCache() = default;
  explicit NormCache(const Matrix& a) { refresh(a); }

  NormCache(const NormCache&) = delete;
  NormCache& operator=(const NormCache&) = delete;

  bool empty() const noexcept { return sq_.empty(); }
  std::size_t size() const noexcept { return sq_.size(); }

  /// Re-reduces every column (full drift reset).
  void refresh(const Matrix& a);

  /// Re-reduces one column.
  void refresh_column(const Matrix& a, std::size_t j);

  double sq(std::size_t j) const noexcept {
    TREESVD_HB_READ(this, j, "NormCache");
    return sq_[j];
  }
  void set(std::size_t j, double v) noexcept {
    TREESVD_HB_WRITE(this, j, "NormCache");
    sq_[j] = v;
  }
  void swap_cols(std::size_t i, std::size_t j) noexcept {
    TREESVD_HB_WRITE(this, i, "NormCache");
    TREESVD_HB_WRITE(this, j, "NormCache");
    std::swap(sq_[i], sq_[j]);
  }

  KernelCounters& counters() noexcept { return counters_; }
  const KernelCounters& counters() const noexcept { return counters_; }

 private:
  std::vector<double> sq_;
  KernelCounters counters_;
};

}  // namespace treesvd
