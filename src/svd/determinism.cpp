#include "svd/determinism.hpp"

#include "analysis/digest.hpp"

namespace treesvd {
namespace {

void add_core(analysis::Fnv1a& h, const SvdResult& r) {
  h.add_u64(r.u.rows());
  h.add_u64(r.u.cols());
  h.add_doubles(r.u.data());
  h.add_u64(r.sigma.size());
  h.add_doubles({r.sigma.data(), r.sigma.size()});
  h.add_u64(r.v.rows());
  h.add_u64(r.v.cols());
  h.add_doubles(r.v.data());
  h.add_u64(static_cast<std::uint64_t>(r.sweeps));
  h.add_u64(r.converged ? 1 : 0);
  h.add_u64(r.rotations);
  h.add_u64(r.swaps);
  h.add_u64(static_cast<std::uint64_t>(r.status));
}

}  // namespace

std::uint64_t result_core_digest(const SvdResult& r) {
  analysis::Fnv1a h;
  add_core(h, r);
  return h.value();
}

std::uint64_t result_digest(const SvdResult& r) {
  analysis::Fnv1a h;
  add_core(h, r);
  const KernelStats& k = r.kernel_stats;
  h.add_u64(k.pairs);
  h.add_u64(k.dot_passes);
  h.add_u64(k.gram_passes);
  h.add_u64(k.rotate_passes);
  h.add_u64(k.norm_refreshes);
  h.add_u64(k.gram_builds);
  h.add_u64(k.accum_rotations);
  h.add_u64(k.blocked_applies);
  return h.value();
}

}  // namespace treesvd
