#include "svd/block_jacobi.hpp"

#include <algorithm>
#include <vector>

#include "linalg/blas1.hpp"
#include "svd/pair_kernel.hpp"
#include "util/require.hpp"

namespace treesvd {
namespace {

/// Inner pass: mutually orthogonalise the columns listed in `cols` (global
/// column ids of H/V) with plain cyclic one-sided Jacobi, sort rule included.
struct InnerStats {
  std::size_t rotations = 0;
  std::size_t swaps = 0;
};

InnerStats inner_orthogonalise(Matrix& h, Matrix* v, const std::vector<int>& cols,
                               const BlockJacobiOptions& opt, NormCache* cache,
                               KernelCounters* plain_counters) {
  JacobiOptions jopt;
  jopt.tol = opt.tol;
  jopt.sort = opt.sort;
  jopt.cache_norms = opt.cache_norms;
  InnerStats stats;
  for (int sweep = 0; sweep < opt.inner_sweeps; ++sweep) {
    std::size_t pass_rot = 0;
    std::size_t pass_swap = 0;
    for (std::size_t a = 0; a < cols.size(); ++a) {
      for (std::size_t b = a + 1; b < cols.size(); ++b) {
        const int i = std::min(cols[a], cols[b]);
        const int j = std::max(cols[a], cols[b]);
        const auto o = cache != nullptr
                           ? detail::process_pair_cached(h, v, i, j, jopt, *cache)
                           : detail::process_pair(h, v, i, j, jopt, plain_counters);
        pass_rot += o.rotated ? 1 : 0;
        pass_swap += o.swapped ? 1 : 0;
      }
    }
    stats.rotations += pass_rot;
    stats.swaps += pass_swap;
    if (pass_rot == 0 && pass_swap == 0) break;  // panel already orthogonal
  }
  return stats;
}

}  // namespace

SvdResult block_one_sided_jacobi(const Matrix& a, const Ordering& ordering,
                                 const BlockJacobiOptions& options) {
  TREESVD_REQUIRE(a.rows() >= a.cols() && a.cols() >= 2,
                  "block_one_sided_jacobi expects m >= n >= 2");
  TREESVD_REQUIRE(options.block_width >= 1, "block width must be >= 1");
  TREESVD_REQUIRE(options.inner_sweeps >= 1, "need at least one inner sweep");

  const int n = static_cast<int>(a.cols());
  const int b = options.block_width;

  // Number of blocks the ordering will drive: at least ceil(n/b), grown to a
  // supported count; the matrix is padded with zero columns to nb * b.
  int nb = (n + b - 1) / b;
  while (nb <= 2 * ((n + b - 1) / b) + 4 && !ordering.supports(nb)) ++nb;
  TREESVD_REQUIRE(ordering.supports(nb),
                  ordering.name() + " supports no block count near " +
                      std::to_string((n + b - 1) / b));
  const int padded_n = nb * b;

  Matrix h(a.rows(), static_cast<std::size_t>(padded_n));
  for (std::size_t j = 0; j < a.cols(); ++j) {
    const auto src = a.col(j);
    const auto dst = h.col(j);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  Matrix v = options.compute_v ? Matrix::identity(static_cast<std::size_t>(padded_n)) : Matrix();
  Matrix* vp = options.compute_v ? &v : nullptr;

  // Block k owns global columns [k*b, (k+1)*b).
  auto block_cols = [&](int blk) {
    std::vector<int> cols(static_cast<std::size_t>(b));
    for (int i = 0; i < b; ++i) cols[static_cast<std::size_t>(i)] = blk * b + i;
    return cols;
  };

  std::vector<int> layout(static_cast<std::size_t>(nb));
  for (int i = 0; i < nb; ++i) layout[static_cast<std::size_t>(i)] = i;

  NormCache cache;
  if (options.cache_norms) cache.refresh(h);
  KernelCounters plain_counters;
  NormCache* cp = options.cache_norms ? &cache : nullptr;

  SvdResult r;
  for (int sweep = 0; sweep < options.max_outer_sweeps; ++sweep) {
    if (cp != nullptr && sweep > 0 && options.norm_recompute_sweeps > 0 &&
        sweep % options.norm_recompute_sweeps == 0)
      cache.refresh(h);
    const Sweep s = ordering.sweep_from(layout, sweep);
    std::size_t sweep_rot = 0;
    std::size_t sweep_swap = 0;
    for (int t = 0; t < s.steps(); ++t) {
      const StepPairs pairs = s.step_pairs(t);
      for (int k = 0; k < pairs.leaves(); ++k) {
        if (!pairs.active_at(k)) continue;
        const IndexPair p = pairs.at(k);
        std::vector<int> cols = block_cols(std::min(p.even, p.odd));
        const std::vector<int> other = block_cols(std::max(p.even, p.odd));
        cols.insert(cols.end(), other.begin(), other.end());
        const InnerStats stats = inner_orthogonalise(h, vp, cols, options, cp, &plain_counters);
        sweep_rot += stats.rotations;
        sweep_swap += stats.swaps;
      }
    }
    const auto fin = s.final_layout();
    layout.assign(fin.begin(), fin.end());
    r.rotations += sweep_rot;
    r.swaps += sweep_swap;
    r.sweeps = sweep + 1;
    if (sweep_rot == 0 && sweep_swap == 0) {
      r.converged = true;
      break;
    }
  }

  r.kernel_stats =
      options.cache_norms ? cache.counters().snapshot() : plain_counters.snapshot();

  // Finalisation mirrors the element-wise engine.
  r.sigma.resize(a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j) r.sigma[j] = nrm2(h.col(j));
  const double smax = *std::max_element(r.sigma.begin(), r.sigma.end());
  r.u = Matrix(a.rows(), a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j) {
    if (r.sigma[j] > options.rank_tol * smax && r.sigma[j] > 0.0) {
      const auto src = h.col(j);
      const auto dst = r.u.col(j);
      for (std::size_t i = 0; i < a.rows(); ++i) dst[i] = src[i] / r.sigma[j];
    }
  }
  if (options.compute_v) {
    r.v = Matrix(a.cols(), a.cols());
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const auto src = v.col(j);
      const auto dst = r.v.col(j);
      std::copy(src.begin(), src.begin() + static_cast<std::ptrdiff_t>(a.cols()), dst.begin());
    }
  }
  return r;
}

}  // namespace treesvd
