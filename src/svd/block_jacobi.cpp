#include "svd/block_jacobi.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "linalg/blas1.hpp"
#include "linalg/gemm.hpp"
#include "linalg/rotation.hpp"
#include "svd/equilibrate.hpp"
#include "svd/pair_kernel.hpp"
#include "svd/recovery.hpp"
#include "util/require.hpp"
#include "util/thread_pool.hpp"

namespace treesvd {
namespace detail {
namespace {

/// Level-2 recursion: the sequence of local pair visits of one encounter's
/// inner passes. With an inner_ordering name the registered ordering is
/// reused recursively over the 2b *local* positions — the local layout
/// chains across the encounter's inner sweeps via final_layout(), exactly as
/// the outer driver chains block layouts — and each step's pairs are
/// disjoint (checked by treesvd_lint's inner-recursion rule). Empty name, or
/// an ordering that does not support 2b, falls back to the historical serial
/// cyclic pass.
class InnerSchedule {
 public:
  InnerSchedule(const std::string& name, std::size_t kw) {
    if (name.empty()) return;
    OrderingPtr ord = make_ordering(name);  // throws for unknown names
    if (!ord->supports(static_cast<int>(kw))) return;
    ord_ = std::move(ord);
    layout_.resize(kw);
    for (std::size_t i = 0; i < kw; ++i) layout_[i] = static_cast<int>(i);
  }

  /// Runs one inner pass, invoking f(a, b) with local positions a < b.
  template <typename F>
  void pass(std::size_t kw, int sweep, F&& f) {
    if (ord_ == nullptr) {
      for (std::size_t a = 0; a < kw; ++a)
        for (std::size_t b = a + 1; b < kw; ++b) f(a, b);
      return;
    }
    const Sweep s = ord_->sweep_from(layout_, sweep);
    for (int t = 0; t < s.steps(); ++t) {
      const StepPairs pairs = s.step_pairs(t);
      for (int k = 0; k < pairs.leaves(); ++k) {
        if (!pairs.active_at(k)) continue;
        const IndexPair p = pairs.at(k);
        f(static_cast<std::size_t>(std::min(p.even, p.odd)),
          static_cast<std::size_t>(std::max(p.even, p.odd)));
      }
    }
    const auto fin = s.final_layout();
    layout_.assign(fin.begin(), fin.end());
  }

 private:
  OrderingPtr ord_;
  std::vector<int> layout_;
};

}  // namespace

InnerPanelStats inner_orthogonalise_elementwise(Matrix& h, Matrix* v,
                                                const std::vector<int>& cols,
                                                const BlockJacobiOptions& opt, NormCache* cache,
                                                KernelCounters* plain_counters) {
  JacobiOptions jopt;
  jopt.tol = opt.tol;
  jopt.sort = opt.sort;
  jopt.cache_norms = opt.cache_norms;
  // Level 0 bound once per encounter: every inner rotation of this panel
  // resolves through the same dispatch table.
  const PairKernel kernel(jopt);
  InnerSchedule schedule(opt.inner_ordering, cols.size());
  InnerPanelStats stats;
  for (int sweep = 0; sweep < opt.inner_sweeps; ++sweep) {
    std::size_t pass_rot = 0;
    std::size_t pass_swap = 0;
    schedule.pass(cols.size(), sweep, [&](std::size_t a, std::size_t b) {
      const int i = std::min(cols[a], cols[b]);
      const int j = std::max(cols[a], cols[b]);
      const auto o = cache != nullptr ? kernel.process_cached(h, v, i, j, *cache)
                                      : kernel.process(h, v, i, j, plain_counters);
      pass_rot += o.rotated ? 1 : 0;
      pass_swap += o.swapped ? 1 : 0;
    });
    stats.rotations += pass_rot;
    stats.swaps += pass_swap;
    if (pass_rot == 0 && pass_swap == 0) break;  // panel already orthogonal
  }
  return stats;
}

namespace {

/// Two-sided update G <- JᵀGJ for the plane rotation (c, s) in plane (a, b),
/// preserving symmetry. The rotated diagonal uses the same stable
/// norm-transfer form as the column kernels (rotated_norms); the pivot
/// off-diagonal is zero by construction of the Jacobi rotation.
void rotate_gram(Matrix& g, std::size_t a, std::size_t b, const JacobiRotation& rot) {
  const double c = rot.c;
  const double s = rot.s;
  const GramPair gp{g(a, a), g(b, b), g(a, b)};
  const std::size_t kw = g.rows();
  for (std::size_t k = 0; k < kw; ++k) {
    if (k == a || k == b) continue;
    const double gka = g(k, a);
    const double gkb = g(k, b);
    const double na = c * gka - s * gkb;
    const double nb = s * gka + c * gkb;
    g(k, a) = na;
    g(a, k) = na;
    g(k, b) = nb;
    g(b, k) = nb;
  }
  const RotatedNorms rn = rotated_norms(gp, rot);
  g(a, a) = rn.app;
  g(b, b) = rn.aqq;
  g(a, b) = 0.0;
  g(b, a) = 0.0;
}

/// Symmetric interchange of indices a and b of G (columns, then rows).
void swap_gram(Matrix& g, std::size_t a, std::size_t b) {
  swap(g.col(a), g.col(b));
  for (std::size_t k = 0; k < g.rows(); ++k) {
    const double t = g(a, k);
    g(a, k) = g(b, k);
    g(b, k) = t;
  }
}

}  // namespace

InnerPanelStats inner_orthogonalise_gram(Matrix& h, Matrix* v, const std::vector<int>& cols,
                                         const BlockJacobiOptions& opt, NormCache* cache,
                                         KernelCounters& counters, ThreadPool* pool) {
  const std::size_t kw = cols.size();
  // One Gram build per encounter: every rotate/skip/swap decision below
  // reads this small matrix, never the m-length columns.
  Matrix g = gram_panel(h, cols, pool);
  counters.add_gram_build();
  Matrix w = Matrix::identity(kw);

  InnerSchedule schedule(opt.inner_ordering, kw);
  InnerPanelStats stats;
  for (int sweep = 0; sweep < opt.inner_sweeps; ++sweep) {
    std::size_t pass_rot = 0;
    std::size_t pass_swap = 0;
    schedule.pass(kw, sweep, [&](std::size_t a, std::size_t b) {
      const GramPair gp{g(a, a), g(b, b), g(a, b)};
      const JacobiRotation rot = compute_rotation(gp, opt.tol);
      const bool want_swap = opt.sort == SortMode::kDescending && gp.app < gp.aqq;
      if (rot.identity && !want_swap) return;
      if (!rot.identity) {
        rotate_gram(g, a, b, rot);
        // W <- W·J: same column convention as the data-side kernel.
        apply_rotation(w.col(a), w.col(b), rot.c, rot.s);
        ++pass_rot;
      }
      if (want_swap) {
        // Fused rotate-and-swap of paper eq. (3), in accumulator form:
        // interchange the two local indices of G and W.
        swap_gram(g, a, b);
        swap(w.col(a), w.col(b));
        ++pass_swap;
      }
    });
    stats.rotations += pass_rot;
    stats.swaps += pass_swap;
    if (pass_rot == 0 && pass_swap == 0) break;  // panel already orthogonal
  }
  counters.add_accum_rotations(stats.rotations);
  if (stats.rotations == 0 && stats.swaps == 0) return stats;  // W == I: skip the apply

  // The only O(m) work of the encounter: one blocked P·W per panel. The
  // fused squared-norm reduction of the apply pass keeps the NormCache on
  // the same "fresh reduction of stored values" contract as the elementwise
  // kernels (norm_cache.hpp).
  const std::vector<double> hsq = apply_panel_update(h, cols, w, pool);
  counters.add_blocked_apply();
  if (v != nullptr) {
    apply_panel_update(*v, cols, w, pool);
    counters.add_blocked_apply();
  }
  if (cache != nullptr)
    for (std::size_t j = 0; j < kw; ++j) cache->set(static_cast<std::size_t>(cols[j]), hsq[j]);
  return stats;
}

}  // namespace detail

SvdResult block_one_sided_jacobi(const Matrix& a, const Ordering& ordering,
                                 const BlockJacobiOptions& options) {
  TREESVD_REQUIRE(a.rows() >= a.cols() && a.cols() >= 2,
                  "block_one_sided_jacobi expects m >= n >= 2");
  require_finite_columns(a, "block_one_sided_jacobi");
  TREESVD_REQUIRE(options.block_width >= 1, "block width must be >= 1");
  TREESVD_REQUIRE(options.inner_sweeps >= 1, "need at least one inner sweep");
  // Validate the inner ordering name up front (unknown names throw here, not
  // in the middle of the first encounter).
  if (!options.inner_ordering.empty()) make_ordering(options.inner_ordering);
  const ScopedIsaOverride isa_guard(options.force_isa);
  const IsaTier isa_tier = kernels().tier;

  const int n = static_cast<int>(a.cols());
  const int b = options.block_width;

  // Number of blocks the ordering will drive: the smallest supported count
  // in [ceil(n/b), 2*ceil(n/b) + 4]. Every registered family supports some
  // count within a factor of two of any request (next power of two, next
  // even count, next group multiple); +4 covers the tiny-count corner. The
  // matrix is padded with zero columns to nb * b.
  const int nb_min = (n + b - 1) / b;
  const int nb_limit = 2 * nb_min + 4;
  int nb = nb_min;
  while (nb <= nb_limit && !ordering.supports(nb)) ++nb;
  TREESVD_REQUIRE(nb <= nb_limit,
                  ordering.name() + " supports no block count in [" + std::to_string(nb_min) +
                      ", " + std::to_string(nb_limit) + "] (n=" + std::to_string(n) +
                      ", block_width=" + std::to_string(b) + ")");
  const int padded_n = nb * b;

  Matrix h(a.rows(), static_cast<std::size_t>(padded_n));
  for (std::size_t j = 0; j < a.cols(); ++j) {
    const auto src = a.col(j);
    const auto dst = h.col(j);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  const Equilibration eq = equilibrate(h, options.equilibrate);
  StallDetector stall(options.stall_window);
  ConvergenceWatchdog watchdog(options.watchdog_sweeps);
  std::size_t watchdog_trips = 0;
  Matrix v = options.compute_v ? Matrix::identity(static_cast<std::size_t>(padded_n)) : Matrix();
  Matrix* vp = options.compute_v ? &v : nullptr;

  // Block k owns global columns [k*b, (k+1)*b).
  auto block_cols = [&](int blk) {
    std::vector<int> cols(static_cast<std::size_t>(b));
    for (int i = 0; i < b; ++i) cols[static_cast<std::size_t>(i)] = blk * b + i;
    return cols;
  };

  std::vector<int> layout(static_cast<std::size_t>(nb));
  for (int i = 0; i < nb; ++i) layout[static_cast<std::size_t>(i)] = i;

  NormCache cache;
  if (options.cache_norms) cache.refresh(h);
  KernelCounters plain_counters;
  NormCache* cp = options.cache_norms ? &cache : nullptr;
  KernelCounters& counters = options.cache_norms ? cache.counters() : plain_counters;
  const bool gram_mode = options.inner_mode == InnerMode::kGram;
  ThreadPool* pool = gram_mode ? gemm_pool() : nullptr;

  SvdResult r;
  for (int sweep = 0; sweep < options.max_outer_sweeps; ++sweep) {
    if (cp != nullptr && sweep > 0 && options.norm_recompute_sweeps > 0 &&
        sweep % options.norm_recompute_sweeps == 0)
      cache.refresh(h);
    const Sweep s = ordering.sweep_from(layout, sweep);
    std::size_t sweep_rot = 0;
    std::size_t sweep_swap = 0;
    for (int t = 0; t < s.steps(); ++t) {
      const StepPairs pairs = s.step_pairs(t);
      for (int k = 0; k < pairs.leaves(); ++k) {
        if (!pairs.active_at(k)) continue;
        const IndexPair p = pairs.at(k);
        std::vector<int> cols = block_cols(std::min(p.even, p.odd));
        const std::vector<int> other = block_cols(std::max(p.even, p.odd));
        cols.insert(cols.end(), other.begin(), other.end());
        const detail::InnerPanelStats stats =
            gram_mode
                ? detail::inner_orthogonalise_gram(h, vp, cols, options, cp, counters, pool)
                : detail::inner_orthogonalise_elementwise(h, vp, cols, options, cp,
                                                          &plain_counters);
        sweep_rot += stats.rotations;
        sweep_swap += stats.swaps;
      }
    }
    const auto fin = s.final_layout();
    layout.assign(fin.begin(), fin.end());
    r.rotations += sweep_rot;
    r.swaps += sweep_swap;
    r.sweeps = sweep + 1;
    if (sweep_rot == 0 && sweep_swap == 0) {
      r.converged = true;
      break;
    }
    const double activity = static_cast<double>(sweep_rot + sweep_swap);
    stall.observe(activity);
    if (watchdog.observe(activity)) {
      if (options.cache_norms) cache.refresh(h);
      ++watchdog_trips;
      watchdog.reset();
    }
  }

  r.kernel_stats =
      options.cache_norms ? cache.counters().snapshot() : plain_counters.snapshot();
  r.kernel_stats.isa_tier = static_cast<int>(isa_tier);

  // Finalisation mirrors the element-wise engine (at the equilibrated scale;
  // the common 2^e factor cancels in the U division and sigma is unscaled
  // exactly afterwards).
  r.sigma.resize(a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j) r.sigma[j] = nrm2(h.col(j));
  const double smax = *std::max_element(r.sigma.begin(), r.sigma.end());
  r.u = Matrix(a.rows(), a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j) {
    if (r.sigma[j] > options.rank_tol * smax && r.sigma[j] > 0.0)
      copy_div(h.col(j), r.sigma[j], r.u.col(j));
  }
  if (options.compute_v) {
    r.v = Matrix(a.cols(), a.cols());
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const auto src = v.col(j);
      const auto dst = r.v.col(j);
      std::copy(src.begin(), src.begin() + static_cast<std::ptrdiff_t>(a.cols()), dst.begin());
    }
  }
  unscale_sigma(r.sigma, eq);

  r.status = r.converged ? SvdStatus::kConverged
                         : (stall.stalled() ? SvdStatus::kStalled : SvdStatus::kMaxSweeps);
  r.diagnostics.input_scale = eq.stats;
  r.diagnostics.equilibrated = eq.applied;
  r.diagnostics.equilibration_exponent = eq.exponent;
  r.diagnostics.watchdog_trips = watchdog_trips;
  r.diagnostics.stalled_sweeps = stall.streak();
  if (!r.converged || options.full_diagnostics)
    assess_quality(a, r, eq.exponent, options.rank_tol);
  return r;
}

}  // namespace treesvd
