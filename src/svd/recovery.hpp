#pragma once
// Engine-side fault tolerance shared by the SPMD Jacobi (svd/spmd.hpp) and
// the distributed tree machine (sim/distributed.hpp): sweep-boundary
// checkpointing with rollback/replay, a convergence watchdog, and the
// non-finite payload guards.
//
// Determinism rules (the contracts chaos_recovery_test pins down):
//  * Checkpoints snapshot column ownership, column payloads, cached norms
//    and progress counters at sweep boundaries. A rollback restores the
//    latest checkpoint *every* participant has committed and replays from
//    there; because the engines are deterministic, the replay is
//    bit-identical to the run the fault interrupted.
//  * The watchdog trips when the sweep activity measure (rotations + swaps,
//    the quantity whose zero defines convergence) fails to decrease across
//    `watchdog_sweeps` consecutive sweeps; a trip forces a full norm
//    re-reduction (the only repairable source of stagnation) instead of
//    letting drift propagate silently. Trips are counted, never fatal —
//    max_sweeps still bounds the iteration.
//  * Payload guards: a non-finite (or negative) cached norm arriving with a
//    column is repaired by re-reducing the column (counted as a
//    norm_rereduction); non-finite column *data* is unrepairable and throws
//    naming the offending column.

#include <cmath>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "mp/fault.hpp"

namespace treesvd {

/// Knobs for the checkpoint/rollback/watchdog machinery.
struct RecoveryOptions {
  /// Snapshot cadence in sweeps (1 = every sweep boundary; 0 disables
  /// checkpointing, so a rank kill is fatal).
  int checkpoint_sweeps = 1;
  /// Rollback budget: replays attempted before the failure is rethrown.
  int max_rollbacks = 8;
  /// Stagnation window: 0 disables the watchdog.
  int watchdog_sweeps = 0;
};

/// Tracks the per-sweep activity measure and decides watchdog trips.
/// Deterministic: feed it the (collectively agreed) activity once per sweep.
class ConvergenceWatchdog {
 public:
  explicit ConvergenceWatchdog(int window) : window_(window) {}

  /// Returns true when the activity has not decreased for `window`
  /// consecutive sweeps (and is still nonzero); the caller should re-reduce
  /// its norms and reset() the window.
  bool observe(double activity) {
    if (window_ <= 0) return false;
    const bool stalled = activity > 0.0 && has_prev_ && activity >= prev_;
    prev_ = activity;
    has_prev_ = true;
    stall_count_ = stalled ? stall_count_ + 1 : 0;
    return stall_count_ >= window_;
  }

  void reset() noexcept {
    stall_count_ = 0;
    has_prev_ = false;
  }

  /// Exact double-serialisation (kPacked values appended) so multi-process
  /// engines can carry the watchdog inside published checkpoint blobs; the
  /// observed activity is itself a double, so the round trip is bitwise.
  static constexpr std::size_t kPacked = 4;
  void pack(std::vector<double>& out) const {
    out.push_back(static_cast<double>(window_));
    out.push_back(static_cast<double>(stall_count_));
    out.push_back(prev_);
    out.push_back(has_prev_ ? 1.0 : 0.0);
  }
  static ConvergenceWatchdog unpack(const double* p) {
    ConvergenceWatchdog w(static_cast<int>(p[0]));
    w.stall_count_ = static_cast<int>(p[1]);
    w.prev_ = p[2];
    w.has_prev_ = p[3] != 0.0;
    return w;
  }

 private:
  int window_;
  int stall_count_ = 0;
  double prev_ = 0.0;
  bool has_prev_ = false;
};

/// Always-on, purely observational stall classifier. Unlike the watchdog it
/// never triggers repairs or perturbs the iteration: engines feed it the
/// per-sweep activity and consult it only at exit, to distinguish a run that
/// hit max_sweeps while still making progress (SvdStatus::kMaxSweeps) from
/// one whose activity stopped decreasing (SvdStatus::kStalled — more sweeps
/// would not have helped). Trivially copyable so spmd/distributed can carry
/// it in their sweep checkpoints.
class StallDetector {
 public:
  StallDetector() = default;
  explicit StallDetector(int window) : window_(window) {}

  void observe(double activity) noexcept {
    const bool flat = activity > 0.0 && has_prev_ && activity >= prev_;
    prev_ = activity;
    has_prev_ = true;
    streak_ = flat ? streak_ + 1 : 0;
  }

  /// True when the trailing `window` sweeps all failed to decrease activity.
  bool stalled() const noexcept { return window_ > 0 && streak_ >= window_; }
  /// Length of the trailing non-decreasing streak (diagnostics).
  int streak() const noexcept { return streak_; }

  /// Exact double-serialisation, mirroring ConvergenceWatchdog::pack.
  static constexpr std::size_t kPacked = 4;
  void pack(std::vector<double>& out) const {
    out.push_back(static_cast<double>(window_));
    out.push_back(static_cast<double>(streak_));
    out.push_back(prev_);
    out.push_back(has_prev_ ? 1.0 : 0.0);
  }
  static StallDetector unpack(const double* p) {
    StallDetector s(static_cast<int>(p[0]));
    s.streak_ = static_cast<int>(p[1]);
    s.prev_ = p[2];
    s.has_prev_ = p[3] != 0.0;
    return s;
  }

 private:
  int window_ = 4;
  int streak_ = 0;
  double prev_ = 0.0;
  bool has_prev_ = false;
};

/// Index of the first column containing a NaN or Inf entry, -1 when the
/// whole matrix is finite. The throw-free probe behind
/// require_finite_columns, also used by the serving layer to classify a
/// poison request during failure isolation without paying an exception per
/// healthy lane.
int first_nonfinite_column(const Matrix& a) noexcept;

/// Fast-fail input guard: throws std::invalid_argument naming the first
/// column that contains a NaN or Inf entry. Every SVD engine calls this up
/// front, so poisoned inputs fail precisely instead of iterating to
/// max_sweeps on IEEE-propagated garbage.
void require_finite_columns(const Matrix& a, const std::string& engine);

/// Payload guard for a column in flight (see determinism rules above):
/// throws std::invalid_argument naming `column` if any entry is non-finite.
void require_finite_payload(std::span<const double> column, int column_label,
                            const std::string& engine);

/// True when a cached squared norm is trustworthy: finite and non-negative.
inline bool cached_norm_plausible(double hsq) noexcept {
  return std::isfinite(hsq) && hsq >= 0.0;
}

}  // namespace treesvd
