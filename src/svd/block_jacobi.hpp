#pragma once
// Block one-sided Jacobi SVD.
//
// The element-wise engine sends one column per message; on machines where
// latency dominates (the CM-5's alpha is large), the classical remedy —
// reference [1] of the paper (Bischof's block Jacobi) and the block ring of
// Section 5 — is to treat b columns as one unit: the same parallel orderings
// drive *blocks*, and when two blocks meet, their 2b columns are mutually
// orthogonalised by an inner (local, communication-free) Jacobi pass.
// Fewer, larger messages; fewer outer sweeps.
//
// Two inner solvers are available (BlockJacobiOptions::inner_mode):
//
//  * kGram (default, DESIGN.md §8): per encounter, form the 2b x 2b Gram
//    matrix G = PᵀP once (one O(m·b²) pass), run the inner cyclic Jacobi
//    sweeps entirely on the small Gram problem while accumulating every
//    rotation and sort-swap into a 2b x 2b orthogonal W, then apply
//    P <- P·W (and the V panel <- V·W) as one blocked matrix product each.
//    O(m·b²) total per encounter — compute-dense BLAS-3.
//  * kElementwise: the historical path — every inner rotation streams the
//    full m-length columns (O(m) per rotation, memory-bound BLAS-1). Kept
//    bitwise-identical to its pre-BLAS-3 behaviour for cross-checks.

#include <cstddef>
#include <vector>

#include "core/ordering.hpp"
#include "linalg/matrix.hpp"
#include "svd/jacobi.hpp"

namespace treesvd {

class ThreadPool;

/// Inner panel solver of the block driver.
enum class InnerMode {
  kElementwise,  ///< rotate full m-length columns pair by pair (historical)
  kGram,         ///< solve the 2b x 2b Gram problem, apply one blocked update
};

struct BlockJacobiOptions {
  /// Columns per block (>= 1). The ordering runs over ceil(n/b) blocks
  /// (padded with zero columns to a supported block count).
  int block_width = 4;
  /// Inner cyclic sweeps over a met block pair's 2b columns per encounter.
  int inner_sweeps = 2;
  double tol = 1e-13;
  int max_outer_sweeps = 60;
  SortMode sort = SortMode::kDescending;
  bool compute_v = true;
  double rank_tol = 1e-12;
  /// Inner panel solver; see the header comment. kGram is the fast path,
  /// kElementwise the bitwise-stable reference.
  InnerMode inner_mode = InnerMode::kGram;
  /// Cached-norm fast path for the kElementwise inner sweeps (see
  /// norm_cache.hpp). Under kGram the cache is not consulted for decisions
  /// (the fresh Gram matrix is), but it is kept coherent: the blocked apply
  /// returns each updated column's squared norm from its own write pass.
  bool cache_norms = true;
  /// Full NormCache re-reduction every this many *outer* sweeps (<= 0
  /// disables the scheduled refresh).
  int norm_recompute_sweeps = 8;
  /// Same robustness knobs as JacobiOptions (svd/status.hpp /
  /// svd/equilibrate.hpp): exact power-of-two input equilibration, opt-in
  /// stagnation watchdog, observational stall window, and forced heavy
  /// diagnostics.
  EquilibrateMode equilibrate = EquilibrateMode::kAuto;
  int watchdog_sweeps = 0;
  int stall_window = 4;
  bool full_diagnostics = false;
  /// Level-2 recursion (DESIGN.md §14): ordering for the *inner* pass over a
  /// met pair's 2b local columns — any registered ordering name
  /// (core/registry.hpp, e.g. "round-robin", "fat-tree"), reused recursively
  /// at the inner level. The local layout chains across the encounter's
  /// inner sweeps exactly as the outer driver chains block layouts. Empty
  /// (default) keeps the historical serial cyclic pass; a named ordering
  /// that does not support 2b columns also falls back to cyclic. Unknown
  /// names throw std::invalid_argument.
  std::string inner_ordering;
  /// CPU-dispatch tier for this solve; see JacobiOptions::force_isa.
  int force_isa = kIsaAuto;
};

/// Block one-sided Jacobi SVD of an m x n matrix (m >= n) with the given
/// block-level parallel ordering. Semantics of the result match
/// one_sided_jacobi; `sweeps` counts outer (block) sweeps.
SvdResult block_one_sided_jacobi(const Matrix& a, const Ordering& ordering,
                                 const BlockJacobiOptions& options = {});

namespace detail {

/// Per-encounter tallies of an inner panel solve.
struct InnerPanelStats {
  std::size_t rotations = 0;
  std::size_t swaps = 0;
};

/// Elementwise inner pass: mutually orthogonalise the columns listed in
/// `cols` (global column ids of h/v) with plain cyclic one-sided Jacobi,
/// sort rule included. This is the pre-BLAS-3 code path, unchanged.
InnerPanelStats inner_orthogonalise_elementwise(Matrix& h, Matrix* v,
                                                const std::vector<int>& cols,
                                                const BlockJacobiOptions& opt, NormCache* cache,
                                                KernelCounters* plain_counters);

/// Gram inner pass: one Gram build, cyclic Jacobi sweeps on the small
/// problem accumulating rotations and sort-swaps into W, then at most one
/// blocked P·W apply per panel (h, and v when non-null). Keeps `cache`
/// coherent from the apply's fused norm reduction. `pool` (nullable) spreads
/// the Gram build and the blocked applies over row chunks.
InnerPanelStats inner_orthogonalise_gram(Matrix& h, Matrix* v, const std::vector<int>& cols,
                                         const BlockJacobiOptions& opt, NormCache* cache,
                                         KernelCounters& counters, ThreadPool* pool);

}  // namespace detail

}  // namespace treesvd
