#pragma once
// Block one-sided Jacobi SVD.
//
// The element-wise engine sends one column per message; on machines where
// latency dominates (the CM-5's alpha is large), the classical remedy —
// reference [1] of the paper (Bischof's block Jacobi) and the block ring of
// Section 5 — is to treat b columns as one unit: the same parallel orderings
// drive *blocks*, and when two blocks meet, their 2b columns are mutually
// orthogonalised by an inner (local, communication-free) cyclic Jacobi pass.
// Fewer, larger messages; fewer outer sweeps.

#include "core/ordering.hpp"
#include "linalg/matrix.hpp"
#include "svd/jacobi.hpp"

namespace treesvd {

struct BlockJacobiOptions {
  /// Columns per block (>= 1). The ordering runs over ceil(n/b) blocks
  /// (padded with zero columns to a supported block count).
  int block_width = 4;
  /// Inner cyclic sweeps over a met block pair's 2b columns per encounter.
  int inner_sweeps = 2;
  double tol = 1e-13;
  int max_outer_sweeps = 60;
  SortMode sort = SortMode::kDescending;
  bool compute_v = true;
  double rank_tol = 1e-12;
  /// Cached-norm fast path for the inner panel sweeps (see norm_cache.hpp).
  bool cache_norms = true;
  /// Full NormCache re-reduction every this many *outer* sweeps (<= 0
  /// disables the scheduled refresh).
  int norm_recompute_sweeps = 8;
};

/// Block one-sided Jacobi SVD of an m x n matrix (m >= n) with the given
/// block-level parallel ordering. Semantics of the result match
/// one_sided_jacobi; `sweeps` counts outer (block) sweeps.
SvdResult block_one_sided_jacobi(const Matrix& a, const Ordering& ordering,
                                 const BlockJacobiOptions& options = {});

}  // namespace treesvd
