#include "svd/batch.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <numeric>
#include <string>
#include <utility>

#include "analysis/hooks.hpp"
#include "linalg/blas1.hpp"
#include "linalg/dispatch.hpp"
#include "linalg/rotation.hpp"
#include "svd/driver_detail.hpp"
#include "svd/equilibrate.hpp"
#include "svd/pair_kernel.hpp"
#include "svd/recovery.hpp"
#include "util/aligned.hpp"
#include "util/require.hpp"
#include "util/thread_pool.hpp"

namespace treesvd {
namespace {

using detail::SweepGuards;

constexpr bool valid_lane_width(std::size_t w) noexcept {
  return w == 4 || w == 8 || w == 16;
}

void gather_lane(const double* block, std::size_t m, std::size_t w, std::size_t b,
                 double* __restrict dst) noexcept {
  for (std::size_t i = 0; i < m; ++i) dst[i] = block[i * w + b];
}

}  // namespace

/// Per-shard working state. Every buffer is sized once (make_shard) and
/// reused across solves — the pack/iterate/retire cycle is allocation-free.
struct BatchedSvd::Shard {
  // SoA arenas: column j's lane block starts at h[j*m*w]; element i of lane
  // b sits at h[(j*m + i)*w + b]. v uses the same layout with n_p rows.
  // 64-byte aligned so full-width vector accesses never split a cache line.
  AlignedVec<double> h;
  AlignedVec<double> v;
  /// Cached squared norms, SoA: cache[j*w + b] mirrors NormCache::sq(j) of
  /// lane b's sequential run.
  AlignedVec<double> cache;

  // Per-lane engine state (lane_width entries each).
  std::vector<std::uint8_t> active;
  std::vector<std::uint8_t> converged;
  std::vector<SweepGuards> guards;
  std::vector<KernelStats> stats;
  std::vector<std::size_t> rotations;
  std::vector<std::size_t> swaps;
  std::vector<int> sweeps;
  std::vector<std::size_t> sweep_rot;
  std::vector<std::size_t> sweep_swap;

  // Per-pair decision scratch (lane_width entries each, 64-byte aligned —
  // the decision kernels read them as whole vectors).
  AlignedVec<double> apq;
  AlignedVec<double> app;
  AlignedVec<double> aqq;
  AlignedVec<double> c;
  AlignedVec<double> s;
  std::vector<std::uint8_t> rot_mask;
  std::vector<std::uint8_t> swap_mask;
  std::vector<std::uint8_t> ident;
  std::vector<std::uint8_t> near;
  /// Batched drift-guard re-reduction scratch: fresh unscaled column sums of
  /// the pair, all lanes at once.
  AlignedVec<double> norm_x;
  AlignedVec<double> norm_y;

  /// Contiguous gather scratch for the rare per-lane scalar paths
  /// (overflowed dot retry, drift-guard re-reduction, watchdog refresh):
  /// 2*m doubles.
  std::vector<double> lane_buf;
  /// Staging matrix (m x n_p) for pack: pad + equilibrate run here with the
  /// exact sequential-driver routines before scattering into the arena.
  Matrix pack;

  /// Live lanes this solve (the rest are zero-filled and never active).
  std::size_t count = 0;
};

BatchedSvd::BatchedSvd(std::size_t rows, std::size_t cols, const Ordering& ordering,
                       BatchedSvdOptions options)
    : rows_(rows), cols_(cols), options_(std::move(options)), ordering_name_(ordering.name()) {
  TREESVD_REQUIRE(rows_ >= cols_ && cols_ >= 2, "BatchedSvd expects m >= n >= 2");
  TREESVD_REQUIRE(valid_lane_width(options_.lane_width),
                  "BatchedSvd lane_width must be 4, 8 or 16");
  TREESVD_REQUIRE(!options_.jacobi.track_off,
                  "BatchedSvd does not support track_off (per-sweep O(n^2 m) diagnostics)");
  padded_n_ = detail::padded_width(ordering, static_cast<int>(cols_));

  // The sweep schedule is data-independent — orderings are position
  // procedures, and the layout evolution depends only on the previous
  // layout and the sweep index — so the whole run's schedule is computed
  // once here and shared read-only by every lane, shard and solve.
  std::vector<int> layout(static_cast<std::size_t>(padded_n_));
  std::iota(layout.begin(), layout.end(), 0);
  schedule_.reserve(static_cast<std::size_t>(std::max(0, options_.jacobi.max_sweeps)));
  flat_pairs_.reserve(static_cast<std::size_t>(std::max(0, options_.jacobi.max_sweeps)));
  for (int k = 0; k < options_.jacobi.max_sweeps; ++k) {
    schedule_.push_back(ordering.sweep_from(layout, k));
    const auto fin = schedule_.back().final_layout();
    layout.assign(fin.begin(), fin.end());
    const Sweep& s = schedule_.back();
    std::vector<std::pair<int, int>> flat;
    for (int t = 0; t < s.steps(); ++t) {
      const StepPairs pairs = s.step_pairs(t);
      for (int kk = 0; kk < pairs.leaves(); ++kk) {
        if (!pairs.active_at(kk)) continue;
        const IndexPair p = pairs.at(kk);
        flat.emplace_back(std::min(p.even, p.odd), std::max(p.even, p.odd));
      }
    }
    flat_pairs_.push_back(std::move(flat));
  }
}

BatchedSvd::~BatchedSvd() = default;

std::size_t BatchedSvd::capacity() const noexcept {
  return shards_.size() * options_.lane_width;
}

std::unique_ptr<BatchedSvd::Shard> BatchedSvd::make_shard() const {
  const std::size_t w = options_.lane_width;
  const std::size_t m = rows_;
  const auto np = static_cast<std::size_t>(padded_n_);
  auto sh = std::make_unique<Shard>();
  sh->h.resize(m * np * w);
  if (options_.jacobi.compute_v) sh->v.resize(np * np * w);
  sh->cache.resize(np * w);
  sh->active.resize(w);
  sh->converged.resize(w);
  sh->guards.assign(w, SweepGuards(options_.jacobi));
  sh->stats.resize(w);
  sh->rotations.resize(w);
  sh->swaps.resize(w);
  sh->sweeps.resize(w);
  sh->sweep_rot.resize(w);
  sh->sweep_swap.resize(w);
  sh->apq.resize(w);
  sh->app.resize(w);
  sh->aqq.resize(w);
  sh->c.resize(w);
  sh->s.resize(w);
  sh->rot_mask.resize(w);
  sh->swap_mask.resize(w);
  sh->ident.resize(w);
  sh->near.resize(w);
  sh->norm_x.resize(w);
  sh->norm_y.resize(w);
  sh->lane_buf.resize(2 * m);
  sh->pack = Matrix(m, np);
  return sh;
}

void BatchedSvd::reserve(std::size_t batch) {
  const std::size_t w = options_.lane_width;
  const std::size_t want = (batch + w - 1) / w;
  while (shards_.size() < want) shards_.push_back(make_shard());
}

std::vector<SvdResult> BatchedSvd::solve(std::span<const Matrix> inputs, ThreadPool* pool) {
  std::vector<SvdResult> results(inputs.size());
  std::vector<const Matrix*> in(inputs.size());
  std::vector<SvdResult*> out(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    in[i] = &inputs[i];
    out[i] = &results[i];
  }
  solve_into(in, out, pool);
  return results;
}

void BatchedSvd::solve_into(std::span<const Matrix* const> inputs,
                            std::span<SvdResult* const> results, ThreadPool* pool) {
  TREESVD_REQUIRE(inputs.size() == results.size(),
                  "BatchedSvd::solve_into needs one result slot per input");
  if (inputs.empty()) return;
  for (const Matrix* a : inputs) {
    TREESVD_REQUIRE(a != nullptr, "BatchedSvd::solve_into null input");
    TREESVD_REQUIRE(a->rows() == rows_ && a->cols() == cols_,
                    "BatchedSvd input shape mismatch");
    require_finite_columns(*a, "batched_svd");
  }
  // Same per-solve tier override as the sequential drivers; the batched and
  // single-problem paths then report the same resolved tier in KernelStats
  // (one process-wide dispatch resolution, linalg/dispatch.hpp).
  const ScopedIsaOverride isa_guard(options_.jacobi.force_isa);
  const std::size_t w = options_.lane_width;
  const std::size_t nshards = (inputs.size() + w - 1) / w;
  reserve(inputs.size());

  const auto shard_task = [&](std::size_t sidx) {
    TREESVD_HB_SCOPED_FRAME(shard_frame,
                            [&] { return "batched shard " + std::to_string(sidx); });
    // Each shard's state is owned by exactly one task per solve; a second
    // task landing on the same shard index would be flagged as a race here.
    TREESVD_HB_WRITE(this, sidx, "BatchedSvd shard");
    Shard& sh = *shards_[sidx];
    const std::size_t b0 = sidx * w;
    const std::size_t cnt = std::min(w, inputs.size() - b0);
    pack_shard(sh, inputs.subspan(b0, cnt));
    iterate_shard(sh);
    finalize_shard(sh, inputs.subspan(b0, cnt), results.subspan(b0, cnt));
  };
  if (pool != nullptr && nshards > 1) {
    pool->parallel_for(nshards, shard_task, 1);
  } else {
    for (std::size_t sidx = 0; sidx < nshards; ++sidx) shard_task(sidx);
  }
}

void BatchedSvd::solve_single_into(const Matrix& a, SvdResult* result) {
  const Matrix* in = &a;
  SvdResult* out = result;
  solve_into({&in, 1}, {&out, 1}, nullptr);
}

void BatchedSvd::pack_shard(Shard& sh, std::span<const Matrix* const> inputs) {
  const std::size_t w = options_.lane_width;
  const std::size_t m = rows_;
  const auto np = static_cast<std::size_t>(padded_n_);
  const JacobiOptions& jo = options_.jacobi;
  sh.count = inputs.size();

  // Unused lanes must hold finite data (zeros) — the SIMD passes compute
  // across all lanes and masked lanes feed nothing back, but NaNs would
  // still be *read*.
  std::fill(sh.h.begin(), sh.h.end(), 0.0);
  std::fill(sh.v.begin(), sh.v.end(), 0.0);
  std::fill(sh.cache.begin(), sh.cache.end(), 0.0);
  for (std::size_t b = 0; b < w; ++b) {
    sh.active[b] = b < sh.count ? 1 : 0;
    sh.converged[b] = 0;
    sh.guards[b] = SweepGuards(jo);
    sh.stats[b] = KernelStats{};
    sh.rotations[b] = 0;
    sh.swaps[b] = 0;
    sh.sweeps[b] = 0;
    sh.rot_mask[b] = 0;
    sh.swap_mask[b] = 0;
    sh.c[b] = 1.0;
    sh.s[b] = 0.0;
  }

  for (std::size_t b = 0; b < sh.count; ++b) {
    const Matrix& a = *inputs[b];
    Matrix& t = sh.pack;
    // Stage = pad_columns + equilibrate of the sequential driver, run on the
    // reusable staging matrix: identical content, identical ScaleStats,
    // identical scaling decision.
    for (std::size_t j = 0; j < cols_; ++j) {
      const auto src = a.col(j);
      const auto dst = t.col(j);
      std::copy(src.begin(), src.end(), dst.begin());
    }
    for (std::size_t j = cols_; j < np; ++j) {
      const auto dst = t.col(j);
      std::fill(dst.begin(), dst.end(), 0.0);
    }
    sh.guards[b].eq = equilibrate(t, jo.equilibrate);

    // Scatter into the SoA arena; V starts as the identity per lane.
    const auto td = t.data();
    for (std::size_t j = 0; j < np; ++j) {
      const double* src = td.data() + j * m;
      double* blk = sh.h.data() + j * m * w;
      for (std::size_t i = 0; i < m; ++i) blk[i * w + b] = src[i];
    }
    if (jo.compute_v) {
      for (std::size_t j = 0; j < np; ++j) sh.v[(j * np + j) * w + b] = 1.0;
    }
    // Initial cache fill mirrors NormCache::refresh: sumsq_robust per
    // column, counted as np refreshes.
    if (jo.cache_norms) {
      for (std::size_t j = 0; j < np; ++j) sh.cache[j * w + b] = sumsq_robust(t.col(j));
      sh.stats[b].norm_refreshes += np;
    }
  }
}

void BatchedSvd::iterate_shard(Shard& sh) {
  const JacobiOptions& jo = options_.jacobi;
  for (int sweep = 0; sweep < jo.max_sweeps; ++sweep) {
    bool any_active = false;
    for (std::size_t b = 0; b < sh.count; ++b) any_active |= sh.active[b] != 0;
    if (!any_active) break;
    // One writer per sweep over this shard's arena: overlapping shard tasks
    // (a batching bug) show up as a race on this location.
    TREESVD_HB_WRITE(sh.h.data(), static_cast<std::size_t>(sweep), "BatchedSvd arena");

    if (jo.cache_norms && detail::scheduled_refresh_due(sweep, jo)) scheduled_cache_refresh(sh);

    const auto& flat = flat_pairs_[static_cast<std::size_t>(sweep)];
    std::fill(sh.sweep_rot.begin(), sh.sweep_rot.end(), 0);
    std::fill(sh.sweep_swap.begin(), sh.sweep_swap.end(), 0);
    for (std::size_t k = 0; k < flat.size(); ++k) {
      if (jo.cache_norms) {
        process_pair_cached(sh, flat[k].first, flat[k].second);
      } else {
        process_pair_plain(sh, flat[k].first, flat[k].second);
      }
    }

    for (std::size_t b = 0; b < sh.count; ++b) {
      if (sh.active[b] == 0) continue;
      TREESVD_HB_WRITE(sh.stats.data(), b, "BatchedSvd lane counters");
      // The active set is constant within a sweep, so the per-pair counters
      // advance by the sweep's pair count in one step here instead of
      // per-lane increments inside the hot pair loop.
      KernelStats& ks = sh.stats[b];
      ks.pairs += flat.size();
      if (jo.cache_norms) {
        ks.dot_passes += flat.size();
      } else {
        ks.gram_passes += flat.size();
      }
      sh.rotations[b] += sh.sweep_rot[b];
      sh.swaps[b] += sh.sweep_swap[b];
      sh.sweeps[b] = sweep + 1;
      if (sh.sweep_rot[b] == 0 && sh.sweep_swap[b] == 0) {
        // Lane retires: data, cache and counters freeze, guards stop
        // observing — exactly where the sequential run breaks its loop.
        sh.converged[b] = 1;
        sh.active[b] = 0;
        continue;
      }
      if (sh.guards[b].observe(static_cast<double>(sh.sweep_rot[b] + sh.sweep_swap[b])) &&
          jo.cache_norms)
        lane_cache_refresh(sh, b);
    }
  }
}

void BatchedSvd::process_pair_cached(Shard& sh, int i, int j) {
  const std::size_t w = options_.lane_width;
  const std::size_t m = rows_;
  const auto np = static_cast<std::size_t>(padded_n_);
  const JacobiOptions& jo = options_.jacobi;
  double* x = sh.h.data() + static_cast<std::size_t>(i) * m * w;
  double* y = sh.h.data() + static_cast<std::size_t>(j) * m * w;
  // One batched accumulation replaces the per-problem dot of the cached
  // path, and the sqrt/divide-heavy decision math runs batched too (the
  // drift gate and rotation decisions below) — only the rare recovery paths
  // gather a lane and fall back to the scalar kernels.
  if (options_.use_simd) {
    batched_dot(x, y, m, w, sh.apq.data());
  } else {
    batched_dot_ref(x, y, m, w, sh.apq.data());
  }

  // Common case: every lane's dot is finite and both cached norms are
  // plausible, so the per-lane loads collapse to two row copies plus one
  // branchless validity scan. (pairs/dot_passes counters advance once per
  // sweep in iterate_shard — the active set is constant within a sweep.)
  std::memcpy(sh.app.data(), sh.cache.data() + static_cast<std::size_t>(i) * w,
              w * sizeof(double));
  std::memcpy(sh.aqq.data(), sh.cache.data() + static_cast<std::size_t>(j) * w,
              w * sizeof(double));
  constexpr double kInf = std::numeric_limits<double>::infinity();
  bool fixup = false;
  for (std::size_t b = 0; b < w; ++b) {
    // NaN fails every comparison, so non-finite and negative values all
    // route to the fixup loop below. Retired lanes with frozen non-finite
    // data keep tripping this scan — the fixup loop skips them, costing
    // only the old per-lane walk.
    fixup |= !(std::fabs(sh.apq[b]) < kInf);
    fixup |= !(sh.app[b] >= 0.0) | !(sh.app[b] < kInf);
    fixup |= !(sh.aqq[b] >= 0.0) | !(sh.aqq[b] < kInf);
  }
  if (fixup) {
    for (std::size_t b = 0; b < sh.count; ++b) {
      if (sh.active[b] == 0) continue;
      if (!std::isfinite(sh.apq[b])) {
        // Overflowed accumulation: retry with the exact prescaled form on
        // the gathered lane (bitwise the sequential retry).
        gather_lane(x, m, w, b, sh.lane_buf.data());
        gather_lane(y, m, w, b, sh.lane_buf.data() + m);
        sh.apq[b] = dot_scaled({sh.lane_buf.data(), m}, {sh.lane_buf.data() + m, m});
      }
      if (!cached_norm_plausible(sh.app[b]) || !cached_norm_plausible(sh.aqq[b])) {
        gather_lane(x, m, w, b, sh.lane_buf.data());
        sh.app[b] = sumsq_robust({sh.lane_buf.data(), m});
        gather_lane(y, m, w, b, sh.lane_buf.data());
        sh.aqq[b] = sumsq_robust({sh.lane_buf.data(), m});
        sh.stats[b].norm_refreshes += 2;
      }
    }
  }

  if (options_.use_simd) {
    batched_drift_gate(sh.app.data(), sh.aqq.data(), sh.apq.data(), w, jo.tol,
                       detail::kNormDriftGuard, sh.near.data());
  } else {
    detail::batched_drift_gate_scalar(sh.app.data(), sh.aqq.data(), sh.apq.data(), w, jo.tol,
                                      detail::kNormDriftGuard, sh.near.data());
  }
  std::uint8_t any8 = 0;
  for (std::size_t b = 0; b < sh.count; ++b)
    any8 = static_cast<std::uint8_t>(any8 | (sh.near[b] & sh.active[b]));
  const bool any_near = any8 != 0;
  if (any_near) {
    // Near-threshold lanes re-reduce both norms from the stored columns
    // before trusting the orthogonality test. One batched sumsq per column
    // covers every such lane (lane b equals the sequential path's unscaled
    // sumsq bitwise); the dlassq-style retry on a non-finite sum gathers the
    // lane, completing sumsq_robust's exact fast-path/fallback split.
    if (options_.use_simd) {
      batched_sumsq(x, m, w, sh.norm_x.data());
      batched_sumsq(y, m, w, sh.norm_y.data());
    } else {
      batched_sumsq_ref(x, m, w, sh.norm_x.data());
      batched_sumsq_ref(y, m, w, sh.norm_y.data());
    }
    for (std::size_t b = 0; b < sh.count; ++b) {
      if (sh.active[b] == 0 || sh.near[b] == 0) continue;
      double app = sh.norm_x[b];
      if (!std::isfinite(app)) {
        gather_lane(x, m, w, b, sh.lane_buf.data());
        app = sumsq_scaled({sh.lane_buf.data(), m}).value();
      }
      double aqq = sh.norm_y[b];
      if (!std::isfinite(aqq)) {
        gather_lane(y, m, w, b, sh.lane_buf.data());
        aqq = sumsq_scaled({sh.lane_buf.data(), m}).value();
      }
      sh.app[b] = app;
      sh.aqq[b] = aqq;
      sh.stats[b].norm_refreshes += 2;
    }
  }

  if (options_.use_simd) {
    batched_compute_rotation(sh.app.data(), sh.aqq.data(), sh.apq.data(), w, jo.tol,
                             sh.c.data(), sh.s.data(), sh.ident.data());
  } else {
    detail::batched_compute_rotation_scalar(sh.app.data(), sh.aqq.data(), sh.apq.data(), w,
                                            jo.tol, sh.c.data(), sh.s.data(), sh.ident.data());
  }

  // Whole-row writeback: active lanes store the (possibly re-reduced) norms
  // — the sequential cache.set calls do the same — while retired lanes write
  // back the copy loaded above, bitwise a no-op.
  std::memcpy(sh.cache.data() + static_cast<std::size_t>(i) * w, sh.app.data(),
              w * sizeof(double));
  std::memcpy(sh.cache.data() + static_cast<std::size_t>(j) * w, sh.aqq.data(),
              w * sizeof(double));
  std::fill(sh.rot_mask.begin(), sh.rot_mask.end(), 0);
  std::fill(sh.swap_mask.begin(), sh.swap_mask.end(), 0);
  bool any_rot = false;
  for (std::size_t b = 0; b < sh.count; ++b) {
    if (sh.active[b] == 0) continue;
    const bool identity = sh.ident[b] != 0;
    const bool want_swap = jo.sort == SortMode::kDescending && sh.app[b] < sh.aqq[b];
    if (identity && !want_swap) continue;
    sh.rot_mask[b] = 1;
    sh.swap_mask[b] = want_swap ? 1 : 0;
    ++sh.stats[b].rotate_passes;
    if (want_swap) {
      ++sh.sweep_swap[b];
      if (!identity) ++sh.sweep_rot[b];
    } else {
      ++sh.sweep_rot[b];
    }
    any_rot = true;
  }
  if (!any_rot) return;

  if (options_.use_simd) {
    batched_rotate_and_norms(x, y, m, w, sh.c.data(), sh.s.data(), sh.rot_mask.data(),
                             sh.swap_mask.data(), sh.app.data(), sh.aqq.data());
  } else {
    batched_rotate_and_norms_ref(x, y, m, w, sh.c.data(), sh.s.data(), sh.rot_mask.data(),
                                 sh.swap_mask.data(), sh.app.data(), sh.aqq.data());
  }
  for (std::size_t b = 0; b < sh.count; ++b) {
    if (sh.rot_mask[b] == 0) continue;
    sh.cache[static_cast<std::size_t>(i) * w + b] = sh.app[b];
    sh.cache[static_cast<std::size_t>(j) * w + b] = sh.aqq[b];
  }
  if (jo.compute_v) {
    double* vx = sh.v.data() + static_cast<std::size_t>(i) * np * w;
    double* vy = sh.v.data() + static_cast<std::size_t>(j) * np * w;
    if (options_.use_simd) {
      batched_apply_rotation(vx, vy, np, w, sh.c.data(), sh.s.data(), sh.rot_mask.data(),
                             sh.swap_mask.data());
    } else {
      batched_apply_rotation_ref(vx, vy, np, w, sh.c.data(), sh.s.data(), sh.rot_mask.data(),
                                 sh.swap_mask.data());
    }
  }
}

void BatchedSvd::process_pair_plain(Shard& sh, int i, int j) {
  const std::size_t w = options_.lane_width;
  const std::size_t m = rows_;
  const auto np = static_cast<std::size_t>(padded_n_);
  const JacobiOptions& jo = options_.jacobi;
  double* x = sh.h.data() + static_cast<std::size_t>(i) * m * w;
  double* y = sh.h.data() + static_cast<std::size_t>(j) * m * w;
  if (options_.use_simd) {
    batched_gram_pair(x, y, m, w, sh.app.data(), sh.aqq.data(), sh.apq.data());
  } else {
    batched_gram_pair_ref(x, y, m, w, sh.app.data(), sh.aqq.data(), sh.apq.data());
  }

  if (options_.use_simd) {
    batched_compute_rotation(sh.app.data(), sh.aqq.data(), sh.apq.data(), w, jo.tol,
                             sh.c.data(), sh.s.data(), sh.ident.data());
  } else {
    detail::batched_compute_rotation_scalar(sh.app.data(), sh.aqq.data(), sh.apq.data(), w,
                                            jo.tol, sh.c.data(), sh.s.data(), sh.ident.data());
  }

  std::fill(sh.rot_mask.begin(), sh.rot_mask.end(), 0);
  std::fill(sh.swap_mask.begin(), sh.swap_mask.end(), 0);
  bool any_rot = false;
  for (std::size_t b = 0; b < sh.count; ++b) {
    if (sh.active[b] == 0) continue;
    KernelStats& ks = sh.stats[b];
    const bool identity = sh.ident[b] != 0;
    const bool want_swap = jo.sort == SortMode::kDescending && sh.app[b] < sh.aqq[b];
    if (identity && !want_swap) continue;
    sh.rot_mask[b] = 1;
    sh.swap_mask[b] = want_swap ? 1 : 0;
    ++ks.rotate_passes;
    if (want_swap) {
      ++sh.sweep_swap[b];
      if (!identity) ++sh.sweep_rot[b];
    } else {
      ++sh.sweep_rot[b];
    }
    any_rot = true;
  }
  if (!any_rot) return;

  if (options_.use_simd) {
    batched_apply_rotation(x, y, m, w, sh.c.data(), sh.s.data(), sh.rot_mask.data(),
                           sh.swap_mask.data());
  } else {
    batched_apply_rotation_ref(x, y, m, w, sh.c.data(), sh.s.data(), sh.rot_mask.data(),
                               sh.swap_mask.data());
  }
  if (jo.compute_v) {
    double* vx = sh.v.data() + static_cast<std::size_t>(i) * np * w;
    double* vy = sh.v.data() + static_cast<std::size_t>(j) * np * w;
    if (options_.use_simd) {
      batched_apply_rotation(vx, vy, np, w, sh.c.data(), sh.s.data(), sh.rot_mask.data(),
                             sh.swap_mask.data());
    } else {
      batched_apply_rotation_ref(vx, vy, np, w, sh.c.data(), sh.s.data(), sh.rot_mask.data(),
                                 sh.swap_mask.data());
    }
  }
}

void BatchedSvd::scheduled_cache_refresh(Shard& sh) {
  const std::size_t w = options_.lane_width;
  const std::size_t m = rows_;
  const auto np = static_cast<std::size_t>(padded_n_);
  // Batched analogue of NormCache::refresh for every still-active lane: the
  // fast unscaled reduction per column across lanes, with the dlassq-style
  // retry gathered per lane on a non-finite sum (== sumsq_robust per lane).
  for (std::size_t j = 0; j < np; ++j) {
    const double* col = sh.h.data() + j * m * w;
    if (options_.use_simd) {
      batched_sumsq(col, m, w, sh.app.data());
    } else {
      batched_sumsq_ref(col, m, w, sh.app.data());
    }
    for (std::size_t b = 0; b < sh.count; ++b) {
      if (sh.active[b] == 0) continue;
      double v = sh.app[b];
      if (!std::isfinite(v)) {
        gather_lane(col, m, w, b, sh.lane_buf.data());
        v = sumsq_scaled({sh.lane_buf.data(), m}).value();
      }
      sh.cache[j * w + b] = v;
    }
  }
  for (std::size_t b = 0; b < sh.count; ++b) {
    if (sh.active[b] != 0) sh.stats[b].norm_refreshes += np;
  }
}

void BatchedSvd::lane_cache_refresh(Shard& sh, std::size_t lane) {
  const std::size_t w = options_.lane_width;
  const std::size_t m = rows_;
  const auto np = static_cast<std::size_t>(padded_n_);
  // Watchdog-forced refresh of one lane (rare): gather each column and run
  // the exact scalar re-reduction.
  for (std::size_t j = 0; j < np; ++j) {
    gather_lane(sh.h.data() + j * m * w, m, w, lane, sh.lane_buf.data());
    sh.cache[j * w + lane] = sumsq_robust({sh.lane_buf.data(), m});
  }
  sh.stats[lane].norm_refreshes += np;
}

void BatchedSvd::finalize_shard(Shard& sh, std::span<const Matrix* const> inputs,
                                std::span<SvdResult* const> results) {
  const std::size_t w = options_.lane_width;
  const std::size_t m = rows_;
  const auto np = static_cast<std::size_t>(padded_n_);
  const JacobiOptions& jo = options_.jacobi;
  for (std::size_t b = 0; b < sh.count; ++b) {
    TREESVD_HB_WRITE(results.data(), b, "BatchedSvd result");
    Matrix hb(m, np);
    for (std::size_t j = 0; j < np; ++j)
      gather_lane(sh.h.data() + j * m * w, m, w, b, hb.col(j).data());
    Matrix vb;
    if (jo.compute_v) {
      vb = Matrix(np, np);
      for (std::size_t j = 0; j < np; ++j)
        gather_lane(sh.v.data() + j * np * w, np, w, b, vb.col(j).data());
    }
    SvdResult partial;
    partial.sweeps = sh.sweeps[b];
    partial.converged = sh.converged[b] != 0;
    partial.rotations = sh.rotations[b];
    partial.swaps = sh.swaps[b];
    partial.kernel_stats = sh.stats[b];
    // Matches the sequential driver's report bit-for-bit: the tier is the
    // process-wide resolution, whether the lane kernels ran vectorized or on
    // the gather + scalar reference path (use_simd == false) — both are
    // served from the same dispatch table.
    partial.kernel_stats.isa_tier = static_cast<int>(kernels().tier);
    *results[b] = detail::finalize(std::move(hb), std::move(vb), *inputs[b], jo, sh.guards[b],
                                   std::move(partial));
  }
}

}  // namespace treesvd
