#pragma once
// Transport backend interface under mp::World (DESIGN.md section 15).
//
// World is a facade: every Context operation (send/recv/barrier/allreduce/
// publish) and every lifecycle operation (run/reset_for_replay/
// purge_leftovers) is delegated to a TransportBackend. The backend owns the
// *mechanics* of message motion — mailboxes and condition variables
// in-process, sockets and processes for the socket backend — while the
// *policy* stays in World and is shared: the reliable-transport
// configuration, the fault injector, the recovery counters, the abort flag
// and the durable blob board. That split is what makes the two backends
// interchangeable at the program level: the same SPMD program with the same
// fault plan produces bit-identical payloads on either side.
//
// Backends access the shared policy through the protected accessors below
// (TransportBackend is a friend of World), never through their own copies,
// so a counter ticked by the in-process backend and one ticked by a rank
// process (shipped home over the control channel) land in the same place.

#include "mp/message_passing.hpp"

namespace treesvd::mp {

class TransportBackend {
 public:
  virtual ~TransportBackend() = default;

  virtual const char* name() const noexcept = 0;
  /// True when ranks are OS processes and rank memory dies with the rank.
  virtual bool multiprocess() const noexcept = 0;

  virtual void run(const std::function<void(Context&)>& program) = 0;

  virtual void send(Context& ctx, int dst, std::uint64_t tag, std::vector<double> data) = 0;
  virtual std::vector<double> recv(Context& ctx, int src, std::uint64_t tag) = 0;
  virtual void barrier(Context& ctx) = 0;
  virtual double allreduce_sum(Context& ctx, double value) = 0;

  /// Fires the fault plan's one-shot kill for (ctx.rank(), op): the
  /// in-process backend throws RankKilledError, the socket backend ships its
  /// statistics home and SIGKILLs the rank process. Never returns normally.
  [[noreturn]] virtual void execute_kill(Context& ctx, std::uint64_t op) = 0;

  /// Posts to the durable blob board. Default: write World's board directly
  /// (correct whenever rank memory is the world's memory).
  virtual void publish(Context& ctx, std::uint64_t key, std::vector<double> blob);

  virtual void reset_for_replay() = 0;
  virtual void purge_leftovers() = 0;

  /// OS process id of a live rank (multiprocess backends only; 0 otherwise).
  virtual long process_id(int rank) const noexcept;

 protected:
  explicit TransportBackend(World* world) : world_(world) {}

  World& world() noexcept { return *world_; }
  const World& world() const noexcept { return *world_; }

  // Shared-policy accessors (see header comment).
  const ReliableConfig& reliable() const noexcept { return world_->reliable_; }
  FaultInjector* injector() noexcept { return world_->injector_.get(); }
  RecoveryCounters& counters() noexcept { return world_->counters_; }
  void count_sends(std::size_t n) noexcept {
    world_->delivered_.fetch_add(n, std::memory_order_relaxed);
  }
  bool world_aborted() const noexcept { return world_->aborted(); }
  void set_world_aborted(bool value) noexcept {
    world_->aborted_.store(value, std::memory_order_release);
  }
  void store_blob(std::uint64_t key, std::vector<double> blob) {
    std::lock_guard<std::mutex> lock(world_->blob_mu_);
    world_->blobs_[key] = std::move(blob);
  }

  /// Backends construct per-rank contexts (Context's constructor is
  /// private; World and TransportBackend are its only friends).
  static Context make_context(World* world, int rank) { return Context(world, rank); }

 private:
  World* world_;
};

inline void TransportBackend::publish(Context&, std::uint64_t key, std::vector<double> blob) {
  store_blob(key, std::move(blob));
}

inline long TransportBackend::process_id(int) const noexcept { return 0; }

}  // namespace treesvd::mp
