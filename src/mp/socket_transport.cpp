#include "mp/socket_transport.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "mp/frame.hpp"
#include "util/require.hpp"

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace treesvd::mp {
namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Full write with EINTR retry and SIGPIPE suppressed; false on any error
/// (a peer may die at any moment — callers treat failure as a lost frame
/// and lean on the NACK/abort machinery, never on write success).
bool write_all(int fd, const std::uint8_t* p, std::size_t len) noexcept {
  while (len != 0) {
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Nonblocking fd with a full buffer: wait for writability (a dead
        // peer surfaces as POLLERR/EPIPE on the retry, never a hang).
        pollfd pf{fd, POLLOUT, 0};
        (void)::poll(&pf, 1, 1000);
        continue;
      }
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

void set_nonblocking(int fd) noexcept {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

int connect_unix(const std::string& path) noexcept {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  for (;;) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) return fd;
    if (errno == EINTR) continue;
    ::close(fd);
    return -1;
  }
}

/// Appends whatever is readable right now; returns false on EOF or a hard
/// error (the connection is dead either way).
bool read_into(int fd, std::vector<std::uint8_t>& buf, bool* progress) noexcept {
  *progress = false;
  for (;;) {
    std::uint8_t chunk[65536];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf.insert(buf.end(), chunk, chunk + n);
      *progress = true;
      continue;
    }
    if (n == 0) return false;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    return false;
  }
}

/// Exit-frame kinds (WireFrame::aux of kError): which exception type a rank
/// process unwound with, so the launcher rethrows the same type.
enum ErrKind : int {
  kErrOther = 0,
  kErrRankKilled = 1,
  kErrWorldAborted = 2,
  kErrTransport = 3,
  kErrInvalidArgument = 4,
  kErrLogic = 5,
};

constexpr std::size_t kStatsDoubles = 16;  ///< [sends, 15 RecoveryStats fields]

std::vector<double> pack_stats(std::size_t sends, const RecoveryStats& now,
                               const RecoveryStats& base) {
  std::vector<double> p(kStatsDoubles);
  p[0] = static_cast<double>(sends);
  p[1] = static_cast<double>(now.drops_seen - base.drops_seen);
  p[2] = static_cast<double>(now.duplicates_injected - base.duplicates_injected);
  p[3] = static_cast<double>(now.corruptions_injected - base.corruptions_injected);
  p[4] = static_cast<double>(now.delays_seen - base.delays_seen);
  p[5] = static_cast<double>(now.kills - base.kills);
  p[6] = static_cast<double>(now.stalls - base.stalls);
  p[7] = static_cast<double>(now.corruptions_detected - base.corruptions_detected);
  p[8] = static_cast<double>(now.duplicates_suppressed - base.duplicates_suppressed);
  p[9] = static_cast<double>(now.retries - base.retries);
  p[10] = static_cast<double>(now.resends - base.resends);
  p[11] = now.virtual_backoff - base.virtual_backoff;
  p[12] = static_cast<double>(now.checkpoints - base.checkpoints);
  p[13] = static_cast<double>(now.rollbacks - base.rollbacks);
  p[14] = static_cast<double>(now.watchdog_trips - base.watchdog_trips);
  p[15] = static_cast<double>(now.norm_rereductions - base.norm_rereductions);
  return p;
}

RecoveryStats unpack_stats(const std::vector<double>& p, std::size_t* sends) {
  RecoveryStats s;
  if (p.size() != kStatsDoubles) return s;  // malformed: ignore, counters stay monotone
  const auto u = [](double d) { return static_cast<std::size_t>(d); };
  *sends = u(p[0]);
  s.drops_seen = u(p[1]);
  s.duplicates_injected = u(p[2]);
  s.corruptions_injected = u(p[3]);
  s.delays_seen = u(p[4]);
  s.kills = u(p[5]);
  s.stalls = u(p[6]);
  s.corruptions_detected = u(p[7]);
  s.duplicates_suppressed = u(p[8]);
  s.retries = u(p[9]);
  s.resends = u(p[10]);
  s.virtual_backoff = p[11];
  s.checkpoints = u(p[12]);
  s.rollbacks = u(p[13]);
  s.watchdog_trips = u(p[14]);
  s.norm_rereductions = u(p[15]);
  return s;
}

}  // namespace

// ---------------------------------------------------------------------------
// Child-process machinery.

struct SocketTransport::RankRuntime {
  using Key = std::pair<int, std::uint64_t>;  ///< (peer, tag)

  SocketTransport* bk = nullptr;
  int rank = 0;
  int size = 0;
  SocketConfig cfg;
  ReliableConfig rel;
  bool reliable_on = false;
  FaultInjector* inj = nullptr;       ///< child's copy of the injector
  RecoveryCounters* counters = nullptr;
  int ctl = -1;
  int listen_fd = -1;
  int wake_r = -1, wake_w = -1;       ///< self-pipe: program -> IO thread

  std::mutex ctl_mu;                  ///< control frames: program + IO thread

  // Receive-side state (mu/cv): stashes filled by the IO thread, drained by
  // the program thread under wall-clock deadlines.
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
  bool aborted = false;
  std::vector<char> finished;         ///< launcher's kFinished notices
  std::vector<int> in_fd;             ///< open in-connection per source (-1 none)
  int pending_unknown = 0;            ///< accepted conns that have not said HELLO
  std::map<Key, std::map<std::uint64_t, std::vector<double>>> stash;
  std::map<Key, std::uint64_t> next_seq;
  std::map<std::uint64_t, double> release;  ///< collective results by generation

  std::uint64_t sync_gen = 0;         ///< program thread only

  // Send-side state (out_mu): lazy connections plus the clean retransmit
  // store that backs NACK recovery (trimmed only between runs — a receiver
  // may NACK any frame of the run until the world tears down).
  std::mutex out_mu;
  std::vector<int> out;
  std::map<Key, std::uint64_t> send_seq;
  std::map<Key, std::map<std::uint64_t, std::vector<double>>> store;
  std::atomic<std::size_t> sends{0};

  RecoveryStats baseline;             ///< counters at fork (ship deltas only)
  std::thread io;

  ~RankRuntime() {
    for (int fd : {ctl, wake_r, wake_w}) {
      if (fd >= 0) ::close(fd);
    }
    for (int fd : out) {
      if (fd >= 0) ::close(fd);
    }
  }

  void wake_io() noexcept {
    const std::uint8_t b = 1;
    (void)!write_all(wake_w, &b, 1);
  }

  void ctl_frame(const WireFrame& f) noexcept {
    std::vector<std::uint8_t> bytes;
    encode_wire_frame(f, bytes);
    std::lock_guard<std::mutex> lock(ctl_mu);
    (void)!write_all(ctl, bytes.data(), bytes.size());
  }

  /// Writes a pre-encoded frame to `dst`, connecting (and re-connecting
  /// once: a killed connection is a *recoverable* physical fault) on demand.
  void write_to(int dst, const std::vector<std::uint8_t>& bytes) noexcept {
    std::lock_guard<std::mutex> lock(out_mu);
    for (int attempt = 0; attempt < 2; ++attempt) {
      if (out[static_cast<std::size_t>(dst)] < 0) {
        const int fd = connect_unix(bk->paths_[static_cast<std::size_t>(dst)]);
        if (fd < 0) return;  // peer gone: recovery/abort machinery takes over
        WireFrame hello;
        hello.kind = WireKind::kHello;
        hello.aux = static_cast<std::uint64_t>(rank);
        std::vector<std::uint8_t> hb;
        encode_wire_frame(hello, hb);
        if (!write_all(fd, hb.data(), hb.size())) {
          ::close(fd);
          return;
        }
        out[static_cast<std::size_t>(dst)] = fd;
      }
      if (write_all(out[static_cast<std::size_t>(dst)], bytes.data(), bytes.size())) return;
      ::close(out[static_cast<std::size_t>(dst)]);
      out[static_cast<std::size_t>(dst)] = -1;
    }
  }

  void write_data(int dst, std::uint64_t tag, std::uint64_t seq,
                  const std::vector<double>& clean, const std::vector<double>* corrupted) {
    WireFrame f;
    f.kind = WireKind::kData;
    f.tag = tag;
    f.seq = seq;
    f.payload = clean;
    std::vector<std::uint8_t> bytes;
    if (corrupted != nullptr) {
      encode_corrupted_wire_frame(f, *corrupted, bytes);
    } else {
      encode_wire_frame(f, bytes);
    }
    write_to(dst, bytes);
  }

  void send_nack(int src, std::uint64_t tag, std::uint64_t seq, int attempt) {
    WireFrame f;
    f.kind = WireKind::kNack;
    f.tag = tag;
    f.seq = seq;
    f.aux = static_cast<std::uint64_t>(attempt);
    std::vector<std::uint8_t> bytes;
    encode_wire_frame(f, bytes);
    write_to(src, bytes);
  }

  /// Serves a peer's retransmission request from the clean store. A NACK for
  /// a frame this rank has not sent yet is ignored — the receiver's deadline
  /// simply fired before our send; the normal transmission will arrive.
  void serve_nack(int dst, std::uint64_t tag, std::uint64_t seq, int attempt) {
    std::vector<double> clean;
    {
      std::lock_guard<std::mutex> lock(out_mu);
      const auto sit = store.find({dst, tag});
      if (sit == store.end()) return;
      const auto pit = sit->second.find(seq);
      if (pit == sit->second.end()) return;
      clean = pit->second;
    }
    if (inj != nullptr && !inj->resend_survives(rank, dst, tag, seq, attempt)) {
      counters->add_drop();  // the retransmission was lost too
      return;
    }
    counters->add_resend();
    write_data(dst, tag, seq, clean, nullptr);
  }

  void handle_data(int src, WireFrame&& f) {
    std::lock_guard<std::mutex> lock(mu);
    const Key key{src, f.tag};
    const auto nit = next_seq.find(key);
    if (nit != next_seq.end() && f.seq < nit->second) {
      counters->add_duplicate_suppressed();  // stale resend survivor
    } else if (!stash[key].emplace(f.seq, std::move(f.payload)).second) {
      counters->add_duplicate_suppressed();  // duplicate arrival
    }
    cv.notify_all();
  }

  void mark_abort() {
    std::lock_guard<std::mutex> lock(mu);
    aborted = true;
    cv.notify_all();
  }

  /// True when nothing from `src` can ever arrive again: the launcher said
  /// the rank is gone AND every byte it managed to put on the wire has been
  /// drained to EOF (kernel buffers outlive the writer, so EOF — not the
  /// death notice — is what makes "no data" conclusive; the in-process
  /// analogue is the finished flag plus the synchronous-delivery argument).
  /// Caller holds mu.
  bool unreachable(int src) const {
    return finished[static_cast<std::size_t>(src)] != 0 &&
           in_fd[static_cast<std::size_t>(src)] < 0 && pending_unknown == 0;
  }

  // ---- IO thread --------------------------------------------------------

  struct Conn {
    int fd = -1;
    int src = -1;  ///< unknown until the HELLO frame
    std::vector<std::uint8_t> buf;
  };

  void close_conn(Conn& c) {
    std::lock_guard<std::mutex> lock(mu);
    if (c.src >= 0) {
      if (in_fd[static_cast<std::size_t>(c.src)] == c.fd) in_fd[static_cast<std::size_t>(c.src)] = -1;
    } else {
      --pending_unknown;
    }
    ::close(c.fd);
    c.fd = -1;
    cv.notify_all();
  }

  /// Decodes every complete frame in the connection's buffer. Returns false
  /// when the stream desynchronised (kBadFrame) and must be closed: the
  /// retry path re-delivers anything the torn stream lost.
  bool drain_conn(Conn& c) {
    std::size_t off = 0;
    bool ok = true;
    for (;;) {
      WireFrame f;
      std::size_t consumed = 0;
      const WireDecode d = decode_wire_frame(c.buf.data() + off, c.buf.size() - off,
                                             cfg.max_payload_doubles, &f, &consumed);
      if (d == WireDecode::kNeedMore) break;
      if (d == WireDecode::kBadFrame) {
        ok = false;
        break;
      }
      off += consumed;
      if (d == WireDecode::kBadPayload) {
        // Header intact, payload damaged: skip exactly this frame and ask
        // for it again — physical corruption recovery.
        counters->add_corruption_detected();
        if (c.src >= 0 && f.kind == WireKind::kData) send_nack(c.src, f.tag, f.seq, 0);
        continue;
      }
      switch (f.kind) {
        case WireKind::kHello: {
          const int src = static_cast<int>(f.aux);
          if (src < 0 || src >= size || src == rank) {
            ok = false;
            break;
          }
          std::lock_guard<std::mutex> lock(mu);
          if (c.src < 0) --pending_unknown;
          c.src = src;
          in_fd[static_cast<std::size_t>(src)] = c.fd;
          break;
        }
        case WireKind::kData:
          if (c.src < 0) {
            ok = false;  // data before HELLO: not one of ours
            break;
          }
          handle_data(c.src, std::move(f));
          break;
        case WireKind::kNack:
          if (c.src >= 0) serve_nack(c.src, f.tag, f.seq, static_cast<int>(f.aux));
          break;
        default:
          ok = false;  // control-only kind on a data stream
          break;
      }
      if (!ok) break;
    }
    if (off != 0) c.buf.erase(c.buf.begin(), c.buf.begin() + static_cast<std::ptrdiff_t>(off));
    return ok;
  }

  void drain_ctl(std::vector<std::uint8_t>& buf) {
    std::size_t off = 0;
    for (;;) {
      WireFrame f;
      std::size_t consumed = 0;
      const WireDecode d = decode_wire_frame(buf.data() + off, buf.size() - off,
                                             cfg.max_payload_doubles, &f, &consumed);
      if (d != WireDecode::kOk) break;  // launcher frames are never corrupt
      off += consumed;
      switch (f.kind) {
        case WireKind::kSyncRelease: {
          std::lock_guard<std::mutex> lock(mu);
          release[f.seq] = f.payload.empty() ? 0.0 : f.payload[0];
          cv.notify_all();
          break;
        }
        case WireKind::kFinished: {
          std::lock_guard<std::mutex> lock(mu);
          if (f.aux < static_cast<std::uint64_t>(size)) finished[f.aux] = 1;
          cv.notify_all();
          break;
        }
        case WireKind::kAbort:
          mark_abort();
          break;
        default:
          break;
      }
    }
    if (off != 0) buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(off));
  }

  void io_loop() {
    std::deque<Conn> conns;
    std::vector<std::uint8_t> ctl_buf;
    auto last_hb = Clock::now() - std::chrono::hours(1);
    bool ctl_alive = true;
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (stop) break;
      }
      const auto now = Clock::now();
      if (ms_between(last_hb, now) >= cfg.heartbeat_interval_ms) {
        WireFrame hb;
        hb.kind = WireKind::kHeartbeat;
        ctl_frame(hb);
        last_hb = now;
      }
      std::vector<pollfd> fds;
      fds.push_back({wake_r, POLLIN, 0});
      fds.push_back({listen_fd, POLLIN, 0});
      if (ctl_alive) fds.push_back({ctl, POLLIN, 0});
      const std::size_t conn_base = fds.size();
      const std::size_t polled_conns = conns.size();  // accepts below grow conns
      for (const Conn& c : conns) fds.push_back({c.fd, POLLIN, 0});
      const int timeout = static_cast<int>(cfg.heartbeat_interval_ms) + 1;
      const int pr = ::poll(fds.data(), fds.size(), timeout);
      if (pr < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (fds[0].revents != 0) {  // wake pipe
        std::uint8_t sink[64];
        while (::read(wake_r, sink, sizeof(sink)) > 0) {
        }
      }
      if (fds[1].revents != 0) {  // new peer connections
        for (;;) {
          const int fd = ::accept(listen_fd, nullptr, nullptr);
          if (fd < 0) break;
          set_nonblocking(fd);
          Conn c;
          c.fd = fd;
          {
            std::lock_guard<std::mutex> lock(mu);
            ++pending_unknown;
          }
          conns.push_back(std::move(c));
        }
      }
      if (ctl_alive && fds[conn_base - 1].revents != 0) {
        bool progress = false;
        if (!read_into(ctl, ctl_buf, &progress)) {
          // Launcher died under us: nothing can complete any more — treat as
          // a world abort with every peer unreachable so the program unwinds.
          ctl_alive = false;
          std::lock_guard<std::mutex> lock(mu);
          aborted = true;
          for (auto& fl : finished) fl = 1;
          cv.notify_all();
        }
        if (progress) drain_ctl(ctl_buf);
      }
      for (std::size_t i = 0; i < polled_conns; ++i) {
        // conns may not shrink inside this loop; EOF-closed entries are
        // swept afterwards.
        if (fds[conn_base + i].revents == 0) continue;
        Conn& c = conns[i];
        bool progress = false;
        const bool alive = read_into(c.fd, c.buf, &progress);
        bool ok = true;
        if (progress) ok = drain_conn(c);
        if (!alive || !ok) close_conn(c);
      }
      for (auto it = conns.begin(); it != conns.end();) {
        it = it->fd < 0 ? conns.erase(it) : std::next(it);
      }
    }
  }

  std::vector<double> stats_payload() {
    return pack_stats(sends.load(), counters->snapshot(), baseline);
  }
};

// ---------------------------------------------------------------------------
// Backend: construction and parent-side lifecycle.

SocketTransport::SocketTransport(World* world, const SocketConfig& config)
    : TransportBackend(world), cfg_(config) {
  if (cfg_.socket_dir.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    std::string templ = std::string(tmp != nullptr && *tmp != '\0' ? tmp : "/tmp") +
                        "/treesvd.XXXXXX";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    TREESVD_REQUIRE(::mkdtemp(buf.data()) != nullptr,
                    "socket backend: mkdtemp failed for listener directory");
    dir_ = buf.data();
    owns_dir_ = true;
  } else {
    dir_ = cfg_.socket_dir;
    ::mkdir(dir_.c_str(), 0700);  // best effort; bind reports real failures
  }
  const int n = world->size();
  pids_ = std::make_unique<std::atomic<long>[]>(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) pids_[static_cast<std::size_t>(r)].store(0);
  listeners_.resize(static_cast<std::size_t>(n), -1);
  paths_.resize(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    const std::string path = dir_ + "/r" + std::to_string(r) + ".sock";
    sockaddr_un addr{};
    TREESVD_REQUIRE(path.size() < sizeof(addr.sun_path),
                    "socket backend: listener path too long: " + path);
    ::unlink(path.c_str());
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    TREESVD_REQUIRE(fd >= 0, "socket backend: socket() failed");
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    TREESVD_REQUIRE(::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0,
                    "socket backend: bind failed for " + path);
    TREESVD_REQUIRE(::listen(fd, 64) == 0, "socket backend: listen failed for " + path);
    set_nonblocking(fd);
    paths_[static_cast<std::size_t>(r)] = path;
    listeners_[static_cast<std::size_t>(r)] = fd;
  }
}

SocketTransport::~SocketTransport() {
  // Never reached in a rank process (children _exit), so this is launcher
  // cleanup only.
  for (int fd : listeners_) {
    if (fd >= 0) ::close(fd);
  }
  for (const std::string& path : paths_) ::unlink(path.c_str());
  if (owns_dir_) ::rmdir(dir_.c_str());
}

void SocketTransport::drain_listener_backlog() noexcept {
  for (int fd : listeners_) {
    for (;;) {
      const int c = ::accept(fd, nullptr, nullptr);
      if (c < 0) break;
      ::close(c);
    }
  }
}

long SocketTransport::process_id(int rank) const noexcept {
  return pids_[static_cast<std::size_t>(rank)].load(std::memory_order_acquire);
}

void SocketTransport::reset_for_replay() {
  // Children are gone (run() reaps every pid before returning) and the
  // kernel reclaimed their streams; what can leak into a replay is the
  // listener backlog — connections a dead rank initiated that no one ever
  // accepted, still holding that run's frames.
  drain_listener_backlog();
}

void SocketTransport::purge_leftovers() {
  // Rank-process mailboxes, stashes and retransmit stores died with their
  // processes at the end of run(); there is nothing left to count.
}

// ---------------------------------------------------------------------------
// Rank-process entry points (called through Context in a forked child).

#define TREESVD_MP_CHILD_ONLY() \
  TREESVD_ASSERT(runtime_ != nullptr && "socket transport op outside a rank process")

void SocketTransport::send(Context& ctx, int dst, std::uint64_t tag, std::vector<double> data) {
  TREESVD_MP_CHILD_ONLY();
  RankRuntime& rt = *runtime_;
  std::uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(rt.out_mu);
    const RankRuntime::Key key{dst, tag};
    seq = rt.send_seq[key]++;
    rt.store[key][seq] = data;  // clean copy backs NACK recovery
  }
  rt.sends.fetch_add(1, std::memory_order_relaxed);
  const FaultAction act = (rt.reliable_on && rt.inj != nullptr)
                              ? rt.inj->action(ctx.rank(), dst, tag, seq)
                              : FaultAction::kDeliver;
  switch (act) {
    case FaultAction::kDeliver:
      rt.write_data(dst, tag, seq, data, nullptr);
      break;
    case FaultAction::kDrop: {
      // Physical drop: the frame never leaves, and the connection it would
      // have ridden is killed — the receiver sees a torn stream, its
      // deadline fires, and the NACK path re-delivers over a reconnect.
      rt.counters->add_drop();
      std::lock_guard<std::mutex> lock(rt.out_mu);
      int& fd = rt.out[static_cast<std::size_t>(dst)];
      if (fd >= 0) {
        ::close(fd);
        fd = -1;
      }
      break;
    }
    case FaultAction::kDuplicate:
      rt.counters->add_duplicate_injected();
      rt.write_data(dst, tag, seq, data, nullptr);
      rt.write_data(dst, tag, seq, data, nullptr);
      break;
    case FaultAction::kCorrupt: {
      rt.counters->add_corruption_injected();
      std::vector<double> damaged = data;
      rt.inj->corrupt_payload(damaged, ctx.rank(), dst, tag, seq);
      rt.write_data(dst, tag, seq, data, &damaged);
      break;
    }
    case FaultAction::kDelay:
      // Physical delay: a real sender stall longer than the receive
      // deadline, so the receiver recovers via NACK and the late original
      // is suppressed by its sequence number on arrival.
      rt.counters->add_delay();
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(rt.cfg.delay_stall_ms));
      rt.write_data(dst, tag, seq, data, nullptr);
      break;
  }
}

std::vector<double> SocketTransport::recv(Context& ctx, int src, std::uint64_t tag) {
  TREESVD_MP_CHILD_ONLY();
  RankRuntime& rt = *runtime_;
  const RankRuntime::Key key{src, tag};
  std::unique_lock<std::mutex> lock(rt.mu);
  const std::uint64_t expected = rt.next_seq[key];
  int attempt = 0;
  double wall_ms = rt.rel.deadline * rt.cfg.recv_deadline_ms;
  double virtual_wait = rt.rel.deadline;
  for (;;) {
    const auto ready = [&] {
      const auto sit = rt.stash.find(key);
      if (sit != rt.stash.end() && sit->second.count(expected) != 0) return true;
      return rt.aborted && rt.unreachable(src);
    };
    bool have = false;
    if (rt.reliable_on) {
      have = rt.cv.wait_for(lock, std::chrono::duration<double, std::milli>(wall_ms), ready);
    } else {
      rt.cv.wait(lock, ready);
      have = true;
    }
    const auto sit = rt.stash.find(key);
    if (sit != rt.stash.end()) {
      const auto pit = sit->second.find(expected);
      if (pit != sit->second.end()) {
        std::vector<double> payload = std::move(pit->second);
        sit->second.erase(pit);
        rt.next_seq[key] = expected + 1;
        return payload;
      }
    }
    if (have) {  // woke on the abort/unreachable arm
      throw WorldAbortedError("recv blocked on dead rank process: src=" + std::to_string(src) +
                              " dst=" + std::to_string(ctx.rank()) +
                              " tag=" + std::to_string(tag) +
                              " seq=" + std::to_string(expected));
    }
    // Wall-clock deadline expired: the frame was lost, torn with its
    // connection, or is stalling in a delayed sender — NACK for a clean
    // retransmission, with the same bounded retry + exponential backoff
    // budget the in-process backend accounts in virtual time.
    if (attempt >= rt.rel.max_retries)
      throw transport_exhausted("socket", src, ctx.rank(), tag, expected, rt.rel.max_retries);
    rt.counters->add_retry();
    rt.counters->add_virtual_backoff(virtual_wait);
    virtual_wait *= rt.rel.backoff;
    wall_ms *= rt.rel.backoff;
    ++attempt;
    lock.unlock();
    rt.send_nack(src, tag, expected, attempt - 1);
    lock.lock();
  }
}

double SocketTransport::allreduce_sum(Context& ctx, double value) {
  TREESVD_MP_CHILD_ONLY();
  RankRuntime& rt = *runtime_;
  std::uint64_t gen = 0;
  {
    std::lock_guard<std::mutex> lock(rt.mu);
    if (rt.aborted)
      throw WorldAbortedError("collective entered on an aborted world: rank " +
                              std::to_string(ctx.rank()));
    gen = rt.sync_gen++;
  }
  WireFrame f;
  f.kind = WireKind::kSync;
  f.seq = gen;
  f.payload = {value};
  rt.ctl_frame(f);
  std::unique_lock<std::mutex> lock(rt.mu);
  rt.cv.wait(lock, [&] { return rt.release.count(gen) != 0 || rt.aborted; });
  const auto it = rt.release.find(gen);
  if (it == rt.release.end())
    throw WorldAbortedError("collective generation " + std::to_string(gen) +
                            " can never complete: rank " + std::to_string(ctx.rank()));
  const double result = it->second;
  rt.release.erase(it);
  return result;
}

void SocketTransport::barrier(Context& ctx) { (void)allreduce_sum(ctx, 0.0); }

void SocketTransport::publish(Context&, std::uint64_t key, std::vector<double> blob) {
  TREESVD_MP_CHILD_ONLY();
  // Locally too, so published()/has_published() behave uniformly inside the
  // rank process (its World copy), not just on the launcher.
  store_blob(key, blob);
  WireFrame f;
  f.kind = WireKind::kPublish;
  f.aux = key;
  f.payload = std::move(blob);
  runtime_->ctl_frame(f);
}

void SocketTransport::execute_kill(Context&, std::uint64_t op) {
  TREESVD_MP_CHILD_ONLY();
  RankRuntime& rt = *runtime_;
  rt.counters->add_kill();
  // Ship the kill notice and this rank's statistics home in one write —
  // the socketpair buffer outlives the process — then die for real.
  WireFrame f;
  f.kind = WireKind::kKilled;
  f.aux = op;
  f.payload = rt.stats_payload();
  rt.ctl_frame(f);
  ::raise(SIGKILL);
  ::_exit(137);  // unreachable; keeps [[noreturn]] honest if SIGKILL is blocked
}

// ---------------------------------------------------------------------------
// run(): fork the ranks, watch them, rebuild the lowest-rank failure.

void SocketTransport::run_child(int rank, int ctl_fd,
                                const std::function<void(Context&)>& program) {
  runtime_ = std::make_unique<RankRuntime>();
  RankRuntime& rt = *runtime_;
  rt.bk = this;
  rt.rank = rank;
  rt.size = world().size();
  rt.cfg = cfg_;
  rt.rel = reliable();
  rt.reliable_on = reliable().enabled;
  rt.inj = injector();
  rt.counters = &counters();
  rt.ctl = ctl_fd;
  set_nonblocking(rt.ctl);  // the IO thread reads it with until-EAGAIN loops
  rt.listen_fd = listeners_[static_cast<std::size_t>(rank)];
  rt.finished.assign(static_cast<std::size_t>(rt.size), 0);
  rt.in_fd.assign(static_cast<std::size_t>(rt.size), -1);
  rt.out.assign(static_cast<std::size_t>(rt.size), -1);
  rt.baseline = rt.counters->snapshot();
  int wake[2] = {-1, -1};
  if (::pipe(wake) == 0) {
    set_nonblocking(wake[0]);
    set_nonblocking(wake[1]);
  }
  rt.wake_r = wake[0];
  rt.wake_w = wake[1];
  rt.io = std::thread([&rt] { rt.io_loop(); });

  int code = 0;
  int err_kind = kErrOther;
  std::string err_msg;
  {
    Context ctx = make_context(&world(), rank);
    try {
      program(ctx);
    } catch (const WorldAbortedError& e) {
      code = 2;
      err_kind = kErrWorldAborted;
      err_msg = e.what();
    } catch (const TransportError& e) {
      code = 3;
      err_kind = kErrTransport;
      err_msg = e.what();
    } catch (const RankKilledError& e) {
      code = 4;
      err_kind = kErrRankKilled;
      err_msg = e.what();
    } catch (const std::invalid_argument& e) {
      code = 5;
      err_kind = kErrInvalidArgument;
      err_msg = e.what();
    } catch (const std::logic_error& e) {
      code = 6;
      err_kind = kErrLogic;
      err_msg = e.what();
    } catch (const std::exception& e) {
      code = 7;
      err_kind = kErrOther;
      err_msg = e.what();
    } catch (...) {
      code = 7;
      err_kind = kErrOther;
      err_msg = "non-standard exception";
    }
  }
  {
    std::lock_guard<std::mutex> lock(rt.mu);
    rt.stop = true;
  }
  rt.wake_io();
  rt.io.join();
  if (code != 0) {
    WireFrame f;
    f.kind = WireKind::kError;
    f.aux = static_cast<std::uint64_t>(err_kind);
    f.payload = pack_string(err_msg);
    rt.ctl_frame(f);
  }
  WireFrame f;
  f.kind = WireKind::kExit;
  f.payload = rt.stats_payload();
  rt.ctl_frame(f);
  // _exit, not exit: a forked copy of the launcher must not run its static
  // destructors (or flush its inherited stdio buffers twice).
  ::_exit(code);
}

namespace {

/// Launcher-side view of one rank process.
struct ChildMon {
  long pid = 0;
  int ctl = -1;
  std::vector<std::uint8_t> buf;
  bool ctl_open = true;
  bool exited = false;
  bool finished_sent = false;  ///< kFinished broadcast done for this rank
  // Terminal records, in launcher-priority order.
  bool killed_frame = false;   ///< planned kill: kKilled arrived
  std::uint64_t kill_op = 0;
  bool external = false;       ///< died by a signal with no kKilled notice
  int ext_sig = 0;
  std::string ext_detail;
  bool has_error = false;
  int err_kind = -1;
  std::string err_msg;
  Clock::time_point hb;
};

struct SyncGather {
  int count = 0;
  std::vector<double> values;
};

}  // namespace

void SocketTransport::run(const std::function<void(Context&)>& program) {
  TREESVD_ASSERT(runtime_ == nullptr);  // no nested worlds inside a rank process
  const int n = world().size();
  drain_listener_backlog();

  std::vector<int> ctl_parent(static_cast<std::size_t>(n), -1);
  std::vector<int> ctl_child(static_cast<std::size_t>(n), -1);
  for (int r = 0; r < n; ++r) {
    int sv[2] = {-1, -1};
    TREESVD_REQUIRE(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0,
                    "socket backend: control socketpair failed");
    ctl_parent[static_cast<std::size_t>(r)] = sv[0];
    ctl_child[static_cast<std::size_t>(r)] = sv[1];
  }

  std::vector<ChildMon> mon(static_cast<std::size_t>(n));
  const auto start = Clock::now();
  // Flush once so forked children never carry (and later re-emit) buffered
  // launcher output.
  std::fflush(nullptr);
  for (int r = 0; r < n; ++r) {
    const pid_t pid = ::fork();
    TREESVD_REQUIRE(pid >= 0, "socket backend: fork failed");
    if (pid == 0) {
      for (int i = 0; i < n; ++i) {
        ::close(ctl_parent[static_cast<std::size_t>(i)]);
        if (i != r) ::close(ctl_child[static_cast<std::size_t>(i)]);
        if (i != r) ::close(listeners_[static_cast<std::size_t>(i)]);
      }
      run_child(r, ctl_child[static_cast<std::size_t>(r)], program);  // never returns
    }
    ::close(ctl_child[static_cast<std::size_t>(r)]);
    ctl_child[static_cast<std::size_t>(r)] = -1;
    pids_[static_cast<std::size_t>(r)].store(pid, std::memory_order_release);
    ChildMon& m = mon[static_cast<std::size_t>(r)];
    m.pid = pid;
    m.ctl = ctl_parent[static_cast<std::size_t>(r)];
    set_nonblocking(m.ctl);
    m.hb = start;
  }

  std::map<std::uint64_t, SyncGather> syncs;
  bool abort_sent = false;

  const auto broadcast = [&](const WireFrame& f, int except) {
    std::vector<std::uint8_t> bytes;
    encode_wire_frame(f, bytes);
    for (int r = 0; r < n; ++r) {
      ChildMon& m = mon[static_cast<std::size_t>(r)];
      if (r == except || !m.ctl_open) continue;
      (void)!write_all(m.ctl, bytes.data(), bytes.size());
    }
  };
  const auto trigger_abort = [&] {
    if (abort_sent) return;
    abort_sent = true;
    set_world_aborted(true);
    WireFrame f;
    f.kind = WireKind::kAbort;
    broadcast(f, -1);
  };
  const auto announce_exit = [&](int r) {
    ChildMon& m = mon[static_cast<std::size_t>(r)];
    if (m.finished_sent) return;
    m.finished_sent = true;
    WireFrame f;
    f.kind = WireKind::kFinished;
    f.aux = static_cast<std::uint64_t>(r);
    broadcast(f, r);
  };
  const auto ingest_stats = [&](const std::vector<double>& payload) {
    std::size_t sends = 0;
    const RecoveryStats delta = unpack_stats(payload, &sends);
    counters().accumulate(delta);
    count_sends(sends);
  };

  for (;;) {
    bool all_done = true;
    for (const ChildMon& m : mon) {
      all_done = all_done && m.exited && !m.ctl_open;
    }
    if (all_done) break;

    std::vector<pollfd> fds;
    std::vector<int> fd_rank;
    for (int r = 0; r < n; ++r) {
      if (!mon[static_cast<std::size_t>(r)].ctl_open) continue;
      fds.push_back({mon[static_cast<std::size_t>(r)].ctl, POLLIN, 0});
      fd_rank.push_back(r);
    }
    if (!fds.empty()) {
      const int pr = ::poll(fds.data(), fds.size(), 20);
      if (pr < 0 && errno != EINTR)
        throw TransportError("mp[socket]: launcher poll failed: " +
                             std::string(std::strerror(errno)));
    }
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      const int r = fd_rank[i];
      ChildMon& m = mon[static_cast<std::size_t>(r)];
      bool progress = false;
      const bool alive = read_into(m.ctl, m.buf, &progress);
      if (progress) {
        std::size_t off = 0;
        for (;;) {
          WireFrame f;
          std::size_t consumed = 0;
          const WireDecode d = decode_wire_frame(m.buf.data() + off, m.buf.size() - off,
                                                 cfg_.max_payload_doubles, &f, &consumed);
          if (d == WireDecode::kNeedMore) break;
          if (d != WireDecode::kOk) {
            // A torn control stream means the rank process is damaged in a
            // way the protocol cannot survive; put it down.
            if (!m.has_error) {
              m.has_error = true;
              m.err_kind = kErrOther;
              m.err_msg = "mp[socket]: control-stream desync from rank " + std::to_string(r);
            }
            if (!m.exited && m.pid != 0) ::kill(static_cast<pid_t>(m.pid), SIGKILL);
            m.buf.clear();
            break;
          }
          off += consumed;
          switch (f.kind) {
            case WireKind::kHeartbeat:
              m.hb = Clock::now();
              break;
            case WireKind::kSync: {
              SyncGather& g = syncs[f.seq];
              if (g.values.empty()) g.values.assign(static_cast<std::size_t>(n), 0.0);
              g.values[static_cast<std::size_t>(r)] = f.payload.empty() ? 0.0 : f.payload[0];
              if (++g.count == n) {
                // Rank-order summation: deterministic regardless of arrival
                // order (at least as strong as the in-process backend).
                double sum = 0.0;
                for (double v : g.values) sum += v;
                WireFrame rel;
                rel.kind = WireKind::kSyncRelease;
                rel.seq = f.seq;
                rel.payload = {sum};
                broadcast(rel, -1);
                syncs.erase(f.seq);
              }
              break;
            }
            case WireKind::kPublish:
              store_blob(f.aux, std::move(f.payload));
              break;
            case WireKind::kKilled:
              m.killed_frame = true;
              m.kill_op = f.aux;
              ingest_stats(f.payload);
              // The child consumed the kill latch in its own forked memory;
              // latch the launcher's copy so a respawned world replays past
              // the kill instead of re-firing it.
              if (injector() != nullptr) injector()->latch_kill();
              break;
            case WireKind::kError:
              if (!m.has_error) {
                m.has_error = true;
                m.err_kind = static_cast<int>(f.aux);
                m.err_msg = unpack_string(f.payload);
              }
              break;
            case WireKind::kExit:
              ingest_stats(f.payload);
              break;
            default:
              break;
          }
        }
        if (off != 0 && !m.buf.empty())
          m.buf.erase(m.buf.begin(), m.buf.begin() + static_cast<std::ptrdiff_t>(off));
      }
      if (!alive) {
        ::close(m.ctl);
        m.ctl_open = false;
      }
    }

    const auto now = Clock::now();
    for (int r = 0; r < n; ++r) {
      ChildMon& m = mon[static_cast<std::size_t>(r)];
      if (m.exited) continue;
      int status = 0;
      const pid_t got = ::waitpid(static_cast<pid_t>(m.pid), &status, WNOHANG);
      if (got == static_cast<pid_t>(m.pid)) {
        m.exited = true;
        pids_[static_cast<std::size_t>(r)].store(0, std::memory_order_release);
        if (WIFSIGNALED(status) && !m.killed_frame && !m.external) {
          m.external = true;
          m.ext_sig = WTERMSIG(status);
          m.ext_detail = "external kill while mid-run";
        }
        if (WIFEXITED(status) && WEXITSTATUS(status) != 0 && !m.has_error) {
          m.has_error = true;
          m.err_kind = kErrOther;
          m.err_msg = "mp[socket]: rank " + std::to_string(r) + " exited with status " +
                      std::to_string(WEXITSTATUS(status)) + " without reporting an error";
        }
        announce_exit(r);
        const bool failed = m.killed_frame || m.external ||
                            (m.has_error && m.err_kind != kErrWorldAborted);
        if (failed) trigger_abort();
        continue;
      }
      // Hang detection: a rank whose heartbeat went silent is declared dead
      // and SIGKILLed — it then feeds the exact abort/respawn path a planned
      // kill does, just with an "external" diagnosis.
      if (ms_between(m.hb, now) > cfg_.heartbeat_timeout_ms) {
        m.external = true;
        m.ext_sig = SIGKILL;
        m.ext_detail = "heartbeat silent for " +
                       std::to_string(static_cast<long>(ms_between(m.hb, now))) + " ms";
        m.hb = now;  // one kill per silence
        ::kill(static_cast<pid_t>(m.pid), SIGKILL);
      }
    }
  }

  for (int r = 0; r < n; ++r) pids_[static_cast<std::size_t>(r)].store(0);

  // All ranks reaped and drained. Rethrow deterministically: the lowest-rank
  // primary failure wins; secondary WorldAbortedError unwindings surface
  // solely when no primary exists — the in-process contract, verbatim.
  for (int r = 0; r < n; ++r) {
    const ChildMon& m = mon[static_cast<std::size_t>(r)];
    if (m.killed_frame) throw RankKilledError(r, m.kill_op);
    if (m.external) throw RankKilledError(RankKilledError::External{}, r, m.ext_sig, m.ext_detail);
    if (m.has_error && m.err_kind != kErrWorldAborted) {
      switch (m.err_kind) {
        case kErrTransport:
          throw TransportError(m.err_msg);
        case kErrInvalidArgument:
          throw std::invalid_argument(m.err_msg);
        case kErrLogic:
          throw std::logic_error(m.err_msg);
        default:
          throw std::runtime_error(m.err_msg);
      }
    }
  }
  for (int r = 0; r < n; ++r) {
    const ChildMon& m = mon[static_cast<std::size_t>(r)];
    if (m.has_error && m.err_kind == kErrWorldAborted)
      throw WorldAbortedError("rank " + std::to_string(r) + " unwound: " + m.err_msg);
  }
}

}  // namespace treesvd::mp
