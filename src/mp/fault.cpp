#include "mp/fault.hpp"

#include <cmath>
#include <cstring>
#include <limits>

namespace treesvd::mp {
namespace {

/// splitmix64 finalizer — the same mixer util::Rng seeds through, used here
/// directly so a decision needs no generator state at all.
std::uint64_t mix(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Hash of one message identity under the plan seed. `salt` separates the
/// independent decision streams (action, corruption site, resend attempts).
std::uint64_t identity_hash(std::uint64_t seed, int src, int dst, std::uint64_t tag,
                            std::uint64_t seq, std::uint64_t salt) noexcept {
  std::uint64_t h = mix(seed ^ salt);
  h = mix(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)));
  h = mix(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 32));
  h = mix(h ^ tag);
  h = mix(h ^ seq);
  return h;
}

/// Uniform double in [0, 1) from a hash (53 mantissa bits).
double unit(std::uint64_t h) noexcept { return static_cast<double>(h >> 11) * 0x1.0p-53; }

constexpr std::uint64_t kActionSalt = 0xAC710Dull;
constexpr std::uint64_t kCorruptSalt = 0xC0552Dull;
constexpr std::uint64_t kResendSalt = 0x5E5EBDull;

}  // namespace

FaultAction FaultInjector::action(int src, int dst, std::uint64_t tag, std::uint64_t seq) const {
  if (!plan_.has_message_faults()) return FaultAction::kDeliver;
  const double u = unit(identity_hash(plan_.seed, src, dst, tag, seq, kActionSalt));
  double edge = plan_.drop_prob;
  if (u < edge) return FaultAction::kDrop;
  edge += plan_.duplicate_prob;
  if (u < edge) return FaultAction::kDuplicate;
  edge += plan_.corrupt_prob;
  if (u < edge) return FaultAction::kCorrupt;
  edge += plan_.delay_prob;
  if (u < edge) return FaultAction::kDelay;
  return FaultAction::kDeliver;
}

bool FaultInjector::resend_survives(int src, int dst, std::uint64_t tag, std::uint64_t seq,
                                    int attempt) const {
  if (!plan_.enabled || plan_.resend_drop_prob <= 0.0) return true;
  const std::uint64_t h = identity_hash(plan_.seed, src, dst, tag, seq,
                                        kResendSalt + static_cast<std::uint64_t>(attempt));
  return unit(h) >= plan_.resend_drop_prob;
}

void FaultInjector::corrupt_payload(std::vector<double>& payload, int src, int dst,
                                    std::uint64_t tag, std::uint64_t seq) const {
  if (payload.empty()) return;
  const std::uint64_t h = identity_hash(plan_.seed, src, dst, tag, seq, kCorruptSalt);
  const std::size_t at = static_cast<std::size_t>(h % payload.size());
  if ((h >> 32) & 1u) {
    payload[at] = std::numeric_limits<double>::quiet_NaN();
  } else {
    // Flip a mantissa-or-above bit so the value changes for any input.
    std::uint64_t bits = 0;
    std::memcpy(&bits, &payload[at], sizeof(bits));
    bits ^= 1ULL << ((h >> 33) % 63);
    std::memcpy(&payload[at], &bits, sizeof(bits));
  }
}

bool FaultInjector::should_kill(int rank, std::uint64_t op) {
  if (!plan_.enabled || plan_.kill_rank != rank || plan_.kill_at_op != op) return false;
  bool expected = false;
  return kill_fired_.compare_exchange_strong(expected, true);
}

bool FaultInjector::should_stall(int rank, std::uint64_t op) const {
  return plan_.enabled && plan_.stall_rank == rank && plan_.stall_at_op == op;
}

}  // namespace treesvd::mp
