#pragma once
// Minimal message-passing runtime (a CMMD/MPI-flavoured substrate).
//
// The paper's implementation target was the CM-5's message-passing library;
// this header provides the same programming model behind one interface and
// two transport backends (DESIGN.md section 15):
//
//   * Backend::kInproc (default) — an SPMD world of P ranks (std::threads)
//     with per-rank mailboxes in shared memory. Faults are simulated and
//     deadlines run on virtual time.
//   * Backend::kSocket — every rank is its own OS process, exchanging the
//     same frames over UNIX-domain stream sockets; the launcher process
//     coordinates collectives, heartbeats and respawn. Faults are physical
//     (a dropped frame is a killed connection, a delay is a real stall, a
//     kill is SIGKILL) and receive deadlines run on the wall clock.
//
// Semantics (identical across backends):
//   * send(dst, tag, data) — asynchronous (buffered), never blocks.
//                            dst must be a valid, different rank.
//   * recv(src, tag)       — blocks until a matching message arrives;
//                            messages from one src with one tag arrive in
//                            send order. src must be a valid, different rank.
//   * barrier()            — all ranks.
//   * allreduce_sum(x)     — returns the sum over all ranks.
//   * publish(key, blob)   — durable result board: the blob survives rank
//                            exit (and, on the socket backend, rank death)
//                            and is read back with World::published() after
//                            run() returns, or by a respawned rank. This is
//                            how multi-process engines return results and
//                            keep checkpoints across respawns.
//
// Fault tolerance (opt-in, see mp/fault.hpp):
//   * set_reliable(cfg) layers a reliable transport over send/recv: frames
//     carry a per-(src, dst, tag) sequence number and a payload checksum;
//     recv validates both, suppresses duplicates/stale frames, and when a
//     frame is lost, delayed past the deadline, or corrupted it recovers the
//     *clean* payload from the sender's retransmit store with bounded retry
//     and deterministic exponential backoff (virtual time in-process; real
//     NACK round-trips with wall-clock deadlines over sockets). Below the
//     retry budget, delivered payloads are bit-identical to a fault-free
//     run; beyond it recv throws TransportError naming (src, dst, tag, seq,
//     attempts).
//   * set_fault_plan(plan) installs a seeded deterministic fault injector
//     (drop/duplicate/corrupt/delay per message, kill/stall per rank); see
//     FaultPlan. Message faults require the reliable transport.
//   * When any rank's program throws, the world aborts — deterministically.
//     A blocked recv gives up (WorldAbortedError, a secondary failure) only
//     once its *source rank has finished*, never merely because the abort
//     flag is up: a message that is still coming from a live peer is always
//     waited for, so every surviving rank runs exactly its maximal
//     deterministic prefix and the fault/recovery counters are reproducible
//     bit-for-bit (in-process; over sockets the wall clock makes retry
//     counts timing-dependent, but delivered payloads stay bit-identical).
//     Collectives throw on abort outright (a dead rank can never complete
//     them). run() joins *all* ranks, then rethrows the lowest-rank primary
//     exception. reset_for_replay() rearms an aborted world so an engine can
//     roll back to a checkpoint and replay (svd/spmd.cpp does).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mp/fault.hpp"

namespace treesvd::mp {

/// A message: raw doubles (plus a 2-double [seq, checksum] header while a
/// frame is in flight on the reliable transport).
struct Packet {
  std::vector<double> data;
};

/// Which transport carries the world's messages.
enum class Backend {
  kInproc,  ///< ranks are threads; mailboxes in shared memory (default)
  kSocket,  ///< ranks are processes; UNIX-domain stream sockets
};

/// Knobs for the socket backend. Durations are wall-clock milliseconds —
/// unlike the in-process backend there is no virtual time to hide behind.
struct SocketConfig {
  /// Base receive deadline before the first NACK; ReliableConfig::deadline
  /// scales it and ReliableConfig::backoff grows it per retry.
  double recv_deadline_ms = 25.0;
  /// Child -> launcher liveness beacon cadence.
  double heartbeat_interval_ms = 25.0;
  /// Silence after which the launcher declares a rank hung and SIGKILLs it
  /// (feeding the same abort/respawn path as a planned kill).
  double heartbeat_timeout_ms = 10000.0;
  /// Physical length of an injected delay fault (must exceed the receive
  /// deadline for the delay to exercise the recovery path, like the
  /// in-process backend's "delayed frames are lost" rule).
  double delay_stall_ms = 120.0;
  /// Upper bound a receiver accepts in one frame; a corrupted length field
  /// is rejected by checksum before this, so this bounds only legal senders.
  std::size_t max_payload_doubles = std::size_t{1} << 20;
  /// Directory for the per-rank listener sockets (empty: a fresh mkdtemp
  /// under $TMPDIR, removed with the World).
  std::string socket_dir;
};

class World;
class TransportBackend;

/// Per-rank handle passed to the SPMD program.
class Context {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  /// Buffered send; never blocks. Requires 0 <= dst < size() and dst != rank()
  /// (send-to-self is a program bug: local state needs no mailbox).
  void send(int dst, std::uint64_t tag, std::vector<double> data);

  /// Blocking receive of the next message from `src` with `tag`.
  /// Requires 0 <= src < size() and src != rank().
  std::vector<double> recv(int src, std::uint64_t tag);

  /// Synchronises all ranks.
  void barrier();

  /// Sum of `value` over all ranks (synchronising).
  double allreduce_sum(double value);

  /// Posts a blob to the world's durable result board (overwrites the key).
  /// Readable with World::published() after run(), and by respawned ranks —
  /// the only rank-written state guaranteed to survive process death.
  void publish(std::uint64_t key, std::vector<double> blob);

 private:
  friend class World;
  friend class TransportBackend;
  Context(World* world, int rank);
  /// Applies the fault plan's kill/stall schedule to this transport op.
  void check_rank_faults();
  World* world_;
  int rank_;
  bool hooks_enabled_;          ///< analysis hooks are in-process only
  std::uint64_t ops_ = 0;       ///< transport ops performed (kill/stall keying)
  std::uint64_t hook_ops_ = 0;  ///< analysis-hook salt; never keys fault plans
};

/// An SPMD world: P ranks behind a pluggable transport backend.
class World {
 public:
  explicit World(int ranks);
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const noexcept { return ranks_; }

  /// Selects the transport (call before run(); kInproc is the default).
  /// Reliable/fault/recovery configuration is shared, so a program moves
  /// between backends without any other change.
  void set_backend(Backend backend, const SocketConfig& config = {});

  Backend backend() const noexcept { return backend_kind_; }
  const char* backend_name() const noexcept;
  /// True when ranks are OS processes (kSocket): rank-local memory does not
  /// survive run() — results must travel via publish().
  bool multiprocess() const noexcept;

  /// Runs program(ctx) on every rank concurrently; returns when all finish.
  /// If ranks fail, every rank is joined/reaped first, then the exception
  /// from the lowest failing rank is rethrown (documented tie-break: rank
  /// order, with secondary WorldAbortedError unwindings surfaced only when
  /// no primary program exception exists).
  void run(const std::function<void(Context&)>& program);

  /// Total logical messages sent since construction (for tests/stats); under
  /// a fault plan this counts sends, whether or not the frame survived.
  std::size_t delivered() const noexcept { return delivered_.load(); }

  /// Enables the reliable transport (call before run()).
  void set_reliable(const ReliableConfig& config);

  /// Installs a deterministic fault schedule (call before run()). Message
  /// faults (drop/duplicate/corrupt/delay/resend-drop) require the reliable
  /// transport to be enabled first.
  void set_fault_plan(const FaultPlan& plan);

  /// Snapshot of every transport/recovery counter.
  RecoveryStats recovery_stats() const noexcept { return counters_.snapshot(); }

  /// Shared counters — engines add their checkpoint/rollback/watchdog events
  /// here so one snapshot covers the whole recovery story.
  RecoveryCounters& recovery_counters() noexcept { return counters_; }

  /// True once a rank failure has aborted the world (cleared by
  /// reset_for_replay).
  bool aborted() const noexcept { return aborted_.load(std::memory_order_acquire); }

  /// Rearms an aborted world for a checkpoint replay: clears all mailboxes,
  /// in-flight frames, sequence state and collective state. Cumulative
  /// statistics, the one-shot kill latch, and the published-blob board
  /// persist, so a replay proceeds past the kill, keeps the full fault
  /// history, and can restore from published checkpoints. Misuse throws
  /// std::invalid_argument: only call between run()s, and only on a world
  /// that actually aborted (calling it twice, or on a healthy world, would
  /// otherwise silently discard live state).
  void reset_for_replay();

  /// After a completed run under the reliable transport: discards leftover
  /// frames (suppressed duplicates and delayed stragglers), accounting them
  /// in RecoveryStats::duplicates_suppressed, and releases the retransmit
  /// store. Misuse throws std::invalid_argument: only call between run()s,
  /// only with the reliable transport enabled, only after a run completed
  /// since the last purge, and never on an aborted world (reset_for_replay
  /// owns that path — purging would destroy the frames a replay audit
  /// counts).
  void purge_leftovers();

  /// True when `key` has been publish()ed (by any rank, any run).
  bool has_published(std::uint64_t key) const;

  /// Reads a published blob; throws std::invalid_argument for a missing key.
  std::vector<double> published(std::uint64_t key) const;

  /// OS process id of a rank while run() is live on a multiprocess backend
  /// (0 otherwise) — lets chaos harnesses deliver real signals.
  long process_id(int rank) const noexcept;

 private:
  friend class Context;
  friend class TransportBackend;

  int ranks_;
  Backend backend_kind_ = Backend::kInproc;
  std::unique_ptr<TransportBackend> backend_;

  std::atomic<std::size_t> delivered_{0};

  // Fault tolerance (shared across backends).
  ReliableConfig reliable_;
  std::unique_ptr<FaultInjector> injector_;
  RecoveryCounters counters_;
  std::atomic<bool> aborted_{false};

  // Misuse guards (single caller thread, like run() itself).
  std::atomic<bool> running_{false};
  bool purgeable_ = false;

  // Durable result board.
  mutable std::mutex blob_mu_;
  std::map<std::uint64_t, std::vector<double>> blobs_;
};

}  // namespace treesvd::mp
