#pragma once
// Minimal message-passing runtime (a CMMD/MPI-flavoured substrate).
//
// The paper's implementation target was the CM-5's message-passing library;
// this header provides the same programming model in-process: an SPMD world
// of P ranks (std::threads), blocking tagged send/recv with per-rank
// mailboxes, barriers, and a sum-allreduce. svd/spmd.hpp builds the actual
// rank-per-leaf Jacobi program on top of it.
//
// Semantics:
//   * send(dst, tag, data) — asynchronous (buffered), never blocks.
//   * recv(src, tag)       — blocks until a matching message arrives;
//                            messages from one src with one tag arrive in
//                            send order.
//   * barrier()            — all ranks.
//   * allreduce_sum(x)     — returns the sum over all ranks.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace treesvd::mp {

/// A message: raw doubles plus the sender's tag.
struct Packet {
  std::vector<double> data;
};

class World;

/// Per-rank handle passed to the SPMD program.
class Context {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  /// Buffered send; never blocks.
  void send(int dst, std::uint64_t tag, std::vector<double> data);

  /// Blocking receive of the next message from `src` with `tag`.
  std::vector<double> recv(int src, std::uint64_t tag);

  /// Synchronises all ranks.
  void barrier();

  /// Sum of `value` over all ranks (synchronising).
  double allreduce_sum(double value);

 private:
  friend class World;
  Context(World* world, int rank) : world_(world), rank_(rank) {}
  World* world_;
  int rank_;
};

/// An SPMD world: constructs P mailboxes and runs a program on P threads.
class World {
 public:
  explicit World(int ranks);

  int size() const noexcept { return static_cast<int>(mailboxes_.size()); }

  /// Runs program(ctx) on every rank concurrently; returns when all finish.
  /// Exceptions thrown by any rank are rethrown (first one wins).
  void run(const std::function<void(Context&)>& program);

  /// Total messages delivered since construction (for tests/stats).
  std::size_t delivered() const noexcept { return delivered_.load(); }

 private:
  friend class Context;

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    // key: (src, tag)
    std::map<std::pair<int, std::uint64_t>, std::deque<Packet>> queues;
  };

  void deliver(int dst, int src, std::uint64_t tag, std::vector<double> data);
  std::vector<double> take(int rank, int src, std::uint64_t tag);
  void barrier_wait();

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  // Barrier + allreduce state.
  std::mutex sync_mu_;
  std::condition_variable sync_cv_;
  int sync_waiting_ = 0;
  std::uint64_t sync_generation_ = 0;
  double reduce_accum_ = 0.0;
  double reduce_result_ = 0.0;

  std::atomic<std::size_t> delivered_{0};
};

}  // namespace treesvd::mp
