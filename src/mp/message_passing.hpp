#pragma once
// Minimal message-passing runtime (a CMMD/MPI-flavoured substrate).
//
// The paper's implementation target was the CM-5's message-passing library;
// this header provides the same programming model in-process: an SPMD world
// of P ranks (std::threads), blocking tagged send/recv with per-rank
// mailboxes, barriers, and a sum-allreduce. svd/spmd.hpp builds the actual
// rank-per-leaf Jacobi program on top of it.
//
// Semantics:
//   * send(dst, tag, data) — asynchronous (buffered), never blocks.
//                            dst must be a valid, different rank.
//   * recv(src, tag)       — blocks until a matching message arrives;
//                            messages from one src with one tag arrive in
//                            send order. src must be a valid, different rank.
//   * barrier()            — all ranks.
//   * allreduce_sum(x)     — returns the sum over all ranks.
//
// Fault tolerance (opt-in, see mp/fault.hpp):
//   * set_reliable(cfg) layers a reliable transport over send/recv: frames
//     carry a per-(src, dst, tag) sequence number and a payload checksum;
//     recv validates both, suppresses duplicates/stale frames, and when a
//     frame is lost, delayed past the deadline, or corrupted it recovers the
//     *clean* payload from the sender's retransmit store with bounded retry
//     and deterministic exponential backoff (virtual time — the NACK/resend
//     round-trips are accounted in RecoveryStats, never waited on a wall
//     clock). Below the retry budget, delivered payloads are bit-identical
//     to a fault-free run; beyond it recv throws TransportError.
//   * set_fault_plan(plan) installs a seeded deterministic fault injector
//     (drop/duplicate/corrupt/delay per message, kill/stall per rank); see
//     FaultPlan. Message faults require the reliable transport.
//   * When any rank's program throws, the world aborts — deterministically.
//     A blocked recv gives up (WorldAbortedError, a secondary failure) only
//     once its *source rank has finished*, never merely because the abort
//     flag is up: a message that is still coming from a live peer is always
//     waited for, so every surviving rank runs exactly its maximal
//     deterministic prefix and the fault/recovery counters are reproducible
//     bit-for-bit. Collectives throw on abort outright (a dead rank can
//     never complete them). run() joins *all* ranks, then rethrows the
//     lowest-rank primary exception. reset_for_replay() rearms an aborted
//     world so an engine can roll back to a checkpoint and replay
//     (svd/spmd.cpp does).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "mp/fault.hpp"

namespace treesvd::mp {

/// A message: raw doubles (plus a 2-double [seq, checksum] header while a
/// frame is in flight on the reliable transport).
struct Packet {
  std::vector<double> data;
};

class World;

/// Per-rank handle passed to the SPMD program.
class Context {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  /// Buffered send; never blocks. Requires 0 <= dst < size() and dst != rank()
  /// (send-to-self is a program bug: local state needs no mailbox).
  void send(int dst, std::uint64_t tag, std::vector<double> data);

  /// Blocking receive of the next message from `src` with `tag`.
  /// Requires 0 <= src < size() and src != rank().
  std::vector<double> recv(int src, std::uint64_t tag);

  /// Synchronises all ranks.
  void barrier();

  /// Sum of `value` over all ranks (synchronising).
  double allreduce_sum(double value);

 private:
  friend class World;
  Context(World* world, int rank) : world_(world), rank_(rank) {}
  /// Applies the fault plan's kill/stall schedule to this transport op.
  void check_rank_faults();
  World* world_;
  int rank_;
  std::uint64_t ops_ = 0;       ///< transport ops performed (kill/stall keying)
  std::uint64_t hook_ops_ = 0;  ///< analysis-hook salt; never keys fault plans
};

/// An SPMD world: constructs P mailboxes and runs a program on P threads.
class World {
 public:
  explicit World(int ranks);

  int size() const noexcept { return static_cast<int>(mailboxes_.size()); }

  /// Runs program(ctx) on every rank concurrently; returns when all finish.
  /// If ranks throw, every rank is joined first, then the exception from the
  /// lowest failing rank is rethrown (documented tie-break: rank order, with
  /// secondary WorldAbortedError unwindings surfaced only when no primary
  /// program exception exists).
  void run(const std::function<void(Context&)>& program);

  /// Total logical messages sent since construction (for tests/stats); under
  /// a fault plan this counts sends, whether or not the frame survived.
  std::size_t delivered() const noexcept { return delivered_.load(); }

  /// Enables the reliable transport (call before run()).
  void set_reliable(const ReliableConfig& config);

  /// Installs a deterministic fault schedule (call before run()). Message
  /// faults (drop/duplicate/corrupt/delay/resend-drop) require the reliable
  /// transport to be enabled first.
  void set_fault_plan(const FaultPlan& plan);

  /// Snapshot of every transport/recovery counter.
  RecoveryStats recovery_stats() const noexcept { return counters_.snapshot(); }

  /// Shared counters — engines add their checkpoint/rollback/watchdog events
  /// here so one snapshot covers the whole recovery story.
  RecoveryCounters& recovery_counters() noexcept { return counters_; }

  /// True once a rank failure has aborted the world (cleared by
  /// reset_for_replay).
  bool aborted() const noexcept { return aborted_.load(std::memory_order_acquire); }

  /// Rearms an aborted world for a checkpoint replay: clears all mailboxes,
  /// in-flight frames, sequence state and collective state. Cumulative
  /// statistics and the one-shot kill latch persist, so a replay proceeds
  /// past the kill and keeps the full fault history. Only call between
  /// run()s.
  void reset_for_replay();

  /// After a completed run under the reliable transport: discards leftover
  /// frames (suppressed duplicates and delayed stragglers), accounting them
  /// in RecoveryStats::duplicates_suppressed, and releases the retransmit
  /// store. Only call between run()s.
  void purge_leftovers();

 private:
  friend class Context;

  using Key = std::pair<int, std::uint64_t>;  ///< (src, tag)

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    /// This rank's thread has exited (normally or by exception). Receivers
    /// blocked on this rank as a *source* use it to decide, deterministically,
    /// that the expected message can never arrive.
    std::atomic<bool> finished{false};
    std::map<Key, std::deque<Packet>> queues;
    // Reliable-transport state (guarded by mu).
    std::map<Key, std::uint64_t> send_seq;  ///< sender side: next seq to assign
    std::map<Key, std::uint64_t> next_seq;  ///< receiver side: next expected seq
    std::map<Key, std::map<std::uint64_t, std::vector<double>>> store;  ///< clean copies
  };

  void deliver(int dst, int src, std::uint64_t tag, std::vector<double> data);
  std::vector<double> take(int rank, int src, std::uint64_t tag);
  /// Recovers the clean payload for `seq` from the retransmit store with
  /// bounded retry; caller holds box.mu. Throws TransportError past budget.
  std::vector<double> recover_locked(Mailbox& box, const Key& key, std::uint64_t seq, int src,
                                     int dst, std::uint64_t tag);
  void barrier_wait();
  /// Wakes every blocked rank with WorldAbortedError (idempotent).
  void abort_world() noexcept;

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  // Barrier + allreduce state.
  std::mutex sync_mu_;
  std::condition_variable sync_cv_;
  int sync_waiting_ = 0;
  std::uint64_t sync_generation_ = 0;
  double reduce_accum_ = 0.0;
  double reduce_result_ = 0.0;

  std::atomic<std::size_t> delivered_{0};

  // Fault tolerance.
  ReliableConfig reliable_;
  std::unique_ptr<FaultInjector> injector_;
  RecoveryCounters counters_;
  std::atomic<bool> aborted_{false};
  std::uint64_t run_epoch_ = 0;  ///< fork-join epoch for the analysis hooks
};

}  // namespace treesvd::mp
