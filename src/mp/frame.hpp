#pragma once
// Shared frame format for the reliable transports (DESIGN.md section 15).
//
// Both transport backends protect payloads the same way: a frame carries a
// per-(src, dst, tag) sequence number and an FNV-1a checksum seeded with the
// tag and the sequence number, so a flip of any bit anywhere in the frame is
// detected at the receiver and recovered through the NACK/resend path.
//
// Two encodings share that format:
//
//  * The in-process "double frame" (make_frame / frame_valid): a 2-double
//    [seq, checksum] header prepended to the payload, carried through the
//    shared-memory mailboxes. This is the original reliable-transport frame.
//  * The byte-stream "wire frame" (encode_wire_frame / decode_wire_frame):
//    the socket backend's length-prefixed encoding. The header carries its
//    own FNV-1a (so a corrupted length can never make the receiver read out
//    of bounds or desynchronise silently), and the payload checksum is the
//    *same* frame_checksum the in-process frames use. Decoding distinguishes
//    three failure classes so the receiver can pick the right recovery:
//      - kNeedMore:   the buffer holds a frame prefix; read more bytes.
//      - kBadPayload: header intact, payload corrupted — skip exactly this
//                     frame and recover the payload via NACK/resend.
//      - kBadFrame:   the stream is desynchronised (bad magic, bad header
//                     checksum, oversized length, unknown kind) — the only
//                     safe recovery is to kill the connection and let the
//                     retry path re-deliver.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace treesvd::mp {

/// Doubles of header prepended to an in-process reliable frame.
inline constexpr std::size_t kFrameHeader = 2;  ///< [seq, checksum]

/// FNV-1a over the payload bytes, seeded with tag and seq, so a flip of any
/// bit anywhere in the frame (header included) is detected.
std::uint64_t frame_checksum(std::uint64_t tag, std::uint64_t seq, const double* data,
                             std::size_t count) noexcept;

inline double bits_to_double(std::uint64_t bits) noexcept {
  double d = 0.0;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

inline std::uint64_t double_to_bits(double d) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// Frames a clean payload for the in-process reliable transport.
std::vector<double> make_frame(std::uint64_t tag, std::uint64_t seq,
                               const std::vector<double>& payload);

/// Validates an in-process frame; on success reports its sequence number.
bool frame_valid(std::uint64_t tag, const std::vector<double>& frame, std::uint64_t* seq_out);

// ---------------------------------------------------------------------------
// Byte-stream wire frames (socket backend).

/// What a wire frame is for. Data/NACK frames travel between rank processes;
/// the rest ride the per-rank control channel to/from the launcher process.
enum class WireKind : std::uint8_t {
  kData = 1,       ///< payload frame (tag, seq, payload doubles)
  kNack = 2,       ///< receiver asks the sender to retransmit (tag, seq=expected, aux=attempt)
  kHello = 3,      ///< first frame on a new connection (aux = sender rank)
  kHeartbeat = 4,  ///< child -> launcher liveness beacon
  kSync = 5,       ///< child -> launcher collective arrival (seq=generation, payload=[value])
  kSyncRelease = 6,  ///< launcher -> child collective release (seq=generation, payload=[sum])
  kPublish = 7,    ///< child -> launcher durable blob (aux = key, payload = blob)
  kFinished = 8,   ///< launcher -> child: rank `aux` has exited (normally or not)
  kAbort = 9,      ///< launcher -> child: the world is aborting
  kKilled = 10,    ///< child -> launcher: planned kill firing (aux = op, payload = stats)
  kError = 11,     ///< child -> launcher: program exception (aux = kind, payload = message)
  kExit = 12,      ///< child -> launcher: normal completion (payload = stats)
};
inline constexpr std::uint8_t kWireKindMax = 12;

/// Fixed wire header: magic(4) version(1) kind(1) pad(2) tag(8) seq(8)
/// aux(8) payload_count(8) header_fnv(8) payload_fnv(8).
inline constexpr std::size_t kWireHeaderBytes = 56;
inline constexpr std::uint8_t kWireVersion = 1;

/// One decoded (or to-be-encoded) socket frame.
struct WireFrame {
  WireKind kind = WireKind::kData;
  std::uint64_t tag = 0;
  std::uint64_t seq = 0;
  std::uint64_t aux = 0;
  std::vector<double> payload;
};

enum class WireDecode {
  kOk,          ///< a full valid frame was decoded
  kNeedMore,    ///< the buffer ends mid-frame; append bytes and retry
  kBadPayload,  ///< header valid, payload checksum mismatch: skip this frame
  kBadFrame,    ///< stream desync: close the connection
};

/// Appends the encoded frame to `out`.
void encode_wire_frame(const WireFrame& frame, std::vector<std::uint8_t>& out);

/// Encodes a data frame whose *checksums* cover `clean` while the bytes on
/// the wire carry `corrupted` — the socket backend's physical corruption
/// injection (the receiver must detect the mismatch and NACK).
void encode_corrupted_wire_frame(const WireFrame& frame, const std::vector<double>& corrupted,
                                 std::vector<std::uint8_t>& out);

/// Decodes the frame at the front of [bytes, bytes+len). Never reads past
/// `len`. On kOk fills `out` and sets `consumed` to the frame size; on
/// kBadPayload sets `consumed` to the (trustworthy) frame size so the caller
/// can skip it; on kNeedMore/kBadFrame leaves `consumed` zero.
WireDecode decode_wire_frame(const std::uint8_t* bytes, std::size_t len,
                             std::size_t max_payload_doubles, WireFrame* out,
                             std::size_t* consumed);

/// Packs a UTF-8 string into doubles (length + 8 bytes per double) so error
/// messages can ride the payload of a wire frame. Exact round trip.
std::vector<double> pack_string(const std::string& s);
std::string unpack_string(const std::vector<double>& payload);

}  // namespace treesvd::mp
