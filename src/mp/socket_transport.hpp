#pragma once
// Socket transport backend: every rank is its own OS process.
//
// Topology (DESIGN.md section 15): the constructing process becomes the
// *launcher*. It binds one UNIX-domain listener per rank up front; run()
// forks one child per rank and watches them over per-rank control
// socketpairs. Rank-to-rank data travels directly: rank R lazily connects
// to rank S's listener and everything R sends S (data frames, NACKs) rides
// that one stream, so per-(src, dst, tag) FIFO order is the kernel's stream
// order. The launcher carries what threads got for free in-process:
// collectives (kSync/kSyncRelease, summed in rank order), the durable blob
// board (kPublish), death notices (kFinished feeding the same
// blocked-recv-gives-up-only-when-source-is-dead abort contract), the abort
// broadcast, and heartbeat-based hang detection (a silent rank is SIGKILLed
// and surfaces as an external RankKilledError).
//
// Faults are physical here: a dropped frame closes the connection it rode,
// a delay is a real sender stall, a corruption puts genuinely damaged bytes
// on the wire, and a kill is SIGKILL mid-run. Receive deadlines run on the
// wall clock (SocketConfig::recv_deadline_ms scaled by ReliableConfig), so
// retry *counters* are timing-dependent — but recovered payloads come from
// the sender's clean retransmit store, so delivered data, and therefore
// σ/U/V and every result digest, stays bit-identical to the in-process run
// (tools/treesvd_launch gates exactly that).
//
// Process-death rules a thread backend never needed:
//   * Rank memory dies with the rank: results and checkpoints must travel
//     through publish(), which lands on the launcher's blob board and is
//     inherited by respawned ranks at fork.
//   * A planned kill ships its statistics home (kKilled) in the same write
//     that precedes raise(SIGKILL); the launcher latches the injector's
//     one-shot kill so the respawned world replays past it.
//   * Children leave with _exit(): a forked address space must not run the
//     parent's destructors.

#include <atomic>
#include <memory>
#include <string>

#include "mp/transport.hpp"

namespace treesvd::mp {

class SocketTransport final : public TransportBackend {
 public:
  SocketTransport(World* world, const SocketConfig& config);
  ~SocketTransport() override;

  const char* name() const noexcept override { return "socket"; }
  bool multiprocess() const noexcept override { return true; }

  void run(const std::function<void(Context&)>& program) override;
  void send(Context& ctx, int dst, std::uint64_t tag, std::vector<double> data) override;
  std::vector<double> recv(Context& ctx, int src, std::uint64_t tag) override;
  void barrier(Context& ctx) override;
  double allreduce_sum(Context& ctx, double value) override;
  [[noreturn]] void execute_kill(Context& ctx, std::uint64_t op) override;
  void publish(Context& ctx, std::uint64_t key, std::vector<double> blob) override;
  void reset_for_replay() override;
  void purge_leftovers() override;
  long process_id(int rank) const noexcept override;

 private:
  struct RankRuntime;  ///< child-process machinery (socket_transport.cpp)

  [[noreturn]] void run_child(int rank, int ctl_fd,
                              const std::function<void(Context&)>& program);
  /// Accepts and closes stale pending connections left on the listeners by
  /// a previous (aborted) run, so a replay can never consume a dead run's
  /// frames.
  void drain_listener_backlog() noexcept;

  SocketConfig cfg_;
  std::string dir_;
  bool owns_dir_ = false;
  std::vector<std::string> paths_;  ///< per-rank listener socket paths
  std::vector<int> listeners_;      ///< per-rank listener fds (bound once)

  /// Live child pids while run() is in flight (0 otherwise) — readable from
  /// other threads so chaos harnesses can deliver real signals.
  std::unique_ptr<std::atomic<long>[]> pids_;

  std::unique_ptr<RankRuntime> runtime_;  ///< set only inside a rank process
};

}  // namespace treesvd::mp
