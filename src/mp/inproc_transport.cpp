#include "mp/inproc_transport.hpp"

#include <exception>
#include <string>
#include <thread>
#include <utility>

#include "analysis/hooks.hpp"
#include "mp/frame.hpp"
#include "util/require.hpp"

namespace treesvd::mp {
namespace {

bool is_world_aborted_error(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const WorldAbortedError&) {
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

InprocTransport::InprocTransport(World* world) : TransportBackend(world) {
  mailboxes_.reserve(static_cast<std::size_t>(world->size()));
  for (int r = 0; r < world->size(); ++r) mailboxes_.push_back(std::make_unique<Mailbox>());
}

void InprocTransport::send(Context& ctx, int dst, std::uint64_t tag, std::vector<double> data) {
  deliver(dst, ctx.rank(), tag, std::move(data));
}

std::vector<double> InprocTransport::recv(Context& ctx, int src, std::uint64_t tag) {
  return take(ctx.rank(), src, tag);
}

void InprocTransport::barrier(Context&) { barrier_wait(); }

void InprocTransport::execute_kill(Context& ctx, std::uint64_t op) {
  counters().add_kill();
  throw RankKilledError(ctx.rank(), op);
}

double InprocTransport::allreduce_sum(Context&, double value) {
  // Two-phase: accumulate under the sync lock, publish at the last arrival,
  // then the generation bump protects the result from the next round's reset.
  std::unique_lock<std::mutex> lock(sync_mu_);
  if (world_aborted()) throw WorldAbortedError("allreduce_sum entered on an aborted world");
  reduce_accum_ += value;
  const std::uint64_t generation = sync_generation_;
  TREESVD_HB_BARRIER_ARRIVE(&world(), generation);
  if (++sync_waiting_ == world().size()) {
    reduce_result_ = reduce_accum_;
    reduce_accum_ = 0.0;
    sync_waiting_ = 0;
    ++sync_generation_;
    sync_cv_.notify_all();
  } else {
    sync_cv_.wait(lock, [&] { return world_aborted() || sync_generation_ != generation; });
    if (sync_generation_ == generation)
      throw WorldAbortedError("allreduce_sum generation " + std::to_string(generation) +
                              " can never complete");
  }
  TREESVD_HB_BARRIER_DEPART(&world(), generation);
  return reduce_result_;
}

void InprocTransport::deliver(int dst, int src, std::uint64_t tag, std::vector<double> data) {
  TREESVD_REQUIRE(dst >= 0 && dst < world().size(), "send: destination rank out of range");
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    if (!reliable().enabled) {
      box.queues[{src, tag}].push_back(Packet{std::move(data)});
    } else {
      const Key key{src, tag};
      const std::uint64_t seq = box.send_seq[key]++;
      const FaultAction act =
          injector() != nullptr ? injector()->action(src, dst, tag, seq) : FaultAction::kDeliver;
      auto& queue = box.queues[key];
      switch (act) {
        case FaultAction::kDeliver:
          queue.push_back(Packet{make_frame(tag, seq, data)});
          break;
        case FaultAction::kDrop:
          counters().add_drop();
          break;
        case FaultAction::kDuplicate: {
          Packet frame{make_frame(tag, seq, data)};
          queue.push_back(frame);
          queue.push_back(std::move(frame));
          counters().add_duplicate_injected();
          break;
        }
        case FaultAction::kCorrupt: {
          Packet frame{make_frame(tag, seq, data)};
          injector()->corrupt_payload(frame.data, src, dst, tag, seq);
          queue.push_back(std::move(frame));
          counters().add_corruption_injected();
          break;
        }
        case FaultAction::kDelay:
          // Held past the receive deadline: the receiver recovers via resend
          // and the late copy is suppressed by its sequence number, so the
          // transport treats the frame as lost the moment it is delayed.
          counters().add_delay();
          break;
      }
      // The clean copy backs NACK/resend recovery until the receiver
      // acknowledges the sequence number (consumes it), whatever the fate of
      // the frame above.
      box.store[key][seq] = std::move(data);
    }
  }
  count_sends(1);
  box.cv.notify_all();
}

std::vector<double> InprocTransport::recover_locked(Mailbox& box, const Key& key,
                                                    std::uint64_t seq, int src, int dst,
                                                    std::uint64_t tag) {
  double wait = reliable().deadline;
  for (int attempt = 0; attempt < reliable().max_retries; ++attempt) {
    counters().add_retry();
    counters().add_virtual_backoff(wait);
    wait *= reliable().backoff;
    if (injector() != nullptr && !injector()->resend_survives(src, dst, tag, seq, attempt)) {
      counters().add_drop();
      continue;  // the retransmission was lost too; back off and NACK again
    }
    const auto sit = box.store.find(key);
    TREESVD_ASSERT(sit != box.store.end());
    const auto pit = sit->second.find(seq);
    TREESVD_ASSERT(pit != sit->second.end());
    std::vector<double> payload = pit->second;
    counters().add_resend();
    box.next_seq[key] = seq + 1;
    sit->second.erase(sit->second.begin(), sit->second.upper_bound(seq));
    return payload;
  }
  throw transport_exhausted("inproc", src, dst, tag, seq, reliable().max_retries);
}

std::vector<double> InprocTransport::take(int rank, int src, std::uint64_t tag) {
  TREESVD_REQUIRE(src >= 0 && src < world().size(), "recv: source rank out of range");
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(rank)];
  std::unique_lock<std::mutex> lock(box.mu);
  const Key key{src, tag};

  // A blocked recv may conclude the message will never come only when the
  // source rank has finished (died or exited): everything a rank sends is
  // delivered synchronously from its own thread, so finished + no data is
  // conclusive — and waiting for it keeps the abort path deterministic (a
  // message still coming from a live peer is always waited for).
  const auto src_gone = [&] {
    return world_aborted() &&
           mailboxes_[static_cast<std::size_t>(src)]->finished.load(std::memory_order_acquire);
  };
  const auto aborted_context = [&] {
    return "recv blocked on finished rank: src=" + std::to_string(src) +
           " dst=" + std::to_string(rank) + " tag=" + std::to_string(tag);
  };

  if (!reliable().enabled) {
    box.cv.wait(lock, [&] {
      const auto it = box.queues.find(key);
      return (it != box.queues.end() && !it->second.empty()) || src_gone();
    });
    auto it = box.queues.find(key);
    if (it == box.queues.end() || it->second.empty()) throw WorldAbortedError(aborted_context());
    Packet p = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) box.queues.erase(it);
    return std::move(p.data);
  }

  // Reliable path: validate frames until the expected sequence number is
  // consumed cleanly, or the loss is evident and recovery takes over. The
  // sender writes its retransmit store before enqueuing the frame (same
  // critical section), so "store holds the expected seq but the queue does
  // not" is proof of a drop/delay, never a race with an in-flight send.
  for (;;) {
    const std::uint64_t expected = box.next_seq[key];
    box.cv.wait(lock, [&] {
      const auto it = box.queues.find(key);
      if (it != box.queues.end() && !it->second.empty()) return true;
      const auto sit = box.store.find(key);
      if (sit != box.store.end() && sit->second.count(expected) != 0) return true;
      return src_gone();
    });
    const auto it = box.queues.find(key);
    if (it != box.queues.end() && !it->second.empty()) {
      std::uint64_t seq = 0;
      if (!frame_valid(tag, it->second.front().data, &seq)) {
        it->second.pop_front();
        counters().add_corruption_detected();
        return recover_locked(box, key, expected, src, rank, tag);
      }
      if (seq < expected) {  // duplicate or stale resend survivor
        it->second.pop_front();
        counters().add_duplicate_suppressed();
        continue;
      }
      if (seq == expected) {
        std::vector<double> payload(it->second.front().data.begin() +
                                        static_cast<std::ptrdiff_t>(kFrameHeader),
                                    it->second.front().data.end());
        it->second.pop_front();
        box.next_seq[key] = expected + 1;
        const auto sit = box.store.find(key);
        if (sit != box.store.end())
          sit->second.erase(sit->second.begin(), sit->second.upper_bound(expected));
        return payload;
      }
      // seq > expected: the expected frame was lost; leave this one queued.
      return recover_locked(box, key, expected, src, rank, tag);
    }
    const auto sit = box.store.find(key);
    if (sit != box.store.end() && sit->second.count(expected) != 0)
      return recover_locked(box, key, expected, src, rank, tag);
    if (src_gone()) throw WorldAbortedError(aborted_context());
  }
}

void InprocTransport::barrier_wait() {
  std::unique_lock<std::mutex> lock(sync_mu_);
  if (world_aborted()) throw WorldAbortedError("barrier entered on an aborted world");
  const std::uint64_t generation = sync_generation_;
  TREESVD_HB_BARRIER_ARRIVE(&world(), generation);
  if (++sync_waiting_ == world().size()) {
    sync_waiting_ = 0;
    reduce_accum_ = 0.0;  // barriers and reduces share the counter
    ++sync_generation_;
    sync_cv_.notify_all();
  } else {
    sync_cv_.wait(lock, [&] { return world_aborted() || sync_generation_ != generation; });
    if (sync_generation_ == generation)
      throw WorldAbortedError("barrier generation " + std::to_string(generation) +
                              " can never complete");
  }
  TREESVD_HB_BARRIER_DEPART(&world(), generation);
}

void InprocTransport::abort_world() noexcept {
  set_world_aborted(true);
  // Wake every sleeper under its own lock so no wait misses the flag.
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->cv.notify_all();
  }
  std::lock_guard<std::mutex> lock(sync_mu_);
  sync_cv_.notify_all();
}

void InprocTransport::reset_for_replay() {
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->queues.clear();
    box->send_seq.clear();
    box->next_seq.clear();
    box->store.clear();
  }
  {
    std::lock_guard<std::mutex> lock(sync_mu_);
    sync_waiting_ = 0;
    sync_generation_ = 0;
    reduce_accum_ = 0.0;
    reduce_result_ = 0.0;
  }
  set_world_aborted(false);
}

void InprocTransport::purge_leftovers() {
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    std::size_t leftover = 0;
    for (const auto& [key, queue] : box->queues) leftover += queue.size();
    if (leftover != 0) counters().add_duplicate_suppressed(leftover);
    box->queues.clear();
    box->send_seq.clear();
    box->next_seq.clear();
    box->store.clear();
  }
}

void InprocTransport::run(const std::function<void(Context&)>& program) {
  for (auto& box : mailboxes_) box->finished.store(false, std::memory_order_release);
  [[maybe_unused]] const std::uint64_t epoch = ++run_epoch_;
  TREESVD_HB_FORK(&world(), epoch);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(mailboxes_.size());
  threads.reserve(mailboxes_.size());
  World* const w = &world();
  for (int r = 0; r < world().size(); ++r) {
    threads.emplace_back([&, w, r] {
      TREESVD_HB_TASK_BEGIN(w, epoch, "mp rank " + std::to_string(r));
      Context ctx = make_context(w, r);
      try {
        program(ctx);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        abort_world();
      }
      // Mark this rank finished and wake every receiver: a rank blocked on
      // this one as a source can now conclude (deterministically) that its
      // message will never arrive.
      mailboxes_[static_cast<std::size_t>(r)]->finished.store(true, std::memory_order_release);
      for (auto& box : mailboxes_) {
        std::lock_guard<std::mutex> lock(box->mu);
        box->cv.notify_all();
      }
      TREESVD_HB_TASK_END(w, epoch);
    });
  }
  for (auto& t : threads) t.join();
  TREESVD_HB_JOIN(&world(), epoch);
  // All ranks joined. Rethrow deterministically: the lowest-rank primary
  // (program) failure wins; secondary WorldAbortedError unwindings — ranks
  // woken only because the world died around them — surface solely when no
  // primary exists.
  std::exception_ptr secondary;
  for (const auto& e : errors) {
    if (!e) continue;
    if (is_world_aborted_error(e)) {
      if (!secondary) secondary = e;
      continue;
    }
    std::rethrow_exception(e);
  }
  if (secondary) std::rethrow_exception(secondary);
}

}  // namespace treesvd::mp
