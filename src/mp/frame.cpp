#include "mp/frame.hpp"

#include "util/require.hpp"

namespace treesvd::mp {
namespace {

constexpr std::uint8_t kMagic[4] = {'T', 'S', 'V', 'F'};
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// FNV-1a over a raw byte range (the header checksum; the payload checksum
/// stays frame_checksum so both transports share one payload format).
std::uint64_t fnv1a_bytes(const std::uint8_t* p, std::size_t len) noexcept {
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

void put_u64(std::uint8_t* p, std::uint64_t v) noexcept {
  for (int b = 0; b < 8; ++b) p[b] = static_cast<std::uint8_t>((v >> (8 * b)) & 0xffu);
}

std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int b = 0; b < 8; ++b) v |= static_cast<std::uint64_t>(p[b]) << (8 * b);
  return v;
}

void encode_header(const WireFrame& frame, std::uint64_t payload_fnv, std::uint8_t* h) noexcept {
  h[0] = kMagic[0];
  h[1] = kMagic[1];
  h[2] = kMagic[2];
  h[3] = kMagic[3];
  h[4] = kWireVersion;
  h[5] = static_cast<std::uint8_t>(frame.kind);
  h[6] = 0;
  h[7] = 0;
  put_u64(h + 8, frame.tag);
  put_u64(h + 16, frame.seq);
  put_u64(h + 24, frame.aux);
  put_u64(h + 32, static_cast<std::uint64_t>(frame.payload.size()));
  put_u64(h + 40, fnv1a_bytes(h, 40));
  put_u64(h + 48, payload_fnv);
}

void append_payload(const std::vector<double>& payload, std::vector<std::uint8_t>& out) {
  const std::size_t base = out.size();
  out.resize(base + payload.size() * sizeof(double));
  if (!payload.empty())
    std::memcpy(out.data() + base, payload.data(), payload.size() * sizeof(double));
}

}  // namespace

std::uint64_t frame_checksum(std::uint64_t tag, std::uint64_t seq, const double* data,
                             std::size_t count) noexcept {
  std::uint64_t h = kFnvOffset;
  const auto eat = [&h](std::uint64_t word) {
    for (int b = 0; b < 8; ++b) {
      h ^= (word >> (8 * b)) & 0xffu;
      h *= kFnvPrime;
    }
  };
  eat(tag);
  eat(seq);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &data[i], sizeof(bits));
    eat(bits);
  }
  return h;
}

std::vector<double> make_frame(std::uint64_t tag, std::uint64_t seq,
                               const std::vector<double>& payload) {
  std::vector<double> frame;
  frame.reserve(kFrameHeader + payload.size());
  frame.push_back(static_cast<double>(seq));
  frame.push_back(bits_to_double(frame_checksum(tag, seq, payload.data(), payload.size())));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

bool frame_valid(std::uint64_t tag, const std::vector<double>& frame, std::uint64_t* seq_out) {
  if (frame.size() < kFrameHeader) return false;
  const double seq_d = frame[0];
  // A corrupted seq field may be NaN or out of integer range; reject before
  // the cast (which would be UB).
  if (!(seq_d >= 0.0) || seq_d > 9.0e15) return false;
  const auto seq = static_cast<std::uint64_t>(seq_d);
  if (static_cast<double>(seq) != seq_d) return false;
  const std::uint64_t sum =
      frame_checksum(tag, seq, frame.data() + kFrameHeader, frame.size() - kFrameHeader);
  if (sum != double_to_bits(frame[1])) return false;
  *seq_out = seq;
  return true;
}

void encode_wire_frame(const WireFrame& frame, std::vector<std::uint8_t>& out) {
  std::uint8_t header[kWireHeaderBytes];
  encode_header(frame,
                frame_checksum(frame.tag, frame.seq, frame.payload.data(), frame.payload.size()),
                header);
  out.insert(out.end(), header, header + kWireHeaderBytes);
  append_payload(frame.payload, out);
}

void encode_corrupted_wire_frame(const WireFrame& frame, const std::vector<double>& corrupted,
                                 std::vector<std::uint8_t>& out) {
  TREESVD_REQUIRE(corrupted.size() == frame.payload.size(),
                  "corrupted wire frame must keep the clean payload's length");
  std::uint8_t header[kWireHeaderBytes];
  // Checksums cover the *clean* payload; the wire carries the corrupted
  // bytes, so the receiver's payload-checksum check must fire.
  encode_header(frame,
                frame_checksum(frame.tag, frame.seq, frame.payload.data(), frame.payload.size()),
                header);
  out.insert(out.end(), header, header + kWireHeaderBytes);
  append_payload(corrupted, out);
}

WireDecode decode_wire_frame(const std::uint8_t* bytes, std::size_t len,
                             std::size_t max_payload_doubles, WireFrame* out,
                             std::size_t* consumed) {
  *consumed = 0;
  if (len < kWireHeaderBytes) return WireDecode::kNeedMore;
  if (std::memcmp(bytes, kMagic, 4) != 0) return WireDecode::kBadFrame;
  if (bytes[4] != kWireVersion) return WireDecode::kBadFrame;
  const std::uint8_t kind = bytes[5];
  if (kind < 1 || kind > kWireKindMax) return WireDecode::kBadFrame;
  // The header checksum vouches for the length field *before* it is trusted:
  // a corrupted count can never make the receiver wait for (or allocate) a
  // bogus gigantic frame, or walk off the end of the buffer.
  if (get_u64(bytes + 40) != fnv1a_bytes(bytes, 40)) return WireDecode::kBadFrame;
  const std::uint64_t count = get_u64(bytes + 32);
  if (count > max_payload_doubles) return WireDecode::kBadFrame;
  const std::size_t total = kWireHeaderBytes + static_cast<std::size_t>(count) * sizeof(double);
  if (len < total) return WireDecode::kNeedMore;
  out->kind = static_cast<WireKind>(kind);
  out->tag = get_u64(bytes + 8);
  out->seq = get_u64(bytes + 16);
  out->aux = get_u64(bytes + 24);
  out->payload.resize(static_cast<std::size_t>(count));
  if (count != 0)
    std::memcpy(out->payload.data(), bytes + kWireHeaderBytes,
                static_cast<std::size_t>(count) * sizeof(double));
  *consumed = total;
  if (frame_checksum(out->tag, out->seq, out->payload.data(), out->payload.size()) !=
      get_u64(bytes + 48))
    return WireDecode::kBadPayload;
  return WireDecode::kOk;
}

std::vector<double> pack_string(const std::string& s) {
  std::vector<double> out;
  out.reserve(1 + (s.size() + 7) / 8);
  out.push_back(bits_to_double(static_cast<std::uint64_t>(s.size())));
  for (std::size_t i = 0; i < s.size(); i += 8) {
    std::uint64_t word = 0;
    for (std::size_t b = 0; b < 8 && i + b < s.size(); ++b)
      word |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(s[i + b])) << (8 * b);
    out.push_back(bits_to_double(word));
  }
  return out;
}

std::string unpack_string(const std::vector<double>& payload) {
  if (payload.empty()) return {};
  std::uint64_t size = double_to_bits(payload[0]);
  // Defensive clamp: the payload rode a checksummed frame, but a short vector
  // must never drive an out-of-range read.
  const std::uint64_t capacity = (payload.size() - 1) * 8;
  if (size > capacity) size = capacity;
  std::string s;
  s.reserve(static_cast<std::size_t>(size));
  for (std::uint64_t i = 0; i < size; ++i) {
    const std::uint64_t word = double_to_bits(payload[1 + i / 8]);
    s.push_back(static_cast<char>((word >> (8 * (i % 8))) & 0xffu));
  }
  return s;
}

}  // namespace treesvd::mp
