#include "mp/message_passing.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <exception>
#include <string>
#include <thread>

#include "analysis/hooks.hpp"
#include "util/require.hpp"

namespace treesvd::mp {
namespace {

constexpr std::size_t kFrameHeader = 2;  ///< [seq, checksum] doubles

/// FNV-1a over the payload bytes, seeded with tag and seq, so a flip of any
/// bit anywhere in the frame (header included) is detected.
std::uint64_t frame_checksum(std::uint64_t tag, std::uint64_t seq,
                             const double* data, std::size_t count) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto eat = [&h](std::uint64_t word) {
    for (int b = 0; b < 8; ++b) {
      h ^= (word >> (8 * b)) & 0xffu;
      h *= 0x100000001b3ULL;
    }
  };
  eat(tag);
  eat(seq);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &data[i], sizeof(bits));
    eat(bits);
  }
  return h;
}

double bits_to_double(std::uint64_t bits) noexcept {
  double d = 0.0;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

std::uint64_t double_to_bits(double d) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// Frames a clean payload for the reliable transport.
std::vector<double> make_frame(std::uint64_t tag, std::uint64_t seq,
                               const std::vector<double>& payload) {
  std::vector<double> frame;
  frame.reserve(kFrameHeader + payload.size());
  frame.push_back(static_cast<double>(seq));
  frame.push_back(bits_to_double(frame_checksum(tag, seq, payload.data(), payload.size())));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

/// Validates a frame; on success reports its sequence number.
bool frame_valid(std::uint64_t tag, const std::vector<double>& frame, std::uint64_t* seq_out) {
  if (frame.size() < kFrameHeader) return false;
  const double seq_d = frame[0];
  // A corrupted seq field may be NaN or out of integer range; reject before
  // the cast (which would be UB).
  if (!(seq_d >= 0.0) || seq_d > 9.0e15) return false;
  const auto seq = static_cast<std::uint64_t>(seq_d);
  if (static_cast<double>(seq) != seq_d) return false;
  const std::uint64_t sum =
      frame_checksum(tag, seq, frame.data() + kFrameHeader, frame.size() - kFrameHeader);
  if (sum != double_to_bits(frame[1])) return false;
  *seq_out = seq;
  return true;
}

bool is_world_aborted_error(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const WorldAbortedError&) {
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

int Context::size() const noexcept { return world_->size(); }

void Context::check_rank_faults() {
  FaultInjector* inj = world_->injector_.get();
  if (inj == nullptr) return;
  const std::uint64_t op = ops_++;
  if (inj->should_stall(rank_, op)) {
    world_->counters_.add_stall();
    std::this_thread::sleep_for(std::chrono::microseconds(inj->plan().stall_micros));
  }
  if (inj->should_kill(rank_, op)) {
    world_->counters_.add_kill();
    throw RankKilledError(rank_, op);
  }
}

void Context::send(int dst, std::uint64_t tag, std::vector<double> data) {
  TREESVD_REQUIRE(dst >= 0 && dst < size(), "send: destination rank out of range");
  TREESVD_REQUIRE(dst != rank_, "send: send-to-self is not allowed (use local state)");
  check_rank_faults();
  // Sender's clock rides the message: publish it before the frame is
  // enqueued so the matching recv edge is never beaten by the delivery.
  TREESVD_FUZZ_POINT(analysis::kFuzzMpSend, static_cast<std::uint64_t>(rank_),
                     static_cast<std::uint64_t>(dst), tag ^ hook_ops_++);
  TREESVD_HB_SEND(world_, rank_, dst, tag);
  world_->deliver(dst, rank_, tag, std::move(data));
}

std::vector<double> Context::recv(int src, std::uint64_t tag) {
  TREESVD_REQUIRE(src >= 0 && src < size(), "recv: source rank out of range");
  TREESVD_REQUIRE(src != rank_, "recv: receive-from-self would block forever");
  check_rank_faults();
  TREESVD_FUZZ_POINT(analysis::kFuzzMpRecv, static_cast<std::uint64_t>(src),
                     static_cast<std::uint64_t>(rank_), tag ^ hook_ops_++);
  std::vector<double> payload = world_->take(rank_, src, tag);
  // FIFO edge: merge the clock the matching send published (messages of one
  // (src, tag) stream arrive in send order, mirroring the mailbox contract).
  TREESVD_HB_RECV(world_, src, rank_, tag);
  return payload;
}

void Context::barrier() {
  check_rank_faults();
  TREESVD_FUZZ_POINT(analysis::kFuzzMpSync, static_cast<std::uint64_t>(rank_), 0, hook_ops_++);
  world_->barrier_wait();
}

double Context::allreduce_sum(double value) {
  check_rank_faults();
  TREESVD_FUZZ_POINT(analysis::kFuzzMpSync, static_cast<std::uint64_t>(rank_), 1, hook_ops_++);
  // Two-phase: accumulate under the sync lock, publish at the last arrival,
  // then the generation bump protects the result from the next round's reset.
  std::unique_lock<std::mutex> lock(world_->sync_mu_);
  if (world_->aborted()) throw WorldAbortedError();
  world_->reduce_accum_ += value;
  const std::uint64_t generation = world_->sync_generation_;
  TREESVD_HB_BARRIER_ARRIVE(world_, generation);
  if (++world_->sync_waiting_ == world_->size()) {
    world_->reduce_result_ = world_->reduce_accum_;
    world_->reduce_accum_ = 0.0;
    world_->sync_waiting_ = 0;
    ++world_->sync_generation_;
    world_->sync_cv_.notify_all();
  } else {
    world_->sync_cv_.wait(lock, [&] {
      return world_->aborted() || world_->sync_generation_ != generation;
    });
    if (world_->sync_generation_ == generation) throw WorldAbortedError();
  }
  TREESVD_HB_BARRIER_DEPART(world_, generation);
  return world_->reduce_result_;
}

World::World(int ranks) {
  TREESVD_REQUIRE(ranks >= 1, "need at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) mailboxes_.push_back(std::make_unique<Mailbox>());
}

void World::set_reliable(const ReliableConfig& config) {
  TREESVD_REQUIRE(config.max_retries >= 1, "reliable transport needs a positive retry budget");
  TREESVD_REQUIRE(config.deadline > 0.0, "reliable transport needs a positive deadline");
  TREESVD_REQUIRE(config.backoff >= 1.0, "backoff multiplier must be >= 1");
  reliable_ = config;
}

void World::set_fault_plan(const FaultPlan& plan) {
  TREESVD_REQUIRE(plan.drop_prob >= 0.0 && plan.duplicate_prob >= 0.0 &&
                      plan.corrupt_prob >= 0.0 && plan.delay_prob >= 0.0 &&
                      plan.resend_drop_prob >= 0.0 && plan.resend_drop_prob <= 1.0,
                  "fault probabilities must be in [0, 1]");
  TREESVD_REQUIRE(
      plan.drop_prob + plan.duplicate_prob + plan.corrupt_prob + plan.delay_prob <= 1.0,
      "message fault probabilities must sum to at most 1");
  TREESVD_REQUIRE(plan.kill_rank < size() && plan.stall_rank < size(),
                  "fault plan targets a rank outside this world");
  TREESVD_REQUIRE(!plan.has_message_faults() || reliable_.enabled,
                  "message faults require the reliable transport (set_reliable first)");
  injector_ = std::make_unique<FaultInjector>(plan);
}

void World::deliver(int dst, int src, std::uint64_t tag, std::vector<double> data) {
  TREESVD_REQUIRE(dst >= 0 && dst < size(), "send: destination rank out of range");
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    if (!reliable_.enabled) {
      box.queues[{src, tag}].push_back(Packet{std::move(data)});
    } else {
      const Key key{src, tag};
      const std::uint64_t seq = box.send_seq[key]++;
      const FaultAction act = injector_ != nullptr ? injector_->action(src, dst, tag, seq)
                                                   : FaultAction::kDeliver;
      auto& queue = box.queues[key];
      switch (act) {
        case FaultAction::kDeliver:
          queue.push_back(Packet{make_frame(tag, seq, data)});
          break;
        case FaultAction::kDrop:
          counters_.add_drop();
          break;
        case FaultAction::kDuplicate: {
          Packet frame{make_frame(tag, seq, data)};
          queue.push_back(frame);
          queue.push_back(std::move(frame));
          counters_.add_duplicate_injected();
          break;
        }
        case FaultAction::kCorrupt: {
          Packet frame{make_frame(tag, seq, data)};
          injector_->corrupt_payload(frame.data, src, dst, tag, seq);
          queue.push_back(std::move(frame));
          counters_.add_corruption_injected();
          break;
        }
        case FaultAction::kDelay:
          // Held past the receive deadline: the receiver recovers via resend
          // and the late copy is suppressed by its sequence number, so the
          // transport treats the frame as lost the moment it is delayed.
          counters_.add_delay();
          break;
      }
      // The clean copy backs NACK/resend recovery until the receiver
      // acknowledges the sequence number (consumes it), whatever the fate of
      // the frame above.
      box.store[key][seq] = std::move(data);
    }
  }
  delivered_.fetch_add(1, std::memory_order_relaxed);
  box.cv.notify_all();
}

std::vector<double> World::recover_locked(Mailbox& box, const Key& key, std::uint64_t seq,
                                          int src, int dst, std::uint64_t tag) {
  double wait = reliable_.deadline;
  for (int attempt = 0; attempt < reliable_.max_retries; ++attempt) {
    counters_.add_retry();
    counters_.add_virtual_backoff(wait);
    wait *= reliable_.backoff;
    if (injector_ != nullptr && !injector_->resend_survives(src, dst, tag, seq, attempt)) {
      counters_.add_drop();
      continue;  // the retransmission was lost too; back off and NACK again
    }
    const auto sit = box.store.find(key);
    TREESVD_ASSERT(sit != box.store.end());
    const auto pit = sit->second.find(seq);
    TREESVD_ASSERT(pit != sit->second.end());
    std::vector<double> payload = pit->second;
    counters_.add_resend();
    box.next_seq[key] = seq + 1;
    sit->second.erase(sit->second.begin(), sit->second.upper_bound(seq));
    return payload;
  }
  throw TransportError("mp: reliable transport exhausted its retry budget (" +
                       std::to_string(reliable_.max_retries) + " attempts) for src=" +
                       std::to_string(src) + " dst=" + std::to_string(dst) +
                       " tag=" + std::to_string(tag) + " seq=" + std::to_string(seq));
}

std::vector<double> World::take(int rank, int src, std::uint64_t tag) {
  TREESVD_REQUIRE(src >= 0 && src < size(), "recv: source rank out of range");
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(rank)];
  std::unique_lock<std::mutex> lock(box.mu);
  const Key key{src, tag};

  // A blocked recv may conclude the message will never come only when the
  // source rank has finished (died or exited): everything a rank sends is
  // delivered synchronously from its own thread, so finished + no data is
  // conclusive — and waiting for it keeps the abort path deterministic (a
  // message still coming from a live peer is always waited for).
  const auto src_gone = [&] {
    return aborted() &&
           mailboxes_[static_cast<std::size_t>(src)]->finished.load(std::memory_order_acquire);
  };

  if (!reliable_.enabled) {
    box.cv.wait(lock, [&] {
      const auto it = box.queues.find(key);
      return (it != box.queues.end() && !it->second.empty()) || src_gone();
    });
    auto it = box.queues.find(key);
    if (it == box.queues.end() || it->second.empty()) throw WorldAbortedError();
    Packet p = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) box.queues.erase(it);
    return std::move(p.data);
  }

  // Reliable path: validate frames until the expected sequence number is
  // consumed cleanly, or the loss is evident and recovery takes over. The
  // sender writes its retransmit store before enqueuing the frame (same
  // critical section), so "store holds the expected seq but the queue does
  // not" is proof of a drop/delay, never a race with an in-flight send.
  for (;;) {
    const std::uint64_t expected = box.next_seq[key];
    box.cv.wait(lock, [&] {
      const auto it = box.queues.find(key);
      if (it != box.queues.end() && !it->second.empty()) return true;
      const auto sit = box.store.find(key);
      if (sit != box.store.end() && sit->second.count(expected) != 0) return true;
      return src_gone();
    });
    const auto it = box.queues.find(key);
    if (it != box.queues.end() && !it->second.empty()) {
      std::uint64_t seq = 0;
      if (!frame_valid(tag, it->second.front().data, &seq)) {
        it->second.pop_front();
        counters_.add_corruption_detected();
        return recover_locked(box, key, expected, src, rank, tag);
      }
      if (seq < expected) {  // duplicate or stale resend survivor
        it->second.pop_front();
        counters_.add_duplicate_suppressed();
        continue;
      }
      if (seq == expected) {
        std::vector<double> payload(it->second.front().data.begin() +
                                        static_cast<std::ptrdiff_t>(kFrameHeader),
                                    it->second.front().data.end());
        it->second.pop_front();
        box.next_seq[key] = expected + 1;
        const auto sit = box.store.find(key);
        if (sit != box.store.end())
          sit->second.erase(sit->second.begin(), sit->second.upper_bound(expected));
        return payload;
      }
      // seq > expected: the expected frame was lost; leave this one queued.
      return recover_locked(box, key, expected, src, rank, tag);
    }
    const auto sit = box.store.find(key);
    if (sit != box.store.end() && sit->second.count(expected) != 0)
      return recover_locked(box, key, expected, src, rank, tag);
    if (src_gone()) throw WorldAbortedError();
  }
}

void World::barrier_wait() {
  std::unique_lock<std::mutex> lock(sync_mu_);
  if (aborted()) throw WorldAbortedError();
  const std::uint64_t generation = sync_generation_;
  TREESVD_HB_BARRIER_ARRIVE(this, generation);
  if (++sync_waiting_ == size()) {
    sync_waiting_ = 0;
    reduce_accum_ = 0.0;  // barriers and reduces share the counter
    ++sync_generation_;
    sync_cv_.notify_all();
  } else {
    sync_cv_.wait(lock, [&] { return aborted() || sync_generation_ != generation; });
    if (sync_generation_ == generation) throw WorldAbortedError();
  }
  TREESVD_HB_BARRIER_DEPART(this, generation);
}

void World::abort_world() noexcept {
  aborted_.store(true, std::memory_order_release);
  // Wake every sleeper under its own lock so no wait misses the flag.
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->cv.notify_all();
  }
  std::lock_guard<std::mutex> lock(sync_mu_);
  sync_cv_.notify_all();
}

void World::reset_for_replay() {
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->queues.clear();
    box->send_seq.clear();
    box->next_seq.clear();
    box->store.clear();
  }
  {
    std::lock_guard<std::mutex> lock(sync_mu_);
    sync_waiting_ = 0;
    sync_generation_ = 0;
    reduce_accum_ = 0.0;
    reduce_result_ = 0.0;
  }
  aborted_.store(false, std::memory_order_release);
}

void World::purge_leftovers() {
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    std::size_t leftover = 0;
    for (const auto& [key, queue] : box->queues) leftover += queue.size();
    if (leftover != 0) counters_.add_duplicate_suppressed(leftover);
    box->queues.clear();
    box->send_seq.clear();
    box->next_seq.clear();
    box->store.clear();
  }
}

void World::run(const std::function<void(Context&)>& program) {
  TREESVD_REQUIRE(!aborted(), "World::run: reset_for_replay() must rearm an aborted world");
  for (auto& box : mailboxes_) box->finished.store(false, std::memory_order_release);
  [[maybe_unused]] const std::uint64_t epoch = ++run_epoch_;
  TREESVD_HB_FORK(this, epoch);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(mailboxes_.size());
  threads.reserve(mailboxes_.size());
  for (int r = 0; r < size(); ++r) {
    threads.emplace_back([&, r] {
      TREESVD_HB_TASK_BEGIN(this, epoch, "mp rank " + std::to_string(r));
      Context ctx(this, r);
      try {
        program(ctx);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        abort_world();
      }
      // Mark this rank finished and wake every receiver: a rank blocked on
      // this one as a source can now conclude (deterministically) that its
      // message will never arrive.
      mailboxes_[static_cast<std::size_t>(r)]->finished.store(true, std::memory_order_release);
      for (auto& box : mailboxes_) {
        std::lock_guard<std::mutex> lock(box->mu);
        box->cv.notify_all();
      }
      TREESVD_HB_TASK_END(this, epoch);
    });
  }
  for (auto& t : threads) t.join();
  TREESVD_HB_JOIN(this, epoch);
  // All ranks joined. Rethrow deterministically: the lowest-rank primary
  // (program) failure wins; secondary WorldAbortedError unwindings — ranks
  // woken only because the world died around them — surface solely when no
  // primary exists.
  std::exception_ptr secondary;
  for (const auto& e : errors) {
    if (!e) continue;
    if (is_world_aborted_error(e)) {
      if (!secondary) secondary = e;
      continue;
    }
    std::rethrow_exception(e);
  }
  if (secondary) std::rethrow_exception(secondary);
}

}  // namespace treesvd::mp
