#include "mp/message_passing.hpp"

#include <atomic>
#include <exception>
#include <thread>

#include "util/require.hpp"

namespace treesvd::mp {

int Context::size() const noexcept { return world_->size(); }

void Context::send(int dst, std::uint64_t tag, std::vector<double> data) {
  world_->deliver(dst, rank_, tag, std::move(data));
}

std::vector<double> Context::recv(int src, std::uint64_t tag) {
  return world_->take(rank_, src, tag);
}

void Context::barrier() { world_->barrier_wait(); }

double Context::allreduce_sum(double value) {
  // Two-phase: accumulate under the sync lock, publish at the last arrival,
  // then a second barrier protects the result from the next round's reset.
  std::unique_lock<std::mutex> lock(world_->sync_mu_);
  world_->reduce_accum_ += value;
  const std::uint64_t generation = world_->sync_generation_;
  if (++world_->sync_waiting_ == world_->size()) {
    world_->reduce_result_ = world_->reduce_accum_;
    world_->reduce_accum_ = 0.0;
    world_->sync_waiting_ = 0;
    ++world_->sync_generation_;
    world_->sync_cv_.notify_all();
  } else {
    world_->sync_cv_.wait(lock, [&] { return world_->sync_generation_ != generation; });
  }
  return world_->reduce_result_;
}

World::World(int ranks) {
  TREESVD_REQUIRE(ranks >= 1, "need at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) mailboxes_.push_back(std::make_unique<Mailbox>());
}

void World::deliver(int dst, int src, std::uint64_t tag, std::vector<double> data) {
  TREESVD_REQUIRE(dst >= 0 && dst < size(), "send: destination rank out of range");
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queues[{src, tag}].push_back(Packet{std::move(data)});
  }
  delivered_.fetch_add(1, std::memory_order_relaxed);
  box.cv.notify_all();
}

std::vector<double> World::take(int rank, int src, std::uint64_t tag) {
  TREESVD_REQUIRE(src >= 0 && src < size(), "recv: source rank out of range");
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(rank)];
  std::unique_lock<std::mutex> lock(box.mu);
  const auto key = std::make_pair(src, tag);
  box.cv.wait(lock, [&] {
    const auto it = box.queues.find(key);
    return it != box.queues.end() && !it->second.empty();
  });
  auto it = box.queues.find(key);
  Packet p = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) box.queues.erase(it);
  return std::move(p.data);
}

void World::barrier_wait() {
  std::unique_lock<std::mutex> lock(sync_mu_);
  const std::uint64_t generation = sync_generation_;
  if (++sync_waiting_ == size()) {
    sync_waiting_ = 0;
    reduce_accum_ = 0.0;  // barriers and reduces share the counter
    ++sync_generation_;
    sync_cv_.notify_all();
  } else {
    sync_cv_.wait(lock, [&] { return sync_generation_ != generation; });
  }
}

void World::run(const std::function<void(Context&)>& program) {
  std::vector<std::thread> threads;
  std::exception_ptr first_error;
  std::mutex error_mu;
  threads.reserve(static_cast<std::size_t>(size()));
  for (int r = 0; r < size(); ++r) {
    threads.emplace_back([&, r] {
      Context ctx(this, r);
      try {
        program(ctx);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace treesvd::mp
