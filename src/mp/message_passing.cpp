#include "mp/message_passing.hpp"

#include <chrono>
#include <thread>

#include "analysis/hooks.hpp"
#include "mp/inproc_transport.hpp"
#include "mp/socket_transport.hpp"
#include "mp/transport.hpp"
#include "util/require.hpp"

namespace treesvd::mp {

Context::Context(World* world, int rank)
    : world_(world), rank_(rank), hooks_enabled_(!world->multiprocess()) {}

int Context::size() const noexcept { return world_->size(); }

void Context::check_rank_faults() {
  FaultInjector* inj = world_->injector_.get();
  if (inj == nullptr) return;
  const std::uint64_t op = ops_++;
  if (inj->should_stall(rank_, op)) {
    world_->counters_.add_stall();
    std::this_thread::sleep_for(std::chrono::microseconds(inj->plan().stall_micros));
  }
  if (inj->should_kill(rank_, op)) world_->backend_->execute_kill(*this, op);
}

void Context::send(int dst, std::uint64_t tag, std::vector<double> data) {
  TREESVD_REQUIRE(dst >= 0 && dst < size(), "send: destination rank out of range");
  TREESVD_REQUIRE(dst != rank_, "send: send-to-self is not allowed (use local state)");
  check_rank_faults();
  // Sender's clock rides the message: publish it before the frame is
  // enqueued so the matching recv edge is never beaten by the delivery.
  // (Analysis hooks are in-process only: a rank process's tracker writes
  // would land in its own forked memory and mislead the shared detector.)
  if (hooks_enabled_) {
    TREESVD_FUZZ_POINT(analysis::kFuzzMpSend, static_cast<std::uint64_t>(rank_),
                       static_cast<std::uint64_t>(dst), tag ^ hook_ops_++);
    TREESVD_HB_SEND(world_, rank_, dst, tag);
  }
  world_->backend_->send(*this, dst, tag, std::move(data));
}

std::vector<double> Context::recv(int src, std::uint64_t tag) {
  TREESVD_REQUIRE(src >= 0 && src < size(), "recv: source rank out of range");
  TREESVD_REQUIRE(src != rank_, "recv: receive-from-self would block forever");
  check_rank_faults();
  if (hooks_enabled_) {
    TREESVD_FUZZ_POINT(analysis::kFuzzMpRecv, static_cast<std::uint64_t>(src),
                       static_cast<std::uint64_t>(rank_), tag ^ hook_ops_++);
  }
  std::vector<double> payload = world_->backend_->recv(*this, src, tag);
  // FIFO edge: merge the clock the matching send published (messages of one
  // (src, tag) stream arrive in send order, mirroring the mailbox contract).
  if (hooks_enabled_) {
    TREESVD_HB_RECV(world_, src, rank_, tag);
  }
  return payload;
}

void Context::barrier() {
  check_rank_faults();
  if (hooks_enabled_) {
    TREESVD_FUZZ_POINT(analysis::kFuzzMpSync, static_cast<std::uint64_t>(rank_), 0, hook_ops_++);
  }
  world_->backend_->barrier(*this);
}

double Context::allreduce_sum(double value) {
  check_rank_faults();
  if (hooks_enabled_) {
    TREESVD_FUZZ_POINT(analysis::kFuzzMpSync, static_cast<std::uint64_t>(rank_), 1, hook_ops_++);
  }
  return world_->backend_->allreduce_sum(*this, value);
}

void Context::publish(std::uint64_t key, std::vector<double> blob) {
  world_->backend_->publish(*this, key, std::move(blob));
}

World::World(int ranks) : ranks_(ranks) {
  TREESVD_REQUIRE(ranks >= 1, "need at least one rank");
  backend_ = std::make_unique<InprocTransport>(this);
}

World::~World() = default;

void World::set_backend(Backend backend, const SocketConfig& config) {
  TREESVD_REQUIRE(!running_.load(), "set_backend: a run is in progress");
  if (backend == backend_kind_ && backend == Backend::kInproc) return;
  switch (backend) {
    case Backend::kInproc:
      backend_ = std::make_unique<InprocTransport>(this);
      break;
    case Backend::kSocket:
      TREESVD_REQUIRE(config.recv_deadline_ms > 0.0 && config.heartbeat_interval_ms > 0.0 &&
                          config.heartbeat_timeout_ms > 0.0 && config.delay_stall_ms > 0.0,
                      "socket backend timings must be positive");
      TREESVD_REQUIRE(config.max_payload_doubles >= 1,
                      "socket backend needs a positive payload bound");
      backend_ = std::make_unique<SocketTransport>(this, config);
      break;
  }
  backend_kind_ = backend;
}

const char* World::backend_name() const noexcept { return backend_->name(); }

bool World::multiprocess() const noexcept { return backend_->multiprocess(); }

void World::set_reliable(const ReliableConfig& config) {
  TREESVD_REQUIRE(config.max_retries >= 1, "reliable transport needs a positive retry budget");
  TREESVD_REQUIRE(config.deadline > 0.0, "reliable transport needs a positive deadline");
  TREESVD_REQUIRE(config.backoff >= 1.0, "backoff multiplier must be >= 1");
  reliable_ = config;
}

void World::set_fault_plan(const FaultPlan& plan) {
  TREESVD_REQUIRE(plan.drop_prob >= 0.0 && plan.duplicate_prob >= 0.0 &&
                      plan.corrupt_prob >= 0.0 && plan.delay_prob >= 0.0 &&
                      plan.resend_drop_prob >= 0.0 && plan.resend_drop_prob <= 1.0,
                  "fault probabilities must be in [0, 1]");
  TREESVD_REQUIRE(
      plan.drop_prob + plan.duplicate_prob + plan.corrupt_prob + plan.delay_prob <= 1.0,
      "message fault probabilities must sum to at most 1");
  TREESVD_REQUIRE(plan.kill_rank < size() && plan.stall_rank < size(),
                  "fault plan targets a rank outside this world");
  TREESVD_REQUIRE(!plan.has_message_faults() || reliable_.enabled,
                  "message faults require the reliable transport (set_reliable first)");
  injector_ = std::make_unique<FaultInjector>(plan);
}

void World::run(const std::function<void(Context&)>& program) {
  TREESVD_REQUIRE(!running_.load(), "World::run: a run is already in progress");
  TREESVD_REQUIRE(!aborted(), "World::run: reset_for_replay() must rearm an aborted world");
  running_.store(true);
  try {
    backend_->run(program);
  } catch (...) {
    running_.store(false);
    throw;
  }
  running_.store(false);
  if (!aborted()) purgeable_ = true;
}

void World::reset_for_replay() {
  TREESVD_REQUIRE(!running_.load(), "reset_for_replay: a run is in progress — join it first");
  TREESVD_REQUIRE(aborted(),
                  "reset_for_replay: the world never aborted (or was already reset) — "
                  "resetting a healthy world would discard live transport state");
  backend_->reset_for_replay();
  aborted_.store(false, std::memory_order_release);
}

void World::purge_leftovers() {
  TREESVD_REQUIRE(!running_.load(), "purge_leftovers: a run is in progress — join it first");
  TREESVD_REQUIRE(reliable_.enabled,
                  "purge_leftovers: only meaningful under the reliable transport "
                  "(set_reliable first)");
  TREESVD_REQUIRE(!aborted(),
                  "purge_leftovers: the world is aborted — reset_for_replay owns that path "
                  "(purging would destroy the frames a replay audit counts)");
  TREESVD_REQUIRE(purgeable_,
                  "purge_leftovers: no run completed since the last purge — "
                  "there is nothing to account");
  backend_->purge_leftovers();
  purgeable_ = false;
}

bool World::has_published(std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(blob_mu_);
  return blobs_.count(key) != 0;
}

std::vector<double> World::published(std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(blob_mu_);
  const auto it = blobs_.find(key);
  TREESVD_REQUIRE(it != blobs_.end(),
                  "published: no blob under key " + std::to_string(key));
  return it->second;
}

long World::process_id(int rank) const noexcept {
  if (rank < 0 || rank >= ranks_) return 0;
  return backend_->process_id(rank);
}

}  // namespace treesvd::mp
