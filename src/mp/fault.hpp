#pragma once
// Deterministic fault model for the message-passing runtime.
//
// A FaultPlan is a *schedule*, not a dice roll: every per-message decision
// (drop / duplicate / corrupt / delay) is a pure function of the message's
// identity (src, dst, tag, sequence number, retry attempt) mixed with the
// plan's seed. Two runs with the same plan therefore inject exactly the same
// faults regardless of thread interleaving, and every RecoveryStats counter
// is reproducible bit-for-bit. Rank kill/stall faults key off a rank's own
// transport-operation counter, which is equally deterministic because each
// rank's program is.
//
// The companion ReliableConfig turns on the reliable transport inside
// mp::World: per-(src, dst, tag) sequence numbers, payload checksums,
// receive deadlines with bounded retry and deterministic exponential backoff
// (virtual time — the simulator never waits on a wall clock), NACK/resend
// from the sender's clean retransmit store, and duplicate suppression. Under
// any plan that stays below the retry budget the delivered payloads are the
// clean ones, so a program's numerical results are bit-identical to its
// fault-free run (chaos_recovery_test asserts this for the SPMD Jacobi).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/hooks.hpp"

namespace treesvd::mp {

/// Seeded, fully deterministic fault schedule for a World.
struct FaultPlan {
  bool enabled = false;        ///< master switch; a default plan injects nothing
  std::uint64_t seed = 1;      ///< mixes into every per-message decision

  // Message faults (require the reliable transport; first match wins, so the
  // probabilities are a partition of [0, 1) and at most one fault hits a
  // given frame).
  double drop_prob = 0.0;       ///< frame silently lost
  double duplicate_prob = 0.0;  ///< frame delivered twice
  double corrupt_prob = 0.0;    ///< one payload element bit-flipped or NaN'd
  double delay_prob = 0.0;      ///< frame held past the receive deadline
                                ///< (treated as lost; the late copy is
                                ///< suppressed by its sequence number)
  double resend_drop_prob = 0.0;  ///< loss applied to retransmissions too
                                  ///< (exercises the bounded retry loop)

  // Rank faults (usable with or without the reliable transport).
  int kill_rank = -1;             ///< rank to kill once (-1 = never)
  std::uint64_t kill_at_op = 0;   ///< fires at this 0-based transport op
                                  ///< (send/recv/barrier/allreduce) of the rank
  int stall_rank = -1;            ///< rank to stall (-1 = never)
  std::uint64_t stall_at_op = 0;  ///< op at which the stall occurs
  std::uint64_t stall_micros = 2000;  ///< bounded real-time stall length

  bool has_message_faults() const noexcept {
    return enabled && (drop_prob > 0.0 || duplicate_prob > 0.0 || corrupt_prob > 0.0 ||
                       delay_prob > 0.0 || resend_drop_prob > 0.0);
  }
};

/// Opt-in reliable transport layered over Context::send/recv.
struct ReliableConfig {
  bool enabled = false;
  int max_retries = 8;      ///< recovery attempts per message before giving up
  double deadline = 1.0;    ///< virtual-time units before the first retry
  double backoff = 2.0;     ///< exponential backoff multiplier per attempt
};

/// Plain snapshot of every recovery counter (copyable, reported on
/// SpmdStats/DistributedResult; the style of KernelStats).
struct RecoveryStats {
  // Injector side (what the chaos plan actually did).
  std::size_t drops_seen = 0;            ///< frames lost (first sends + resends)
  std::size_t duplicates_injected = 0;   ///< frames delivered twice
  std::size_t corruptions_injected = 0;  ///< frames delivered with a flipped payload
  std::size_t delays_seen = 0;           ///< frames held past the deadline
  std::size_t kills = 0;                 ///< rank kills fired
  std::size_t stalls = 0;                ///< rank stalls fired

  // Transport side (what the reliable layer did about it).
  std::size_t corruptions_detected = 0;   ///< checksum/NaN frames rejected at recv
  std::size_t duplicates_suppressed = 0;  ///< stale frames discarded (live + purge)
  std::size_t retries = 0;                ///< deadline expiries (recovery attempts)
  std::size_t resends = 0;                ///< successful retransmissions
  double virtual_backoff = 0.0;           ///< summed virtual backoff time

  // Engine side (checkpoint/rollback/watchdog machinery).
  std::size_t checkpoints = 0;        ///< sweep-boundary snapshots committed
  std::size_t rollbacks = 0;          ///< replays from the last checkpoint
  std::size_t watchdog_trips = 0;     ///< stagnation watchdog activations
  std::size_t norm_rereductions = 0;  ///< payload-guard/watchdog norm re-reductions

  RecoveryStats& operator+=(const RecoveryStats& o) noexcept {
    drops_seen += o.drops_seen;
    duplicates_injected += o.duplicates_injected;
    corruptions_injected += o.corruptions_injected;
    delays_seen += o.delays_seen;
    kills += o.kills;
    stalls += o.stalls;
    corruptions_detected += o.corruptions_detected;
    duplicates_suppressed += o.duplicates_suppressed;
    retries += o.retries;
    resends += o.resends;
    virtual_backoff += o.virtual_backoff;
    checkpoints += o.checkpoints;
    rollbacks += o.rollbacks;
    watchdog_trips += o.watchdog_trips;
    norm_rereductions += o.norm_rereductions;
    return *this;
  }
  bool operator==(const RecoveryStats&) const = default;
};

/// Relaxed-atomic counters shared by concurrent ranks; snapshot() into
/// RecoveryStats (the KernelCounters idiom).
class RecoveryCounters {
 public:
  void add_drop() noexcept { bump(drops_); }
  void add_duplicate_injected() noexcept { bump(dups_injected_); }
  void add_corruption_injected() noexcept { bump(corrupts_injected_); }
  void add_delay() noexcept { bump(delays_); }
  void add_kill() noexcept { bump(kills_); }
  void add_stall() noexcept { bump(stalls_); }
  void add_corruption_detected() noexcept { bump(corrupts_detected_); }
  void add_duplicate_suppressed(std::size_t k = 1) noexcept {
    TREESVD_HB_ATOMIC(this, 0, "RecoveryCounters");
    dups_suppressed_.fetch_add(k, std::memory_order_relaxed);
  }
  void add_retry() noexcept { bump(retries_); }
  void add_resend() noexcept { bump(resends_); }
  void add_checkpoint() noexcept { bump(checkpoints_); }
  void add_rollback() noexcept { bump(rollbacks_); }
  void add_watchdog_trip() noexcept { bump(watchdog_trips_); }
  void add_norm_rereduction(std::size_t k = 1) noexcept {
    TREESVD_HB_ATOMIC(this, 0, "RecoveryCounters");
    norm_rereductions_.fetch_add(k, std::memory_order_relaxed);
  }
  void add_virtual_backoff(double t) noexcept {
    TREESVD_HB_ATOMIC(this, 0, "RecoveryCounters");
    // CAS loop: fetch_add on atomic<double> is C++20 but patchy pre-GCC-12.
    double cur = backoff_.load(std::memory_order_relaxed);
    while (!backoff_.compare_exchange_weak(cur, cur + t, std::memory_order_relaxed)) {
    }
  }

  /// Folds a whole RecoveryStats delta in at once — how a rank *process*
  /// (socket backend) ships its counters home: the child snapshots at fork,
  /// subtracts the baseline at exit, and the launcher accumulates the delta,
  /// landing every tick in the same place an in-process rank's would.
  void accumulate(const RecoveryStats& s) noexcept {
    TREESVD_HB_ATOMIC(this, 0, "RecoveryCounters");
    drops_.fetch_add(s.drops_seen, std::memory_order_relaxed);
    dups_injected_.fetch_add(s.duplicates_injected, std::memory_order_relaxed);
    corrupts_injected_.fetch_add(s.corruptions_injected, std::memory_order_relaxed);
    delays_.fetch_add(s.delays_seen, std::memory_order_relaxed);
    kills_.fetch_add(s.kills, std::memory_order_relaxed);
    stalls_.fetch_add(s.stalls, std::memory_order_relaxed);
    corrupts_detected_.fetch_add(s.corruptions_detected, std::memory_order_relaxed);
    dups_suppressed_.fetch_add(s.duplicates_suppressed, std::memory_order_relaxed);
    retries_.fetch_add(s.retries, std::memory_order_relaxed);
    resends_.fetch_add(s.resends, std::memory_order_relaxed);
    checkpoints_.fetch_add(s.checkpoints, std::memory_order_relaxed);
    rollbacks_.fetch_add(s.rollbacks, std::memory_order_relaxed);
    watchdog_trips_.fetch_add(s.watchdog_trips, std::memory_order_relaxed);
    norm_rereductions_.fetch_add(s.norm_rereductions, std::memory_order_relaxed);
    add_virtual_backoff(s.virtual_backoff);
  }

  RecoveryStats snapshot() const noexcept {
    TREESVD_HB_ATOMIC(this, 0, "RecoveryCounters");
    RecoveryStats s;
    s.drops_seen = drops_.load(std::memory_order_relaxed);
    s.duplicates_injected = dups_injected_.load(std::memory_order_relaxed);
    s.corruptions_injected = corrupts_injected_.load(std::memory_order_relaxed);
    s.delays_seen = delays_.load(std::memory_order_relaxed);
    s.kills = kills_.load(std::memory_order_relaxed);
    s.stalls = stalls_.load(std::memory_order_relaxed);
    s.corruptions_detected = corrupts_detected_.load(std::memory_order_relaxed);
    s.duplicates_suppressed = dups_suppressed_.load(std::memory_order_relaxed);
    s.retries = retries_.load(std::memory_order_relaxed);
    s.resends = resends_.load(std::memory_order_relaxed);
    s.virtual_backoff = backoff_.load(std::memory_order_relaxed);
    s.checkpoints = checkpoints_.load(std::memory_order_relaxed);
    s.rollbacks = rollbacks_.load(std::memory_order_relaxed);
    s.watchdog_trips = watchdog_trips_.load(std::memory_order_relaxed);
    s.norm_rereductions = norm_rereductions_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  /// Every bump is declared to the race detector as a relaxed atomic on this
  /// counter block: concurrent ranks may tick freely, but an unsynchronised
  /// plain write (there is none today) would be flagged.
  void bump(std::atomic<std::size_t>& c) noexcept {
    TREESVD_HB_ATOMIC(this, 0, "RecoveryCounters");
    c.fetch_add(1, std::memory_order_relaxed);
  }
  std::atomic<std::size_t> drops_{0}, dups_injected_{0}, corrupts_injected_{0}, delays_{0},
      kills_{0}, stalls_{0}, corrupts_detected_{0}, dups_suppressed_{0}, retries_{0}, resends_{0},
      checkpoints_{0}, rollbacks_{0}, watchdog_trips_{0}, norm_rereductions_{0};
  std::atomic<double> backoff_{0.0};
};

/// Thrown inside the killed rank's transport op; engines with checkpointing
/// catch it, roll back, and replay. The socket backend reconstructs it in
/// the launcher after the rank process actually died (planned SIGKILL or an
/// external one), so the engine-side recovery path is backend-agnostic.
class RankKilledError : public std::runtime_error {
 public:
  RankKilledError(int rank, std::uint64_t op)
      : std::runtime_error("mp: rank " + std::to_string(rank) + " killed by fault plan at op " +
                           std::to_string(op)),
        rank_(rank),
        op_(op) {}

  /// A rank process killed from *outside* the fault plan (external SIGKILL,
  /// hung-heartbeat SIGKILL, crash): the op is unknown, the signal is not.
  struct External {};
  RankKilledError(External, int rank, int signal, const std::string& detail)
      : std::runtime_error("mp: rank " + std::to_string(rank) + " process killed by signal " +
                           std::to_string(signal) + " (" + detail + ")"),
        rank_(rank),
        signal_(signal),
        external_(true) {}

  int rank() const noexcept { return rank_; }
  std::uint64_t op() const noexcept { return op_; }
  /// Terminating signal for an external kill (0 for a fault-plan kill).
  int killed_by_signal() const noexcept { return signal_; }
  bool external() const noexcept { return external_; }

 private:
  int rank_;
  std::uint64_t op_ = 0;
  int signal_ = 0;
  bool external_ = false;
};

/// Thrown by blocked transport ops on surviving ranks when the world aborts;
/// a *secondary* failure — World::run never rethrows it while a primary
/// (program) exception exists. Every throw site names the operation it
/// interrupted (and its src/dst/tag where one exists) so a multi-process
/// failure is diagnosable from a single rank's stderr.
class WorldAbortedError : public std::runtime_error {
 public:
  WorldAbortedError() : std::runtime_error("mp: world aborted by a failing rank") {}
  explicit WorldAbortedError(const std::string& context)
      : std::runtime_error("mp: world aborted by a failing rank [" + context + "]") {}
};

/// Thrown when a message exhausts the reliable transport's retry budget.
/// Construct through transport_exhausted() so every site carries the full
/// (src, dst, tag, seq, attempts) context.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Uniform retry-budget-exhaustion error: names the backend and the message
/// identity, so one rank's stderr pinpoints the lost frame.
inline TransportError transport_exhausted(const std::string& backend, int src, int dst,
                                          std::uint64_t tag, std::uint64_t seq, int attempts) {
  return TransportError("mp[" + backend + "]: reliable transport exhausted its retry budget (" +
                        std::to_string(attempts) + " attempts) for src=" + std::to_string(src) +
                        " dst=" + std::to_string(dst) + " tag=" + std::to_string(tag) +
                        " seq=" + std::to_string(seq));
}

/// What the injector decides to do with one freshly sent frame.
enum class FaultAction { kDeliver, kDrop, kDuplicate, kCorrupt, kDelay };

/// Stateless-per-message decision engine. Decisions hash the message
/// identity with the plan seed, so they are independent of thread timing;
/// the only mutable state is the one-shot kill latch (survives
/// World::reset_for_replay so a replay proceeds past the kill).
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  const FaultPlan& plan() const noexcept { return plan_; }

  /// Decision for a first transmission of (src, dst, tag, seq).
  FaultAction action(int src, int dst, std::uint64_t tag, std::uint64_t seq) const;

  /// Whether retransmission attempt `attempt` of the frame survives.
  bool resend_survives(int src, int dst, std::uint64_t tag, std::uint64_t seq,
                       int attempt) const;

  /// Deterministically corrupts one element of `payload` (bit flip or NaN).
  void corrupt_payload(std::vector<double>& payload, int src, int dst, std::uint64_t tag,
                       std::uint64_t seq) const;

  /// One-shot: true exactly once, for the planned (rank, op).
  bool should_kill(int rank, std::uint64_t op);

  /// Marks the one-shot kill as fired without consuming it locally: the
  /// socket launcher latches its own injector when a rank *process* reports
  /// the kill firing (the child consumed the latch in its forked copy, which
  /// the launcher never sees), so a respawned rank inherits a spent latch
  /// and the replay proceeds past the kill — the exact contract
  /// reset_for_replay documents for the in-process backend.
  void latch_kill() noexcept { kill_fired_.store(true, std::memory_order_relaxed); }

  /// True whenever (rank, op) matches the stall schedule.
  bool should_stall(int rank, std::uint64_t op) const;

 private:
  FaultPlan plan_;
  std::atomic<bool> kill_fired_{false};
};

}  // namespace treesvd::mp
