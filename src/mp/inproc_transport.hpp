#pragma once
// In-process transport backend: the original mp::World mechanics, verbatim.
//
// Ranks are std::threads; a send moves the frame into the destination rank's
// mailbox under its mutex, a recv blocks on the mailbox's condition
// variable. Faults are simulated inside the receiver's critical section and
// deadlines run on virtual time (RecoveryStats::virtual_backoff), so a run
// under any surviving fault plan is bit-identical *including* every recovery
// counter. This backend is the default and the reference the socket backend
// is gated against.

#include <condition_variable>
#include <deque>

#include "mp/transport.hpp"

namespace treesvd::mp {

class InprocTransport final : public TransportBackend {
 public:
  explicit InprocTransport(World* world);

  const char* name() const noexcept override { return "inproc"; }
  bool multiprocess() const noexcept override { return false; }

  void run(const std::function<void(Context&)>& program) override;
  void send(Context& ctx, int dst, std::uint64_t tag, std::vector<double> data) override;
  std::vector<double> recv(Context& ctx, int src, std::uint64_t tag) override;
  void barrier(Context& ctx) override;
  double allreduce_sum(Context& ctx, double value) override;
  [[noreturn]] void execute_kill(Context& ctx, std::uint64_t op) override;
  void reset_for_replay() override;
  void purge_leftovers() override;

 private:
  using Key = std::pair<int, std::uint64_t>;  ///< (src, tag)

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    /// This rank's thread has exited (normally or by exception). Receivers
    /// blocked on this rank as a *source* use it to decide, deterministically,
    /// that the expected message can never arrive.
    std::atomic<bool> finished{false};
    std::map<Key, std::deque<Packet>> queues;
    // Reliable-transport state (guarded by mu).
    std::map<Key, std::uint64_t> send_seq;  ///< sender side: next seq to assign
    std::map<Key, std::uint64_t> next_seq;  ///< receiver side: next expected seq
    std::map<Key, std::map<std::uint64_t, std::vector<double>>> store;  ///< clean copies
  };

  void deliver(int dst, int src, std::uint64_t tag, std::vector<double> data);
  std::vector<double> take(int rank, int src, std::uint64_t tag);
  /// Recovers the clean payload for `seq` from the retransmit store with
  /// bounded retry; caller holds box.mu. Throws TransportError past budget.
  std::vector<double> recover_locked(Mailbox& box, const Key& key, std::uint64_t seq, int src,
                                     int dst, std::uint64_t tag);
  void barrier_wait();
  /// Wakes every blocked rank with WorldAbortedError (idempotent).
  void abort_world() noexcept;

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  // Barrier + allreduce state.
  std::mutex sync_mu_;
  std::condition_variable sync_cv_;
  int sync_waiting_ = 0;
  std::uint64_t sync_generation_ = 0;
  double reduce_accum_ = 0.0;
  double reduce_result_ = 0.0;

  std::uint64_t run_epoch_ = 0;  ///< fork-join epoch for the analysis hooks
};

}  // namespace treesvd::mp
