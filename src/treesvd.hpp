#pragma once
// treesvd — parallel one-sided Jacobi SVD with tree-architecture orderings.
//
// Umbrella header: pulls in the full public API.
//
//   Matrix a = random_gaussian(256, 128, rng);
//   SvdResult r = one_sided_jacobi(a, *make_ordering("fat-tree"));
//   // r.sigma is nonincreasing; a ~= r.u * diag(r.sigma) * r.v^T
//
// Reproduction of: Zhou & Brent, "Parallel Computation of the Singular Value
// Decomposition on Tree Architectures", ICPP 1993.

#include "core/block_ring.hpp"   // IWYU pragma: export
#include "core/fat_tree.hpp"     // IWYU pragma: export
#include "core/hybrid.hpp"       // IWYU pragma: export
#include "core/new_ring.hpp"     // IWYU pragma: export
#include "core/odd_even.hpp"     // IWYU pragma: export
#include "core/ordering.hpp"     // IWYU pragma: export
#include "core/registry.hpp"     // IWYU pragma: export
#include "core/round_robin.hpp"  // IWYU pragma: export
#include "core/validate.hpp"     // IWYU pragma: export
#include "eigen/jacobi_eigen.hpp"  // IWYU pragma: export
#include "linalg/blas1.hpp"      // IWYU pragma: export
#include "linalg/generators.hpp" // IWYU pragma: export
#include "linalg/golub_kahan.hpp"  // IWYU pragma: export
#include "linalg/matrix.hpp"     // IWYU pragma: export
#include "linalg/qr.hpp"         // IWYU pragma: export
#include "linalg/rotation.hpp"   // IWYU pragma: export
#include "linalg/symmetric_eigen.hpp"  // IWYU pragma: export
#include "mp/fault.hpp"          // IWYU pragma: export
#include "mp/message_passing.hpp"  // IWYU pragma: export
#include "network/topology.hpp"  // IWYU pragma: export
#include "network/traffic.hpp"   // IWYU pragma: export
#include "sim/distributed.hpp"   // IWYU pragma: export
#include "sim/machine.hpp"       // IWYU pragma: export
#include "svd/applications.hpp"  // IWYU pragma: export
#include "svd/block_jacobi.hpp"  // IWYU pragma: export
#include "svd/jacobi.hpp"        // IWYU pragma: export
#include "svd/kogbetliantz.hpp"  // IWYU pragma: export
#include "svd/preconditioned.hpp"  // IWYU pragma: export
#include "svd/recovery.hpp"      // IWYU pragma: export
#include "svd/spmd.hpp"          // IWYU pragma: export
#include "util/cli.hpp"          // IWYU pragma: export
#include "util/rng.hpp"          // IWYU pragma: export
#include "util/table.hpp"        // IWYU pragma: export
#include "util/timer.hpp"        // IWYU pragma: export
