#pragma once
// Parallel Jacobi orderings — the paper's central abstraction.
//
// Model. n column indices (0-based internally, printed 1-based as in the
// paper) live in n slots; slot s belongs to leaf processor s/2, so each leaf
// of the tree holds exactly two columns. At every parallel step the two
// columns co-located on a leaf form an index pair and are orthogonalised by
// one plane rotation; between steps columns move between slots, which on a
// tree architecture is communication.
//
// A Sweep is therefore just a sequence of layouts: layout(t)[slot] = index
// occupying the slot when step t executes (t = 0..steps-1), plus one final
// layout — the state handed to the next sweep. Pairs, column movements and
// communication levels are all derived from the layouts. Some orderings
// (odd-even) have a step in which one co-located pair is idle; the `active`
// mask records this.
//
// A valid Jacobi sweep pairs every one of the n(n-1)/2 index pairs exactly
// once (validate.hpp checks this property for every ordering in the tests).

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace treesvd {

/// One rotation's operands: the indices at the even/odd slot of a leaf.
/// `even` sits at slot 2k (the paper's left/top position), `odd` at 2k+1.
struct IndexPair {
  int even = 0;
  int odd = 0;

  friend bool operator==(const IndexPair&, const IndexPair&) = default;
};

/// A column transfer implied by two consecutive layouts.
struct ColumnMove {
  int index = 0;      ///< which column
  int from_slot = 0;
  int to_slot = 0;
};

/// Non-allocating view of one step's pairs: spans into the Sweep's layout
/// and activity storage (valid while the Sweep lives). The hot drivers walk
/// leaves through this view instead of materialising a std::vector<IndexPair>
/// per step.
class StepPairs {
 public:
  StepPairs(std::span<const int> layout, std::span<const std::uint8_t> active) noexcept
      : layout_(layout), active_(active) {}

  int leaves() const noexcept { return static_cast<int>(layout_.size()) / 2; }

  /// False for a leaf idle in this step (odd-even's unpaired column).
  bool active_at(int leaf) const noexcept {
    return active_.empty() || active_[static_cast<std::size_t>(leaf)] != 0;
  }

  /// The pair co-located on `leaf`; meaningful when active_at(leaf).
  IndexPair at(int leaf) const noexcept {
    return {layout_[static_cast<std::size_t>(2 * leaf)],
            layout_[static_cast<std::size_t>(2 * leaf + 1)]};
  }

  /// Number of active pairs (what pairs(t).size() would be).
  std::size_t count() const noexcept {
    if (active_.empty()) return static_cast<std::size_t>(leaves());
    std::size_t c = 0;
    for (std::uint8_t a : active_) c += a != 0 ? 1 : 0;
    return c;
  }

 private:
  std::span<const int> layout_;
  std::span<const std::uint8_t> active_;
};

/// One sweep of a parallel Jacobi ordering (see file comment).
class Sweep {
 public:
  /// `layouts` must contain steps+1 entries, each a permutation of 0..n-1.
  /// `active[t]` has one flag per leaf (n/2); empty means all leaves active.
  Sweep(std::vector<std::vector<int>> layouts, std::vector<std::vector<std::uint8_t>> active);

  int n() const noexcept { return static_cast<int>(layouts_.front().size()); }
  int steps() const noexcept { return static_cast<int>(layouts_.size()) - 1; }
  int leaves() const noexcept { return n() / 2; }

  /// Slot occupancy when step t executes; t == steps() gives the post-sweep
  /// layout.
  std::span<const int> layout(int t) const;

  /// The index pairs rotated at step t (inactive leaves omitted).
  std::vector<IndexPair> pairs(int t) const;

  /// Non-allocating view of step t's pairs (see StepPairs); valid while this
  /// Sweep is alive.
  StepPairs step_pairs(int t) const;

  bool leaf_active(int t, int leaf) const;

  /// Column transfers between step t and step t+1 (t = steps()-1 yields the
  /// post-sweep restore moves). Moves within a leaf are included with
  /// from_slot/to_slot on the same leaf; callers decide whether those are
  /// free.
  std::vector<ColumnMove> moves(int t) const;

  std::span<const int> final_layout() const { return layout(steps()); }

  /// Total number of active rotations in the sweep.
  std::size_t rotation_count() const;

 private:
  std::vector<std::vector<int>> layouts_;
  std::vector<std::vector<std::uint8_t>> active_;
};

/// Abstract parallel Jacobi ordering.
///
/// Orderings are defined as *position procedures*: the canonical sweep is
/// generated from the identity layout, and sweep(layout0, k) transports the
/// procedure to an arbitrary starting layout (the procedure pairs whatever
/// occupies the positions). `sweep_index` k matters only to orderings whose
/// procedure alternates between sweeps (Lee-Luk-Boley forward/backward).
class Ordering {
 public:
  virtual ~Ordering() = default;

  virtual std::string name() const = 0;

  /// Smallest supported n and the constraint n must satisfy.
  virtual bool supports(int n) const = 0;

  /// Steps per sweep for a given n.
  virtual int steps(int n) const = 0;

  /// Canonical sweep (from the identity layout).
  Sweep sweep(int n, int sweep_index = 0) const;

  /// Sweep starting from an arbitrary layout (e.g. the previous sweep's
  /// final layout).
  Sweep sweep_from(std::span<const int> layout0, int sweep_index = 0) const;

  /// Canonical sweep representation produced by concrete orderings: the
  /// layout sequence (steps + final) plus optional per-step activity masks.
  struct Canonical {
    std::vector<std::vector<int>> layouts;
    std::vector<std::vector<std::uint8_t>> active;  ///< may be empty
  };

 protected:
  virtual Canonical canonical(int n, int sweep_index) const = 0;
};

using OrderingPtr = std::shared_ptr<const Ordering>;

}  // namespace treesvd
