#pragma once
// The block ring ordering of Section 5 (based on Schreiber's partitioning
// method [14]), as a standalone ordering.
//
// Like the hybrid ordering, the n indices form `groups` groups of two
// interleaved blocks and the new ring ordering drives the blocks; the only
// difference is super-step 1, which must let the indices inside each group
// meet: the hybrid uses the fat-tree ordering there, this class uses the
// odd-even transposition ordering (purely nearest-neighbour). Comparing the
// two isolates the contribution of the intra-group fat-tree (ablation A7).

#include "core/ordering.hpp"

namespace treesvd {

/// Block ring ordering: new ring at block level + odd-even inside groups.
/// Requirements: groups even >= 2; n/groups even >= 4 (group size need not
/// be a power of two — the odd-even ordering accepts any even size, which is
/// exactly what the fat-tree variant cannot do).
class BlockRingOrdering final : public Ordering {
 public:
  explicit BlockRingOrdering(int groups);

  std::string name() const override;
  bool supports(int n) const override;
  int steps(int n) const override;

  int groups() const noexcept { return groups_; }

 protected:
  Canonical canonical(int n, int sweep_index) const override;

 private:
  int groups_;
};

}  // namespace treesvd
