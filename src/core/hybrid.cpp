#include "core/hybrid.hpp"

#include <algorithm>

#include "core/fat_tree.hpp"
#include "core/new_ring.hpp"
#include "util/require.hpp"

namespace treesvd {
namespace {

int group_of_block(std::span<const int> ring_layout, int block) {
  for (std::size_t s = 0; s < ring_layout.size(); ++s)
    if (ring_layout[s] == block) return static_cast<int>(s) / 2;
  TREESVD_ASSERT(!"block missing from ring layout");
  return -1;
}

}  // namespace

HybridOrdering::HybridOrdering(int groups) : groups_(groups) {
  TREESVD_REQUIRE(groups >= 2 && groups % 2 == 0,
                  "hybrid ordering needs an even number of groups >= 2");
}

std::string HybridOrdering::name() const {
  return "hybrid-g" + std::to_string(groups_);
}

bool HybridOrdering::supports(int n) const {
  if (n < 4 * groups_ || n % groups_ != 0) return false;
  const int gsz = n / groups_;
  return (gsz & (gsz - 1)) == 0;  // group size a power of two >= 4
}

Ordering::Canonical HybridOrdering::canonical(int n, int /*sweep_index*/) const {
  const int gsz = n / groups_;
  const int bs = gsz / 2;
  const int nblocks = 2 * groups_;

  // Block contents: the two blocks of group g are the indices at the even and
  // odd offsets of the group's slot range ("indices in the two blocks are
  // interleaved"), so the canonical sweep starts from the identity layout.
  std::vector<std::vector<int>> content(static_cast<std::size_t>(nblocks));
  for (int g = 0; g < groups_; ++g) {
    for (int i = 0; i < bs; ++i) {
      content[static_cast<std::size_t>(2 * g)].push_back(g * gsz + 2 * i);
      content[static_cast<std::size_t>(2 * g + 1)].push_back(g * gsz + 2 * i + 1);
    }
  }

  const Sweep ring = NewRingOrdering().sweep(nblocks);

  Canonical c;
  auto emit_rows = [&](const std::vector<std::vector<std::vector<int>>>& per_group_rows) {
    const std::size_t nsteps = per_group_rows.front().size();
    for (std::size_t t = 0; t < nsteps; ++t) {
      std::vector<int> lay;
      lay.reserve(static_cast<std::size_t>(n));
      for (const auto& rows : per_group_rows)
        lay.insert(lay.end(), rows[t].begin(), rows[t].end());
      c.layouts.push_back(std::move(lay));
    }
  };

  for (int j = 0; j < ring.steps(); ++j) {
    const auto ring_now = ring.layout(j);
    const auto ring_next = ring.layout(j + 1);

    std::vector<std::vector<std::vector<int>>> per_group_rows;
    per_group_rows.reserve(static_cast<std::size_t>(groups_));

    if (j == 0) {
      // Super-step 1: fat-tree ordering inside every group covers all
      // intra-group pairs and restores the group's arrangement.
      for (int g = 0; g < groups_; ++g) {
        const auto& p = content[static_cast<std::size_t>(ring_now[static_cast<std::size_t>(2 * g)])];
        const auto& q = content[static_cast<std::size_t>(ring_now[static_cast<std::size_t>(2 * g + 1)])];
        std::vector<int> region;
        for (int i = 0; i < bs; ++i) {
          region.push_back(p[static_cast<std::size_t>(i)]);
          region.push_back(q[static_cast<std::size_t>(i)]);
        }
        per_group_rows.push_back(fat_tree_region_rows(region).rows);
        // "A block is a rotating block if it is to be shifted" (Section 5):
        // every inter-group move carries the half-exchange. The two-block
        // orderings of later super-steps leave their movers half-exchanged
        // already; the block leaving after this fat-tree super-step must be
        // half-exchanged explicitly so each block rotates exactly once per
        // shift — an even count per sweep, restoring block contents.
        const int bp = ring_now[static_cast<std::size_t>(2 * g)];
        const int bq = ring_now[static_cast<std::size_t>(2 * g + 1)];
        const bool p_moves = group_of_block(ring_next, bp) != g;
        const bool q_moves = group_of_block(ring_next, bq) != g;
        TREESVD_ASSERT(p_moves != q_moves);
        auto& mover = content[static_cast<std::size_t>(p_moves ? bp : bq)];
        std::rotate(mover.begin(), mover.begin() + bs / 2, mover.end());
      }
    } else {
      // Later super-steps: the two blocks meeting in each group run a
      // two-block ordering; the block about to leave is the rotating side.
      for (int g = 0; g < groups_; ++g) {
        const int bp = ring_now[static_cast<std::size_t>(2 * g)];
        const int bq = ring_now[static_cast<std::size_t>(2 * g + 1)];
        const bool p_moves = group_of_block(ring_next, bp) != g;
        const bool q_moves = group_of_block(ring_next, bq) != g;
        TREESVD_ASSERT(p_moves != q_moves);
        const int stay = p_moves ? bq : bp;
        const int move = p_moves ? bp : bq;
        BlockRows br = two_block_rows(content[static_cast<std::size_t>(stay)],
                                      content[static_cast<std::size_t>(move)]);
        // The rotating block's halves end exchanged; record the new internal
        // orders so the next meeting uses them.
        std::vector<int> stay_after;
        std::vector<int> move_after;
        for (std::size_t i = 0; i < br.final_layout.size(); ++i)
          (i % 2 == 0 ? stay_after : move_after).push_back(br.final_layout[i]);
        content[static_cast<std::size_t>(stay)] = std::move(stay_after);
        content[static_cast<std::size_t>(move)] = std::move(move_after);
        per_group_rows.push_back(std::move(br.rows));
      }
    }
    emit_rows(per_group_rows);
  }

  // Post-sweep layout: blocks arranged per the ring's final layout.
  const auto ring_fin = ring.final_layout();
  std::vector<int> fin;
  fin.reserve(static_cast<std::size_t>(n));
  for (int g = 0; g < groups_; ++g) {
    const auto& p = content[static_cast<std::size_t>(ring_fin[static_cast<std::size_t>(2 * g)])];
    const auto& q = content[static_cast<std::size_t>(ring_fin[static_cast<std::size_t>(2 * g + 1)])];
    for (int i = 0; i < bs; ++i) {
      fin.push_back(p[static_cast<std::size_t>(i)]);
      fin.push_back(q[static_cast<std::size_t>(i)]);
    }
  }
  c.layouts.push_back(std::move(fin));
  return c;
}

}  // namespace treesvd
