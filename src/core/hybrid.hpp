#pragma once
// The paper's hybrid ordering (Section 5): ring ordering between groups,
// fat-tree ordering inside groups — the contention-free ordering for skinny
// fat-trees like the CM-5.

#include "core/ordering.hpp"

namespace treesvd {

/// Hybrid ordering. The n indices are divided into `groups` groups of n/groups
/// consecutive indices; each group is split into two interleaved blocks.
/// Treating each block as a super-index, the new ring ordering is applied at
/// block level: super-step 1 runs the fat-tree ordering inside every group
/// (all intra-group pairs), and each later super-step runs a two-block
/// ordering between the two blocks meeting in a group. Between super-steps
/// exactly one block leaves every group in the same ring direction, so the
/// inter-group traffic of every transition is a perfect one-directional shift
/// — with a block size chosen below the capacity of the lowest skinny level,
/// no channel is ever oversubscribed (the paper's contention-freedom claim).
///
/// A block is the rotating side of its two-block ordering exactly when it is
/// about to move; every block moves an even number of times per sweep (the
/// group count must be even, as the paper assumes), so block-internal order
/// is restored after one sweep and the full layout after two.
///
/// Requirements: n/groups a power of two >= 4, groups even >= 2.
/// A sweep takes n-1 steps.
class HybridOrdering final : public Ordering {
 public:
  explicit HybridOrdering(int groups);

  std::string name() const override;
  bool supports(int n) const override;
  int steps(int n) const override { return n - 1; }

  int groups() const noexcept { return groups_; }

 protected:
  Canonical canonical(int n, int sweep_index) const override;

 private:
  int groups_;
};

}  // namespace treesvd
