#include "core/ordering.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace treesvd {

Sweep::Sweep(std::vector<std::vector<int>> layouts, std::vector<std::vector<std::uint8_t>> active)
    : layouts_(std::move(layouts)), active_(std::move(active)) {
  TREESVD_REQUIRE(layouts_.size() >= 2, "a sweep needs at least one step plus a final layout");
  const std::size_t n = layouts_.front().size();
  TREESVD_REQUIRE(n >= 2 && n % 2 == 0, "sweep needs an even number of indices");
  for (const auto& l : layouts_) {
    TREESVD_REQUIRE(l.size() == n, "all layouts must have equal length");
    std::vector<std::uint8_t> seen(n, 0);
    for (int idx : l) {
      TREESVD_REQUIRE(idx >= 0 && static_cast<std::size_t>(idx) < n && !seen[idx],
                      "layout is not a permutation");
      seen[idx] = 1;
    }
  }
  if (!active_.empty()) {
    TREESVD_REQUIRE(active_.size() == layouts_.size() - 1, "one activity mask per step");
    for (const auto& a : active_)
      TREESVD_REQUIRE(a.size() == n / 2, "activity mask has one flag per leaf");
  }
}

std::span<const int> Sweep::layout(int t) const {
  TREESVD_REQUIRE(t >= 0 && static_cast<std::size_t>(t) < layouts_.size(),
                  "step index out of range");
  return layouts_[static_cast<std::size_t>(t)];
}

bool Sweep::leaf_active(int t, int leaf) const {
  TREESVD_REQUIRE(t >= 0 && t < steps(), "step index out of range");
  TREESVD_REQUIRE(leaf >= 0 && leaf < leaves(), "leaf index out of range");
  if (active_.empty()) return true;
  return active_[static_cast<std::size_t>(t)][static_cast<std::size_t>(leaf)] != 0;
}

std::vector<IndexPair> Sweep::pairs(int t) const {
  const auto lay = layout(t);
  TREESVD_REQUIRE(t < steps(), "pairs are defined for steps 0..steps()-1");
  std::vector<IndexPair> out;
  out.reserve(static_cast<std::size_t>(leaves()));
  for (int k = 0; k < leaves(); ++k) {
    if (!leaf_active(t, k)) continue;
    out.push_back({lay[static_cast<std::size_t>(2 * k)], lay[static_cast<std::size_t>(2 * k + 1)]});
  }
  return out;
}

StepPairs Sweep::step_pairs(int t) const {
  TREESVD_REQUIRE(t >= 0 && t < steps(), "pairs are defined for steps 0..steps()-1");
  return StepPairs(layouts_[static_cast<std::size_t>(t)],
                   active_.empty() ? std::span<const std::uint8_t>()
                                   : std::span<const std::uint8_t>(active_[static_cast<std::size_t>(t)]));
}

std::vector<ColumnMove> Sweep::moves(int t) const {
  TREESVD_REQUIRE(t >= 0 && t < steps(), "moves are defined between consecutive steps");
  const auto from = layout(t);
  const auto to = layout(t + 1);
  std::vector<int> slot_of(from.size());
  for (std::size_t s = 0; s < from.size(); ++s) slot_of[static_cast<std::size_t>(from[s])] = static_cast<int>(s);
  std::vector<ColumnMove> out;
  for (std::size_t s = 0; s < to.size(); ++s) {
    const int idx = to[s];
    const int prev = slot_of[static_cast<std::size_t>(idx)];
    if (prev != static_cast<int>(s)) out.push_back({idx, prev, static_cast<int>(s)});
  }
  return out;
}

std::size_t Sweep::rotation_count() const {
  std::size_t c = 0;
  for (int t = 0; t < steps(); ++t)
    for (int k = 0; k < leaves(); ++k)
      if (leaf_active(t, k)) ++c;
  return c;
}

Sweep Ordering::sweep(int n, int sweep_index) const {
  TREESVD_REQUIRE(supports(n), name() + " does not support n=" + std::to_string(n));
  Canonical c = canonical(n, sweep_index);
  return Sweep(std::move(c.layouts), std::move(c.active));
}

Sweep Ordering::sweep_from(std::span<const int> layout0, int sweep_index) const {
  const int n = static_cast<int>(layout0.size());
  TREESVD_REQUIRE(supports(n), name() + " does not support n=" + std::to_string(n));
  Canonical c = canonical(n, sweep_index);
  // Transport the position procedure: canonical layout entry p means "the
  // index that started at position p", which under layout0 is layout0[p].
  for (auto& lay : c.layouts)
    for (auto& v : lay) v = layout0[static_cast<std::size_t>(v)];
  return Sweep(std::move(c.layouts), std::move(c.active));
}

}  // namespace treesvd
