#include "core/registry.hpp"

#include <cstdlib>

#include "core/block_ring.hpp"
#include "core/fat_tree.hpp"
#include "core/hybrid.hpp"
#include "core/new_ring.hpp"
#include "core/odd_even.hpp"
#include "core/round_robin.hpp"
#include "util/require.hpp"

namespace treesvd {

OrderingPtr make_ordering(const std::string& name) {
  if (name == "round-robin") return std::make_shared<RoundRobinOrdering>();
  if (name == "odd-even") return std::make_shared<OddEvenOrdering>();
  if (name == "fat-tree") return std::make_shared<FatTreeOrdering>();
  if (name == "llb-fat-tree") return std::make_shared<LlbFatTreeOrdering>();
  if (name == "new-ring") return std::make_shared<NewRingOrdering>();
  if (name == "modified-ring") return std::make_shared<ModifiedRingOrdering>();
  if (name.rfind("block-ring-g", 0) == 0) {
    const int groups = std::atoi(name.c_str() + 12);
    TREESVD_REQUIRE(groups > 0, "bad block-ring group count in ordering name: " + name);
    return std::make_shared<BlockRingOrdering>(groups);
  }
  if (name.rfind("hybrid-g", 0) == 0) {
    const int groups = std::atoi(name.c_str() + 8);
    TREESVD_REQUIRE(groups > 0, "bad hybrid group count in ordering name: " + name);
    return std::make_shared<HybridOrdering>(groups);
  }
  TREESVD_REQUIRE(false, "unknown ordering: " + name);
  return nullptr;  // unreachable
}

std::vector<std::string> ordering_names(const std::vector<int>& hybrid_groups) {
  std::vector<std::string> names = {"round-robin", "odd-even",  "fat-tree",
                                    "llb-fat-tree", "new-ring", "modified-ring"};
  for (int g : hybrid_groups) names.push_back("hybrid-g" + std::to_string(g));
  for (int g : hybrid_groups) names.push_back("block-ring-g" + std::to_string(g));
  return names;
}

}  // namespace treesvd
