#include "core/validate.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/require.hpp"

namespace treesvd {

SweepValidation validate_sweep(const Sweep& sweep) {
  const int n = sweep.n();
  std::vector<std::uint8_t> met(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0);
  std::size_t count = 0;
  for (int t = 0; t < sweep.steps(); ++t) {
    std::vector<std::uint8_t> busy(static_cast<std::size_t>(n), 0);
    for (const IndexPair& p : sweep.pairs(t)) {
      if (p.even == p.odd)
        return {false, "step " + std::to_string(t) + ": degenerate pair"};
      if (busy[static_cast<std::size_t>(p.even)] || busy[static_cast<std::size_t>(p.odd)])
        return {false, "step " + std::to_string(t) + ": index appears in two pairs"};
      busy[static_cast<std::size_t>(p.even)] = busy[static_cast<std::size_t>(p.odd)] = 1;
      const int lo = std::min(p.even, p.odd);
      const int hi = std::max(p.even, p.odd);
      auto& flag = met[static_cast<std::size_t>(lo) * static_cast<std::size_t>(n) +
                       static_cast<std::size_t>(hi)];
      if (flag)
        return {false, "pair (" + std::to_string(lo + 1) + "," + std::to_string(hi + 1) +
                           ") rotated twice (second time at step " + std::to_string(t) + ")"};
      flag = 1;
      ++count;
    }
  }
  const std::size_t want = static_cast<std::size_t>(n) * static_cast<std::size_t>(n - 1) / 2;
  if (count != want)
    return {false, "sweep rotated " + std::to_string(count) + " pairs, expected " +
                       std::to_string(want)};
  return {true, {}};
}

SweepValidation validate_sweep_sequence(const Ordering& ordering, int n, int sweeps) {
  std::vector<int> layout(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) layout[static_cast<std::size_t>(i)] = i;
  for (int k = 0; k < sweeps; ++k) {
    const Sweep s = ordering.sweep_from(layout, k);
    const SweepValidation v = validate_sweep(s);
    if (!v.valid) return {false, "sweep " + std::to_string(k) + ": " + v.error};
    const auto fin = s.final_layout();
    layout.assign(fin.begin(), fin.end());
  }
  return {true, {}};
}

int comm_level(int from_slot, int to_slot) {
  int a = from_slot / 2;
  int b = to_slot / 2;
  int level = 0;
  while (a != b) {
    a /= 2;
    b /= 2;
    ++level;
  }
  return level;
}

std::vector<std::size_t> level_histogram(const Sweep& sweep) {
  // Tree height is ceil(log2(leaves)): with a non-power-of-two leaf count a
  // transfer between leaves m-1 and 0 still climbs to the first level whose
  // subtree covers both, one past floor(log2).
  int max_level = 0;
  while ((1 << max_level) < sweep.leaves()) ++max_level;
  std::vector<std::size_t> hist(static_cast<std::size_t>(max_level) + 1, 0);
  for (int t = 0; t < sweep.steps(); ++t)
    for (const ColumnMove& mv : sweep.moves(t))
      ++hist[static_cast<std::size_t>(comm_level(mv.from_slot, mv.to_slot))];
  return hist;
}

bool unidirectional_ring_moves(const Sweep& sweep) {
  const int m = sweep.leaves();
  for (int t = 0; t < sweep.steps(); ++t) {
    for (const ColumnMove& mv : sweep.moves(t)) {
      const int from = mv.from_slot / 2;
      const int to = mv.to_slot / 2;
      if (from == to) continue;                  // intra-leaf: free
      if (to != (from + m - 1) % m) return false;  // must be one hop counter-clockwise
    }
  }
  return true;
}

std::vector<std::size_t> moves_per_index(const Sweep& sweep) {
  std::vector<std::size_t> moves(static_cast<std::size_t>(sweep.n()), 0);
  for (int t = 0; t < sweep.steps(); ++t)
    for (const ColumnMove& mv : sweep.moves(t))
      if (mv.from_slot / 2 != mv.to_slot / 2) ++moves[static_cast<std::size_t>(mv.index)];
  return moves;
}

namespace {

/// partner[t][i] = the index paired with i at step t, or -1 when i is idle.
std::vector<std::vector<int>> partner_table(const Sweep& s) {
  std::vector<std::vector<int>> partner(
      static_cast<std::size_t>(s.steps()),
      std::vector<int>(static_cast<std::size_t>(s.n()), -1));
  for (int t = 0; t < s.steps(); ++t) {
    for (const IndexPair& p : s.pairs(t)) {
      partner[static_cast<std::size_t>(t)][static_cast<std::size_t>(p.even)] = p.odd;
      partner[static_cast<std::size_t>(t)][static_cast<std::size_t>(p.odd)] = p.even;
    }
  }
  return partner;
}

}  // namespace

std::optional<std::vector<int>> find_equivalence_relabelling(const Sweep& a, const Sweep& b) {
  // A relabelling lambda must map step-t partners to step-t partners:
  // lambda(partner_a(t, x)) = partner_b(t, lambda(x)). Since every index
  // meets every other during a sweep, fixing lambda(0) forces the whole
  // permutation by propagation — try each of the n candidates.
  if (a.n() != b.n() || a.steps() != b.steps()) return std::nullopt;
  const int n = a.n();
  const auto pa = partner_table(a);
  const auto pb = partner_table(b);
  for (int t = 0; t < a.steps(); ++t) {
    std::size_t ca = 0;
    std::size_t cb = 0;
    for (int i = 0; i < n; ++i) {
      ca += pa[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)] != -1 ? 1u : 0u;
      cb += pb[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)] != -1 ? 1u : 0u;
    }
    if (ca != cb) return std::nullopt;  // different activity shape
  }

  std::vector<int> map(static_cast<std::size_t>(n));
  std::vector<int> rmap(static_cast<std::size_t>(n));
  std::vector<int> queue;
  for (int seed = 0; seed < n; ++seed) {
    std::fill(map.begin(), map.end(), -1);
    std::fill(rmap.begin(), rmap.end(), -1);
    map[0] = seed;
    rmap[static_cast<std::size_t>(seed)] = 0;
    queue.assign(1, 0);
    bool ok = true;
    for (std::size_t qi = 0; ok && qi < queue.size(); ++qi) {
      const int x = queue[qi];
      const int y = map[static_cast<std::size_t>(x)];
      for (int t = 0; ok && t < a.steps(); ++t) {
        const int xa = pa[static_cast<std::size_t>(t)][static_cast<std::size_t>(x)];
        const int yb = pb[static_cast<std::size_t>(t)][static_cast<std::size_t>(y)];
        if ((xa == -1) != (yb == -1)) {
          ok = false;
        } else if (xa != -1) {
          const int cur = map[static_cast<std::size_t>(xa)];
          if (cur == -1) {
            if (rmap[static_cast<std::size_t>(yb)] != -1) {
              ok = false;
            } else {
              map[static_cast<std::size_t>(xa)] = yb;
              rmap[static_cast<std::size_t>(yb)] = xa;
              queue.push_back(xa);
            }
          } else if (cur != yb) {
            ok = false;
          }
        }
      }
    }
    if (!ok) continue;
    // Every index meets index 0 during a valid sweep, so propagation reaches
    // all of them; an incomplete map means the sweeps were not valid.
    if (std::find(map.begin(), map.end(), -1) != map.end()) continue;
    return map;
  }
  return std::nullopt;
}

}  // namespace treesvd
