#pragma once
// Odd-even transposition ordering — the classical nearest-neighbour ring
// ordering (Fig. 1(a) family; Brent-Luk arrays [2], Eberlein-Park rings [3]).

#include "core/ordering.hpp"

namespace treesvd {

/// n line positions; odd phases pair (p0,p1)(p2,p3)..., even phases pair
/// (p1,p2)(p3,p5)... with the ends idle, and the two indices of every
/// compared pair interchange afterwards. A sweep takes n steps (one leaf is
/// idle in every second step) and each index pair meets exactly once — the
/// odd-even transposition sorting network property. After one sweep the line
/// is exactly reversed; two sweeps restore the original order.
///
/// All communication is between neighbouring line positions, so on a tree the
/// traffic is dominated by level-1 links — the baseline the paper's ring
/// orderings compete with.
class OddEvenOrdering final : public Ordering {
 public:
  std::string name() const override { return "odd-even"; }
  bool supports(int n) const override { return n >= 4 && n % 2 == 0; }
  int steps(int n) const override { return n; }

 protected:
  Canonical canonical(int n, int sweep_index) const override;
};

}  // namespace treesvd
