#include "core/block_ring.hpp"

#include <algorithm>

#include "core/new_ring.hpp"
#include "core/odd_even.hpp"
#include "util/require.hpp"

namespace treesvd {
namespace {

int group_of_block(std::span<const int> ring_layout, int block) {
  for (std::size_t s = 0; s < ring_layout.size(); ++s)
    if (ring_layout[s] == block) return static_cast<int>(s) / 2;
  TREESVD_ASSERT(!"block missing from ring layout");
  return -1;
}

/// Cross-pairing of two equal blocks by cyclic shifts: step j pairs x_i with
/// y_{(i+j) mod k}. k steps, every cross pair exactly once, and y returns to
/// its original order at the end — no rotation bookkeeping needed (unlike the
/// divide-and-conquer two-block ordering, it works for any k, at the price of
/// shifting y every step).
std::vector<std::vector<int>> cyclic_cross_rows(const std::vector<int>& x,
                                                const std::vector<int>& y) {
  const std::size_t k = x.size();
  TREESVD_ASSERT(y.size() == k);
  std::vector<std::vector<int>> rows;
  rows.reserve(k);
  for (std::size_t j = 0; j < k; ++j) {
    std::vector<int> row;
    row.reserve(2 * k);
    for (std::size_t i = 0; i < k; ++i) {
      row.push_back(x[i]);
      row.push_back(y[(i + j) % k]);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

BlockRingOrdering::BlockRingOrdering(int groups) : groups_(groups) {
  TREESVD_REQUIRE(groups >= 2 && groups % 2 == 0,
                  "block ring ordering needs an even number of groups >= 2");
}

std::string BlockRingOrdering::name() const {
  return "block-ring-g" + std::to_string(groups_);
}

bool BlockRingOrdering::supports(int n) const {
  if (n % groups_ != 0) return false;
  const int gsz = n / groups_;
  return gsz >= 4 && gsz % 2 == 0;
}

int BlockRingOrdering::steps(int n) const { return n; }

Ordering::Canonical BlockRingOrdering::canonical(int n, int /*sweep_index*/) const {
  const int gsz = n / groups_;
  const int bs = gsz / 2;
  const int nblocks = 2 * groups_;

  std::vector<std::vector<int>> content(static_cast<std::size_t>(nblocks));
  for (int g = 0; g < groups_; ++g) {
    for (int i = 0; i < bs; ++i) {
      content[static_cast<std::size_t>(2 * g)].push_back(g * gsz + 2 * i);
      content[static_cast<std::size_t>(2 * g + 1)].push_back(g * gsz + 2 * i + 1);
    }
  }

  const Sweep ring = NewRingOrdering().sweep(nblocks);
  const OddEvenOrdering odd_even;

  Canonical c;
  for (int j = 0; j < ring.steps(); ++j) {
    const auto ring_now = ring.layout(j);
    if (j == 0) {
      // Super-step 1: odd-even transposition inside every group covers the
      // intra-group pairs and leaves each group's region reversed.
      std::vector<Sweep> intra;
      intra.reserve(static_cast<std::size_t>(groups_));
      std::vector<std::vector<int>> regions;
      for (int g = 0; g < groups_; ++g) {
        const auto& p = content[static_cast<std::size_t>(ring_now[static_cast<std::size_t>(2 * g)])];
        const auto& q = content[static_cast<std::size_t>(ring_now[static_cast<std::size_t>(2 * g + 1)])];
        std::vector<int> region;
        for (int i = 0; i < bs; ++i) {
          region.push_back(p[static_cast<std::size_t>(i)]);
          region.push_back(q[static_cast<std::size_t>(i)]);
        }
        intra.push_back(odd_even.sweep(gsz));
        regions.push_back(std::move(region));
      }
      for (int t = 0; t < intra.front().steps(); ++t) {
        std::vector<int> lay;
        std::vector<std::uint8_t> act;
        lay.reserve(static_cast<std::size_t>(n));
        act.reserve(static_cast<std::size_t>(n / 2));
        for (int g = 0; g < groups_; ++g) {
          const auto local = intra[static_cast<std::size_t>(g)].layout(t);
          for (int s = 0; s < gsz; ++s)
            lay.push_back(regions[static_cast<std::size_t>(g)]
                                 [static_cast<std::size_t>(local[static_cast<std::size_t>(s)])]);
          for (int leaf = 0; leaf < gsz / 2; ++leaf)
            act.push_back(intra[static_cast<std::size_t>(g)].leaf_active(t, leaf) ? 1 : 0);
        }
        c.layouts.push_back(std::move(lay));
        c.active.push_back(std::move(act));
      }
      // The odd-even sweep reverses each region: update block contents (the
      // even-offset block swaps roles with the odd-offset one).
      for (int g = 0; g < groups_; ++g) {
        const int bp = ring_now[static_cast<std::size_t>(2 * g)];
        const int bq = ring_now[static_cast<std::size_t>(2 * g + 1)];
        std::reverse(content[static_cast<std::size_t>(bp)].begin(),
                     content[static_cast<std::size_t>(bp)].end());
        std::reverse(content[static_cast<std::size_t>(bq)].begin(),
                     content[static_cast<std::size_t>(bq)].end());
      }
    } else {
      // Later super-steps: cyclic cross-pairing of the two resident blocks.
      std::vector<std::vector<std::vector<int>>> per_group_rows;
      for (int g = 0; g < groups_; ++g) {
        const auto ring_next = ring.layout(j + 1);
        const int bp = ring_now[static_cast<std::size_t>(2 * g)];
        const int bq = ring_now[static_cast<std::size_t>(2 * g + 1)];
        const bool p_moves = group_of_block(ring_next, bp) != g;
        const int stay = p_moves ? bq : bp;
        const int move = p_moves ? bp : bq;
        per_group_rows.push_back(cyclic_cross_rows(content[static_cast<std::size_t>(stay)],
                                                   content[static_cast<std::size_t>(move)]));
      }
      const std::size_t nsteps = per_group_rows.front().size();
      for (std::size_t t = 0; t < nsteps; ++t) {
        std::vector<int> lay;
        lay.reserve(static_cast<std::size_t>(n));
        for (const auto& rows : per_group_rows)
          lay.insert(lay.end(), rows[t].begin(), rows[t].end());
        c.layouts.push_back(std::move(lay));
        c.active.emplace_back(static_cast<std::size_t>(n / 2), 1);
      }
    }
  }

  // Post-sweep layout: blocks per the ring's final layout, contents as-is.
  const auto ring_fin = ring.final_layout();
  std::vector<int> fin;
  fin.reserve(static_cast<std::size_t>(n));
  for (int g = 0; g < groups_; ++g) {
    const auto& p = content[static_cast<std::size_t>(ring_fin[static_cast<std::size_t>(2 * g)])];
    const auto& q = content[static_cast<std::size_t>(ring_fin[static_cast<std::size_t>(2 * g + 1)])];
    for (int i = 0; i < bs; ++i) {
      fin.push_back(p[static_cast<std::size_t>(i)]);
      fin.push_back(q[static_cast<std::size_t>(i)]);
    }
  }
  c.layouts.push_back(std::move(fin));
  return c;
}

}  // namespace treesvd
