#include "core/round_robin.hpp"

#include <algorithm>

namespace treesvd {

Ordering::Canonical RoundRobinOrdering::canonical(int n, int /*sweep_index*/) const {
  const int m = n / 2;
  std::vector<int> top(static_cast<std::size_t>(m));
  std::vector<int> bot(static_cast<std::size_t>(m));
  for (int k = 0; k < m; ++k) {
    top[static_cast<std::size_t>(k)] = 2 * k;      // indices 1,3,5,... (0-based: 0,2,4,...)
    bot[static_cast<std::size_t>(k)] = 2 * k + 1;  // indices 2,4,6,...
  }

  Canonical c;
  auto emit = [&] {
    std::vector<int> lay(static_cast<std::size_t>(n));
    for (int k = 0; k < m; ++k) {
      lay[static_cast<std::size_t>(2 * k)] = top[static_cast<std::size_t>(k)];
      lay[static_cast<std::size_t>(2 * k + 1)] = bot[static_cast<std::size_t>(k)];
    }
    c.layouts.push_back(std::move(lay));
  };

  for (int t = 0; t < n - 1; ++t) {
    emit();
    // Rotate the tournament cycle T1..T_{m-1}, B_{m-1}..B_0 one place forward
    // (T0 is the fixed player).
    std::vector<int> cyc;
    cyc.reserve(static_cast<std::size_t>(n - 1));
    for (int k = 1; k < m; ++k) cyc.push_back(top[static_cast<std::size_t>(k)]);
    for (int k = m - 1; k >= 0; --k) cyc.push_back(bot[static_cast<std::size_t>(k)]);
    std::rotate(cyc.rbegin(), cyc.rbegin() + 1, cyc.rend());
    for (int k = 1; k < m; ++k) top[static_cast<std::size_t>(k)] = cyc[static_cast<std::size_t>(k - 1)];
    for (int k = m - 1; k >= 0; --k)
      bot[static_cast<std::size_t>(k)] = cyc[static_cast<std::size_t>(m - 1 + (m - 1 - k))];
  }
  emit();  // after n-1 rotations of a (n-1)-cycle the layout is restored
  return c;
}

}  // namespace treesvd
