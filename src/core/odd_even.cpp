#include "core/odd_even.hpp"

namespace treesvd {

Ordering::Canonical OddEvenOrdering::canonical(int n, int /*sweep_index*/) const {
  const int m = n / 2;
  // line[l] = index at line position l; slot s at phase offset o holds
  // line[(s + o) mod n].
  std::vector<int> line(static_cast<std::size_t>(n));
  for (int l = 0; l < n; ++l) line[static_cast<std::size_t>(l)] = l;

  Canonical c;
  auto emit = [&](int offset) {
    std::vector<int> lay(static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s)
      lay[static_cast<std::size_t>(s)] = line[static_cast<std::size_t>((s + offset) % n)];
    c.layouts.push_back(std::move(lay));
  };

  for (int t = 0; t < n; ++t) {
    const int offset = t % 2;
    emit(offset);
    std::vector<std::uint8_t> act(static_cast<std::size_t>(m), 1);
    if (offset == 1) act[static_cast<std::size_t>(m - 1)] = 0;  // wrap pair idle
    c.active.push_back(std::move(act));
    // Interchange within every compared (active) pair.
    for (int k = 0; k < m; ++k) {
      const int a = 2 * k + offset;
      const int b = a + 1;
      if (b >= n) continue;  // idle wrap pair in even phases
      std::swap(line[static_cast<std::size_t>(a)], line[static_cast<std::size_t>(b)]);
    }
  }
  emit(0);  // post-sweep layout: the fully reversed line
  return c;
}

}  // namespace treesvd
