#pragma once
// The paper's new ring ordering (Section 4) and its modified variant.

#include "core/ordering.hpp"

namespace treesvd {

/// New ring ordering (Fig. 7(a)). Defined, as in the paper's equivalence
/// proof, by relabelling the round-robin ordering: split the initial index
/// pairs into two halves, swap the two indices within the left-half pairs,
/// fold the halves together so the pairs interleave, and run round-robin on
/// the relabelled indices. The physical schedule places every step's pairs on
/// a ring of n/2 leaf processors such that
///   * messages travel in one direction only, one hop per step,
///   * every leaf forwards exactly one column per step (this rule makes the
///     placement unique, and it is how the generator computes it),
///   * index 1 never moves; index 2 moves once every two steps and returns
///     home; indices 2k+1, 2k+2 move exactly 2k times (k >= 1),
///   * after one sweep indices 1, 2 are in place and 3..n are reversed; two
///     consecutive sweeps restore the original order.
/// A sweep takes n-1 steps. Within a leaf the larger index sits at the even
/// slot (the paper's first row), except pairs containing index 1.
class NewRingOrdering final : public Ordering {
 public:
  std::string name() const override { return "new-ring"; }
  bool supports(int n) const override { return n >= 4 && n % 2 == 0; }
  int steps(int n) const override { return n - 1; }

 protected:
  Canonical canonical(int n, int sweep_index) const override;
};

/// Modified ring ordering (Fig. 8): the same schedule with the opposite
/// within-leaf orientation (smaller index at the even slot for every pair).
/// Under the fixed-slot sorting rule this delivers the singular values in
/// nonincreasing order after an even number of sweeps and nondecreasing order
/// after an odd number, as the paper notes.
class ModifiedRingOrdering final : public Ordering {
 public:
  std::string name() const override { return "modified-ring"; }
  bool supports(int n) const override { return n >= 4 && n % 2 == 0; }
  int steps(int n) const override { return n - 1; }

 protected:
  Canonical canonical(int n, int sweep_index) const override;
};

namespace detail {
/// Shared generator: `flip_orientation` selects the modified variant.
Ordering::Canonical new_ring_canonical(int n, bool flip_orientation);
}  // namespace detail

}  // namespace treesvd
