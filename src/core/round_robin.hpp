#pragma once
// The round-robin (tournament) ordering of Brent & Luk [2], Fig. 1(b).

#include "core/ordering.hpp"

namespace treesvd {

/// Classical round-robin ordering: positions form two rows of n/2; the index
/// at the top-left position is fixed and all others rotate one place around
/// the cycle T1..T_{m-1}, B_{m-1}..B_0 after each step. A sweep takes n-1
/// steps and restores the original layout.
///
/// On a tree architecture the rotation is a global permutation: roughly half
/// the transfers cross the root, which is what motivates the paper's
/// tree-aware orderings. Slot mapping: top row k -> slot 2k, bottom row
/// k -> slot 2k+1.
class RoundRobinOrdering final : public Ordering {
 public:
  std::string name() const override { return "round-robin"; }
  bool supports(int n) const override { return n >= 4 && n % 2 == 0; }
  int steps(int n) const override { return n - 1; }

 protected:
  Canonical canonical(int n, int sweep_index) const override;
};

}  // namespace treesvd
