#include "core/fat_tree.hpp"

#include "util/require.hpp"

namespace treesvd {
namespace {

bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

std::vector<int> evens(const std::vector<int>& v) {
  std::vector<int> out;
  for (std::size_t i = 0; i < v.size(); i += 2) out.push_back(v[i]);
  return out;
}

std::vector<int> odds(const std::vector<int>& v) {
  std::vector<int> out;
  for (std::size_t i = 1; i < v.size(); i += 2) out.push_back(v[i]);
  return out;
}

std::vector<int> interleave(const std::vector<int>& a, const std::vector<int>& b) {
  std::vector<int> out;
  out.reserve(a.size() + b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.push_back(a[i]);
    out.push_back(b[i]);
  }
  return out;
}

std::vector<int> concat(std::vector<int> a, const std::vector<int>& b) {
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

/// Zips two lockstep row sequences (left region | right region).
std::vector<std::vector<int>> zip_rows(const std::vector<std::vector<int>>& l,
                                       const std::vector<std::vector<int>>& r) {
  TREESVD_ASSERT(l.size() == r.size());
  std::vector<std::vector<int>> out;
  out.reserve(l.size());
  for (std::size_t t = 0; t < l.size(); ++t) out.push_back(concat(l[t], r[t]));
  return out;
}

/// One merge stage on a super-group: super-steps 2 and 3 of the four-block
/// ordering (realised by two-block orderings) plus the restore that returns
/// every block to its home positions.
BlockRows merge_stage(std::span<const int> seg) {
  const std::size_t size = seg.size();
  const std::size_t half = size / 2;
  const std::vector<int> left(seg.begin(), seg.begin() + static_cast<std::ptrdiff_t>(half));
  const std::vector<int> right(seg.begin() + static_cast<std::ptrdiff_t>(half), seg.end());
  const std::vector<int> b1 = evens(left);
  const std::vector<int> b2 = odds(left);
  const std::vector<int> b3 = evens(right);
  const std::vector<int> b4 = odds(right);

  // Module step 1 -> 2: blocks 2 and 3 interchange, giving super-pairs
  // (b1,b3) and (b2,b4); the arriving/odd-position blocks rotate.
  BlockRows a_l = two_block_rows(b1, b3);
  BlockRows a_r = two_block_rows(b2, b4);
  std::vector<std::vector<int>> rows = zip_rows(a_l.rows, a_r.rows);

  // Module step 2 -> 3: blocks 3 and 4 (both half-rotated) interchange.
  const std::vector<int> b1f = evens(a_l.final_layout);
  const std::vector<int> b3f = odds(a_l.final_layout);
  const std::vector<int> b2f = evens(a_r.final_layout);
  const std::vector<int> b4f = odds(a_r.final_layout);
  BlockRows b_l = two_block_rows(b1f, b4f);
  BlockRows b_r = two_block_rows(b2f, b3f);
  for (auto& row : zip_rows(b_l.rows, b_r.rows)) rows.push_back(std::move(row));

  // Module step 3 -> home: every block returns to its original positions,
  // now internally back in order (each rotating block rotated twice).
  const std::vector<int> b1g = evens(b_l.final_layout);
  const std::vector<int> b4g = odds(b_l.final_layout);
  const std::vector<int> b2g = evens(b_r.final_layout);
  const std::vector<int> b3g = odds(b_r.final_layout);
  return {std::move(rows), concat(interleave(b1g, b2g), interleave(b3g, b4g))};
}

/// Shared driver for the restoring (ours) and non-restoring (LLB-style)
/// variants: produce the step layouts of one forward sweep.
Ordering::Canonical forward_fat_tree(int n, bool restoring) {
  std::vector<int> layout(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) layout[static_cast<std::size_t>(i)] = i;

  Ordering::Canonical c;
  // Stage 1: four-block module on every group of four.
  {
    std::vector<BlockRows> groups;
    for (int g = 0; g + 4 <= n; g += 4) {
      const std::span<const int> ids(layout.data() + g, 4);
      groups.push_back(four_block_module(ids, FourBlockVariant::kOrderPreserving));
    }
    for (std::size_t t = 0; t < 3; ++t) {
      std::vector<int> row;
      for (const auto& g : groups) row = concat(std::move(row), g.rows[t]);
      c.layouts.push_back(std::move(row));
    }
    std::vector<int> fin;
    for (const auto& g : groups) fin = concat(std::move(fin), g.final_layout);
    layout = std::move(fin);
  }

  // Merge stages: super-groups of 8, 16, ... n.
  for (int size = 8; size <= n; size *= 2) {
    std::vector<BlockRows> groups;
    for (int base = 0; base + size <= n; base += size) {
      groups.push_back(merge_stage(std::span<const int>(layout.data() + base,
                                                        static_cast<std::size_t>(size))));
    }
    const std::size_t nsteps = groups.front().rows.size();
    for (std::size_t t = 0; t < nsteps; ++t) {
      std::vector<int> row;
      for (const auto& g : groups) row = concat(std::move(row), g.rows[t]);
      c.layouts.push_back(std::move(row));
    }
    std::vector<int> fin;
    for (const auto& g : groups) fin = concat(std::move(fin), g.final_layout);
    layout = std::move(fin);
  }

  if (restoring) {
    c.layouts.push_back(std::move(layout));  // == identity; verified in tests
  } else {
    // Non-restoring: the sweep ends wherever the last step left the columns.
    c.layouts.push_back(c.layouts.back());
  }
  return c;
}

}  // namespace

BlockRows two_block_rows(std::span<const int> x, std::span<const int> y) {
  TREESVD_REQUIRE(x.size() == y.size() && is_pow2(x.size()),
                  "two-block ordering needs equal power-of-two block sizes");
  const std::size_t k = x.size();
  if (k == 1) {
    const std::vector<int> row = {x[0], y[0]};
    return {{row}, row};
  }
  const std::size_t h = k / 2;
  // Super-step A: (X1,Y1) on the left sub-region, (X2,Y2) on the right.
  BlockRows a_l = two_block_rows(x.subspan(0, h), y.subspan(0, h));
  BlockRows a_r = two_block_rows(x.subspan(h), y.subspan(h));
  std::vector<std::vector<int>> rows = zip_rows(a_l.rows, a_r.rows);
  // Level-k exchange: the rotating halves Y1', Y2' swap sub-regions.
  const std::vector<int> x_l = evens(a_l.final_layout);
  const std::vector<int> y_l = odds(a_l.final_layout);
  const std::vector<int> x_r = evens(a_r.final_layout);
  const std::vector<int> y_r = odds(a_r.final_layout);
  // Super-step B: (X1,Y2'), (X2,Y1').
  BlockRows b_l = two_block_rows(x_l, y_r);
  BlockRows b_r = two_block_rows(x_r, y_l);
  for (auto& row : zip_rows(b_l.rows, b_r.rows)) rows.push_back(std::move(row));
  return {std::move(rows), concat(b_l.final_layout, b_r.final_layout)};
}

BlockRows four_block_module(std::span<const int> ids, FourBlockVariant variant) {
  TREESVD_REQUIRE(ids.size() == 4, "four-block module operates on four indices");
  const int a = ids[0];
  const int b = ids[1];
  const int cc = ids[2];
  const int d = ids[3];
  if (variant == FourBlockVariant::kOrderPreserving) {
    // Fig. 4(a): left element of every pair is the smaller index; the step-3
    // arrow (swap before the next communication) is realised by the fused
    // rotate-and-swap of eq. (3) in the SVD engine.
    return {{{a, b, cc, d}, {a, cc, b, d}, {a, d, b, cc}}, {a, b, cc, d}};
  }
  // Fig. 4(b): order of the last two indices is reversed after one sweep.
  return {{{a, b, cc, d}, {a, d, b, cc}, {a, cc, b, d}}, {a, b, d, cc}};
}

BlockRows fat_tree_region_rows(std::span<const int> region) {
  const int g = static_cast<int>(region.size());
  TREESVD_REQUIRE(g >= 4 && (g & (g - 1)) == 0,
                  "fat-tree region size must be a power of two >= 4");
  Ordering::Canonical c = forward_fat_tree(g, /*restoring=*/true);
  BlockRows out;
  for (std::size_t t = 0; t + 1 < c.layouts.size(); ++t) {
    std::vector<int> row;
    row.reserve(region.size());
    for (int pos : c.layouts[t]) row.push_back(region[static_cast<std::size_t>(pos)]);
    out.rows.push_back(std::move(row));
  }
  out.final_layout.assign(region.begin(), region.end());
  return out;
}

Ordering::Canonical FatTreeOrdering::canonical(int n, int /*sweep_index*/) const {
  return forward_fat_tree(n, /*restoring=*/true);
}

Ordering::Canonical LlbFatTreeOrdering::canonical(int n, int sweep_index) const {
  Canonical fwd = forward_fat_tree(n, /*restoring=*/false);
  if (sweep_index % 2 == 0) return fwd;
  // Backward sweep: the forward step layouts in reverse order, ending where
  // the forward sweep began. Its first rotation repeats the forward sweep's
  // last pair — the "free" rotation the paper notes may be omitted (the pair
  // is already orthogonal, so the threshold strategy skips it at run time).
  Canonical bwd;
  // fwd.layouts = [F_0 .. F_{S-1}, F_{S-1}]; take F_{S-1} .. F_0 as the step
  // layouts and F_0 (the identity) as the post-sweep layout.
  bwd.layouts.assign(fwd.layouts.rbegin() + 1, fwd.layouts.rend());
  bwd.layouts.push_back(bwd.layouts.back());
  // Re-anchor at the identity: the backward sweep starts from the forward
  // sweep's final state P = F_{S-1}. A canonical sweep must express layouts
  // in position space, so compose with P^{-1}; sweep_from(P) then reproduces
  // the absolute sequence F_{S-1}, ..., F_0.
  const std::vector<int>& p = fwd.layouts.back();
  std::vector<int> pinv(p.size());
  for (std::size_t s = 0; s < p.size(); ++s)
    pinv[static_cast<std::size_t>(p[s])] = static_cast<int>(s);
  for (auto& lay : bwd.layouts)
    for (auto& v : lay) v = pinv[static_cast<std::size_t>(v)];
  return bwd;
}

}  // namespace treesvd
