#pragma once
// Name -> ordering factory, shared by the benches, examples and tests.

#include <string>
#include <vector>

#include "core/ordering.hpp"

namespace treesvd {

/// Creates an ordering by name: "round-robin", "odd-even", "fat-tree",
/// "llb-fat-tree", "new-ring", "modified-ring", or "hybrid-g<groups>"
/// (e.g. "hybrid-g4"). Throws std::invalid_argument for unknown names.
OrderingPtr make_ordering(const std::string& name);

/// Names of all orderings (hybrid instantiated for the given group counts).
std::vector<std::string> ordering_names(const std::vector<int>& hybrid_groups = {4});

}  // namespace treesvd
