#include "core/new_ring.hpp"

#include <algorithm>

#include "core/round_robin.hpp"
#include "util/require.hpp"

namespace treesvd {
namespace {

/// Fold permutation of the equivalence proof (Section 4): relabel[i] is the
/// index that replaces index i of the round-robin ordering. 0-based.
std::vector<int> fold_relabelling(int n) {
  const int m = n / 2;
  // Initial pairs (0,1)(2,3)...; left half of the pair list gets its pairs
  // swapped; the halves are folded together, left first, right reversed.
  std::vector<std::pair<int, int>> pairs;
  for (int k = 0; k < m; ++k) pairs.emplace_back(2 * k, 2 * k + 1);
  const int half = (m + 1) / 2;
  std::vector<std::pair<int, int>> left(pairs.begin(), pairs.begin() + half);
  std::vector<std::pair<int, int>> right(pairs.begin() + half, pairs.end());
  for (auto& p : left) std::swap(p.first, p.second);
  std::reverse(right.begin(), right.end());
  std::vector<int> folded;
  folded.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < m; ++i) {
    const std::pair<int, int>* p = nullptr;
    if (i % 2 == 0) {
      p = (i / 2 < static_cast<int>(left.size())) ? &left[static_cast<std::size_t>(i / 2)] : nullptr;
    } else {
      p = (i / 2 < static_cast<int>(right.size())) ? &right[static_cast<std::size_t>(i / 2)] : nullptr;
    }
    TREESVD_ASSERT(p != nullptr);
    folded.push_back(p->first);
    folded.push_back(p->second);
  }
  return folded;  // relabel[i] = folded[i]
}

/// Hand-verified schedule for n = 4 (the ring has only two leaves, so the
/// generic forced-placement rule is ambiguous there).
Ordering::Canonical ring4(bool flip) {
  Ordering::Canonical c;
  c.layouts = {{0, 1, 2, 3}, {0, 3, 2, 1}, {0, 2, 3, 1}, {0, 1, 3, 2}};
  if (flip) {
    for (auto& lay : c.layouts)
      for (std::size_t k = 0; k < lay.size(); k += 2)
        if (lay[k] > lay[k + 1]) std::swap(lay[k], lay[k + 1]);
  }
  return c;
}

}  // namespace

namespace detail {

Ordering::Canonical new_ring_canonical(int n, bool flip_orientation) {
  if (n == 4) return ring4(flip_orientation);
  const int m = n / 2;

  // Round-robin pair sequence, relabelled through the fold permutation.
  const Sweep rr = RoundRobinOrdering().sweep(n);
  const std::vector<int> lam = fold_relabelling(n);

  // Forced placement: leaf_of[i] tracks each index's leaf; every new pair
  // settles on the leaf its two members are adjacent across (one of them
  // stays, the other arrives from the clockwise neighbour leaf).
  std::vector<int> leaf_of(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) leaf_of[static_cast<std::size_t>(i)] = i / 2;

  Ordering::Canonical c;
  auto emit = [&](const std::vector<int>& leaves_by_pair,
                  const std::vector<IndexPair>& prs) {
    std::vector<int> lay(static_cast<std::size_t>(n), -1);
    for (std::size_t k = 0; k < prs.size(); ++k) {
      const int leaf = leaves_by_pair[k];
      int a = prs[k].even;
      int b = prs[k].odd;
      // Orientation: larger index at the even slot (the paper's first row),
      // except pairs containing index 0 which keep 0 on top.
      if (a != 0 && b != 0) {
        if (a < b) std::swap(a, b);
      } else if (b == 0) {
        std::swap(a, b);
      }
      // Modified variant (Fig. 8): smaller index on the first row, always.
      if (flip_orientation && a > b) std::swap(a, b);
      lay[static_cast<std::size_t>(2 * leaf)] = a;
      lay[static_cast<std::size_t>(2 * leaf + 1)] = b;
    }
    c.layouts.push_back(std::move(lay));
  };

  for (int t = 0; t < rr.steps(); ++t) {
    std::vector<IndexPair> prs = rr.pairs(t);
    for (auto& p : prs) {
      p.even = lam[static_cast<std::size_t>(p.even)];
      p.odd = lam[static_cast<std::size_t>(p.odd)];
    }
    std::vector<int> leaves_by_pair(prs.size(), -1);
    std::vector<std::uint8_t> used(static_cast<std::size_t>(m), 0);
    for (std::size_t k = 0; k < prs.size(); ++k) {
      const int la = leaf_of[static_cast<std::size_t>(prs[k].even)];
      const int lb = leaf_of[static_cast<std::size_t>(prs[k].odd)];
      int leaf = -1;
      if (la == lb) {
        leaf = la;  // step 0: pairs start co-located
      } else if ((la + 1) % m == lb) {
        leaf = la;  // the odd-slot member walks one leaf counter-clockwise
      } else if ((lb + 1) % m == la) {
        leaf = lb;
      } else {
        TREESVD_ASSERT(!"new-ring pair members are not on adjacent leaves");
      }
      TREESVD_ASSERT(!used[static_cast<std::size_t>(leaf)]);
      used[static_cast<std::size_t>(leaf)] = 1;
      leaves_by_pair[k] = leaf;
      leaf_of[static_cast<std::size_t>(prs[k].even)] = leaf;
      leaf_of[static_cast<std::size_t>(prs[k].odd)] = leaf;
    }
    emit(leaves_by_pair, prs);
  }

  // Post-sweep layout: indices 1, 2 home, 3..n reversed (paper property).
  std::vector<int> fin(static_cast<std::size_t>(n));
  fin[0] = 0;
  fin[1] = 1;
  for (int s = 2; s < n; ++s) fin[static_cast<std::size_t>(s)] = n + 1 - s;
  if (flip_orientation) {
    for (std::size_t k = 0; k < fin.size(); k += 2)
      if (fin[k] > fin[k + 1]) std::swap(fin[k], fin[k + 1]);
  }
  c.layouts.push_back(std::move(fin));
  return c;
}

}  // namespace detail

Ordering::Canonical NewRingOrdering::canonical(int n, int /*sweep_index*/) const {
  return detail::new_ring_canonical(n, /*flip_orientation=*/false);
}

Ordering::Canonical ModifiedRingOrdering::canonical(int n, int /*sweep_index*/) const {
  return detail::new_ring_canonical(n, /*flip_orientation=*/true);
}

}  // namespace treesvd
