#pragma once
// The paper's fat-tree ordering (Section 3): two-block ordering, four-block
// ordering, and the merge procedure that composes them into a full Jacobi
// sweep whose communication is overwhelmingly local on a binary fat-tree.

#include <span>
#include <vector>

#include "core/ordering.hpp"

namespace treesvd {

/// Result of a (partial) block ordering: one region layout per step, plus the
/// region layout after the final movement. Regions list indices slot by slot.
struct BlockRows {
  std::vector<std::vector<int>> rows;
  std::vector<int> final_layout;
};

/// Two-block ordering (Section 3.1). Blocks x and y (equal power-of-two
/// sizes) are interleaved in a region [x0,y0,x1,y1,...]; each step pairs the
/// region's even/odd slots; |x| steps pair every x-index with every y-index
/// exactly once. The y side is the rotating block: after the sweep its two
/// halves have exchanged places (each half internally in order), which is
/// undone by the next application — exactly the paper's bookkeeping.
///
/// A region of 2^(k+1) slots needs one level-k exchange between its two
/// super-steps (and recursively below), which is where the divide-and-conquer
/// keeps communication local.
BlockRows two_block_rows(std::span<const int> x, std::span<const int> y);

/// Four-block basic module variants of Fig. 4.
enum class FourBlockVariant {
  kOrderPreserving,  ///< Fig. 4(a): (1,2)(3,4) / (1,3)(2,4) / (1,4)(2,3); order kept
  kSwapping,         ///< Fig. 4(b): (1,2)(3,4) / (1,4)(2,3) / (1,3)(2,4); 3,4 end swapped
};

/// Basic four-block module on four indices (Fig. 4): three steps pairing all
/// six index pairs.
BlockRows four_block_module(std::span<const int> ids, FourBlockVariant variant);

/// One full fat-tree sweep applied to an arbitrary region (used by the hybrid
/// ordering's intra-group super-step): rows are the region layouts of the
/// region.size()-1 steps; final_layout equals the input region (the ordering
/// restores its arrangement).
BlockRows fat_tree_region_rows(std::span<const int> region);

/// The fat-tree ordering (Sections 3.2-3.3): stage 1 runs the four-block
/// module on groups of four; each later stage merges neighbouring groups with
/// super-steps 2 and 3 of the four-block ordering (super-step 1 is the
/// previous stage) realised by two-block orderings, then returns the blocks
/// to their home positions. One sweep takes n-1 steps and restores the
/// original index order (the property the Lee-Luk-Boley ordering [8] lacks).
///
/// Requires n to be a power of two, n >= 4.
class FatTreeOrdering final : public Ordering {
 public:
  std::string name() const override { return "fat-tree"; }
  bool supports(int n) const override { return n >= 4 && (n & (n - 1)) == 0; }
  int steps(int n) const override { return n - 1; }

 protected:
  Canonical canonical(int n, int sweep_index) const override;
};

/// Lee-Luk-Boley-style fat-tree ordering [8], reconstructed as the
/// *non-restoring* variant of the merge procedure: identical pair coverage
/// and communication structure, but the blocks are left where the exchanges
/// deposited them, so a forward sweep ends with the indices permuted. Even
/// sweeps therefore run the procedure backwards (the forward step sequence in
/// reverse), after which the order is restored — reproducing the behaviour
/// the paper criticises: variable spacing between repetitions of a pair and,
/// on average, an extra half-sweep when convergence needs an even sweep
/// count. The first rotation of each backward sweep repeats the last forward
/// pair, the "free" rotation noted in Section 3.
class LlbFatTreeOrdering final : public Ordering {
 public:
  std::string name() const override { return "llb-fat-tree"; }
  bool supports(int n) const override { return n >= 4 && (n & (n - 1)) == 0; }
  int steps(int n) const override { return n - 1; }

 protected:
  Canonical canonical(int n, int sweep_index) const override;
};

}  // namespace treesvd
