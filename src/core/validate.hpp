#pragma once
// Validation and analysis of Jacobi sweeps: the properties the paper states
// for each ordering, expressed as checkable predicates, plus the
// communication-level accounting used throughout the evaluation.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/ordering.hpp"

namespace treesvd {

/// Result of validate_sweep: empty `error` means the sweep is a valid
/// parallel Jacobi sweep (every unordered index pair rotated exactly once).
struct SweepValidation {
  bool valid = false;
  std::string error;  ///< first violation found, for diagnostics
};

SweepValidation validate_sweep(const Sweep& sweep);

/// Validates a sequence of consecutive sweeps jointly: each sweep valid, and
/// each sweep starts where the previous one ended.
SweepValidation validate_sweep_sequence(const Ordering& ordering, int n, int sweeps);

/// Tree level crossed by a column moving between two slots (2 columns per
/// leaf, leaves paired up the binary tree): 0 = same leaf, 1 = sibling
/// leaves, etc.
int comm_level(int from_slot, int to_slot);

/// Number of inter-leaf column transfers per tree level over a whole sweep
/// (histogram[0] counts free intra-leaf moves).
std::vector<std::size_t> level_histogram(const Sweep& sweep);

/// True when every inter-leaf transfer of the sweep goes one step in the same
/// ring direction (leaf -> leaf-1 mod m, i.e. the new ring ordering's
/// one-way-traffic property).
bool unidirectional_ring_moves(const Sweep& sweep);

/// Number of inter-leaf moves per index over the sweep (including the final
/// restore movement).
std::vector<std::size_t> moves_per_index(const Sweep& sweep);

/// Jacobi-ordering equivalence (the paper's Definition 1): orderings O1, O2
/// are equivalent if one sweep of O1 becomes one sweep of O2 under a fixed
/// relabelling of indices. Returns the relabelling (relabel[i] = image of
/// index i) if one exists. Backtracking over step pair-sets; intended for
/// moderate n (tests use n <= 64).
std::optional<std::vector<int>> find_equivalence_relabelling(const Sweep& a, const Sweep& b);

}  // namespace treesvd
