#pragma once
// Dense column-major matrix.
//
// One-sided Jacobi SVD operates on whole columns, so the storage layout is
// column-major and the primary accessor is col(j) -> std::span<double>.

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace treesvd {

/// Owning dense matrix of doubles, column-major.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialised.
  Matrix(std::size_t rows, std::size_t cols);

  /// Builds from a row-major initializer list (convenient in tests):
  /// Matrix::from_rows({{1,2},{3,4}}).
  static Matrix from_rows(std::initializer_list<std::initializer_list<double>> rows);

  /// n x n identity.
  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t i, std::size_t j) noexcept { return data_[j * rows_ + i]; }
  double operator()(std::size_t i, std::size_t j) const noexcept { return data_[j * rows_ + i]; }

  /// Bounds-checked element access (throws std::invalid_argument).
  double& at(std::size_t i, std::size_t j);
  double at(std::size_t i, std::size_t j) const;

  /// View of column j.
  std::span<double> col(std::size_t j) noexcept { return {data_.data() + j * rows_, rows_}; }
  std::span<const double> col(std::size_t j) const noexcept {
    return {data_.data() + j * rows_, rows_};
  }

  std::span<double> data() noexcept { return {data_.data(), data_.size()}; }
  std::span<const double> data() const noexcept { return {data_.data(), data_.size()}; }

  Matrix transposed() const;

  /// Frobenius norm.
  double frobenius_norm() const noexcept;

  /// Maximum absolute entry.
  double max_abs() const noexcept;

  friend Matrix operator*(const Matrix& a, const Matrix& b);
  friend Matrix operator-(const Matrix& a, const Matrix& b);
  friend Matrix operator+(const Matrix& a, const Matrix& b);
  bool operator==(const Matrix& other) const noexcept = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// ||A^T A - I||_F, the column-orthonormality defect used in tests.
double orthonormality_defect(const Matrix& a);

/// ||A - U*diag(sigma)*V^T||_F; sigma.size() must equal U.cols() == V.cols().
double reconstruction_error(const Matrix& a, const Matrix& u, std::span<const double> sigma,
                            const Matrix& v);

}  // namespace treesvd
