#include "linalg/golub_kahan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/require.hpp"

namespace treesvd {
namespace {

double sign_like(double magnitude, double sign_of) {
  return sign_of >= 0.0 ? std::fabs(magnitude) : -std::fabs(magnitude);
}

}  // namespace

Bidiagonal bidiagonalize(const Matrix& a) {
  TREESVD_REQUIRE(a.rows() >= a.cols() && a.cols() >= 1, "bidiagonalize expects m >= n >= 1");
  Matrix w = a;  // working copy, consumed by the reflectors
  const std::size_t m = w.rows();
  const std::size_t n = w.cols();
  Bidiagonal b;
  b.diag.assign(n, 0.0);
  b.super.assign(n, 0.0);

  for (std::size_t k = 0; k < n; ++k) {
    // Left Householder: zero column k below the diagonal.
    {
      double norm2 = 0.0;
      for (std::size_t i = k; i < m; ++i) norm2 += w(i, k) * w(i, k);
      if (norm2 > 0.0) {
        const double alpha = -sign_like(std::sqrt(norm2), w(k, k));
        const double v0 = w(k, k) - alpha;
        if (v0 != 0.0) {
          for (std::size_t i = k + 1; i < m; ++i) w(i, k) /= v0;
          const double beta = -v0 / alpha;
          for (std::size_t j = k + 1; j < n; ++j) {
            double dot_vx = w(k, j);
            for (std::size_t i = k + 1; i < m; ++i) dot_vx += w(i, k) * w(i, j);
            const double s = beta * dot_vx;
            w(k, j) -= s;
            for (std::size_t i = k + 1; i < m; ++i) w(i, j) -= s * w(i, k);
          }
        }
        w(k, k) = alpha;
      }
      b.diag[k] = w(k, k);
    }
    // Right Householder: zero row k beyond the first superdiagonal.
    if (k + 2 <= n) {
      double norm2 = 0.0;
      for (std::size_t j = k + 1; j < n; ++j) norm2 += w(k, j) * w(k, j);
      if (norm2 > 0.0) {
        const double alpha = -sign_like(std::sqrt(norm2), w(k, k + 1));
        const double v0 = w(k, k + 1) - alpha;
        if (v0 != 0.0) {
          for (std::size_t j = k + 2; j < n; ++j) w(k, j) /= v0;
          const double beta = -v0 / alpha;
          for (std::size_t i = k + 1; i < m; ++i) {
            double dot_vx = w(i, k + 1);
            for (std::size_t j = k + 2; j < n; ++j) dot_vx += w(k, j) * w(i, j);
            const double s = beta * dot_vx;
            w(i, k + 1) -= s;
            for (std::size_t j = k + 2; j < n; ++j) w(i, j) -= s * w(k, j);
          }
        }
        w(k, k + 1) = alpha;
      }
      b.super[k + 1] = w(k, k + 1);
    }
  }
  return b;
}

std::vector<double> bidiagonal_singular_values(Bidiagonal b) {
  auto& d = b.diag;
  auto& e = b.super;  // e[i] couples d[i-1] and d[i]
  const std::size_t n = d.size();
  TREESVD_REQUIRE(e.size() == n, "super-diagonal length mismatch");
  if (n == 0) return {};

  const double eps = 2.3e-16;
  // Golub-Reinsch iteration (values-only variant of the classical svdcmp
  // structure): deflate from the bottom, with the cancellation step for
  // zero diagonal entries and a Wilkinson-type shift from the trailing 2x2.
  for (std::size_t kk = n; kk-- > 0;) {
    for (int iter = 0; iter < 60; ++iter) {
      // Find the split: l such that e[l] ~ 0 (l == 0 always splits), or a
      // zero diagonal entry d[l-1] requiring cancellation.
      bool cancel = false;
      std::size_t l = kk + 1;
      while (l-- > 0) {
        if (l == 0 || std::fabs(e[l]) <= eps * (std::fabs(d[l - 1]) + std::fabs(d[l]))) {
          cancel = false;
          break;
        }
        if (std::fabs(d[l - 1]) <= eps * (std::fabs(d[l]) + std::fabs(e[l]))) {
          cancel = true;
          break;
        }
      }
      if (cancel) {
        // d[l-1] ~ 0: rotate e[l..kk] away from the left so the block splits.
        double c = 0.0;
        double s = 1.0;
        for (std::size_t i = l; i <= kk; ++i) {
          const double f = s * e[i];
          e[i] = c * e[i];
          if (std::fabs(f) <= eps * (std::fabs(d[i]) + 1e-300)) break;
          const double g = d[i];
          const double h = std::hypot(f, g);
          d[i] = h;
          c = g / h;
          s = -f / h;
        }
      }
      const double z = d[kk];
      if (l == kk) {
        if (z < 0.0) d[kk] = -z;  // make nonnegative
        break;                    // converged for this index
      }
      if (iter == 59) throw std::runtime_error("bidiagonal_singular_values: no convergence");

      // Wilkinson-like shift from the trailing 2x2 of B^T B.
      double x = d[l];
      const double y = d[kk - 1];
      const double g0 = e[kk - 1];
      const double h0 = e[kk];
      double f = ((y - z) * (y + z) + (g0 - h0) * (g0 + h0)) / (2.0 * h0 * y);
      const double gg = std::hypot(f, 1.0);
      f = ((x - z) * (x + z) + h0 * (y / (f + sign_like(gg, f)) - h0)) / x;

      // Chase the bulge with Givens rotations.
      double c = 1.0;
      double s = 1.0;
      for (std::size_t i = l + 1; i <= kk; ++i) {
        double g = e[i];
        double y2 = d[i];
        double h = s * g;
        g = c * g;
        double zz = std::hypot(f, h);
        e[i - 1] = zz;
        c = f / zz;
        s = h / zz;
        f = x * c + g * s;
        g = g * c - x * s;
        h = y2 * s;
        y2 *= c;
        zz = std::hypot(f, h);
        d[i - 1] = zz;
        if (zz != 0.0) {
          c = f / zz;
          s = h / zz;
        }
        f = c * g + s * y2;
        x = c * y2 - s * g;
      }
      e[l] = 0.0;
      e[kk] = f;
      d[kk] = x;
    }
  }

  std::sort(d.begin(), d.end(), std::greater<>());
  return d;
}

std::vector<double> golub_kahan_singular_values(const Matrix& a) {
  return bidiagonal_singular_values(bidiagonalize(a));
}

}  // namespace treesvd
