#include "linalg/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "linalg/blas1.hpp"
#include "linalg/dispatch_isa.hpp"
#include "linalg/rotation.hpp"

namespace treesvd {
namespace {

/// Sentinel for "not resolved yet" in the cached resolution below (distinct
/// from kIsaAuto, which is a valid *request* but never a cached result).
constexpr int kUnresolved = -2;

/// The cached resolution: a valid IsaTier value once derived. One relaxed
/// atomic keeps the per-kernel-call cost to a single load; tier-invariant
/// results make any racing rewrite benign (dispatch.hpp).
std::atomic<int>& resolved_slot() noexcept {
  static std::atomic<int> slot{kUnresolved};
  return slot;
}

int clamp_to_host(int tier) noexcept {
  const int widest = static_cast<int>(detected_isa());
  if (tier < 0) return 0;
  return tier < widest ? tier : widest;
}

/// TREESVD_ISA ▷ cpuid. An unset or unparsable variable falls through to
/// detection; a parsable but unsupported tier clamps down (graceful
/// fallback).
int derive_resolution() noexcept {
  const char* env = std::getenv("TREESVD_ISA");
  IsaTier requested;
  if (env != nullptr && parse_isa_name(env, &requested))
    return clamp_to_host(static_cast<int>(requested));
  return static_cast<int>(detected_isa());
}

// Baseline-tier dot/sumsq: the explicit 4-wide vector kernels lose badly at
// default flags (the single generic-vector accumulator emulated on SSE2
// serializes its two xmm chains, while the compiler autovectorizes the
// four-chain scalar twins at full throughput — measured ~4x in
// bench_c8_kernels' per-tier section). The bitwise contract makes the choice
// free, so the baseline table points these two reductions at the `_ref`
// twins; every other baseline kernel stays on the vector copy, which wins
// even at default flags.
double baseline_dot(const double* x, const double* y, std::size_t n) {
  return dot_ref({x, n}, {y, n});
}
double baseline_sumsq(const double* x, std::size_t n) { return sumsq_ref({x, n}); }

const KernelTable kTableBaseline = {
    "baseline",
    IsaTier::kBaseline,
    baseline_dot,
    baseline_sumsq,
    isa_baseline::axpy,
    isa_baseline::gram_pair,
    isa_baseline::rotate_and_norms,
    isa_baseline::rotate_and_norms_swapped,
    isa_baseline::gemm_micro,
    isa_baseline::batched_dot,
    isa_baseline::batched_sumsq,
    isa_baseline::batched_gram_pair,
    isa_baseline::batched_rotate_and_norms,
    isa_baseline::batched_apply_rotation,
    isa_baseline::batched_compute_rotation,
    isa_baseline::batched_drift_gate,
};

#ifdef TREESVD_DISPATCH_X86
const KernelTable kTableAvx2 = {
    "avx2",
    IsaTier::kAvx2,
    isa_avx2::dot,
    isa_avx2::sumsq,
    isa_avx2::axpy,
    isa_avx2::gram_pair,
    isa_avx2::rotate_and_norms,
    isa_avx2::rotate_and_norms_swapped,
    isa_avx2::gemm_micro,
    isa_avx2::batched_dot,
    isa_avx2::batched_sumsq,
    isa_avx2::batched_gram_pair,
    isa_avx2::batched_rotate_and_norms,
    isa_avx2::batched_apply_rotation,
    isa_avx2::batched_compute_rotation,
    isa_avx2::batched_drift_gate,
};

const KernelTable kTableAvx512 = {
    "avx512f",
    IsaTier::kAvx512,
    isa_avx512::dot,
    isa_avx512::sumsq,
    isa_avx512::axpy,
    isa_avx512::gram_pair,
    isa_avx512::rotate_and_norms,
    isa_avx512::rotate_and_norms_swapped,
    isa_avx512::gemm_micro,
    isa_avx512::batched_dot,
    isa_avx512::batched_sumsq,
    isa_avx512::batched_gram_pair,
    isa_avx512::batched_rotate_and_norms,
    isa_avx512::batched_apply_rotation,
    isa_avx512::batched_compute_rotation,
    isa_avx512::batched_drift_gate,
};
#endif  // TREESVD_DISPATCH_X86

}  // namespace

IsaTier detected_isa() noexcept {
#ifdef TREESVD_DISPATCH_X86
  static const IsaTier tier = [] {
    if (__builtin_cpu_supports("avx512f")) return IsaTier::kAvx512;
    if (__builtin_cpu_supports("avx2")) return IsaTier::kAvx2;
    return IsaTier::kBaseline;
  }();
  return tier;
#else
  return IsaTier::kBaseline;
#endif
}

bool isa_supported(IsaTier tier) noexcept {
  return static_cast<int>(tier) <= static_cast<int>(detected_isa());
}

IsaTier resolved_isa() noexcept {
  int v = resolved_slot().load(std::memory_order_relaxed);
  if (v == kUnresolved) {
    v = derive_resolution();
    resolved_slot().store(v, std::memory_order_relaxed);
  }
  return static_cast<IsaTier>(v);
}

const char* isa_name(IsaTier tier) noexcept {
  switch (tier) {
    case IsaTier::kAvx512: return "avx512f";
    case IsaTier::kAvx2: return "avx2";
    case IsaTier::kBaseline: break;
  }
  return "baseline";
}

bool parse_isa_name(const char* name, IsaTier* out) noexcept {
  if (name == nullptr || out == nullptr) return false;
  if (std::strcmp(name, "baseline") == 0) {
    *out = IsaTier::kBaseline;
    return true;
  }
  if (std::strcmp(name, "avx2") == 0) {
    *out = IsaTier::kAvx2;
    return true;
  }
  if (std::strcmp(name, "avx512f") == 0 || std::strcmp(name, "avx512") == 0) {
    *out = IsaTier::kAvx512;
    return true;
  }
  return false;
}

const KernelTable& kernels() noexcept { return kernels_for(resolved_isa()); }

const KernelTable& kernels_for(IsaTier tier) noexcept {
#ifdef TREESVD_DISPATCH_X86
  switch (static_cast<IsaTier>(clamp_to_host(static_cast<int>(tier)))) {
    case IsaTier::kAvx512: return kTableAvx512;
    case IsaTier::kAvx2: return kTableAvx2;
    case IsaTier::kBaseline: break;
  }
#else
  (void)tier;  // only the baseline tier exists off x86
#endif
  return kTableBaseline;
}

void set_isa_override(int tier) noexcept {
  resolved_slot().store(tier == kIsaAuto ? derive_resolution() : clamp_to_host(tier),
                        std::memory_order_relaxed);
}

ScopedIsaOverride::ScopedIsaOverride(int tier) noexcept
    : prev_(resolved_slot().load(std::memory_order_relaxed)), active_(tier != kIsaAuto) {
  if (active_) set_isa_override(tier);
}

ScopedIsaOverride::~ScopedIsaOverride() {
  if (active_) resolved_slot().store(prev_, std::memory_order_relaxed);
}

void gemm_micro_ref(const double* ap, const double* bp, std::size_t kc, double* acc) noexcept {
  // The scalar chain canon: each of the 16 accumulator elements advances
  // once per depth step, in k order (the historical micro_kernel loop).
  for (std::size_t k = 0; k < kc; ++k) {
    const double* __restrict av = ap + k * 4;
    const double* __restrict bv = bp + k * 4;
    for (std::size_t r = 0; r < 4; ++r)
      for (std::size_t c = 0; c < 4; ++c) acc[r * 4 + c] += av[r] * bv[c];
  }
}

}  // namespace treesvd
