#include "linalg/symmetric_eigen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/require.hpp"

namespace treesvd {
namespace {

double hypot2(double a, double b) noexcept { return std::hypot(a, b); }

}  // namespace

Tridiagonal tridiagonalize(const Matrix& sym) {
  TREESVD_REQUIRE(sym.rows() == sym.cols(), "tridiagonalize needs a square matrix");
  const std::size_t n = sym.rows();
  Matrix a = sym;  // working copy; lower triangle is consumed
  std::vector<double> d(n, 0.0);
  std::vector<double> e(n, 0.0);

  // Householder reduction (eigenvalues-only variant of EISPACK tred1,
  // operating on rows i = n-1 .. 1).
  for (std::size_t i = n; i-- > 1;) {
    const std::size_t l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (std::size_t k = 0; k <= l; ++k) scale += std::fabs(a(i, k));
      if (scale == 0.0) {
        e[i] = a(i, l);
      } else {
        for (std::size_t k = 0; k <= l; ++k) {
          a(i, k) /= scale;
          h += a(i, k) * a(i, k);
        }
        double f = a(i, l);
        double g = f >= 0.0 ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        a(i, l) = f - g;
        f = 0.0;
        for (std::size_t j = 0; j <= l; ++j) {
          // form element of A*u in e[j]
          g = 0.0;
          for (std::size_t k = 0; k <= j; ++k) g += a(j, k) * a(i, k);
          for (std::size_t k = j + 1; k <= l; ++k) g += a(k, j) * a(i, k);
          e[j] = g / h;
          f += e[j] * a(i, j);
        }
        const double hh = f / (h + h);
        for (std::size_t j = 0; j <= l; ++j) {
          f = a(i, j);
          g = e[j] - hh * f;
          e[j] = g;
          for (std::size_t k = 0; k <= j; ++k) a(j, k) -= f * e[k] + g * a(i, k);
        }
      }
    } else {
      e[i] = a(i, l);
    }
    d[i] = h;
  }

  for (std::size_t i = 0; i < n; ++i) d[i] = a(i, i);
  return Tridiagonal{std::move(d), std::move(e)};
}

std::vector<double> tql_eigenvalues(Tridiagonal t) {
  auto& d = t.diag;
  auto& e = t.sub;
  const std::size_t n = d.size();
  TREESVD_REQUIRE(e.size() == n, "sub-diagonal length mismatch");
  if (n == 0) return {};

  // Shift the sub-diagonal left (tqli convention: e[0..n-2] are the couplings).
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  for (std::size_t l = 0; l < n; ++l) {
    int iter = 0;
    std::size_t m = l;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= 1e-300 || std::fabs(e[m]) <= 2.3e-16 * dd) break;
      }
      if (m != l) {
        if (++iter == 50) throw std::runtime_error("tql_eigenvalues: no convergence");
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = hypot2(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + (g >= 0.0 ? std::fabs(r) : -std::fabs(r)));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        for (std::size_t i = m; i-- > l;) {
          double f = s * e[i];
          const double b = c * e[i];
          r = hypot2(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
        }
        if (r == 0.0 && m - l > 1) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }

  std::sort(d.begin(), d.end());
  return d;
}

std::vector<double> symmetric_eigenvalues(const Matrix& sym) {
  return tql_eigenvalues(tridiagonalize(sym));
}

std::vector<double> singular_values_oracle(const Matrix& a) {
  TREESVD_REQUIRE(a.rows() >= a.cols(), "oracle expects m >= n");
  const Matrix gram = a.transposed() * a;
  std::vector<double> ev = symmetric_eigenvalues(gram);
  std::vector<double> sigma(ev.size());
  for (std::size_t k = 0; k < ev.size(); ++k) {
    const double lambda = std::max(ev[ev.size() - 1 - k], 0.0);
    sigma[k] = std::sqrt(lambda);
  }
  return sigma;  // descending
}

}  // namespace treesvd
