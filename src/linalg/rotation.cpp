#include "linalg/rotation.hpp"

#include <cmath>

#include "linalg/dispatch.hpp"

namespace treesvd {

bool is_orthogonal(const GramPair& g, double tol) noexcept {
  return std::fabs(g.apq) <= tol * std::sqrt(g.app) * std::sqrt(g.aqq);
}

namespace {
// Above this magnitude, sqrt(1 + zeta^2) rounds to |zeta| exactly, so the
// textbook small-root formula collapses to 1/(2 zeta) bit-for-bit; taking
// that branch explicitly avoids the zeta*zeta intermediate, which overflows
// for |zeta| > ~1e154 (tiny/denormal apq against a large norm difference).
constexpr double kZetaBig = 134217728.0;  // 2^27
}  // namespace

JacobiRotation compute_rotation(const GramPair& g, double tol) noexcept {
  // A zero column has nothing to rotate; a *negative* diagonal (cancellation
  // in an accumulated Gram matrix) would make the threshold sqrt NaN and
  // disable the orthogonality test — both are degenerate, both get identity.
  if (g.app <= 0.0 || g.aqq <= 0.0) return {};
  // Overflowed or poisoned Gram data carries no usable angle; returning
  // identity keeps the engine deterministic and lets the status contract
  // (stall detection) report the degradation instead of rotating on garbage.
  if (!std::isfinite(g.app) || !std::isfinite(g.aqq) || !std::isfinite(g.apq)) return {};
  if (is_orthogonal(g, tol)) return {};
  if (g.apq == 0.0) return {};  // reachable only via a NaN threshold above
  const double zeta = (g.aqq - g.app) / (2.0 * g.apq);
  double t;
  if (std::fabs(zeta) >= kZetaBig) {
    t = 1.0 / (2.0 * zeta);
  } else {
    t = (zeta >= 0.0 ? 1.0 : -1.0) / (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
  }
  // t underflows to zero only when zeta overflowed to infinity: the rotation
  // is indistinguishable from the identity at working precision, and
  // applying it would count as activity forever without changing the data.
  if (t == 0.0) return {};
  const double c = 1.0 / std::sqrt(1.0 + t * t);
  return {c, c * t, false};
}

void apply_rotation(std::span<double> x, std::span<double> y, double c, double s) noexcept {
  double* __restrict xp = x.data();
  double* __restrict yp = y.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = xp[i];
    const double yi = yp[i];
    xp[i] = c * xi - s * yi;
    yp[i] = s * xi + c * yi;
  }
}

void apply_rotation_swapped(std::span<double> x, std::span<double> y, double c,
                            double s) noexcept {
  double* __restrict xp = x.data();
  double* __restrict yp = y.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = xp[i];
    const double yi = yp[i];
    xp[i] = s * xi + c * yi;
    yp[i] = c * xi - s * yi;
  }
}

namespace {

// Shared body for the fused reference twins; `kSwap` selects which rotated
// vector lands in which column (paper eq. (3) writes the pair back in sorted
// order). The compiler cannot vectorise this loop on its own — the norm
// accumulation is a floating-point reduction, which strict IEEE semantics
// forbid reassociating — so the chain split is spelled out: element i feeds
// norm chain i % 4, chains combine (a0+a2)+(a1+a3), the tail is appended
// after the combine. The dispatched SIMD kernels (kernels_single_impl.inc)
// keep one 4-wide vector accumulator whose lanes *are* these chains, so they
// match bitwise.
template <bool kSwap>
RotatedNorms rotate_norms_ref_impl(double* __restrict xp, double* __restrict yp,
                                   std::size_t n, double c, double s) noexcept {
  double xx0 = 0.0, xx1 = 0.0, xx2 = 0.0, xx3 = 0.0;
  double yy0 = 0.0, yy1 = 0.0, yy2 = 0.0, yy3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double r0 = c * xp[i] - s * yp[i];
    const double t0 = s * xp[i] + c * yp[i];
    const double r1 = c * xp[i + 1] - s * yp[i + 1];
    const double t1 = s * xp[i + 1] + c * yp[i + 1];
    const double r2 = c * xp[i + 2] - s * yp[i + 2];
    const double t2 = s * xp[i + 2] + c * yp[i + 2];
    const double r3 = c * xp[i + 3] - s * yp[i + 3];
    const double t3 = s * xp[i + 3] + c * yp[i + 3];
    const double nx0 = kSwap ? t0 : r0;
    const double ny0 = kSwap ? r0 : t0;
    const double nx1 = kSwap ? t1 : r1;
    const double ny1 = kSwap ? r1 : t1;
    const double nx2 = kSwap ? t2 : r2;
    const double ny2 = kSwap ? r2 : t2;
    const double nx3 = kSwap ? t3 : r3;
    const double ny3 = kSwap ? r3 : t3;
    xp[i] = nx0;
    yp[i] = ny0;
    xp[i + 1] = nx1;
    yp[i + 1] = ny1;
    xp[i + 2] = nx2;
    yp[i + 2] = ny2;
    xp[i + 3] = nx3;
    yp[i + 3] = ny3;
    xx0 += nx0 * nx0;
    yy0 += ny0 * ny0;
    xx1 += nx1 * nx1;
    yy1 += ny1 * ny1;
    xx2 += nx2 * nx2;
    yy2 += ny2 * ny2;
    xx3 += nx3 * nx3;
    yy3 += ny3 * ny3;
  }
  double xx = (xx0 + xx2) + (xx1 + xx3);
  double yy = (yy0 + yy2) + (yy1 + yy3);
  for (; i < n; ++i) {
    const double r0 = c * xp[i] - s * yp[i];
    const double t0 = s * xp[i] + c * yp[i];
    const double nx = kSwap ? t0 : r0;
    const double ny = kSwap ? r0 : t0;
    xp[i] = nx;
    yp[i] = ny;
    xx += nx * nx;
    yy += ny * ny;
  }
  return {xx, yy};
}

}  // namespace

RotatedNorms rotate_and_norms(std::span<double> x, std::span<double> y, double c,
                              double s) noexcept {
  RotatedNorms r;
  kernels().rotate_and_norms(x.data(), y.data(), x.size(), c, s, &r.app, &r.aqq);
  return r;
}

RotatedNorms rotate_and_norms_swapped(std::span<double> x, std::span<double> y, double c,
                                      double s) noexcept {
  RotatedNorms r;
  kernels().rotate_and_norms_swapped(x.data(), y.data(), x.size(), c, s, &r.app, &r.aqq);
  return r;
}

RotatedNorms rotate_and_norms_ref(std::span<double> x, std::span<double> y, double c,
                                  double s) noexcept {
  return rotate_norms_ref_impl<false>(x.data(), y.data(), x.size(), c, s);
}

RotatedNorms rotate_and_norms_swapped_ref(std::span<double> x, std::span<double> y, double c,
                                          double s) noexcept {
  return rotate_norms_ref_impl<true>(x.data(), y.data(), x.size(), c, s);
}

namespace detail {

void batched_compute_rotation_scalar(const double* app, const double* aqq, const double* apq,
                                     std::size_t w, double tol, double* c, double* s,
                                     std::uint8_t* identity) noexcept {
  for (std::size_t b = 0; b < w; ++b) {
    const JacobiRotation r = compute_rotation({app[b], aqq[b], apq[b]}, tol);
    c[b] = r.identity ? 1.0 : r.c;
    s[b] = r.identity ? 0.0 : r.s;
    identity[b] = r.identity ? 1 : 0;
  }
}

void batched_drift_gate_scalar(const double* app, const double* aqq, const double* apq,
                               std::size_t w, double tol, double guard,
                               std::uint8_t* near_mask) noexcept {
  for (std::size_t b = 0; b < w; ++b) {
    const double thresh = tol * std::sqrt(app[b]) * std::sqrt(aqq[b]);
    const double mag = std::fabs(apq[b]);
    bool near = false;
    if (mag > 0.0) {
      if (thresh > 0.0 && std::isfinite(thresh)) {
        const double ratio = mag / thresh;
        near = ratio <= guard && ratio * guard >= 1.0;
      } else {
        near = true;  // degenerate threshold: decide from fresh data
      }
    }
    near_mask[b] = near ? 1 : 0;
  }
}

}  // namespace detail

void batched_compute_rotation(const double* app, const double* aqq, const double* apq,
                              std::size_t w, double tol, double* c, double* s,
                              std::uint8_t* identity) noexcept {
  if (w % 4 == 0) {
    kernels().batched_compute_rotation(app, aqq, apq, w, tol, c, s, identity);
    return;
  }
  detail::batched_compute_rotation_scalar(app, aqq, apq, w, tol, c, s, identity);
}

void batched_drift_gate(const double* app, const double* aqq, const double* apq,
                        std::size_t w, double tol, double guard,
                        std::uint8_t* near_mask) noexcept {
  if (w % 4 == 0) {
    kernels().batched_drift_gate(app, aqq, apq, w, tol, guard, near_mask);
    return;
  }
  detail::batched_drift_gate_scalar(app, aqq, apq, w, tol, guard, near_mask);
}

RotatedNorms rotated_norms(const GramPair& g, const JacobiRotation& r) noexcept {
  if (r.identity || r.c == 0.0) return {g.app, g.aqq};
  const double t = r.s / r.c;
  return {g.app - t * g.apq, g.aqq + t * g.apq};
}

}  // namespace treesvd
