#include "linalg/rotation.hpp"

#include <cmath>

namespace treesvd {

bool is_orthogonal(const GramPair& g, double tol) noexcept {
  return std::fabs(g.apq) <= tol * std::sqrt(g.app) * std::sqrt(g.aqq);
}

JacobiRotation compute_rotation(const GramPair& g, double tol) noexcept {
  if (g.app == 0.0 || g.aqq == 0.0) return {};  // zero column: nothing to rotate
  if (is_orthogonal(g, tol)) return {};
  const double zeta = (g.aqq - g.app) / (2.0 * g.apq);
  const double t = (zeta >= 0.0 ? 1.0 : -1.0) / (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
  const double c = 1.0 / std::sqrt(1.0 + t * t);
  return {c, c * t, false};
}

void apply_rotation(std::span<double> x, std::span<double> y, double c, double s) noexcept {
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = x[i];
    const double yi = y[i];
    x[i] = c * xi - s * yi;
    y[i] = s * xi + c * yi;
  }
}

void apply_rotation_swapped(std::span<double> x, std::span<double> y, double c,
                            double s) noexcept {
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = x[i];
    const double yi = y[i];
    x[i] = s * xi + c * yi;
    y[i] = c * xi - s * yi;
  }
}

RotatedNorms rotated_norms(const GramPair& g, const JacobiRotation& r) noexcept {
  if (r.identity || r.c == 0.0) return {g.app, g.aqq};
  const double t = r.s / r.c;
  return {g.app - t * g.apq, g.aqq + t * g.apq};
}

}  // namespace treesvd
