#include "linalg/rotation.hpp"

#include <cmath>

#include "linalg/blas1_batched_isa.hpp"

namespace treesvd {

bool is_orthogonal(const GramPair& g, double tol) noexcept {
  return std::fabs(g.apq) <= tol * std::sqrt(g.app) * std::sqrt(g.aqq);
}

namespace {
// Above this magnitude, sqrt(1 + zeta^2) rounds to |zeta| exactly, so the
// textbook small-root formula collapses to 1/(2 zeta) bit-for-bit; taking
// that branch explicitly avoids the zeta*zeta intermediate, which overflows
// for |zeta| > ~1e154 (tiny/denormal apq against a large norm difference).
constexpr double kZetaBig = 134217728.0;  // 2^27
}  // namespace

JacobiRotation compute_rotation(const GramPair& g, double tol) noexcept {
  // A zero column has nothing to rotate; a *negative* diagonal (cancellation
  // in an accumulated Gram matrix) would make the threshold sqrt NaN and
  // disable the orthogonality test — both are degenerate, both get identity.
  if (g.app <= 0.0 || g.aqq <= 0.0) return {};
  // Overflowed or poisoned Gram data carries no usable angle; returning
  // identity keeps the engine deterministic and lets the status contract
  // (stall detection) report the degradation instead of rotating on garbage.
  if (!std::isfinite(g.app) || !std::isfinite(g.aqq) || !std::isfinite(g.apq)) return {};
  if (is_orthogonal(g, tol)) return {};
  if (g.apq == 0.0) return {};  // reachable only via a NaN threshold above
  const double zeta = (g.aqq - g.app) / (2.0 * g.apq);
  double t;
  if (std::fabs(zeta) >= kZetaBig) {
    t = 1.0 / (2.0 * zeta);
  } else {
    t = (zeta >= 0.0 ? 1.0 : -1.0) / (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
  }
  // t underflows to zero only when zeta overflowed to infinity: the rotation
  // is indistinguishable from the identity at working precision, and
  // applying it would count as activity forever without changing the data.
  if (t == 0.0) return {};
  const double c = 1.0 / std::sqrt(1.0 + t * t);
  return {c, c * t, false};
}

void apply_rotation(std::span<double> x, std::span<double> y, double c, double s) noexcept {
  double* __restrict xp = x.data();
  double* __restrict yp = y.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = xp[i];
    const double yi = yp[i];
    xp[i] = c * xi - s * yi;
    yp[i] = s * xi + c * yi;
  }
}

void apply_rotation_swapped(std::span<double> x, std::span<double> y, double c,
                            double s) noexcept {
  double* __restrict xp = x.data();
  double* __restrict yp = y.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = xp[i];
    const double yi = yp[i];
    xp[i] = s * xi + c * yi;
    yp[i] = c * xi - s * yi;
  }
}

namespace {

#if defined(__GNUC__) || defined(__clang__)
#define TREESVD_HAVE_VEC_EXT 1
// Two-lane double vector (one SSE2 register). The compiler cannot vectorise
// the fused loop on its own — the norm accumulation is a floating-point
// reduction, which strict IEEE semantics forbid reassociating — so the lane
// split is spelled out here. Each lane still computes exactly
// c*x[i] - s*y[i] / s*x[i] + c*y[i], so the rotated columns are bit-identical
// to apply_rotation*(); only the *order* of the norm summation differs.
typedef double v2d __attribute__((vector_size(16)));
#endif

// Shared body for the fused kernels; `kSwap` selects which rotated vector
// lands in which column (paper eq. (3) writes the pair back in sorted order).
template <bool kSwap>
RotatedNorms rotate_and_norms_impl(double* __restrict xp, double* __restrict yp,
                                   std::size_t n, double c, double s) noexcept {
  double xx = 0.0;
  double yy = 0.0;
  std::size_t i = 0;
#ifdef TREESVD_HAVE_VEC_EXT
  v2d xx0 = {0.0, 0.0};
  v2d xx1 = {0.0, 0.0};
  v2d yy0 = {0.0, 0.0};
  v2d yy1 = {0.0, 0.0};
  const v2d cv = {c, c};
  const v2d sv = {s, s};
  for (; i + 4 <= n; i += 4) {
    v2d x0;
    v2d x1;
    v2d y0;
    v2d y1;
    __builtin_memcpy(&x0, xp + i, 16);
    __builtin_memcpy(&x1, xp + i + 2, 16);
    __builtin_memcpy(&y0, yp + i, 16);
    __builtin_memcpy(&y1, yp + i + 2, 16);
    const v2d r0 = cv * x0 - sv * y0;
    const v2d t0 = sv * x0 + cv * y0;
    const v2d r1 = cv * x1 - sv * y1;
    const v2d t1 = sv * x1 + cv * y1;
    const v2d nx0 = kSwap ? t0 : r0;
    const v2d ny0 = kSwap ? r0 : t0;
    const v2d nx1 = kSwap ? t1 : r1;
    const v2d ny1 = kSwap ? r1 : t1;
    __builtin_memcpy(xp + i, &nx0, 16);
    __builtin_memcpy(xp + i + 2, &nx1, 16);
    __builtin_memcpy(yp + i, &ny0, 16);
    __builtin_memcpy(yp + i + 2, &ny1, 16);
    xx0 += nx0 * nx0;
    yy0 += ny0 * ny0;
    xx1 += nx1 * nx1;
    yy1 += ny1 * ny1;
  }
  const v2d xxs = xx0 + xx1;
  const v2d yys = yy0 + yy1;
  xx = xxs[0] + xxs[1];
  yy = yys[0] + yys[1];
#else
  // Portable fallback: 2-way unroll with independent accumulators so the
  // reductions don't form one long dependence chain.
  double xxa = 0.0;
  double xxb = 0.0;
  double yya = 0.0;
  double yyb = 0.0;
  for (; i + 2 <= n; i += 2) {
    const double r0 = c * xp[i] - s * yp[i];
    const double t0 = s * xp[i] + c * yp[i];
    const double r1 = c * xp[i + 1] - s * yp[i + 1];
    const double t1 = s * xp[i + 1] + c * yp[i + 1];
    const double nx0 = kSwap ? t0 : r0;
    const double ny0 = kSwap ? r0 : t0;
    const double nx1 = kSwap ? t1 : r1;
    const double ny1 = kSwap ? r1 : t1;
    xp[i] = nx0;
    yp[i] = ny0;
    xp[i + 1] = nx1;
    yp[i + 1] = ny1;
    xxa += nx0 * nx0;
    yya += ny0 * ny0;
    xxb += nx1 * nx1;
    yyb += ny1 * ny1;
  }
  xx = xxa + xxb;
  yy = yya + yyb;
#endif
  for (; i < n; ++i) {
    const double r0 = c * xp[i] - s * yp[i];
    const double t0 = s * xp[i] + c * yp[i];
    const double nx = kSwap ? t0 : r0;
    const double ny = kSwap ? r0 : t0;
    xp[i] = nx;
    yp[i] = ny;
    xx += nx * nx;
    yy += ny * ny;
  }
  return {xx, yy};
}

}  // namespace

RotatedNorms rotate_and_norms(std::span<double> x, std::span<double> y, double c,
                              double s) noexcept {
  return rotate_and_norms_impl<false>(x.data(), y.data(), x.size(), c, s);
}

RotatedNorms rotate_and_norms_swapped(std::span<double> x, std::span<double> y, double c,
                                      double s) noexcept {
  return rotate_and_norms_impl<true>(x.data(), y.data(), x.size(), c, s);
}

namespace detail {

void batched_compute_rotation_scalar(const double* app, const double* aqq, const double* apq,
                                     std::size_t w, double tol, double* c, double* s,
                                     std::uint8_t* identity) noexcept {
  for (std::size_t b = 0; b < w; ++b) {
    const JacobiRotation r = compute_rotation({app[b], aqq[b], apq[b]}, tol);
    c[b] = r.identity ? 1.0 : r.c;
    s[b] = r.identity ? 0.0 : r.s;
    identity[b] = r.identity ? 1 : 0;
  }
}

void batched_drift_gate_scalar(const double* app, const double* aqq, const double* apq,
                               std::size_t w, double tol, double guard,
                               std::uint8_t* near_mask) noexcept {
  for (std::size_t b = 0; b < w; ++b) {
    const double thresh = tol * std::sqrt(app[b]) * std::sqrt(aqq[b]);
    const double mag = std::fabs(apq[b]);
    bool near = false;
    if (mag > 0.0) {
      if (thresh > 0.0 && std::isfinite(thresh)) {
        const double ratio = mag / thresh;
        near = ratio <= guard && ratio * guard >= 1.0;
      } else {
        near = true;  // degenerate threshold: decide from fresh data
      }
    }
    near_mask[b] = near ? 1 : 0;
  }
}

}  // namespace detail

void batched_compute_rotation(const double* app, const double* aqq, const double* apq,
                              std::size_t w, double tol, double* c, double* s,
                              std::uint8_t* identity) noexcept {
#ifdef TREESVD_BATCH_ISA_X86
  if (w % 4 == 0) {
    switch (batched_isa_tier()) {
      case 2:
        batched_compute_rotation_avx512(app, aqq, apq, w, tol, c, s, identity);
        return;
      case 1:
        batched_compute_rotation_avx2(app, aqq, apq, w, tol, c, s, identity);
        return;
      default:
        break;
    }
  }
#endif
  detail::batched_compute_rotation_scalar(app, aqq, apq, w, tol, c, s, identity);
}

void batched_drift_gate(const double* app, const double* aqq, const double* apq,
                        std::size_t w, double tol, double guard,
                        std::uint8_t* near_mask) noexcept {
#ifdef TREESVD_BATCH_ISA_X86
  if (w % 4 == 0) {
    switch (batched_isa_tier()) {
      case 2:
        batched_drift_gate_avx512(app, aqq, apq, w, tol, guard, near_mask);
        return;
      case 1:
        batched_drift_gate_avx2(app, aqq, apq, w, tol, guard, near_mask);
        return;
      default:
        break;
    }
  }
#endif
  detail::batched_drift_gate_scalar(app, aqq, apq, w, tol, guard, near_mask);
}

RotatedNorms rotated_norms(const GramPair& g, const JacobiRotation& r) noexcept {
  if (r.identity || r.c == 0.0) return {g.app, g.aqq};
  const double t = r.s / r.c;
  return {g.app - t * g.apq, g.aqq + t * g.apq};
}

}  // namespace treesvd
