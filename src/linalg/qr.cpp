#include "linalg/qr.hpp"

#include <cmath>

#include "util/require.hpp"

namespace treesvd {

HouseholderQr::HouseholderQr(const Matrix& a) : qr_(a) {
  TREESVD_REQUIRE(a.rows() >= a.cols() && a.cols() >= 1, "QR expects m >= n >= 1");
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  beta_.assign(n, 0.0);

  for (std::size_t k = 0; k < n; ++k) {
    // Householder vector for column k below the diagonal.
    double norm2 = 0.0;
    for (std::size_t i = k; i < m; ++i) norm2 += qr_(i, k) * qr_(i, k);
    const double norm = std::sqrt(norm2);
    if (norm == 0.0) continue;  // column already zero below (and on) diagonal
    const double akk = qr_(k, k);
    const double alpha = akk >= 0.0 ? -norm : norm;
    // v = x - alpha e1, normalised so v[k] = 1.
    const double v0 = akk - alpha;
    if (v0 == 0.0) {  // x is already alpha*e1
      qr_(k, k) = alpha;
      continue;
    }
    for (std::size_t i = k + 1; i < m; ++i) qr_(i, k) /= v0;
    beta_[k] = -v0 / alpha;  // beta = 2 / (v.v) for this normalisation
    qr_(k, k) = alpha;
    // Apply the reflector to the remaining columns.
    for (std::size_t j = k + 1; j < n; ++j) {
      double dot_vx = qr_(k, j);
      for (std::size_t i = k + 1; i < m; ++i) dot_vx += qr_(i, k) * qr_(i, j);
      const double scale = beta_[k] * dot_vx;
      qr_(k, j) -= scale;
      for (std::size_t i = k + 1; i < m; ++i) qr_(i, j) -= scale * qr_(i, k);
    }
  }
}

Matrix HouseholderQr::r() const {
  const std::size_t n = qr_.cols();
  Matrix out(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i <= j; ++i) out(i, j) = qr_(i, j);
  return out;
}

void HouseholderQr::apply_q(Matrix& b) const {
  TREESVD_REQUIRE(b.rows() == qr_.rows(), "apply_q row mismatch");
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  // Q = H_0 H_1 ... H_{n-1}; apply from the last reflector backwards.
  for (std::size_t k = n; k-- > 0;) {
    if (beta_[k] == 0.0) continue;
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double dot_vx = b(k, j);
      for (std::size_t i = k + 1; i < m; ++i) dot_vx += qr_(i, k) * b(i, j);
      const double scale = beta_[k] * dot_vx;
      b(k, j) -= scale;
      for (std::size_t i = k + 1; i < m; ++i) b(i, j) -= scale * qr_(i, k);
    }
  }
}

void HouseholderQr::apply_qt(Matrix& b) const {
  TREESVD_REQUIRE(b.rows() == qr_.rows(), "apply_qt row mismatch");
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  for (std::size_t k = 0; k < n; ++k) {
    if (beta_[k] == 0.0) continue;
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double dot_vx = b(k, j);
      for (std::size_t i = k + 1; i < m; ++i) dot_vx += qr_(i, k) * b(i, j);
      const double scale = beta_[k] * dot_vx;
      b(k, j) -= scale;
      for (std::size_t i = k + 1; i < m; ++i) b(i, j) -= scale * qr_(i, k);
    }
  }
}

Matrix HouseholderQr::thin_q() const {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  Matrix q(m, n);
  for (std::size_t j = 0; j < n; ++j) q(j, j) = 1.0;
  apply_q(q);
  return q;
}

}  // namespace treesvd
