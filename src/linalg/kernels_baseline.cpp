// Baseline-tier copies of every dispatched kernel: the default-flags build
// (SSE2 lowering on x86-64, scalar elsewhere) of the shared width-templated
// bodies. This TU is also compiled with -ffp-contract=off so a toolchain
// with baseline FMA (e.g. -march=native builds) cannot fuse the rotate
// kernel's c*x - s*y — the bitwise tier-invariance contract of
// linalg/dispatch.hpp must hold on every tier, including this one.
//
// The batched rotation-decision kernels have no baseline vector copy (the
// branch-free decide needs a vector sqrt, which below AVX is not worth the
// mask bookkeeping); the baseline tier forwards them to the scalar
// fallbacks, exactly as the pre-dispatch code did.

#include "linalg/dispatch_isa.hpp"

#include "linalg/blas1.hpp"
#include "linalg/dispatch.hpp"
#include "linalg/rotation.hpp"

#if defined(__GNUC__) && !defined(__clang__)
// The anonymous-namespace kernels pass and return vectors wider than the
// baseline ABI supports natively; they are internal to this TU and fully
// inlined, so the ABI caveat cannot bite. TU-wide (not push/pop) because GCC
// re-emits the diagnostic at end-of-file template instantiation, outside any
// scoped region in the .inc files.
#pragma GCC diagnostic ignored "-Wpsabi"
#endif

namespace treesvd {

#if defined(__GNUC__) || defined(__clang__)
#define TREESVD_KERNELS_VEC 1
#endif

#ifdef TREESVD_KERNELS_VEC

namespace {
#include "linalg/blas1_batched_impl.inc"
#include "linalg/kernels_single_impl.inc"
}  // namespace

namespace isa_baseline {

double dot(const double* x, const double* y, std::size_t n) noexcept {
  return single_dot_k(x, y, n);
}

double sumsq(const double* x, std::size_t n) noexcept { return single_sumsq_k(x, n); }

void axpy(double alpha, const double* x, double* y, std::size_t n) noexcept {
  single_axpy_k(alpha, x, y, n);
}

void gram_pair(const double* x, const double* y, std::size_t n, double* app, double* aqq,
               double* apq) noexcept {
  single_gram_pair_k(x, y, n, app, aqq, apq);
}

void rotate_and_norms(double* x, double* y, std::size_t n, double c, double s, double* xx,
                      double* yy) noexcept {
  single_rotate_norms_k<false>(x, y, n, c, s, xx, yy);
}

void rotate_and_norms_swapped(double* x, double* y, std::size_t n, double c, double s,
                              double* xx, double* yy) noexcept {
  single_rotate_norms_k<true>(x, y, n, c, s, xx, yy);
}

void gemm_micro(const double* ap, const double* bp, std::size_t kc, double* acc) noexcept {
  single_gemm_micro_k(ap, bp, kc, acc);
}

void batched_dot(const double* x, const double* y, std::size_t m, std::size_t w,
                 double* out) noexcept {
  batched_dot_g<4>(x, y, m, w, out);
}

void batched_sumsq(const double* x, std::size_t m, std::size_t w, double* out) noexcept {
  batched_sumsq_g<4>(x, m, w, out);
}

void batched_gram_pair(const double* x, const double* y, std::size_t m, std::size_t w,
                       double* app, double* aqq, double* apq) noexcept {
  batched_gram_pair_g<4>(x, y, m, w, app, aqq, apq);
}

void batched_rotate_and_norms(double* x, double* y, std::size_t m, std::size_t w,
                              const double* c, const double* s, const std::uint8_t* rotate,
                              const std::uint8_t* swap_lanes, double* app,
                              double* aqq) noexcept {
  batched_rotate_and_norms_g<4>(x, y, m, w, c, s, rotate, swap_lanes, app, aqq);
}

void batched_apply_rotation(double* x, double* y, std::size_t m, std::size_t w,
                            const double* c, const double* s, const std::uint8_t* rotate,
                            const std::uint8_t* swap_lanes) noexcept {
  batched_apply_rotation_g<4>(x, y, m, w, c, s, rotate, swap_lanes);
}

}  // namespace isa_baseline

#else  // !TREESVD_KERNELS_VEC — no vector extensions: the scalar refs ARE
       // the implementation (bitwise identical by the canon contract).

namespace isa_baseline {

double dot(const double* x, const double* y, std::size_t n) noexcept {
  return dot_ref({x, n}, {y, n});
}

double sumsq(const double* x, std::size_t n) noexcept { return sumsq_ref({x, n}); }

void axpy(double alpha, const double* x, double* y, std::size_t n) noexcept {
  axpy_ref(alpha, {x, n}, {y, n});
}

void gram_pair(const double* x, const double* y, std::size_t n, double* app, double* aqq,
               double* apq) noexcept {
  const GramPair g = gram_pair_ref({x, n}, {y, n});
  *app = g.app;
  *aqq = g.aqq;
  *apq = g.apq;
}

void rotate_and_norms(double* x, double* y, std::size_t n, double c, double s, double* xx,
                      double* yy) noexcept {
  const RotatedNorms rn = rotate_and_norms_ref({x, n}, {y, n}, c, s);
  *xx = rn.app;
  *yy = rn.aqq;
}

void rotate_and_norms_swapped(double* x, double* y, std::size_t n, double c, double s,
                              double* xx, double* yy) noexcept {
  const RotatedNorms rn = rotate_and_norms_swapped_ref({x, n}, {y, n}, c, s);
  *xx = rn.app;
  *yy = rn.aqq;
}

void gemm_micro(const double* ap, const double* bp, std::size_t kc, double* acc) noexcept {
  gemm_micro_ref(ap, bp, kc, acc);
}

void batched_dot(const double* x, const double* y, std::size_t m, std::size_t w,
                 double* out) noexcept {
  batched_dot_ref(x, y, m, w, out);
}

void batched_sumsq(const double* x, std::size_t m, std::size_t w, double* out) noexcept {
  batched_sumsq_ref(x, m, w, out);
}

void batched_gram_pair(const double* x, const double* y, std::size_t m, std::size_t w,
                       double* app, double* aqq, double* apq) noexcept {
  batched_gram_pair_ref(x, y, m, w, app, aqq, apq);
}

void batched_rotate_and_norms(double* x, double* y, std::size_t m, std::size_t w,
                              const double* c, const double* s, const std::uint8_t* rotate,
                              const std::uint8_t* swap_lanes, double* app,
                              double* aqq) noexcept {
  batched_rotate_and_norms_ref(x, y, m, w, c, s, rotate, swap_lanes, app, aqq);
}

void batched_apply_rotation(double* x, double* y, std::size_t m, std::size_t w,
                            const double* c, const double* s, const std::uint8_t* rotate,
                            const std::uint8_t* swap_lanes) noexcept {
  batched_apply_rotation_ref(x, y, m, w, c, s, rotate, swap_lanes);
}

}  // namespace isa_baseline

#endif  // TREESVD_KERNELS_VEC

namespace isa_baseline {

// Shared by both build flavours: the baseline decision kernels are the
// scalar fallbacks of linalg/rotation.hpp.

void batched_compute_rotation(const double* app, const double* aqq, const double* apq,
                              std::size_t w, double tol, double* c, double* s,
                              std::uint8_t* identity) noexcept {
  detail::batched_compute_rotation_scalar(app, aqq, apq, w, tol, c, s, identity);
}

void batched_drift_gate(const double* app, const double* aqq, const double* apq, std::size_t w,
                        double tol, double guard, std::uint8_t* near_mask) noexcept {
  detail::batched_drift_gate_scalar(app, aqq, apq, w, tol, guard, near_mask);
}

}  // namespace isa_baseline

}  // namespace treesvd
