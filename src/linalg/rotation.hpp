#pragma once
// Plane rotations for the Hestenes one-sided Jacobi method.
//
// A rotation orthogonalises two columns x, y of A. With Gram elements
//   app = x.x,  aqq = y.y,  apq = x.y
// we use the Rutishauser small-angle formulas:
//   zeta = (aqq - app) / (2 apq)
//   t    = sign(zeta) / (|zeta| + sqrt(1 + zeta^2))      (smaller root)
//   c    = 1 / sqrt(1 + t^2),  s = c t
// and update  x' = c x - s y,  y' = s x + c y.
//
// The paper's equation (3) fuses a column interchange into the rotation
// ("rotate and swap") so that sorting the singular values never requires an
// explicit column exchange: x'' = s x + c y, y'' = c x - s y.

#include <span>

#include "linalg/blas1.hpp"

namespace treesvd {

/// Cosine/sine pair of a Jacobi plane rotation.
struct JacobiRotation {
  double c = 1.0;
  double s = 0.0;
  /// True when the pair was already orthogonal (to the threshold) and no
  /// rotation is needed.
  bool identity = true;
};

/// Relative-orthogonality test: |apq| <= tol * sqrt(app * aqq).
/// This is the threshold strategy of the classical Jacobi method; pairs below
/// the threshold are skipped, which also prevents cycling.
bool is_orthogonal(const GramPair& g, double tol) noexcept;

/// Computes the rotation that orthogonalises a column pair with the given
/// Gram elements. Returns identity when is_orthogonal(g, tol), or when a
/// column has zero norm (rank-deficient input).
JacobiRotation compute_rotation(const GramPair& g, double tol) noexcept;

/// x' = c x - s y,  y' = s x + c y.
void apply_rotation(std::span<double> x, std::span<double> y, double c, double s) noexcept;

/// Paper eq. (3): rotation followed by interchange, fused:
/// x'' = s x + c y,  y'' = c x - s y.
void apply_rotation_swapped(std::span<double> x, std::span<double> y, double c,
                            double s) noexcept;

/// Post-rotation squared norms (standard update): the rotation moves t*apq of
/// squared norm from x to y, where t = s/c.
///   new app = app - t*apq,  new aqq = aqq + t*apq.
struct RotatedNorms {
  double app;
  double aqq;
};
RotatedNorms rotated_norms(const GramPair& g, const JacobiRotation& r) noexcept;

/// Fused rotate-and-norms: applies the plane rotation (as apply_rotation)
/// and accumulates the squared norms of the *rotated* columns in the same
/// pass over the data. One read+write pass instead of a rotation pass plus a
/// norm pass — this is what keeps a NormCache exact: the returned sums are a
/// fresh reduction of the stored values, not an algebraic extrapolation.
RotatedNorms rotate_and_norms(std::span<double> x, std::span<double> y, double c,
                              double s) noexcept;

/// Fused eq.-(3) variant: rotate, interchange, and accumulate norms in one
/// pass. Returns the squared norms of the stored columns (app for the new x,
/// aqq for the new y, i.e. after the swap).
RotatedNorms rotate_and_norms_swapped(std::span<double> x, std::span<double> y, double c,
                                      double s) noexcept;

/// Scalar reference twins of the fused kernels: the rotated values are exactly
/// c*x[i] - s*y[i] / s*x[i] + c*y[i] (bitwise equal to apply_rotation*), and
/// the norm reduction uses four mod-4 chains combined (a0+a2)+(a1+a3) with the
/// tail appended after the combine. The dispatched SIMD forms reproduce this
/// order bitwise on every ISA tier (enforced by linalg_dispatch_test).
RotatedNorms rotate_and_norms_ref(std::span<double> x, std::span<double> y, double c,
                                  double s) noexcept;
RotatedNorms rotate_and_norms_swapped_ref(std::span<double> x, std::span<double> y, double c,
                                          double s) noexcept;

/// Batched per-lane rotation decisions over SoA Gram arrays (the decision
/// stage of the batched engine, svd/batch.hpp): for every lane b,
/// (c[b], s[b], identity[b]) = compute_rotation({app[b], aqq[b], apq[b]}, tol),
/// with identity lanes reporting c = 1, s = 0. When w is a multiple of the
/// batch lane count this dispatches to a vectorized copy (the decision math
/// is sqrt/divide-heavy and used to dominate the batched engine's per-pair
/// cost); every operation involved is IEEE correctly rounded, so the
/// vectorized lanes are bitwise equal to the scalar fallback.
void batched_compute_rotation(const double* app, const double* aqq, const double* apq,
                              std::size_t w, double tol, double* c, double* s,
                              std::uint8_t* identity) noexcept;

/// Batched form of the cached path's drift-guard gate (svd/batch.cpp):
/// near_mask[b] != 0 exactly when, with thresh = tol*sqrt(app[b])*sqrt(aqq[b])
/// and mag = |apq[b]|, mag is positive and either the threshold is degenerate
/// (non-positive or non-finite) or mag/thresh lies within a factor `guard` of
/// 1. Dispatches like batched_compute_rotation; flags are exact either way.
void batched_drift_gate(const double* app, const double* aqq, const double* apq,
                        std::size_t w, double tol, double guard,
                        std::uint8_t* near_mask) noexcept;

namespace detail {
/// Scalar per-lane fallbacks of the two decision kernels — the dispatch
/// target for lane widths the vector copies don't cover, and the bitwise
/// reference the vectorized forms are tested against.
void batched_compute_rotation_scalar(const double* app, const double* aqq, const double* apq,
                                     std::size_t w, double tol, double* c, double* s,
                                     std::uint8_t* identity) noexcept;
void batched_drift_gate_scalar(const double* app, const double* aqq, const double* apq,
                               std::size_t w, double tol, double guard,
                               std::uint8_t* near_mask) noexcept;
}  // namespace detail

}  // namespace treesvd
