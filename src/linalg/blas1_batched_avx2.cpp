// AVX2 copies of the vectorized cross-problem kernels. This TU is compiled
// with -mavx2 -ffp-contract=off (src/linalg/CMakeLists.txt) on x86-64, so
// the 32-byte vectors of blas1_batched_impl.inc lower to single YMM
// operations; batched_isa_tier() routes here only when the CPU agrees.
// -mavx2 does not enable FMA, and contraction is forced off regardless, so
// every lane's arithmetic stays bit-identical to the scalar kernels.

#include "linalg/blas1_batched_isa.hpp"

#include "linalg/blas1.hpp"
#include "linalg/rotation.hpp"

namespace treesvd {

#ifdef TREESVD_BATCH_ISA_X86

namespace {
#include "linalg/blas1_batched_impl.inc"

// vsqrtpd is IEEE correctly rounded: lane b equals std::sqrt(lane b)
// bitwise. Spelled as asm because generic vector extensions have no sqrt
// and GCC 12's _mm*_sqrt_pd intrinsics drag in cast/uninitialized warnings.
inline VecOf<4>::vd vsqrt(VecOf<4>::vd v) noexcept {
  VecOf<4>::vd r;
  asm("vsqrtpd %1, %0" : "=x"(r) : "x"(v));
  return r;
}

#include "linalg/rotation_batched_impl.inc"
}  // namespace

void batched_dot_avx2(const double* x, const double* y, std::size_t m, std::size_t w,
                      double* out) noexcept {
  batched_dot_g<4>(x, y, m, w, out);
}

void batched_sumsq_avx2(const double* x, std::size_t m, std::size_t w, double* out) noexcept {
  batched_sumsq_g<4>(x, m, w, out);
}

void batched_gram_pair_avx2(const double* x, const double* y, std::size_t m, std::size_t w,
                            double* app, double* aqq, double* apq) noexcept {
  batched_gram_pair_g<4>(x, y, m, w, app, aqq, apq);
}

void batched_rotate_and_norms_avx2(double* x, double* y, std::size_t m, std::size_t w,
                                   const double* c, const double* s, const std::uint8_t* rotate,
                                   const std::uint8_t* swap_lanes, double* app,
                                   double* aqq) noexcept {
  batched_rotate_and_norms_g<4>(x, y, m, w, c, s, rotate, swap_lanes, app, aqq);
}

void batched_apply_rotation_avx2(double* x, double* y, std::size_t m, std::size_t w,
                                 const double* c, const double* s, const std::uint8_t* rotate,
                                 const std::uint8_t* swap_lanes) noexcept {
  batched_apply_rotation_g<4>(x, y, m, w, c, s, rotate, swap_lanes);
}

void batched_compute_rotation_avx2(const double* app, const double* aqq, const double* apq,
                                   std::size_t w, double tol, double* c, double* s,
                                   std::uint8_t* identity) noexcept {
  batched_rotation_decide_g<4>(app, aqq, apq, w, tol, c, s, identity);
}

void batched_drift_gate_avx2(const double* app, const double* aqq, const double* apq,
                             std::size_t w, double tol, double guard,
                             std::uint8_t* near_mask) noexcept {
  batched_drift_gate_g<4>(app, aqq, apq, w, tol, guard, near_mask);
}

#else  // !TREESVD_BATCH_ISA_X86 — never dispatched to; forward to the refs.

void batched_dot_avx2(const double* x, const double* y, std::size_t m, std::size_t w,
                      double* out) noexcept {
  batched_dot_ref(x, y, m, w, out);
}

void batched_sumsq_avx2(const double* x, std::size_t m, std::size_t w, double* out) noexcept {
  batched_sumsq_ref(x, m, w, out);
}

void batched_gram_pair_avx2(const double* x, const double* y, std::size_t m, std::size_t w,
                            double* app, double* aqq, double* apq) noexcept {
  batched_gram_pair_ref(x, y, m, w, app, aqq, apq);
}

void batched_rotate_and_norms_avx2(double* x, double* y, std::size_t m, std::size_t w,
                                   const double* c, const double* s, const std::uint8_t* rotate,
                                   const std::uint8_t* swap_lanes, double* app,
                                   double* aqq) noexcept {
  batched_rotate_and_norms_ref(x, y, m, w, c, s, rotate, swap_lanes, app, aqq);
}

void batched_apply_rotation_avx2(double* x, double* y, std::size_t m, std::size_t w,
                                 const double* c, const double* s, const std::uint8_t* rotate,
                                 const std::uint8_t* swap_lanes) noexcept {
  batched_apply_rotation_ref(x, y, m, w, c, s, rotate, swap_lanes);
}

void batched_compute_rotation_avx2(const double* app, const double* aqq, const double* apq,
                                   std::size_t w, double tol, double* c, double* s,
                                   std::uint8_t* identity) noexcept {
  detail::batched_compute_rotation_scalar(app, aqq, apq, w, tol, c, s, identity);
}

void batched_drift_gate_avx2(const double* app, const double* aqq, const double* apq,
                             std::size_t w, double tol, double guard,
                             std::uint8_t* near_mask) noexcept {
  detail::batched_drift_gate_scalar(app, aqq, apq, w, tol, guard, near_mask);
}

#endif  // TREESVD_BATCH_ISA_X86

}  // namespace treesvd
