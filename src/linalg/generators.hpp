#pragma once
// Test-matrix generators.
//
// The paper's experiments run on dense matrices with no special structure;
// these generators provide the standard families used to exercise an SVD
// code: random Gaussian, matrices with a prescribed spectrum (via random
// orthogonal factors), rank-deficient matrices, and classical ill-conditioned
// examples.

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace treesvd {

/// m x n with iid standard normal entries.
Matrix random_gaussian(std::size_t m, std::size_t n, Rng& rng);

/// Random matrix with orthonormal columns (thin QR of a Gaussian, via
/// modified Gram-Schmidt with reorthogonalisation).
Matrix random_orthonormal(std::size_t m, std::size_t n, Rng& rng);

/// A = U diag(sigma) V^T with random orthogonal factors and the given
/// singular values; sigma need not be sorted.
Matrix with_spectrum(std::size_t m, std::size_t n, const std::vector<double>& sigma, Rng& rng);

/// Geometrically graded spectrum sigma_k = cond^(-k/(n-1)), k = 0..n-1,
/// so sigma_max/sigma_min == cond.
std::vector<double> geometric_spectrum(std::size_t n, double cond);

/// Rank-r matrix: r nonzero geometric singular values, the rest exactly zero.
Matrix rank_deficient(std::size_t m, std::size_t n, std::size_t rank, Rng& rng);

/// Hilbert matrix H(i,j) = 1/(i+j+1): classically ill-conditioned.
Matrix hilbert(std::size_t n);

}  // namespace treesvd
