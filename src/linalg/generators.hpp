#pragma once
// Test-matrix generators.
//
// The paper's experiments run on dense matrices with no special structure;
// these generators provide the standard families used to exercise an SVD
// code: random Gaussian, matrices with a prescribed spectrum (via random
// orthogonal factors), rank-deficient matrices, and classical ill-conditioned
// examples.

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace treesvd {

/// m x n with iid standard normal entries.
Matrix random_gaussian(std::size_t m, std::size_t n, Rng& rng);

/// Random matrix with orthonormal columns (thin QR of a Gaussian, via
/// modified Gram-Schmidt with reorthogonalisation).
Matrix random_orthonormal(std::size_t m, std::size_t n, Rng& rng);

/// A = U diag(sigma) V^T with random orthogonal factors and the given
/// singular values; sigma need not be sorted.
Matrix with_spectrum(std::size_t m, std::size_t n, const std::vector<double>& sigma, Rng& rng);

/// Geometrically graded spectrum sigma_k = cond^(-k/(n-1)), k = 0..n-1,
/// so sigma_max/sigma_min == cond.
std::vector<double> geometric_spectrum(std::size_t n, double cond);

/// Rank-r matrix: r nonzero geometric singular values, the rest exactly zero.
Matrix rank_deficient(std::size_t m, std::size_t n, std::size_t rank, Rng& rng);

/// Hilbert matrix H(i,j) = 1/(i+j+1): classically ill-conditioned.
Matrix hilbert(std::size_t n);

/// One torture input: a matrix engineered to stress a specific numerical
/// hazard, together with its reference singular values when they are known
/// by construction (descending; empty when only finiteness and the status
/// contract can be checked).
struct TortureCase {
  std::string name;
  Matrix a;
  std::vector<double> sigma;
};

/// The torture-input family (DESIGN.md §11). Cases are m x n (the
/// extreme-span case appends one row, making it (m+1) x n) with
/// m >= n >= 4 and n even:
///  * well-scaled / graded spectra up to condition 1e12 at unit scale,
///  * the same graded spectra pushed to entry magnitudes near 1e+150 and
///    1e-150 (squared norms overflow/underflow without equilibration),
///  * an extreme-span case mixing 1e+150-scale columns with a 1e-150 row,
///  * a denormal-laced perturbation (+-1e-310 on every entry),
///  * exact zero columns and exact duplicate columns (known zero sigma), and
///  * the Hilbert matrix (reference sigma unknown — contract checks only).
/// Reference sigma are exact up to relative perturbations far below 1e-10,
/// so a correct engine must reproduce them to that tolerance.
std::vector<TortureCase> torture_suite(std::size_t m, std::size_t n, Rng& rng);

}  // namespace treesvd
