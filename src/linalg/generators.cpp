#include "linalg/generators.hpp"

#include <cmath>

#include "linalg/blas1.hpp"
#include "util/require.hpp"

namespace treesvd {

Matrix random_gaussian(std::size_t m, std::size_t n, Rng& rng) {
  TREESVD_REQUIRE(m > 0 && n > 0, "matrix dimensions must be positive");
  Matrix a(m, n);
  for (double& v : a.data()) v = rng.normal();
  return a;
}

Matrix random_orthonormal(std::size_t m, std::size_t n, Rng& rng) {
  TREESVD_REQUIRE(m >= n, "random_orthonormal requires m >= n");
  Matrix q = random_gaussian(m, n, rng);
  // Modified Gram-Schmidt with one reorthogonalisation pass ("twice is
  // enough", Kahan/Parlett) keeps the defect near machine precision.
  for (std::size_t j = 0; j < n; ++j) {
    auto qj = q.col(j);
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t k = 0; k < j; ++k) {
        const auto qk = q.col(k);
        axpy(-dot(qk, qj), qk, qj);
      }
    }
    const double norm = nrm2(qj);
    TREESVD_REQUIRE(norm > 0.0, "degenerate random draw in random_orthonormal");
    scal(1.0 / norm, qj);
  }
  return q;
}

Matrix with_spectrum(std::size_t m, std::size_t n, const std::vector<double>& sigma, Rng& rng) {
  TREESVD_REQUIRE(m >= n, "with_spectrum requires m >= n");
  TREESVD_REQUIRE(sigma.size() == n, "need exactly n singular values");
  const Matrix u = random_orthonormal(m, n, rng);
  const Matrix v = random_orthonormal(n, n, rng);
  Matrix us(m, n);
  for (std::size_t j = 0; j < n; ++j) {
    const auto src = u.col(j);
    const auto dst = us.col(j);
    for (std::size_t i = 0; i < m; ++i) dst[i] = src[i] * sigma[j];
  }
  return us * v.transposed();
}

std::vector<double> geometric_spectrum(std::size_t n, double cond) {
  TREESVD_REQUIRE(n > 0, "spectrum length must be positive");
  TREESVD_REQUIRE(cond >= 1.0, "condition number must be >= 1");
  std::vector<double> sigma(n);
  for (std::size_t k = 0; k < n; ++k) {
    sigma[k] = n == 1 ? 1.0
                      : std::pow(cond, -static_cast<double>(k) / static_cast<double>(n - 1));
  }
  return sigma;
}

Matrix rank_deficient(std::size_t m, std::size_t n, std::size_t rank, Rng& rng) {
  TREESVD_REQUIRE(rank <= n, "rank cannot exceed the column count");
  std::vector<double> sigma(n, 0.0);
  const auto nz = geometric_spectrum(rank == 0 ? 1 : rank, 10.0);
  for (std::size_t k = 0; k < rank; ++k) sigma[k] = nz[k];
  return with_spectrum(m, n, sigma, rng);
}

Matrix hilbert(std::size_t n) {
  Matrix h(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i)
      h(i, j) = 1.0 / static_cast<double>(i + j + 1);
  return h;
}

}  // namespace treesvd
