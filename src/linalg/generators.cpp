#include "linalg/generators.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/blas1.hpp"
#include "util/require.hpp"

namespace treesvd {

Matrix random_gaussian(std::size_t m, std::size_t n, Rng& rng) {
  TREESVD_REQUIRE(m > 0 && n > 0, "matrix dimensions must be positive");
  Matrix a(m, n);
  for (double& v : a.data()) v = rng.normal();
  return a;
}

Matrix random_orthonormal(std::size_t m, std::size_t n, Rng& rng) {
  TREESVD_REQUIRE(m >= n, "random_orthonormal requires m >= n");
  Matrix q = random_gaussian(m, n, rng);
  // Modified Gram-Schmidt with one reorthogonalisation pass ("twice is
  // enough", Kahan/Parlett) keeps the defect near machine precision.
  for (std::size_t j = 0; j < n; ++j) {
    auto qj = q.col(j);
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t k = 0; k < j; ++k) {
        const auto qk = q.col(k);
        axpy(-dot(qk, qj), qk, qj);
      }
    }
    const double norm = nrm2(qj);
    TREESVD_REQUIRE(norm > 0.0, "degenerate random draw in random_orthonormal");
    scal(1.0 / norm, qj);
  }
  return q;
}

Matrix with_spectrum(std::size_t m, std::size_t n, const std::vector<double>& sigma, Rng& rng) {
  TREESVD_REQUIRE(m >= n, "with_spectrum requires m >= n");
  TREESVD_REQUIRE(sigma.size() == n, "need exactly n singular values");
  const Matrix u = random_orthonormal(m, n, rng);
  const Matrix v = random_orthonormal(n, n, rng);
  Matrix us(m, n);
  for (std::size_t j = 0; j < n; ++j) {
    const auto src = u.col(j);
    const auto dst = us.col(j);
    for (std::size_t i = 0; i < m; ++i) dst[i] = src[i] * sigma[j];
  }
  return us * v.transposed();
}

std::vector<double> geometric_spectrum(std::size_t n, double cond) {
  TREESVD_REQUIRE(n > 0, "spectrum length must be positive");
  TREESVD_REQUIRE(cond >= 1.0, "condition number must be >= 1");
  std::vector<double> sigma(n);
  for (std::size_t k = 0; k < n; ++k) {
    sigma[k] = n == 1 ? 1.0
                      : std::pow(cond, -static_cast<double>(k) / static_cast<double>(n - 1));
  }
  return sigma;
}

Matrix rank_deficient(std::size_t m, std::size_t n, std::size_t rank, Rng& rng) {
  TREESVD_REQUIRE(rank <= n, "rank cannot exceed the column count");
  std::vector<double> sigma(n, 0.0);
  const auto nz = geometric_spectrum(rank == 0 ? 1 : rank, 10.0);
  for (std::size_t k = 0; k < rank; ++k) sigma[k] = nz[k];
  return with_spectrum(m, n, sigma, rng);
}

Matrix hilbert(std::size_t n) {
  Matrix h(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i)
      h(i, j) = 1.0 / static_cast<double>(i + j + 1);
  return h;
}

namespace {

std::vector<double> scaled_spectrum(std::size_t n, double cond, double smax) {
  std::vector<double> s = geometric_spectrum(n, cond);
  for (double& v : s) v *= smax;
  return s;
}

}  // namespace

std::vector<TortureCase> torture_suite(std::size_t m, std::size_t n, Rng& rng) {
  TREESVD_REQUIRE(m >= n && n >= 4 && n % 2 == 0,
                  "torture_suite needs m >= n >= 4 with n even");
  std::vector<TortureCase> cases;

  {  // Baseline: well within range, moderately conditioned.
    std::vector<double> s = geometric_spectrum(n, 1e6);
    Matrix a = with_spectrum(m, n, s, rng);
    cases.push_back({"well-scaled", std::move(a), std::move(s)});
  }
  {  // Full graded condition number at unit scale.
    std::vector<double> s = geometric_spectrum(n, 1e12);
    Matrix a = with_spectrum(m, n, s, rng);
    cases.push_back({"graded-kappa1e12", std::move(a), std::move(s)});
  }
  {  // Entries near 1e+150: any squared column norm overflows to Inf.
    std::vector<double> s = scaled_spectrum(n, 1e12, 1e150);
    Matrix a = with_spectrum(m, n, s, rng);
    cases.push_back({"huge-scale-1e150", std::move(a), std::move(s)});
  }
  {  // Entries near 1e-150: every squared column norm underflows to 0.
    std::vector<double> s = scaled_spectrum(n, 1e12, 1e-150);
    Matrix a = with_spectrum(m, n, s, rng);
    cases.push_back({"tiny-scale-1e-150", std::move(a), std::move(s)});
  }
  {  // Extreme span: a 1e+150-scale matrix with one appended 1e-150 row, so
    // this case alone is (m+1) x n. The row perturbs each sigma by a
    // relative amount below 1e-250: the construction spectrum remains the
    // reference.
    std::vector<double> s = scaled_spectrum(n, 1e6, 1e150);
    const Matrix b = with_spectrum(m, n, s, rng);
    Matrix a(m + 1, n);
    for (std::size_t j = 0; j < n; ++j) {
      const auto src = b.col(j);
      const auto dst = a.col(j);
      for (std::size_t i = 0; i < m; ++i) dst[i] = src[i];
      dst[m] = (j % 2 == 0 ? 1.0 : -1.0) * 1e-150;
    }
    cases.push_back({"extreme-span", std::move(a), std::move(s)});
  }
  {  // Denormal-laced: +-1e-310 on every entry of a unit-scale matrix. The
    // perturbation moves each sigma by well under 1e-290 relative.
    std::vector<double> s = geometric_spectrum(n, 1e6);
    Matrix a = with_spectrum(m, n, s, rng);
    for (double& v : a.data()) v += (rng.normal() >= 0.0 ? 1.0 : -1.0) * 1e-310;
    cases.push_back({"denormal-laced", std::move(a), std::move(s)});
  }
  {  // Exact zero columns: sigma padded with exact zeros.
    std::vector<double> s = geometric_spectrum(n - 2, 1e6);
    const Matrix b = with_spectrum(m, n - 2, s, rng);
    Matrix a(m, n);
    for (std::size_t j = 0; j + 2 < n; ++j) {
      const auto src = b.col(j);
      const auto dst = a.col(j);
      std::copy(src.begin(), src.end(), dst.begin());
    }
    s.push_back(0.0);
    s.push_back(0.0);
    cases.push_back({"zero-columns", std::move(a), std::move(s)});
  }
  {  // Exact duplicate columns [B | B]: sigma = sqrt(2) * sigma(B), then
    // exact zeros for the redundant half.
    const std::size_t h = n / 2;
    std::vector<double> sb = geometric_spectrum(h, 1e6);
    const Matrix b = with_spectrum(m, h, sb, rng);
    Matrix a(m, n);
    for (std::size_t j = 0; j < h; ++j) {
      const auto src = b.col(j);
      std::copy(src.begin(), src.end(), a.col(j).begin());
      std::copy(src.begin(), src.end(), a.col(h + j).begin());
    }
    std::vector<double> s(n, 0.0);
    for (std::size_t j = 0; j < h; ++j) s[j] = std::sqrt(2.0) * sb[j];
    cases.push_back({"duplicate-columns", std::move(a), std::move(s)});
  }
  {  // Hilbert matrix embedded in the top block: reference sigma unknown,
    // but the status/finiteness contract must still hold.
    const Matrix hn = hilbert(n);
    Matrix a(m, n);
    for (std::size_t j = 0; j < n; ++j) {
      const auto src = hn.col(j);
      std::copy(src.begin(), src.end(), a.col(j).begin());
    }
    cases.push_back({"hilbert", std::move(a), {}});
  }
  return cases;
}

}  // namespace treesvd
