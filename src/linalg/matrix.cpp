#include "linalg/matrix.hpp"

#include <cmath>

#include "linalg/gemm.hpp"
#include "util/require.hpp"

namespace treesvd {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix Matrix::from_rows(std::initializer_list<std::initializer_list<double>> rows) {
  const std::size_t r = rows.size();
  TREESVD_REQUIRE(r > 0, "from_rows needs at least one row");
  const std::size_t c = rows.begin()->size();
  Matrix m(r, c);
  std::size_t i = 0;
  for (const auto& row : rows) {
    TREESVD_REQUIRE(row.size() == c, "ragged initializer list");
    std::size_t j = 0;
    for (double v : row) m(i, j++) = v;
    ++i;
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t i, std::size_t j) {
  TREESVD_REQUIRE(i < rows_ && j < cols_, "matrix index out of range");
  return (*this)(i, j);
}

double Matrix::at(std::size_t i, std::size_t j) const {
  TREESVD_REQUIRE(i < rows_ && j < cols_, "matrix index out of range");
  return (*this)(i, j);
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t j = 0; j < cols_; ++j)
    for (std::size_t i = 0; i < rows_; ++i) t(j, i) = (*this)(i, j);
  return t;
}

double Matrix::frobenius_norm() const noexcept {
  // Two-pass scaled sum to avoid overflow/underflow on extreme data.
  double scale = 0.0;
  for (double v : data_) scale = std::max(scale, std::fabs(v));
  if (scale == 0.0) return 0.0;
  double sum = 0.0;
  for (double v : data_) {
    const double t = v / scale;
    sum += t * t;
  }
  return scale * std::sqrt(sum);
}

double Matrix::max_abs() const noexcept {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  TREESVD_REQUIRE(a.cols() == b.rows(), "matrix product dimension mismatch");
  // Tiled BLAS-3 layer; large products run on the shared pool (small ones
  // stay serial, tiny ones take the jki fast path inside gemm_into).
  Matrix c(a.rows(), b.cols());
  gemm_into(c, a, b, gemm_pool());
  return c;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  TREESVD_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(), "matrix difference shape mismatch");
  Matrix c(a.rows(), a.cols());
  for (std::size_t k = 0; k < a.data().size(); ++k) c.data()[k] = a.data()[k] - b.data()[k];
  return c;
}

Matrix operator+(const Matrix& a, const Matrix& b) {
  TREESVD_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(), "matrix sum shape mismatch");
  Matrix c(a.rows(), a.cols());
  for (std::size_t k = 0; k < a.data().size(); ++k) c.data()[k] = a.data()[k] + b.data()[k];
  return c;
}

double orthonormality_defect(const Matrix& a) {
  // A^T A via the symmetric-rank-k path: half the dot products of the
  // general product and no explicit transpose copy.
  const Matrix g = syrk_t(a, gemm_pool());
  return (g - Matrix::identity(g.rows())).frobenius_norm();
}

double reconstruction_error(const Matrix& a, const Matrix& u, std::span<const double> sigma,
                            const Matrix& v) {
  TREESVD_REQUIRE(u.cols() == sigma.size() && v.cols() == sigma.size(),
                  "sigma length must match U/V column counts");
  Matrix us(u.rows(), u.cols());
  for (std::size_t j = 0; j < u.cols(); ++j) {
    const auto src = u.col(j);
    const auto dst = us.col(j);
    for (std::size_t i = 0; i < u.rows(); ++i) dst[i] = src[i] * sigma[j];
  }
  return (a - us * v.transposed()).frobenius_norm();
}

}  // namespace treesvd
