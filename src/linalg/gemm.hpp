#pragma once
// BLAS-3 layer: cache-blocked, packed matrix-matrix kernels.
//
// The pair-kernel layer (DESIGN.md §7) made every BLAS-1 pass as fast as a
// single stream over the data allows; this layer removes passes altogether.
// A tiled GEMM with a register micro-kernel computes C = A·B touching each
// element of A and B once per cache block instead of once per scalar
// product, and the panel helpers at the bottom are the contract the
// block-Jacobi Gram path (DESIGN.md §8) is built on: form Pᵀ·P once, solve
// the small problem locally, apply the accumulated orthogonal update as one
// matrix-matrix product.
//
// Threading: every entry point takes an optional ThreadPool. Passing
// nullptr runs serially; `gemm_pool()` returns a lazily created process-wide
// pool that the Matrix operators use for large products. The shared pool is
// guarded internally with a try-lock (ThreadPool::parallel_for is
// single-caller); a caller-owned pool bypasses the gate entirely — passing
// one asserts exclusive use. A loser of the gate no longer silently
// single-threads: it first consults the calling thread's registered
// fallback pool (ScopedGemmFallbackPool below) and only runs serially when
// none is registered. Per-tile work writes disjoint output, so every route
// produces bitwise-identical results; gemm_dispatch_stats() reports which
// routes were taken.

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace treesvd {

class ThreadPool;

/// Cache-blocking parameters of the tiled GEMM. The defaults target a
/// generic x86-64 cache hierarchy (packed A block mc·kc ≈ 256 KiB in L2,
/// packed B block kc·nc ≈ 128 KiB); they are exposed for benchmarking, not
/// because users should need to touch them.
struct GemmTiling {
  std::size_t mc = 128;  ///< rows of A per packed block
  std::size_t kc = 256;  ///< shared (inner) dimension per packed block
  std::size_t nc = 64;   ///< columns of B per packed block

  /// Scheduling grain: C tiles are handed out in chunks of this many
  /// consecutive task indices. Threaded through *every* dispatch route —
  /// pooled, fallback-pool, and the gate-contended serial path, which walks
  /// the same chunk order — so which route wins the pool gate never changes
  /// the work decomposition or its traversal order.
  std::size_t grain = 1;

  /// Register micro-kernel footprint: an mr x nr accumulator tile lives in
  /// registers across the kc loop. Fixed at compile time.
  static constexpr std::size_t mr = 4;
  static constexpr std::size_t nr = 4;
};

/// Process-wide pool for the matmul entry points (hardware concurrency),
/// created on first use. See the threading note above: safe to pass from
/// concurrent callers; losers of the internal try-lock route to the calling
/// thread's ScopedGemmFallbackPool, or run serially when none is registered.
ThreadPool* gemm_pool();

/// Which route each BLAS-3 dispatch took (process-wide, relaxed counters).
/// `pooled` counts parallel runs (shared-pool gate won, or a caller-owned
/// pool), `fallback` counts gate-contended runs rescued by a registered
/// fallback pool, `serial` counts gate-contended runs with no fallback — the
/// silent-degradation case the fallback mechanism exists to eliminate — and
/// `inline_small` counts work below the parallel threshold (or with no pool).
struct GemmDispatchStats {
  std::size_t pooled = 0;
  std::size_t fallback = 0;
  std::size_t serial = 0;
  std::size_t inline_small = 0;
};
GemmDispatchStats gemm_dispatch_stats() noexcept;
void gemm_dispatch_stats_reset() noexcept;

/// RAII registration of a per-thread fallback pool for BLAS-3 dispatch: while
/// alive on a thread, any gemm/syrk/panel call on that thread that loses the
/// shared-pool gate runs on this pool instead of degrading to serial. The
/// registered pool must be exclusively owned by the registering thread (a
/// serving shard registers its own mini pool — never a pool another caller
/// may be driving). Nests: the previous registration is restored on
/// destruction.
class ScopedGemmFallbackPool {
 public:
  explicit ScopedGemmFallbackPool(ThreadPool& pool) noexcept;
  ~ScopedGemmFallbackPool();

  ScopedGemmFallbackPool(const ScopedGemmFallbackPool&) = delete;
  ScopedGemmFallbackPool& operator=(const ScopedGemmFallbackPool&) = delete;

 private:
  ThreadPool* prev_;
};

namespace detail {
/// Test seam: holds the shared-pool gate for its lifetime, so tests can
/// deterministically exercise the contended routes (fallback / serial)
/// without racing real concurrent GEMMs. Blocks if the gate is held.
class ScopedGemmGateHold {
 public:
  ScopedGemmGateHold();
  ~ScopedGemmGateHold();

  ScopedGemmGateHold(const ScopedGemmGateHold&) = delete;
  ScopedGemmGateHold& operator=(const ScopedGemmGateHold&) = delete;
};
}  // namespace detail

/// C <- A·B. C must already have shape a.rows() x b.cols(); its previous
/// contents are overwritten. Work below an internal flop threshold runs
/// serially even when a pool is supplied.
void gemm_into(Matrix& c, const Matrix& a, const Matrix& b, ThreadPool* pool = nullptr,
               const GemmTiling& tiling = {});

/// Convenience allocating form of gemm_into.
Matrix gemm(const Matrix& a, const Matrix& b, ThreadPool* pool = nullptr,
            const GemmTiling& tiling = {});

/// G <- AᵀA (symmetric n x n Gram matrix of A's columns). Only the upper
/// triangle is computed; the lower triangle is mirrored.
void syrk_t_into(Matrix& g, const Matrix& a, ThreadPool* pool = nullptr);
Matrix syrk_t(const Matrix& a, ThreadPool* pool = nullptr);

/// Gram matrix of a gathered panel: with P = A[:, cols] (columns need not be
/// contiguous), returns the K x K matrix G(i,j) = P_i . P_j. One pass of
/// O(m·K²/tile) traffic — this is the "form the Gram once" half of the
/// block-Jacobi Gram path.
Matrix gram_panel(const Matrix& a, std::span<const int> cols, ThreadPool* pool = nullptr);

/// In-place blocked panel update P <- P·W for the gathered panel
/// P = A[:, cols] and a K x K update W (K == cols.size()). Returns the
/// squared norm of each updated column, accumulated in the same read+write
/// pass over the data — a fresh reduction of the stored values, which is
/// exactly the NormCache coherence contract (norm_cache.hpp).
std::vector<double> apply_panel_update(Matrix& a, std::span<const int> cols, const Matrix& w,
                                       ThreadPool* pool = nullptr);

}  // namespace treesvd
