#pragma once
// BLAS-3 layer: cache-blocked, packed matrix-matrix kernels.
//
// The pair-kernel layer (DESIGN.md §7) made every BLAS-1 pass as fast as a
// single stream over the data allows; this layer removes passes altogether.
// A tiled GEMM with a register micro-kernel computes C = A·B touching each
// element of A and B once per cache block instead of once per scalar
// product, and the panel helpers at the bottom are the contract the
// block-Jacobi Gram path (DESIGN.md §8) is built on: form Pᵀ·P once, solve
// the small problem locally, apply the accumulated orthogonal update as one
// matrix-matrix product.
//
// Threading: every entry point takes an optional ThreadPool. Passing
// nullptr runs serially; `gemm_pool()` returns a lazily created process-wide
// pool that the Matrix operators use for large products. The pool is guarded
// internally with a try-lock — concurrent callers (ThreadPool::parallel_for
// is single-caller) simply fall back to the serial path instead of racing.
// Per-tile work writes disjoint output, so threaded and serial runs produce
// bitwise-identical results.

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace treesvd {

class ThreadPool;

/// Cache-blocking parameters of the tiled GEMM. The defaults target a
/// generic x86-64 cache hierarchy (packed A block mc·kc ≈ 256 KiB in L2,
/// packed B block kc·nc ≈ 128 KiB); they are exposed for benchmarking, not
/// because users should need to touch them.
struct GemmTiling {
  std::size_t mc = 128;  ///< rows of A per packed block
  std::size_t kc = 256;  ///< shared (inner) dimension per packed block
  std::size_t nc = 64;   ///< columns of B per packed block

  /// Register micro-kernel footprint: an mr x nr accumulator tile lives in
  /// registers across the kc loop. Fixed at compile time.
  static constexpr std::size_t mr = 4;
  static constexpr std::size_t nr = 4;
};

/// Process-wide pool for the matmul entry points (hardware concurrency),
/// created on first use. See the threading note above: safe to pass from
/// concurrent callers, losers of the internal try-lock run serially.
ThreadPool* gemm_pool();

/// C <- A·B. C must already have shape a.rows() x b.cols(); its previous
/// contents are overwritten. Work below an internal flop threshold runs
/// serially even when a pool is supplied.
void gemm_into(Matrix& c, const Matrix& a, const Matrix& b, ThreadPool* pool = nullptr,
               const GemmTiling& tiling = {});

/// Convenience allocating form of gemm_into.
Matrix gemm(const Matrix& a, const Matrix& b, ThreadPool* pool = nullptr,
            const GemmTiling& tiling = {});

/// G <- AᵀA (symmetric n x n Gram matrix of A's columns). Only the upper
/// triangle is computed; the lower triangle is mirrored.
void syrk_t_into(Matrix& g, const Matrix& a, ThreadPool* pool = nullptr);
Matrix syrk_t(const Matrix& a, ThreadPool* pool = nullptr);

/// Gram matrix of a gathered panel: with P = A[:, cols] (columns need not be
/// contiguous), returns the K x K matrix G(i,j) = P_i . P_j. One pass of
/// O(m·K²/tile) traffic — this is the "form the Gram once" half of the
/// block-Jacobi Gram path.
Matrix gram_panel(const Matrix& a, std::span<const int> cols, ThreadPool* pool = nullptr);

/// In-place blocked panel update P <- P·W for the gathered panel
/// P = A[:, cols] and a K x K update W (K == cols.size()). Returns the
/// squared norm of each updated column, accumulated in the same read+write
/// pass over the data — a fresh reduction of the stored values, which is
/// exactly the NormCache coherence contract (norm_cache.hpp).
std::vector<double> apply_panel_update(Matrix& a, std::span<const int> cols, const Matrix& w,
                                       ThreadPool* pool = nullptr);

}  // namespace treesvd
