#include "linalg/blas1.hpp"

#include <cmath>
#include <utility>

namespace treesvd {

double dot(std::span<const double> x, std::span<const double> y) noexcept {
  double s = 0.0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

double nrm2(std::span<const double> x) noexcept {
  // LAPACK dnrm2-style scaled accumulation.
  double scale = 0.0;
  double ssq = 1.0;
  for (double v : x) {
    if (v == 0.0) continue;
    const double a = std::fabs(v);
    if (scale < a) {
      const double r = scale / a;
      ssq = 1.0 + ssq * r * r;
      scale = a;
    } else {
      const double r = a / scale;
      ssq += r * r;
    }
  }
  return scale * std::sqrt(ssq);
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) noexcept {
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scal(double alpha, std::span<double> x) noexcept {
  for (double& v : x) v *= alpha;
}

void swap(std::span<double> x, std::span<double> y) noexcept {
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) std::swap(x[i], y[i]);
}

GramPair gram_pair(std::span<const double> x, std::span<const double> y) noexcept {
  double xx = 0.0;
  double yy = 0.0;
  double xy = 0.0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = x[i];
    const double yi = y[i];
    xx += xi * xi;
    yy += yi * yi;
    xy += xi * yi;
  }
  return {xx, yy, xy};
}

}  // namespace treesvd
