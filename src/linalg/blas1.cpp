#include "linalg/blas1.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace treesvd {
namespace {

// Raw-pointer cores. std::span aliasing is opaque to the optimiser; the
// restrict qualification plus four independent accumulators is what lets the
// compiler emit wide FMAs without a loop-carried dependence on one sum.

double dot_core(const double* __restrict x, const double* __restrict y,
                std::size_t n) noexcept {
  double s0 = 0.0;
  double s1 = 0.0;
  double s2 = 0.0;
  double s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += x[i] * y[i];
    s1 += x[i + 1] * y[i + 1];
    s2 += x[i + 2] * y[i + 2];
    s3 += x[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) s0 += x[i] * y[i];
  return (s0 + s1) + (s2 + s3);
}

double sumsq_core(const double* __restrict x, std::size_t n) noexcept {
  double s0 = 0.0;
  double s1 = 0.0;
  double s2 = 0.0;
  double s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += x[i] * x[i];
    s1 += x[i + 1] * x[i + 1];
    s2 += x[i + 2] * x[i + 2];
    s3 += x[i + 3] * x[i + 3];
  }
  for (; i < n; ++i) s0 += x[i] * x[i];
  return (s0 + s1) + (s2 + s3);
}

}  // namespace

double dot(std::span<const double> x, std::span<const double> y) noexcept {
  return dot_core(x.data(), y.data(), x.size());
}

double sumsq(std::span<const double> x) noexcept { return sumsq_core(x.data(), x.size()); }

double nrm2(std::span<const double> x) noexcept {
  // LAPACK dnrm2-style scaled accumulation.
  double scale = 0.0;
  double ssq = 1.0;
  for (double v : x) {
    if (v == 0.0) continue;
    const double a = std::fabs(v);
    if (scale < a) {
      const double r = scale / a;
      ssq = 1.0 + ssq * r * r;
      scale = a;
    } else {
      const double r = a / scale;
      ssq += r * r;
    }
  }
  return scale * std::sqrt(ssq);
}

double ScaledSumsq::value() const noexcept {
  // ssq >= 1, so scale^2 overflows only when the true sum of squares does;
  // the plain product is the honest conversion.
  return scale * scale * ssq;
}

double ScaledSumsq::norm() const noexcept { return scale * std::sqrt(ssq); }

ScaledSumsq sumsq_scaled(std::span<const double> x) noexcept {
  ScaledSumsq r;
  r.scale = 0.0;
  r.ssq = 1.0;
  for (double v : x) {
    if (v == 0.0) continue;
    const double a = std::fabs(v);
    if (r.scale < a) {
      const double t = r.scale / a;
      r.ssq = 1.0 + r.ssq * t * t;
      r.scale = a;
    } else {
      const double t = a / r.scale;
      r.ssq += t * t;
    }
  }
  return r;
}

double dot_scaled(std::span<const double> x, std::span<const double> y) noexcept {
  double mx = 0.0;
  double my = 0.0;
  for (const double v : x) mx = std::max(mx, std::fabs(v));
  for (const double v : y) my = std::max(my, std::fabs(v));
  if (mx == 0.0 || my == 0.0) return 0.0;
  if (!std::isfinite(mx) || !std::isfinite(my)) return dot(x, y);
  // Exact power-of-two prescale: every product of prescaled entries lies in
  // [-4, 4], so the accumulation cannot overflow; ldexp restores the
  // combined exponent (overflowing only when the true dot product does).
  const int ex = std::ilogb(mx);
  const int ey = std::ilogb(my);
  const double* __restrict xp = x.data();
  const double* __restrict yp = y.data();
  const std::size_t n = x.size();
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    s += std::ldexp(xp[i], -ex) * std::ldexp(yp[i], -ey);
  return std::ldexp(s, ex + ey);
}

double sumsq_robust(std::span<const double> x) noexcept {
  const double fast = sumsq(x);
  if (std::isfinite(fast)) return fast;
  return sumsq_scaled(x).value();
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) noexcept {
  const double* __restrict xp = x.data();
  double* __restrict yp = y.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) yp[i] += alpha * xp[i];
}

void scal(double alpha, std::span<double> x) noexcept {
  for (double& v : x) v *= alpha;
}

void copy_div(std::span<const double> x, double denom, std::span<double> y) noexcept {
  const double* __restrict xp = x.data();
  double* __restrict yp = y.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) yp[i] = xp[i] / denom;
}

void swap(std::span<double> x, std::span<double> y) noexcept {
  double* __restrict xp = x.data();
  double* __restrict yp = y.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) std::swap(xp[i], yp[i]);
}

GramPair gram_pair(std::span<const double> x, std::span<const double> y) noexcept {
  const double* __restrict xp = x.data();
  const double* __restrict yp = y.data();
  const std::size_t n = x.size();
  // Two accumulators per Gram element: six partial sums keep the FMA ports
  // busy without spilling accumulator registers.
  double xx0 = 0.0;
  double xx1 = 0.0;
  double yy0 = 0.0;
  double yy1 = 0.0;
  double xy0 = 0.0;
  double xy1 = 0.0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const double x0 = xp[i];
    const double y0 = yp[i];
    const double x1 = xp[i + 1];
    const double y1 = yp[i + 1];
    xx0 += x0 * x0;
    yy0 += y0 * y0;
    xy0 += x0 * y0;
    xx1 += x1 * x1;
    yy1 += y1 * y1;
    xy1 += x1 * y1;
  }
  if (i < n) {
    const double x0 = xp[i];
    const double y0 = yp[i];
    xx0 += x0 * x0;
    yy0 += y0 * y0;
    xy0 += x0 * y0;
  }
  return {xx0 + xx1, yy0 + yy1, xy0 + xy1};
}

}  // namespace treesvd
