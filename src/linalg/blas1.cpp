#include "linalg/blas1.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "linalg/dispatch.hpp"
#include "linalg/rotation.hpp"

namespace treesvd {

// ---------------------------------------------------------------------------
// Scalar reference twins. These spell out the canonical accumulation chains
// the dispatched SIMD kernels (kernels_single_impl.inc) reproduce bitwise;
// they are the cross-check targets of linalg_dispatch_test and the
// implementation of last resort on builds without vector extensions.
// ---------------------------------------------------------------------------

double dot_ref(std::span<const double> x, std::span<const double> y) noexcept {
  const double* __restrict xp = x.data();
  const double* __restrict yp = y.data();
  const std::size_t n = x.size();
  double s0 = 0.0;
  double s1 = 0.0;
  double s2 = 0.0;
  double s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += xp[i] * yp[i];
    s1 += xp[i + 1] * yp[i + 1];
    s2 += xp[i + 2] * yp[i + 2];
    s3 += xp[i + 3] * yp[i + 3];
  }
  for (; i < n; ++i) s0 += xp[i] * yp[i];
  return (s0 + s1) + (s2 + s3);
}

double sumsq_ref(std::span<const double> x) noexcept {
  const double* __restrict xp = x.data();
  const std::size_t n = x.size();
  double s0 = 0.0;
  double s1 = 0.0;
  double s2 = 0.0;
  double s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += xp[i] * xp[i];
    s1 += xp[i + 1] * xp[i + 1];
    s2 += xp[i + 2] * xp[i + 2];
    s3 += xp[i + 3] * xp[i + 3];
  }
  for (; i < n; ++i) s0 += xp[i] * xp[i];
  return (s0 + s1) + (s2 + s3);
}

void axpy_ref(double alpha, std::span<const double> x, std::span<double> y) noexcept {
  const double* __restrict xp = x.data();
  double* __restrict yp = y.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) yp[i] += alpha * xp[i];
}

GramPair gram_pair_ref(std::span<const double> x, std::span<const double> y) noexcept {
  const double* __restrict xp = x.data();
  const double* __restrict yp = y.data();
  const std::size_t n = x.size();
  // Four mod-4 chains per Gram element (twelve partial sums): element i
  // feeds chain i % 4, the tail feeds chain 0, combine (c0+c1)+(c2+c3) —
  // one vector accumulator per element in the SIMD twin.
  double xx0 = 0.0, xx1 = 0.0, xx2 = 0.0, xx3 = 0.0;
  double yy0 = 0.0, yy1 = 0.0, yy2 = 0.0, yy3 = 0.0;
  double xy0 = 0.0, xy1 = 0.0, xy2 = 0.0, xy3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    xx0 += xp[i] * xp[i];
    yy0 += yp[i] * yp[i];
    xy0 += xp[i] * yp[i];
    xx1 += xp[i + 1] * xp[i + 1];
    yy1 += yp[i + 1] * yp[i + 1];
    xy1 += xp[i + 1] * yp[i + 1];
    xx2 += xp[i + 2] * xp[i + 2];
    yy2 += yp[i + 2] * yp[i + 2];
    xy2 += xp[i + 2] * yp[i + 2];
    xx3 += xp[i + 3] * xp[i + 3];
    yy3 += yp[i + 3] * yp[i + 3];
    xy3 += xp[i + 3] * yp[i + 3];
  }
  for (; i < n; ++i) {
    xx0 += xp[i] * xp[i];
    yy0 += yp[i] * yp[i];
    xy0 += xp[i] * yp[i];
  }
  return {(xx0 + xx1) + (xx2 + xx3), (yy0 + yy1) + (yy2 + yy3), (xy0 + xy1) + (xy2 + xy3)};
}

// ---------------------------------------------------------------------------
// Public entry points: one relaxed load resolves the tier, then the call
// goes through the table. Results are bitwise identical on every tier.
// ---------------------------------------------------------------------------

double dot(std::span<const double> x, std::span<const double> y) noexcept {
  return kernels().dot(x.data(), y.data(), x.size());
}

double sumsq(std::span<const double> x) noexcept {
  return kernels().sumsq(x.data(), x.size());
}

double nrm2(std::span<const double> x) noexcept {
  // LAPACK dnrm2-style scaled accumulation.
  double scale = 0.0;
  double ssq = 1.0;
  for (double v : x) {
    if (v == 0.0) continue;
    const double a = std::fabs(v);
    if (scale < a) {
      const double r = scale / a;
      ssq = 1.0 + ssq * r * r;
      scale = a;
    } else {
      const double r = a / scale;
      ssq += r * r;
    }
  }
  return scale * std::sqrt(ssq);
}

double ScaledSumsq::value() const noexcept {
  // ssq >= 1, so scale^2 overflows only when the true sum of squares does;
  // the plain product is the honest conversion.
  return scale * scale * ssq;
}

double ScaledSumsq::norm() const noexcept { return scale * std::sqrt(ssq); }

ScaledSumsq sumsq_scaled(std::span<const double> x) noexcept {
  ScaledSumsq r;
  r.scale = 0.0;
  r.ssq = 1.0;
  for (double v : x) {
    if (v == 0.0) continue;
    const double a = std::fabs(v);
    if (r.scale < a) {
      const double t = r.scale / a;
      r.ssq = 1.0 + r.ssq * t * t;
      r.scale = a;
    } else {
      const double t = a / r.scale;
      r.ssq += t * t;
    }
  }
  return r;
}

double dot_scaled(std::span<const double> x, std::span<const double> y) noexcept {
  double mx = 0.0;
  double my = 0.0;
  for (const double v : x) mx = std::max(mx, std::fabs(v));
  for (const double v : y) my = std::max(my, std::fabs(v));
  if (mx == 0.0 || my == 0.0) return 0.0;
  if (!std::isfinite(mx) || !std::isfinite(my)) return dot(x, y);
  // Exact power-of-two prescale: every product of prescaled entries lies in
  // [-4, 4], so the accumulation cannot overflow; ldexp restores the
  // combined exponent (overflowing only when the true dot product does).
  const int ex = std::ilogb(mx);
  const int ey = std::ilogb(my);
  const double* __restrict xp = x.data();
  const double* __restrict yp = y.data();
  const std::size_t n = x.size();
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    s += std::ldexp(xp[i], -ex) * std::ldexp(yp[i], -ey);
  return std::ldexp(s, ex + ey);
}

double sumsq_robust(std::span<const double> x) noexcept {
  const double fast = sumsq(x);
  if (std::isfinite(fast)) return fast;
  return sumsq_scaled(x).value();
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) noexcept {
  kernels().axpy(alpha, x.data(), y.data(), x.size());
}

void scal(double alpha, std::span<double> x) noexcept {
  for (double& v : x) v *= alpha;
}

void copy_div(std::span<const double> x, double denom, std::span<double> y) noexcept {
  const double* __restrict xp = x.data();
  double* __restrict yp = y.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) yp[i] = xp[i] / denom;
}

void swap(std::span<double> x, std::span<double> y) noexcept {
  double* __restrict xp = x.data();
  double* __restrict yp = y.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) std::swap(xp[i], yp[i]);
}

GramPair gram_pair(std::span<const double> x, std::span<const double> y) noexcept {
  GramPair g;
  kernels().gram_pair(x.data(), y.data(), x.size(), &g.app, &g.aqq, &g.apq);
  return g;
}

// ---------------------------------------------------------------------------
// Batched SoA lane-block kernels.
// ---------------------------------------------------------------------------

namespace {

// Reference path: gather one lane into contiguous scratch and run the exact
// scalar kernel — bitwise identical to the sequential driver by
// construction, on any compiler. The scratch is thread-local so the steady
// state allocates nothing after the first call at a given size.
std::vector<double>& batch_lane_scratch() {
  static thread_local std::vector<double> buf;
  return buf;
}

void gather_lane(const double* x, std::size_t m, std::size_t w, std::size_t b,
                 double* __restrict dst) noexcept {
  for (std::size_t i = 0; i < m; ++i) dst[i] = x[i * w + b];
}

void scatter_lane(const double* __restrict src, std::size_t m, std::size_t w, std::size_t b,
                  double* x) noexcept {
  for (std::size_t i = 0; i < m; ++i) x[i * w + b] = src[i];
}

#if defined(__GNUC__) || defined(__clang__)
#define TREESVD_BATCH_VEC 1
#endif

/// The vectorized lane-block copies cover w in {4, 8, 16}; other widths
/// take the reference path. The ISA tier inside the table is the single
/// process-wide resolution of linalg/dispatch.hpp.
inline bool batched_vector_width(std::size_t w) noexcept {
  return w == 4 || w == 8 || w == 16;
}

}  // namespace

bool batch_kernels_vectorized() noexcept {
#ifdef TREESVD_BATCH_VEC
  return true;
#else
  return false;
#endif
}

void batched_dot_ref(const double* x, const double* y, std::size_t m, std::size_t w,
                     double* out) noexcept {
  auto& buf = batch_lane_scratch();
  buf.resize(2 * m);
  for (std::size_t b = 0; b < w; ++b) {
    gather_lane(x, m, w, b, buf.data());
    gather_lane(y, m, w, b, buf.data() + m);
    out[b] = dot({buf.data(), m}, {buf.data() + m, m});
  }
}

void batched_sumsq_ref(const double* x, std::size_t m, std::size_t w, double* out) noexcept {
  auto& buf = batch_lane_scratch();
  buf.resize(m);
  for (std::size_t b = 0; b < w; ++b) {
    gather_lane(x, m, w, b, buf.data());
    out[b] = sumsq({buf.data(), m});
  }
}

void batched_gram_pair_ref(const double* x, const double* y, std::size_t m, std::size_t w,
                           double* app, double* aqq, double* apq) noexcept {
  auto& buf = batch_lane_scratch();
  buf.resize(2 * m);
  for (std::size_t b = 0; b < w; ++b) {
    gather_lane(x, m, w, b, buf.data());
    gather_lane(y, m, w, b, buf.data() + m);
    const GramPair g = gram_pair({buf.data(), m}, {buf.data() + m, m});
    app[b] = g.app;
    aqq[b] = g.aqq;
    apq[b] = g.apq;
  }
}

void batched_rotate_and_norms_ref(double* x, double* y, std::size_t m, std::size_t w,
                                  const double* c, const double* s,
                                  const std::uint8_t* rotate, const std::uint8_t* swap_lanes,
                                  double* app, double* aqq) noexcept {
  auto& buf = batch_lane_scratch();
  buf.resize(2 * m);
  for (std::size_t b = 0; b < w; ++b) {
    if (rotate[b] == 0) continue;
    gather_lane(x, m, w, b, buf.data());
    gather_lane(y, m, w, b, buf.data() + m);
    const std::span<double> xl{buf.data(), m};
    const std::span<double> yl{buf.data() + m, m};
    const RotatedNorms rn = swap_lanes[b] != 0 ? rotate_and_norms_swapped(xl, yl, c[b], s[b])
                                               : rotate_and_norms(xl, yl, c[b], s[b]);
    scatter_lane(buf.data(), m, w, b, x);
    scatter_lane(buf.data() + m, m, w, b, y);
    app[b] = rn.app;
    aqq[b] = rn.aqq;
  }
}

void batched_apply_rotation_ref(double* x, double* y, std::size_t m, std::size_t w,
                                const double* c, const double* s, const std::uint8_t* rotate,
                                const std::uint8_t* swap_lanes) noexcept {
  auto& buf = batch_lane_scratch();
  buf.resize(2 * m);
  for (std::size_t b = 0; b < w; ++b) {
    if (rotate[b] == 0) continue;
    gather_lane(x, m, w, b, buf.data());
    gather_lane(y, m, w, b, buf.data() + m);
    const std::span<double> xl{buf.data(), m};
    const std::span<double> yl{buf.data() + m, m};
    if (swap_lanes[b] != 0) {
      apply_rotation_swapped(xl, yl, c[b], s[b]);
    } else {
      apply_rotation(xl, yl, c[b], s[b]);
    }
    scatter_lane(buf.data(), m, w, b, x);
    scatter_lane(buf.data() + m, m, w, b, y);
  }
}

const char* batched_kernel_isa() noexcept {
#ifdef TREESVD_BATCH_VEC
  return isa_name(resolved_isa());
#else
  return "scalar-ref";
#endif
}

void batched_dot(const double* x, const double* y, std::size_t m, std::size_t w,
                 double* out) noexcept {
  if (batched_vector_width(w)) {
    kernels().batched_dot(x, y, m, w, out);
    return;
  }
  batched_dot_ref(x, y, m, w, out);
}

void batched_sumsq(const double* x, std::size_t m, std::size_t w, double* out) noexcept {
  if (batched_vector_width(w)) {
    kernels().batched_sumsq(x, m, w, out);
    return;
  }
  batched_sumsq_ref(x, m, w, out);
}

void batched_gram_pair(const double* x, const double* y, std::size_t m, std::size_t w,
                       double* app, double* aqq, double* apq) noexcept {
  if (batched_vector_width(w)) {
    kernels().batched_gram_pair(x, y, m, w, app, aqq, apq);
    return;
  }
  batched_gram_pair_ref(x, y, m, w, app, aqq, apq);
}

void batched_rotate_and_norms(double* x, double* y, std::size_t m, std::size_t w,
                              const double* c, const double* s, const std::uint8_t* rotate,
                              const std::uint8_t* swap_lanes, double* app,
                              double* aqq) noexcept {
  if (batched_vector_width(w)) {
    kernels().batched_rotate_and_norms(x, y, m, w, c, s, rotate, swap_lanes, app, aqq);
    return;
  }
  batched_rotate_and_norms_ref(x, y, m, w, c, s, rotate, swap_lanes, app, aqq);
}

void batched_apply_rotation(double* x, double* y, std::size_t m, std::size_t w, const double* c,
                            const double* s, const std::uint8_t* rotate,
                            const std::uint8_t* swap_lanes) noexcept {
  if (batched_vector_width(w)) {
    kernels().batched_apply_rotation(x, y, m, w, c, s, rotate, swap_lanes);
    return;
  }
  batched_apply_rotation_ref(x, y, m, w, c, s, rotate, swap_lanes);
}

}  // namespace treesvd
