#include "linalg/blas1.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "linalg/blas1_batched_isa.hpp"
#include "linalg/rotation.hpp"

#if defined(__GNUC__) && !defined(__clang__)
// The anonymous-namespace batched kernels pass and return vectors wider than
// the baseline ABI supports natively; they are internal to this TU and fully
// inlined, so the ABI caveat cannot bite. TU-wide (not push/pop) because GCC
// re-emits the diagnostic at end-of-file template instantiation, outside any
// scoped region in blas1_batched_impl.inc.
#pragma GCC diagnostic ignored "-Wpsabi"
#endif

namespace treesvd {
namespace {

// Raw-pointer cores. std::span aliasing is opaque to the optimiser; the
// restrict qualification plus four independent accumulators is what lets the
// compiler emit wide FMAs without a loop-carried dependence on one sum.

double dot_core(const double* __restrict x, const double* __restrict y,
                std::size_t n) noexcept {
  double s0 = 0.0;
  double s1 = 0.0;
  double s2 = 0.0;
  double s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += x[i] * y[i];
    s1 += x[i + 1] * y[i + 1];
    s2 += x[i + 2] * y[i + 2];
    s3 += x[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) s0 += x[i] * y[i];
  return (s0 + s1) + (s2 + s3);
}

double sumsq_core(const double* __restrict x, std::size_t n) noexcept {
  double s0 = 0.0;
  double s1 = 0.0;
  double s2 = 0.0;
  double s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += x[i] * x[i];
    s1 += x[i + 1] * x[i + 1];
    s2 += x[i + 2] * x[i + 2];
    s3 += x[i + 3] * x[i + 3];
  }
  for (; i < n; ++i) s0 += x[i] * x[i];
  return (s0 + s1) + (s2 + s3);
}

}  // namespace

double dot(std::span<const double> x, std::span<const double> y) noexcept {
  return dot_core(x.data(), y.data(), x.size());
}

double sumsq(std::span<const double> x) noexcept { return sumsq_core(x.data(), x.size()); }

double nrm2(std::span<const double> x) noexcept {
  // LAPACK dnrm2-style scaled accumulation.
  double scale = 0.0;
  double ssq = 1.0;
  for (double v : x) {
    if (v == 0.0) continue;
    const double a = std::fabs(v);
    if (scale < a) {
      const double r = scale / a;
      ssq = 1.0 + ssq * r * r;
      scale = a;
    } else {
      const double r = a / scale;
      ssq += r * r;
    }
  }
  return scale * std::sqrt(ssq);
}

double ScaledSumsq::value() const noexcept {
  // ssq >= 1, so scale^2 overflows only when the true sum of squares does;
  // the plain product is the honest conversion.
  return scale * scale * ssq;
}

double ScaledSumsq::norm() const noexcept { return scale * std::sqrt(ssq); }

ScaledSumsq sumsq_scaled(std::span<const double> x) noexcept {
  ScaledSumsq r;
  r.scale = 0.0;
  r.ssq = 1.0;
  for (double v : x) {
    if (v == 0.0) continue;
    const double a = std::fabs(v);
    if (r.scale < a) {
      const double t = r.scale / a;
      r.ssq = 1.0 + r.ssq * t * t;
      r.scale = a;
    } else {
      const double t = a / r.scale;
      r.ssq += t * t;
    }
  }
  return r;
}

double dot_scaled(std::span<const double> x, std::span<const double> y) noexcept {
  double mx = 0.0;
  double my = 0.0;
  for (const double v : x) mx = std::max(mx, std::fabs(v));
  for (const double v : y) my = std::max(my, std::fabs(v));
  if (mx == 0.0 || my == 0.0) return 0.0;
  if (!std::isfinite(mx) || !std::isfinite(my)) return dot(x, y);
  // Exact power-of-two prescale: every product of prescaled entries lies in
  // [-4, 4], so the accumulation cannot overflow; ldexp restores the
  // combined exponent (overflowing only when the true dot product does).
  const int ex = std::ilogb(mx);
  const int ey = std::ilogb(my);
  const double* __restrict xp = x.data();
  const double* __restrict yp = y.data();
  const std::size_t n = x.size();
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    s += std::ldexp(xp[i], -ex) * std::ldexp(yp[i], -ey);
  return std::ldexp(s, ex + ey);
}

double sumsq_robust(std::span<const double> x) noexcept {
  const double fast = sumsq(x);
  if (std::isfinite(fast)) return fast;
  return sumsq_scaled(x).value();
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) noexcept {
  const double* __restrict xp = x.data();
  double* __restrict yp = y.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) yp[i] += alpha * xp[i];
}

void scal(double alpha, std::span<double> x) noexcept {
  for (double& v : x) v *= alpha;
}

void copy_div(std::span<const double> x, double denom, std::span<double> y) noexcept {
  const double* __restrict xp = x.data();
  double* __restrict yp = y.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) yp[i] = xp[i] / denom;
}

void swap(std::span<double> x, std::span<double> y) noexcept {
  double* __restrict xp = x.data();
  double* __restrict yp = y.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) std::swap(xp[i], yp[i]);
}

GramPair gram_pair(std::span<const double> x, std::span<const double> y) noexcept {
  const double* __restrict xp = x.data();
  const double* __restrict yp = y.data();
  const std::size_t n = x.size();
  // Two accumulators per Gram element: six partial sums keep the FMA ports
  // busy without spilling accumulator registers.
  double xx0 = 0.0;
  double xx1 = 0.0;
  double yy0 = 0.0;
  double yy1 = 0.0;
  double xy0 = 0.0;
  double xy1 = 0.0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const double x0 = xp[i];
    const double y0 = yp[i];
    const double x1 = xp[i + 1];
    const double y1 = yp[i + 1];
    xx0 += x0 * x0;
    yy0 += y0 * y0;
    xy0 += x0 * y0;
    xx1 += x1 * x1;
    yy1 += y1 * y1;
    xy1 += x1 * y1;
  }
  if (i < n) {
    const double x0 = xp[i];
    const double y0 = yp[i];
    xx0 += x0 * x0;
    yy0 += y0 * y0;
    xy0 += x0 * y0;
  }
  return {xx0 + xx1, yy0 + yy1, xy0 + xy1};
}

// ---------------------------------------------------------------------------
// Batched SoA lane-block kernels.
// ---------------------------------------------------------------------------

namespace {

// Reference path: gather one lane into contiguous scratch and run the exact
// scalar kernel — bitwise identical to the sequential driver by
// construction, on any compiler. The scratch is thread-local so the steady
// state allocates nothing after the first call at a given size.
std::vector<double>& batch_lane_scratch() {
  static thread_local std::vector<double> buf;
  return buf;
}

void gather_lane(const double* x, std::size_t m, std::size_t w, std::size_t b,
                 double* __restrict dst) noexcept {
  for (std::size_t i = 0; i < m; ++i) dst[i] = x[i * w + b];
}

void scatter_lane(const double* __restrict src, std::size_t m, std::size_t w, std::size_t b,
                  double* x) noexcept {
  for (std::size_t i = 0; i < m; ++i) x[i * w + b] = src[i];
}

#if defined(__GNUC__) || defined(__clang__)
#define TREESVD_BATCH_VEC 1

// Baseline-ISA copies of the vectorized lane-block kernels (the same bodies
// compile to YMM/ZMM code in blas1_batched_avx2.cpp/blas1_batched_avx512.cpp;
// the public entry points below pick the widest copy the CPU supports).
#include "linalg/blas1_batched_impl.inc"

#endif  // vector extensions

}  // namespace

bool batch_kernels_vectorized() noexcept {
#ifdef TREESVD_BATCH_VEC
  return true;
#else
  return false;
#endif
}

void batched_dot_ref(const double* x, const double* y, std::size_t m, std::size_t w,
                     double* out) noexcept {
  auto& buf = batch_lane_scratch();
  buf.resize(2 * m);
  for (std::size_t b = 0; b < w; ++b) {
    gather_lane(x, m, w, b, buf.data());
    gather_lane(y, m, w, b, buf.data() + m);
    out[b] = dot({buf.data(), m}, {buf.data() + m, m});
  }
}

void batched_sumsq_ref(const double* x, std::size_t m, std::size_t w, double* out) noexcept {
  auto& buf = batch_lane_scratch();
  buf.resize(m);
  for (std::size_t b = 0; b < w; ++b) {
    gather_lane(x, m, w, b, buf.data());
    out[b] = sumsq({buf.data(), m});
  }
}

void batched_gram_pair_ref(const double* x, const double* y, std::size_t m, std::size_t w,
                           double* app, double* aqq, double* apq) noexcept {
  auto& buf = batch_lane_scratch();
  buf.resize(2 * m);
  for (std::size_t b = 0; b < w; ++b) {
    gather_lane(x, m, w, b, buf.data());
    gather_lane(y, m, w, b, buf.data() + m);
    const GramPair g = gram_pair({buf.data(), m}, {buf.data() + m, m});
    app[b] = g.app;
    aqq[b] = g.aqq;
    apq[b] = g.apq;
  }
}

void batched_rotate_and_norms_ref(double* x, double* y, std::size_t m, std::size_t w,
                                  const double* c, const double* s,
                                  const std::uint8_t* rotate, const std::uint8_t* swap_lanes,
                                  double* app, double* aqq) noexcept {
  auto& buf = batch_lane_scratch();
  buf.resize(2 * m);
  for (std::size_t b = 0; b < w; ++b) {
    if (rotate[b] == 0) continue;
    gather_lane(x, m, w, b, buf.data());
    gather_lane(y, m, w, b, buf.data() + m);
    const std::span<double> xl{buf.data(), m};
    const std::span<double> yl{buf.data() + m, m};
    const RotatedNorms rn = swap_lanes[b] != 0 ? rotate_and_norms_swapped(xl, yl, c[b], s[b])
                                               : rotate_and_norms(xl, yl, c[b], s[b]);
    scatter_lane(buf.data(), m, w, b, x);
    scatter_lane(buf.data() + m, m, w, b, y);
    app[b] = rn.app;
    aqq[b] = rn.aqq;
  }
}

void batched_apply_rotation_ref(double* x, double* y, std::size_t m, std::size_t w,
                                const double* c, const double* s, const std::uint8_t* rotate,
                                const std::uint8_t* swap_lanes) noexcept {
  auto& buf = batch_lane_scratch();
  buf.resize(2 * m);
  for (std::size_t b = 0; b < w; ++b) {
    if (rotate[b] == 0) continue;
    gather_lane(x, m, w, b, buf.data());
    gather_lane(y, m, w, b, buf.data() + m);
    const std::span<double> xl{buf.data(), m};
    const std::span<double> yl{buf.data() + m, m};
    if (swap_lanes[b] != 0) {
      apply_rotation_swapped(xl, yl, c[b], s[b]);
    } else {
      apply_rotation(xl, yl, c[b], s[b]);
    }
    scatter_lane(buf.data(), m, w, b, x);
    scatter_lane(buf.data() + m, m, w, b, y);
  }
}

int batched_isa_tier() noexcept {
#if defined(TREESVD_BATCH_VEC) && defined(TREESVD_BATCH_ISA_X86)
  static const int tier = [] {
    if (__builtin_cpu_supports("avx512f")) return 2;
    if (__builtin_cpu_supports("avx2")) return 1;
    return 0;
  }();
  return tier;
#else
  return 0;
#endif
}

const char* batched_kernel_isa() noexcept {
#ifdef TREESVD_BATCH_VEC
  switch (batched_isa_tier()) {
    case 2: return "avx512f";
    case 1: return "avx2";
    default: return "baseline";
  }
#else
  return "scalar-ref";
#endif
}

void batched_dot(const double* x, const double* y, std::size_t m, std::size_t w,
                 double* out) noexcept {
#ifdef TREESVD_BATCH_VEC
  if (w == 4 || w == 8 || w == 16) {
    switch (batched_isa_tier()) {
      case 2: batched_dot_avx512(x, y, m, w, out); return;
      case 1: batched_dot_avx2(x, y, m, w, out); return;
      default: batched_dot_g<4>(x, y, m, w, out); return;
    }
  }
#endif
  batched_dot_ref(x, y, m, w, out);
}

void batched_sumsq(const double* x, std::size_t m, std::size_t w, double* out) noexcept {
#ifdef TREESVD_BATCH_VEC
  if (w == 4 || w == 8 || w == 16) {
    switch (batched_isa_tier()) {
      case 2: batched_sumsq_avx512(x, m, w, out); return;
      case 1: batched_sumsq_avx2(x, m, w, out); return;
      default: batched_sumsq_g<4>(x, m, w, out); return;
    }
  }
#endif
  batched_sumsq_ref(x, m, w, out);
}

void batched_gram_pair(const double* x, const double* y, std::size_t m, std::size_t w,
                       double* app, double* aqq, double* apq) noexcept {
#ifdef TREESVD_BATCH_VEC
  if (w == 4 || w == 8 || w == 16) {
    switch (batched_isa_tier()) {
      case 2: batched_gram_pair_avx512(x, y, m, w, app, aqq, apq); return;
      case 1: batched_gram_pair_avx2(x, y, m, w, app, aqq, apq); return;
      default: batched_gram_pair_g<4>(x, y, m, w, app, aqq, apq); return;
    }
  }
#endif
  batched_gram_pair_ref(x, y, m, w, app, aqq, apq);
}

void batched_rotate_and_norms(double* x, double* y, std::size_t m, std::size_t w,
                              const double* c, const double* s, const std::uint8_t* rotate,
                              const std::uint8_t* swap_lanes, double* app,
                              double* aqq) noexcept {
#ifdef TREESVD_BATCH_VEC
  if (w == 4 || w == 8 || w == 16) {
    switch (batched_isa_tier()) {
      case 2: batched_rotate_and_norms_avx512(x, y, m, w, c, s, rotate, swap_lanes, app, aqq); return;
      case 1: batched_rotate_and_norms_avx2(x, y, m, w, c, s, rotate, swap_lanes, app, aqq); return;
      default: batched_rotate_and_norms_g<4>(x, y, m, w, c, s, rotate, swap_lanes, app, aqq); return;
    }
  }
#endif
  batched_rotate_and_norms_ref(x, y, m, w, c, s, rotate, swap_lanes, app, aqq);
}

void batched_apply_rotation(double* x, double* y, std::size_t m, std::size_t w, const double* c,
                            const double* s, const std::uint8_t* rotate,
                            const std::uint8_t* swap_lanes) noexcept {
#ifdef TREESVD_BATCH_VEC
  if (w == 4 || w == 8 || w == 16) {
    switch (batched_isa_tier()) {
      case 2: batched_apply_rotation_avx512(x, y, m, w, c, s, rotate, swap_lanes); return;
      case 1: batched_apply_rotation_avx2(x, y, m, w, c, s, rotate, swap_lanes); return;
      default: batched_apply_rotation_g<4>(x, y, m, w, c, s, rotate, swap_lanes); return;
    }
  }
#endif
  batched_apply_rotation_ref(x, y, m, w, c, s, rotate, swap_lanes);
}

}  // namespace treesvd
