#pragma once
// Golub-Kahan-Reinsch SVD (singular values only): Householder
// bidiagonalization followed by implicit-shift QR on the bidiagonal — the
// "various ways to compute the SVD [6]" the paper contrasts with Jacobi.
//
// Serves as a second, independent oracle: unlike the tridiagonal-QL oracle it
// never forms A^T A, so it resolves singular values below sqrt(eps)*sigma_max
// and lets the tests compare the Jacobi engines' accuracy on severely graded
// spectra (ablation A9).

#include <vector>

#include "linalg/matrix.hpp"

namespace treesvd {

/// Bidiagonal form of an m x n matrix (m >= n): diag[k] = B(k,k),
/// super[k] = B(k-1,k) with super[0] unused.
struct Bidiagonal {
  std::vector<double> diag;
  std::vector<double> super;
};

/// Householder bidiagonalization (no accumulation of the orthogonal factors).
Bidiagonal bidiagonalize(const Matrix& a);

/// Singular values of a bidiagonal matrix by implicit-shift QR, descending.
/// Throws std::runtime_error after 30*n iterations without convergence
/// (does not occur for real inputs).
std::vector<double> bidiagonal_singular_values(Bidiagonal b);

/// Singular values of A (m >= n), descending.
std::vector<double> golub_kahan_singular_values(const Matrix& a);

}  // namespace treesvd
