#pragma once
// BLAS-1 style kernels on column views.
//
// These are the only dense kernels the one-sided Jacobi method needs: the
// Gram elements of a column pair (dot products and squared norms) and the
// plane-rotation updates. The hot entry points (dot, sumsq, axpy, gram_pair)
// resolve through the runtime CPU-dispatch layer (linalg/dispatch.hpp) to
// explicit-SIMD per-ISA kernels; the `_ref` twins below spell out the exact
// scalar accumulation chains those kernels reproduce bitwise, so results are
// identical on every tier. All forms use multiple independent accumulator
// chains (mod-4 element interleave) so partial sums stay in flight instead of
// serialising on the add latency chain.

#include <cstddef>
#include <cstdint>
#include <span>

namespace treesvd {

/// x . y
double dot(std::span<const double> x, std::span<const double> y) noexcept;

/// x . x, accumulated unscaled (consistent with gram_pair; use nrm2 when the
/// entries may overflow or underflow under squaring).
double sumsq(std::span<const double> x) noexcept;

/// Scalar reference twins of the dispatched kernels: four mod-4 accumulation
/// chains, tail into chain 0, combine (s0+s1)+(s2+s3). Bitwise identical to
/// the dispatched forms on every ISA tier (enforced by linalg_dispatch_test);
/// use these when an independent implementation is wanted for cross-checks.
double dot_ref(std::span<const double> x, std::span<const double> y) noexcept;
double sumsq_ref(std::span<const double> x) noexcept;

/// dlassq-style representation of a sum of squares: the pair (scale, ssq)
/// stands for scale^2 * ssq with scale = max |x_i| visited so far, so the
/// accumulation itself can neither overflow nor underflow — only the final
/// conversion back to a plain double can, and then only when the true value
/// is outside the representable range.
struct ScaledSumsq {
  double scale = 0.0;
  double ssq = 1.0;

  /// scale^2 * ssq as a plain double (Inf when the true value overflows,
  /// 0 when x was all zeros).
  double value() const noexcept;
  /// scale * sqrt(ssq): the 2-norm, representable whenever the norm itself
  /// is (i.e. for every finite input).
  double norm() const noexcept;
};

/// Scaled accumulation of x . x (LAPACK dlassq). Use where sumsq would
/// overflow/underflow: the scaled form loses nothing at any input scale.
ScaledSumsq sumsq_scaled(std::span<const double> x) noexcept;

/// x . y with exact power-of-two prescaling of both operands (each by its
/// own largest-entry exponent), so the accumulation stays in range; the
/// combined exponent is reapplied at the end. Costs ~3x dot; used as the
/// retry path when the fast unscaled dot returns a non-finite value.
double dot_scaled(std::span<const double> x, std::span<const double> y) noexcept;

/// Fast path + fallback: sumsq(x), retried as sumsq_scaled when the unscaled
/// accumulation produced a non-finite value (which for non-negative terms
/// means the squares overflowed mid-sum).
double sumsq_robust(std::span<const double> x) noexcept;

/// ||x||_2, computed with scaling so that it neither overflows nor underflows.
double nrm2(std::span<const double> x) noexcept;

/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y) noexcept;

/// Scalar reference twin of axpy (elementwise, so any vectorization is
/// bitwise-free; the twin exists for the dispatch test's cross-check).
void axpy_ref(double alpha, std::span<const double> x, std::span<double> y) noexcept;

/// x *= alpha
void scal(double alpha, std::span<double> x) noexcept;

/// y[i] = x[i] / denom. Per-element division (not a reciprocal multiply), so
/// the U-formation loops that moved onto it stay bitwise-identical to their
/// historical per-element form.
void copy_div(std::span<const double> x, double denom, std::span<double> y) noexcept;

/// Swaps the contents of two equal-length vectors.
void swap(std::span<double> x, std::span<double> y) noexcept;

/// The three Gram elements of a column pair, in one fused pass:
/// app = x.x, aqq = y.y, apq = x.y.
struct GramPair {
  double app;
  double aqq;
  double apq;
};
GramPair gram_pair(std::span<const double> x, std::span<const double> y) noexcept;

/// Scalar reference twin of gram_pair: four mod-4 chains per Gram element
/// (twelve partial sums), tail into chain 0, combine (c0+c1)+(c2+c3).
GramPair gram_pair_ref(std::span<const double> x, std::span<const double> y) noexcept;

// ---------------------------------------------------------------------------
// Batched SoA lane-block kernels (the cross-problem axis of svd/batch.hpp).
//
// A lane block packs the same column of `w` independent problems
// structure-of-arrays: element i of problem (lane) b lives at x[i*w + b], so
// one SIMD vector spans w problems at the same row, never w rows of one
// problem. The per-lane accumulation replicates the scalar kernels'
// multi-accumulator chains exactly — lane b of every output is bitwise
// identical to calling the corresponding scalar kernel (dot, sumsq,
// gram_pair, rotate_and_norms[_swapped], apply_rotation[_swapped]) on lane
// b's gathered data. That bitwise contract is what lets the batched Jacobi
// engine retire lanes independently while still reproducing the sequential
// driver per problem.
//
// `w` must be a positive multiple of kBatchLanes. The vectorized
// implementations (GCC/Clang vector extensions) cover w in {4, 8, 16}; other
// widths, and builds without vector extensions, take the reference path
// below. The *_ref entry points always use the reference path — gather each
// lane and call the scalar kernel — and exist as the bitwise cross-check
// target for the vectorized forms.
// ---------------------------------------------------------------------------

/// Lanes per SIMD vector of the batched kernels (doubles per 256-bit vector).
inline constexpr std::size_t kBatchLanes = 4;

/// True when this build vectorizes the batched kernels across lanes (the
/// *_ref forms are then an independent implementation; otherwise they are
/// the implementation).
bool batch_kernels_vectorized() noexcept;

/// Instruction-set tier the vectorized batched kernels dispatch to at
/// runtime: "avx512f", "avx2", "baseline" (default-flags vector extensions),
/// or "scalar-ref" in builds without vector extensions. Informational — the
/// results are bitwise identical on every tier.
const char* batched_kernel_isa() noexcept;

/// out[b] = dot(x lane b, y lane b) for b in [0, w).
void batched_dot(const double* x, const double* y, std::size_t m, std::size_t w,
                 double* out) noexcept;
void batched_dot_ref(const double* x, const double* y, std::size_t m, std::size_t w,
                     double* out) noexcept;

/// out[b] = sumsq(x lane b).
void batched_sumsq(const double* x, std::size_t m, std::size_t w, double* out) noexcept;
void batched_sumsq_ref(const double* x, std::size_t m, std::size_t w, double* out) noexcept;

/// Per-lane gram_pair: app[b] = x_b.x_b, aqq[b] = y_b.y_b, apq[b] = x_b.y_b.
void batched_gram_pair(const double* x, const double* y, std::size_t m, std::size_t w,
                       double* app, double* aqq, double* apq) noexcept;
void batched_gram_pair_ref(const double* x, const double* y, std::size_t m, std::size_t w,
                           double* app, double* aqq, double* apq) noexcept;

/// Masked fused rotate + norms across lanes. Lanes with rotate[b] == 0 keep
/// x and y bitwise untouched (their app/aqq outputs are unspecified) —
/// crucially they are *not* passed through an identity rotation, which could
/// flip the sign of -0.0 entries. Rotated lanes match
/// rotate_and_norms (swap_lanes[b] == 0) or rotate_and_norms_swapped
/// (swap_lanes[b] != 0) on the lane's data, including the norm summation
/// order.
void batched_rotate_and_norms(double* x, double* y, std::size_t m, std::size_t w,
                              const double* c, const double* s,
                              const std::uint8_t* rotate, const std::uint8_t* swap_lanes,
                              double* app, double* aqq) noexcept;
void batched_rotate_and_norms_ref(double* x, double* y, std::size_t m, std::size_t w,
                                  const double* c, const double* s,
                                  const std::uint8_t* rotate, const std::uint8_t* swap_lanes,
                                  double* app, double* aqq) noexcept;

/// Masked plain rotation across lanes (V columns, and the uncached Jacobi
/// path): same masking rules as batched_rotate_and_norms, no norm outputs.
void batched_apply_rotation(double* x, double* y, std::size_t m, std::size_t w,
                            const double* c, const double* s,
                            const std::uint8_t* rotate,
                            const std::uint8_t* swap_lanes) noexcept;
void batched_apply_rotation_ref(double* x, double* y, std::size_t m, std::size_t w,
                                const double* c, const double* s,
                                const std::uint8_t* rotate,
                                const std::uint8_t* swap_lanes) noexcept;

}  // namespace treesvd
