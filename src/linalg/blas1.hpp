#pragma once
// BLAS-1 style kernels on column views.
//
// These are the only dense kernels the one-sided Jacobi method needs: the
// Gram elements of a column pair (dot products and squared norms) and the
// plane-rotation updates. The implementations use restrict-qualified raw
// pointers and multiple independent accumulators so the compiler can keep
// several vector lanes of partial sums in flight (the single-accumulator
// form serialises on the add latency chain and halves SIMD throughput).

#include <cstddef>
#include <span>

namespace treesvd {

/// x . y
double dot(std::span<const double> x, std::span<const double> y) noexcept;

/// x . x, accumulated unscaled (consistent with gram_pair; use nrm2 when the
/// entries may overflow or underflow under squaring).
double sumsq(std::span<const double> x) noexcept;

/// dlassq-style representation of a sum of squares: the pair (scale, ssq)
/// stands for scale^2 * ssq with scale = max |x_i| visited so far, so the
/// accumulation itself can neither overflow nor underflow — only the final
/// conversion back to a plain double can, and then only when the true value
/// is outside the representable range.
struct ScaledSumsq {
  double scale = 0.0;
  double ssq = 1.0;

  /// scale^2 * ssq as a plain double (Inf when the true value overflows,
  /// 0 when x was all zeros).
  double value() const noexcept;
  /// scale * sqrt(ssq): the 2-norm, representable whenever the norm itself
  /// is (i.e. for every finite input).
  double norm() const noexcept;
};

/// Scaled accumulation of x . x (LAPACK dlassq). Use where sumsq would
/// overflow/underflow: the scaled form loses nothing at any input scale.
ScaledSumsq sumsq_scaled(std::span<const double> x) noexcept;

/// x . y with exact power-of-two prescaling of both operands (each by its
/// own largest-entry exponent), so the accumulation stays in range; the
/// combined exponent is reapplied at the end. Costs ~3x dot; used as the
/// retry path when the fast unscaled dot returns a non-finite value.
double dot_scaled(std::span<const double> x, std::span<const double> y) noexcept;

/// Fast path + fallback: sumsq(x), retried as sumsq_scaled when the unscaled
/// accumulation produced a non-finite value (which for non-negative terms
/// means the squares overflowed mid-sum).
double sumsq_robust(std::span<const double> x) noexcept;

/// ||x||_2, computed with scaling so that it neither overflows nor underflows.
double nrm2(std::span<const double> x) noexcept;

/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y) noexcept;

/// x *= alpha
void scal(double alpha, std::span<double> x) noexcept;

/// y[i] = x[i] / denom. Per-element division (not a reciprocal multiply), so
/// the U-formation loops that moved onto it stay bitwise-identical to their
/// historical per-element form.
void copy_div(std::span<const double> x, double denom, std::span<double> y) noexcept;

/// Swaps the contents of two equal-length vectors.
void swap(std::span<double> x, std::span<double> y) noexcept;

/// The three Gram elements of a column pair, in one fused pass:
/// app = x.x, aqq = y.y, apq = x.y.
struct GramPair {
  double app;
  double aqq;
  double apq;
};
GramPair gram_pair(std::span<const double> x, std::span<const double> y) noexcept;

}  // namespace treesvd
