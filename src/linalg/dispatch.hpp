#pragma once
// Runtime CPU-dispatch layer: the single ISA-selection mechanism of the tree.
//
// Every hot kernel — the single-problem pair kernels (dot, sumsq, axpy,
// gram_pair, the fused rotate_and_norms pair, the GEMM micro-kernel) and the
// batched SoA lane-block kernels (blas1.hpp) — exists in one copy per
// instruction-set tier, compiled from the same width-templated sources in
// per-ISA translation units (kernels_baseline.cpp / kernels_avx2.cpp /
// kernels_avx512.cpp, each with -ffp-contract=off). This header exposes the
// tier probe, the override plumbing, and the per-tier function-pointer
// tables the public kernel entry points route through.
//
// Bitwise contract: every kernel produces bit-identical results on every
// tier. The vector copies are elementwise IEEE operations over the exact
// accumulation chains of the scalar `_ref` twins (no FMA contraction, no
// reassociation), so tier selection is purely a throughput decision —
// results, convergence behaviour and determinism digests never depend on it.
//
// Tier resolution order: set_isa_override() (strongest; used by the
// JacobiOptions/BlockJacobiOptions/BatchedSvdOptions `force_isa` knob and by
// benches) ▷ the TREESVD_ISA environment variable ("baseline", "avx2",
// "avx512f") ▷ cpuid detection. A requested tier the host cannot run is
// clamped down to the widest supported one — forcing "avx512f" on an
// AVX2-only machine silently runs AVX2 (graceful fallback; the resolved
// tier, not the requested one, is what KernelStats reports).
//
// The override is process-wide (one relaxed atomic). Concurrent solves
// forcing different tiers would race on it, but since results are
// tier-invariant the race is benign — the only observable effect is which
// equally-correct copy runs.

#include <cstddef>
#include <cstdint>

namespace treesvd {

/// Instruction-set tiers, ordered: support is monotone (a host that runs
/// tier t runs every tier below it), so clamping a request means taking the
/// min with the detected tier.
enum class IsaTier : int {
  kBaseline = 0,  ///< default-flags build (SSE2 on x86-64, scalar elsewhere)
  kAvx2 = 1,      ///< 256-bit vectors, 16 registers
  kAvx512 = 2,    ///< 512-bit vectors, 32 registers (AVX-512F)
};

/// `force_isa` knob value meaning "no preference — env, then cpuid".
inline constexpr int kIsaAuto = -1;

/// One tier's kernel set. All pointers are non-null on every tier (tiers a
/// build cannot vectorize fall back to the scalar `_ref` twins, which are
/// bitwise identical by contract).
struct KernelTable {
  const char* name;  ///< "baseline", "avx2", "avx512f"
  IsaTier tier;

  // Single-problem kernels (contiguous columns).
  double (*dot)(const double* x, const double* y, std::size_t n);
  double (*sumsq)(const double* x, std::size_t n);
  void (*axpy)(double alpha, const double* x, double* y, std::size_t n);
  void (*gram_pair)(const double* x, const double* y, std::size_t n, double* app, double* aqq,
                    double* apq);
  void (*rotate_and_norms)(double* x, double* y, std::size_t n, double c, double s, double* xx,
                           double* yy);
  void (*rotate_and_norms_swapped)(double* x, double* y, std::size_t n, double c, double s,
                                   double* xx, double* yy);
  /// GEMM register micro-kernel: acc (mr x nr, row-major) += Ap · Bp over
  /// depth kc, with the packed-panel layout of linalg/gemm.cpp (mr = nr = 4).
  void (*gemm_micro)(const double* ap, const double* bp, std::size_t kc, double* acc);

  // Batched SoA lane-block kernels (blas1.hpp semantics). `w` must be a
  // positive multiple of 4; the per-tier wrappers pick the lane group width.
  void (*batched_dot)(const double* x, const double* y, std::size_t m, std::size_t w,
                      double* out);
  void (*batched_sumsq)(const double* x, std::size_t m, std::size_t w, double* out);
  void (*batched_gram_pair)(const double* x, const double* y, std::size_t m, std::size_t w,
                            double* app, double* aqq, double* apq);
  void (*batched_rotate_and_norms)(double* x, double* y, std::size_t m, std::size_t w,
                                   const double* c, const double* s, const std::uint8_t* rotate,
                                   const std::uint8_t* swap_lanes, double* app, double* aqq);
  void (*batched_apply_rotation)(double* x, double* y, std::size_t m, std::size_t w,
                                 const double* c, const double* s, const std::uint8_t* rotate,
                                 const std::uint8_t* swap_lanes);
  void (*batched_compute_rotation)(const double* app, const double* aqq, const double* apq,
                                   std::size_t w, double tol, double* c, double* s,
                                   std::uint8_t* identity);
  void (*batched_drift_gate)(const double* app, const double* aqq, const double* apq,
                             std::size_t w, double tol, double guard, std::uint8_t* near_mask);
};

/// Widest tier the host CPU supports, probed once per process.
IsaTier detected_isa() noexcept;

/// Whether `tier` can run on this host (monotone: tier <= detected_isa()).
bool isa_supported(IsaTier tier) noexcept;

/// The tier the kernels actually run at: override ▷ TREESVD_ISA ▷ detected,
/// clamped to the host's capability.
IsaTier resolved_isa() noexcept;

/// Display name of a tier ("baseline" / "avx2" / "avx512f").
const char* isa_name(IsaTier tier) noexcept;

/// Parses a tier name as accepted in TREESVD_ISA ("baseline", "avx2",
/// "avx512f"; "avx512" is an accepted alias). Returns false (and leaves
/// *out untouched) for anything else.
bool parse_isa_name(const char* name, IsaTier* out) noexcept;

/// Kernel table of the resolved tier. The reference stays valid for the
/// process lifetime; callers on a hot path should resolve once per solve,
/// not per kernel call.
const KernelTable& kernels() noexcept;

/// Kernel table of a specific tier, clamped to the host's capability (the
/// graceful-fallback rule: an unsupported request returns the widest
/// supported table, whose `tier` field tells the caller what it got).
const KernelTable& kernels_for(IsaTier tier) noexcept;

/// Sets the process-wide tier override: 0/1/2 force a tier (clamped to the
/// host), kIsaAuto clears the override and re-derives from TREESVD_ISA +
/// cpuid (re-reading the environment at that point — the test seam for the
/// env plumbing).
void set_isa_override(int tier) noexcept;

/// RAII tier override: forces `tier` for its lifetime (kIsaAuto is a no-op),
/// restoring the previous resolution on destruction. The drivers wrap each
/// solve in one of these when options.force_isa is set.
class ScopedIsaOverride {
 public:
  explicit ScopedIsaOverride(int tier) noexcept;
  ~ScopedIsaOverride();

  ScopedIsaOverride(const ScopedIsaOverride&) = delete;
  ScopedIsaOverride& operator=(const ScopedIsaOverride&) = delete;

 private:
  int prev_;
  bool active_;
};

/// Scalar reference twin of the GEMM micro-kernel (same packed-panel layout
/// as KernelTable::gemm_micro): the bitwise cross-check target. The other
/// dispatched kernels' twins live next to their families (dot_ref /
/// sumsq_ref / axpy_ref / gram_pair_ref in blas1.hpp,
/// rotate_and_norms_ref[_swapped] in rotation.hpp, batched_*_ref in
/// blas1.hpp).
void gemm_micro_ref(const double* ap, const double* bp, std::size_t kc, double* acc) noexcept;

}  // namespace treesvd
