#pragma once
// Householder QR factorisation, used to precondition tall SVD problems:
// A = Q R with Q implicit (stored as Householder reflectors); the SVD of the
// small n x n factor R is then computed by the Jacobi engine and U = Q U_R.

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace treesvd {

/// Compact QR factorisation of an m x n matrix, m >= n.
class HouseholderQr {
 public:
  explicit HouseholderQr(const Matrix& a);

  std::size_t rows() const noexcept { return qr_.rows(); }
  std::size_t cols() const noexcept { return qr_.cols(); }

  /// The upper-triangular factor R (n x n).
  Matrix r() const;

  /// Applies Q to an m x k matrix: B <- Q * B (expands k-column coordinates
  /// in the Q basis when B's top n rows carry the coefficients and the rest
  /// are zero). B must have rows() rows.
  void apply_q(Matrix& b) const;

  /// Applies Q^T to an m x k matrix: B <- Q^T * B.
  void apply_qt(Matrix& b) const;

  /// Explicit thin Q (m x n), mainly for tests.
  Matrix thin_q() const;

 private:
  Matrix qr_;                 ///< reflectors below the diagonal, R on/above
  std::vector<double> beta_;  ///< reflector scalars
};

}  // namespace treesvd
