#pragma once
// Internal: per-ISA copies of the vectorized cross-problem kernels
// (blas1_batched_impl.inc) plus the runtime dispatch tier. The public
// batched_* entry points in blas1.cpp select the widest copy the CPU
// supports; nothing outside src/linalg should include this header.
//
// The AVX TUs are compiled with -ffp-contract=off: with FMA available the
// compiler would otherwise fuse the rotate kernel's c*x - s*y into one
// rounding, silently breaking the bitwise-sequential-equivalence contract
// the batched engine is built on (DESIGN.md section 11's strict-IEEE rule).

#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define TREESVD_BATCH_ISA_X86 1
#endif

namespace treesvd {

/// 0 = baseline (whatever the default flags vectorize to), 1 = AVX2,
/// 2 = AVX-512F. Detected once per process.
int batched_isa_tier() noexcept;

void batched_dot_avx2(const double* x, const double* y, std::size_t m, std::size_t w,
                      double* out) noexcept;
void batched_sumsq_avx2(const double* x, std::size_t m, std::size_t w, double* out) noexcept;
void batched_gram_pair_avx2(const double* x, const double* y, std::size_t m, std::size_t w,
                            double* app, double* aqq, double* apq) noexcept;
void batched_rotate_and_norms_avx2(double* x, double* y, std::size_t m, std::size_t w,
                                   const double* c, const double* s, const std::uint8_t* rotate,
                                   const std::uint8_t* swap_lanes, double* app,
                                   double* aqq) noexcept;
void batched_apply_rotation_avx2(double* x, double* y, std::size_t m, std::size_t w,
                                 const double* c, const double* s, const std::uint8_t* rotate,
                                 const std::uint8_t* swap_lanes) noexcept;
void batched_compute_rotation_avx2(const double* app, const double* aqq, const double* apq,
                                   std::size_t w, double tol, double* c, double* s,
                                   std::uint8_t* identity) noexcept;
void batched_drift_gate_avx2(const double* app, const double* aqq, const double* apq,
                             std::size_t w, double tol, double guard,
                             std::uint8_t* near_mask) noexcept;

void batched_dot_avx512(const double* x, const double* y, std::size_t m, std::size_t w,
                        double* out) noexcept;
void batched_sumsq_avx512(const double* x, std::size_t m, std::size_t w, double* out) noexcept;
void batched_gram_pair_avx512(const double* x, const double* y, std::size_t m, std::size_t w,
                              double* app, double* aqq, double* apq) noexcept;
void batched_rotate_and_norms_avx512(double* x, double* y, std::size_t m, std::size_t w,
                                     const double* c, const double* s,
                                     const std::uint8_t* rotate,
                                     const std::uint8_t* swap_lanes, double* app,
                                     double* aqq) noexcept;
void batched_apply_rotation_avx512(double* x, double* y, std::size_t m, std::size_t w,
                                   const double* c, const double* s, const std::uint8_t* rotate,
                                   const std::uint8_t* swap_lanes) noexcept;
void batched_compute_rotation_avx512(const double* app, const double* aqq, const double* apq,
                                     std::size_t w, double tol, double* c, double* s,
                                     std::uint8_t* identity) noexcept;
void batched_drift_gate_avx512(const double* app, const double* aqq, const double* apq,
                               std::size_t w, double tol, double guard,
                               std::uint8_t* near_mask) noexcept;

}  // namespace treesvd
