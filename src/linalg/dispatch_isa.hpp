#pragma once
// Internal: per-ISA entry points of the dispatched kernels, one namespace
// per tier. Each kernels_<tier>.cpp TU compiles the same width-templated
// bodies (blas1_batched_impl.inc + kernels_single_impl.inc +
// rotation_batched_impl.inc) under that tier's flags and exports them here;
// dispatch.cpp assembles the KernelTables from these symbols. Nothing
// outside src/linalg should include this header — the public surface is
// linalg/dispatch.hpp.
//
// The AVX TUs are compiled with -ffp-contract=off: with FMA available the
// compiler would otherwise fuse the rotate kernel's c*x - s*y into one
// rounding, silently breaking the bitwise tier-invariance contract
// (DESIGN.md sections 11 and 14).

#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define TREESVD_DISPATCH_X86 1
#endif

namespace treesvd {

// Declares one tier's full kernel set; every tier exports the same names.
#define TREESVD_ISA_TIER_DECLS()                                                               \
  double dot(const double* x, const double* y, std::size_t n) noexcept;                        \
  double sumsq(const double* x, std::size_t n) noexcept;                                       \
  void axpy(double alpha, const double* x, double* y, std::size_t n) noexcept;                 \
  void gram_pair(const double* x, const double* y, std::size_t n, double* app, double* aqq,    \
                 double* apq) noexcept;                                                        \
  void rotate_and_norms(double* x, double* y, std::size_t n, double c, double s, double* xx,   \
                        double* yy) noexcept;                                                  \
  void rotate_and_norms_swapped(double* x, double* y, std::size_t n, double c, double s,       \
                                double* xx, double* yy) noexcept;                              \
  void gemm_micro(const double* ap, const double* bp, std::size_t kc, double* acc) noexcept;   \
  void batched_dot(const double* x, const double* y, std::size_t m, std::size_t w,             \
                   double* out) noexcept;                                                      \
  void batched_sumsq(const double* x, std::size_t m, std::size_t w, double* out) noexcept;     \
  void batched_gram_pair(const double* x, const double* y, std::size_t m, std::size_t w,       \
                         double* app, double* aqq, double* apq) noexcept;                      \
  void batched_rotate_and_norms(double* x, double* y, std::size_t m, std::size_t w,            \
                                const double* c, const double* s, const std::uint8_t* rotate,  \
                                const std::uint8_t* swap_lanes, double* app,                   \
                                double* aqq) noexcept;                                         \
  void batched_apply_rotation(double* x, double* y, std::size_t m, std::size_t w,              \
                              const double* c, const double* s, const std::uint8_t* rotate,    \
                              const std::uint8_t* swap_lanes) noexcept;                        \
  void batched_compute_rotation(const double* app, const double* aqq, const double* apq,       \
                                std::size_t w, double tol, double* c, double* s,               \
                                std::uint8_t* identity) noexcept;                              \
  void batched_drift_gate(const double* app, const double* aqq, const double* apq,             \
                          std::size_t w, double tol, double guard,                             \
                          std::uint8_t* near_mask) noexcept;

namespace isa_baseline {
TREESVD_ISA_TIER_DECLS()
}  // namespace isa_baseline

#ifdef TREESVD_DISPATCH_X86
namespace isa_avx2 {
TREESVD_ISA_TIER_DECLS()
}  // namespace isa_avx2

namespace isa_avx512 {
TREESVD_ISA_TIER_DECLS()
}  // namespace isa_avx512
#endif  // TREESVD_DISPATCH_X86

#undef TREESVD_ISA_TIER_DECLS

}  // namespace treesvd
