#pragma once
// Independent singular-value oracle.
//
// Tests cross-check the Jacobi SVD against a different algorithm family:
// Householder tridiagonalization of A^T A followed by the implicit-shift QL
// iteration. Squaring A halves the attainable accuracy for tiny singular
// values, which is fine for an oracle used with moderate condition numbers.

#include <vector>

#include "linalg/matrix.hpp"

namespace treesvd {

/// Symmetric tridiagonal form of a symmetric matrix (eigenvalues only; no
/// accumulation of the orthogonal factor).
struct Tridiagonal {
  std::vector<double> diag;  ///< d[0..n-1]
  std::vector<double> sub;   ///< e[1..n-1]; e[0] unused (kept 0)
};

/// Householder reduction of a symmetric matrix to tridiagonal form.
Tridiagonal tridiagonalize(const Matrix& sym);

/// Eigenvalues of a symmetric tridiagonal matrix by implicit-shift QL,
/// returned in ascending order. Throws std::runtime_error if an eigenvalue
/// fails to converge in 50 iterations (does not happen for real inputs).
std::vector<double> tql_eigenvalues(Tridiagonal t);

/// Eigenvalues of a symmetric matrix, ascending.
std::vector<double> symmetric_eigenvalues(const Matrix& sym);

/// Singular values of A via eigenvalues of A^T A, descending, negatives
/// clamped to zero.
std::vector<double> singular_values_oracle(const Matrix& a);

}  // namespace treesvd
