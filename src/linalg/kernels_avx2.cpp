// AVX2-tier copies of every dispatched kernel. This TU is compiled with
// -mavx2 -ffp-contract=off (src/linalg/CMakeLists.txt) on x86-64, so the
// 32-byte vectors of the shared .inc bodies lower to single YMM operations;
// the dispatcher (linalg/dispatch.hpp) routes here only when the CPU agrees.
// -mavx2 does not enable FMA, and contraction is forced off regardless, so
// the arithmetic stays bit-identical to the scalar `_ref` twins.

#include "linalg/dispatch_isa.hpp"

#include "linalg/blas1.hpp"
#include "linalg/rotation.hpp"

#if defined(__GNUC__) && !defined(__clang__)
// See kernels_baseline.cpp: TU-wide because GCC re-emits -Wpsabi at
// end-of-file template instantiation.
#pragma GCC diagnostic ignored "-Wpsabi"
#endif

namespace treesvd {

#ifdef TREESVD_DISPATCH_X86

namespace {
#include "linalg/blas1_batched_impl.inc"
#include "linalg/kernels_single_impl.inc"

// vsqrtpd is IEEE correctly rounded: lane b equals std::sqrt(lane b)
// bitwise. Spelled as asm because generic vector extensions have no sqrt
// and GCC 12's _mm*_sqrt_pd intrinsics drag in cast/uninitialized warnings.
inline VecOf<4>::vd vsqrt(VecOf<4>::vd v) noexcept {
  VecOf<4>::vd r;
  asm("vsqrtpd %1, %0" : "=x"(r) : "x"(v));
  return r;
}

#include "linalg/rotation_batched_impl.inc"
}  // namespace

namespace isa_avx2 {

double dot(const double* x, const double* y, std::size_t n) noexcept {
  return single_dot_k(x, y, n);
}

double sumsq(const double* x, std::size_t n) noexcept { return single_sumsq_k(x, n); }

void axpy(double alpha, const double* x, double* y, std::size_t n) noexcept {
  single_axpy_k(alpha, x, y, n);
}

void gram_pair(const double* x, const double* y, std::size_t n, double* app, double* aqq,
               double* apq) noexcept {
  single_gram_pair_k(x, y, n, app, aqq, apq);
}

void rotate_and_norms(double* x, double* y, std::size_t n, double c, double s, double* xx,
                      double* yy) noexcept {
  single_rotate_norms_k<false>(x, y, n, c, s, xx, yy);
}

void rotate_and_norms_swapped(double* x, double* y, std::size_t n, double c, double s,
                              double* xx, double* yy) noexcept {
  single_rotate_norms_k<true>(x, y, n, c, s, xx, yy);
}

void gemm_micro(const double* ap, const double* bp, std::size_t kc, double* acc) noexcept {
  single_gemm_micro_k(ap, bp, kc, acc);
}

void batched_dot(const double* x, const double* y, std::size_t m, std::size_t w,
                 double* out) noexcept {
  batched_dot_g<4>(x, y, m, w, out);
}

void batched_sumsq(const double* x, std::size_t m, std::size_t w, double* out) noexcept {
  batched_sumsq_g<4>(x, m, w, out);
}

void batched_gram_pair(const double* x, const double* y, std::size_t m, std::size_t w,
                       double* app, double* aqq, double* apq) noexcept {
  batched_gram_pair_g<4>(x, y, m, w, app, aqq, apq);
}

void batched_rotate_and_norms(double* x, double* y, std::size_t m, std::size_t w,
                              const double* c, const double* s, const std::uint8_t* rotate,
                              const std::uint8_t* swap_lanes, double* app,
                              double* aqq) noexcept {
  batched_rotate_and_norms_g<4>(x, y, m, w, c, s, rotate, swap_lanes, app, aqq);
}

void batched_apply_rotation(double* x, double* y, std::size_t m, std::size_t w,
                            const double* c, const double* s, const std::uint8_t* rotate,
                            const std::uint8_t* swap_lanes) noexcept {
  batched_apply_rotation_g<4>(x, y, m, w, c, s, rotate, swap_lanes);
}

void batched_compute_rotation(const double* app, const double* aqq, const double* apq,
                              std::size_t w, double tol, double* c, double* s,
                              std::uint8_t* identity) noexcept {
  batched_rotation_decide_g<4>(app, aqq, apq, w, tol, c, s, identity);
}

void batched_drift_gate(const double* app, const double* aqq, const double* apq, std::size_t w,
                        double tol, double guard, std::uint8_t* near_mask) noexcept {
  batched_drift_gate_g<4>(app, aqq, apq, w, tol, guard, near_mask);
}

}  // namespace isa_avx2

#endif  // TREESVD_DISPATCH_X86 — off x86 the tier is never exposed and the
        // namespace is simply not compiled (dispatch.cpp only references it
        // under the same guard).

}  // namespace treesvd
