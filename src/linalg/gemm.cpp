#include "linalg/gemm.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstring>
#include <functional>
#include <mutex>
#include <utility>

#include "analysis/hooks.hpp"
#include "linalg/blas1.hpp"
#include "linalg/dispatch.hpp"
#include "util/require.hpp"
#include "util/thread_pool.hpp"

namespace treesvd {
namespace {

constexpr std::size_t kMr = GemmTiling::mr;
constexpr std::size_t kNr = GemmTiling::nr;

/// Products below this many flops (2mnk) run the plain jki loop: packing
/// buffers and tile bookkeeping cost more than the whole product.
constexpr std::size_t kNaiveFlops = 2 * 4096;

/// Work below this many flops stays on the calling thread even when a pool
/// is supplied — a fork-join costs more than the product.
constexpr std::size_t kParallelFlops = std::size_t{1} << 23;

/// The shared pool is single-caller (ThreadPool::parallel_for keeps its
/// batch state in member slots), so entry points race for this gate; losers
/// route to the thread's fallback pool, or run serially, instead of
/// corrupting the batch.
std::mutex& pool_gate() {
  static std::mutex gate;
  return gate;
}

/// Per-thread fallback registered by ScopedGemmFallbackPool: where a
/// gate-contended dispatch goes instead of degrading to serial.
thread_local ThreadPool* tl_gemm_fallback = nullptr;

std::atomic<std::size_t> stat_pooled{0};
std::atomic<std::size_t> stat_fallback{0};
std::atomic<std::size_t> stat_serial{0};
std::atomic<std::size_t> stat_inline{0};

/// Runs task(i) for i in [0, count) in chunks of `grain` consecutive
/// indices. Route order: caller-owned pool (its owner vouches for
/// exclusivity — no gate), shared pool when the gate is free, the thread's
/// registered fallback pool when it is not, serial last. The serial routes
/// walk the same grain-chunked order the pools hand out, so the configured
/// grain survives gate contention — which route wins never changes the work
/// decomposition. Tasks write disjoint output, so every route produces
/// identical results.
void dispatch(std::size_t count, std::size_t flops, ThreadPool* pool, std::size_t grain,
              const std::function<void(std::size_t)>& task) {
  const std::size_t g = std::max<std::size_t>(grain, 1);
  const auto run_serial = [&] {
    for (std::size_t c0 = 0; c0 < count; c0 += g) {
      const std::size_t end = std::min(count, c0 + g);
      for (std::size_t i = c0; i < end; ++i) task(i);
    }
  };
  if (pool == nullptr || count <= 1 || flops < kParallelFlops) {
    stat_inline.fetch_add(1, std::memory_order_relaxed);
    run_serial();
    return;
  }
  if (pool != gemm_pool()) {
    stat_pooled.fetch_add(1, std::memory_order_relaxed);
    pool->parallel_for(count, task, g);
    return;
  }
  if (pool_gate().try_lock()) {
    const std::unique_lock<std::mutex> gate(pool_gate(), std::adopt_lock);
    stat_pooled.fetch_add(1, std::memory_order_relaxed);
    pool->parallel_for(count, task, g);
    return;
  }
  if (tl_gemm_fallback != nullptr) {
    // Contended shared pool, but this thread carries its own: a concurrent
    // batch shard keeps its BLAS-3 parallel instead of single-threading.
    stat_fallback.fetch_add(1, std::memory_order_relaxed);
    tl_gemm_fallback->parallel_for(count, task, g);
    return;
  }
  stat_serial.fetch_add(1, std::memory_order_relaxed);
  run_serial();
}

/// jki loop for tiny products (streams down columns of a and c).
void gemm_naive(Matrix& c, const Matrix& a, const Matrix& b) {
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double bkj = b(k, j);
      if (bkj == 0.0) continue;
      const auto ak = a.col(k);
      const auto cj = c.col(j);
      for (std::size_t i = 0; i < a.rows(); ++i) cj[i] += ak[i] * bkj;
    }
  }
}

/// Packs the mc_eff x kc_eff block of `a` at (i0, k0) into row micro-panels:
/// panel p holds rows [i0 + p*mr, i0 + (p+1)*mr), stored as mr consecutive
/// values per k so the micro-kernel loads are contiguous. Edge rows are
/// zero-padded (they contribute nothing and are never written back).
void pack_a(const Matrix& a, std::size_t i0, std::size_t mc_eff, std::size_t k0,
            std::size_t kc_eff, double* __restrict dst) {
  const std::size_t panels = (mc_eff + kMr - 1) / kMr;
  for (std::size_t p = 0; p < panels; ++p) {
    const std::size_t r0 = i0 + p * kMr;
    const std::size_t rows = std::min(kMr, i0 + mc_eff - r0);
    double* __restrict out = dst + p * kc_eff * kMr;
    for (std::size_t k = 0; k < kc_eff; ++k) {
      const double* __restrict src = a.col(k0 + k).data() + r0;
      std::size_t r = 0;
      for (; r < rows; ++r) out[k * kMr + r] = src[r];
      for (; r < kMr; ++r) out[k * kMr + r] = 0.0;
    }
  }
}

/// Packs the kc_eff x nc_eff block of `b` at (k0, j0) into column
/// micro-panels of nr columns, nr consecutive values per k, zero-padded.
void pack_b(const Matrix& b, std::size_t k0, std::size_t kc_eff, std::size_t j0,
            std::size_t nc_eff, double* __restrict dst) {
  const std::size_t panels = (nc_eff + kNr - 1) / kNr;
  for (std::size_t p = 0; p < panels; ++p) {
    const std::size_t c0 = j0 + p * kNr;
    const std::size_t ncols = std::min(kNr, j0 + nc_eff - c0);
    double* __restrict out = dst + p * kc_eff * kNr;
    for (std::size_t k = 0; k < kc_eff; ++k) {
      for (std::size_t c = 0; c < ncols; ++c) out[k * kNr + c] = b(k0 + k, c0 + c);
      for (std::size_t c = ncols; c < kNr; ++c) out[k * kNr + c] = 0.0;
    }
  }
}

}  // namespace

ThreadPool* gemm_pool() {
  static ThreadPool pool;
  return &pool;
}

GemmDispatchStats gemm_dispatch_stats() noexcept {
  GemmDispatchStats s;
  s.pooled = stat_pooled.load(std::memory_order_relaxed);
  s.fallback = stat_fallback.load(std::memory_order_relaxed);
  s.serial = stat_serial.load(std::memory_order_relaxed);
  s.inline_small = stat_inline.load(std::memory_order_relaxed);
  return s;
}

void gemm_dispatch_stats_reset() noexcept {
  stat_pooled.store(0, std::memory_order_relaxed);
  stat_fallback.store(0, std::memory_order_relaxed);
  stat_serial.store(0, std::memory_order_relaxed);
  stat_inline.store(0, std::memory_order_relaxed);
}

ScopedGemmFallbackPool::ScopedGemmFallbackPool(ThreadPool& pool) noexcept
    : prev_(tl_gemm_fallback) {
  tl_gemm_fallback = &pool;
}

ScopedGemmFallbackPool::~ScopedGemmFallbackPool() { tl_gemm_fallback = prev_; }

namespace detail {
ScopedGemmGateHold::ScopedGemmGateHold() { pool_gate().lock(); }
ScopedGemmGateHold::~ScopedGemmGateHold() { pool_gate().unlock(); }
}  // namespace detail

void gemm_into(Matrix& c, const Matrix& a, const Matrix& b, ThreadPool* pool,
               const GemmTiling& tiling) {
  TREESVD_REQUIRE(a.cols() == b.rows(), "matrix product dimension mismatch");
  TREESVD_REQUIRE(c.rows() == a.rows() && c.cols() == b.cols(),
                  "gemm_into output shape mismatch");
  const std::size_t m = a.rows();
  const std::size_t n = b.cols();
  const std::size_t kk = a.cols();
  std::fill(c.data().begin(), c.data().end(), 0.0);
  if (m == 0 || n == 0 || kk == 0) return;

  const std::size_t flops = 2 * m * n * kk;
  if (flops < kNaiveFlops) {
    gemm_naive(c, a, b);
    return;
  }

  const std::size_t mc = std::max<std::size_t>(tiling.mc, kMr);
  const std::size_t nc = std::max<std::size_t>(tiling.nc, kNr);
  const std::size_t kc = std::max<std::size_t>(tiling.kc, 1);
  const std::size_t mtiles = (m + mc - 1) / mc;
  const std::size_t ntiles = (n + nc - 1) / nc;

  // The mr x nr register micro-kernel resolves through the CPU-dispatch
  // layer once per product (one relaxed load), not once per tile: every
  // worker of this product uses the same table. Each of the 16 accumulator
  // elements advances once per depth step in k order, matching
  // gemm_micro_ref bitwise on every tier.
  const auto micro = kernels().gemm_micro;

  // One task per (row tile, column tile) of C; each task owns a disjoint
  // C tile, loops the depth blocks, and packs into its own local buffers
  // (the redundant packing is amortised over mc*nc*kc flops per block).
  const auto tile_task = [&](std::size_t t) {
    TREESVD_HB_WRITE(&c, t, "gemm C tile");
    const std::size_t ti = t % mtiles;
    const std::size_t tj = t / mtiles;
    const std::size_t i0 = ti * mc;
    const std::size_t j0 = tj * nc;
    const std::size_t mc_eff = std::min(mc, m - i0);
    const std::size_t nc_eff = std::min(nc, n - j0);
    const std::size_t apanels = (mc_eff + kMr - 1) / kMr;
    const std::size_t bpanels = (nc_eff + kNr - 1) / kNr;
    std::vector<double> apack(apanels * kMr * kc);
    std::vector<double> bpack(bpanels * kNr * kc);
    std::array<double, kMr * kNr> acc;
    for (std::size_t k0 = 0; k0 < kk; k0 += kc) {
      const std::size_t kc_eff = std::min(kc, kk - k0);
      pack_a(a, i0, mc_eff, k0, kc_eff, apack.data());
      pack_b(b, k0, kc_eff, j0, nc_eff, bpack.data());
      for (std::size_t jp = 0; jp < bpanels; ++jp) {
        const std::size_t jr = jp * kNr;
        const std::size_t ncols = std::min(kNr, nc_eff - jr);
        for (std::size_t ip = 0; ip < apanels; ++ip) {
          const std::size_t ir = ip * kMr;
          const std::size_t nrows = std::min(kMr, mc_eff - ir);
          acc.fill(0.0);
          micro(apack.data() + ip * kc_eff * kMr, bpack.data() + jp * kc_eff * kNr, kc_eff,
                acc.data());
          for (std::size_t cc = 0; cc < ncols; ++cc) {
            double* __restrict cj = c.col(j0 + jr + cc).data() + i0 + ir;
            for (std::size_t r = 0; r < nrows; ++r) cj[r] += acc[r * kNr + cc];
          }
        }
      }
    }
  };
  dispatch(mtiles * ntiles, flops, pool, tiling.grain, tile_task);
}

Matrix gemm(const Matrix& a, const Matrix& b, ThreadPool* pool, const GemmTiling& tiling) {
  Matrix c(a.rows(), b.cols());
  gemm_into(c, a, b, pool, tiling);
  return c;
}

void syrk_t_into(Matrix& g, const Matrix& a, ThreadPool* pool) {
  const std::size_t n = a.cols();
  TREESVD_REQUIRE(g.rows() == n && g.cols() == n, "syrk_t output must be n x n");
  const std::size_t m = a.rows();
  constexpr std::size_t kTile = 8;
  const std::size_t tiles = (n + kTile - 1) / kTile;
  // Upper-triangle tile pairs (ti <= tj), enumerated column-block-major so
  // the task index maps deterministically.
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(tiles * (tiles + 1) / 2);
  for (std::size_t tj = 0; tj < tiles; ++tj)
    for (std::size_t ti = 0; ti <= tj; ++ti) pairs.emplace_back(ti, tj);

  const auto task = [&](std::size_t t) {
    const auto [ti, tj] = pairs[t];
    const std::size_t iend = std::min(n, (ti + 1) * kTile);
    const std::size_t jend = std::min(n, (tj + 1) * kTile);
    for (std::size_t j = tj * kTile; j < jend; ++j) {
      const auto cj = a.col(j);
      for (std::size_t i = ti * kTile; i < std::min(iend, j + 1); ++i) {
        const double v = dot(a.col(i), cj);
        g(i, j) = v;
        g(j, i) = v;
      }
    }
  };
  dispatch(pairs.size(), m * n * n, pool, 1, task);
}

Matrix syrk_t(const Matrix& a, ThreadPool* pool) {
  Matrix g(a.cols(), a.cols());
  syrk_t_into(g, a, pool);
  return g;
}

Matrix gram_panel(const Matrix& a, std::span<const int> cols, ThreadPool* pool) {
  const std::size_t kw = cols.size();
  const std::size_t m = a.rows();
  Matrix g(kw, kw);
  if (kw == 0) return g;
  for (int c : cols)
    TREESVD_REQUIRE(c >= 0 && static_cast<std::size_t>(c) < a.cols(),
                    "gram_panel column index out of range");

  // Row-chunked so each chunk's K columns stay cache-resident while all
  // K(K+1)/2 partial dots are accumulated: DRAM traffic O(m*K), not O(m*K^2).
  constexpr std::size_t kChunk = 512;
  const std::size_t chunks = (m + kChunk - 1) / kChunk;
  std::vector<double> partial(chunks * kw * kw, 0.0);

  const auto task = [&](std::size_t t) {
    TREESVD_HB_WRITE(partial.data(), t, "gram_panel partial");
    const std::size_t r0 = t * kChunk;
    const std::size_t len = std::min(kChunk, m - r0);
    double* __restrict part = partial.data() + t * kw * kw;
    for (std::size_t i = 0; i < kw; ++i) {
      const auto ci = a.col(static_cast<std::size_t>(cols[i])).subspan(r0, len);
      for (std::size_t j = i; j < kw; ++j) {
        const auto cj = a.col(static_cast<std::size_t>(cols[j])).subspan(r0, len);
        part[i * kw + j] = dot(ci, cj);
      }
    }
  };
  dispatch(chunks, m * kw * kw, pool, 1, task);

  // Fixed chunk order keeps the reduction bitwise-deterministic.
  for (std::size_t t = 0; t < chunks; ++t) {
    TREESVD_HB_READ(partial.data(), t, "gram_panel partial");
    const double* part = partial.data() + t * kw * kw;
    for (std::size_t i = 0; i < kw; ++i)
      for (std::size_t j = i; j < kw; ++j) g(i, j) += part[i * kw + j];
  }
  for (std::size_t i = 0; i < kw; ++i)
    for (std::size_t j = i + 1; j < kw; ++j) g(j, i) = g(i, j);
  // Overflow repair: a Gram element that left the finite range is recomputed
  // with per-operand exponent scaling. The fast path above is untouched (and
  // bitwise unchanged) whenever every element is finite.
  for (std::size_t i = 0; i < kw; ++i) {
    const auto ci = a.col(static_cast<std::size_t>(cols[i]));
    for (std::size_t j = i; j < kw; ++j) {
      if (std::isfinite(g(i, j))) continue;
      const double v = dot_scaled(ci, a.col(static_cast<std::size_t>(cols[j])));
      g(i, j) = v;
      g(j, i) = v;
    }
  }
  return g;
}

std::vector<double> apply_panel_update(Matrix& a, std::span<const int> cols, const Matrix& w,
                                       ThreadPool* pool) {
  const std::size_t kw = cols.size();
  TREESVD_REQUIRE(w.rows() == kw && w.cols() == kw,
                  "apply_panel_update needs a K x K update for K panel columns");
  const std::size_t m = a.rows();
  std::vector<double*> colp(kw);
  for (std::size_t i = 0; i < kw; ++i) {
    const int c = cols[i];
    TREESVD_REQUIRE(c >= 0 && static_cast<std::size_t>(c) < a.cols(),
                    "apply_panel_update column index out of range");
    colp[i] = a.col(static_cast<std::size_t>(c)).data();
  }

  constexpr std::size_t kChunk = 512;
  const std::size_t chunks = m == 0 ? 0 : (m + kChunk - 1) / kChunk;
  std::vector<double> partial(chunks * kw, 0.0);

  // Each chunk snapshots its rows of the whole panel, multiplies by W from
  // the right, writes back, and reduces the new squared norms in the same
  // L1-resident pass — each panel element is read and written once per
  // apply, with K fused multiply-adds of compute per element.
  const auto task = [&](std::size_t t) {
    TREESVD_HB_WRITE(partial.data(), t, "panel_update partial");
    const std::size_t r0 = t * kChunk;
    const std::size_t len = std::min(kChunk, m - r0);
    std::vector<double> buf(len * kw);
    for (std::size_t k = 0; k < kw; ++k)
      std::memcpy(buf.data() + k * len, colp[k] + r0, len * sizeof(double));
    for (std::size_t j = 0; j < kw; ++j) {
      double* __restrict out = colp[j] + r0;
      std::fill(out, out + len, 0.0);
      for (std::size_t k = 0; k < kw; ++k) {
        const double wkj = w(k, j);
        if (wkj == 0.0) continue;
        axpy(wkj, {buf.data() + k * len, len}, {out, len});
      }
      partial[t * kw + j] = sumsq({out, len});
    }
  };
  dispatch(chunks, m * kw * kw, pool, 1, task);

  std::vector<double> sums(kw, 0.0);
  for (std::size_t t = 0; t < chunks; ++t) {
    TREESVD_HB_READ(partial.data(), t, "panel_update partial");
    for (std::size_t j = 0; j < kw; ++j) sums[j] += partial[t * kw + j];
  }
  // Overflow repair for the fused norms, mirroring gram_panel: recompute a
  // non-finite squared norm with dnrm2-style scaled accumulation (still Inf
  // if the true value genuinely exceeds the double range — honest overflow).
  for (std::size_t j = 0; j < kw; ++j) {
    if (std::isfinite(sums[j])) continue;
    sums[j] = sumsq_scaled({colp[j], m}).value();
  }
  return sums;
}

}  // namespace treesvd
