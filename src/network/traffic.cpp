#include "network/traffic.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace treesvd {

TrafficStep::TrafficStep(const FatTreeTopology& topo) : topo_(&topo) {
  up_.resize(static_cast<std::size_t>(topo.levels()));
  down_.resize(static_cast<std::size_t>(topo.levels()));
  up_msgs_.resize(static_cast<std::size_t>(topo.levels()));
  down_msgs_.resize(static_cast<std::size_t>(topo.levels()));
  for (int l = 1; l <= topo.levels(); ++l) {
    const auto edges = static_cast<std::size_t>(topo.edges_at_level(l));
    up_[static_cast<std::size_t>(l - 1)].assign(edges, 0.0);
    down_[static_cast<std::size_t>(l - 1)].assign(edges, 0.0);
    up_msgs_[static_cast<std::size_t>(l - 1)].assign(edges, 0.0);
    down_msgs_[static_cast<std::size_t>(l - 1)].assign(edges, 0.0);
  }
}

void TrafficStep::add(const Message& message) {
  TREESVD_REQUIRE(message.words >= 0.0, "negative message size");
  const int lca = topo_->route_level(message.from_leaf, message.to_leaf);
  if (lca == 0) return;  // same leaf: no network traffic
  for (int l = 1; l <= lca; ++l) {
    const auto lvl = static_cast<std::size_t>(l - 1);
    const auto ue = static_cast<std::size_t>(topo_->edge_index(message.from_leaf, l));
    const auto de = static_cast<std::size_t>(topo_->edge_index(message.to_leaf, l));
    up_[lvl][ue] += message.words;
    down_[lvl][de] += message.words;
    up_msgs_[lvl][ue] += 1.0;
    down_msgs_[lvl][de] += 1.0;
  }
  max_level_ = std::max(max_level_, lca);
  ++messages_;
  total_words_ += message.words;
}

StepTraffic TrafficStep::finish(double alpha) const {
  StepTraffic out;
  out.max_level = max_level_;
  out.messages = messages_;
  out.total_words = total_words_;
  const double base_cap = topo_->levels() >= 1 ? topo_->capacity(1) : 1.0;
  for (int l = 1; l <= topo_->levels(); ++l) {
    const double cap = topo_->capacity(l);
    for (const auto* dir : {&up_, &down_}) {
      for (double w : (*dir)[static_cast<std::size_t>(l - 1)]) {
        out.max_channel_load = std::max(out.max_channel_load, w);
        out.max_overload = std::max(out.max_overload, w / cap);
        out.time = std::max(out.time, w / cap);
      }
    }
    for (const auto* dir : {&up_msgs_, &down_msgs_}) {
      for (double k : (*dir)[static_cast<std::size_t>(l - 1)])
        out.max_contention = std::max(out.max_contention, k * base_cap / cap);
    }
  }
  out.time += alpha * max_level_;
  return out;
}

double TrafficStep::level_peak_load(int level) const {
  TREESVD_REQUIRE(level >= 1 && level <= topo_->levels(), "level out of range");
  double peak = 0.0;
  for (const auto* dir : {&up_, &down_})
    for (double w : (*dir)[static_cast<std::size_t>(level - 1)]) peak = std::max(peak, w);
  return peak;
}

}  // namespace treesvd
