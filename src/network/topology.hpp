#pragma once
// Fat-tree interconnect model (Section 2 of the paper).
//
// A (binary) fat-tree over P leaf processors has levels 1..log2(P); each edge
// at level l connects a level-(l-1) node (or a leaf for l = 1) to its parent
// and consists of an upward and a downward channel. The capacity profile is
// what distinguishes the machines the paper discusses:
//   * perfect fat-tree: capacity doubles each level (constant bisection),
//   * ordinary binary tree ("skinny all over"): constant capacity,
//   * CM-5-like: the 4-way tree's data network modelled as a binary fat-tree
//     whose capacities double every *second* level (factor ~sqrt(2)/level) —
//     full at the two bottom levels, skinny above.

#include <cstddef>
#include <string>
#include <vector>

namespace treesvd {

enum class CapacityProfile {
  kPerfect,   ///< capacity(l) = base * 2^(l-1)
  kConstant,  ///< capacity(l) = base (ordinary binary tree)
  kCm5,       ///< capacity(l) = base * 2^floor(l/2)
};

std::string to_string(CapacityProfile profile);

/// Binary fat-tree over a power-of-two number of leaves.
class FatTreeTopology {
 public:
  /// `base_capacity` is the word bandwidth of a level-1 channel per time
  /// unit.
  FatTreeTopology(int leaves, CapacityProfile profile, double base_capacity = 1.0);

  int leaves() const noexcept { return leaves_; }
  int levels() const noexcept { return levels_; }
  CapacityProfile profile() const noexcept { return profile_; }

  /// Channel capacity at a level (words per time unit, per direction).
  double capacity(int level) const;

  /// Level of the lowest common ancestor of two leaves: 0 if equal, 1 for
  /// siblings, ... levels() for opposite halves.
  int route_level(int leaf_a, int leaf_b) const;

  /// Number of edges at a level (each with an up and a down channel).
  int edges_at_level(int level) const;

  /// Identifies the level-l edge on the path from a leaf towards the root:
  /// the index of the level-l node above the leaf.
  int edge_index(int leaf, int level) const;

 private:
  int leaves_;
  int levels_;
  CapacityProfile profile_;
  double base_capacity_;
};

}  // namespace treesvd
