#pragma once
// Per-step traffic accounting and the contention cost model.
//
// Jacobi orderings are step-synchronous: between two compute steps all column
// transfers happen "at once". The model charges each transfer to every
// channel on its up-over-down route and prices the step as the busiest
// channel's serialisation time, plus a per-hop latency for the deepest route:
//
//   step_time = alpha * max_route_level + max_over_channels(words / capacity)
//
// A channel asked to carry more words than its per-step capacity serialises
// them — that is the contention the paper's hybrid ordering is designed to
// avoid on skinny trees.

#include <cstddef>
#include <vector>

#include "network/topology.hpp"

namespace treesvd {

/// One inter-leaf message.
struct Message {
  int from_leaf = 0;
  int to_leaf = 0;
  double words = 0.0;
};

/// Statistics of a single synchronous communication step.
struct StepTraffic {
  double time = 0.0;              ///< modelled step time
  double max_channel_load = 0.0;  ///< words through the busiest channel
  double max_overload = 0.0;      ///< max over channels of words/capacity
  /// Contention factor: max over channels of simultaneous messages divided by
  /// the channel's capacity relative to a level-1 channel. <= 1 means no
  /// channel is busier than an uncontended leaf link (the paper's
  /// "no contention" condition for the hybrid ordering).
  double max_contention = 0.0;
  int max_level = 0;              ///< deepest level any message crossed
  std::size_t messages = 0;
  double total_words = 0.0;
};

/// Accumulates the messages of one step and prices it on a topology.
class TrafficStep {
 public:
  explicit TrafficStep(const FatTreeTopology& topo);

  void add(const Message& message);

  /// Prices the step; `alpha` is the per-level hop latency in time units.
  StepTraffic finish(double alpha = 1.0) const;

  /// Words carried by the busiest channel at one level.
  double level_peak_load(int level) const;

 private:
  const FatTreeTopology* topo_;
  std::vector<std::vector<double>> up_;    ///< [level-1][edge] words
  std::vector<std::vector<double>> down_;  ///< [level-1][edge] words
  std::vector<std::vector<double>> up_msgs_;    ///< [level-1][edge] messages
  std::vector<std::vector<double>> down_msgs_;  ///< [level-1][edge] messages
  int max_level_ = 0;
  std::size_t messages_ = 0;
  double total_words_ = 0.0;
};

}  // namespace treesvd
