#include "network/topology.hpp"

#include "util/require.hpp"

namespace treesvd {

std::string to_string(CapacityProfile profile) {
  switch (profile) {
    case CapacityProfile::kPerfect: return "perfect-fat-tree";
    case CapacityProfile::kConstant: return "binary-tree";
    case CapacityProfile::kCm5: return "cm5-skinny";
  }
  return "?";
}

FatTreeTopology::FatTreeTopology(int leaves, CapacityProfile profile, double base_capacity)
    : leaves_(leaves), levels_(0), profile_(profile), base_capacity_(base_capacity) {
  TREESVD_REQUIRE(leaves >= 1 && (leaves & (leaves - 1)) == 0,
                  "leaf count must be a power of two");
  TREESVD_REQUIRE(base_capacity > 0.0, "channel capacity must be positive");
  for (int p = leaves; p > 1; p /= 2) ++levels_;
}

double FatTreeTopology::capacity(int level) const {
  TREESVD_REQUIRE(level >= 1 && level <= levels_, "level out of range");
  switch (profile_) {
    case CapacityProfile::kPerfect:
      return base_capacity_ * static_cast<double>(1LL << (level - 1));
    case CapacityProfile::kConstant:
      return base_capacity_;
    case CapacityProfile::kCm5:
      return base_capacity_ * static_cast<double>(1LL << (level / 2));
  }
  return base_capacity_;
}

int FatTreeTopology::route_level(int leaf_a, int leaf_b) const {
  TREESVD_REQUIRE(leaf_a >= 0 && leaf_a < leaves_ && leaf_b >= 0 && leaf_b < leaves_,
                  "leaf out of range");
  int level = 0;
  while (leaf_a != leaf_b) {
    leaf_a /= 2;
    leaf_b /= 2;
    ++level;
  }
  return level;
}

int FatTreeTopology::edges_at_level(int level) const {
  TREESVD_REQUIRE(level >= 1 && level <= levels_, "level out of range");
  return leaves_ >> (level - 1);
}

int FatTreeTopology::edge_index(int leaf, int level) const {
  TREESVD_REQUIRE(leaf >= 0 && leaf < leaves_, "leaf out of range");
  TREESVD_REQUIRE(level >= 1 && level <= levels_, "level out of range");
  return leaf >> (level - 1);
}

}  // namespace treesvd
