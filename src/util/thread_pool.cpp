#include "util/thread_pool.hpp"

#include <utility>

namespace treesvd {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  for (unsigned t = 0; t + 1 < threads; ++t)
    workers_.emplace_back([this, t] { worker_loop(t); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(unsigned /*id*/) {
  std::size_t seen_generation = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_work_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
    if (stop_) return;
    seen_generation = generation_;
    while (next_ < count_) {
      const std::size_t i = next_++;
      lock.unlock();
      std::exception_ptr error;
      try {
        (*task_)(i);
      } catch (...) {
        error = std::current_exception();
      }
      lock.lock();
      if (error && !first_error_) first_error_ = std::move(error);
      --in_flight_;
      if (in_flight_ == 0 && next_ >= count_) cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = &task;
    count_ = count;
    next_ = 0;
    in_flight_ = count;
    first_error_ = nullptr;
    ++generation_;
  }
  cv_work_.notify_all();
  // The calling thread participates.
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    if (next_ >= count_) break;
    const std::size_t i = next_++;
    lock.unlock();
    std::exception_ptr error;
    try {
      task(i);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error && !first_error_) first_error_ = std::move(error);
    --in_flight_;
    if (in_flight_ == 0 && next_ >= count_) cv_done_.notify_all();
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return in_flight_ == 0; });
  task_ = nullptr;
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace treesvd
