#include "util/thread_pool.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "analysis/hooks.hpp"

namespace treesvd {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  for (unsigned t = 0; t + 1 < threads; ++t)
    workers_.emplace_back([this, t] { worker_loop(t); });
}

// NOLINTNEXTLINE(bugprone-exception-escape): std::thread::join can throw
// system_error only for a dead/self thread, neither possible here; if the
// impossible happens, terminate is the correct outcome for a pool teardown.
ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunks(std::unique_lock<std::mutex>& lock,
                            const std::function<void(std::size_t)>& task,
                            [[maybe_unused]] std::size_t gen) {
  while (next_chunk_ < chunk_total_) {
    // Chunks are claimed by number; the fuzzer's permutation (if any) maps
    // the claim order onto chunk indices, perturbing which index range runs
    // first without changing the per-index exactly-once contract.
    const std::size_t claim = next_chunk_++;
    const std::size_t chunk = chunk_perm_.empty() ? claim : chunk_perm_[claim];
    const std::size_t begin = chunk * grain_;
    const std::size_t end = std::min(count_, begin + grain_);
    lock.unlock();
    TREESVD_HB_TASK_BEGIN(this, gen,
                          "pool chunk [" + std::to_string(begin) + "," + std::to_string(end) + ")");
    TREESVD_FUZZ_POINT(analysis::kFuzzPoolChunk, gen, chunk, 0);
    // Catch per task, not per chunk: a throw must not cancel the remaining
    // iterations of its chunk (the pool's contract is that every index runs).
    std::exception_ptr error;
    for (std::size_t i = begin; i < end; ++i) {
      try {
        task(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    TREESVD_HB_TASK_END(this, gen);
    lock.lock();
    if (error && !first_error_) first_error_ = std::move(error);
    --chunks_left_;
    if (chunks_left_ == 0) cv_done_.notify_all();
  }
}

void ThreadPool::worker_loop(unsigned /*id*/) {
  std::size_t seen_generation = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_work_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
    if (stop_) return;
    seen_generation = generation_;
    // task_ is null when the batch already drained before this worker woke.
    if (task_ != nullptr) run_chunks(lock, *task_, seen_generation);
  }
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& task,
                              std::size_t grain) {
  if (count == 0) return;
  if (grain == 0) {
    // Auto: tiny counts aren't worth a fork-join; otherwise aim for ~8
    // chunks per thread so the dynamic schedule can still balance load.
    grain = count <= kAutoInlineBelow ? count : std::max<std::size_t>(1, count / (8 * size()));
  }
  if (workers_.empty() || count <= grain) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = &task;
    count_ = count;
    grain_ = grain;
    next_chunk_ = 0;
    chunk_total_ = (count + grain - 1) / grain;
    chunks_left_ = chunk_total_;
    first_error_ = nullptr;
    ++generation_;
    TREESVD_FUZZ_CHUNK_ORDER(chunk_perm_, chunk_total_);
    // Publish the caller's clock before any worker can observe the batch
    // (workers read the batch state under mu_, so this fork is ordered
    // before every task_begin).
    TREESVD_HB_FORK(this, generation_);
  }
  cv_work_.notify_all();
  // The calling thread participates.
  std::unique_lock<std::mutex> lock(mu_);
  run_chunks(lock, task, generation_);
  cv_done_.wait(lock, [&] { return chunks_left_ == 0; });
  task_ = nullptr;
  TREESVD_HB_JOIN(this, generation_);
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace treesvd
