#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace treesvd {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  for (unsigned t = 0; t + 1 < threads; ++t)
    workers_.emplace_back([this, t] { worker_loop(t); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunks(std::unique_lock<std::mutex>& lock,
                            const std::function<void(std::size_t)>& task) {
  while (next_ < count_) {
    const std::size_t begin = next_;
    const std::size_t end = std::min(count_, begin + grain_);
    next_ = end;
    lock.unlock();
    // Catch per task, not per chunk: a throw must not cancel the remaining
    // iterations of its chunk (the pool's contract is that every index runs).
    std::exception_ptr error;
    for (std::size_t i = begin; i < end; ++i) {
      try {
        task(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    lock.lock();
    if (error && !first_error_) first_error_ = std::move(error);
    --chunks_left_;
    if (chunks_left_ == 0 && next_ >= count_) cv_done_.notify_all();
  }
}

void ThreadPool::worker_loop(unsigned /*id*/) {
  std::size_t seen_generation = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_work_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
    if (stop_) return;
    seen_generation = generation_;
    // task_ is null when the batch already drained before this worker woke.
    if (task_ != nullptr) run_chunks(lock, *task_);
  }
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& task,
                              std::size_t grain) {
  if (count == 0) return;
  if (grain == 0) {
    // Auto: tiny counts aren't worth a fork-join; otherwise aim for ~8
    // chunks per thread so the dynamic schedule can still balance load.
    grain = count <= kAutoInlineBelow ? count : std::max<std::size_t>(1, count / (8 * size()));
  }
  if (workers_.empty() || count <= grain) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = &task;
    count_ = count;
    grain_ = grain;
    next_ = 0;
    chunks_left_ = (count + grain - 1) / grain;
    first_error_ = nullptr;
    ++generation_;
  }
  cv_work_.notify_all();
  // The calling thread participates.
  std::unique_lock<std::mutex> lock(mu_);
  run_chunks(lock, task);
  cv_done_.wait(lock, [&] { return chunks_left_ == 0; });
  task_ = nullptr;
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace treesvd
