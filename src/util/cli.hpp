#pragma once
// Tiny --flag=value command-line parser shared by the examples and benches.

#include <cstddef>
#include <map>
#include <string>

namespace treesvd {

/// Parses "--key=value" and bare "--key" (value "1") arguments.
/// Unrecognised positional arguments are rejected so typos fail loudly.
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  long long get_int(const std::string& key, long long fallback) const;
  double get_double(const std::string& key, double fallback) const;

  const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> kv_;
};

}  // namespace treesvd
