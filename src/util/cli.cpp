#include "util/cli.hpp"

#include <cstdlib>

#include "util/require.hpp"

namespace treesvd {

Cli::Cli(int argc, const char* const* argv) {
  TREESVD_REQUIRE(argc >= 1, "argc must include the program name");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    TREESVD_REQUIRE(arg.rfind("--", 0) == 0, "expected --key[=value], got: " + arg);
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      kv_[arg] = "1";
    } else {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

bool Cli::has(const std::string& key) const { return kv_.count(key) != 0; }

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

long long Cli::get_int(const std::string& key, long long fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& key, double fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

}  // namespace treesvd
