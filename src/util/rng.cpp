#include "util/rng.hpp"

#include <cmath>

namespace treesvd {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // A zero state would be a fixed point of the recurrence.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace treesvd
