#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/require.hpp"

namespace treesvd {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  TREESVD_REQUIRE(!header_.empty(), "table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& value) {
  TREESVD_REQUIRE(!rows_.empty(), "call row() before cell()");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

Table& Table::cell(std::size_t value) { return cell(std::to_string(value)); }
Table& Table::cell(long long value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  auto line = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << '+' << std::string(width[c] + 2, '-');
    }
    os << "+\n";
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << "| " << v << std::string(width[c] - v.size() + 1, ' ');
    }
    os << "|\n";
  };

  line();
  emit(header_);
  line();
  for (const auto& r : rows_) emit(r);
  line();
}

std::string Table::str() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace treesvd
