#pragma once
// Precondition checking for the treesvd library.
//
// Library entry points validate their arguments with TREESVD_REQUIRE, which
// throws std::invalid_argument carrying the failed condition and location.
// Internal invariants use TREESVD_ASSERT, which throws std::logic_error (a
// firing TREESVD_ASSERT is always a library bug, never a caller error).

#include <stdexcept>
#include <string>

namespace treesvd::detail {

[[noreturn]] inline void require_failed(const char* cond, const char* file, int line,
                                        const std::string& msg) {
  throw std::invalid_argument(std::string("treesvd precondition failed: ") + cond + " at " +
                              file + ":" + std::to_string(line) + (msg.empty() ? "" : ": " + msg));
}

[[noreturn]] inline void assert_failed(const char* cond, const char* file, int line) {
  throw std::logic_error(std::string("treesvd internal invariant violated: ") + cond + " at " +
                         file + ":" + std::to_string(line));
}

}  // namespace treesvd::detail

#define TREESVD_REQUIRE(cond, msg)                                            \
  do {                                                                        \
    if (!(cond)) ::treesvd::detail::require_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#define TREESVD_ASSERT(cond)                                                  \
  do {                                                                        \
    if (!(cond)) ::treesvd::detail::assert_failed(#cond, __FILE__, __LINE__); \
  } while (0)
