#pragma once
// Minimal fork-join thread pool for step-parallel rotation execution.
//
// Jacobi steps are embarrassingly parallel (disjoint column pairs); the pool
// runs an indexed task over [0, count) and joins. Workers persist across
// calls. Dispatch is chunked: threads claim `grain` consecutive indices per
// mutex acquisition, so a step of hundreds of cheap rotations costs a
// handful of lock round-trips instead of one per rotation, and tiny counts
// run inline on the calling thread without waking the workers at all.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace treesvd {

class ThreadPool {
 public:
  /// Auto grain (grain == 0) runs counts at or below this inline on the
  /// calling thread — forking, running, and joining the workers costs more
  /// than a few cheap tasks.
  static constexpr std::size_t kAutoInlineBelow = 4;

  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Runs task(i) for i in [0, count), distributing across the pool and the
  /// calling thread; returns when all complete.
  ///
  /// `grain` is the number of consecutive indices a thread claims per
  /// scheduling round. grain == 0 selects an automatic chunk size
  /// (count / (8 * size()), at least 1) and runs counts <= kAutoInlineBelow
  /// inline; any count <= grain also runs inline, entirely on the calling
  /// thread, without waking a worker.
  ///
  /// Exception contract: a throwing task does not terminate the process. The
  /// first exception (in completion order) is captured and rethrown from
  /// parallel_for on the calling thread once every iteration has finished;
  /// subsequent exceptions from the same call are discarded. Iterations are
  /// not cancelled — all `count` tasks run even after one throws, so tasks
  /// must leave shared state consistent on the exceptional path too.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& task,
                    std::size_t grain = 0);

 private:
  void worker_loop(unsigned id);

  /// Claims and runs chunks until the batch is exhausted; expects `lock`
  /// held on entry and leaves it held on exit. `gen` is the batch's
  /// generation (the fork-join epoch of the analysis hooks).
  void run_chunks(std::unique_lock<std::mutex>& lock, const std::function<void(std::size_t)>& task,
                  std::size_t gen);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t count_ = 0;
  std::size_t grain_ = 1;
  std::size_t next_chunk_ = 0;   ///< next chunk *number* to claim
  std::size_t chunk_total_ = 0;  ///< chunks in the current batch
  std::size_t chunks_left_ = 0;  ///< unfinished chunks of the current call
  std::size_t generation_ = 0;
  /// Schedule-fuzzer claim order: chunk number -> chunk index. Empty (the
  /// default, and always in builds without TREESVD_ANALYSIS) means ascending.
  std::vector<std::uint32_t> chunk_perm_;
  std::exception_ptr first_error_;  ///< first task exception of the current parallel_for
  bool stop_ = false;
};

}  // namespace treesvd
