#pragma once
// Minimal fork-join thread pool for step-parallel rotation execution.
//
// Jacobi steps are embarrassingly parallel (disjoint column pairs); the pool
// runs an indexed task over [0, count) and joins. Workers persist across
// calls.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace treesvd {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Runs task(i) for i in [0, count), distributing across the pool and the
  /// calling thread; returns when all complete.
  ///
  /// Exception contract: a throwing task does not terminate the process. The
  /// first exception (in completion order) is captured and rethrown from
  /// parallel_for on the calling thread once every iteration has finished;
  /// subsequent exceptions from the same call are discarded. Iterations are
  /// not cancelled — all `count` tasks run even after one throws, so tasks
  /// must leave shared state consistent on the exceptional path too.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& task);

 private:
  void worker_loop(unsigned id);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t count_ = 0;
  std::size_t next_ = 0;
  std::size_t in_flight_ = 0;
  std::size_t generation_ = 0;
  std::exception_ptr first_error_;  ///< first task exception of the current parallel_for
  bool stop_ = false;
};

}  // namespace treesvd
