#pragma once
// Wall-clock timing helper for the examples and benchmark harness.

#include <chrono>

namespace treesvd {

/// Monotonic stopwatch; started on construction.
class Timer {
 public:
  Timer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace treesvd
