#pragma once
// Minimal ASCII table formatter used by the benchmark harness to print
// paper-style tables (rows of an experiment) to stdout.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace treesvd {

/// Accumulates rows of string cells and renders them with aligned columns.
/// Numeric convenience overloads format with a fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent cell() calls append to it.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 3);
  Table& cell(std::size_t value);
  Table& cell(long long value);
  Table& cell(int value);

  /// Renders the table. Column widths are computed from the content.
  void print(std::ostream& os) const;
  std::string str() const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace treesvd
