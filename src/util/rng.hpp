#pragma once
// Deterministic, seedable pseudo-random generation (xoshiro256++).
//
// The library never uses std::rand or global state; every randomized
// component takes an Rng so experiments are reproducible bit-for-bit.

#include <cstdint>

namespace treesvd {

/// xoshiro256++ 1.0 (Blackman & Vigna), seeded via splitmix64.
/// Satisfies the subset of UniformRandomBitGenerator we need.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Standard normal via Box-Muller (cached second deviate).
  double normal() noexcept;
  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) noexcept;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace treesvd
