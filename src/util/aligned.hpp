#pragma once
// Minimal over-aligned allocator: AlignedVec<double> gives the batched SoA
// arenas 64-byte bases so full-width vector loads and stores never straddle
// a cache line (std::vector's default 16-byte alignment made every 64-byte
// access a line-split pair, costing ~30% on the lane-block kernels). Lane
// blocks keep their internal 64-byte strides by construction (row stride
// lane_width * 8 bytes); only the base address needed fixing.

#include <cstddef>
#include <new>
#include <vector>

namespace treesvd {

template <class T, std::size_t Alignment>
struct AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment must be a power of two");
  static_assert(Alignment >= alignof(T), "alignment must not weaken the type's own");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) noexcept {
    return true;
  }
};

/// Cache-line-aligned vector, the storage type of the batched engine's
/// arenas and per-lane decision scratch.
template <class T>
using AlignedVec = std::vector<T, AlignedAllocator<T, 64>>;

}  // namespace treesvd
