#include "eigen/jacobi_eigen.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/rotation.hpp"
#include "util/require.hpp"

namespace treesvd {
namespace {

/// One step's worth of disjoint rotations, staged so R^T A R is applied as a
/// row phase followed by a column phase.
struct StagedRotation {
  int i;      ///< smaller index
  int j;      ///< larger index
  double c;
  double s;
  bool swap;  ///< diagonal exchange fused in (sorting)
};

/// Classical symmetric Jacobi rotation annihilating a_ij:
///   theta = (a_jj - a_ii) / (2 a_ij), t the smaller root of
///   t^2 + 2 theta t - 1 = 0, c = 1/sqrt(1+t^2), s = c t.
/// Works for indefinite and zero diagonals (unlike the one-sided Gram
/// rotation, whose inputs are nonnegative norms). `scale` is a fixed
/// magnitude reference for the threshold test.
bool plan_rotation(const Matrix& a, int i, int j, double scale, const EigenOptions& opt,
                   StagedRotation* out) {
  const double aii = a(static_cast<std::size_t>(i), static_cast<std::size_t>(i));
  const double ajj = a(static_cast<std::size_t>(j), static_cast<std::size_t>(j));
  const double aij = a(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
  const bool negligible = std::fabs(aij) <= opt.tol * scale;

  double c = 1.0;
  double s = 0.0;
  double new_ii = aii;
  double new_jj = ajj;
  if (!negligible) {
    const double theta = (ajj - aii) / (2.0 * aij);
    double t;
    if (std::fabs(theta) > 1e150) {
      t = 0.5 / theta;  // asymptotic small root; avoids theta^2 overflow
    } else {
      t = (theta >= 0.0 ? 1.0 : -1.0) / (std::fabs(theta) + std::sqrt(1.0 + theta * theta));
    }
    c = 1.0 / std::sqrt(1.0 + t * t);
    s = c * t;
    new_ii = aii - t * aij;
    new_jj = ajj + t * aij;
  }
  // After annihilation the diagonal entries are the 2x2 eigenvalues; the
  // sort rule keeps the larger at the smaller index.
  const bool want_swap = opt.sort_descending && new_ii < new_jj;
  if (negligible && !want_swap) return false;
  out->i = i;
  out->j = j;
  out->c = c;
  out->s = s;
  out->swap = want_swap;
  return true;
}

/// Applies the staged rotations of one step: A <- R^T A R (with optional
/// index exchange fused into R), and V <- V R.
void apply_step(Matrix& a, Matrix* v, const std::vector<StagedRotation>& rots) {
  const std::size_t n = a.rows();
  // Column phase: columns i, j of A (and of V).
  for (const StagedRotation& r : rots) {
    const auto ci = a.col(static_cast<std::size_t>(r.i));
    const auto cj = a.col(static_cast<std::size_t>(r.j));
    if (r.swap) {
      apply_rotation_swapped(ci, cj, r.c, r.s);
    } else {
      apply_rotation(ci, cj, r.c, r.s);
    }
    if (v != nullptr) {
      const auto vi = v->col(static_cast<std::size_t>(r.i));
      const auto vj = v->col(static_cast<std::size_t>(r.j));
      if (r.swap) {
        apply_rotation_swapped(vi, vj, r.c, r.s);
      } else {
        apply_rotation(vi, vj, r.c, r.s);
      }
    }
  }
  // Row phase: rows i, j of A. (Rows of a column-major matrix are strided;
  // update in place element by element.)
  for (const StagedRotation& r : rots) {
    const auto i = static_cast<std::size_t>(r.i);
    const auto j = static_cast<std::size_t>(r.j);
    for (std::size_t k = 0; k < n; ++k) {
      const double aik = a(i, k);
      const double ajk = a(j, k);
      if (r.swap) {
        a(i, k) = r.s * aik + r.c * ajk;
        a(j, k) = r.c * aik - r.s * ajk;
      } else {
        a(i, k) = r.c * aik - r.s * ajk;
        a(j, k) = r.s * aik + r.c * ajk;
      }
    }
  }
  // Symmetrise the rotated pairs exactly (kills roundoff drift in a_ij/a_ji).
  for (const StagedRotation& r : rots) {
    const auto i = static_cast<std::size_t>(r.i);
    const auto j = static_cast<std::size_t>(r.j);
    const double mean = 0.5 * (a(i, j) + a(j, i));
    a(i, j) = mean;
    a(j, i) = mean;
  }
}

}  // namespace

double off_norm(const Matrix& a) {
  TREESVD_REQUIRE(a.rows() == a.cols(), "off_norm needs a square matrix");
  double off = 0.0;
  double total = 0.0;
  for (std::size_t jj = 0; jj < a.cols(); ++jj) {
    for (std::size_t ii = 0; ii < a.rows(); ++ii) {
      const double x = a(ii, jj);
      total += x * x;
      if (ii != jj) off += x * x;
    }
  }
  return total == 0.0 ? 0.0 : std::sqrt(off / total);
}

EigenResult jacobi_symmetric_eigen(const Matrix& a, const Ordering& ordering,
                                   const EigenOptions& options) {
  TREESVD_REQUIRE(a.rows() == a.cols() && a.rows() >= 2,
                  "jacobi_symmetric_eigen needs a square matrix, n >= 2");
  const std::size_t n0 = a.rows();
  {
    const double scale = a.max_abs();
    for (std::size_t j = 0; j < n0; ++j)
      for (std::size_t i = 0; i < j; ++i)
        TREESVD_REQUIRE(std::fabs(a(i, j) - a(j, i)) <= 1e-12 * std::max(scale, 1.0),
                        "matrix is not symmetric");
  }

  // Pad with identity rows/columns up to a supported width (the extra
  // diagonal entries are exact eigenpairs and never rotate against anything
  // meaningfully... they do rotate with real columns when a_ij = 0, which the
  // threshold skips, so they are inert).
  int padded = 0;
  for (int w = static_cast<int>(n0); w <= 2 * static_cast<int>(n0) + 4; ++w) {
    if (ordering.supports(w)) {
      padded = w;
      break;
    }
  }
  TREESVD_REQUIRE(padded > 0, ordering.name() + " supports no width near n");
  Matrix work(static_cast<std::size_t>(padded), static_cast<std::size_t>(padded));
  for (std::size_t j = 0; j < n0; ++j)
    for (std::size_t i = 0; i < n0; ++i) work(i, j) = a(i, j);
  // Padding diagonal entries sit strictly below any eigenvalue of A (Gershgorin
  // bound), so the sort rule pushes the inert pads to the tail indices and the
  // leading n0 diagonal entries are exactly A's spectrum.
  const double pad_value = -(a.max_abs() * static_cast<double>(n0) + 1.0);
  for (std::size_t d = n0; d < static_cast<std::size_t>(padded); ++d) work(d, d) = pad_value;

  Matrix v = options.compute_vectors
                 ? Matrix::identity(static_cast<std::size_t>(padded))
                 : Matrix();
  Matrix* vp = options.compute_vectors ? &v : nullptr;

  std::vector<int> layout(static_cast<std::size_t>(padded));
  for (int i = 0; i < padded; ++i) layout[static_cast<std::size_t>(i)] = i;

  // Fixed threshold reference: the magnitude of the input (invariant under
  // the orthogonal similarity up to a factor of n).
  const double scale = std::max(work.max_abs(), 1e-300);

  EigenResult r;
  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    const Sweep s = ordering.sweep_from(layout, sweep);
    std::size_t sweep_rot = 0;
    std::size_t sweep_swap = 0;
    for (int t = 0; t < s.steps(); ++t) {
      std::vector<StagedRotation> staged;
      for (const IndexPair& p : s.pairs(t)) {
        StagedRotation sr{};
        if (plan_rotation(work, std::min(p.even, p.odd), std::max(p.even, p.odd), scale, options,
                          &sr)) {
          staged.push_back(sr);
          sweep_rot += (sr.c != 1.0 || sr.s != 0.0) ? 1 : 0;
          sweep_swap += sr.swap ? 1 : 0;
        }
      }
      apply_step(work, vp, staged);
    }
    const auto fin = s.final_layout();
    layout.assign(fin.begin(), fin.end());
    r.rotations += sweep_rot;
    r.swaps += sweep_swap;
    r.sweeps = sweep + 1;
    if (options.track_off) r.off_history.push_back(off_norm(work));
    if (sweep_rot == 0 && sweep_swap == 0) {
      r.converged = true;
      break;
    }
  }

  r.eigenvalues.resize(n0);
  for (std::size_t i = 0; i < n0; ++i) r.eigenvalues[i] = work(i, i);
  if (options.compute_vectors) {
    r.eigenvectors = Matrix(n0, n0);
    for (std::size_t j = 0; j < n0; ++j)
      for (std::size_t i = 0; i < n0; ++i) r.eigenvectors(i, j) = v(i, j);
  }
  return r;
}

}  // namespace treesvd
