#pragma once
// Two-sided Jacobi eigensolver for symmetric matrices, driven by the same
// parallel orderings as the SVD.
//
// The paper's orderings are general parallel Jacobi orderings: reference [2]
// (Brent & Luk) applies them to both the SVD and the symmetric eigenvalue
// problem. This module provides the eigenvalue side: A' = R^T A R with R a
// product of the step's disjoint plane rotations, each annihilating one
// off-diagonal element. Within a step all rotations are computed from the
// same A, then applied as one row phase and one column phase — the standard
// parallel two-sided update, so the engine parallelises per step exactly
// like the one-sided SVD.

#include <cstddef>
#include <vector>

#include "core/ordering.hpp"
#include "linalg/matrix.hpp"

namespace treesvd {

struct EigenOptions {
  /// Rotate only when |a_ij| > tol * sqrt(|a_ii a_jj|) (threshold strategy).
  double tol = 1e-13;
  int max_sweeps = 60;
  bool compute_vectors = true;
  /// Sort eigenvalues into nonincreasing order by value while iterating
  /// (diagonal exchanges fused into the rotations, like the SVD engine).
  bool sort_descending = true;
  /// Record off(A) = sqrt(sum_{i != j} a_ij^2)/||A||_F after every sweep.
  bool track_off = false;
};

struct EigenResult {
  std::vector<double> eigenvalues;  ///< nonincreasing when sorted
  Matrix eigenvectors;              ///< columns; empty when not requested
  int sweeps = 0;
  bool converged = false;
  std::size_t rotations = 0;
  std::size_t swaps = 0;
  std::vector<double> off_history;
};

/// Eigendecomposition of a symmetric matrix using the given parallel Jacobi
/// ordering. Pads internally with identity rows/columns when the ordering
/// does not support n directly. Throws std::invalid_argument if `a` is not
/// square or not symmetric (to 1e-12 * max|a|).
EigenResult jacobi_symmetric_eigen(const Matrix& a, const Ordering& ordering,
                                   const EigenOptions& options = {});

/// Relative off-diagonal norm of a square matrix: the two-sided convergence
/// measure.
double off_norm(const Matrix& a);

}  // namespace treesvd
