#pragma once
// Distributed execution machine: the closest in-repo analogue to the paper's
// CM-5/CMMD implementation.
//
// Unlike the shared-memory SVD drivers (svd/jacobi.hpp), which rotate columns
// in place and only *model* communication, this machine physically owns each
// column on a leaf processor: every inter-leaf move serialises the column
// into a message, routes it through the fat-tree (accumulating modeled time
// and contention), and delivers it before the next step may use it. A
// rotation asserts that both of its columns are resident on the executing
// leaf — so running it end-to-end proves an ordering's schedule is physically
// executable with exactly the communication it claims.

#include <cstddef>
#include <vector>

#include "core/ordering.hpp"
#include "linalg/matrix.hpp"
#include "mp/fault.hpp"
#include "network/topology.hpp"
#include "network/traffic.hpp"
#include "sim/machine.hpp"
#include "svd/jacobi.hpp"
#include "svd/recovery.hpp"

namespace treesvd {

/// Result of a distributed run: the numerical SVD plus the machine costs
/// actually incurred executing it.
struct DistributedResult {
  SvdResult svd;
  SweepCost cost;         ///< accumulated over all executed sweeps
  std::size_t delivered_messages = 0;
  double delivered_words = 0.0;
  mp::RecoveryStats recovery;  ///< fault/checkpoint counters (chaos runs only)
};

/// Chaos configuration for the step-synchronous machine. The simulator has
/// no real transport underneath it, so only the faults that make sense for a
/// barrier-synchronous exchange are honoured:
///  * corrupt_prob — a routed column's cached squared norm arrives as NaN
///    (requires cache_norms; the payload guard repairs it by re-reduction,
///    which is numerically sound but not bitwise: a fresh sumsq differs in
///    ulps from the fused-kernel value that travelled).
///  * kill_rank / kill_at_op — the machine dies at that 0-based executed
///    communication step; with checkpointing the run rolls back to the last
///    sweep boundary and replays bit-identically.
/// Any drop / duplicate / delay / resend probability is rejected — those
/// need the real message transport (use spmd_jacobi with SpmdTransport).
struct DistributedChaos {
  mp::FaultPlan faults;
  RecoveryOptions recovery;
};

/// Executes the one-sided Jacobi SVD on a simulated distributed tree machine.
///
/// Each of the n/2 leaves owns two column slots of A (and of V when
/// requested). Steps are barrier-synchronous: all leaves rotate their
/// resident pair, then the transition's column moves travel as messages
/// priced by the topology's contention model. Numerical results are
/// bit-identical to one_sided_jacobi with the same ordering and options
/// (verified by tests); the machine additionally reports the real
/// communication cost of the run.
///
/// Requires ordering.supports(a.cols()) — the distributed machine does not
/// pad (a physical machine has a fixed processor count).
DistributedResult distributed_jacobi(const Matrix& a, const Ordering& ordering,
                                     const FatTreeTopology& topology,
                                     const JacobiOptions& options = {},
                                     const CostParams& params = {},
                                     const DistributedChaos* chaos = nullptr);

}  // namespace treesvd
