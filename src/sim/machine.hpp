#pragma once
// Step-synchronous tree-machine model: binds an ordering to a fat-tree
// topology and prices a full SVD run the way the CM-5 experiments of the
// paper would measure it — per-step compute plus contended communication.

#include <cstddef>
#include <vector>

#include "core/ordering.hpp"
#include "network/topology.hpp"
#include "network/traffic.hpp"

namespace treesvd {

/// Cost parameters. The time unit is "one word through a base-capacity
/// channel"; flop_time converts arithmetic into the same unit.
struct CostParams {
  double words_per_column = 64.0;  ///< message size: the column length m
  double alpha = 2.0;              ///< per-tree-level hop latency
  double flop_time = 0.05;         ///< time per flop relative to one word
  /// Flops a leaf spends on one rotation of two length-m columns: the Gram
  /// pass (6m) + the update (6m) + the V update (6n ~ folded into beta).
  double flops_per_rotation_per_row = 14.0;
};

/// Cost breakdown of one sweep on one topology.
struct SweepCost {
  double total_time = 0.0;
  double compute_time = 0.0;
  double comm_time = 0.0;
  double comm_words = 0.0;
  std::size_t messages = 0;
  double max_overload = 0.0;   ///< worst per-channel words/capacity of any step
  double max_contention = 0.0; ///< worst stream contention of any step (<= 1: none)
  std::vector<std::size_t> transitions_using_level;  ///< [lvl]: transitions whose
                                                     ///< deepest message is lvl
  std::vector<double> words_per_level;  ///< [lvl]: words routed through LCA lvl
};

/// Prices one sweep: each step costs one rotation (all leaves in parallel);
/// each transition is a synchronous message exchange priced by the busiest
/// channel. Requires sweep.leaves() == topo.leaves().
SweepCost analyze_sweep(const Sweep& sweep, const FatTreeTopology& topo,
                        const CostParams& params);

/// A full modelled run of `sweeps` sweeps (layout composed between sweeps).
struct ModeledRun {
  SweepCost per_sweep_total;  ///< sums/maxima over all sweeps
  int sweeps = 0;
};

ModeledRun model_run(const Ordering& ordering, const FatTreeTopology& topo, int n,
                     const CostParams& params, int sweeps);

}  // namespace treesvd
