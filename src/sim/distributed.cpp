#include "sim/distributed.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <string>
#include <utility>

#include "linalg/blas1.hpp"
#include "svd/equilibrate.hpp"
#include "svd/pair_kernel.hpp"
#include "util/require.hpp"

namespace treesvd {
namespace {

/// Column storage physically owned by slots: slot s lives on leaf s/2.
class SlotStore {
 public:
  SlotStore(std::size_t slots, std::size_t rows) : rows_(rows) {
    data_.resize(slots);
    for (auto& c : data_) c.assign(rows, 0.0);
  }

  std::span<double> at(int slot) { return data_[static_cast<std::size_t>(slot)]; }

  void swap_slots(int a, int b) {
    std::swap(data_[static_cast<std::size_t>(a)], data_[static_cast<std::size_t>(b)]);
  }

  void move_all(const std::vector<ColumnMove>& moves) {
    // Two-phase synchronous exchange: every message is captured before any
    // delivery, exactly as a barrier-separated communication step behaves.
    std::vector<std::pair<int, std::vector<double>>> in_flight;
    in_flight.reserve(moves.size());
    for (const ColumnMove& mv : moves)
      in_flight.emplace_back(mv.to_slot, std::move(data_[static_cast<std::size_t>(mv.from_slot)]));
    for (auto& [to, col] : in_flight) data_[static_cast<std::size_t>(to)] = std::move(col);
  }

  std::size_t rows() const noexcept { return rows_; }

 private:
  std::size_t rows_;
  std::vector<std::vector<double>> data_;
};

/// Full machine state at a sweep boundary: restoring it and replaying is
/// bit-identical to the uninterrupted run because every decision downstream
/// (schedule, rotations, fault injection) is a deterministic function of it.
struct MachineCheckpoint {
  int sweep = 0;
  std::vector<std::vector<double>> h, v;
  std::vector<int> index_at_slot, layout;
  std::vector<double> hsq;
  KernelStats kernels;
  SweepCost cost;
  std::size_t delivered_messages = 0;
  double delivered_words = 0.0;
  std::size_t rotations = 0, swaps = 0;
  int sweeps = 0;
  std::uint64_t comm_op = 0;
  ConvergenceWatchdog watchdog{0};
  StallDetector stall;
};

void validate_chaos(const DistributedChaos& chaos, int leaves, bool cache_norms) {
  const mp::FaultPlan& p = chaos.faults;
  if (!p.enabled) return;
  TREESVD_REQUIRE(p.drop_prob == 0.0 && p.duplicate_prob == 0.0 && p.delay_prob == 0.0 &&
                      p.resend_drop_prob == 0.0,
                  "distributed_jacobi honours only corrupt/kill faults; drop, duplicate, delay "
                  "and resend faults require the real message transport (spmd_jacobi)");
  TREESVD_REQUIRE(p.corrupt_prob >= 0.0 && p.corrupt_prob <= 1.0,
                  "corrupt_prob must lie in [0, 1]");
  TREESVD_REQUIRE(p.corrupt_prob == 0.0 || cache_norms,
                  "distributed_jacobi corruption targets the travelling cached norm; "
                  "it needs options.cache_norms");
  TREESVD_REQUIRE(p.kill_rank < leaves,
                  "kill_rank " + std::to_string(p.kill_rank) + " out of range for " +
                      std::to_string(leaves) + " leaves");
  TREESVD_REQUIRE(p.stall_rank < 0,
                  "distributed_jacobi is single-threaded; stall faults are meaningless here");
}

}  // namespace

DistributedResult distributed_jacobi(const Matrix& a, const Ordering& ordering,
                                     const FatTreeTopology& topology,
                                     const JacobiOptions& options, const CostParams& params,
                                     const DistributedChaos* chaos) {
  const int n = static_cast<int>(a.cols());
  TREESVD_REQUIRE(a.rows() >= a.cols() && n >= 2, "distributed_jacobi expects m >= n >= 2");
  TREESVD_REQUIRE(ordering.supports(n),
                  ordering.name() + " does not support n=" + std::to_string(n) +
                      " (the distributed machine does not pad)");
  TREESVD_REQUIRE(topology.leaves() == n / 2, "topology must have n/2 leaves");
  require_finite_columns(a, "distributed_jacobi");

  RecoveryOptions recovery = chaos != nullptr ? chaos->recovery : RecoveryOptions{};
  // Without a chaos config the engine-level watchdog knob applies (chaos
  // replay depends on its own RecoveryOptions staying authoritative).
  if (chaos == nullptr) recovery.watchdog_sweeps = options.watchdog_sweeps;
  const bool checkpointing = chaos != nullptr && recovery.checkpoint_sweeps > 0;
  std::optional<mp::FaultInjector> injector;
  if (chaos != nullptr && chaos->faults.enabled) {
    validate_chaos(*chaos, n / 2, options.cache_norms);
    injector.emplace(chaos->faults);
  }
  mp::RecoveryStats rec;

  const std::size_t rows = a.rows();
  // Equilibrate once, before the initial distribution, so every travelling
  // column and cached norm works at the same exact power-of-two scale.
  Matrix a_eq = a;
  const Equilibration eq = equilibrate(a_eq, options.equilibrate);
  SlotStore h(static_cast<std::size_t>(n), rows);
  SlotStore v(static_cast<std::size_t>(n), static_cast<std::size_t>(n));

  // Initial distribution: slot s holds column s of A and e_s of V. When the
  // cached-norm path is on, each slot also carries its column's squared norm
  // (hsq), which travels with the column on every exchange — the distributed
  // twin of the shared-memory driver's NormCache, kept bitwise in lockstep.
  std::vector<int> index_at_slot(static_cast<std::size_t>(n));
  std::vector<double> hsq(static_cast<std::size_t>(n), 0.0);
  KernelCounters counters;
  for (int s = 0; s < n; ++s) {
    index_at_slot[static_cast<std::size_t>(s)] = s;
    const auto src = a_eq.col(static_cast<std::size_t>(s));
    std::copy(src.begin(), src.end(), h.at(s).begin());
    v.at(s)[static_cast<std::size_t>(s)] = 1.0;
  }
  if (options.cache_norms) {
    for (int s = 0; s < n; ++s) hsq[static_cast<std::size_t>(s)] = sumsq_robust(h.at(s));
    counters.add_norm_refresh(static_cast<std::size_t>(n));
  }

  DistributedResult out;
  out.cost.transitions_using_level.assign(static_cast<std::size_t>(topology.levels()) + 1, 0);
  out.cost.words_per_level.assign(static_cast<std::size_t>(topology.levels()) + 1, 0.0);
  const double rot_time =
      params.flops_per_rotation_per_row * params.words_per_column * params.flop_time;

  std::vector<int> layout(index_at_slot);
  ConvergenceWatchdog watchdog(recovery.watchdog_sweeps);
  StallDetector stall(options.stall_window);
  std::uint64_t comm_op = 0;  // executed communication steps (kill ordinal)
  std::optional<MachineCheckpoint> checkpoint;
  int start_sweep = 0;

  // The machine is single-threaded, so a single latest sweep-boundary
  // snapshot is always globally consistent; a kill rolls the whole machine
  // back to it and the deterministic replay reproduces the interrupted run
  // bit-for-bit (the kill latch is one-shot, so the replay proceeds past it).
  for (;;) {
    try {
      for (int sweep = start_sweep; sweep < options.max_sweeps; ++sweep) {
        if (checkpointing && sweep % recovery.checkpoint_sweeps == 0) {
          MachineCheckpoint cp;
          cp.sweep = sweep;
          cp.h.reserve(static_cast<std::size_t>(n));
          cp.v.reserve(static_cast<std::size_t>(n));
          for (int s2 = 0; s2 < n; ++s2) {
            cp.h.emplace_back(h.at(s2).begin(), h.at(s2).end());
            cp.v.emplace_back(v.at(s2).begin(), v.at(s2).end());
          }
          cp.index_at_slot = index_at_slot;
          cp.layout = layout;
          cp.hsq = hsq;
          cp.kernels = counters.snapshot();
          cp.cost = out.cost;
          cp.delivered_messages = out.delivered_messages;
          cp.delivered_words = out.delivered_words;
          cp.rotations = out.svd.rotations;
          cp.swaps = out.svd.swaps;
          cp.sweeps = out.svd.sweeps;
          cp.comm_op = comm_op;
          cp.watchdog = watchdog;
          cp.stall = stall;
          checkpoint = std::move(cp);
          ++rec.checkpoints;
        }
        // Scheduled drift control, same cadence as the shared-memory driver's
        // NormCache refresh (a local re-reduction on every leaf, no messages).
        if (options.cache_norms && sweep > 0 && options.norm_recompute_sweeps > 0 &&
            sweep % options.norm_recompute_sweeps == 0) {
          for (int s2 = 0; s2 < n; ++s2)
            hsq[static_cast<std::size_t>(s2)] = sumsq_robust(h.at(s2));
          counters.add_norm_refresh(static_cast<std::size_t>(n));
        }
        const Sweep s = ordering.sweep_from(layout, sweep);
        // A sweep's opening layout may orient pairs within a leaf differently
        // from how the previous sweep deposited them (intra-leaf placement is
        // free); reconcile the slot buffers. Anything beyond an intra-leaf swap
        // would be an unscheduled transfer and is rejected.
        {
          const auto lay0 = s.layout(0);
          for (int leaf = 0; leaf < n / 2; ++leaf) {
            const int lo = 2 * leaf;
            const int hi = 2 * leaf + 1;
            if (lay0[static_cast<std::size_t>(lo)] == index_at_slot[static_cast<std::size_t>(lo)])
              continue;
            TREESVD_ASSERT(lay0[static_cast<std::size_t>(lo)] ==
                               index_at_slot[static_cast<std::size_t>(hi)] &&
                           lay0[static_cast<std::size_t>(hi)] ==
                               index_at_slot[static_cast<std::size_t>(lo)]);
            std::swap(index_at_slot[static_cast<std::size_t>(lo)],
                      index_at_slot[static_cast<std::size_t>(hi)]);
            h.swap_slots(lo, hi);
            v.swap_slots(lo, hi);
            std::swap(hsq[static_cast<std::size_t>(lo)], hsq[static_cast<std::size_t>(hi)]);
          }
        }
        std::size_t sweep_rot = 0;
        std::size_t sweep_swap = 0;
        for (int t = 0; t < s.steps(); ++t) {
          // Residency check: the schedule's layout must equal physical placement.
          const auto lay = s.layout(t);
          for (int slot = 0; slot < n; ++slot)
            TREESVD_ASSERT(lay[static_cast<std::size_t>(slot)] ==
                           index_at_slot[static_cast<std::size_t>(slot)]);

          // Compute phase: every active leaf rotates its resident pair.
          for (int leaf = 0; leaf < n / 2; ++leaf) {
            if (!s.leaf_active(t, leaf)) continue;
            int slot_lo = 2 * leaf;
            int slot_hi = 2 * leaf + 1;
            if (index_at_slot[static_cast<std::size_t>(slot_lo)] >
                index_at_slot[static_cast<std::size_t>(slot_hi)])
              std::swap(slot_lo, slot_hi);  // x = column of the smaller index
            detail::PairOutcome o;
            if (options.cache_norms) {
              // Payload guard: a corrupted travelling norm is detected here,
              // at its first use, and repaired by re-reducing the column.
              for (const int sl : {slot_lo, slot_hi}) {
                if (cached_norm_plausible(hsq[static_cast<std::size_t>(sl)])) continue;
                hsq[static_cast<std::size_t>(sl)] = sumsq_robust(h.at(sl));
                counters.add_norm_refresh();
                ++rec.norm_rereductions;
              }
              const auto co = detail::process_pair_columns_cached(
                  h.at(slot_lo), h.at(slot_hi), v.at(slot_lo), v.at(slot_hi),
                  hsq[static_cast<std::size_t>(slot_lo)], hsq[static_cast<std::size_t>(slot_hi)],
                  options, counters);
              hsq[static_cast<std::size_t>(slot_lo)] = co.app;
              hsq[static_cast<std::size_t>(slot_hi)] = co.aqq;
              o = co.outcome;
            } else {
              o = detail::process_pair_columns(h.at(slot_lo), h.at(slot_hi), v.at(slot_lo),
                                               v.at(slot_hi), options, &counters);
            }
            sweep_rot += o.rotated ? 1 : 0;
            sweep_swap += o.swapped ? 1 : 0;
          }
          out.cost.compute_time += rot_time;

          // Fault hook: the kill ordinal counts executed communication steps.
          if (injector && chaos->faults.kill_rank >= 0 &&
              injector->should_kill(chaos->faults.kill_rank, comm_op)) {
            ++rec.kills;
            throw mp::RankKilledError(chaos->faults.kill_rank, comm_op);
          }

          // Communication phase: route each inter-leaf move through the tree.
          const std::vector<ColumnMove> moves = s.moves(t);
          TrafficStep step(topology);
          for (const ColumnMove& mv : moves) {
            const int from = mv.from_slot / 2;
            const int to = mv.to_slot / 2;
            if (from == to) continue;
            step.add({from, to, params.words_per_column});
            out.cost.words_per_level[static_cast<std::size_t>(topology.route_level(from, to))] +=
                params.words_per_column;
            ++out.delivered_messages;
            out.delivered_words += params.words_per_column;
          }
          const StepTraffic st = step.finish(params.alpha);
          out.cost.comm_time += st.time;
          out.cost.comm_words += st.total_words;
          out.cost.messages += st.messages;
          out.cost.max_overload = std::max(out.cost.max_overload, st.max_overload);
          out.cost.max_contention = std::max(out.cost.max_contention, st.max_contention);
          ++out.cost.transitions_using_level[static_cast<std::size_t>(st.max_level)];

          // Deliver: physically relocate the columns (H, V and the cached norm
          // travel together, like the spmd engine's column payload).
          h.move_all(moves);
          v.move_all(moves);
          {
            std::vector<std::pair<int, double>> hsq_in_flight;
            hsq_in_flight.reserve(moves.size());
            for (const ColumnMove& mv : moves)
              hsq_in_flight.emplace_back(mv.to_slot, hsq[static_cast<std::size_t>(mv.from_slot)]);
            for (const auto& [to, sq] : hsq_in_flight) hsq[static_cast<std::size_t>(to)] = sq;
          }
          for (const ColumnMove& mv : moves)
            index_at_slot[static_cast<std::size_t>(mv.to_slot)] = mv.index;

          // Fault hook: corrupt a delivered column's travelling norm. The
          // decision hashes (src leaf, dst leaf, comm step, slot) with the
          // plan seed, so it is identical on every run and replay.
          if (injector && injector->plan().corrupt_prob > 0.0) {
            for (const ColumnMove& mv : moves) {
              const int from = mv.from_slot / 2;
              const int to = mv.to_slot / 2;
              if (from == to) continue;
              if (injector->action(from, to, comm_op,
                                   static_cast<std::uint64_t>(mv.to_slot)) !=
                  mp::FaultAction::kCorrupt)
                continue;
              hsq[static_cast<std::size_t>(mv.to_slot)] =
                  std::numeric_limits<double>::quiet_NaN();
              ++rec.corruptions_injected;
            }
          }
          ++comm_op;
        }
        const auto fin = s.final_layout();
        layout.assign(fin.begin(), fin.end());
        out.svd.rotations += sweep_rot;
        out.svd.swaps += sweep_swap;
        out.svd.sweeps = sweep + 1;
        if (sweep_rot == 0 && sweep_swap == 0) {
          out.svd.converged = true;
          break;
        }
        stall.observe(static_cast<double>(sweep_rot + sweep_swap));
        // Stagnation watchdog: activity stopped decreasing — re-reduce every
        // cached norm (the one repairable stagnation source) and keep going.
        if (watchdog.observe(static_cast<double>(sweep_rot + sweep_swap))) {
          if (options.cache_norms) {
            for (int s2 = 0; s2 < n; ++s2)
              hsq[static_cast<std::size_t>(s2)] = sumsq_robust(h.at(s2));
            counters.add_norm_refresh(static_cast<std::size_t>(n));
            rec.norm_rereductions += static_cast<std::size_t>(n);
          }
          ++rec.watchdog_trips;
          watchdog.reset();
        }
      }
      break;
    } catch (const mp::RankKilledError&) {
      if (!checkpoint.has_value() ||
          rec.rollbacks >= static_cast<std::size_t>(recovery.max_rollbacks))
        throw;
      ++rec.rollbacks;
      const MachineCheckpoint& cp = *checkpoint;
      for (int s2 = 0; s2 < n; ++s2) {
        std::copy(cp.h[static_cast<std::size_t>(s2)].begin(),
                  cp.h[static_cast<std::size_t>(s2)].end(), h.at(s2).begin());
        std::copy(cp.v[static_cast<std::size_t>(s2)].begin(),
                  cp.v[static_cast<std::size_t>(s2)].end(), v.at(s2).begin());
      }
      index_at_slot = cp.index_at_slot;
      layout = cp.layout;
      hsq = cp.hsq;
      counters.store(cp.kernels);
      out.cost = cp.cost;
      out.delivered_messages = cp.delivered_messages;
      out.delivered_words = cp.delivered_words;
      out.svd.rotations = cp.rotations;
      out.svd.swaps = cp.swaps;
      out.svd.sweeps = cp.sweeps;
      comm_op = cp.comm_op;
      watchdog = cp.watchdog;
      stall = cp.stall;
      start_sweep = cp.sweep;
    }
  }
  out.cost.total_time = out.cost.compute_time + out.cost.comm_time;
  out.svd.kernel_stats = counters.snapshot();
  out.svd.kernel_stats.isa_tier = static_cast<int>(resolved_isa());
  out.recovery = rec;

  // Gather: index i's column sits at the slot the final layout assigns it.
  std::vector<int> slot_of(static_cast<std::size_t>(n));
  for (int slot = 0; slot < n; ++slot)
    slot_of[static_cast<std::size_t>(index_at_slot[static_cast<std::size_t>(slot)])] = slot;

  out.svd.sigma.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    out.svd.sigma[static_cast<std::size_t>(i)] = nrm2(h.at(slot_of[static_cast<std::size_t>(i)]));
  const double smax = *std::max_element(out.svd.sigma.begin(), out.svd.sigma.end());

  out.svd.u = Matrix(rows, static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double sig = out.svd.sigma[static_cast<std::size_t>(i)];
    if (sig <= options.rank_tol * smax || sig == 0.0) continue;
    const auto src = h.at(slot_of[static_cast<std::size_t>(i)]);
    const auto dst = out.svd.u.col(static_cast<std::size_t>(i));
    for (std::size_t r = 0; r < rows; ++r) dst[r] = src[r] / sig;
  }
  if (options.compute_v) {
    out.svd.v = Matrix(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const auto src = v.at(slot_of[static_cast<std::size_t>(i)]);
      const auto dst = out.svd.v.col(static_cast<std::size_t>(i));
      std::copy(src.begin(), src.end(), dst.begin());
    }
  }
  // U was formed at the equilibrated scale (the 2^e factor cancels bitwise);
  // only sigma carries the scale and is undone exactly here.
  unscale_sigma(out.svd.sigma, eq);
  out.svd.status = out.svd.converged
                       ? SvdStatus::kConverged
                       : (stall.stalled() ? SvdStatus::kStalled : SvdStatus::kMaxSweeps);
  out.svd.diagnostics.input_scale = eq.stats;
  out.svd.diagnostics.equilibrated = eq.applied;
  out.svd.diagnostics.equilibration_exponent = eq.exponent;
  out.svd.diagnostics.stalled_sweeps = stall.streak();
  out.svd.diagnostics.watchdog_trips = rec.watchdog_trips;
  if (!out.svd.converged || options.full_diagnostics)
    assess_quality(a, out.svd, eq.exponent, options.rank_tol);
  return out;
}

}  // namespace treesvd
