#include "sim/machine.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace treesvd {

SweepCost analyze_sweep(const Sweep& sweep, const FatTreeTopology& topo,
                        const CostParams& params) {
  TREESVD_REQUIRE(sweep.leaves() == topo.leaves(),
                  "sweep leaf count must match the topology (one leaf per column pair)");
  SweepCost cost;
  cost.transitions_using_level.assign(static_cast<std::size_t>(topo.levels()) + 1, 0);
  cost.words_per_level.assign(static_cast<std::size_t>(topo.levels()) + 1, 0.0);

  const double rot_time =
      params.flops_per_rotation_per_row * params.words_per_column * params.flop_time;

  for (int t = 0; t < sweep.steps(); ++t) {
    // Compute: every active leaf performs one rotation, in parallel.
    cost.compute_time += rot_time;

    // Communication: the transition to the next layout (the final transition
    // hands the columns to the next sweep, so it is part of this sweep).
    TrafficStep step(topo);
    for (const ColumnMove& mv : sweep.moves(t)) {
      const int from = mv.from_slot / 2;
      const int to = mv.to_slot / 2;
      if (from == to) continue;
      step.add({from, to, params.words_per_column});
      cost.words_per_level[static_cast<std::size_t>(topo.route_level(from, to))] +=
          params.words_per_column;
    }
    const StepTraffic st = step.finish(params.alpha);
    cost.comm_time += st.time;
    cost.comm_words += st.total_words;
    cost.messages += st.messages;
    cost.max_overload = std::max(cost.max_overload, st.max_overload);
    cost.max_contention = std::max(cost.max_contention, st.max_contention);
    ++cost.transitions_using_level[static_cast<std::size_t>(st.max_level)];
  }
  cost.total_time = cost.compute_time + cost.comm_time;
  return cost;
}

ModeledRun model_run(const Ordering& ordering, const FatTreeTopology& topo, int n,
                     const CostParams& params, int sweeps) {
  TREESVD_REQUIRE(ordering.supports(n), "ordering does not support n");
  TREESVD_REQUIRE(n / 2 == topo.leaves(), "topology must have n/2 leaves");
  std::vector<int> layout(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) layout[static_cast<std::size_t>(i)] = i;

  ModeledRun run;
  run.per_sweep_total.transitions_using_level.assign(
      static_cast<std::size_t>(topo.levels()) + 1, 0);
  run.per_sweep_total.words_per_level.assign(static_cast<std::size_t>(topo.levels()) + 1, 0.0);
  for (int k = 0; k < sweeps; ++k) {
    const Sweep s = ordering.sweep_from(layout, k);
    const SweepCost c = analyze_sweep(s, topo, params);
    run.per_sweep_total.total_time += c.total_time;
    run.per_sweep_total.compute_time += c.compute_time;
    run.per_sweep_total.comm_time += c.comm_time;
    run.per_sweep_total.comm_words += c.comm_words;
    run.per_sweep_total.messages += c.messages;
    run.per_sweep_total.max_overload =
        std::max(run.per_sweep_total.max_overload, c.max_overload);
    run.per_sweep_total.max_contention =
        std::max(run.per_sweep_total.max_contention, c.max_contention);
    for (std::size_t l = 0; l < c.transitions_using_level.size(); ++l) {
      run.per_sweep_total.transitions_using_level[l] += c.transitions_using_level[l];
      run.per_sweep_total.words_per_level[l] += c.words_per_level[l];
    }
    const auto fin = s.final_layout();
    layout.assign(fin.begin(), fin.end());
    run.sweeps = k + 1;
  }
  return run;
}

}  // namespace treesvd
