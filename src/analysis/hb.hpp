#pragma once
// Vector-clock happens-before tracker for the concurrency analysis layer.
//
// The repo's strongest invariant — "threaded/SPMD bitwise == serial" — rests
// on every sweep step's rotation pairs being disjoint and every reduction
// applied in a fixed order. TSan can only check the schedules the OS happens
// to produce; this tracker checks the *logical* concurrency structure
// instead, so a race between two pool chunks is reported even when the host
// (e.g. a single-core CI runner) executes them back to back.
//
// Event model:
//  * Logical tasks, not OS threads, carry the vector clocks. Every ThreadPool
//    chunk and every mp rank program is a fresh task forked from its parent,
//    so sibling chunks are formally concurrent regardless of which worker — or
//    how many workers — actually ran them.
//  * Structural edges come from the instrumentation hooks (analysis/hooks.hpp)
//    in util/thread_pool and mp/message_passing: fork -> task_begin,
//    task_end -> join, channel send -> matching recv (FIFO per
//    (channel, src, dst, tag), mirroring the mailbox contract), and barrier
//    arrive -> depart keyed by the barrier's generation.
//  * Shared state is declared, not inferred: annotated accesses on
//    (object, index) locations with kinds read / write / atomic. Two accesses
//    race when neither happens-before the other and at least one is a plain
//    write (atomic-vs-atomic and read-vs-read are always fine; an annotated
//    plain write conflicts with *any* unordered access, which is exactly the
//    KernelCounters::store contract).
//
// Reports carry both access stacks: the logical-task frame chain (inherited
// across forks, so a chunk shows "sweep 3 step 1 / chunk [8,12)") plus the
// file:line of each annotation site.
//
// All tracker state lives behind one mutex; this is a debugging instrument,
// not a fast path — production builds compile the hooks to no-ops
// (TREESVD_ANALYSIS, see analysis/hooks.hpp).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace treesvd::analysis {

enum class AccessKind { kRead, kWrite, kAtomic };

const char* to_string(AccessKind kind) noexcept;

/// One recorded annotated access, as it appears in a race report.
struct AccessRecord {
  int task = -1;                    ///< logical task id
  std::uint64_t tick = 0;           ///< the task's clock component at the access
  AccessKind kind = AccessKind::kRead;
  std::string site;                 ///< "file:line" of the annotation
  std::vector<std::string> stack;   ///< task frame chain, outermost first
};

/// A pair of conflicting accesses with no happens-before order between them.
struct RaceReport {
  std::string object;   ///< annotation name, e.g. "NormCache"
  std::size_t index;    ///< element index within the object (column, slot, …)
  AccessRecord first;   ///< the earlier-recorded access
  AccessRecord second;  ///< the access that exposed the race
  std::string to_string() const;
};

/// Happens-before tracker. Install one (install_tracker / ScopedTracker) and
/// the hooks feed it; inspect reports() when the workload has joined.
/// Thread-safe; every public method may be called from any thread.
class Tracker {
 public:
  Tracker();
  ~Tracker();

  Tracker(const Tracker&) = delete;
  Tracker& operator=(const Tracker&) = delete;

  // ---- structural edges (driven by the hooks) ----

  /// Parent publishes its clock for tasks of (region, epoch).
  void fork(const void* region, std::uint64_t epoch);
  /// Starts a fresh logical task on the calling thread, clock-seeded from the
  /// matching fork; `frame` labels the task in reports.
  void task_begin(const void* region, std::uint64_t epoch, std::string frame);
  /// Ends the calling thread's current task, accumulating its clock into the
  /// (region, epoch) join set.
  void task_end(const void* region, std::uint64_t epoch);
  /// Parent absorbs the join set: everything the tasks did happens-before
  /// everything after the join.
  void join(const void* region, std::uint64_t epoch);

  /// FIFO channel edge: each send enqueues the sender's clock under
  /// (channel, src, dst, tag); the matching recv dequeues and merges it.
  void channel_send(const void* channel, int src, int dst, std::uint64_t tag);
  void channel_recv(const void* channel, int src, int dst, std::uint64_t tag);

  /// Barrier edge: every arrival merges into the (object, generation) clock,
  /// every departure absorbs it. Arrivals all precede departures by the
  /// barrier's own semantics.
  void barrier_arrive(const void* object, std::uint64_t generation);
  void barrier_depart(const void* object, std::uint64_t generation);

  // ---- annotated shared accesses ----

  /// Records an access to (object, index) and reports a race if it conflicts
  /// with a prior access not ordered by happens-before.
  void access(AccessKind kind, const void* object, std::size_t index, const char* object_name,
              const char* site);

  /// Pushes/pops a frame label on the current task (inherited across forks).
  void push_frame(std::string text);
  void pop_frame();

  // ---- results ----

  /// Distinct races found (deduplicated by location and site pair; at most
  /// kMaxReports are stored, race_count() keeps the true total).
  std::vector<RaceReport> reports() const;
  std::size_t race_count() const;
  std::size_t event_count() const;  ///< structural edges + accesses observed
  std::size_t task_count() const;   ///< logical tasks created

  static constexpr std::size_t kMaxReports = 64;

 private:
  struct Impl;
  Impl* impl_;
};

/// Returns the installed tracker, or nullptr (the hooks' fast path).
Tracker* tracker() noexcept;

/// Installs (or, with nullptr, removes) the process-global tracker. Do not
/// swap trackers while instrumented workloads are running.
void install_tracker(Tracker* t) noexcept;

/// RAII: constructs a tracker and installs it for the current scope.
class ScopedTracker {
 public:
  ScopedTracker() { install_tracker(&tracker_); }
  ~ScopedTracker() { install_tracker(nullptr); }
  ScopedTracker(const ScopedTracker&) = delete;
  ScopedTracker& operator=(const ScopedTracker&) = delete;
  Tracker* operator->() noexcept { return &tracker_; }
  Tracker& get() noexcept { return tracker_; }

 private:
  Tracker tracker_;
};

/// RAII frame label on the current task. The text is built lazily — the
/// factory runs only when a tracker is installed.
class ScopedFrame {
 public:
  template <typename Fn>
  explicit ScopedFrame(Fn&& make_text) {
    if (Tracker* t = tracker()) {
      t->push_frame(make_text());
      active_ = true;
    }
  }
  // NOLINTNEXTLINE(bugprone-exception-escape): pop_frame locks the tracker
  // mutex; lock failure means the tracker is already corrupt — terminate.
  ~ScopedFrame() {
    if (!active_) return;
    if (Tracker* t = tracker()) t->pop_frame();
  }
  ScopedFrame(const ScopedFrame&) = delete;
  ScopedFrame& operator=(const ScopedFrame&) = delete;

 private:
  bool active_ = false;
};

}  // namespace treesvd::analysis
