#include "analysis/hb.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <tuple>
#include <utility>

namespace treesvd::analysis {
namespace {

std::atomic<Tracker*> g_tracker{nullptr};

/// Monotonic instance ids let the thread-local task stacks detect a stale
/// owner even when a new Tracker reuses a dead one's address.
std::atomic<std::uint64_t> g_instance{0};

using Clock = std::vector<std::uint64_t>;

/// Components beyond a clock's length are zero (tasks created later).
std::uint64_t component(const Clock& c, std::size_t i) noexcept {
  return i < c.size() ? c[i] : 0;
}

void merge_into(Clock& dst, const Clock& src) {
  if (src.size() > dst.size()) dst.resize(src.size(), 0);
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = std::max(dst[i], src[i]);
}

struct ThreadState {
  std::uint64_t owner = 0;  ///< Tracker instance id the stack belongs to
  std::vector<int> stack;   ///< logical-task stack of this OS thread
};

ThreadState& thread_state() {
  thread_local ThreadState state;
  return state;
}

}  // namespace

const char* to_string(AccessKind kind) noexcept {
  switch (kind) {
    case AccessKind::kRead:
      return "read";
    case AccessKind::kWrite:
      return "write";
    case AccessKind::kAtomic:
      return "atomic";
  }
  return "?";
}

std::string RaceReport::to_string() const {
  const auto render = [](const AccessRecord& a) {
    std::string s = std::string(analysis::to_string(a.kind)) + " at " + a.site + " [task " +
                    std::to_string(a.task);
    for (const std::string& f : a.stack) s += " / " + f;
    s += "]";
    return s;
  };
  return "data race on " + object + "[" + std::to_string(index) + "]: " + render(first) + " vs " +
         render(second);
}

struct Tracker::Impl {
  struct Task {
    Clock clock;
    std::vector<std::string> frames;
  };
  struct ForkPoint {
    Clock clock;
    std::vector<std::string> frames;
  };
  struct Location {
    std::string name;
    bool has_write = false;
    AccessRecord write;                  ///< last plain write (clears the sets)
    std::map<int, AccessRecord> reads;   ///< last read per task since the write
    std::map<int, AccessRecord> atomics; ///< last atomic per task since the write
  };

  using Key = std::pair<const void*, std::uint64_t>;
  using ChannelKey = std::tuple<const void*, int, int, std::uint64_t>;

  mutable std::mutex mu;
  std::uint64_t id = 0;
  std::vector<Task> tasks;
  std::map<Key, ForkPoint> forks;
  std::map<Key, Clock> joins;
  std::map<Key, Clock> barriers;
  std::map<ChannelKey, std::deque<Clock>> channels;
  std::map<std::pair<const void*, std::size_t>, Location> locations;
  std::vector<RaceReport> races;
  std::set<std::tuple<const void*, std::size_t, std::string, std::string>> seen;
  std::size_t race_total = 0;
  std::size_t events = 0;

  int new_task(Clock clock, std::vector<std::string> frames) {
    const auto t = tasks.size();
    if (clock.size() <= t) clock.resize(t + 1, 0);
    clock[t] = 1;  // fresh component: nobody has seen this task yet
    tasks.push_back(Task{std::move(clock), std::move(frames)});
    return static_cast<int>(t);
  }

  /// The calling thread's current logical task, creating a root task on
  /// first contact (or after a tracker change).
  int current_task() {
    ThreadState& ts = thread_state();
    if (ts.owner != id) {
      ts.owner = id;
      ts.stack.clear();
    }
    if (ts.stack.empty()) ts.stack.push_back(new_task(Clock{}, {"thread root"}));
    return ts.stack.back();
  }

  Task& task(int t) { return tasks[static_cast<std::size_t>(t)]; }

  /// Advance a task's own component so accesses after a release point (fork,
  /// send, barrier arrival) are not mistaken for accesses before it.
  void tick(int t) {
    Task& tk = task(t);
    const auto i = static_cast<std::size_t>(t);
    if (tk.clock.size() <= i) tk.clock.resize(i + 1, 0);
    ++tk.clock[i];
  }

  bool ordered_before(const AccessRecord& a, int cur) {
    return a.tick <= component(task(cur).clock, static_cast<std::size_t>(a.task));
  }

  void report(const void* obj, std::size_t index, const Location& loc, const AccessRecord& prior,
              const AccessRecord& now) {
    ++race_total;
    if (!seen.insert({obj, index, prior.site, now.site}).second) return;
    if (races.size() >= Tracker::kMaxReports) return;
    races.push_back(RaceReport{loc.name, index, prior, now});
  }
};

Tracker::Tracker() : impl_(new Impl) { impl_->id = ++g_instance; }

Tracker::~Tracker() { delete impl_; }

void Tracker::fork(const void* region, std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const int cur = impl_->current_task();
  impl_->forks[{region, epoch}] =
      Impl::ForkPoint{impl_->task(cur).clock, impl_->task(cur).frames};
  impl_->tick(cur);
  ++impl_->events;
}

void Tracker::task_begin(const void* region, std::uint64_t epoch, std::string frame) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  ThreadState& ts = thread_state();
  if (ts.owner != impl_->id) {
    ts.owner = impl_->id;
    ts.stack.clear();
  }
  Clock clock;
  std::vector<std::string> frames;
  const auto it = impl_->forks.find({region, epoch});
  if (it != impl_->forks.end()) {
    clock = it->second.clock;
    frames = it->second.frames;
  } else if (!ts.stack.empty()) {
    // No fork seen (e.g. the region started before the tracker was
    // installed): inherit from the thread's current task.
    clock = impl_->task(ts.stack.back()).clock;
    frames = impl_->task(ts.stack.back()).frames;
  }
  frames.push_back(std::move(frame));
  ts.stack.push_back(impl_->new_task(std::move(clock), std::move(frames)));
  ++impl_->events;
}

void Tracker::task_end(const void* region, std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  ThreadState& ts = thread_state();
  if (ts.owner != impl_->id || ts.stack.empty()) return;  // tolerant: nothing to end
  const int t = ts.stack.back();
  merge_into(impl_->joins[{region, epoch}], impl_->task(t).clock);
  ts.stack.pop_back();
  ++impl_->events;
}

void Tracker::join(const void* region, std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const int cur = impl_->current_task();
  const auto it = impl_->joins.find({region, epoch});
  if (it != impl_->joins.end()) {
    merge_into(impl_->task(cur).clock, it->second);
    impl_->joins.erase(it);
  }
  impl_->forks.erase({region, epoch});
  ++impl_->events;
}

void Tracker::channel_send(const void* channel, int src, int dst, std::uint64_t tag) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const int cur = impl_->current_task();
  impl_->channels[{channel, src, dst, tag}].push_back(impl_->task(cur).clock);
  impl_->tick(cur);
  ++impl_->events;
}

void Tracker::channel_recv(const void* channel, int src, int dst, std::uint64_t tag) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const int cur = impl_->current_task();
  auto it = impl_->channels.find({channel, src, dst, tag});
  if (it != impl_->channels.end() && !it->second.empty()) {
    merge_into(impl_->task(cur).clock, it->second.front());
    it->second.pop_front();
  }
  ++impl_->events;
}

void Tracker::barrier_arrive(const void* object, std::uint64_t generation) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const int cur = impl_->current_task();
  merge_into(impl_->barriers[{object, generation}], impl_->task(cur).clock);
  impl_->tick(cur);
  ++impl_->events;
}

void Tracker::barrier_depart(const void* object, std::uint64_t generation) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const int cur = impl_->current_task();
  const auto it = impl_->barriers.find({object, generation});
  if (it != impl_->barriers.end()) merge_into(impl_->task(cur).clock, it->second);
  ++impl_->events;
}

void Tracker::access(AccessKind kind, const void* object, std::size_t index,
                     const char* object_name, const char* site) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const int cur = impl_->current_task();
  AccessRecord rec;
  rec.task = cur;
  rec.tick = component(impl_->task(cur).clock, static_cast<std::size_t>(cur));
  rec.kind = kind;
  rec.site = site;
  rec.stack = impl_->task(cur).frames;

  Impl::Location& loc = impl_->locations[{object, index}];
  if (loc.name.empty()) loc.name = object_name;

  const auto conflicts = [&](const AccessRecord& prior) {
    return prior.task != cur && !impl_->ordered_before(prior, cur);
  };

  if (kind == AccessKind::kWrite) {
    // A plain write conflicts with any unordered prior access of any kind.
    if (loc.has_write && conflicts(loc.write)) impl_->report(object, index, loc, loc.write, rec);
    for (const auto& entry : loc.reads)
      if (conflicts(entry.second)) impl_->report(object, index, loc, entry.second, rec);
    for (const auto& entry : loc.atomics)
      if (conflicts(entry.second)) impl_->report(object, index, loc, entry.second, rec);
    loc.reads.clear();
    loc.atomics.clear();
    loc.write = std::move(rec);
    loc.has_write = true;
  } else {
    // Reads and atomics conflict only with an unordered plain write.
    if (loc.has_write && conflicts(loc.write)) impl_->report(object, index, loc, loc.write, rec);
    auto& slot = kind == AccessKind::kRead ? loc.reads : loc.atomics;
    slot[cur] = std::move(rec);
  }
  ++impl_->events;
}

void Tracker::push_frame(std::string text) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->task(impl_->current_task()).frames.push_back(std::move(text));
}

void Tracker::pop_frame() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& frames = impl_->task(impl_->current_task()).frames;
  if (!frames.empty()) frames.pop_back();
}

std::vector<RaceReport> Tracker::reports() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->races;
}

std::size_t Tracker::race_count() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->race_total;
}

std::size_t Tracker::event_count() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->events;
}

std::size_t Tracker::task_count() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->tasks.size();
}

Tracker* tracker() noexcept { return g_tracker.load(std::memory_order_acquire); }

void install_tracker(Tracker* t) noexcept { g_tracker.store(t, std::memory_order_release); }

}  // namespace treesvd::analysis
