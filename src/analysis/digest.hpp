#pragma once
// Bitwise digests for the determinism oracle.
//
// FNV-1a 64 over exact bit patterns: two SvdResults digest equal iff every
// covered field is bit-identical, which is precisely the repo's
// "threaded/SPMD == serial" contract (no tolerance, no rounding slack).
// Doubles are hashed via their IEEE-754 bit images, so -0.0 != +0.0 and every
// NaN payload is distinguished — a digest match is the strongest possible
// equality claim.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

namespace treesvd::analysis {

class Fnv1a {
 public:
  void add_bytes(const void* data, std::size_t size) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      h_ ^= p[i];
      h_ *= 0x100000001b3ULL;
    }
  }

  void add_u64(std::uint64_t v) noexcept { add_bytes(&v, sizeof(v)); }

  void add_double(double d) noexcept {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    add_u64(bits);
  }

  void add_doubles(std::span<const double> values) noexcept {
    for (const double d : values) add_double(d);
  }

  std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

}  // namespace treesvd::analysis
