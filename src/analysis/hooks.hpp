#pragma once
// Instrumentation hooks for the concurrency analysis layer.
//
// Call sites in util/thread_pool, mp/message_passing, svd and linalg use
// these macros to feed the happens-before tracker (analysis/hb.hpp) and the
// schedule fuzzer (analysis/fuzz.hpp). The whole layer is compile-time
// gated:
//
//  * TREESVD_ANALYSIS unset or 0 (the default Release configuration): every
//    macro expands to ((void)0) and this header includes nothing — the
//    instrumented code is bit-for-bit the uninstrumented code.
//  * TREESVD_ANALYSIS=1 (-DTREESVD_ANALYSIS=ON at configure time, and the
//    default for Debug/RelWithDebInfo): each hook is a null check on a global
//    atomic pointer — a couple of instructions when no tracker/fuzzer is
//    installed, full tracking when one is.
//
// Hook vocabulary (obj/epoch identify a fork-join region instance; see
// hb.hpp for the event model):
//   TREESVD_HB_FORK(obj, epoch)               parent publishes its clock
//   TREESVD_HB_TASK_BEGIN(obj, epoch, frame)  a forked task starts here
//   TREESVD_HB_TASK_END(obj, epoch)           ... and ends here
//   TREESVD_HB_JOIN(obj, epoch)               parent absorbs all task clocks
//   TREESVD_HB_SEND/RECV(chan, src, dst, tag) FIFO message edge
//   TREESVD_HB_BARRIER_ARRIVE/DEPART(obj, gen) barrier edge
//   TREESVD_HB_READ/WRITE/ATOMIC(obj, idx, name) annotated shared access
//   TREESVD_HB_SCOPED_FRAME(var, factory)     RAII report-stack label
//   TREESVD_FUZZ_POINT(kind, a, b, c)         seeded yield injection
//   TREESVD_FUZZ_CHUNK_ORDER(vec, count)      seeded chunk permutation

#if defined(TREESVD_ANALYSIS) && TREESVD_ANALYSIS

#include "analysis/fuzz.hpp"
#include "analysis/hb.hpp"

#define TREESVD_ANALYSIS_STR_(x) #x
#define TREESVD_ANALYSIS_STR(x) TREESVD_ANALYSIS_STR_(x)
#define TREESVD_HB_SITE __FILE__ ":" TREESVD_ANALYSIS_STR(__LINE__)

#define TREESVD_HB_FORK(obj, epoch)                                 \
  do {                                                              \
    if (auto* t_ = ::treesvd::analysis::tracker()) t_->fork((obj), (epoch)); \
  } while (0)

#define TREESVD_HB_TASK_BEGIN(obj, epoch, frame)                    \
  do {                                                              \
    if (auto* t_ = ::treesvd::analysis::tracker())                  \
      t_->task_begin((obj), (epoch), (frame));                      \
  } while (0)

#define TREESVD_HB_TASK_END(obj, epoch)                             \
  do {                                                              \
    if (auto* t_ = ::treesvd::analysis::tracker()) t_->task_end((obj), (epoch)); \
  } while (0)

#define TREESVD_HB_JOIN(obj, epoch)                                 \
  do {                                                              \
    if (auto* t_ = ::treesvd::analysis::tracker()) t_->join((obj), (epoch)); \
  } while (0)

#define TREESVD_HB_SEND(chan, src, dst, tag)                        \
  do {                                                              \
    if (auto* t_ = ::treesvd::analysis::tracker())                  \
      t_->channel_send((chan), (src), (dst), (tag));                \
  } while (0)

#define TREESVD_HB_RECV(chan, src, dst, tag)                        \
  do {                                                              \
    if (auto* t_ = ::treesvd::analysis::tracker())                  \
      t_->channel_recv((chan), (src), (dst), (tag));                \
  } while (0)

#define TREESVD_HB_BARRIER_ARRIVE(obj, generation)                  \
  do {                                                              \
    if (auto* t_ = ::treesvd::analysis::tracker())                  \
      t_->barrier_arrive((obj), (generation));                      \
  } while (0)

#define TREESVD_HB_BARRIER_DEPART(obj, generation)                  \
  do {                                                              \
    if (auto* t_ = ::treesvd::analysis::tracker())                  \
      t_->barrier_depart((obj), (generation));                      \
  } while (0)

#define TREESVD_HB_READ(obj, idx, name)                             \
  do {                                                              \
    if (auto* t_ = ::treesvd::analysis::tracker())                  \
      t_->access(::treesvd::analysis::AccessKind::kRead, (obj), (idx), (name), TREESVD_HB_SITE); \
  } while (0)

#define TREESVD_HB_WRITE(obj, idx, name)                            \
  do {                                                              \
    if (auto* t_ = ::treesvd::analysis::tracker())                  \
      t_->access(::treesvd::analysis::AccessKind::kWrite, (obj), (idx), (name), TREESVD_HB_SITE); \
  } while (0)

#define TREESVD_HB_ATOMIC(obj, idx, name)                           \
  do {                                                              \
    if (auto* t_ = ::treesvd::analysis::tracker())                  \
      t_->access(::treesvd::analysis::AccessKind::kAtomic, (obj), (idx), (name), TREESVD_HB_SITE); \
  } while (0)

#define TREESVD_HB_SCOPED_FRAME(var, ...) ::treesvd::analysis::ScopedFrame var(__VA_ARGS__)

#define TREESVD_FUZZ_POINT(kind, a, b, c)                           \
  do {                                                              \
    if (auto* f_ = ::treesvd::analysis::fuzzer()) f_->perturb((kind), (a), (b), (c)); \
  } while (0)

#define TREESVD_FUZZ_CHUNK_ORDER(vec, count)                        \
  do {                                                              \
    auto* f_ = ::treesvd::analysis::fuzzer();                       \
    if (f_ != nullptr && f_->plan().permute_chunks)                 \
      f_->chunk_permutation((count), (vec));                        \
    else                                                            \
      (vec).clear();                                                \
  } while (0)

#else  // !TREESVD_ANALYSIS: everything compiles away.

#define TREESVD_HB_FORK(obj, epoch) ((void)0)
#define TREESVD_HB_TASK_BEGIN(obj, epoch, frame) ((void)0)
#define TREESVD_HB_TASK_END(obj, epoch) ((void)0)
#define TREESVD_HB_JOIN(obj, epoch) ((void)0)
#define TREESVD_HB_SEND(chan, src, dst, tag) ((void)0)
#define TREESVD_HB_RECV(chan, src, dst, tag) ((void)0)
#define TREESVD_HB_BARRIER_ARRIVE(obj, generation) ((void)0)
#define TREESVD_HB_BARRIER_DEPART(obj, generation) ((void)0)
#define TREESVD_HB_READ(obj, idx, name) ((void)0)
#define TREESVD_HB_WRITE(obj, idx, name) ((void)0)
#define TREESVD_HB_ATOMIC(obj, idx, name) ((void)0)
#define TREESVD_HB_SCOPED_FRAME(var, ...) ((void)0)
#define TREESVD_FUZZ_POINT(kind, a, b, c) ((void)0)
#define TREESVD_FUZZ_CHUNK_ORDER(vec, count) ((void)0)

#endif  // TREESVD_ANALYSIS
