#include "analysis/fuzz.hpp"

#include <thread>

namespace treesvd::analysis {
namespace {

std::atomic<ScheduleFuzzer*> g_fuzzer{nullptr};

/// Uniform draw in [0, 1) from a hash (the mp/fault idiom: 53 mantissa bits).
double unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

void ScheduleFuzzer::perturb(std::uint64_t kind, std::uint64_t a, std::uint64_t b,
                             std::uint64_t c) {
  decisions_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t h = mix64(plan_.seed ^ mix64(kind));
  h = mix64(h ^ a);
  h = mix64(h ^ b);
  h = mix64(h ^ c);
  if (unit(h) >= plan_.yield_prob || plan_.max_yields <= 0) return;
  const int n = 1 + static_cast<int>(mix64(h) % static_cast<std::uint64_t>(plan_.max_yields));
  for (int i = 0; i < n; ++i) {
    yields_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::yield();
  }
}

void ScheduleFuzzer::chunk_permutation(std::size_t count, std::vector<std::uint32_t>& out) {
  out.resize(count);
  for (std::size_t i = 0; i < count; ++i) out[i] = static_cast<std::uint32_t>(i);
  if (count < 2) return;
  // Seeded Fisher-Yates; the call counter gives each parallel_for of a run
  // its own permutation while staying a pure function of (seed, call index).
  const std::uint64_t call = permutations_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t h = mix64(plan_.seed ^ mix64(call + 0x5eedULL));
  for (std::size_t i = count - 1; i > 0; --i) {
    h = mix64(h);
    const std::size_t j = static_cast<std::size_t>(h % (i + 1));
    const std::uint32_t tmp = out[i];
    out[i] = out[j];
    out[j] = tmp;
  }
}

ScheduleFuzzer* fuzzer() noexcept { return g_fuzzer.load(std::memory_order_acquire); }

void install_fuzzer(ScheduleFuzzer* f) noexcept {
  g_fuzzer.store(f, std::memory_order_release);
}

}  // namespace treesvd::analysis
