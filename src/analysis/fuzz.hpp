#pragma once
// Seeded PCT-style schedule fuzzer for the concurrency analysis layer.
//
// A FuzzPlan is a *schedule*, not a dice roll (the mp/fault idiom): every
// perturbation decision is a pure splitmix64 hash of the decision's identity
// mixed with the plan's seed, so two runs with the same seed perturb the
// schedule identically. Two perturbations are applied:
//
//  * Chunk-order permutation — ThreadPool::parallel_for claims chunks through
//    a seeded Fisher-Yates permutation instead of ascending order, so a
//    reduction that silently depends on "chunk 0 finishes first" diverges
//    even on a single-core host.
//  * Yield injection — transport and pool scheduling points
//    (TREESVD_FUZZ_POINT) insert 0..max_yields std::this_thread::yield()s,
//    shaking real interleavings loose the way PCT's priority
//    lowering does.
//
// Both are inert unless a fuzzer is installed; production builds compile the
// hooks away entirely (TREESVD_ANALYSIS, see analysis/hooks.hpp).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace treesvd::analysis {

/// Decision-point kinds mixed into the hash so each site draws from an
/// independent stream.
inline constexpr std::uint64_t kFuzzPoolChunk = 1;  ///< pool chunk about to run
inline constexpr std::uint64_t kFuzzMpSend = 2;     ///< before a transport send
inline constexpr std::uint64_t kFuzzMpRecv = 3;     ///< before a transport recv
inline constexpr std::uint64_t kFuzzMpSync = 4;     ///< before barrier/allreduce

/// splitmix64 finalizer — the repo's standard deterministic hash
/// (mp/fault.cpp uses the same constants for fault decisions).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct FuzzPlan {
  std::uint64_t seed = 1;      ///< mixes into every decision
  double yield_prob = 0.5;     ///< probability a fuzz point yields at all
  int max_yields = 3;          ///< yields per firing point: 1..max_yields
  bool permute_chunks = true;  ///< permute ThreadPool chunk claim order
};

/// Installed fuzzer handle; all methods are thread-safe and deterministic in
/// (plan, call identity).
class ScheduleFuzzer {
 public:
  explicit ScheduleFuzzer(const FuzzPlan& plan) : plan_(plan) {}

  const FuzzPlan& plan() const noexcept { return plan_; }

  /// Maybe injects yields at a decision point identified by (kind, a, b, c).
  void perturb(std::uint64_t kind, std::uint64_t a, std::uint64_t b, std::uint64_t c);

  /// Fills `out` with a seeded permutation of [0, count); successive calls
  /// draw fresh permutations (a per-fuzzer call counter feeds the hash).
  void chunk_permutation(std::size_t count, std::vector<std::uint32_t>& out);

  std::size_t decisions() const noexcept { return decisions_.load(std::memory_order_relaxed); }
  std::size_t yields() const noexcept { return yields_.load(std::memory_order_relaxed); }

 private:
  FuzzPlan plan_;
  std::atomic<std::uint64_t> permutations_{0};
  std::atomic<std::size_t> decisions_{0};
  std::atomic<std::size_t> yields_{0};
};

/// Returns the installed fuzzer, or nullptr (the hooks' fast path).
ScheduleFuzzer* fuzzer() noexcept;

/// Installs (or, with nullptr, removes) the process-global fuzzer. Do not
/// swap fuzzers while instrumented workloads are running.
void install_fuzzer(ScheduleFuzzer* f) noexcept;

/// RAII: constructs a fuzzer from a plan and installs it for the scope.
class ScopedFuzzer {
 public:
  explicit ScopedFuzzer(const FuzzPlan& plan) : fuzzer_(plan) { install_fuzzer(&fuzzer_); }
  ~ScopedFuzzer() { install_fuzzer(nullptr); }
  ScopedFuzzer(const ScopedFuzzer&) = delete;
  ScopedFuzzer& operator=(const ScopedFuzzer&) = delete;
  ScheduleFuzzer* operator->() noexcept { return &fuzzer_; }
  ScheduleFuzzer& get() noexcept { return fuzzer_; }

 private:
  ScheduleFuzzer fuzzer_;
};

}  // namespace treesvd::analysis
