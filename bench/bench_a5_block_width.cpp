// Ablation A5: block width for the block one-sided Jacobi (the direction of
// the paper's reference [1] and the blocks of its Section 5). Wider blocks
// mean fewer, larger messages (latency amortised) and fewer outer sweeps, at
// the cost of redundant intra-panel work.
#include <cstdio>

#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "sim/machine.hpp"
#include "svd/block_jacobi.hpp"
#include "util/table.hpp"

int main() {
  using namespace treesvd;
  std::printf("A5 — block-width ablation (128x64 Gaussian, round-robin at block level)\n\n");

  Rng rng(515);
  const Matrix a = random_gaussian(128, 64, rng);
  const auto ord = make_ordering("round-robin");

  Table t({"block width", "blocks", "outer sweeps", "rotations", "modeled comm (cm5)",
           "messages"});
  for (int width : {1, 2, 4, 8, 16}) {
    BlockJacobiOptions opt;
    opt.block_width = width;
    const SvdResult r = block_one_sided_jacobi(a, *ord, opt);
    const int blocks = 64 / width;
    // Model the block-level communication: words per "column" = width * m.
    double comm = 0.0;
    std::size_t msgs = 0;
    if (blocks >= 4 && ord->supports(blocks)) {
      const FatTreeTopology topo(blocks / 2, CapacityProfile::kCm5);
      CostParams p;
      p.words_per_column = 128.0 * width;
      const auto run = model_run(*ord, topo, blocks, p, r.sweeps);
      comm = run.per_sweep_total.comm_time;
      msgs = run.per_sweep_total.messages;
    }
    t.row()
        .cell(static_cast<long long>(width))
        .cell(static_cast<long long>(blocks))
        .cell(static_cast<long long>(r.sweeps))
        .cell(r.rotations)
        .cell(comm, 0)
        .cell(msgs);
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "Shape: outer sweeps fall sharply with width (each encounter does more\n"
      "work locally); message count falls quadratically; total rotations rise\n"
      "(redundant intra-panel orthogonalisation) — the classical compute-for-\n"
      "latency trade of blocked Jacobi on high-latency machines.\n");
  return 0;
}
