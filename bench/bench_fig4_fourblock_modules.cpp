// Figure 4 reproduction: the two basic modules for the four-block ordering.
// Variant (a) keeps the index order and always has the smaller index on the
// left; variant (b) reverses indices 3,4 each sweep.
#include <cstdio>

#include "bench_common.hpp"
#include "core/fat_tree.hpp"

int main() {
  using namespace treesvd;
  using namespace treesvd::bench;

  const std::vector<int> ids = {0, 1, 2, 3};
  for (auto [variant, name] :
       {std::pair{FourBlockVariant::kOrderPreserving, "Fig 4(a): order-preserving module"},
        std::pair{FourBlockVariant::kSwapping, "Fig 4(b): swapping module"}}) {
    heading(name);
    const BlockRows br = four_block_module(ids, variant);
    for (std::size_t t = 0; t < br.rows.size(); ++t) {
      const auto& row = br.rows[t];
      std::printf("  step %zu: (%d %d) (%d %d)%s\n", t + 1, row[0] + 1, row[1] + 1, row[2] + 1,
                  row[3] + 1,
                  (variant == FourBlockVariant::kOrderPreserving && t == 2)
                      ? "   <- pair swapped via fused rotation, eq. (3)"
                      : "");
    }
    std::printf("  after sweep : %d %d %d %d\n", br.final_layout[0] + 1, br.final_layout[1] + 1,
                br.final_layout[2] + 1, br.final_layout[3] + 1);
    const BlockRows twice = four_block_module(br.final_layout, variant);
    std::printf("  after two   : %d %d %d %d\n", twice.final_layout[0] + 1,
                twice.final_layout[1] + 1, twice.final_layout[2] + 1, twice.final_layout[3] + 1);
  }

  std::printf(
      "\nVariant (a) keeps the left index of every pair smaller, so storing the"
      "\nlarger-norm column on the left yields nonincreasing singular values.\n");
  return 0;
}
