// Ablation A6: QR preconditioning for tall matrices. Rotating length-m
// columns costs O(m) per rotation; factoring A = QR first makes every Jacobi
// rotation O(n) regardless of m.
#include <cstdio>

#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "svd/jacobi.hpp"
#include "svd/preconditioned.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace treesvd;
  std::printf("A6 — QR preconditioning (n = 48 columns, growing row count)\n\n");

  const auto ord = make_ordering("fat-tree");
  Table t({"m", "direct ms", "qr+jacobi ms", "speedup", "max sigma diff"});
  for (std::size_t m : {48u, 96u, 192u, 384u, 768u, 1536u}) {
    Rng rng(616);
    const Matrix a = random_gaussian(m, 48, rng);
    Timer td;
    const SvdResult direct = one_sided_jacobi(a, *ord);
    const double direct_ms = td.millis();
    Timer tp;
    const SvdResult pre = qr_preconditioned_jacobi(a, *ord);
    const double pre_ms = tp.millis();
    double diff = 0.0;
    for (std::size_t k = 0; k < direct.sigma.size(); ++k)
      diff = std::max(diff, std::abs(direct.sigma[k] - pre.sigma[k]));
    char diffbuf[32];
    std::snprintf(diffbuf, sizeof diffbuf, "%.2e", diff);
    t.row()
        .cell(static_cast<long long>(m))
        .cell(direct_ms, 1)
        .cell(pre_ms, 1)
        .cell(direct_ms / pre_ms, 2)
        .cell(diffbuf);
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "Shape: direct cost grows linearly with m while the preconditioned cost is\n"
      "dominated by the one-off QR, so the speedup grows with the aspect ratio;\n"
      "singular values agree to roundoff.\n");
  return 0;
}
