// Ablation A2: the hybrid ordering's single knob — the group count (block
// size). More groups = smaller blocks = less channel load at the skinny
// levels but more global super-steps. Sweeps the knob over all topologies.
#include <cstdio>

#include "core/hybrid.hpp"
#include "core/validate.hpp"
#include "sim/machine.hpp"
#include "util/table.hpp"

int main() {
  using namespace treesvd;
  std::printf("A2 — hybrid ordering group-count ablation (n = 256, P = 128)\n\n");
  const int n = 256;

  Table t({"groups", "block", "global transitions", "contention cm5", "time perfect",
           "time binary", "time cm5"});
  for (int groups = 2; groups * 4 <= n; groups *= 2) {
    const HybridOrdering h(groups);
    if (!h.supports(n)) continue;
    const Sweep s = h.sweep(n);
    int top = 0;
    for (int lv = s.leaves(); lv > 1; lv /= 2) ++top;
    int globals = 0;
    for (int step = 0; step < s.steps(); ++step) {
      int deepest = 0;
      for (const ColumnMove& mv : s.moves(step))
        deepest = std::max(deepest, comm_level(mv.from_slot, mv.to_slot));
      if (deepest == top) ++globals;
    }
    t.row()
        .cell(static_cast<long long>(groups))
        .cell(static_cast<long long>(n / groups / 2))
        .cell(static_cast<long long>(globals));
    CostParams p;
    p.words_per_column = static_cast<double>(n);
    double cm5_cont = 0.0;
    std::vector<double> times;
    for (auto prof :
         {CapacityProfile::kCm5, CapacityProfile::kPerfect, CapacityProfile::kConstant}) {
      const FatTreeTopology topo(n / 2, prof);
      const auto run = model_run(h, topo, n, p, 1);
      if (prof == CapacityProfile::kCm5) {
        cm5_cont = run.per_sweep_total.max_contention;
        times.push_back(run.per_sweep_total.total_time);  // cm5 last below
      } else {
        times.push_back(run.per_sweep_total.total_time);
      }
    }
    // times order collected: cm5, perfect, binary -> print perfect, binary, cm5
    t.cell(cm5_cont, 2).cell(times[1], 0).cell(times[2], 0).cell(times[0], 0);
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "Shape: contention halves as groups double until the blocks fit the skinny\n"
      "channels; past that point extra groups only add global transitions. The\n"
      "sweet spot depends on the capacity profile — exactly the tuning the paper\n"
      "describes ('we may properly choose the block size').\n");
  return 0;
}
