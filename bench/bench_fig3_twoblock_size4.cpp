// Figure 3 reproduction: the two-block ordering of size 4 — blocks {1..4}(1)
// and {1..4}(2); divide and conquer with a level-2 exchange between the two
// super-steps.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "core/fat_tree.hpp"
#include "core/validate.hpp"

int main() {
  using namespace treesvd;
  using namespace treesvd::bench;

  heading("Fig 3: two-block ordering of size 4");
  const std::vector<int> x = {0, 1, 2, 3};  // block 1: 1(1)..4(1)
  const std::vector<int> y = {4, 5, 6, 7};  // block 2: 1(2)..4(2)
  const BlockRows br = two_block_rows(x, y);
  auto blk = [](int idx) {
    return std::to_string(idx % 4 + 1) + "(" + std::to_string(idx / 4 + 1) + ")";
  };
  std::vector<int> prev;
  for (std::size_t t = 0; t < br.rows.size(); ++t) {
    const auto& row = br.rows[t];
    std::printf("  step %zu: ", t + 1);
    for (std::size_t k = 0; 2 * k + 1 < row.size(); ++k)
      std::printf("(%s %s) ", blk(row[2 * k]).c_str(), blk(row[2 * k + 1]).c_str());
    if (!prev.empty()) {
      // deepest slot movement between prev and row
      int deepest = 0;
      std::vector<int> slot_of(8);
      for (std::size_t s = 0; s < prev.size(); ++s) slot_of[static_cast<std::size_t>(prev[s])] = static_cast<int>(s);
      for (std::size_t s = 0; s < row.size(); ++s)
        deepest = std::max(deepest, comm_level(slot_of[static_cast<std::size_t>(row[s])], static_cast<int>(s)));
      std::printf(" [entered via level-%d exchange]", deepest);
    }
    std::printf("\n");
    prev = row;
  }
  std::printf("  after sweep: ");
  for (int idx : br.final_layout) std::printf("%s ", blk(idx).c_str());
  std::printf("\n");
  std::printf(
      "\nAll 16 cross pairs generated in 4 steps; the two sub-blocks of block 2"
      "\nend exchanged (halves (1,2) and (3,4) swapped), each internally in"
      "\norder, exactly as Section 3.1.2 requires.\n");
  return 0;
}
