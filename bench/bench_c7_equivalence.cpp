// Claim C7 (Definition 1): the new ring ordering (and its modified variant)
// is equivalent to the round-robin ordering under a relabelling of indices,
// hence inherits its convergence behaviour.
#include <cstdio>

#include "core/new_ring.hpp"
#include "core/round_robin.hpp"
#include "core/validate.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace treesvd;
  std::printf("C7 — equivalence of ring orderings to round-robin (Definition 1)\n\n");

  Table table({"n", "new-ring ~ RR", "modified ~ RR", "search time (ms)"});
  for (int n : {8, 16, 32, 64, 128}) {
    const Sweep rr = RoundRobinOrdering().sweep(n);
    Timer timer;
    const auto l1 = find_equivalence_relabelling(NewRingOrdering().sweep(n), rr);
    const auto l2 = find_equivalence_relabelling(ModifiedRingOrdering().sweep(n), rr);
    table.row()
        .cell(static_cast<long long>(n))
        .cell(l1 ? "equivalent" : "NO")
        .cell(l2 ? "equivalent" : "NO")
        .cell(timer.millis(), 1);
  }
  std::printf("%s\n", table.str().c_str());

  // Show one relabelling explicitly (n = 8), matching the fold construction
  // of Section 4: swap within the left-half pairs, fold the halves together.
  const auto lam =
      find_equivalence_relabelling(NewRingOrdering().sweep(8), RoundRobinOrdering().sweep(8));
  if (lam) {
    std::printf("relabelling for n = 8 (new-ring -> round-robin): ");
    for (std::size_t i = 0; i < lam->size(); ++i)
      std::printf("%zu->%d ", i + 1, (*lam)[i] + 1);
    std::printf("\n");
  }
  return 0;
}
