// Figure 2 reproduction: the basic module of the two-block ordering — blocks
// of two indices, each index of block 1 meets each index of block 2 in two
// steps with only level-one communication.
#include <cstdio>

#include "bench_common.hpp"
#include "core/fat_tree.hpp"

int main() {
  using namespace treesvd;
  using namespace treesvd::bench;

  heading("Fig 2: basic module for the two-block ordering");
  // Indices 1(1), 2(1) in block 1 and 1(2), 2(2) in block 2 (paper notation);
  // internally: 0,1 = block 1 and 2,3 = block 2.
  const BlockRows br = two_block_rows(std::vector<int>{0, 1}, std::vector<int>{2, 3});
  auto blk = [](int idx) { return std::to_string(idx % 2 + 1) + "(" + std::to_string(idx / 2 + 1) + ")"; };
  for (std::size_t t = 0; t < br.rows.size(); ++t) {
    const auto& row = br.rows[t];
    std::printf("  step %zu: ", t + 1);
    for (std::size_t k = 0; 2 * k + 1 < row.size(); ++k)
      std::printf("(%s %s) ", blk(row[2 * k]).c_str(), blk(row[2 * k + 1]).c_str());
    std::printf("  level %s\n", t + 1 < br.rows.size() ? "1" : "1 (restore)");
  }
  std::printf("  after sweep: ");
  for (int idx : br.final_layout) std::printf("%s ", blk(idx).c_str());
  std::printf("\n");
  std::printf(
      "\nBlock 2 is the rotating block: its two indices have exchanged places"
      "\nafter the sweep; repeating the module restores the original order.\n");
  const BlockRows again =
      two_block_rows(std::vector<int>{br.final_layout[0], br.final_layout[2]},
                     std::vector<int>{br.final_layout[1], br.final_layout[3]});
  std::printf("  after second sweep: ");
  for (int idx : again.final_layout) std::printf("%s ", blk(idx).c_str());
  std::printf("\n");
  return 0;
}
