// Ablation A8: why the paper prefers the one-sided Hestenes method (Section
// 1, "the best approach may be to adopt the Hestenes one-sided transformation
// method [7] as advocated in [2]"). The two-sided Kogbetliantz iteration of
// [2]'s arrays must rotate rows AND columns: on a column-distributed machine
// every rotation needs the pair's rows gathered across all processors (or a
// two-dimensional data layout with twice the exchanges). Here: convergence is
// comparable, but the per-sweep data that must cross the machine doubles.
#include <cstdio>

#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "svd/jacobi.hpp"
#include "svd/kogbetliantz.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace treesvd;
  std::printf("A8 — one-sided Hestenes vs two-sided Kogbetliantz (square matrices)\n\n");

  Table t({"n", "ordering", "sweeps 1-sided", "sweeps 2-sided", "wall ms 1-sided",
           "wall ms 2-sided", "words moved/rotation"});
  for (int n : {32, 64, 128}) {
    for (const char* name : {"fat-tree", "new-ring"}) {
      Rng rng(1001);
      const Matrix a = random_gaussian(static_cast<std::size_t>(n), static_cast<std::size_t>(n),
                                       rng);
      const auto ord = make_ordering(name);
      Timer t1;
      const SvdResult one = one_sided_jacobi(a, *ord);
      const double ms1 = t1.millis();
      Timer t2;
      const KogbetliantzResult two = kogbetliantz_svd(a, *ord);
      const double ms2 = t2.millis();
      // Data touched per rotation: one-sided reads/writes two columns (2m);
      // two-sided reads/writes two rows AND two columns (4n) plus both U and
      // V instead of V alone — the distributed cost driver.
      char ratio[48];
      std::snprintf(ratio, sizeof ratio, "2m=%d vs 4n=%d", 2 * n, 4 * n);
      t.row()
          .cell(static_cast<long long>(n))
          .cell(name)
          .cell(static_cast<long long>(one.sweeps))
          .cell(static_cast<long long>(two.sweeps))
          .cell(ms1, 1)
          .cell(ms2, 1)
          .cell(ratio);
    }
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "Sweeps are comparable; the two-sided method moves twice the data per\n"
      "rotation (rows and columns, U and V) and on a column-distributed machine\n"
      "the row updates are non-local — the reason the paper builds on the\n"
      "one-sided Hestenes transformation.\n");
  return 0;
}
