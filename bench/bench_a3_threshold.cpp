// Ablation A3: the threshold strategy (Section 1 cites it for avoiding
// cycling). Sweep the relative threshold: rotations skipped, sweeps needed,
// final accuracy.
#include <cmath>
#include <cstdio>

#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "linalg/symmetric_eigen.hpp"
#include "svd/jacobi.hpp"
#include "util/table.hpp"

int main() {
  using namespace treesvd;
  std::printf("A3 — threshold strategy ablation (fat-tree ordering, 96x48, cond 1e4)\n\n");

  Rng rng(7777);
  const Matrix a = with_spectrum(96, 48, geometric_spectrum(48, 1e4), rng);
  const auto oracle = singular_values_oracle(a);
  const auto ord = make_ordering("fat-tree");

  Table t({"tol", "sweeps", "rotations", "max |sigma-oracle|/sigma_1", "converged"});
  for (double tol : {1e-2, 1e-4, 1e-6, 1e-8, 1e-10, 1e-13, 1e-15}) {
    JacobiOptions opt;
    opt.tol = tol;
    const SvdResult r = one_sided_jacobi(a, *ord, opt);
    double err = 0.0;
    for (std::size_t k = 0; k < oracle.size(); ++k)
      err = std::max(err, std::fabs(r.sigma[k] - oracle[k]));
    char tolbuf[32];
    std::snprintf(tolbuf, sizeof tolbuf, "%.0e", tol);
    char errbuf[32];
    std::snprintf(errbuf, sizeof errbuf, "%.2e", err / oracle[0]);
    t.row()
        .cell(tolbuf)
        .cell(static_cast<long long>(r.sweeps))
        .cell(r.rotations)
        .cell(errbuf)
        .cell(r.converged ? "yes" : "no");
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "Loose thresholds stop early with accuracy proportional to the threshold;\n"
      "tight ones cost only a few extra rotations once the quadratic regime is\n"
      "reached — skipping near-orthogonal pairs is almost free in sweeps.\n");
  return 0;
}
