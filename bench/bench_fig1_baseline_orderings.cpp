// Figure 1 reproduction: (a) the nearest-neighbour ring (odd-even) ordering
// and (b) the round-robin ordering, for n = 8, step by step.
#include <cstdio>

#include "bench_common.hpp"
#include "core/odd_even.hpp"
#include "core/round_robin.hpp"
#include "core/validate.hpp"

int main() {
  using namespace treesvd;
  using namespace treesvd::bench;
  const int n = 8;

  heading("Fig 1(a): ring (odd-even transposition) ordering, n = 8");
  {
    const Sweep s = OddEvenOrdering().sweep(n);
    print_sweep(s);
    const auto v = validate_sweep(s);
    std::printf("  valid Jacobi sweep: %s (steps = %d)\n", v.valid ? "yes" : v.error.c_str(),
                s.steps());
  }

  heading("Fig 1(b): round-robin ordering, n = 8");
  {
    const Sweep s = RoundRobinOrdering().sweep(n);
    print_sweep(s);
    const auto v = validate_sweep(s);
    std::printf("  valid Jacobi sweep: %s (steps = %d)\n", v.valid ? "yes" : v.error.c_str(),
                s.steps());
  }

  std::printf(
      "\nBoth baselines need communication that reaches the top tree level on"
      "\nevery transition (the paper's motivation for tree-aware orderings).\n");
  return 0;
}
