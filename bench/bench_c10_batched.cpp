// Claim C10: batching many independent same-shape SVDs into the SoA
// cross-problem engine (svd/batch.hpp) beats a loop of single-problem
// sequential solves — the per-pair control flow is paid once per lane group
// and the data passes run at SIMD width across problems, so throughput
// scales with batch size while every result stays bitwise identical to the
// sequential driver's.
//
// Two measurement families:
//  * engine: batched solve vs loop-of-one_sided_jacobi over the same inputs,
//    n in {16, 32, 64} (square), B in {8, 32}, median of 7 repetitions. The
//    correctness gate runs first: every batched result must digest-equal its
//    sequential counterpart or the bench exits nonzero without reporting a
//    single timing.
//  * serve: a saturated SvdServer (requests pre-generated, submitted as fast
//    as the bounded queues accept) reporting QPS plus p50/p99 submit-to-done
//    latency from the server's own histograms, and the fault-tolerance
//    counters (shed/expired/failed/restarts — all zero on the clean load).
//  * serve_faults: one deterministic degraded-mode point — doomed deadlines
//    evicted by a kShedExpired admission behind a fault-plan stall, plus one
//    planned shard kill/restart — so the shed/timeout/restart counters in
//    BENCH_serve.json are exercised with exact expected values, not just
//    carried as zeros.
//
// `--json=PATH` switches to the perf-smoke mode used by CI: the same gated
// runs, written as machine-readable BENCH_serve.json. Timings are recorded,
// not gated (CI machines are too noisy for ratios); the committed baseline
// is generated from a quiet Release build.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/registry.hpp"
#include "linalg/blas1.hpp"
#include "linalg/generators.hpp"
#include "svd/batch.hpp"
#include "svd/determinism.hpp"
#include "svd/jacobi.hpp"
#include "svd/serve.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace treesvd;
using Clock = std::chrono::steady_clock;

constexpr int kReps = 7;
constexpr std::size_t kLaneWidth = 8;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(Clock::now() - t0).count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

int fail(const std::string& what) {
  std::fprintf(stderr, "batched-correctness FAILED: %s\n", what.c_str());
  return 1;
}

struct EngineCase {
  std::size_t n = 0;
  std::size_t batch = 0;
  bool cache_norms = false;  ///< JacobiOptions::cache_norms for BOTH sides
  double batched_s = 0.0;  ///< median wall time, one batched solve of B problems
  double loop_s = 0.0;     ///< median wall time, B sequential one_sided_jacobi calls
  double speedup = 0.0;    ///< loop_s / batched_s
};

/// Gate + measure one (n, B, cache_norms) point; both sides run the same
/// JacobiOptions, so the comparison is FLOP-for-FLOP. Returns false (after
/// printing) on any bitwise divergence between the batched engine and the
/// sequential loop.
bool run_engine_case(const Ordering& ordering, std::size_t n, std::size_t batch,
                     bool cache_norms, EngineCase& out) {
  Rng rng(0x9e3779b9 + n * 131 + batch);
  std::vector<Matrix> inputs;
  inputs.reserve(batch);
  for (std::size_t b = 0; b < batch; ++b) inputs.push_back(random_gaussian(n, n, rng));

  BatchedSvdOptions bopt;
  bopt.lane_width = kLaneWidth;
  bopt.jacobi.cache_norms = cache_norms;
  BatchedSvd engine(n, n, ordering, bopt);
  engine.reserve(batch);

  // Correctness gate: bitwise sequential equivalence for every problem.
  const auto batched = engine.solve({inputs.data(), inputs.size()});
  for (std::size_t b = 0; b < batch; ++b) {
    const SvdResult ref = one_sided_jacobi(inputs[b], ordering, bopt.jacobi);
    if (result_digest(batched[b]) != result_digest(ref)) {
      fail("n=" + std::to_string(n) + " B=" + std::to_string(batch) + " problem " +
           std::to_string(b) + " diverged from the sequential solve");
      return false;
    }
  }

  std::vector<double> t_batched, t_loop;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto b0 = Clock::now();
    const auto rs = engine.solve({inputs.data(), inputs.size()});
    t_batched.push_back(seconds_since(b0));
    const auto l0 = Clock::now();
    for (std::size_t b = 0; b < batch; ++b)
      (void)one_sided_jacobi(inputs[b], ordering, bopt.jacobi);
    t_loop.push_back(seconds_since(l0));
    if (rs.empty()) return false;  // keep the solve observable
  }
  out.n = n;
  out.batch = batch;
  out.cache_norms = cache_norms;
  out.batched_s = median(t_batched);
  out.loop_s = median(t_loop);
  out.speedup = out.batched_s > 0.0 ? out.loop_s / out.batched_s : 0.0;
  return true;
}

struct ServePoint {
  std::size_t requests = 0;
  double qps = 0.0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  double mean_batch_fill = 0.0;
  // Fault-tolerance counters (zero on the clean saturation load; the
  // serve_faults point checks them against exact expected values).
  std::uint64_t solved = 0;
  std::uint64_t expired = 0;
  std::uint64_t failed = 0;
  std::uint64_t shed = 0;
  std::uint64_t restarts = 0;
};

/// Saturation load: all requests pre-generated, submitted back-to-back from
/// one producer (submit blocks on the bounded queues, which is the
/// saturation regime by construction on a loaded box).
bool run_serve_case(const Ordering& ordering, std::size_t n, std::size_t requests,
                    ServePoint& out) {
  ServeOptions opt;
  opt.rows = n;
  opt.cols = n;
  opt.shards = 1;
  opt.queue_capacity = 64;
  opt.batch.lane_width = kLaneWidth;

  Rng rng(0xC10 + n);
  std::vector<Matrix> inputs;
  inputs.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) inputs.push_back(random_gaussian(n, n, rng));
  std::vector<SvdResult> results(requests);

  SvdServer server(ordering, opt);
  server.start();
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < requests; ++i)
    if (!server.submit(inputs[i], &results[i])) return false;
  server.wait_idle();
  const double elapsed = seconds_since(t0);
  server.stop();

  // Spot-check the served payloads against direct solves (full verification
  // is the serve tool's and the test suite's job).
  for (std::size_t i = 0; i < requests; i += requests / 4 + 1) {
    const SvdResult ref = one_sided_jacobi(inputs[i], ordering, opt.batch.jacobi);
    if (result_digest(results[i]) != result_digest(ref)) {
      fail("serve n=" + std::to_string(n) + " request " + std::to_string(i) +
           " diverged from the direct solve");
      return false;
    }
  }

  const ServeStats stats = server.stats();
  out.requests = requests;
  out.qps = elapsed > 0.0 ? static_cast<double>(requests) / elapsed : 0.0;
  out.p50_ns = stats.latency.p50_ns();
  out.p99_ns = stats.latency.p99_ns();
  out.mean_batch_fill =
      stats.batches != 0
          ? static_cast<double>(stats.batched_lanes) / static_cast<double>(stats.batches)
          : 0.0;
  out.solved = stats.solved;
  out.expired = stats.expired;
  out.failed = stats.failed;
  out.shed = stats.shed;
  out.restarts = stats.restarts;
  // The clean load must not trip any of the fault paths.
  if (stats.expired != 0 || stats.failed != 0 || stats.shed != 0 || stats.restarts != 0) {
    fail("serve n=" + std::to_string(n) + " clean load tripped a fault counter");
    return false;
  }
  return out.qps > 0.0;
}

/// Deterministic degraded-mode point: eight doomed requests (1 ns deadlines)
/// parked behind a fault-plan stall are shed by a kShedExpired admission,
/// and a planned kill of one healthy request's batch forces a supervised
/// restart with requeue. Every surviving payload is still verified bitwise,
/// and the counters have exact expected values (same discipline as the
/// treesvd_serve --chaos gate).
bool run_faulted_serve_case(const Ordering& ordering, ServePoint& out) {
  constexpr std::size_t kN = 16;
  constexpr std::size_t kDoomed = 8;
  constexpr std::size_t kHealthy = 64;
  ServeOptions opt;
  opt.rows = kN;
  opt.cols = kN;
  opt.shards = 1;
  opt.queue_capacity = kDoomed;  // the doomed wave exactly fills the queue
  opt.batch.lane_width = kLaneWidth;
  opt.faults.enabled = true;
  opt.faults.stall_shard = 0;
  opt.faults.stall_until_submitted = kDoomed + 2;  // released by the 2nd healthy submit
  opt.faults.stall_micros = 30000000;
  opt.faults.kill_request = static_cast<long long>(kDoomed + 4);  // a healthy id
  opt.faults.kill_repeat = 1;

  Rng rng(0xC10F);
  std::vector<Matrix> inputs;
  inputs.reserve(kDoomed + kHealthy);
  for (std::size_t i = 0; i < kDoomed + kHealthy; ++i)
    inputs.push_back(random_gaussian(kN, kN, rng));
  std::vector<SvdResult> results(inputs.size());

  SvdServer server(ordering, opt);
  server.start();
  const auto t0 = Clock::now();
  SubmitOptions doomed;
  doomed.deadline_ns = 1;  // expires long before the stall releases
  for (std::size_t i = 0; i < kDoomed; ++i)
    if (server.submit(inputs[i], &results[i], doomed) != SubmitOutcome::kAccepted) return false;
  // First healthy admission meets the full queue of corpses and sheds them;
  // the rest take the blocking path (kShedExpired would bounce once the
  // queue is full of *live* requests — that is saturation, not overload).
  SubmitOptions shedding;
  shedding.policy = SubmitPolicy::kShedExpired;
  if (server.submit(inputs[kDoomed], &results[kDoomed], shedding) != SubmitOutcome::kAccepted)
    return false;
  for (std::size_t i = kDoomed + 1; i < inputs.size(); ++i)
    if (!server.submit(inputs[i], &results[i])) return false;
  server.wait_idle();
  const double elapsed = seconds_since(t0);
  server.stop();

  for (std::size_t i = kDoomed; i < inputs.size(); i += 7) {
    const SvdResult ref = one_sided_jacobi(inputs[i], ordering, opt.batch.jacobi);
    if (result_digest(results[i]) != result_digest(ref)) {
      fail("serve_faults request " + std::to_string(i) + " diverged from the direct solve");
      return false;
    }
  }

  const ServeStats stats = server.stats();
  out.requests = inputs.size();
  out.qps = elapsed > 0.0 ? static_cast<double>(inputs.size()) / elapsed : 0.0;
  out.p50_ns = stats.latency.p50_ns();
  out.p99_ns = stats.latency.p99_ns();
  out.mean_batch_fill =
      stats.batches != 0
          ? static_cast<double>(stats.batched_lanes) / static_cast<double>(stats.batches)
          : 0.0;
  out.solved = stats.solved;
  out.expired = stats.expired;
  out.failed = stats.failed;
  out.shed = stats.shed;
  out.restarts = stats.restarts;
  if (stats.shed != kDoomed || stats.expired != kDoomed || stats.solved != kHealthy ||
      stats.failed != 0 || stats.restarts != 1 || stats.kills != 1) {
    fail("serve_faults counters diverged from the deterministic plan");
    return false;
  }
  return true;
}

constexpr std::size_t kSizes[] = {16, 32, 64};
constexpr std::size_t kBatches[] = {8, 32};

int run(const std::string& json_path) {
  const auto ordering = make_ordering("round-robin");

  // Both norm configurations, each gated and timed against a sequential
  // loop running the identical options. fresh norms (cache_norms=false) is
  // the batched engine's strong suit: the cross-problem gram kernel makes
  // recomputation nearly free, while the cached path's drift bookkeeping is
  // decision-bound and gains less from lanes.
  std::vector<EngineCase> cases;
  for (const std::size_t n : kSizes)
    for (const std::size_t batch : kBatches)
      for (const bool cached : {false, true}) {
        EngineCase c;
        if (!run_engine_case(*ordering, n, batch, cached, c)) return 1;
        cases.push_back(c);
      }

  std::vector<ServePoint> serve;
  for (const std::size_t n : kSizes) {
    ServePoint p;
    if (!run_serve_case(*ordering, n, /*requests=*/n <= 32 ? 256 : 64, p)) return 1;
    serve.push_back(p);
  }
  ServePoint faulted;
  if (!run_faulted_serve_case(*ordering, faulted)) return 1;

  if (json_path.empty()) {
    std::printf("C10 — batched SoA engine vs loop of sequential solves "
                "(lane width %zu, median of %d)\n\n", kLaneWidth, kReps);
    Table t({"n", "B", "norms", "batched (ms)", "loop (ms)", "speedup"});
    for (const EngineCase& c : cases) {
      char b[24], l[24], s[24];
      std::snprintf(b, sizeof b, "%.3f", c.batched_s * 1e3);
      std::snprintf(l, sizeof l, "%.3f", c.loop_s * 1e3);
      std::snprintf(s, sizeof s, "%.2fx", c.speedup);
      t.row()
          .cell(static_cast<long long>(c.n))
          .cell(static_cast<long long>(c.batch))
          .cell(c.cache_norms ? "cached" : "fresh")
          .cell(b)
          .cell(l)
          .cell(s);
    }
    std::printf("%s\n", t.str().c_str());

    std::printf("Serve saturation (1 shard, queue 64, submit-to-done latency):\n");
    Table q({"n", "requests", "QPS", "p50 (us)", "p99 (us)", "mean batch fill"});
    for (std::size_t i = 0; i < serve.size(); ++i) {
      char qps[24], p50[24], p99[24], fill[24];
      std::snprintf(qps, sizeof qps, "%.0f", serve[i].qps);
      std::snprintf(p50, sizeof p50, "%.1f", static_cast<double>(serve[i].p50_ns) / 1e3);
      std::snprintf(p99, sizeof p99, "%.1f", static_cast<double>(serve[i].p99_ns) / 1e3);
      std::snprintf(fill, sizeof fill, "%.2f", serve[i].mean_batch_fill);
      q.row()
          .cell(static_cast<long long>(kSizes[i]))
          .cell(static_cast<long long>(serve[i].requests))
          .cell(qps)
          .cell(p50)
          .cell(p99)
          .cell(fill);
    }
    std::printf("%s\n", q.str().c_str());

    std::printf("Serve degraded mode (deterministic shed/expire + one supervised "
                "restart):\n");
    std::printf("  requests=%zu solved=%llu expired=%llu shed=%llu failed=%llu "
                "restarts=%llu\n\n",
                faulted.requests, static_cast<unsigned long long>(faulted.solved),
                static_cast<unsigned long long>(faulted.expired),
                static_cast<unsigned long long>(faulted.shed),
                static_cast<unsigned long long>(faulted.failed),
                static_cast<unsigned long long>(faulted.restarts));
    std::printf("Every batched and served result was verified bitwise against the\n"
                "sequential driver before any timing above was recorded.\n");
    return 0;
  }

  std::vector<bench::JsonObject> engine_rows;
  for (const EngineCase& c : cases) {
    bench::JsonObject row;
    row.add("n", c.n)
        .add("batch", c.batch)
        .add("cache_norms", c.cache_norms)
        .add("batched_s", c.batched_s)
        .add("loop_s", c.loop_s)
        .add("speedup", c.speedup);
    engine_rows.push_back(row);
  }
  std::vector<bench::JsonObject> serve_rows;
  for (std::size_t i = 0; i < serve.size(); ++i) {
    bench::JsonObject row;
    row.add("n", kSizes[i])
        .add("requests", serve[i].requests)
        .add("qps", serve[i].qps)
        .add("p50_ns", static_cast<std::size_t>(serve[i].p50_ns))
        .add("p99_ns", static_cast<std::size_t>(serve[i].p99_ns))
        .add("mean_batch_fill", serve[i].mean_batch_fill)
        .add("solved", static_cast<std::size_t>(serve[i].solved))
        .add("expired", static_cast<std::size_t>(serve[i].expired))
        .add("shed", static_cast<std::size_t>(serve[i].shed))
        .add("failed", static_cast<std::size_t>(serve[i].failed))
        .add("restarts", static_cast<std::size_t>(serve[i].restarts));
    serve_rows.push_back(row);
  }
  bench::JsonObject faulted_row;
  faulted_row.add("n", std::size_t{16})
      .add("requests", faulted.requests)
      .add("qps", faulted.qps)
      .add("p50_ns", static_cast<std::size_t>(faulted.p50_ns))
      .add("p99_ns", static_cast<std::size_t>(faulted.p99_ns))
      .add("mean_batch_fill", faulted.mean_batch_fill)
      .add("solved", static_cast<std::size_t>(faulted.solved))
      .add("expired", static_cast<std::size_t>(faulted.expired))
      .add("shed", static_cast<std::size_t>(faulted.shed))
      .add("failed", static_cast<std::size_t>(faulted.failed))
      .add("restarts", static_cast<std::size_t>(faulted.restarts));
  bench::JsonObject root;
  root.add("bench", "batched_serve");
  root.add("schema", "treesvd-bench-v1");
  root.add("correctness", "ok");
  root.add("ordering", "round-robin");
  root.add("lane_width", kLaneWidth);
  root.add("kernel_isa", batched_kernel_isa());
  root.add("reps", static_cast<long long>(kReps));
  root.add_array("engine", engine_rows);
  root.add_array("serve", serve_rows);
  root.add_array("serve_faults", {faulted_row});
  if (!bench::write_json_file(json_path, root)) return 1;
  std::printf("batched correctness OK (%zu engine cases, %zu serve points), "
              "report written to %s\n",
              cases.size(), serve.size(), json_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  return run(json_path);
}
