// Claim C4: convergence comparison. The Lee-Luk-Boley forward/backward
// scheme "may be slower than usual, because the number of rotations between
// any fixed pair (i,j) is variable rather than constant", and needs an extra
// half-sweep on average when termination requires an even sweep count.
#include <cstdio>

#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "svd/jacobi.hpp"
#include "util/table.hpp"

int main() {
  using namespace treesvd;
  std::printf("C4 — sweeps to convergence (mean over 20 random matrices per cell)\n\n");

  const int trials = 20;
  for (const auto& [m, n, cond] : std::vector<std::tuple<int, int, double>>{
           {48, 32, 1e2}, {96, 64, 1e2}, {96, 64, 1e6}}) {
    Table table({"ordering", "mean sweeps", "min", "max", "mean rotations"});
    for (const auto& name : ordering_names({8})) {
      const auto ord = make_ordering(name);
      if (!ord->supports(n)) continue;
      double sweeps = 0.0;
      double rotations = 0.0;
      int lo = 1 << 30;
      int hi = 0;
      for (int trial = 0; trial < trials; ++trial) {
        Rng rng(1000 + static_cast<std::uint64_t>(trial));
        const Matrix a = with_spectrum(static_cast<std::size_t>(m), static_cast<std::size_t>(n),
                                       geometric_spectrum(static_cast<std::size_t>(n), cond), rng);
        const SvdResult r = one_sided_jacobi(a, *ord);
        sweeps += r.sweeps;
        rotations += static_cast<double>(r.rotations);
        lo = std::min(lo, r.sweeps);
        hi = std::max(hi, r.sweeps);
      }
      table.row()
          .cell(name)
          .cell(sweeps / trials, 2)
          .cell(static_cast<long long>(lo))
          .cell(static_cast<long long>(hi))
          .cell(rotations / trials, 0);
    }
    std::printf("m = %d, n = %d, cond = %.0e:\n%s\n", m, n, cond, table.str().c_str());
  }
  std::printf(
      "Shape to observe: the restoring orderings (fat-tree, rings, round-robin) need\n"
      "about the same number of sweeps; llb-fat-tree needs at least as many and often\n"
      "an extra sweep (the forward/backward pairing cost the paper points out).\n");
  return 0;
}
