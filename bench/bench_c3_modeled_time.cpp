// Claim C3 (the paper's Conclusions): on the CM-5-like tree the hybrid
// ordering is the most efficient; with full fat-tree bandwidth the fat-tree
// ordering becomes the most attractive. Modeled per-sweep time, all orderings
// x all topologies x several sizes.
#include <cstdio>

#include "core/registry.hpp"
#include "sim/machine.hpp"
#include "util/table.hpp"

int main() {
  using namespace treesvd;
  std::printf("C3 — modeled time per sweep (compute + contended communication)\n");
  std::printf("units: one word through a base channel; columns of length m = n\n\n");

  for (int n : {128, 512, 1024}) {
    for (auto prof :
         {CapacityProfile::kPerfect, CapacityProfile::kConstant, CapacityProfile::kCm5}) {
      const FatTreeTopology topo(n / 2, prof);
      Table table({"ordering", "total", "compute", "comm", "comm %", "contention"});
      double best = 0.0;
      std::string best_name;
      for (const auto& name : ordering_names({4, 16, n / 8, n / 4})) {
        const auto ord = make_ordering(name);
        if (!ord->supports(n)) continue;
        CostParams p;
        p.words_per_column = static_cast<double>(n);
        const auto run = model_run(*ord, topo, n, p, 1);
        const auto& c = run.per_sweep_total;
        table.row()
            .cell(name)
            .cell(c.total_time, 0)
            .cell(c.compute_time, 0)
            .cell(c.comm_time, 0)
            .cell(100.0 * c.comm_time / c.total_time, 1)
            .cell(c.max_contention, 2);
        if (best_name.empty() || c.total_time < best) {
          best = c.total_time;
          best_name = name;
        }
      }
      std::printf("n = %d on %s (winner: %s):\n%s\n", n, to_string(prof).c_str(),
                  best_name.c_str(), table.str().c_str());
    }
  }
  return 0;
}
