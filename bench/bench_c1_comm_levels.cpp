// Claim C1: the fat-tree ordering minimises global communication. For each
// ordering: how many transitions per sweep touch each tree level, and how
// many column-words cross each level, for a range of problem sizes.
#include <cstdio>

#include "core/registry.hpp"
#include "sim/machine.hpp"
#include "util/table.hpp"

int main() {
  using namespace treesvd;
  std::printf("C1 — communication locality per sweep (perfect fat-tree, P = n/2 leaves)\n");
  std::printf("'top transitions' = transitions whose deepest message crosses the root level\n\n");

  for (int n : {64, 256, 1024}) {
    const FatTreeTopology topo(n / 2, CapacityProfile::kPerfect);
    Table table({"ordering", "steps", "top transitions", "level<=2 transitions", "root words",
                 "total words"});
    for (const auto& name : ordering_names({8})) {
      const auto ord = make_ordering(name);
      if (!ord->supports(n)) continue;
      CostParams p;
      p.words_per_column = static_cast<double>(n);  // m = n rows
      const auto run = model_run(*ord, topo, n, p, 1);
      const auto& c = run.per_sweep_total;
      const std::size_t top = c.transitions_using_level.size() - 1;
      std::size_t low = 0;
      for (std::size_t l = 0; l <= 2 && l < c.transitions_using_level.size(); ++l)
        low += c.transitions_using_level[l];
      table.row()
          .cell(name)
          .cell(static_cast<long long>(ord->steps(n)))
          .cell(c.transitions_using_level[top])
          .cell(low)
          .cell(c.words_per_level[top], 0)
          .cell(c.comm_words, 0);
    }
    std::printf("n = %d:\n%s\n", n, table.str().c_str());
  }
  std::printf(
      "Shape to observe: the fat-tree ordering touches the root on O(1) transitions\n"
      "per sweep (3, independent of n) while both Fig-1 baselines and the rings do so\n"
      "on nearly every transition; most fat-tree transitions are level <= 2.\n");
  return 0;
}
