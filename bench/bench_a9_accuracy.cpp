// Ablation A9: accuracy of the Jacobi SVD on severely graded spectra. The
// paper's Section-1 use case — treating sufficiently small singular values as
// zero — needs those small values computed *reliably*. One-sided Jacobi is
// classically strong here (high relative accuracy); this bench measures it
// against the Golub-Kahan bidiagonal SVD and the (squaring, hence limited)
// tridiagonal-QL oracle, and reports the factorization quality metrics
// (scaled residual, orthonormality defects) at unit scale and at entry
// magnitudes near 1e+-150 where the equilibration pre-pass carries the run.
//
// `--json=PATH` switches to the perf-smoke mode used by CI: the same runs
// with every metric asserted against its tolerance — max scaled sigma error
// |sigma_k - ref_k| / ref_max <= 1e-10, scaled residual and orthonormality
// defects <= 1e-12 — and written as a machine-readable BENCH_accuracy.json.
// A violated tolerance exits nonzero and fails the job.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "linalg/golub_kahan.hpp"
#include "linalg/symmetric_eigen.hpp"
#include "svd/jacobi.hpp"
#include "util/table.hpp"

namespace {

using namespace treesvd;

// The gated sigma metric is the *scaled* error max_k |sigma_k - ref_k| /
// ref_max (the torture-gate contract): the construction's orthonormal
// factors are themselves only accurate to ~1e-15 * sigma_max, so per-sigma
// relative error at sigma_min = 1e-12 * sigma_max is limited by the test
// matrix, not the engine — it is reported but not gated.
constexpr double kSigmaScaledTol = 1e-10;
constexpr double kResidualTol = 5e-12;
constexpr double kDefectTol = 1e-12;

struct ScaleCase {
  const char* name;
  double scale;
};

constexpr ScaleCase kScales[] = {
    {"unit", 1.0},
    {"huge-1e150", 1e150},
    {"tiny-1e-150", 1e-150},
};

struct CaseMetrics {
  std::string name;
  double max_scaled_err = 0.0;  ///< max_k |sigma_k - ref_k| / ref_max (gated)
  double max_rel_err = 0.0;     ///< max_k |sigma_k - ref_k| / ref_k (reported)
  double scaled_residual = 0.0;
  double u_defect = 0.0;
  double v_defect = 0.0;
  bool equilibrated = false;
  int sweeps = 0;
  bool converged = false;
};

CaseMetrics run_case(const ScaleCase& sc, const std::vector<double>& spec, Rng& rng) {
  std::vector<double> sigma = spec;
  for (double& s : sigma) s *= sc.scale;
  const Matrix a = with_spectrum(24, 12, sigma, rng);
  JacobiOptions opt;
  opt.full_diagnostics = true;  // residual + defects even on converged runs
  const SvdResult r = one_sided_jacobi(a, *make_ordering("fat-tree"), opt);

  CaseMetrics m;
  m.name = sc.name;
  m.converged = r.converged;
  m.equilibrated = r.diagnostics.equilibrated;
  m.sweeps = r.sweeps;
  m.scaled_residual = r.diagnostics.scaled_residual;
  m.u_defect = r.diagnostics.u_defect;
  m.v_defect = r.diagnostics.v_defect;
  for (std::size_t k = 0; k < sigma.size(); ++k) {
    const double err = std::fabs(r.sigma[k] - sigma[k]);
    m.max_scaled_err = std::max(m.max_scaled_err, err / sigma[0]);
    m.max_rel_err = std::max(m.max_rel_err, err / sigma[k]);
  }
  return m;
}

int fail(const std::string& what) {
  std::fprintf(stderr, "accuracy-correctness FAILED: %s\n", what.c_str());
  return 1;
}

int run_json_mode(const std::string& path) {
  Rng rng(1212);
  const auto spec = geometric_spectrum(12, 1e12);

  std::vector<bench::JsonObject> rows;
  for (const ScaleCase& sc : kScales) {
    const CaseMetrics m = run_case(sc, spec, rng);
    if (!m.converged) return fail(m.name + ": did not converge");
    if (!(m.max_scaled_err <= kSigmaScaledTol))
      return fail(m.name + ": sigma scaled error " + std::to_string(m.max_scaled_err));
    if (!(m.scaled_residual >= 0.0 && m.scaled_residual <= kResidualTol))
      return fail(m.name + ": scaled residual " + std::to_string(m.scaled_residual));
    if (!(m.u_defect >= 0.0 && m.u_defect <= kDefectTol))
      return fail(m.name + ": U orthonormality defect " + std::to_string(m.u_defect));
    if (!(m.v_defect >= 0.0 && m.v_defect <= kDefectTol))
      return fail(m.name + ": V orthonormality defect " + std::to_string(m.v_defect));
    bench::JsonObject row;
    row.add("case", m.name)
        .add("sigma_max_scaled_err", m.max_scaled_err)
        .add("sigma_max_rel_err", m.max_rel_err)
        .add("scaled_residual", m.scaled_residual)
        .add("u_defect", m.u_defect)
        .add("v_defect", m.v_defect)
        .add("equilibrated", m.equilibrated)
        .add("sweeps", static_cast<long long>(m.sweeps));
    rows.push_back(row);
  }

  bench::JsonObject root;
  root.add("bench", "accuracy");
  root.add("schema", "treesvd-bench-v1");
  root.add("correctness", "ok");
  root.add("spectrum_cond", 1e12);
  root.add("sigma_scaled_tol", kSigmaScaledTol);
  root.add("residual_tol", kResidualTol);
  root.add("defect_tol", kDefectTol);
  root.add_array("cases", rows);
  if (!bench::write_json_file(path, root)) return 1;
  std::printf("accuracy correctness OK (3 scale cases), report written to %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--json=", 7) == 0) return run_json_mode(argv[i] + 7);

  std::printf("A9 — relative accuracy on a geometric spectrum, cond = 1e12 (24x12)\n\n");

  Rng rng(1212);
  const auto spec = geometric_spectrum(12, 1e12);
  const Matrix a = with_spectrum(24, 12, spec, rng);
  const auto gk = golub_kahan_singular_values(a);
  const auto ql = singular_values_oracle(a);
  JacobiOptions opt;
  opt.full_diagnostics = true;
  const SvdResult j = one_sided_jacobi(a, *make_ordering("fat-tree"), opt);

  Table t({"k", "sigma_k (true)", "jacobi rel.err", "golub-kahan rel.err",
           "squared-QL rel.err"});
  for (std::size_t k = 0; k < 12; ++k) {
    char truth[24];
    std::snprintf(truth, sizeof truth, "%.3e", spec[k]);
    auto rel = [&](double v) {
      char buf[24];
      std::snprintf(buf, sizeof buf, "%.1e", std::fabs(v - spec[k]) / spec[k]);
      return std::string(buf);
    };
    t.row()
        .cell(static_cast<long long>(k + 1))
        .cell(truth)
        .cell(rel(j.sigma[k]))
        .cell(rel(gk[k]))
        .cell(rel(ql[k]));
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "Factorization quality (full_diagnostics): scaled residual %.2e, "
      "U defect %.2e, V defect %.2e\n\n",
      j.diagnostics.scaled_residual, j.diagnostics.u_defect, j.diagnostics.v_defect);

  std::printf("Quality across entry scales (equilibration carries the extremes):\n");
  Table q({"scale", "sigma scaled err", "sigma rel err", "scaled residual", "U defect",
           "V defect", "equilibrated", "sweeps"});
  Rng rng2(1212);
  for (const ScaleCase& sc : kScales) {
    const CaseMetrics m = run_case(sc, spec, rng2);
    auto e = [](double v) {
      char buf[24];
      std::snprintf(buf, sizeof buf, "%.1e", v);
      return std::string(buf);
    };
    q.row()
        .cell(m.name)
        .cell(e(m.max_scaled_err))
        .cell(e(m.max_rel_err))
        .cell(e(m.scaled_residual))
        .cell(e(m.u_defect))
        .cell(e(m.v_defect))
        .cell(m.equilibrated ? "yes" : "no")
        .cell(static_cast<long long>(m.sweeps));
  }
  std::printf("%s\n", q.str().c_str());
  std::printf(
      "Shape: the squared-oracle error blows up to O(1) once sigma falls below\n"
      "sqrt(eps)*sigma_1 ~ 1e-8, while the one-sided Jacobi engine matches the\n"
      "non-squaring Golub-Kahan reference across the full 12 decades — small\n"
      "singular values can indeed be thresholded with confidence (Section 1) —\n"
      "and the quality metrics are unchanged at entry scales of 1e+-150.\n");
  return 0;
}
