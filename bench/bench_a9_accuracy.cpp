// Ablation A9: accuracy of the Jacobi SVD on severely graded spectra. The
// paper's Section-1 use case — treating sufficiently small singular values as
// zero — needs those small values computed *reliably*. One-sided Jacobi is
// classically strong here (high relative accuracy); this bench measures it
// against the Golub-Kahan bidiagonal SVD and the (squaring, hence limited)
// tridiagonal-QL oracle.
#include <cmath>
#include <cstdio>

#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "linalg/golub_kahan.hpp"
#include "linalg/symmetric_eigen.hpp"
#include "svd/jacobi.hpp"
#include "util/table.hpp"

int main() {
  using namespace treesvd;
  std::printf("A9 — relative accuracy on a geometric spectrum, cond = 1e12 (24x12)\n\n");

  Rng rng(1212);
  const auto spec = geometric_spectrum(12, 1e12);
  const Matrix a = with_spectrum(24, 12, spec, rng);
  const auto gk = golub_kahan_singular_values(a);
  const auto ql = singular_values_oracle(a);
  const SvdResult j = one_sided_jacobi(a, *make_ordering("fat-tree"));

  Table t({"k", "sigma_k (true)", "jacobi rel.err", "golub-kahan rel.err",
           "squared-QL rel.err"});
  for (std::size_t k = 0; k < 12; ++k) {
    char truth[24];
    std::snprintf(truth, sizeof truth, "%.3e", spec[k]);
    auto rel = [&](double v) {
      char buf[24];
      std::snprintf(buf, sizeof buf, "%.1e", std::fabs(v - spec[k]) / spec[k]);
      return std::string(buf);
    };
    t.row()
        .cell(static_cast<long long>(k + 1))
        .cell(truth)
        .cell(rel(j.sigma[k]))
        .cell(rel(gk[k]))
        .cell(rel(ql[k]));
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "Shape: the squared-oracle error blows up to O(1) once sigma falls below\n"
      "sqrt(eps)*sigma_1 ~ 1e-8, while the one-sided Jacobi engine matches the\n"
      "non-squaring Golub-Kahan reference across the full 12 decades — small\n"
      "singular values can indeed be thresholded with confidence (Section 1).\n");
  return 0;
}
