// Figure 8 reproduction: the modified ring ordering and its sorting
// behaviour — nonincreasing singular values after an even number of sweeps,
// nondecreasing after an odd number (under the fixed-row storage rule).
#include <cstdio>

#include "bench_common.hpp"
#include "core/new_ring.hpp"
#include "core/round_robin.hpp"
#include "core/validate.hpp"
#include "linalg/generators.hpp"
#include "svd/jacobi.hpp"

int main() {
  using namespace treesvd;
  using namespace treesvd::bench;
  const int n = 8;

  heading("Fig 8(a): the modified ring ordering, n = 8");
  const Sweep mr = ModifiedRingOrdering().sweep(n);
  print_sweep(mr);
  std::printf("  one-directional ring traffic: %s\n",
              unidirectional_ring_moves(mr) ? "yes" : "NO");
  std::printf("  smaller index on the first row in every pair: %s\n", [&] {
    for (int t = 0; t < mr.steps(); ++t)
      for (const auto& p : mr.pairs(t))
        if (p.even > p.odd) return "NO";
    return "yes";
  }());

  heading("Fig 8(b): equivalence to round-robin");
  const Sweep rr = RoundRobinOrdering().sweep(n);
  const auto lam = find_equivalence_relabelling(mr, rr);
  std::printf("  relabelling exists: %s\n", lam ? "yes (same convergence as round-robin)" : "NO");

  heading("sorting behaviour under the descending rule");
  Rng rng(5);
  const Matrix a = with_spectrum(24, 12, geometric_spectrum(12, 100.0), rng);
  const SvdResult r = one_sided_jacobi(a, ModifiedRingOrdering());
  std::printf("  converged after %d sweeps; sigma (should be nonincreasing):\n   ", r.sweeps);
  for (double s : r.sigma) std::printf(" %.4f", s);
  std::printf("\n");
  return 0;
}
