// Claim C5: with the larger-norm-left rule (implemented by the fused
// rotate-and-swap of eq. (3)), the singular values emerge sorted in
// nonincreasing order on convergence — convenient for rank decisions.
#include <cstdio>

#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "svd/jacobi.hpp"
#include "util/table.hpp"

int main() {
  using namespace treesvd;
  std::printf("C5 — sorted singular values & explicit-interchange avoidance\n\n");

  const int n = 48;
  Table table({"ordering", "sorted on exit", "fused swaps", "max |sigma - oracle|", "rank(3)"});
  Rng rng(2024);
  const Matrix a = rank_deficient(72, static_cast<std::size_t>(n), 3, rng);
  for (const auto& name : ordering_names({4, 12})) {
    const auto ord = make_ordering(name);
    if (!ord->supports(n)) continue;
    const SvdResult r = one_sided_jacobi(a, *ord);
    bool sorted = true;
    for (std::size_t k = 1; k < r.sigma.size(); ++k)
      sorted = sorted && r.sigma[k - 1] >= r.sigma[k] - 1e-12;
    // All interchanges are fused into rotations; verify sigma against the
    // slow cyclic reference.
    const SvdResult ref = cyclic_jacobi(a);
    double err = 0.0;
    for (std::size_t k = 0; k < r.sigma.size(); ++k)
      err = std::max(err, std::abs(r.sigma[k] - ref.sigma[k]));
    table.row()
        .cell(name)
        .cell(sorted ? "yes" : "NO")
        .cell(r.swaps)
        .cell(err, 15)
        .cell(r.rank(1e-9) == 3 ? "detected" : "MISSED");
  }
  std::printf("rank-3 matrix, m = 72, n = %d:\n%s\n", n, table.str().c_str());
  std::printf(
      "Every ordering delivers nonincreasing sigma with zero explicit column\n"
      "exchanges — the swaps column counts rotations that used eq. (3) instead.\n"
      "Sufficiently small singular values therefore sit at the tail, making the\n"
      "'small values are zero' rank decision trivial (Section 1).\n");
  return 0;
}
