// Figure 9 reproduction: the hybrid ordering for sixteen indices divided
// into four groups — fat-tree ordering inside groups, ring ordering between
// them, with the inter-group ("global") transitions marked.
#include <cstdio>

#include "bench_common.hpp"
#include "core/hybrid.hpp"
#include "core/validate.hpp"

int main() {
  using namespace treesvd;
  using namespace treesvd::bench;
  const int n = 16;
  const int groups = 4;
  const int gsz = n / groups;

  heading("Fig 9: the hybrid ordering for sixteen indices (four groups)");
  const Sweep s = HybridOrdering(groups).sweep(n);
  for (int t = 0; t < s.steps(); ++t) {
    std::string row;
    for (const IndexPair& p : s.pairs(t))
      row += "(" + label(p.even, gsz) + " " + label(p.odd, gsz) + ")";
    // A transition is "global" when a column changes group.
    bool global = false;
    int deepest = 0;
    for (const ColumnMove& mv : s.moves(t)) {
      deepest = std::max(deepest, comm_level(mv.from_slot, mv.to_slot));
      if (mv.from_slot / gsz != mv.to_slot / gsz) global = true;
    }
    std::string note = "-";
    if (global) {
      note = "global";
    } else if (deepest > 0) {
      note = "level " + std::to_string(deepest);
    }
    std::printf("  step %2d: %-72s %s\n", t + 1, row.c_str(), note.c_str());
  }
  std::string fin;
  for (int idx : s.final_layout()) fin += label(idx, gsz) + " ";
  std::printf("  after sweep: %s\n", fin.c_str());

  const auto v = validate_sweep(s);
  std::printf("\n  valid Jacobi sweep: %s (steps = %d = n-1)\n",
              v.valid ? "yes" : v.error.c_str(), s.steps());
  std::printf("  structure: steps 1-%d are the intra-group fat-tree sweep (super-step 1);\n"
              "  each later super-step is a two-block ordering of %d steps, separated by\n"
              "  one-directional ring shifts of whole blocks between groups.\n",
              gsz - 1, gsz / 2);
  return 0;
}
