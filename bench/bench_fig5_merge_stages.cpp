// Figure 5 reproduction: the merge procedure scheme — n indices organised
// into groups of 4 that merge pairwise until one group remains, with the
// four-block ordering applied at each stage.
#include <cstdio>

#include "bench_common.hpp"
#include "core/fat_tree.hpp"
#include "core/validate.hpp"

int main() {
  using namespace treesvd;
  using namespace treesvd::bench;
  const int n = 16;

  heading("Fig 5: merge procedure for n = 16");
  // Stage structure: stage 1 works on n/4 groups of 4; stage s on groups of
  // 2^(s+1). Print the group extents and the steps each stage contributes.
  int stage = 1;
  int covered_steps = 0;
  for (int size = 4; size <= n; size *= 2) {
    const int groups = n / size;
    const int steps = size == 4 ? 3 : size / 2;  // 2 two-block orderings of size/4
    std::printf("stage %d: %2d group(s) of %2d indices, %2d parallel step(s):\n", stage, groups,
                size, steps);
    for (int g = 0; g < groups; ++g) {
      std::printf("  ( ");
      for (int i = g * size; i < (g + 1) * size; ++i) std::printf("%d ", i + 1);
      std::printf(")\n");
    }
    covered_steps += steps;
    ++stage;
  }
  std::printf("total steps: %d  (= n - 1 = %d)\n", covered_steps, n - 1);

  // Cross-check against the generated ordering: stage boundaries show up as
  // the transitions whose communication reaches the stage's top level.
  const Sweep s = FatTreeOrdering().sweep(n);
  std::printf("\ndeepest communication level after each step of the full sweep:\n  ");
  for (int t = 0; t < s.steps(); ++t) {
    int deepest = 0;
    for (const ColumnMove& mv : s.moves(t))
      deepest = std::max(deepest, comm_level(mv.from_slot, mv.to_slot));
    std::printf("%d ", deepest);
  }
  std::printf("\n(levels rise only at stage boundaries; everything else is local)\n");
  return 0;
}
