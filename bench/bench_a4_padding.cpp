// Ablation A4: zero-column padding. The fat-tree ordering needs n a power of
// two; other widths are padded internally. What does the padding cost?
#include <cmath>
#include <cstdio>

#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "linalg/symmetric_eigen.hpp"
#include "svd/jacobi.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace treesvd;
  std::printf("A4 — padding overhead for the fat-tree ordering (m = 2n rows)\n\n");

  const auto ord = make_ordering("fat-tree");
  Table t({"n", "padded to", "sweeps", "rotations", "wall ms", "rel. sigma err"});
  for (int n : {63, 64, 65, 96, 127, 128}) {
    Rng rng(4242);
    const Matrix a = random_gaussian(static_cast<std::size_t>(2 * n),
                                     static_cast<std::size_t>(n), rng);
    int padded = n;
    while (!ord->supports(padded)) ++padded;
    Timer timer;
    const SvdResult r = one_sided_jacobi(a, *ord);
    const double ms = timer.millis();
    const auto oracle = singular_values_oracle(a);
    double err = 0.0;
    for (std::size_t k = 0; k < oracle.size(); ++k)
      err = std::max(err, std::fabs(r.sigma[k] - oracle[k]) / oracle[0]);
    char errbuf[32];
    std::snprintf(errbuf, sizeof errbuf, "%.2e", err);
    t.row()
        .cell(static_cast<long long>(n))
        .cell(static_cast<long long>(padded))
        .cell(static_cast<long long>(r.sweeps))
        .cell(r.rotations)
        .cell(ms, 1)
        .cell(errbuf);
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "Padding never hurts accuracy (zero columns are inert under the threshold);\n"
      "the cost is the unused fraction of each sweep's rotations — worst just\n"
      "above a power of two (n = 65 pays for 128), amortised as n grows toward\n"
      "the next power. Widths the ring orderings support directly (any even n)\n"
      "avoid the padding entirely.\n");
  return 0;
}
