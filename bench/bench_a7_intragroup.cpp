// Ablation A7: the hybrid ordering's intra-group method. The hybrid runs a
// fat-tree sweep inside each group; the plain block ring (Schreiber
// partitioning) uses odd-even transposition there instead. Same ring of
// blocks between groups — the difference isolates the intra-group fat-tree.
#include <cstdio>

#include "core/block_ring.hpp"
#include "core/hybrid.hpp"
#include "core/validate.hpp"
#include "linalg/generators.hpp"
#include "sim/machine.hpp"
#include "svd/jacobi.hpp"
#include "util/table.hpp"

int main() {
  using namespace treesvd;
  std::printf("A7 — intra-group method: fat-tree (hybrid) vs odd-even (block ring)\n");
  std::printf("n = 128, 8 groups of 16; modeled per-sweep time, m = n words/column\n\n");

  const int n = 128;
  const int groups = 8;
  const HybridOrdering hybrid(groups);
  const BlockRingOrdering blockring(groups);

  Table t({"ordering", "steps", "local transfers", "perfect", "binary", "cm5",
           "contention cm5", "sweeps to converge"});
  Rng rng(909);
  const Matrix a = random_gaussian(2 * n, static_cast<std::size_t>(n), rng);
  for (const Ordering* ord : {static_cast<const Ordering*>(&hybrid),
                              static_cast<const Ordering*>(&blockring)}) {
    const Sweep s = ord->sweep(n);
    const auto hist = level_histogram(s);
    std::size_t local = hist[0] + (hist.size() > 1 ? hist[1] : 0);
    t.row().cell(ord->name()).cell(static_cast<long long>(s.steps())).cell(local);
    CostParams p;
    p.words_per_column = static_cast<double>(n);
    double cm5_contention = 0.0;
    for (auto prof :
         {CapacityProfile::kPerfect, CapacityProfile::kConstant, CapacityProfile::kCm5}) {
      const FatTreeTopology topo(n / 2, prof);
      const auto run = model_run(*ord, topo, n, p, 1);
      t.cell(run.per_sweep_total.total_time, 0);
      if (prof == CapacityProfile::kCm5)
        cm5_contention = run.per_sweep_total.max_contention;
    }
    const SvdResult r = one_sided_jacobi(a, *ord);
    t.cell(cm5_contention, 2).cell(static_cast<long long>(r.sweeps));
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "Convergence is equivalent — the intra-group method only changes the\n"
      "communication structure. The fat-tree phase needs one fewer step and wins\n"
      "when intra-group exchanges can ride fat channels (perfect profile); the\n"
      "strictly nearest-neighbour odd-even phase is cheaper on the skinny trees.\n"
      "Measured honestly: on the pure binary tree the plain block ring edges out\n"
      "the hybrid, and the hybrid's fat-tree phase pays off as channels fatten.\n");
  return 0;
}
