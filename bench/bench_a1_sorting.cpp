// Ablation A1: the sorting machinery. (i) Module Fig 4(a) vs 4(b): only the
// order-preserving module keeps left < right in every pair, the property the
// paper uses to get sorted singular values from a fixed storage rule.
// (ii) Cost of sorting during the iteration: sweeps and rotations with the
// descending rule on versus off.
#include <cstdio>

#include "core/fat_tree.hpp"
#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "svd/jacobi.hpp"
#include "util/table.hpp"

int main() {
  using namespace treesvd;
  std::printf("A1 — sorting ablation\n\n");

  std::printf("(i) four-block module variants:\n");
  {
    Table t({"variant", "left<right in all pairs", "order after 1 sweep", "after 2 sweeps"});
    for (auto [v, name] : {std::pair{FourBlockVariant::kOrderPreserving, "Fig 4(a)"},
                           std::pair{FourBlockVariant::kSwapping, "Fig 4(b)"}}) {
      const std::vector<int> ids = {0, 1, 2, 3};
      const BlockRows once = four_block_module(ids, v);
      bool ordered = true;
      for (const auto& row : once.rows)
        ordered = ordered && row[0] < row[1] && row[2] < row[3];
      const BlockRows twice = four_block_module(once.final_layout, v);
      auto show = [](const std::vector<int>& l) {
        std::string s;
        for (int x : l) s += std::to_string(x + 1) + " ";
        return s;
      };
      t.row().cell(name).cell(ordered ? "yes" : "no").cell(show(once.final_layout)).cell(
          show(twice.final_layout));
    }
    std::printf("%s\n", t.str().c_str());
  }

  std::printf("(ii) cost of the descending sort rule (mean over 10 matrices, n = 48):\n");
  {
    Table t({"ordering", "sweeps sorted", "sweeps unsorted", "rot sorted", "rot unsorted",
             "fused swaps"});
    for (const auto& name : {"fat-tree", "new-ring", "round-robin"}) {
      const auto ord = make_ordering(name);
      double s_sorted = 0.0;
      double s_plain = 0.0;
      double r_sorted = 0.0;
      double r_plain = 0.0;
      double swaps = 0.0;
      for (int trial = 0; trial < 10; ++trial) {
        Rng rng(42 + static_cast<std::uint64_t>(trial));
        const Matrix a = random_gaussian(96, 48, rng);
        JacobiOptions sorted;
        JacobiOptions plain;
        plain.sort = SortMode::kNone;
        const SvdResult rs = one_sided_jacobi(a, *ord, sorted);
        const SvdResult rp = one_sided_jacobi(a, *ord, plain);
        s_sorted += rs.sweeps;
        s_plain += rp.sweeps;
        r_sorted += static_cast<double>(rs.rotations);
        r_plain += static_cast<double>(rp.rotations);
        swaps += static_cast<double>(rs.swaps);
      }
      t.row()
          .cell(name)
          .cell(s_sorted / 10, 1)
          .cell(s_plain / 10, 1)
          .cell(r_sorted / 10, 0)
          .cell(r_plain / 10, 0)
          .cell(swaps / 10, 0);
    }
    std::printf("%s\n", t.str().c_str());
  }
  std::printf(
      "Sorting costs at most a fraction of a sweep (the fused swaps replace, not\n"
      "add to, rotations) and buys ordered output — the paper's recommendation.\n");
  return 0;
}
