// Figure 7 reproduction: the new ring ordering for n = 8 and its equivalence
// to the round-robin ordering (the paper's Definition 1).
#include <cstdio>

#include "bench_common.hpp"
#include "core/new_ring.hpp"
#include "core/round_robin.hpp"
#include "core/validate.hpp"

int main() {
  using namespace treesvd;
  using namespace treesvd::bench;
  const int n = 8;

  heading("Fig 7(a): the new ring ordering, n = 8");
  const Sweep nr = NewRingOrdering().sweep(n);
  print_sweep(nr);
  std::printf("  one-directional ring traffic: %s\n",
              unidirectional_ring_moves(nr) ? "yes" : "NO");
  const auto moves = moves_per_index(nr);
  std::printf("  inter-processor moves per index:");
  for (std::size_t i = 0; i < moves.size(); ++i)
    std::printf(" %zu:%zu", i + 1, moves[i]);
  std::printf("\n  (index 1 never moves; index 2 moves n/2 times; indices 2k+1, 2k+2 move 2k"
              "\n   times — all even, as Section 5 requires)\n");

  heading("Fig 7(b): the equivalent round-robin ordering, n = 8");
  const Sweep rr = RoundRobinOrdering().sweep(n);
  print_sweep(rr);

  const auto lam = find_equivalence_relabelling(nr, rr);
  if (lam) {
    std::printf("\n  equivalence relabelling (new-ring index -> round-robin index):\n   ");
    for (std::size_t i = 0; i < lam->size(); ++i)
      std::printf(" %zu->%d", i + 1, (*lam)[i] + 1);
    std::printf("\n  => the two orderings are EQUIVALENT (Definition 1): same convergence\n");
  } else {
    std::printf("\n  NO relabelling found (unexpected)\n");
  }
  return 0;
}
