#pragma once
// Shared helpers for the figure/claim reproduction binaries: pretty-printing
// of ordering sweeps in the paper's notation, and a tiny JSON emitter for
// the BENCH_*.json perf artifacts (machine-readable baselines the CI
// perf-smoke job uploads; no external JSON dependency).

#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "core/ordering.hpp"
#include "core/validate.hpp"

namespace treesvd::bench {

/// Append-only ordered JSON object: add() renders each field immediately, so
/// the builder is just a list of "key": value strings. Supports the flat
/// scalar fields plus arrays of sub-objects — all a BENCH_*.json needs.
class JsonObject {
 public:
  JsonObject& add(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return raw(key, buf);
  }
  JsonObject& add(const std::string& key, long long v) { return raw(key, std::to_string(v)); }
  JsonObject& add(const std::string& key, std::size_t v) { return raw(key, std::to_string(v)); }
  JsonObject& add(const std::string& key, bool v) { return raw(key, v ? "true" : "false"); }
  JsonObject& add(const std::string& key, const std::string& v) {
    return raw(key, "\"" + escape(v) + "\"");
  }
  JsonObject& add(const std::string& key, const char* v) { return add(key, std::string(v)); }
  JsonObject& add_array(const std::string& key, const std::vector<JsonObject>& items) {
    std::string out = "[";
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i != 0) out += ", ";
      out += items[i].str();
    }
    out += "]";
    return raw(key, out);
  }

  std::string str() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i != 0) out += ", ";
      out += fields_[i];
    }
    out += "}";
    return out;
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }
  JsonObject& raw(const std::string& key, const std::string& rendered) {
    fields_.push_back("\"" + escape(key) + "\": " + rendered);
    return *this;
  }
  std::vector<std::string> fields_;
};

/// Writes the object (plus trailing newline) to `path`; returns false and
/// prints to stderr when the file cannot be written.
inline bool write_json_file(const std::string& path, const JsonObject& o) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  f << o.str() << "\n";
  return f.good();
}

/// Maps a 0-based index to the paper's label, e.g. "3(2)" for index 3 of
/// block/group 2. group_size == 0 suppresses the superscript.
inline std::string label(int index, int group_size = 0) {
  if (group_size <= 0) return std::to_string(index + 1);
  const int group = index / group_size + 1;
  const int within = index % group_size + 1;
  return std::to_string(within) + "(" + std::to_string(group) + ")";
}

/// Prints one sweep as the paper's figures do: one row per step with the
/// index pairs, plus the deepest communication level of the transition that
/// follows the step ("global" when it reaches `global_level`).
inline void print_sweep(const Sweep& sweep, int group_size = 0, int global_level = -1) {
  for (int t = 0; t < sweep.steps(); ++t) {
    std::string row;
    for (const IndexPair& p : sweep.pairs(t)) {
      row += "(" + label(p.even, group_size) + " " + label(p.odd, group_size) + ")";
    }
    int deepest = 0;
    for (const ColumnMove& mv : sweep.moves(t))
      deepest = std::max(deepest, comm_level(mv.from_slot, mv.to_slot));
    std::string level;
    if (deepest == 0) {
      level = "-";
    } else if (global_level > 0 && deepest >= global_level) {
      level = "global";
    } else {
      level = std::to_string(deepest);
    }
    std::printf("  step %2d: %-64s  level %s\n", t + 1, row.c_str(), level.c_str());
  }
  std::string fin;
  for (int idx : sweep.final_layout()) fin += label(idx, group_size) + " ";
  std::printf("  after sweep: %s\n", fin.c_str());
}

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace treesvd::bench
