#pragma once
// Shared helpers for the figure/claim reproduction binaries: pretty-printing
// of ordering sweeps in the paper's notation.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/ordering.hpp"
#include "core/validate.hpp"

namespace treesvd::bench {

/// Maps a 0-based index to the paper's label, e.g. "3(2)" for index 3 of
/// block/group 2. group_size == 0 suppresses the superscript.
inline std::string label(int index, int group_size = 0) {
  if (group_size <= 0) return std::to_string(index + 1);
  const int group = index / group_size + 1;
  const int within = index % group_size + 1;
  return std::to_string(within) + "(" + std::to_string(group) + ")";
}

/// Prints one sweep as the paper's figures do: one row per step with the
/// index pairs, plus the deepest communication level of the transition that
/// follows the step ("global" when it reaches `global_level`).
inline void print_sweep(const Sweep& sweep, int group_size = 0, int global_level = -1) {
  for (int t = 0; t < sweep.steps(); ++t) {
    std::string row;
    for (const IndexPair& p : sweep.pairs(t)) {
      row += "(" + label(p.even, group_size) + " " + label(p.odd, group_size) + ")";
    }
    int deepest = 0;
    for (const ColumnMove& mv : sweep.moves(t))
      deepest = std::max(deepest, comm_level(mv.from_slot, mv.to_slot));
    std::string level;
    if (deepest == 0) {
      level = "-";
    } else if (global_level > 0 && deepest >= global_level) {
      level = "global";
    } else {
      level = std::to_string(deepest);
    }
    std::printf("  step %2d: %-64s  level %s\n", t + 1, row.c_str(), level.c_str());
  }
  std::string fin;
  for (int idx : sweep.final_layout()) fin += label(idx, group_size) + " ";
  std::printf("  after sweep: %s\n", fin.c_str());
}

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace treesvd::bench
