// Figure 6 reproduction: the complete fat-tree (four-block) ordering for
// eight indices, with the communication level of every transition.
#include <cstdio>

#include "bench_common.hpp"
#include "core/fat_tree.hpp"
#include "core/validate.hpp"

int main() {
  using namespace treesvd;
  using namespace treesvd::bench;

  heading("Fig 6: the four-block (fat-tree) ordering for eight indices");
  const Sweep s = FatTreeOrdering().sweep(8);
  print_sweep(s);

  const auto v = validate_sweep(s);
  std::printf("\n  valid Jacobi sweep: %s\n", v.valid ? "yes" : v.error.c_str());
  const auto hist = level_histogram(s);
  std::printf("  inter-leaf transfers per level:");
  for (std::size_t l = 1; l < hist.size(); ++l) std::printf("  L%zu: %zu", l, hist[l]);
  std::printf("\n  original order restored after one sweep: %s\n",
              [&] {
                const auto fin = s.final_layout();
                for (int i = 0; i < 8; ++i)
                  if (fin[static_cast<std::size_t>(i)] != i) return "no";
                return "yes";
              }());
  return 0;
}
