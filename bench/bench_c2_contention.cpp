// Claim C2: the hybrid ordering avoids contention on skinny fat-trees (the
// fat-tree ordering does not), and the block size (group count) is the knob.
#include <cstdio>

#include "core/registry.hpp"
#include "sim/machine.hpp"
#include "util/table.hpp"

int main() {
  using namespace treesvd;
  std::printf("C2 — worst per-channel contention factor of any transition in one sweep\n");
  std::printf("(streams through a channel divided by its relative capacity; <= 1.00 means\n");
  std::printf(" no channel is ever busier than an uncontended leaf link)\n\n");

  const int n = 256;
  Table table({"ordering", "perfect-fat-tree", "binary-tree", "cm5-skinny"});
  for (const auto& name : ordering_names({2, 4, 8, 16, 32, 64})) {
    const auto ord = make_ordering(name);
    if (!ord->supports(n)) continue;
    table.row().cell(name);
    for (auto prof :
         {CapacityProfile::kPerfect, CapacityProfile::kConstant, CapacityProfile::kCm5}) {
      const FatTreeTopology topo(n / 2, prof);
      const auto run = model_run(*ord, topo, n, CostParams{}, 1);
      table.cell(run.per_sweep_total.max_contention, 2);
    }
  }
  std::printf("n = %d, P = %d leaves:\n%s\n", n, n / 2, table.str().c_str());
  std::printf(
      "Shape to observe: ring orderings are contention-free everywhere; the fat-tree\n"
      "ordering contends badly on the skinny trees; the hybrid's contention falls as\n"
      "the group count rises (smaller blocks) until it reaches 1.00 on the CM-5 model\n"
      "— 'we may properly choose the block size so that ... no contention' (Sec. 5).\n");
  return 0;
}
