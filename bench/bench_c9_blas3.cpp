// Claim C9 (BLAS-3 block engine): the Gram-based inner panel solver versus
// the elementwise inner solver of the block-Jacobi driver, and the tiled
// packed GEMM versus the seed jki loop.
//
// The elementwise inner solver streams the full m-length columns once per
// rotation (memory-bound BLAS-1); the Gram solver forms the 2b x 2b Gram
// matrix once, rotates the small problem while accumulating the orthogonal
// update W, and touches the m-length columns exactly once more in a blocked
// P·W apply (compute-dense BLAS-3). The win grows with m and b.
//
// `--json=PATH` switches to the perf-smoke mode used by CI: correctness
// assertions first (tiled GEMM vs the naive reference; kGram vs kElementwise
// driver agreement on singular values; the one-GEMM-per-encounter counter
// contract), then self-timed comparisons. Assertions exiting nonzero fail
// the CI job; timings are recorded in the JSON but never assert — CI
// machines are too noisy to gate on a ratio.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/registry.hpp"
#include "linalg/gemm.hpp"
#include "linalg/generators.hpp"
#include "svd/block_jacobi.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace treesvd;

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.normal();
  return m;
}

/// The seed Matrix::operator* loop (jki, no tiling, no packing), kept here so
/// the old-vs-new comparison measures the code the tiled GEMM replaced.
Matrix seed_product(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j)
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double bkj = b(k, j);
      for (std::size_t i = 0; i < a.rows(); ++i) c(i, j) += a(i, k) * bkj;
    }
  return c;
}

/// Restores the first `panel.cols()` columns of `h` from `panel` — the
/// per-call reset both inner-solver timings include, so neither side gets to
/// amortise an already-orthogonal panel.
void restore_panel(Matrix& h, const Matrix& panel) {
  for (std::size_t j = 0; j < panel.cols(); ++j) {
    const auto src = panel.col(j);
    const auto dst = h.col(j);
    std::copy(src.begin(), src.end(), dst.begin());
  }
}

std::vector<int> iota_cols(std::size_t k) {
  std::vector<int> cols(k);
  std::iota(cols.begin(), cols.end(), 0);
  return cols;
}

// ---------------------------------------------------------------------------
// google-benchmark sections (interactive use)

void BM_GemmSeedJki(benchmark::State& state) {
  Rng rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  for (auto _ : state) benchmark::DoNotOptimize(seed_product(a, b));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmSeedJki)->Arg(128)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_GemmTiled(benchmark::State& state) {
  Rng rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  for (auto _ : state) benchmark::DoNotOptimize(gemm(a, b));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmTiled)->Arg(128)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_GemmTiledThreaded(benchmark::State& state) {
  Rng rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  for (auto _ : state) benchmark::DoNotOptimize(gemm(a, b, gemm_pool()));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmTiledThreaded)->Arg(256)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_InnerElementwise(benchmark::State& state) {
  Rng rng(2);
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto kw = static_cast<std::size_t>(state.range(1));
  const Matrix panel = random_matrix(m, kw, rng);
  Matrix h = panel;
  const std::vector<int> cols = iota_cols(kw);
  BlockJacobiOptions opt;
  opt.cache_norms = false;
  KernelCounters pc;
  for (auto _ : state) {
    restore_panel(h, panel);
    benchmark::DoNotOptimize(
        detail::inner_orthogonalise_elementwise(h, nullptr, cols, opt, nullptr, &pc));
  }
}
BENCHMARK(BM_InnerElementwise)
    ->Args({2048, 8})
    ->Args({2048, 16})
    ->Args({8192, 32})
    ->Unit(benchmark::kMicrosecond);

void BM_InnerGram(benchmark::State& state) {
  Rng rng(2);
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto kw = static_cast<std::size_t>(state.range(1));
  const Matrix panel = random_matrix(m, kw, rng);
  Matrix h = panel;
  const std::vector<int> cols = iota_cols(kw);
  BlockJacobiOptions opt;
  opt.cache_norms = false;
  KernelCounters counters;
  for (auto _ : state) {
    restore_panel(h, panel);
    benchmark::DoNotOptimize(
        detail::inner_orthogonalise_gram(h, nullptr, cols, opt, nullptr, counters, nullptr));
  }
}
BENCHMARK(BM_InnerGram)
    ->Args({2048, 8})
    ->Args({2048, 16})
    ->Args({8192, 32})
    ->Unit(benchmark::kMicrosecond);

void BM_BlockSvd(benchmark::State& state) {
  Rng rng(3);
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_gaussian(4 * n, n, rng);
  const auto ord = make_ordering("fat-tree");
  BlockJacobiOptions opt;
  opt.block_width = 8;
  opt.inner_mode = state.range(1) != 0 ? InnerMode::kGram : InnerMode::kElementwise;
  for (auto _ : state) benchmark::DoNotOptimize(block_one_sided_jacobi(a, *ord, opt));
}
BENCHMARK(BM_BlockSvd)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({128, 0})
    ->Args({128, 1})
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --json perf-smoke mode

/// Median-of-repeats self-timer: seconds per call.
template <typename Fn>
double time_per_call(Fn&& fn, int calls_per_sample, int samples = 5) {
  std::vector<double> secs;
  secs.reserve(static_cast<std::size_t>(samples));
  for (int r = 0; r < samples; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < calls_per_sample; ++i) fn();
    const auto t1 = std::chrono::steady_clock::now();
    secs.push_back(std::chrono::duration<double>(t1 - t0).count() / calls_per_sample);
  }
  std::sort(secs.begin(), secs.end());
  return secs[secs.size() / 2];
}

int fail(const char* what) {
  std::fprintf(stderr, "blas3-correctness FAILED: %s\n", what);
  return 1;
}

/// Correctness gate: the tiled GEMM (serial and threaded) must match the
/// seed jki loop, the kGram driver must agree with kElementwise on the
/// spectrum, and the Gram path's counters must show the
/// one-GEMM-per-encounter contract.
int check_blas3() {
  Rng rng(41);
  {
    const Matrix a = random_matrix(130, 67, rng);
    const Matrix b = random_matrix(67, 41, rng);
    const Matrix want = seed_product(a, b);
    const Matrix serial = gemm(a, b);
    const Matrix threaded = gemm(a, b, gemm_pool());
    const double scale = 1.0 + want.max_abs();
    for (std::size_t j = 0; j < want.cols(); ++j)
      for (std::size_t i = 0; i < want.rows(); ++i)
        if (std::fabs(serial(i, j) - want(i, j)) > 1e-12 * scale)
          return fail("tiled GEMM disagrees with the seed jki product");
    if (!(serial == threaded)) return fail("threaded GEMM is not bitwise-equal to serial");
  }
  {
    Rng mrng(43);
    const Matrix a = random_gaussian(192, 64, mrng);
    const auto ord = make_ordering("fat-tree");
    BlockJacobiOptions gram;
    gram.block_width = 8;
    gram.inner_mode = InnerMode::kGram;
    BlockJacobiOptions elem = gram;
    elem.inner_mode = InnerMode::kElementwise;
    const SvdResult rg = block_one_sided_jacobi(a, *ord, gram);
    const SvdResult re = block_one_sided_jacobi(a, *ord, elem);
    if (!rg.converged || !re.converged) return fail("block driver did not converge");
    const double smax = std::max(rg.sigma[0], re.sigma[0]);
    for (std::size_t k = 0; k < rg.sigma.size(); ++k)
      if (std::fabs(rg.sigma[k] - re.sigma[k]) > 1e-10 * smax)
        return fail("kGram and kElementwise disagree on singular values");
    const KernelStats& ks = rg.kernel_stats;
    if (ks.pairs != 0 || ks.dot_passes != 0 || ks.gram_passes != 0)
      return fail("kGram ran elementwise pair kernels");
    if (ks.gram_builds == 0) return fail("kGram built no Gram matrices");
    if (ks.accum_rotations != rg.rotations)
      return fail("accumulated-rotation counter disagrees with the driver tally");
    if (ks.blocked_applies > 2 * ks.gram_builds)
      return fail("more than one blocked apply per panel per encounter");
  }
  return 0;
}

int run_json_mode(const std::string& path) {
  if (const int rc = check_blas3(); rc != 0) return rc;

  using treesvd::bench::JsonObject;
  JsonObject root;
  root.add("bench", "blas3");
  root.add("schema", "treesvd-bench-v1");
  root.add("correctness", "ok");

  // Inner panel solve, kGram vs kElementwise. Both timings include the same
  // per-call panel restore (the copy is charged to both sides). No V panel
  // and no NormCache here — this isolates the two inner solvers; the driver
  // rows below include everything.
  std::vector<JsonObject> rows;
  double speedup_2048_b8 = 0.0;
  Rng rng(47);
  for (const std::size_t m : {std::size_t{512}, std::size_t{2048}, std::size_t{8192}}) {
    for (const int b : {4, 8, 16}) {
      const std::size_t kw = 2 * static_cast<std::size_t>(b);
      const Matrix panel = random_matrix(m, kw, rng);
      Matrix h = panel;
      const std::vector<int> cols = iota_cols(kw);
      BlockJacobiOptions opt;
      opt.cache_norms = false;
      KernelCounters counters;
      const int calls =
          static_cast<int>(std::max<std::size_t>(2, 100000000 / (m * kw * kw)));
      const double t_elem = time_per_call(
          [&] {
            restore_panel(h, panel);
            benchmark::DoNotOptimize(
                detail::inner_orthogonalise_elementwise(h, nullptr, cols, opt, nullptr, &counters));
          },
          calls);
      const double t_gram = time_per_call(
          [&] {
            restore_panel(h, panel);
            benchmark::DoNotOptimize(
                detail::inner_orthogonalise_gram(h, nullptr, cols, opt, nullptr, counters, nullptr));
          },
          calls);
      const double speedup = t_elem / t_gram;
      if (m == 2048 && b == 8) speedup_2048_b8 = speedup;
      JsonObject row;
      row.add("section", "inner_solve");
      row.add("m", static_cast<long long>(m));
      row.add("block_width", static_cast<long long>(b));
      row.add("elementwise_us_per_call", t_elem * 1e6);
      row.add("gram_us_per_call", t_gram * 1e6);
      row.add("speedup", speedup);
      rows.push_back(row);
      std::printf("inner m=%5zu b=%2d  elementwise %9.1f us  gram %9.1f us  speedup %.2fx\n", m,
                  b, t_elem * 1e6, t_gram * 1e6, speedup);
    }
  }
  root.add_array("inner_solve", rows);
  root.add("speedup_at_2048_b8", speedup_2048_b8);

  // Tiled GEMM vs the seed jki loop, serial and threaded.
  {
    std::vector<JsonObject> grows;
    Rng grng(53);
    for (const std::size_t n : {std::size_t{128}, std::size_t{256}, std::size_t{512}}) {
      const Matrix a = random_matrix(n, n, grng);
      const Matrix b = random_matrix(n, n, grng);
      const int calls = n <= 128 ? 8 : (n <= 256 ? 3 : 1);
      const double t_seed =
          time_per_call([&] { benchmark::DoNotOptimize(seed_product(a, b)); }, calls, 3);
      const double t_tiled =
          time_per_call([&] { benchmark::DoNotOptimize(gemm(a, b)); }, calls, 3);
      const double t_threaded =
          time_per_call([&] { benchmark::DoNotOptimize(gemm(a, b, gemm_pool())); }, calls, 3);
      JsonObject row;
      row.add("section", "gemm");
      row.add("n", static_cast<long long>(n));
      row.add("seed_jki_ms", t_seed * 1e3);
      row.add("tiled_ms", t_tiled * 1e3);
      row.add("tiled_threaded_ms", t_threaded * 1e3);
      row.add("speedup_serial", t_seed / t_tiled);
      row.add("speedup_threaded", t_seed / t_threaded);
      grows.push_back(row);
      std::printf("gemm n=%4zu  seed %8.2f ms  tiled %8.2f ms  threaded %8.2f ms  %.2fx / %.2fx\n",
                  n, t_seed * 1e3, t_tiled * 1e3, t_threaded * 1e3, t_seed / t_tiled,
                  t_seed / t_threaded);
    }
    root.add_array("gemm", grows);
  }

  // Driver-level comparison: the full block_one_sided_jacobi under both
  // inner modes (V computed, NormCache on — everything included).
  {
    Rng mrng(59);
    const std::size_t n = 128;
    const Matrix a = random_gaussian(4 * n, n, mrng);
    const auto ord = make_ordering("fat-tree");
    BlockJacobiOptions gram;
    gram.block_width = 8;
    BlockJacobiOptions elem = gram;
    elem.inner_mode = InnerMode::kElementwise;
    const double t_gram = time_per_call(
        [&] { benchmark::DoNotOptimize(block_one_sided_jacobi(a, *ord, gram)); }, 1, 3);
    const double t_elem = time_per_call(
        [&] { benchmark::DoNotOptimize(block_one_sided_jacobi(a, *ord, elem)); }, 1, 3);
    JsonObject drv;
    drv.add("driver", "block_one_sided_jacobi/fat-tree");
    drv.add("m", static_cast<long long>(4 * n));
    drv.add("n", static_cast<long long>(n));
    drv.add("block_width", 8LL);
    drv.add("elementwise_ms", t_elem * 1e3);
    drv.add("gram_ms", t_gram * 1e3);
    drv.add("speedup", t_elem / t_gram);
    root.add_array("driver", {drv});
    std::printf("driver m=%zu n=%zu b=8  elementwise %.2f ms  gram %.2f ms  speedup %.2fx\n",
                4 * n, n, t_elem * 1e3, t_gram * 1e3, t_elem / t_gram);
  }

  if (!treesvd::bench::write_json_file(path, root)) return 1;
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) return run_json_mode(argv[i] + 7);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
