// Claim C6: "If the rotations in a sweep are chosen in a reasonable,
// systematic order, the convergence rate is ultimately quadratic." Track
// off(A^T A) per sweep for each ordering.
#include <cmath>
#include <cstdio>

#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "svd/jacobi.hpp"
#include "util/table.hpp"

int main() {
  using namespace treesvd;
  std::printf("C6 — off(A^T A)/||A^T A|| after each sweep (random 96x64 matrix)\n\n");

  Rng rng(31337);
  const Matrix a = random_gaussian(96, 64, rng);
  std::vector<std::string> names;
  std::vector<std::vector<double>> histories;
  std::size_t max_sweeps = 0;
  for (const auto& name : ordering_names({8})) {
    const auto ord = make_ordering(name);
    if (!ord->supports(64)) continue;
    JacobiOptions opt;
    opt.track_off = true;
    const SvdResult r = one_sided_jacobi(a, *ord, opt);
    names.push_back(name);
    histories.push_back(r.off_history);
    max_sweeps = std::max(max_sweeps, r.off_history.size());
  }

  std::vector<std::string> header = {"sweep"};
  for (const auto& n : names) header.push_back(n);
  Table table(header);
  for (std::size_t s = 0; s < max_sweeps; ++s) {
    table.row().cell(static_cast<long long>(s + 1));
    for (const auto& h : histories) {
      if (s < h.size()) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.2e", h[s]);
        table.cell(buf);
      } else {
        table.cell("-");
      }
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Shape to observe: a few linear-rate sweeps, then the measure roughly squares\n"
      "each sweep (exponent doubling) until machine precision — the classical\n"
      "ultimately-quadratic convergence of the Jacobi method, for every ordering.\n");
  return 0;
}
