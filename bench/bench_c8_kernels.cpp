// Claim C8 (google-benchmark microbenchmarks): kernel throughput, including
// the paper's eq. (3) — the fused rotate-and-swap versus rotating and then
// exchanging columns explicitly.
#include <benchmark/benchmark.h>

#include <vector>

#include "linalg/blas1.hpp"
#include "linalg/generators.hpp"
#include "linalg/rotation.hpp"
#include "svd/jacobi.hpp"
#include "core/registry.hpp"
#include "util/rng.hpp"

namespace {

using namespace treesvd;

std::vector<double> random_vec(std::size_t n, Rng& rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.normal();
  return v;
}

void BM_GramPair(benchmark::State& state) {
  Rng rng(1);
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto x = random_vec(m, rng);
  const auto y = random_vec(m, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gram_pair(x, y));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m));
}
BENCHMARK(BM_GramPair)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ApplyRotation(benchmark::State& state) {
  Rng rng(2);
  const auto m = static_cast<std::size_t>(state.range(0));
  auto x = random_vec(m, rng);
  auto y = random_vec(m, rng);
  for (auto _ : state) {
    apply_rotation(x, y, 0.8, 0.6);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m));
}
BENCHMARK(BM_ApplyRotation)->Arg(256)->Arg(1024)->Arg(4096);

void BM_RotateThenExplicitSwap(benchmark::State& state) {
  Rng rng(3);
  const auto m = static_cast<std::size_t>(state.range(0));
  auto x = random_vec(m, rng);
  auto y = random_vec(m, rng);
  for (auto _ : state) {
    apply_rotation(x, y, 0.8, 0.6);
    swap(std::span<double>(x), std::span<double>(y));
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m));
}
BENCHMARK(BM_RotateThenExplicitSwap)->Arg(256)->Arg(1024)->Arg(4096);

void BM_FusedRotateSwap(benchmark::State& state) {
  // Paper eq. (3): same work as a plain rotation, no exchange pass.
  Rng rng(4);
  const auto m = static_cast<std::size_t>(state.range(0));
  auto x = random_vec(m, rng);
  auto y = random_vec(m, rng);
  for (auto _ : state) {
    apply_rotation_swapped(x, y, 0.8, 0.6);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m));
}
BENCHMARK(BM_FusedRotateSwap)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SweepGeneration(benchmark::State& state) {
  const auto ord = make_ordering("fat-tree");
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ord->sweep(n));
  }
}
BENCHMARK(BM_SweepGeneration)->Arg(64)->Arg(256)->Arg(1024);

void BM_NewRingGeneration(benchmark::State& state) {
  const auto ord = make_ordering("new-ring");
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ord->sweep(n));
  }
}
BENCHMARK(BM_NewRingGeneration)->Arg(64)->Arg(256)->Arg(1024);

void BM_FullSvd(benchmark::State& state) {
  Rng rng(5);
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_gaussian(2 * n, n, rng);
  const auto ord = make_ordering("fat-tree");
  for (auto _ : state) {
    benchmark::DoNotOptimize(one_sided_jacobi(a, *ord));
  }
}
BENCHMARK(BM_FullSvd)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
