// Claim C8 (google-benchmark microbenchmarks): kernel throughput, including
// the paper's eq. (3) — the fused rotate-and-swap versus rotating and then
// exchanging columns explicitly — and the fast-kernel layer's fused
// rotate+norms pass versus the seed two-pass (rotate, then re-reduce norms)
// sequence.
//
// `--json=PATH` switches to the perf-smoke mode used by CI: a self-timed
// old-vs-new kernel comparison plus correctness assertions (fused kernels
// must match the two-pass reference; the cached-norm driver must make
// exactly one dot-product pass per pair). Assertions exiting nonzero fail
// the CI job; timings are recorded in the JSON but never assert — CI
// machines are too noisy to gate on a ratio.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/registry.hpp"
#include "linalg/blas1.hpp"
#include "linalg/dispatch.hpp"
#include "linalg/generators.hpp"
#include "linalg/rotation.hpp"
#include "svd/jacobi.hpp"
#include "util/rng.hpp"

namespace {

using namespace treesvd;

std::vector<double> random_vec(std::size_t n, Rng& rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.normal();
  return v;
}

// ---------------------------------------------------------------------------
// Faithful copies of the seed kernels (pre fast-kernel layer), kept here so
// the old-vs-new comparison measures the seed code as it was: no restrict
// qualifiers, a single accumulator per reduction. `seed_sumsq` is the seed's
// dot(x, x) — the seed had no dedicated sumsq.

void seed_apply_rotation(std::span<double> x, std::span<double> y, double c, double s) {
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = x[i];
    const double yi = y[i];
    x[i] = c * xi - s * yi;
    y[i] = s * xi + c * yi;
  }
}

double seed_sumsq(std::span<const double> x) {
  double acc = 0.0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * x[i];
  return acc;
}

void BM_Dot(benchmark::State& state) {
  Rng rng(1);
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto x = random_vec(m, rng);
  const auto y = random_vec(m, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dot(x, y));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m));
}
BENCHMARK(BM_Dot)->Arg(256)->Arg(1024)->Arg(4096);

void BM_GramPair(benchmark::State& state) {
  Rng rng(1);
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto x = random_vec(m, rng);
  const auto y = random_vec(m, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gram_pair(x, y));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m));
}
BENCHMARK(BM_GramPair)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ApplyRotation(benchmark::State& state) {
  Rng rng(2);
  const auto m = static_cast<std::size_t>(state.range(0));
  auto x = random_vec(m, rng);
  auto y = random_vec(m, rng);
  for (auto _ : state) {
    apply_rotation(x, y, 0.8, 0.6);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m));
}
BENCHMARK(BM_ApplyRotation)->Arg(256)->Arg(1024)->Arg(4096);

void BM_RotateThenExplicitSwap(benchmark::State& state) {
  Rng rng(3);
  const auto m = static_cast<std::size_t>(state.range(0));
  auto x = random_vec(m, rng);
  auto y = random_vec(m, rng);
  for (auto _ : state) {
    apply_rotation(x, y, 0.8, 0.6);
    swap(std::span<double>(x), std::span<double>(y));
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m));
}
BENCHMARK(BM_RotateThenExplicitSwap)->Arg(256)->Arg(1024)->Arg(4096);

void BM_FusedRotateSwap(benchmark::State& state) {
  // Paper eq. (3): same work as a plain rotation, no exchange pass.
  Rng rng(4);
  const auto m = static_cast<std::size_t>(state.range(0));
  auto x = random_vec(m, rng);
  auto y = random_vec(m, rng);
  for (auto _ : state) {
    apply_rotation_swapped(x, y, 0.8, 0.6);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m));
}
BENCHMARK(BM_FusedRotateSwap)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SeedRotateThenNorms(benchmark::State& state) {
  // Seed kernel sequence: scalar rotation pass, then a separate
  // single-accumulator norm-reduction pass per column.
  Rng rng(5);
  const auto m = static_cast<std::size_t>(state.range(0));
  auto x = random_vec(m, rng);
  auto y = random_vec(m, rng);
  for (auto _ : state) {
    seed_apply_rotation(x, y, 0.8, 0.6);
    const double xx = seed_sumsq(x);
    const double yy = seed_sumsq(y);
    benchmark::DoNotOptimize(xx + yy);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m));
}
BENCHMARK(BM_SeedRotateThenNorms)->Arg(256)->Arg(512)->Arg(1024)->Arg(4096);

void BM_RotateThenNormsTwoPass(benchmark::State& state) {
  // Current kernels, still two passes: restrict rotation, then the
  // multi-accumulator sumsq per column.
  Rng rng(5);
  const auto m = static_cast<std::size_t>(state.range(0));
  auto x = random_vec(m, rng);
  auto y = random_vec(m, rng);
  for (auto _ : state) {
    apply_rotation(x, y, 0.8, 0.6);
    const double xx = sumsq(x);
    const double yy = sumsq(y);
    benchmark::DoNotOptimize(xx + yy);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m));
}
BENCHMARK(BM_RotateThenNormsTwoPass)->Arg(256)->Arg(512)->Arg(1024)->Arg(4096);

void BM_FusedRotateAndNorms(benchmark::State& state) {
  // Fast-kernel layer: one read+write pass yields rotation and both norms.
  Rng rng(6);
  const auto m = static_cast<std::size_t>(state.range(0));
  auto x = random_vec(m, rng);
  auto y = random_vec(m, rng);
  for (auto _ : state) {
    const RotatedNorms rn = rotate_and_norms(x, y, 0.8, 0.6);
    benchmark::DoNotOptimize(rn.app + rn.aqq);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m));
}
BENCHMARK(BM_FusedRotateAndNorms)->Arg(256)->Arg(512)->Arg(1024)->Arg(4096);

void BM_SweepGeneration(benchmark::State& state) {
  const auto ord = make_ordering("fat-tree");
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ord->sweep(n));
  }
}
BENCHMARK(BM_SweepGeneration)->Arg(64)->Arg(256)->Arg(1024);

void BM_NewRingGeneration(benchmark::State& state) {
  const auto ord = make_ordering("new-ring");
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ord->sweep(n));
  }
}
BENCHMARK(BM_NewRingGeneration)->Arg(64)->Arg(256)->Arg(1024);

void BM_FullSvd(benchmark::State& state) {
  Rng rng(7);
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_gaussian(2 * n, n, rng);
  const auto ord = make_ordering("fat-tree");
  for (auto _ : state) {
    benchmark::DoNotOptimize(one_sided_jacobi(a, *ord));
  }
}
BENCHMARK(BM_FullSvd)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_FullSvdUncached(benchmark::State& state) {
  // The seed gram_pair-per-pair path, for the driver-level old-vs-new ratio.
  Rng rng(7);
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_gaussian(2 * n, n, rng);
  const auto ord = make_ordering("fat-tree");
  JacobiOptions opt;
  opt.cache_norms = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(one_sided_jacobi(a, *ord, opt));
  }
}
BENCHMARK(BM_FullSvdUncached)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --json perf-smoke mode

/// Median-of-repeats self-timer: runs `fn` enough times per repeat that each
/// sample is long enough to time reliably, returns seconds per call.
template <typename Fn>
double time_per_call(Fn&& fn, int calls_per_sample, int samples = 7) {
  std::vector<double> secs;
  secs.reserve(static_cast<std::size_t>(samples));
  for (int r = 0; r < samples; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < calls_per_sample; ++i) fn();
    const auto t1 = std::chrono::steady_clock::now();
    secs.push_back(std::chrono::duration<double>(t1 - t0).count() / calls_per_sample);
  }
  std::sort(secs.begin(), secs.end());
  return secs[secs.size() / 2];
}

int fail(const char* what) {
  std::fprintf(stderr, "kernel-correctness FAILED: %s\n", what);
  return 1;
}

/// Correctness gate: the fused kernels must agree with the seed two-pass
/// sequence, and the cached-norm driver must make exactly one dot-product
/// accumulation pass per pair (the point of the NormCache).
int check_kernels() {
  Rng rng(11);
  const std::size_t m = 512;
  const double c = 0.8;
  const double s = 0.6;
  {
    auto x = random_vec(m, rng);
    auto y = random_vec(m, rng);
    auto xr = x;
    auto yr = y;
    const RotatedNorms rn = rotate_and_norms(x, y, c, s);
    apply_rotation(xr, yr, c, s);
    for (std::size_t i = 0; i < m; ++i)
      if (x[i] != xr[i] || y[i] != yr[i]) return fail("rotate_and_norms alters the rotation");
    if (std::fabs(rn.app - sumsq(xr)) > 1e-10 * rn.app ||
        std::fabs(rn.aqq - sumsq(yr)) > 1e-10 * rn.aqq)
      return fail("rotate_and_norms norms disagree with a fresh reduction");
  }
  {
    auto x = random_vec(m, rng);
    auto y = random_vec(m, rng);
    auto xr = x;
    auto yr = y;
    const RotatedNorms rn = rotate_and_norms_swapped(x, y, c, s);
    apply_rotation_swapped(xr, yr, c, s);
    for (std::size_t i = 0; i < m; ++i)
      if (x[i] != xr[i] || y[i] != yr[i])
        return fail("rotate_and_norms_swapped alters the fused rotate-swap");
    if (std::fabs(rn.app - sumsq(xr)) > 1e-10 * rn.app ||
        std::fabs(rn.aqq - sumsq(yr)) > 1e-10 * rn.aqq)
      return fail("rotate_and_norms_swapped norms disagree with a fresh reduction");
  }
  {
    // One dot pass per pair, zero gram passes: the debug counters of a
    // cached-norm run must show it (acceptance criterion of the fast-kernel
    // layer).
    Rng mrng(17);
    const Matrix a = random_gaussian(96, 48, mrng);
    const auto ord = make_ordering("round-robin");
    const SvdResult r = one_sided_jacobi(a, *ord);
    const KernelStats& ks = r.kernel_stats;
    if (ks.pairs == 0) return fail("cached driver processed no pairs");
    if (ks.dot_passes != ks.pairs)
      return fail("cached driver does not make exactly one dot pass per pair");
    if (ks.gram_passes != 0) return fail("cached driver fell back to gram_pair passes");
    JacobiOptions uopt;
    uopt.cache_norms = false;
    const SvdResult u = one_sided_jacobi(a, *ord, uopt);
    if (u.kernel_stats.gram_passes != u.kernel_stats.pairs)
      return fail("uncached driver should make one gram pass per pair");
    // Both paths must agree on the spectrum.
    double smax = 0.0;
    for (double v : u.sigma) smax = std::max(smax, v);
    for (std::size_t i = 0; i < r.sigma.size(); ++i)
      if (std::fabs(r.sigma[i] - u.sigma[i]) > 1e-12 * smax)
        return fail("cached and uncached drivers disagree on singular values");
  }
  return 0;
}

int run_json_mode(const std::string& path) {
  if (const int rc = check_kernels(); rc != 0) return rc;

  using treesvd::bench::JsonObject;
  Rng rng(23);
  JsonObject root;
  root.add("bench", "kernels");
  root.add("schema", "treesvd-bench-v1");
  root.add("correctness", "ok");

  std::vector<JsonObject> rows;
  double speedup_512 = 0.0;
  for (const std::size_t m : {std::size_t{256}, std::size_t{512}, std::size_t{4096}}) {
    auto x = random_vec(m, rng);
    auto y = random_vec(m, rng);
    const double c = 0.8;
    const double s = 0.6;
    const int calls = static_cast<int>(std::max<std::size_t>(20000, 30000000 / m));
    // All three variants run in the same binary on the same storage so none
    // gets a code-layout or cache-placement advantage. The headline ratio is
    // fused vs the *seed* two-pass sequence (the code this layer replaced);
    // the current restrict two-pass is recorded alongside for reference.
    const double seed_two_pass = time_per_call(
        [&] {
          seed_apply_rotation(x, y, c, s);
          const double xx = seed_sumsq(x);
          const double yy = seed_sumsq(y);
          benchmark::DoNotOptimize(xx + yy);
        },
        calls);
    const double two_pass = time_per_call(
        [&] {
          apply_rotation(x, y, c, s);
          const double xx = sumsq(x);
          const double yy = sumsq(y);
          benchmark::DoNotOptimize(xx + yy);
        },
        calls);
    const double fused = time_per_call(
        [&] {
          const RotatedNorms rn = rotate_and_norms(x, y, c, s);
          benchmark::DoNotOptimize(rn.app + rn.aqq);
        },
        calls);
    const double speedup = seed_two_pass / fused;
    if (m == 512) speedup_512 = speedup;
    JsonObject row;
    row.add("kernel", "rotate_and_norms");
    row.add("n", static_cast<long long>(m));
    row.add("seed_two_pass_ns_per_call", seed_two_pass * 1e9);
    row.add("two_pass_ns_per_call", two_pass * 1e9);
    row.add("fused_ns_per_call", fused * 1e9);
    row.add("speedup_vs_seed", speedup);
    row.add("speedup_vs_two_pass", two_pass / fused);
    rows.push_back(row);
    std::printf("n=%5zu  seed two-pass %8.1f ns  two-pass %8.1f ns  fused %8.1f ns  vs-seed %.2fx\n",
                m, seed_two_pass * 1e9, two_pass * 1e9, fused * 1e9, speedup);
  }
  root.add_array("fused_rotate_norms", rows);
  root.add("speedup_at_512", speedup_512);

  // Driver-level old-vs-new: cached NormCache path vs the seed
  // gram-per-pair path, same ordering and matrix.
  {
    Rng mrng(29);
    const std::size_t n = 96;
    const Matrix a = random_gaussian(2 * n, n, mrng);
    const auto ord = make_ordering("fat-tree");
    JacobiOptions cached;
    JacobiOptions uncached;
    uncached.cache_norms = false;
    const double t_cached =
        time_per_call([&] { benchmark::DoNotOptimize(one_sided_jacobi(a, *ord, cached)); }, 1, 5);
    const double t_uncached = time_per_call(
        [&] { benchmark::DoNotOptimize(one_sided_jacobi(a, *ord, uncached)); }, 1, 5);
    JsonObject drv;
    drv.add("driver", "one_sided_jacobi/fat-tree");
    drv.add("n", static_cast<long long>(n));
    drv.add("cached_ms", t_cached * 1e3);
    drv.add("uncached_ms", t_uncached * 1e3);
    drv.add("speedup", t_uncached / t_cached);
    root.add_array("driver", {drv});
    std::printf("driver n=%zu  uncached %.2f ms  cached %.2f ms  speedup %.2fx\n", n,
                t_uncached * 1e3, t_cached * 1e3, t_uncached / t_cached);
  }

  // Per-ISA-tier sections: the hot single-problem kernels timed through every
  // tier's kernel table the host supports (kernels_for — explicit AVX2 /
  // AVX-512F SIMD), against the scalar `_ref` twins. The twins are the
  // PR-2-style autovectorized multi-accumulator loops, compiled with default
  // flags in blas1.cpp / rotation.cpp, so `speedup_vs_ref` is exactly the
  // explicit-SIMD-vs-autovectorized ratio per tier. Bitwise agreement of
  // every timed call is asserted on the fly (the dispatch layer's contract).
  {
    root.add("isa_detected", isa_name(detected_isa()));
    root.add("isa_resolved", isa_name(resolved_isa()));
    std::vector<JsonObject> tier_rows;
    for (const IsaTier tier : {IsaTier::kBaseline, IsaTier::kAvx2, IsaTier::kAvx512}) {
      if (!isa_supported(tier)) continue;
      const KernelTable& t = kernels_for(tier);
      for (const std::size_t m : {std::size_t{512}, std::size_t{4096}}) {
        auto x = random_vec(m, rng);
        auto y = random_vec(m, rng);
        const double c = 0.8;
        const double s = 0.6;
        const int calls = static_cast<int>(std::max<std::size_t>(20000, 30000000 / m));

        if (t.dot(x.data(), y.data(), m) != dot_ref(x, y))
          return fail("dispatched dot is not bitwise equal to dot_ref");
        const double dot_simd = time_per_call(
            [&] { benchmark::DoNotOptimize(t.dot(x.data(), y.data(), m)); }, calls);
        const double dot_scalar =
            time_per_call([&] { benchmark::DoNotOptimize(dot_ref(x, y)); }, calls);

        {
          double app = 0, aqq = 0, apq = 0;
          t.gram_pair(x.data(), y.data(), m, &app, &aqq, &apq);
          const GramPair g = gram_pair_ref(x, y);
          if (app != g.app || aqq != g.aqq || apq != g.apq)
            return fail("dispatched gram_pair is not bitwise equal to gram_pair_ref");
        }
        const double gram_simd = time_per_call(
            [&] {
              double app = 0, aqq = 0, apq = 0;
              t.gram_pair(x.data(), y.data(), m, &app, &aqq, &apq);
              benchmark::DoNotOptimize(app + aqq + apq);
            },
            calls);
        const double gram_scalar = time_per_call(
            [&] { benchmark::DoNotOptimize(gram_pair_ref(x, y)); }, calls);

        {
          auto xs = x;
          auto ys = y;
          auto xr = x;
          auto yr = y;
          double xx = 0, yy = 0;
          t.rotate_and_norms(xs.data(), ys.data(), m, c, s, &xx, &yy);
          const RotatedNorms rn = rotate_and_norms_ref(xr, yr, c, s);
          if (xx != rn.app || yy != rn.aqq || xs != xr || ys != yr)
            return fail("dispatched rotate_and_norms is not bitwise equal to its _ref twin");
        }
        const double rot_simd = time_per_call(
            [&] {
              double xx = 0, yy = 0;
              t.rotate_and_norms(x.data(), y.data(), m, c, s, &xx, &yy);
              benchmark::DoNotOptimize(xx + yy);
            },
            calls);
        const double rot_scalar = time_per_call(
            [&] {
              const RotatedNorms rn = rotate_and_norms_ref(x, y, c, s);
              benchmark::DoNotOptimize(rn.app + rn.aqq);
            },
            calls);

        JsonObject row;
        row.add("tier", t.name);
        row.add("n", static_cast<long long>(m));
        row.add("dot_ns_per_call", dot_simd * 1e9);
        row.add("dot_ref_ns_per_call", dot_scalar * 1e9);
        row.add("dot_speedup_vs_ref", dot_scalar / dot_simd);
        row.add("gram_pair_ns_per_call", gram_simd * 1e9);
        row.add("gram_pair_ref_ns_per_call", gram_scalar * 1e9);
        row.add("gram_pair_speedup_vs_ref", gram_scalar / gram_simd);
        row.add("rotate_and_norms_ns_per_call", rot_simd * 1e9);
        row.add("rotate_and_norms_ref_ns_per_call", rot_scalar * 1e9);
        row.add("rotate_and_norms_speedup_vs_ref", rot_scalar / rot_simd);
        tier_rows.push_back(row);
        std::printf(
            "tier=%-8s n=%5zu  dot %6.1f/%6.1f ns (%.2fx)  gram %6.1f/%6.1f ns (%.2fx)  "
            "rot+norms %6.1f/%6.1f ns (%.2fx)\n",
            t.name, m, dot_simd * 1e9, dot_scalar * 1e9, dot_scalar / dot_simd, gram_simd * 1e9,
            gram_scalar * 1e9, gram_scalar / gram_simd, rot_simd * 1e9, rot_scalar * 1e9,
            rot_scalar / rot_simd);
      }
    }
    root.add_array("isa_tiers", tier_rows);
  }

  // Debug pass counters of a representative cached run, for the record.
  {
    Rng mrng(31);
    const Matrix a = random_gaussian(128, 64, mrng);
    const auto ord = make_ordering("fat-tree");
    const SvdResult r = one_sided_jacobi(a, *ord);
    JsonObject ks;
    ks.add("pairs", r.kernel_stats.pairs);
    ks.add("dot_passes", r.kernel_stats.dot_passes);
    ks.add("gram_passes", r.kernel_stats.gram_passes);
    ks.add("rotate_passes", r.kernel_stats.rotate_passes);
    ks.add("norm_refreshes", r.kernel_stats.norm_refreshes);
    root.add_array("cached_driver_counters", {ks});
  }

  if (!treesvd::bench::write_json_file(path, root)) return 1;
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) return run_json_mode(argv[i] + 7);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
