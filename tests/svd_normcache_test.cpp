// Tests for the NormCache fast path: the cached-norm drivers must agree with
// the uncached (gram-per-pair) reference across every registered ordering,
// the debug counters must show exactly one dot pass per pair, and the drift
// controls must keep the cache accurate even at aggressive settings.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/registry.hpp"
#include "linalg/blas1.hpp"
#include "linalg/generators.hpp"
#include "svd/block_jacobi.hpp"
#include "svd/jacobi.hpp"
#include "svd/norm_cache.hpp"
#include "svd/spmd.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace treesvd {
namespace {

double sigma_max(const std::vector<double>& sigma) {
  double s = 0.0;
  for (double v : sigma) s = std::max(s, v);
  return s;
}

void expect_sigma_close(const std::vector<double>& got, const std::vector<double>& want,
                        double rel_tol, const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  const double smax = sigma_max(want);
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_NEAR(got[i], want[i], rel_tol * smax) << what << " sigma[" << i << "]";
}

TEST(NormCache, CachedMatchesUncachedAcrossAllOrderings) {
  Rng rng(101);
  const Matrix a = random_gaussian(48, 24, rng);
  for (const auto& name : ordering_names({4})) {
    const auto ord = make_ordering(name);
    JacobiOptions cached;
    JacobiOptions uncached;
    uncached.cache_norms = false;
    const SvdResult rc = one_sided_jacobi(a, *ord, cached);
    const SvdResult ru = one_sided_jacobi(a, *ord, uncached);
    EXPECT_TRUE(rc.converged) << name;
    EXPECT_TRUE(ru.converged) << name;
    expect_sigma_close(rc.sigma, ru.sigma, 1e-13, name);
    // Norm drift must not change the sweep count by more than one.
    EXPECT_LE(std::abs(rc.sweeps - ru.sweeps), 1) << name;
  }
}

TEST(NormCache, CachedDriverMakesOneDotPassPerPair) {
  Rng rng(103);
  const Matrix a = random_gaussian(64, 32, rng);
  const auto ord = make_ordering("round-robin");
  const SvdResult r = one_sided_jacobi(a, *ord);
  EXPECT_GT(r.kernel_stats.pairs, 0u);
  EXPECT_EQ(r.kernel_stats.dot_passes, r.kernel_stats.pairs);
  EXPECT_EQ(r.kernel_stats.gram_passes, 0u);
}

TEST(NormCache, UncachedDriverMakesOneGramPassPerPair) {
  Rng rng(103);
  const Matrix a = random_gaussian(64, 32, rng);
  const auto ord = make_ordering("round-robin");
  JacobiOptions opt;
  opt.cache_norms = false;
  const SvdResult r = one_sided_jacobi(a, *ord, opt);
  EXPECT_GT(r.kernel_stats.pairs, 0u);
  EXPECT_EQ(r.kernel_stats.gram_passes, r.kernel_stats.pairs);
  EXPECT_EQ(r.kernel_stats.dot_passes, 0u);
}

TEST(NormCache, AccurateWithoutScheduledRefresh) {
  // norm_recompute_sweeps <= 0 disables the periodic refresh; the fused
  // kernel's re-reduced norms plus the near-threshold guard must carry the
  // whole iteration on their own.
  Rng rng(107);
  const Matrix a = random_gaussian(60, 30, rng);
  const auto ord = make_ordering("odd-even");
  JacobiOptions no_refresh;
  no_refresh.norm_recompute_sweeps = 0;
  JacobiOptions uncached;
  uncached.cache_norms = false;
  const SvdResult rc = one_sided_jacobi(a, *ord, no_refresh);
  const SvdResult ru = one_sided_jacobi(a, *ord, uncached);
  expect_sigma_close(rc.sigma, ru.sigma, 1e-13, "no scheduled refresh");
  EXPECT_LE(std::abs(rc.sweeps - ru.sweeps), 1);
}

TEST(NormCache, EverySweepRefreshAlsoAgrees) {
  Rng rng(109);
  const Matrix a = random_gaussian(40, 20, rng);
  const auto ord = make_ordering("fat-tree");
  JacobiOptions eager;
  eager.norm_recompute_sweeps = 1;
  JacobiOptions uncached;
  uncached.cache_norms = false;
  const SvdResult rc = one_sided_jacobi(a, *ord, eager);
  const SvdResult ru = one_sided_jacobi(a, *ord, uncached);
  expect_sigma_close(rc.sigma, ru.sigma, 1e-13, "refresh every sweep");
}

TEST(NormCache, ThreadedAndSerialCachedAgree) {
  Rng rng(113);
  const Matrix a = random_gaussian(48, 24, rng);
  const auto ord = make_ordering("fat-tree");
  const SvdResult serial = one_sided_jacobi(a, *ord);
  const SvdResult threaded = one_sided_jacobi_threaded(a, *ord, {}, 4);
  expect_sigma_close(threaded.sigma, serial.sigma, 1e-13, "threaded vs serial");
  EXPECT_EQ(threaded.sweeps, serial.sweeps);
  EXPECT_EQ(threaded.kernel_stats.pairs, serial.kernel_stats.pairs);
  EXPECT_EQ(threaded.kernel_stats.dot_passes, serial.kernel_stats.dot_passes);
}

TEST(NormCache, CyclicDriverCachedMatchesUncached) {
  Rng rng(127);
  const Matrix a = random_gaussian(36, 18, rng);
  JacobiOptions uncached;
  uncached.cache_norms = false;
  const SvdResult rc = cyclic_jacobi(a);
  const SvdResult ru = cyclic_jacobi(a, uncached);
  expect_sigma_close(rc.sigma, ru.sigma, 1e-13, "cyclic");
  EXPECT_EQ(rc.kernel_stats.dot_passes, rc.kernel_stats.pairs);
}

TEST(NormCache, BlockDriverCachedMatchesUncached) {
  Rng rng(131);
  const Matrix a = random_gaussian(48, 24, rng);
  const auto ord = make_ordering("round-robin");
  BlockJacobiOptions cached;
  cached.block_width = 4;
  BlockJacobiOptions uncached;
  uncached.block_width = 4;
  uncached.cache_norms = false;
  const SvdResult rc = block_one_sided_jacobi(a, *ord, cached);
  const SvdResult ru = block_one_sided_jacobi(a, *ord, uncached);
  expect_sigma_close(rc.sigma, ru.sigma, 1e-13, "block");
  EXPECT_EQ(rc.kernel_stats.gram_passes, 0u);
}

TEST(NormCache, SpmdDriverCachedMatchesUncached) {
  Rng rng(137);
  const Matrix a = random_gaussian(32, 16, rng);
  const auto ord = make_ordering("round-robin");
  JacobiOptions uncached;
  uncached.cache_norms = false;
  const SvdResult rc = spmd_jacobi(a, *ord);
  const SvdResult ru = spmd_jacobi(a, *ord, uncached);
  expect_sigma_close(rc.sigma, ru.sigma, 1e-13, "spmd");
  EXPECT_GT(rc.kernel_stats.pairs, 0u);
  EXPECT_EQ(rc.kernel_stats.gram_passes, 0u);
}

TEST(NormCache, RefreshAndColumnOpsTrackMatrix) {
  Rng rng(139);
  Matrix a = random_gaussian(16, 6, rng);
  NormCache cache;
  cache.refresh(a);
  for (std::size_t j = 0; j < a.cols(); ++j)
    EXPECT_DOUBLE_EQ(cache.sq(j), sumsq(a.col(j))) << j;
  cache.swap_cols(1, 4);
  EXPECT_DOUBLE_EQ(cache.sq(1), sumsq(a.col(4)));
  EXPECT_DOUBLE_EQ(cache.sq(4), sumsq(a.col(1)));
  cache.set(2, 7.25);
  EXPECT_DOUBLE_EQ(cache.sq(2), 7.25);
  cache.refresh_column(a, 2);
  EXPECT_DOUBLE_EQ(cache.sq(2), sumsq(a.col(2)));
  const KernelStats ks = cache.counters().snapshot();
  EXPECT_EQ(ks.norm_refreshes, a.cols() + 1);
}

TEST(NormCache, OffDiagonalMeasureVariantsAgree) {
  Rng rng(149);
  const Matrix a = random_gaussian(40, 12, rng);
  const double serial = off_diagonal_measure(a);
  NormCache cache;
  cache.refresh(a);
  ThreadPool pool(3);
  const double with_cache = off_diagonal_measure(a, nullptr, &cache);
  const double with_pool = off_diagonal_measure(a, &pool, &cache);
  EXPECT_NEAR(with_cache, serial, 1e-12 * (1.0 + serial));
  EXPECT_NEAR(with_pool, serial, 1e-12 * (1.0 + serial));
}

}  // namespace
}  // namespace treesvd
