// Kogbetliantz two-sided Jacobi SVD (the method of reference [2]'s arrays).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/registry.hpp"
#include "linalg/generators.hpp"
#include "linalg/qr.hpp"
#include "linalg/symmetric_eigen.hpp"
#include "svd/kogbetliantz.hpp"

namespace treesvd {
namespace {

TEST(Kogbetliantz, TwoByTwoKernelDiagonalisesRandomBlocks) {
  Rng rng(911);
  for (int rep = 0; rep < 500; ++rep) {
    const double w = rng.normal();
    const double x = rng.normal();
    const double y = rng.normal();
    const double z = rng.normal();
    const TwoSidedRotation r = two_sided_rotation(w, x, y, z);
    const double p11 = r.cl * w + r.sl * y;
    const double p12 = r.cl * x + r.sl * z;
    const double p21 = -r.sl * w + r.cl * y;
    const double p22 = -r.sl * x + r.cl * z;
    EXPECT_NEAR(-p11 * r.sr + p12 * r.cr, 0.0, 1e-12);
    EXPECT_NEAR(p21 * r.cr + p22 * r.sr, 0.0, 1e-12);
    // Rotations are orthogonal: Frobenius norm preserved.
    const double q11 = p11 * r.cr + p12 * r.sr;
    const double q22 = -p21 * r.sr + p22 * r.cr;
    EXPECT_NEAR(q11 * q11 + q22 * q22, w * w + x * x + y * y + z * z, 1e-10);
  }
}

TEST(Kogbetliantz, KernelEdgeCases) {
  // Already diagonal.
  const TwoSidedRotation d = two_sided_rotation(3.0, 0.0, 0.0, 1.0);
  EXPECT_NEAR(std::fabs(d.cl), 1.0, 1e-15);
  EXPECT_NEAR(std::fabs(d.cr), 1.0, 1e-15);
  // Antidiagonal ([[0,1],[1,0]]): must still produce a diagonalisation.
  const TwoSidedRotation a = two_sided_rotation(0.0, 1.0, 1.0, 0.0);
  const double p11 = a.cl * 0 + a.sl * 1;
  const double p12 = a.cl * 1 + a.sl * 0;
  const double q12 = -p11 * a.sr + p12 * a.cr;
  EXPECT_NEAR(q12, 0.0, 1e-14);
  // Zero block: identity.
  const TwoSidedRotation z = two_sided_rotation(0.0, 0.0, 0.0, 0.0);
  EXPECT_NEAR(z.cl, 1.0, 1e-15);
  EXPECT_NEAR(z.cr, 1.0, 1e-15);
}

using Param = std::tuple<std::string, int>;

class KogbetliantzAcrossOrderings : public ::testing::TestWithParam<Param> {};

TEST_P(KogbetliantzAcrossOrderings, DecomposesSquareMatrices) {
  const auto& [name, n] = GetParam();
  const auto ord = make_ordering(name);
  Rng rng(912);
  const Matrix a = random_gaussian(static_cast<std::size_t>(n), static_cast<std::size_t>(n), rng);
  const KogbetliantzResult r = kogbetliantz_svd(a, *ord);
  ASSERT_TRUE(r.converged) << name;
  EXPECT_LT(reconstruction_error(a, r.u, r.sigma, r.v) / a.frobenius_norm(), 1e-12);
  EXPECT_LT(orthonormality_defect(r.u), 1e-12);
  EXPECT_LT(orthonormality_defect(r.v), 1e-12);
  for (std::size_t k = 1; k < r.sigma.size(); ++k) EXPECT_GE(r.sigma[k - 1], r.sigma[k]);
  const auto sv = singular_values_oracle(a);
  for (std::size_t k = 0; k < sv.size(); ++k) EXPECT_NEAR(r.sigma[k], sv[k], 1e-10 * sv[0]);
}

INSTANTIATE_TEST_SUITE_P(
    Orderings, KogbetliantzAcrossOrderings,
    ::testing::Combine(::testing::Values("round-robin", "odd-even", "fat-tree", "new-ring",
                                         "hybrid-g2"),
                       ::testing::Values(16, 23, 32)),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      std::string name = std::get<0>(param_info.param) + "_n" + std::to_string(std::get<1>(param_info.param));
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(Kogbetliantz, TallMatrixViaQr) {
  Rng rng(913);
  const Matrix a = random_gaussian(60, 20, rng);
  const HouseholderQr qr(a);
  const KogbetliantzResult r = kogbetliantz_svd(qr.r(), *make_ordering("fat-tree"));
  ASSERT_TRUE(r.converged);
  const auto sv = singular_values_oracle(a);
  for (std::size_t k = 0; k < sv.size(); ++k) EXPECT_NEAR(r.sigma[k], sv[k], 1e-10 * sv[0]);
}

TEST(Kogbetliantz, RankDeficientAndNegativeDeterminant) {
  Rng rng(914);
  Matrix a = rank_deficient(12, 12, 5, rng);
  const KogbetliantzResult r = kogbetliantz_svd(a, *make_ordering("round-robin"));
  ASSERT_TRUE(r.converged);
  int rank = 0;
  for (double s : r.sigma)
    if (s > 1e-9) ++rank;
  EXPECT_EQ(rank, 5);
  for (double s : r.sigma) EXPECT_GE(s, 0.0);  // signs folded into U
}

TEST(Kogbetliantz, OffDecaysMonotonicallyAtTheTail) {
  Rng rng(915);
  const Matrix a = random_gaussian(24, 24, rng);
  KogbetliantzOptions opt;
  opt.track_off = true;
  const KogbetliantzResult r = kogbetliantz_svd(a, *make_ordering("new-ring"), opt);
  ASSERT_TRUE(r.converged);
  ASSERT_GE(r.off_history.size(), 3u);
  EXPECT_LT(r.off_history.back(), 1e-10);
}

TEST(Kogbetliantz, RejectsNonSquare) {
  EXPECT_THROW(kogbetliantz_svd(Matrix(4, 3), *make_ordering("round-robin")),
               std::invalid_argument);
}

TEST(Kogbetliantz, MatchesOneSidedHestenes) {
  Rng rng(916);
  const Matrix a = with_spectrum(20, 20, geometric_spectrum(20, 1e4), rng);
  const KogbetliantzResult two = kogbetliantz_svd(a, *make_ordering("fat-tree"));
  const SvdResult one = one_sided_jacobi(a, *make_ordering("fat-tree"));
  ASSERT_TRUE(two.converged);
  ASSERT_TRUE(one.converged);
  for (std::size_t k = 0; k < one.sigma.size(); ++k)
    EXPECT_NEAR(two.sigma[k], one.sigma[k], 1e-10 * one.sigma[0]);
}

}  // namespace
}  // namespace treesvd
