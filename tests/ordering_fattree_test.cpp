// Fat-tree ordering (Section 3): two-block ordering, four-block module and
// the merge procedure, with the exact properties the paper proves.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/fat_tree.hpp"
#include "core/validate.hpp"

namespace treesvd {
namespace {

using PairKey = std::pair<int, int>;

std::set<PairKey> cross_pairs(const BlockRows& br) {
  std::set<PairKey> got;
  for (const auto& row : br.rows) {
    for (std::size_t k = 0; 2 * k + 1 < row.size(); ++k) {
      got.insert({std::min(row[2 * k], row[2 * k + 1]), std::max(row[2 * k], row[2 * k + 1])});
    }
  }
  return got;
}

TEST(TwoBlock, BasicModulePairsAndRotation) {
  // Fig. 2: blocks {1,2} and {3,4}; two steps, the second block rotates.
  const std::vector<int> x = {1, 2};
  const std::vector<int> y = {3, 4};
  const BlockRows br = two_block_rows(x, y);
  ASSERT_EQ(br.rows.size(), 2u);
  EXPECT_EQ(br.rows[0], (std::vector<int>{1, 3, 2, 4}));
  EXPECT_EQ(br.rows[1], (std::vector<int>{1, 4, 2, 3}));
  EXPECT_EQ(br.final_layout, (std::vector<int>{1, 4, 2, 3}));  // y halves swapped
}

TEST(TwoBlock, AllCrossPairsExactlyOnce) {
  for (std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
    std::vector<int> x(k);
    std::vector<int> y(k);
    for (std::size_t i = 0; i < k; ++i) {
      x[i] = static_cast<int>(i);
      y[i] = static_cast<int>(k + i);
    }
    const BlockRows br = two_block_rows(x, y);
    EXPECT_EQ(br.rows.size(), k) << "a size-k two-block ordering takes k steps";
    const auto got = cross_pairs(br);
    EXPECT_EQ(got.size(), k * k);
    for (int a : x)
      for (int b : y) EXPECT_TRUE(got.count({a, b})) << a << "," << b;
  }
}

TEST(TwoBlock, XStaysAtEvenPositions) {
  std::vector<int> x = {0, 1, 2, 3};
  std::vector<int> y = {4, 5, 6, 7};
  const BlockRows br = two_block_rows(x, y);
  for (const auto& row : br.rows)
    for (std::size_t i = 0; i < row.size(); i += 2) EXPECT_LT(row[i], 4);
}

TEST(TwoBlock, DoubleApplicationRestoresYOrder) {
  // One sweep exchanges the y halves; a second restores them (paper 3.1.2).
  std::vector<int> x = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<int> y = {8, 9, 10, 11, 12, 13, 14, 15};
  const BlockRows once = two_block_rows(x, y);
  std::vector<int> y_after;
  for (std::size_t i = 1; i < once.final_layout.size(); i += 2)
    y_after.push_back(once.final_layout[i]);
  EXPECT_NE(y_after, y);
  // halves swapped, each half internally in order
  EXPECT_EQ(y_after, (std::vector<int>{12, 13, 14, 15, 8, 9, 10, 11}));
  const BlockRows twice = two_block_rows(x, y_after);
  std::vector<int> y_final;
  for (std::size_t i = 1; i < twice.final_layout.size(); i += 2)
    y_final.push_back(twice.final_layout[i]);
  EXPECT_EQ(y_final, y);
}

TEST(TwoBlock, RejectsBadSizes) {
  EXPECT_THROW(two_block_rows(std::vector<int>{1, 2}, std::vector<int>{3}),
               std::invalid_argument);
  EXPECT_THROW(two_block_rows(std::vector<int>{1, 2, 3}, std::vector<int>{4, 5, 6}),
               std::invalid_argument);
}

TEST(FourBlockModule, OrderPreservingVariant) {
  // Fig. 4(a): (1,2)(3,4) / (1,3)(2,4) / (1,4)(2,3); order maintained and the
  // left index of every pair is the smaller one.
  const std::vector<int> ids = {1, 2, 3, 4};
  const BlockRows br = four_block_module(ids, FourBlockVariant::kOrderPreserving);
  ASSERT_EQ(br.rows.size(), 3u);
  EXPECT_EQ(br.rows[0], (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(br.rows[1], (std::vector<int>{1, 3, 2, 4}));
  EXPECT_EQ(br.rows[2], (std::vector<int>{1, 4, 2, 3}));
  EXPECT_EQ(br.final_layout, ids);
  for (const auto& row : br.rows) {
    EXPECT_LT(row[0], row[1]);
    EXPECT_LT(row[2], row[3]);
  }
}

TEST(FourBlockModule, SwappingVariantReversesLastTwo) {
  // Fig. 4(b): 3 and 4 end reversed; two sweeps restore them.
  const std::vector<int> ids = {1, 2, 3, 4};
  const BlockRows br = four_block_module(ids, FourBlockVariant::kSwapping);
  EXPECT_EQ(br.final_layout, (std::vector<int>{1, 2, 4, 3}));
  const BlockRows again = four_block_module(br.final_layout, FourBlockVariant::kSwapping);
  EXPECT_EQ(again.final_layout, ids);
}

TEST(FourBlockModule, BothVariantsCoverAllSixPairs) {
  for (auto v : {FourBlockVariant::kOrderPreserving, FourBlockVariant::kSwapping}) {
    const BlockRows br = four_block_module(std::vector<int>{1, 2, 3, 4}, v);
    EXPECT_EQ(cross_pairs(br).size(), 6u);
  }
}

TEST(FatTree, ExactSequenceForN8) {
  // The merge-procedure sweep for n = 8 (Fig. 6 reconstruction): stage 1 runs
  // the four-block module in both groups; stage 2 merges them.
  const Sweep s = FatTreeOrdering().sweep(8);
  ASSERT_EQ(s.steps(), 7);
  const std::vector<std::vector<int>> expected = {
      {0, 1, 2, 3, 4, 5, 6, 7},  // (1,2)(3,4) | (5,6)(7,8)
      {0, 2, 1, 3, 4, 6, 5, 7},  // (1,3)(2,4) | (5,7)(6,8)
      {0, 3, 1, 2, 4, 7, 5, 6},  // (1,4)(2,3) | (5,8)(6,7)
      {0, 4, 2, 6, 1, 5, 3, 7},  // (1,5)(3,7) | (2,6)(4,8)
      {0, 6, 2, 4, 1, 7, 3, 5},  // (1,7)(3,5) | (2,8)(4,6)
      {0, 7, 2, 5, 1, 6, 3, 4},  // (1,8)(3,6) | (2,7)(4,5)
      {0, 5, 2, 7, 1, 4, 3, 6},  // (1,6)(3,8) | (2,5)(4,7)
  };
  for (int t = 0; t < 7; ++t) {
    const auto lay = s.layout(t);
    EXPECT_EQ(std::vector<int>(lay.begin(), lay.end()), expected[static_cast<std::size_t>(t)])
        << "step " << t + 1;
  }
}

TEST(FatTree, RestoresIdentityAfterOneSweepForAllSizes) {
  for (int n : {4, 8, 16, 32, 64, 128, 256, 512}) {
    const Sweep s = FatTreeOrdering().sweep(n);
    const auto fin = s.final_layout();
    for (int i = 0; i < n; ++i)
      EXPECT_EQ(fin[static_cast<std::size_t>(i)], i) << "n=" << n << " slot " << i;
  }
}

TEST(FatTree, PowerOfTwoOnly) {
  const FatTreeOrdering ft;
  EXPECT_TRUE(ft.supports(4));
  EXPECT_TRUE(ft.supports(64));
  EXPECT_FALSE(ft.supports(6));
  EXPECT_FALSE(ft.supports(12));
  EXPECT_FALSE(ft.supports(2));
}

TEST(FatTree, RootLevelTransitionsAreConstantPerStage) {
  // The top tree level is only exercised by the final merge stage: entering
  // super-step 2, entering super-step 3, and the restore — 3 transitions,
  // independent of n. This is the paper's "global communications minimised".
  for (int n : {8, 16, 32, 64, 128}) {
    const Sweep s = FatTreeOrdering().sweep(n);
    int top = 0;
    for (int lv = n / 2; lv > 1; lv /= 2) ++top;
    int top_transitions = 0;
    for (int t = 0; t < s.steps(); ++t) {
      int deepest = 0;
      for (const ColumnMove& mv : s.moves(t))
        deepest = std::max(deepest, comm_level(mv.from_slot, mv.to_slot));
      if (deepest == top) ++top_transitions;
    }
    EXPECT_EQ(top_transitions, 3) << "n=" << n;
  }
}

TEST(FatTree, LocalTransitionsDominate) {
  // Most transitions touch only level 1 (sibling leaves) — locality is the
  // point of the ordering.
  const Sweep s = FatTreeOrdering().sweep(128);
  int level1_only = 0;
  for (int t = 0; t < s.steps(); ++t) {
    int deepest = 0;
    for (const ColumnMove& mv : s.moves(t))
      deepest = std::max(deepest, comm_level(mv.from_slot, mv.to_slot));
    if (deepest <= 1) ++level1_only;
  }
  EXPECT_GE(level1_only, s.steps() / 2);
}

TEST(FatTree, FigSixLevelPattern) {
  // n=8 transition levels: 1,1,2,1,2,1 then the level-2 restore.
  const Sweep s = FatTreeOrdering().sweep(8);
  std::vector<int> levels;
  for (int t = 0; t < s.steps(); ++t) {
    int deepest = 0;
    for (const ColumnMove& mv : s.moves(t))
      deepest = std::max(deepest, comm_level(mv.from_slot, mv.to_slot));
    levels.push_back(deepest);
  }
  EXPECT_EQ(levels, (std::vector<int>{1, 1, 2, 1, 2, 1, 2}));
}

}  // namespace
}  // namespace treesvd
