// Jacobi-ordering equivalence (Definition 1): the relabelling finder.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "core/fat_tree.hpp"
#include "core/new_ring.hpp"
#include "core/odd_even.hpp"
#include "core/ordering.hpp"
#include "core/round_robin.hpp"
#include "core/validate.hpp"

namespace treesvd {
namespace {

/// Applies a fixed relabelling to every layout of a canonical sweep.
Sweep relabel_sweep(const Sweep& s, const std::vector<int>& lam) {
  std::vector<std::vector<int>> layouts;
  for (int t = 0; t <= s.steps(); ++t) {
    const auto lay = s.layout(t);
    std::vector<int> relabelled(lay.size());
    for (std::size_t i = 0; i < lay.size(); ++i)
      relabelled[i] = lam[static_cast<std::size_t>(lay[i])];
    layouts.push_back(std::move(relabelled));
  }
  return Sweep(std::move(layouts), {});
}

TEST(Equivalence, SelfEquivalenceIsFound) {
  const Sweep s = RoundRobinOrdering().sweep(12);
  const auto lam = find_equivalence_relabelling(s, s);
  ASSERT_TRUE(lam.has_value());
}

TEST(Equivalence, RecoversAnArbitraryRelabelling) {
  const Sweep s = RoundRobinOrdering().sweep(10);
  std::vector<int> lam(10);
  std::iota(lam.begin(), lam.end(), 0);
  std::rotate(lam.begin(), lam.begin() + 4, lam.end());
  const Sweep relabelled = relabel_sweep(s, lam);
  const auto found = find_equivalence_relabelling(s, relabelled);
  ASSERT_TRUE(found.has_value());
  // Verify the found relabelling actually maps the pair sets.
  for (int t = 0; t < s.steps(); ++t) {
    std::set<std::pair<int, int>> want;
    for (const auto& p : relabelled.pairs(t))
      want.insert({std::min(p.even, p.odd), std::max(p.even, p.odd)});
    for (const auto& p : s.pairs(t)) {
      const int a = (*found)[static_cast<std::size_t>(p.even)];
      const int b = (*found)[static_cast<std::size_t>(p.odd)];
      EXPECT_TRUE(want.count({std::min(a, b), std::max(a, b)}));
    }
  }
}

TEST(Equivalence, StepCountMismatchIsNotEquivalent) {
  // Odd-even has n steps, round-robin n-1: trivially not equivalent.
  const Sweep oe = OddEvenOrdering().sweep(8);
  const Sweep rr = RoundRobinOrdering().sweep(8);
  EXPECT_FALSE(find_equivalence_relabelling(oe, rr).has_value());
}

TEST(Equivalence, DetectsNonEquivalentSameShapeSweeps) {
  // Swap two steps of a sweep: per-step pair sets generally cannot be matched
  // by a single relabelling against the original.
  const Sweep s = FatTreeOrdering().sweep(8);
  std::vector<std::vector<int>> layouts;
  for (int t = 0; t <= s.steps(); ++t) {
    const auto lay = s.layout(t);
    layouts.emplace_back(lay.begin(), lay.end());
  }
  std::swap(layouts[0], layouts[3]);  // breaks the structure
  const Sweep perturbed(std::move(layouts), {});
  const auto found = find_equivalence_relabelling(s, perturbed);
  // Either no relabelling exists, or one exists and genuinely maps the pair
  // sets; check the checker does not return garbage.
  if (found) {
    for (int t = 0; t < s.steps(); ++t) {
      std::set<std::pair<int, int>> want;
      for (const auto& p : perturbed.pairs(t))
        want.insert({std::min(p.even, p.odd), std::max(p.even, p.odd)});
      for (const auto& p : s.pairs(t)) {
        const int a = (*found)[static_cast<std::size_t>(p.even)];
        const int b = (*found)[static_cast<std::size_t>(p.odd)];
        EXPECT_TRUE(want.count({std::min(a, b), std::max(a, b)})) << "bogus relabelling";
      }
    }
  }
}

TEST(Equivalence, NewRingToRoundRobinModerateSizes) {
  for (int n : {8, 16, 24}) {
    const Sweep nr = NewRingOrdering().sweep(n);
    const Sweep rr = RoundRobinOrdering().sweep(n);
    EXPECT_TRUE(find_equivalence_relabelling(nr, rr).has_value()) << "n=" << n;
  }
}

TEST(Equivalence, ModifiedRingAlsoEquivalentToRoundRobin) {
  const Sweep mr = ModifiedRingOrdering().sweep(16);
  const Sweep rr = RoundRobinOrdering().sweep(16);
  EXPECT_TRUE(find_equivalence_relabelling(mr, rr).has_value());
}

}  // namespace
}  // namespace treesvd
