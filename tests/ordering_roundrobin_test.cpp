// Round-robin ordering (Fig. 1(b)): exact behaviour checks.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/round_robin.hpp"
#include "core/validate.hpp"

namespace treesvd {
namespace {

TEST(RoundRobin, FirstStepPairsConsecutiveIndices) {
  const Sweep s = RoundRobinOrdering().sweep(8);
  const auto pairs = s.pairs(0);
  ASSERT_EQ(pairs.size(), 4u);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(pairs[static_cast<std::size_t>(k)].even, 2 * k);
    EXPECT_EQ(pairs[static_cast<std::size_t>(k)].odd, 2 * k + 1);
  }
}

TEST(RoundRobin, IndexZeroNeverMoves) {
  const Sweep s = RoundRobinOrdering().sweep(16);
  for (int t = 0; t <= s.steps(); ++t) EXPECT_EQ(s.layout(t)[0], 0);
}

TEST(RoundRobin, EveryOtherIndexMovesEveryStep) {
  // The tournament rotation moves all 2m-1 non-fixed indices each transition.
  const Sweep s = RoundRobinOrdering().sweep(16);
  for (int t = 0; t < s.steps(); ++t) EXPECT_EQ(s.moves(t).size(), 15u);
}

TEST(RoundRobin, RestoresLayoutAfterOneSweep) {
  const Sweep s = RoundRobinOrdering().sweep(32);
  const auto fin = s.final_layout();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(fin[static_cast<std::size_t>(i)], i);
}

TEST(RoundRobin, FixedIndexMeetsAllOthersInOrderOfSteps) {
  const int n = 12;
  const Sweep s = RoundRobinOrdering().sweep(n);
  std::set<int> partners;
  for (int t = 0; t < s.steps(); ++t) {
    const auto pairs = s.pairs(t);
    // index 0 always sits at slot 0/leaf 0
    EXPECT_EQ(pairs[0].even, 0);
    partners.insert(pairs[0].odd);
  }
  EXPECT_EQ(partners.size(), static_cast<std::size_t>(n - 1));
}

TEST(RoundRobin, KnownSequenceN4) {
  // n=4: (1,2)(3,4) / (1,3)(2,4)-ish / (1,4)(2,3)-ish in some tournament
  // order; all three distinct perfect matchings must appear.
  const Sweep s = RoundRobinOrdering().sweep(4);
  std::set<std::set<std::pair<int, int>>> matchings;
  for (int t = 0; t < s.steps(); ++t) {
    std::set<std::pair<int, int>> m;
    for (const auto& p : s.pairs(t))
      m.insert({std::min(p.even, p.odd), std::max(p.even, p.odd)});
    matchings.insert(m);
  }
  EXPECT_EQ(matchings.size(), 3u);
}

TEST(RoundRobin, RejectsOddAndTinySizes) {
  const RoundRobinOrdering rr;
  EXPECT_FALSE(rr.supports(2));
  EXPECT_FALSE(rr.supports(7));
  EXPECT_TRUE(rr.supports(6));
}

TEST(RoundRobin, GlobalTrafficEveryTransition) {
  // The paper's motivation for tree orderings: round-robin needs high-level
  // communication on every transition (for n >= 8, some move crosses at
  // least level 2).
  const Sweep s = RoundRobinOrdering().sweep(16);
  for (int t = 0; t < s.steps(); ++t) {
    int deepest = 0;
    for (const ColumnMove& mv : s.moves(t))
      deepest = std::max(deepest, comm_level(mv.from_slot, mv.to_slot));
    EXPECT_GE(deepest, 2) << "transition " << t;
  }
}

}  // namespace
}  // namespace treesvd
