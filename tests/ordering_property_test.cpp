// Property tests that every ordering must satisfy: each sweep is a valid
// parallel Jacobi sweep (all n(n-1)/2 pairs exactly once, disjoint pairs per
// step), across several consecutive sweeps, for a range of problem sizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <tuple>

#include "core/registry.hpp"
#include "core/validate.hpp"

namespace treesvd {
namespace {

using Param = std::tuple<std::string, int>;

class OrderingProperty : public ::testing::TestWithParam<Param> {
 protected:
  OrderingPtr ordering() const { return make_ordering(std::get<0>(GetParam())); }
  int n() const { return std::get<1>(GetParam()); }
  bool supported() const { return ordering()->supports(n()); }
};

TEST_P(OrderingProperty, SingleSweepIsValid) {
  if (!supported()) GTEST_SKIP() << "n not supported";
  const Sweep s = ordering()->sweep(n());
  const SweepValidation v = validate_sweep(s);
  EXPECT_TRUE(v.valid) << v.error;
}

TEST_P(OrderingProperty, FourConsecutiveSweepsAreValid) {
  if (!supported()) GTEST_SKIP() << "n not supported";
  const SweepValidation v = validate_sweep_sequence(*ordering(), n(), 4);
  EXPECT_TRUE(v.valid) << v.error;
}

TEST_P(OrderingProperty, StepCountMatchesContract) {
  if (!supported()) GTEST_SKIP() << "n not supported";
  const Sweep s = ordering()->sweep(n());
  EXPECT_EQ(s.steps(), ordering()->steps(n()));
}

TEST_P(OrderingProperty, RotationCountIsAllPairs) {
  if (!supported()) GTEST_SKIP() << "n not supported";
  const Sweep s = ordering()->sweep(n());
  EXPECT_EQ(s.rotation_count(),
            static_cast<std::size_t>(n()) * static_cast<std::size_t>(n() - 1) / 2);
}

TEST_P(OrderingProperty, LayoutRestoredAfterTwoSweepsOrOne) {
  if (!supported()) GTEST_SKIP() << "n not supported";
  // Every ordering in the paper restores the original index order after at
  // most two sweeps (fat-tree after one; rings and odd-even after two;
  // Lee-Luk-Boley after a forward+backward pair).
  std::vector<int> layout(static_cast<std::size_t>(n()));
  std::iota(layout.begin(), layout.end(), 0);
  const auto ord = ordering();
  for (int k = 0; k < 2; ++k) {
    const Sweep s = ord->sweep_from(layout, k);
    const auto fin = s.final_layout();
    layout.assign(fin.begin(), fin.end());
  }
  std::vector<int> ident(static_cast<std::size_t>(n()));
  std::iota(ident.begin(), ident.end(), 0);
  EXPECT_EQ(layout, ident);
}

TEST_P(OrderingProperty, MovesAreConsistentWithLayouts) {
  if (!supported()) GTEST_SKIP() << "n not supported";
  const Sweep s = ordering()->sweep(n());
  for (int t = 0; t < s.steps(); ++t) {
    const auto from = s.layout(t);
    const auto to = s.layout(t + 1);
    std::vector<int> applied(from.begin(), from.end());
    for (const ColumnMove& mv : s.moves(t)) {
      EXPECT_EQ(from[static_cast<std::size_t>(mv.from_slot)], mv.index);
      applied[static_cast<std::size_t>(mv.to_slot)] = mv.index;
    }
    EXPECT_EQ(applied, std::vector<int>(to.begin(), to.end()));
  }
}

TEST_P(OrderingProperty, SweepFromTransportsThePositionProcedure) {
  if (!supported()) GTEST_SKIP() << "n not supported";
  // Starting from a shuffled layout must pair the occupants of the same
  // positions the canonical sweep pairs.
  std::vector<int> shuffled(static_cast<std::size_t>(n()));
  std::iota(shuffled.begin(), shuffled.end(), 0);
  std::rotate(shuffled.begin(), shuffled.begin() + 3, shuffled.end());
  const auto ord = ordering();
  const Sweep canonical = ord->sweep(n());
  const Sweep moved = ord->sweep_from(shuffled);
  for (int t = 0; t <= canonical.steps(); ++t) {
    const auto lc = canonical.layout(t);
    const auto lm = moved.layout(t);
    for (int slot = 0; slot < n(); ++slot)
      EXPECT_EQ(lm[static_cast<std::size_t>(slot)],
                shuffled[static_cast<std::size_t>(lc[static_cast<std::size_t>(slot)])]);
  }
}

TEST_P(OrderingProperty, StepPairsViewMatchesPairs) {
  if (!supported()) GTEST_SKIP() << "n not supported";
  // The non-allocating StepPairs view must expose exactly the pairs that the
  // allocating pairs() accessor returns, leaf by leaf.
  const Sweep s = ordering()->sweep(n());
  for (int t = 0; t < s.steps(); ++t) {
    const StepPairs view = s.step_pairs(t);
    EXPECT_EQ(view.leaves(), s.leaves());
    const auto allocated = s.pairs(t);
    std::vector<IndexPair> collected;
    for (int leaf = 0; leaf < view.leaves(); ++leaf) {
      EXPECT_EQ(view.active_at(leaf), s.leaf_active(t, leaf));
      if (!view.active_at(leaf)) continue;
      collected.push_back(view.at(leaf));
    }
    ASSERT_EQ(collected.size(), allocated.size());
    for (std::size_t k = 0; k < collected.size(); ++k) {
      EXPECT_EQ(collected[k].even, allocated[k].even);
      EXPECT_EQ(collected[k].odd, allocated[k].odd);
    }
    EXPECT_EQ(view.count(), allocated.size());
  }
}

TEST_P(OrderingProperty, UnsupportedSizesThrow) {
  const auto ord = ordering();
  if (ord->supports(n())) GTEST_SKIP() << "n supported";
  EXPECT_THROW(ord->sweep(n()), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    AllOrderings, OrderingProperty,
    ::testing::Combine(::testing::Values("round-robin", "odd-even", "fat-tree", "llb-fat-tree",
                                         "new-ring", "modified-ring", "hybrid-g2", "hybrid-g4",
                                         "hybrid-g8", "block-ring-g2", "block-ring-g4"),
                       ::testing::Values(4, 6, 8, 12, 16, 32, 64, 128, 256)),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      std::string name = std::get<0>(param_info.param) + "_n" + std::to_string(std::get<1>(param_info.param));
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(OrderingRegistry, UnknownNameThrows) {
  EXPECT_THROW(make_ordering("nope"), std::invalid_argument);
  EXPECT_THROW(make_ordering("hybrid-gX"), std::invalid_argument);
}

TEST(OrderingRegistry, NamesRoundTrip) {
  for (const auto& name : ordering_names({2, 4})) {
    const auto ord = make_ordering(name);
    EXPECT_EQ(ord->name(), name);
  }
}

TEST(OrderingRegistry, HybridRejectsOddGroups) {
  EXPECT_THROW(make_ordering("hybrid-g3"), std::invalid_argument);
}

}  // namespace
}  // namespace treesvd
