// Tests for the independent eigenvalue/singular-value oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/generators.hpp"
#include "linalg/symmetric_eigen.hpp"
#include "util/rng.hpp"

namespace treesvd {
namespace {

TEST(SymmetricEigen, DiagonalMatrix) {
  Matrix d(4, 4);
  d(0, 0) = 4;
  d(1, 1) = -1;
  d(2, 2) = 2;
  d(3, 3) = 0.5;
  const auto ev = symmetric_eigenvalues(d);
  ASSERT_EQ(ev.size(), 4u);
  EXPECT_NEAR(ev[0], -1.0, 1e-12);
  EXPECT_NEAR(ev[1], 0.5, 1e-12);
  EXPECT_NEAR(ev[2], 2.0, 1e-12);
  EXPECT_NEAR(ev[3], 4.0, 1e-12);
}

TEST(SymmetricEigen, TwoByTwoClosedForm) {
  const Matrix a = Matrix::from_rows({{2, 1}, {1, 2}});
  const auto ev = symmetric_eigenvalues(a);
  EXPECT_NEAR(ev[0], 1.0, 1e-12);
  EXPECT_NEAR(ev[1], 3.0, 1e-12);
}

TEST(SymmetricEigen, TraceAndDeterminantInvariants) {
  Rng rng(31);
  const Matrix g = random_gaussian(6, 6, rng);
  const Matrix s = g + g.transposed();  // symmetric
  const auto ev = symmetric_eigenvalues(s);
  double trace = 0.0;
  for (int i = 0; i < 6; ++i) trace += s(static_cast<std::size_t>(i), static_cast<std::size_t>(i));
  const double evsum = std::accumulate(ev.begin(), ev.end(), 0.0);
  EXPECT_NEAR(evsum, trace, 1e-9 * std::max(1.0, std::fabs(trace)));
}

TEST(SymmetricEigen, TridiagonalToeplitzKnownSpectrum) {
  // Eigenvalues of the n x n tridiagonal (-1, 2, -1) matrix:
  // 2 - 2 cos(k pi / (n+1)), k = 1..n.
  const int n = 12;
  Matrix t(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    t(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) = 2.0;
    if (i > 0) {
      t(static_cast<std::size_t>(i), static_cast<std::size_t>(i - 1)) = -1.0;
      t(static_cast<std::size_t>(i - 1), static_cast<std::size_t>(i)) = -1.0;
    }
  }
  const auto ev = symmetric_eigenvalues(t);
  for (int k = 1; k <= n; ++k) {
    const double expected = 2.0 - 2.0 * std::cos(k * M_PI / (n + 1));
    EXPECT_NEAR(ev[static_cast<std::size_t>(k - 1)], expected, 1e-10);
  }
}

TEST(SymmetricEigen, RejectsNonSquare) {
  EXPECT_THROW(tridiagonalize(Matrix(3, 4)), std::invalid_argument);
}

TEST(Oracle, RecoversPrescribedSingularValues) {
  Rng rng(32);
  const std::vector<double> sigma = {5.0, 3.0, 1.0, 0.5, 0.25};
  const Matrix a = with_spectrum(12, 5, sigma, rng);
  const auto sv = singular_values_oracle(a);
  ASSERT_EQ(sv.size(), 5u);
  for (std::size_t k = 0; k < 5; ++k) EXPECT_NEAR(sv[k], sigma[k], 1e-8);
}

TEST(Oracle, DescendingOrderAndNonNegative) {
  Rng rng(33);
  const Matrix a = random_gaussian(20, 10, rng);
  const auto sv = singular_values_oracle(a);
  for (std::size_t k = 1; k < sv.size(); ++k) EXPECT_GE(sv[k - 1], sv[k]);
  for (double s : sv) EXPECT_GE(s, 0.0);
}

TEST(Oracle, RankDeficientHasZeroTail) {
  Rng rng(34);
  const Matrix a = rank_deficient(16, 8, 3, rng);
  const auto sv = singular_values_oracle(a);
  for (std::size_t k = 3; k < 8; ++k) EXPECT_LT(sv[k], 1e-7);
  EXPECT_GT(sv[2], 1e-3);
}

}  // namespace
}  // namespace treesvd
