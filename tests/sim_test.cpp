// Machine model tests: cost decomposition and the paper's qualitative claims.
#include <gtest/gtest.h>

#include "core/hybrid.hpp"
#include "core/registry.hpp"
#include "sim/machine.hpp"

namespace treesvd {
namespace {

TEST(Machine, ComputeTimeIsStepsTimesRotation) {
  const auto ord = make_ordering("round-robin");
  const Sweep s = ord->sweep(16);
  const FatTreeTopology topo(8, CapacityProfile::kPerfect);
  CostParams p;
  p.words_per_column = 10.0;
  p.flop_time = 0.1;
  p.flops_per_rotation_per_row = 14.0;
  const SweepCost c = analyze_sweep(s, topo, p);
  EXPECT_DOUBLE_EQ(c.compute_time, s.steps() * 14.0 * 10.0 * 0.1);
  EXPECT_GT(c.comm_time, 0.0);
  EXPECT_DOUBLE_EQ(c.total_time, c.compute_time + c.comm_time);
}

TEST(Machine, LeafCountMismatchThrows) {
  const auto ord = make_ordering("round-robin");
  const Sweep s = ord->sweep(16);
  const FatTreeTopology topo(16, CapacityProfile::kPerfect);
  EXPECT_THROW(analyze_sweep(s, topo, CostParams{}), std::invalid_argument);
  EXPECT_THROW(model_run(*ord, topo, 16, CostParams{}, 1), std::invalid_argument);
}

TEST(Machine, TransitionsUsingLevelSumsToSteps) {
  const auto ord = make_ordering("fat-tree");
  const FatTreeTopology topo(16, CapacityProfile::kPerfect);
  const auto run = model_run(*ord, topo, 32, CostParams{}, 1);
  std::size_t total = 0;
  for (auto v : run.per_sweep_total.transitions_using_level) total += v;
  EXPECT_EQ(total, static_cast<std::size_t>(ord->steps(32)));
}

TEST(Machine, WordsPerLevelAccountsAllMessages) {
  const auto ord = make_ordering("new-ring");
  const FatTreeTopology topo(16, CapacityProfile::kConstant);
  CostParams p;
  p.words_per_column = 3.0;
  const auto run = model_run(*ord, topo, 32, p, 1);
  double words = 0.0;
  for (double w : run.per_sweep_total.words_per_level) words += w;
  EXPECT_DOUBLE_EQ(words, run.per_sweep_total.comm_words);
  EXPECT_DOUBLE_EQ(words, static_cast<double>(run.per_sweep_total.messages) * 3.0);
}

TEST(Machine, FatTreeOrderingLocalisesTraffic) {
  // C1: on any topology, the fat-tree ordering sends a much larger share of
  // its words through low levels than round-robin sends through high ones;
  // concretely its root-level word count is lower and its count of
  // root-touching transitions is 3 versus "all" for round-robin.
  const int n = 64;
  const FatTreeTopology topo(n / 2, CapacityProfile::kPerfect);
  const auto ft = model_run(*make_ordering("fat-tree"), topo, n, CostParams{}, 1);
  const auto rr = model_run(*make_ordering("round-robin"), topo, n, CostParams{}, 1);
  const auto top = static_cast<std::size_t>(topo.levels());
  EXPECT_EQ(ft.per_sweep_total.transitions_using_level[top], 3u);
  EXPECT_EQ(rr.per_sweep_total.transitions_using_level[top],
            static_cast<std::size_t>(n - 1));
}

TEST(Machine, RingOrderingsContentionFreeEverywhere) {
  const int n = 64;
  for (auto prof :
       {CapacityProfile::kPerfect, CapacityProfile::kConstant, CapacityProfile::kCm5}) {
    const FatTreeTopology topo(n / 2, prof);
    for (const char* name : {"new-ring", "modified-ring", "odd-even"}) {
      const auto run = model_run(*make_ordering(name), topo, n, CostParams{}, 1);
      EXPECT_LE(run.per_sweep_total.max_contention, 1.0 + 1e-9)
          << name << " on " << to_string(prof);
    }
  }
}

TEST(Machine, FatTreeOrderingContendsOnSkinnyTrees) {
  // Section 5: "contention will occur if our fat-tree ordering is implemented
  // on such an architecture".
  const int n = 64;
  const FatTreeTopology skinny(n / 2, CapacityProfile::kConstant);
  const auto run = model_run(*make_ordering("fat-tree"), skinny, n, CostParams{}, 1);
  EXPECT_GT(run.per_sweep_total.max_contention, 2.0);
}

TEST(Machine, FatTreeOrderingBestOnPerfectFatTree) {
  // Section 6: "If communication-handling capability is increased, then our
  // fat-tree ordering will become more attractive": on the perfect fat-tree
  // it beats its own binary-tree time and beats round-robin.
  const int n = 64;
  const FatTreeTopology perfect(n / 2, CapacityProfile::kPerfect);
  const FatTreeTopology skinny(n / 2, CapacityProfile::kConstant);
  const auto ft_perfect = model_run(*make_ordering("fat-tree"), perfect, n, CostParams{}, 1);
  const auto ft_skinny = model_run(*make_ordering("fat-tree"), skinny, n, CostParams{}, 1);
  const auto rr_perfect = model_run(*make_ordering("round-robin"), perfect, n, CostParams{}, 1);
  EXPECT_LT(ft_perfect.per_sweep_total.total_time, ft_skinny.per_sweep_total.total_time);
  EXPECT_LT(ft_perfect.per_sweep_total.total_time, rr_perfect.per_sweep_total.total_time);
}

TEST(Machine, HybridFastestOnCm5) {
  // Section 6: the hybrid ordering is expected to be the most efficient on
  // the CM-5 (no contention + fewer global communications than the rings).
  const int n = 64;
  const FatTreeTopology cm5(n / 2, CapacityProfile::kCm5);
  const auto hybrid = model_run(HybridOrdering(16), cm5, n, CostParams{}, 1);
  for (const char* other : {"round-robin", "odd-even", "fat-tree", "new-ring"}) {
    const auto run = model_run(*make_ordering(other), cm5, n, CostParams{}, 1);
    EXPECT_LE(hybrid.per_sweep_total.total_time, run.per_sweep_total.total_time)
        << "hybrid should not lose to " << other << " on the CM-5 model";
  }
}

TEST(Machine, MultiSweepRunAccumulates) {
  const auto ord = make_ordering("round-robin");
  const FatTreeTopology topo(8, CapacityProfile::kPerfect);
  const auto one = model_run(*ord, topo, 16, CostParams{}, 1);
  const auto two = model_run(*ord, topo, 16, CostParams{}, 2);
  EXPECT_EQ(two.sweeps, 2);
  EXPECT_NEAR(two.per_sweep_total.total_time, 2.0 * one.per_sweep_total.total_time, 1e-9);
}

}  // namespace
}  // namespace treesvd
